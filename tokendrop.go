package tokendrop

import (
	"math/rand"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
)

// Re-exported core types. The aliases make the internal implementation
// types usable through the public API; see the internal packages for the
// full method sets.
type (
	// Graph is an undirected simple graph with stable edge identifiers.
	Graph = graph.Graph
	// Edge is an undirected edge with normalized endpoints (U < V).
	Edge = graph.Edge
	// Orientation assigns directions (and thereby server loads) to edges.
	Orientation = graph.Orientation
	// Bipartite is a customer/server network (customers first).
	Bipartite = graph.Bipartite
	// Assignment maps customers to servers and tracks loads.
	Assignment = graph.Assignment

	// GameInstance is a token dropping game (Section 4): layered vertices,
	// at most one token per vertex, single-use edges between adjacent
	// layers.
	GameInstance = core.Instance
	// GameSolution is a move log plus final position, checked by
	// VerifyGame against the paper's three rules.
	GameSolution = core.Solution
	// GameMove is one token drop.
	GameMove = core.Move
	// Traversal is the path a token followed (Definition 4.3 context).
	Traversal = core.Traversal
	// GameOptions configure the distributed game solvers.
	GameOptions = core.SolveOptions
	// GameStats reports rounds, messages, and the Lemma 4.4 counter.
	GameStats = core.DistStats
	// TieBreak selects among equally eligible ports.
	TieBreak = core.TieBreak
	// LayeredConfig parameterizes random layered workloads.
	LayeredConfig = core.LayeredConfig
	// SequentialPolicy selects the centralized scheduler's next move.
	SequentialPolicy = core.SequentialPolicy

	// FlatGame is a token dropping game over a CSR graph — the
	// representation of the sharded engine, sized for 10⁶+ vertices.
	FlatGame = core.FlatInstance
	// FlatGameResult is the outcome of a sharded solve (final placement,
	// move log, stats); attach an instance with Solution() to verify it.
	FlatGameResult = core.FlatResult
	// ShardedGameOptions configure the sharded solvers.
	ShardedGameOptions = core.ShardedSolveOptions
)

// Tie-breaking rules for the distributed solvers.
const (
	TieFirstPort = core.TieFirstPort
	TieRandom    = core.TieRandom
)

// Sequential policies for SolveGameSequential.
const (
	PolicyFirst        = core.PolicyFirst
	PolicyRandom       = core.PolicyRandom
	PolicyHighestFirst = core.PolicyHighestFirst
	PolicyLowestFirst  = core.PolicyLowestFirst
)

// NewGame validates and builds a token dropping instance over g. level[v]
// is the layer of vertex v (every edge must join adjacent layers) and
// token[v] marks the initial token placement (at most one per vertex, by
// construction of the type).
func NewGame(g *Graph, level []int, token []bool) (*GameInstance, error) {
	return core.NewInstance(g, level, token)
}

// SolveGame runs the distributed proposal algorithm of Theorem 4.1 —
// O(L·Δ²) communication rounds — and returns the solution with run
// statistics.
func SolveGame(inst *GameInstance, opt GameOptions) (*GameSolution, GameStats, error) {
	return core.SolveProposal(inst, opt)
}

// SolveGame3Level runs the specialized algorithm of Theorem 4.7 for games
// on layers {0, 1, 2} — O(Δ) communication rounds. It returns an error on
// taller games.
func SolveGame3Level(inst *GameInstance, opt GameOptions) (*GameSolution, GameStats, error) {
	return core.SolveThreeLevel(inst, opt)
}

// SolveGameSequential plays the game with the centralized sequential
// algorithm of Section 4 under the given policy; rng is consulted only by
// PolicyRandom.
func SolveGameSequential(inst *GameInstance, policy SequentialPolicy, rng *rand.Rand) *GameSolution {
	return core.SolveSequential(inst, policy, rng)
}

// VerifyGame checks a solution against the three rules of Section 4:
// edge-disjoint traversals, unique destinations, and maximality.
func VerifyGame(sol *GameSolution) error { return core.Verify(sol) }

// ChainGame returns the single-slot cascade instance: a path with one
// vertex per level and tokens everywhere above level 0 — the Θ(L) worst
// case.
func ChainGame(levels int) *GameInstance { return core.Chain(levels) }

// Figure2Game returns the Figure 2 instance of the paper (13 vertices,
// layers 0–4).
func Figure2Game() *GameInstance { return core.Figure2() }

// RandomLayeredGame returns a seeded random layered instance.
func RandomLayeredGame(cfg LayeredConfig, rng *rand.Rand) *GameInstance {
	return core.RandomLayered(cfg, rng)
}

// BipartiteGame converts a bipartite graph (left vertices 0..numLeft-1)
// into the height-2 game of the Theorem 4.6 reduction: level-1 vertices
// hold tokens, level-0 vertices are empty, and solutions are maximal
// matchings.
func BipartiteGame(g *Graph, numLeft int) *GameInstance {
	return core.FromBipartite(g, numLeft)
}

// NewFlatGame converts an instance to the flat CSR representation of the
// sharded engine, preserving port numbering (deterministic runs are
// bit-identical across the two representations).
func NewFlatGame(inst *GameInstance) *FlatGame { return core.NewFlatInstance(inst) }

// SolveGameSharded runs the Theorem 4.1 proposal algorithm on the sharded
// flat engine — the runtime for million-node games. Under TieFirstPort the
// run is bit-identical to SolveGame on the same game.
func SolveGameSharded(fi *FlatGame, opt ShardedGameOptions) (*FlatGameResult, error) {
	return core.SolveProposalSharded(fi, opt)
}

// SolveGame3LevelSharded runs the Theorem 4.7 three-level algorithm on the
// sharded flat engine; it errors on games of height greater than 2.
func SolveGame3LevelSharded(fi *FlatGame, opt ShardedGameOptions) (*FlatGameResult, error) {
	return core.SolveThreeLevelSharded(fi, opt)
}

// RandomLayeredFlatGame builds a random layered instance directly in CSR
// form — the million-node counterpart of RandomLayeredGame.
func RandomLayeredFlatGame(cfg LayeredConfig, rng *rand.Rand) *FlatGame {
	return core.FlatRandomLayered(cfg, rng)
}

// LayeredGridGame builds the diagonal-lattice workload: rows layers of
// cols vertices (level = row), tokens on the top tokenRows rows.
func LayeredGridGame(rows, cols, tokenRows int) *FlatGame {
	return core.FlatLayeredGrid(rows, cols, tokenRows)
}

// PowerLawBipartiteGame builds the height-2 skewed-demand workload: nl
// customers on level 1 with power-law degrees (exponent alpha, max maxDeg),
// nr servers on level 0.
func PowerLawBipartiteGame(nl, nr int, alpha float64, maxDeg int, rng *rand.Rand) *FlatGame {
	return core.FlatPowerLawBipartite(nl, nr, alpha, maxDeg, rng)
}
