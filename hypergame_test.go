package tokendrop_test

import (
	"math/rand"
	"testing"

	"tokendrop"
)

func TestHyperGameFacade(t *testing.T) {
	// Hand-built: two servers below, one above, one rank-3 hyperedge.
	inst, err := tokendrop.NewHyperGame(
		[]int{0, 0, 1},
		[]bool{false, false, true},
		[][]int{{2, 0, 1}},
		[]int{2},
	)
	if err != nil {
		t.Fatal(err)
	}
	sol, stats, err := tokendrop.SolveHyperGame(inst, tokendrop.HyperOptions{MaxRounds: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if err := tokendrop.VerifyHyperGame(sol); err != nil {
		t.Fatal(err)
	}
	if len(sol.Moves) != 1 || stats.Rounds == 0 {
		t.Fatalf("expected one pass, got %d moves in %d rounds", len(sol.Moves), stats.Rounds)
	}
}

func TestHyperGameRandomFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := tokendrop.HyperLayeredConfig{Levels: 3, Width: 6, Edges: 15, Rank: 3, TokenProb: 0.5}
	inst := tokendrop.RandomHyperGame(cfg, rng)
	sol, _, err := tokendrop.SolveHyperGame(inst, tokendrop.HyperOptions{MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := tokendrop.VerifyHyperGame(sol); err != nil {
		t.Fatal(err)
	}

	seq := tokendrop.SolveHyperGameSequential(inst, rng)
	if err := tokendrop.VerifyHyperGame(seq); err != nil {
		t.Fatal(err)
	}
}

func TestHyperGame3LevelFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := tokendrop.HyperThreeLevelConfig{Width: 6, PullEdges: 8, PushEdges: 8, Rank: 3, MidProb: 0.4}
	inst := tokendrop.RandomHyperGame3Level(cfg, rng)
	sol, _, err := tokendrop.SolveHyperGame3Level(inst, tokendrop.HyperOptions{MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := tokendrop.VerifyHyperGame(sol); err != nil {
		t.Fatal(err)
	}
}
