package tokendrop_test

import (
	"math/rand"
	"testing"

	"tokendrop"
)

// These tests exercise the public facade end to end — integration tests
// across the internal modules through the API a downstream user sees.

func TestQuickstartFlow(t *testing.T) {
	g := tokendrop.RandomRegular(24, 4, rand.New(rand.NewSource(1)))
	res, err := tokendrop.StableOrientation(g, tokendrop.OrientOptions{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Orientation.Stable() {
		t.Fatal("not stable")
	}
	if res.Rounds <= 0 || res.Rounds >= tokendrop.OrientWorstCaseBound(4) {
		t.Fatalf("suspicious round count %d", res.Rounds)
	}
}

func TestGameFacade(t *testing.T) {
	inst := tokendrop.ChainGame(6)
	sol, stats, err := tokendrop.SolveGame(inst, tokendrop.GameOptions{MaxRounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := tokendrop.VerifyGame(sol); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds < 6 {
		t.Fatal("chain cannot finish this fast")
	}

	seq := tokendrop.SolveGameSequential(inst, tokendrop.PolicyFirst, nil)
	if err := tokendrop.VerifyGame(seq); err != nil {
		t.Fatal(err)
	}

	fig := tokendrop.Figure2Game()
	sol2, _, err := tokendrop.SolveGame(fig, tokendrop.GameOptions{Tie: tokendrop.TieRandom, Seed: 7, MaxRounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := tokendrop.VerifyGame(sol2); err != nil {
		t.Fatal(err)
	}
}

func TestGame3LevelFacade(t *testing.T) {
	inst := tokendrop.ChainGame(2)
	sol, _, err := tokendrop.SolveGame3Level(inst, tokendrop.GameOptions{MaxRounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := tokendrop.VerifyGame(sol); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tokendrop.SolveGame3Level(tokendrop.ChainGame(5), tokendrop.GameOptions{}); err == nil {
		t.Fatal("tall game accepted by the 3-level solver")
	}
}

func TestCustomGameConstruction(t *testing.T) {
	g := tokendrop.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	inst, err := tokendrop.NewGame(g, []int{0, 1, 2}, []bool{false, true, true})
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := tokendrop.SolveGame(inst, tokendrop.GameOptions{MaxRounds: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := tokendrop.VerifyGame(sol); err != nil {
		t.Fatal(err)
	}
	if _, err := tokendrop.NewGame(g, []int{0, 2, 4}, make([]bool, 3)); err == nil {
		t.Fatal("invalid levels accepted")
	}
}

func TestAssignmentFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := tokendrop.RandomBipartite(20, 8, 3, rng)
	b, err := tokendrop.NewBipartite(g, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tokendrop.StableAssignment(b, tokendrop.AssignOptions{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Stable() {
		t.Fatal("not stable")
	}
	ratio, opt, err := tokendrop.SemimatchingApproxRatio(res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if ratio > 2 || opt <= 0 {
		t.Fatalf("ratio %.3f opt %d", ratio, opt)
	}
}

func TestBoundedAndMatchingFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := tokendrop.RandomBipartite(16, 8, 3, rng)
	b, err := tokendrop.NewBipartite(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tokendrop.KBoundedAssignment(b, tokendrop.BoundedOptions{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.KStable(2) {
		t.Fatal("not 2-bounded stable")
	}
	matchOf := tokendrop.MatchingFromBounded(res.Assignment)
	if err := tokendrop.VerifyMaximalMatching(b, matchOf); err != nil {
		t.Fatal(err)
	}

	mm, err := tokendrop.MaximalMatching(b, 100000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tokendrop.VerifyMaximalMatching(b, mm.MatchOf); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineFacade(t *testing.T) {
	g := tokendrop.StarGraph(8)
	o := tokendrop.ArbitraryOrientation(g, tokendrop.InitRandom, rand.New(rand.NewSource(1)))
	res := tokendrop.GreedyOrientation(o.Clone(), tokendrop.FlipWorst, rand.New(rand.NewSource(2)))
	if !res.Orientation.Stable() {
		t.Fatal("greedy did not stabilize")
	}
	selfish, err := tokendrop.SelfishOrientation(o, 3, 1<<18, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !selfish.Orientation.Stable() {
		t.Fatal("selfish flips did not stabilize")
	}
}

func TestBipartiteGameFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := tokendrop.RandomBipartite(10, 10, 3, rng)
	inst := tokendrop.BipartiteGame(g, 10)
	sol, _, err := tokendrop.SolveGame(inst, tokendrop.GameOptions{MaxRounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := tokendrop.VerifyGame(sol); err != nil {
		t.Fatal(err)
	}
	// Traversals form a matching (Theorem 4.6's reduction).
	b, _ := tokendrop.NewBipartite(g, 10)
	matchOf := make([]int, g.N())
	for v := range matchOf {
		matchOf[v] = -1
	}
	for _, tr := range sol.Traversals() {
		if len(tr.Path) == 2 {
			matchOf[tr.Path[0]] = tr.Path[1]
			matchOf[tr.Path[1]] = tr.Path[0]
		}
	}
	if err := tokendrop.VerifyMaximalMatching(b, matchOf); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsFacade(t *testing.T) {
	if tokendrop.PathGraph(4).M() != 3 {
		t.Fatal("path")
	}
	if tokendrop.CycleGraph(5).M() != 5 {
		t.Fatal("cycle")
	}
	if tokendrop.GridGraph(2, 3).N() != 6 {
		t.Fatal("grid")
	}
	if tokendrop.CompleteGraph(4).M() != 6 {
		t.Fatal("complete")
	}
	if tokendrop.CaterpillarGraph(5, 1).N() != 10 {
		t.Fatal("caterpillar")
	}
	tree, depths := tokendrop.PerfectDAryTree(3, 2)
	if tree.N() != len(depths) {
		t.Fatal("tree")
	}
	rng := rand.New(rand.NewSource(1))
	if !tokendrop.RandomRegular(12, 3, rng).IsRegular(3) {
		t.Fatal("regular")
	}
	if tokendrop.RandomGraph(10, 15, rng).M() != 15 {
		t.Fatal("gnm")
	}
	if tokendrop.RandomBipartiteRegular(6, 4, 2, 3, rng).M() != 12 {
		t.Fatal("bipartite regular")
	}
	cfg := tokendrop.LayeredConfig{Levels: 3, Width: 4, ParentDeg: 2, TokenProb: 0.5}
	inst := tokendrop.RandomLayeredGame(cfg, rng)
	if inst.Height() != 3 {
		t.Fatal("layered")
	}
	_, _, err := tokendrop.OptimalSemimatching(mustBip(t, tokendrop.RandomBipartite(6, 3, 2, rng), 6))
	if err != nil {
		t.Fatal(err)
	}
}

func mustBip(t *testing.T, g *tokendrop.Graph, nl int) *tokendrop.Bipartite {
	t.Helper()
	b, err := tokendrop.NewBipartite(g, nl)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
