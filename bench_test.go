package tokendrop_test

// One benchmark per experiment table of the E1–E26 index (see
// internal/bench): each regenerates its table on the quick profile, so
// `go test -bench=.` re-derives every figure/theorem check of the paper.
// Custom metrics report the quantity the corresponding claim is about
// (rounds, phases, ratios) alongside ns/op.
//
// The full-size tables are produced by cmd/td-experiments; CHANGES.md
// records the measured engine-speedup numbers.

import (
	"math/rand"
	"testing"

	"tokendrop"
	"tokendrop/internal/bench"
)

const benchSeed = 1234

func quick() bench.Profile { return bench.Profile{Quick: true, Seed: benchSeed} }

func BenchmarkE1StableOrientationSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E1StableOrientationExamples(quick())
	}
}

func BenchmarkE2TokenDroppingFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E2TokenDroppingFigure2(quick())
	}
}

func BenchmarkE3TraversalTails(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E3TraversalTails(quick())
	}
}

func BenchmarkE4aProposalDeltaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E4ProposalDeltaSweep(quick())
	}
}

func BenchmarkE4bProposalLevelSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E4ProposalLevelSweep(quick())
	}
}

func BenchmarkE5Height2Matching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E5Height2Matching(quick())
	}
}

func BenchmarkE6ThreeLevelSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E6ThreeLevelSweep(quick())
	}
}

func BenchmarkE7OrientDeltaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E7OrientDeltaSweep(quick())
	}
}

func BenchmarkE8OrientVsBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E8OrientVsBaseline(quick())
	}
}

func BenchmarkE9LowerBoundConstructions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E9LowerBound(quick())
	}
}

func BenchmarkE10AssignSweeps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E10AssignSweeps(quick())
	}
}

func BenchmarkE11BoundedToMatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E11BoundedToMatching(quick())
	}
}

func BenchmarkE12BoundedSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E12BoundedSweep(quick())
	}
}

func BenchmarkE13SemimatchApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E13SemimatchApprox(quick())
	}
}

func BenchmarkE14SequentialGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E14SequentialGreedy(quick())
	}
}

func BenchmarkE15LoadBalancingContrast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E15LoadBalancingContrast(quick())
	}
}

func BenchmarkE16HeightGapAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E16HeightGapAblation(quick())
	}
}

func BenchmarkE17ThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E17ThresholdSweep(quick())
	}
}

func BenchmarkE18TieBreakAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E18TieBreakAblation(quick())
	}
}

func BenchmarkE19ScheduleAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E19ScheduleAblation(quick())
	}
}

func BenchmarkE20RuntimeScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E20RuntimeScaling(quick())
	}
}

func BenchmarkE21MessageSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E21MessageSizes(quick())
	}
}

func BenchmarkE22ShardedEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E22ShardedEngine(quick())
	}
}

func BenchmarkE23OrientSharded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E23OrientSharded(quick())
	}
}

func BenchmarkE24AssignSharded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E24AssignSharded(quick())
	}
}

func BenchmarkE25ShardScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E25ShardScaling(quick())
	}
}

func BenchmarkE26CentralStepScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E26CentralStepScaling(quick())
	}
}

func BenchmarkE28ArenaPareto(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E28ArenaPareto(quick())
	}
}

func BenchmarkFixedScheduleOrientation(b *testing.B) {
	g := tokendrop.CycleGraph(10)
	for i := 0; i < b.N; i++ {
		if _, err := tokendrop.StableOrientationFixedSchedule(g, tokendrop.FixedOptions{Seed: benchSeed}); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the building blocks, with the round counts the
// theory speaks about reported as custom metrics.

func BenchmarkProposalChainL64(b *testing.B) {
	inst := tokendrop.ChainGame(64)
	rounds := 0
	for i := 0; i < b.N; i++ {
		_, stats, err := tokendrop.SolveGame(inst, tokendrop.GameOptions{MaxRounds: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkProposalRandomLayered(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	cfg := tokendrop.LayeredConfig{Levels: 6, Width: 24, ParentDeg: 6, TokenProb: 0.7, FreeBottom: true}
	inst := tokendrop.RandomLayeredGame(cfg, rng)
	rounds := 0
	for i := 0; i < b.N; i++ {
		_, stats, err := tokendrop.SolveGame(inst, tokendrop.GameOptions{MaxRounds: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkStableOrientationRegular(b *testing.B) {
	g := tokendrop.RandomRegular(48, 6, rand.New(rand.NewSource(benchSeed)))
	rounds, phases := 0, 0
	for i := 0; i < b.N; i++ {
		res, err := tokendrop.StableOrientation(g, tokendrop.OrientOptions{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		rounds, phases = res.Rounds, res.Phases
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(phases), "phases")
}

func BenchmarkStableAssignment(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	g := tokendrop.RandomBipartite(60, 20, 4, rng)
	bip, err := tokendrop.NewBipartite(g, 60)
	if err != nil {
		b.Fatal(err)
	}
	rounds := 0
	for i := 0; i < b.N; i++ {
		res, err := tokendrop.StableAssignment(bip, tokendrop.AssignOptions{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkKBoundedAssignment(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	g := tokendrop.RandomBipartite(60, 20, 4, rng)
	bip, err := tokendrop.NewBipartite(g, 60)
	if err != nil {
		b.Fatal(err)
	}
	rounds := 0
	for i := 0; i < b.N; i++ {
		res, err := tokendrop.KBoundedAssignment(bip, tokendrop.BoundedOptions{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkMaximalMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	g := tokendrop.RandomBipartite(80, 40, 6, rng)
	bip, err := tokendrop.NewBipartite(g, 80)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := tokendrop.MaximalMatching(bip, 1<<20, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalSemimatching(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	g := tokendrop.RandomBipartite(40, 12, 3, rng)
	bip, err := tokendrop.NewBipartite(g, 40)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := tokendrop.OptimalSemimatching(bip); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyGame(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	cfg := tokendrop.LayeredConfig{Levels: 6, Width: 20, ParentDeg: 4, TokenProb: 0.6, FreeBottom: true}
	inst := tokendrop.RandomLayeredGame(cfg, rng)
	sol, _, err := tokendrop.SolveGame(inst, tokendrop.GameOptions{MaxRounds: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tokendrop.VerifyGame(sol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalRuntimeScaling measures the simulator itself on a game
// with thousands of nodes, exercising the parallel round executor.
func BenchmarkLocalRuntimeScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	cfg := tokendrop.LayeredConfig{Levels: 15, Width: 256, ParentDeg: 4, TokenProb: 0.6, FreeBottom: true}
	inst := tokendrop.RandomLayeredGame(cfg, rng)
	for i := 0; i < b.N; i++ {
		if _, _, err := tokendrop.SolveGame(inst, tokendrop.GameOptions{MaxRounds: 1 << 20}); err != nil {
			b.Fatal(err)
		}
	}
}
