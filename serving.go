package tokendrop

import (
	"tokendrop/internal/assign"
	"tokendrop/internal/encode"
	"tokendrop/internal/graph"
)

// Serving-side facade: the mutable bipartite overlay and the incremental
// Resolver that keeps a stable assignment repaired under churn — the
// online counterpart of StableAssignmentSharded, used by cmd/td-serve.

type (
	// BipartiteOverlay is a mutable customer/server network layered over
	// the CSR form: customers, servers, and edges insert and delete
	// without a full rebuild, compacting only when fragmentation crosses
	// the threshold.
	BipartiteOverlay = graph.BipartiteOverlay
	// Resolver maintains a stable assignment on a BipartiteOverlay under
	// churn, repairing after every delta instead of re-solving. Not safe
	// for concurrent use; serving layers wrap it in a mutex.
	Resolver = assign.Resolver
	// ResolverOptions configure NewResolver.
	ResolverOptions = assign.ResolverOptions
	// ResolverStats counts a Resolver's deltas, repair moves, fallback
	// solves, and live network size.
	ResolverStats = assign.ResolverStats
)

// NewBipartiteOverlay wraps fb (nil means start empty) as a mutable
// overlay. Solvers are driven through a Resolver, which owns the
// overlay's assignment state.
func NewBipartiteOverlay(fb *FlatBipartite) *BipartiteOverlay {
	return graph.NewBipartiteOverlay(fb)
}

// NewResolver returns a Resolver over fb (nil means start empty). A
// non-nil prior assignment (one adjacent server index per customer, or
// -1 to let the Resolver place that customer) is adopted and repaired;
// a nil prior triggers one from-scratch sharded solve. Close releases
// the Resolver's engine session.
func NewResolver(fb *FlatBipartite, prior []int32, opt ResolverOptions) (*Resolver, error) {
	return assign.NewResolver(fb, prior, opt)
}

// ResolverSnapshotJSON converts a Resolver's live network and assignment
// to the on-disk snapshot form (layer "overlay", self-contained). The
// inverse is SnapshotJSON.ToResolver.
func ResolverSnapshotJSON(r *Resolver, meta RunMetaJSON) *SnapshotJSON {
	return encode.FromResolver(r, meta)
}
