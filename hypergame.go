package tokendrop

import (
	"math/rand"

	"tokendrop/internal/hypergame"
)

// Hypergraph token dropping (Section 7.1): customers of arbitrary degree
// become hyperedges over the server vertices; a token pass consumes the
// whole hyperedge. The distributed solvers run on the customer/server
// incidence network — customers act as relay nodes, exactly as in the
// assignment problem the game powers.

type (
	// HyperInstance is a hypergraph token dropping game.
	HyperInstance = hypergame.Instance
	// HyperSolution is its move log plus final position.
	HyperSolution = hypergame.Solution
	// HyperMove is one token pass through a hyperedge.
	HyperMove = hypergame.Move
	// HyperOptions configure the distributed hypergraph solvers.
	HyperOptions = hypergame.SolveOptions
	// HyperStats reports rounds, messages, and the Lemma 4.4 analogue.
	HyperStats = hypergame.DistStats
	// HyperLayeredConfig parameterizes random layered hypergraph games.
	HyperLayeredConfig = hypergame.LayeredConfig
	// HyperThreeLevelConfig parameterizes random 3-level games.
	HyperThreeLevelConfig = hypergame.ThreeLevelConfig
)

// NewHyperGame validates and builds a hypergraph game: levels per vertex,
// initial tokens, hyperedges as endpoint sets, and a head per hyperedge
// satisfying ℓ(head) = min over other endpoints + 1.
func NewHyperGame(level []int, token []bool, edges [][]int, head []int) (*HyperInstance, error) {
	return hypergame.NewInstance(level, token, edges, head)
}

// SolveHyperGame runs the distributed proposal algorithm for hypergraph
// token dropping (Theorem 7.1, O(L·S²) rounds on the incidence network).
func SolveHyperGame(inst *HyperInstance, opt HyperOptions) (*HyperSolution, HyperStats, error) {
	return hypergame.SolveProposal(inst, opt)
}

// SolveHyperGame3Level runs the specialized solver for games on levels
// {0, 1, 2} — the O(S)-per-game engine behind Theorem 7.5.
func SolveHyperGame3Level(inst *HyperInstance, opt HyperOptions) (*HyperSolution, HyperStats, error) {
	return hypergame.SolveThreeLevel(inst, opt)
}

// SolveHyperGameSequential plays the game with a centralized scheduler
// (first legal move, or seeded-random when rng is non-nil).
func SolveHyperGameSequential(inst *HyperInstance, rng *rand.Rand) *HyperSolution {
	return hypergame.SolveSequential(inst, rng)
}

// VerifyHyperGame checks a solution against the hypergraph game rules.
func VerifyHyperGame(sol *HyperSolution) error { return hypergame.Verify(sol) }

// RandomHyperGame builds a seeded random layered hypergraph game.
func RandomHyperGame(cfg HyperLayeredConfig, rng *rand.Rand) *HyperInstance {
	return hypergame.RandomLayered(cfg, rng)
}

// RandomHyperGame3Level builds a seeded random game on levels {0, 1, 2}.
func RandomHyperGame3Level(cfg HyperThreeLevelConfig, rng *rand.Rand) *HyperInstance {
	return hypergame.RandomThreeLevel(cfg, rng)
}
