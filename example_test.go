package tokendrop_test

import (
	"fmt"
	"math/rand"

	"tokendrop"
)

// The sharded orientation runtime: build a graph in CSR form (or convert
// one with NewFlatGraph) and solve it on the flat engine. Under first-port
// tie-breaking the run is bit-identical to StableOrientation on the same
// graph.
func ExampleStableOrientationSharded() {
	g := tokendrop.RandomRegular(24, 4, rand.New(rand.NewSource(1)))

	seed, err := tokendrop.StableOrientation(g, tokendrop.OrientOptions{})
	if err != nil {
		panic(err)
	}
	flat, err := tokendrop.StableOrientationSharded(tokendrop.NewFlatGraph(g), tokendrop.OrientShardedOptions{})
	if err != nil {
		panic(err)
	}

	fmt.Println("stable:", flat.Stable())
	fmt.Println("engines agree:", flat.Rounds == seed.Rounds && flat.Phases == seed.Phases)
	// Output:
	// stable: true
	// engines agree: true
}

// The sharded assignment runtime: wrap a customer/server network as a
// FlatBipartite and solve it on the flat engine. Under first-port
// tie-breaking the run is bit-identical to StableAssignment on the same
// network.
func ExampleStableAssignmentSharded() {
	rng := rand.New(rand.NewSource(2))
	b, err := tokendrop.NewBipartite(tokendrop.RandomBipartite(30, 10, 3, rng), 30)
	if err != nil {
		panic(err)
	}

	seed, err := tokendrop.StableAssignment(b, tokendrop.AssignOptions{})
	if err != nil {
		panic(err)
	}
	flat, err := tokendrop.StableAssignmentSharded(tokendrop.NewFlatBipartite(b), tokendrop.AssignShardedOptions{})
	if err != nil {
		panic(err)
	}

	fmt.Println("stable:", flat.Stable())
	fmt.Println("engines agree:", flat.Rounds == seed.Rounds && flat.Phases == seed.Phases)
	// Output:
	// stable: true
	// engines agree: true
}
