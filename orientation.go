package tokendrop

import (
	"math/rand"

	"tokendrop/internal/baseline"
	"tokendrop/internal/graph"
	"tokendrop/internal/orient"
)

// Orientation-side facade: the Theorem 5.1 algorithm and the baselines it
// is measured against.

type (
	// OrientOptions configure StableOrientation.
	OrientOptions = orient.Options
	// OrientResult carries the stable orientation, phase log, and round
	// counts (adaptive and worst-case).
	OrientResult = orient.Result
	// OrientPhase is one phase record (proposals, game rounds, badness).
	OrientPhase = orient.PhaseRecord
	// FlipPolicy selects the sequential greedy's next unhappy edge.
	FlipPolicy = baseline.FlipPolicy
	// InitRule selects the arbitrary starting orientation for baselines.
	InitRule = baseline.InitRule
	// GreedyResult reports a sequential greedy run.
	GreedyResult = baseline.SequentialResult
	// SelfishResult reports a distributed selfish-flip run.
	SelfishResult = baseline.SelfishResult
	// FixedOptions configure StableOrientationFixedSchedule.
	FixedOptions = orient.FixedOptions
	// FixedResult reports a fixed-schedule run.
	FixedResult = orient.FixedResult
	// FlatGraph is a CSR-form undirected graph — the input of the sharded
	// orientation runtime, sized for 10⁶+ vertices.
	FlatGraph = graph.CSR
	// OrientShardedOptions configure StableOrientationSharded.
	OrientShardedOptions = orient.ShardedOptions
	// OrientShardedResult carries the flat orientation (per-edge heads,
	// per-vertex loads) plus the phase log and round counts.
	OrientShardedResult = orient.ShardedResult
)

// Baseline configuration constants.
const (
	FlipFirst          = baseline.FlipFirst
	FlipRandom         = baseline.FlipRandom
	FlipWorst          = baseline.FlipWorst
	InitTowardHigherID = baseline.InitTowardHigherID
	InitRandom         = baseline.InitRandom
)

// StableOrientation computes a stable orientation of g — every edge (u,v)
// satisfies indegree(v) ≤ indegree(u)+1 — with the paper's token-dropping
// phase algorithm (Theorem 5.1, O(Δ⁴) rounds).
func StableOrientation(g *Graph, opt OrientOptions) (*OrientResult, error) {
	return orient.Solve(g, opt)
}

// OrientWorstCaseBound returns the analytic fixed-schedule round bound of
// the Theorem 5.1 algorithm for maximum degree delta (Θ(Δ⁴)).
func OrientWorstCaseBound(delta int) int { return orient.WorstCaseBound(delta) }

// StableOrientationSharded computes a stable orientation of a CSR-form
// graph on the sharded flat runtime — the million-node counterpart of
// StableOrientation. Under TieFirstPort the run is bit-identical to
// StableOrientation on the same graph (same phase log, rounds, and final
// orientation); TieRandom draws engine-specific streams.
func StableOrientationSharded(c *FlatGraph, opt OrientShardedOptions) (*OrientShardedResult, error) {
	return orient.SolveSharded(c, opt)
}

// NewFlatGraph converts a pointer-based graph to CSR form, preserving
// vertex ids, edge ids, and port order.
func NewFlatGraph(g *Graph) *FlatGraph { return graph.NewCSRFromGraph(g) }

// StableOrientationFixedSchedule runs the Theorem 5.1 algorithm as a true
// LOCAL protocol on the paper's fixed worst-case schedule: nodes know Δ,
// run 2Δ phases of fixed length, and spend the full Θ(Δ⁴) budget — no
// simulator-side barriers. StableOrientation computes the same thing with
// adaptive phase boundaries and reports the rounds actually needed.
func StableOrientationFixedSchedule(g *Graph, opt FixedOptions) (*FixedResult, error) {
	return orient.SolveFixed(g, opt)
}

// ArbitraryOrientation orients every edge of g by the given rule — the
// starting point of the baseline algorithms.
func ArbitraryOrientation(g *Graph, rule InitRule, rng *rand.Rand) *Orientation {
	return baseline.OrientAll(g, rule, rng)
}

// GreedyOrientation runs the centralized sequential algorithm of Section
// 1.1 from the given orientation (mutated in place) until stable.
func GreedyOrientation(o *Orientation, policy FlipPolicy, rng *rand.Rand) GreedyResult {
	return baseline.SequentialGreedy(o, policy, rng)
}

// SelfishOrientation runs the distributed selfish-flip dynamic (the
// CHSW12-class comparator) from the given orientation until globally
// stable; the input is not mutated.
func SelfishOrientation(o *Orientation, seed int64, maxRounds, workers int) (*SelfishResult, error) {
	return baseline.SelfishFlips(o, seed, maxRounds, workers)
}

// Graph constructors, re-exported for building inputs.

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// PathGraph returns the path on n vertices.
func PathGraph(n int) *Graph { return graph.Path(n) }

// CycleGraph returns the cycle on n ≥ 3 vertices.
func CycleGraph(n int) *Graph { return graph.Cycle(n) }

// StarGraph returns a hub with the given number of leaves.
func StarGraph(leaves int) *Graph { return graph.Star(leaves) }

// GridGraph returns the rows×cols grid.
func GridGraph(rows, cols int) *Graph { return graph.Grid2D(rows, cols) }

// CompleteGraph returns K_n.
func CompleteGraph(n int) *Graph { return graph.Complete(n) }

// CaterpillarGraph returns a spine with pendant legs per spine vertex —
// the propagation-chain workload of Section 1.1.
func CaterpillarGraph(spine, legs int) *Graph { return graph.Caterpillar(spine, legs) }

// RandomRegular returns a seeded random d-regular simple graph.
func RandomRegular(n, d int, rng *rand.Rand) *Graph { return graph.RandomRegular(n, d, rng) }

// RandomRegularFlat builds a seeded random d-regular simple graph directly
// in CSR form — the orientation workload of the load-balancing evaluations
// at 10⁶+ vertices, where materializing the pointer graph first would
// dominate the run. Requires 2d < n.
func RandomRegularFlat(n, d int, rng *rand.Rand) *FlatGraph {
	return graph.CSRRandomRegular(n, d, rng)
}

// PowerLawFlat builds a seeded general power-law graph in CSR form: every
// vertex draws a degree from P(d) ∝ d^(-alpha) on 1..maxDeg and attaches
// to that many distinct random vertices — the skewed-demand orientation
// workload (a few hubs, a heavy tail of near-singletons).
func PowerLawFlat(n int, alpha float64, maxDeg int, rng *rand.Rand) *FlatGraph {
	return graph.CSRPowerLaw(n, alpha, maxDeg, rng)
}

// RandomGraph returns a seeded uniform random simple graph with m edges.
func RandomGraph(n, m int, rng *rand.Rand) *Graph { return graph.RandomGNM(n, m, rng) }

// PerfectDAryTree returns the Section 6 tree (every non-leaf has degree d,
// all leaves at the same depth) and each vertex's depth.
func PerfectDAryTree(d, depth int) (*Graph, []int) { return graph.PerfectDAry(d, depth) }
