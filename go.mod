module tokendrop

go 1.21
