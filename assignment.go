package tokendrop

import (
	"math/rand"

	"tokendrop/internal/assign"
	"tokendrop/internal/bounded"
	"tokendrop/internal/graph"
	"tokendrop/internal/matching"
	"tokendrop/internal/semimatch"
)

// Assignment-side facade: stable assignments (Section 7), the k-bounded
// relaxation, maximal matching, and semi-matching quality measurement.

type (
	// AssignOptions configure StableAssignment.
	AssignOptions = assign.Options
	// AssignResult carries the assignment, phase log, and round counts.
	AssignResult = assign.Result
	// BoundedOptions configure KBoundedAssignment (K = 0 means 2).
	BoundedOptions = bounded.Options
	// BoundedResult carries the k-bounded assignment and statistics.
	BoundedResult = bounded.Result
	// MatchingResult carries a maximal matching and its round count.
	MatchingResult = matching.Result
	// FlatBipartite is a CSR-form customer/server network — the input of
	// the sharded assignment runtime, sized for 10⁶+ customers.
	FlatBipartite = graph.CSRBipartite
	// AssignShardedOptions configure StableAssignmentSharded.
	AssignShardedOptions = assign.ShardedOptions
	// AssignShardedResult carries the flat assignment (per-customer server
	// indices, per-server loads) plus the phase log and round counts.
	AssignShardedResult = assign.ShardedResult
	// BoundedShardedOptions configure KBoundedAssignmentSharded (K = 0
	// means 2).
	BoundedShardedOptions = bounded.ShardedOptions
	// BoundedShardedResult carries the flat k-bounded assignment and
	// statistics.
	BoundedShardedResult = bounded.ShardedResult
)

// NewBipartite wraps g as a customer/server network: vertices
// 0..numLeft-1 are customers, the rest servers; every edge must cross.
func NewBipartite(g *Graph, numLeft int) (*Bipartite, error) {
	return graph.NewBipartite(g, numLeft)
}

// RandomBipartite returns a network where each of nl customers picks c
// distinct servers out of nr uniformly at random.
func RandomBipartite(nl, nr, c int, rng *rand.Rand) *Graph {
	return graph.RandomBipartite(nl, nr, c, rng)
}

// RandomBipartiteRegular returns a network with every customer of degree
// c and every server of degree s (nl·c must equal nr·s).
func RandomBipartiteRegular(nl, nr, c, s int, rng *rand.Rand) *Graph {
	return graph.RandomBipartiteRegular(nl, nr, c, s, rng)
}

// StableAssignment assigns every customer of b to an adjacent server so
// that no customer can lower its server's load by switching, using the
// hypergraph token dropping algorithm of Theorem 7.3 (O(C·S⁴) rounds).
func StableAssignment(b *Bipartite, opt AssignOptions) (*AssignResult, error) {
	return assign.Solve(b, opt)
}

// KBoundedAssignment solves the k-bounded relaxation of Section 7.3
// (loads above k are indistinguishable); with the default k = 2 this is
// the 0–1–many problem solved in O(C·S²) rounds (Theorem 7.5).
func KBoundedAssignment(b *Bipartite, opt BoundedOptions) (*BoundedResult, error) {
	return bounded.Solve(b, opt)
}

// StableAssignmentSharded computes a stable assignment of a CSR-form
// network on the sharded flat runtime — the million-customer counterpart
// of StableAssignment. Under TieFirstPort the run is bit-identical to
// StableAssignment on the same network (same phase log, rounds, and final
// assignment); TieRandom draws engine-specific streams.
func StableAssignmentSharded(fb *FlatBipartite, opt AssignShardedOptions) (*AssignShardedResult, error) {
	return assign.SolveSharded(fb, opt)
}

// KBoundedAssignmentSharded solves the k-bounded relaxation on the sharded
// flat runtime; with the default k = 2 each phase's game runs on the
// specialized three-level flat solver (Theorem 7.5). Under TieFirstPort
// the run is bit-identical to KBoundedAssignment on the same network.
func KBoundedAssignmentSharded(fb *FlatBipartite, opt BoundedShardedOptions) (*BoundedShardedResult, error) {
	return bounded.SolveSharded(fb, opt)
}

// NewFlatBipartite converts a pointer-based customer/server network to CSR
// form, preserving vertex ids, edge ids, and port order.
func NewFlatBipartite(b *Bipartite) *FlatBipartite {
	return graph.NewCSRBipartiteFromBipartite(b)
}

// NewFlatBipartiteCSR wraps a CSR graph as a customer/server network:
// vertices 0..numLeft-1 are customers, the rest servers; every edge must
// cross.
func NewFlatBipartiteCSR(c *FlatGraph, numLeft int) (*FlatBipartite, error) {
	return graph.NewCSRBipartite(c, numLeft)
}

// PowerLawBipartiteFlat builds a customer/server network directly in CSR
// form where each of nl customers draws its degree from a truncated power
// law P(d) ∝ d^(-alpha) on 1..maxDeg and attaches to that many distinct
// random servers — the skewed-demand assignment workload at 10⁵+
// customers, where materializing the pointer graph first would dominate
// the run.
func PowerLawBipartiteFlat(nl, nr int, alpha float64, maxDeg int, rng *rand.Rand) *FlatBipartite {
	return graph.MustCSRBipartite(graph.CSRPowerLawBipartite(nl, nr, alpha, maxDeg, rng), nl)
}

// MatchingFromBounded applies the Theorem 7.4 post-processing: a 2-bounded
// stable assignment becomes a maximal matching (every server keeps one
// assigned customer).
func MatchingFromBounded(a *Assignment) []int { return bounded.ReduceToMatching(a) }

// MatchingFromBoundedSharded is MatchingFromBounded for the flat runtime:
// it reduces a 2-bounded sharded result to a maximal matching without
// materializing the object assignment.
func MatchingFromBoundedSharded(r *BoundedShardedResult) []int {
	return bounded.ReduceToMatchingSharded(r)
}

// MaximalMatching computes a maximal matching of b with the distributed
// proposal algorithm (O(Δ) rounds).
func MaximalMatching(b *Bipartite, maxRounds, workers int) (*MatchingResult, error) {
	return matching.Solve(b, maxRounds, workers)
}

// VerifyMaximalMatching checks matchOf is a maximal matching of b.
func VerifyMaximalMatching(b *Bipartite, matchOf []int) error {
	return matching.VerifyMaximal(b, matchOf)
}

// OptimalSemimatching computes an exact optimal semi-matching of b
// (minimum Σ f(load), f(x) = x(x+1)/2) via min-cost flow, returning the
// assignment and its cost.
func OptimalSemimatching(b *Bipartite) (*Assignment, int, error) {
	return semimatch.Optimal(b)
}

// SemimatchingApproxRatio returns cost(a)/optimal together with the
// optimal cost; stable assignments stay at or below 2 (Section 1.3).
func SemimatchingApproxRatio(a *Assignment) (float64, int, error) {
	return semimatch.ApproxRatio(a)
}
