package tokendrop

import (
	"io"

	"tokendrop/internal/assign"
	"tokendrop/internal/bounded"
	"tokendrop/internal/core"
	"tokendrop/internal/encode"
	"tokendrop/internal/orient"
)

// Record/replay facade: crash-consistent mid-solve snapshots of the
// sharded solvers, their versioned on-disk form, and the structured
// divergence report a failed replay produces. See ARCHITECTURE.md
// ("Replay and snapshots") for the format and the crash-consistency
// argument.

type (
	// GameSnapshot is a sharded game snapshot at a round boundary; feed
	// it back through ShardedGameOptions.ResumeFrom.
	GameSnapshot = core.Snapshot
	// OrientSnapshot is an orientation snapshot at a phase boundary; feed
	// it back through OrientShardedOptions.ResumeFrom.
	OrientSnapshot = orient.Snapshot
	// AssignSnapshot is a stable-assignment snapshot at a phase boundary;
	// feed it back through AssignShardedOptions.ResumeFrom.
	AssignSnapshot = assign.Snapshot
	// BoundedSnapshot is a k-bounded assignment snapshot at a phase
	// boundary; feed it back through BoundedShardedOptions.ResumeFrom.
	BoundedSnapshot = bounded.Snapshot
	// SnapshotJSON is the versioned on-disk snapshot form, self-describing
	// via a layer discriminator, a graph content hash, and run provenance.
	SnapshotJSON = encode.SnapshotJSON
	// RunMetaJSON records a run's provenance (workload spec, generator
	// seed, tie rule, solve seed, shard count) inside a SnapshotJSON.
	RunMetaJSON = encode.RunMetaJSON
	// PhaseRecordJSON is the on-disk form of one phase-log record.
	PhaseRecordJSON = encode.PhaseRecordJSON
	// ReplayDivergence is the structured replay-failure report: the first
	// differing field between a recording and its replay. It implements
	// error.
	ReplayDivergence = encode.Divergence
)

// SnapshotFormatVersion is the current on-disk snapshot format version;
// readers reject other versions and unknown fields.
const SnapshotFormatVersion = encode.SnapshotVersion

// Snapshot layer discriminators.
const (
	SnapshotLayerCore    = encode.LayerCore
	SnapshotLayerOrient  = encode.LayerOrient
	SnapshotLayerAssign  = encode.LayerAssign
	SnapshotLayerBounded = encode.LayerBounded
)

// TieName returns the RunMetaJSON encoding of a tie rule ("first-port"
// or "random").
func TieName(tie TieBreak) string { return encode.TieName(tie) }

// ParseTie inverts TieName.
func ParseTie(name string) (TieBreak, error) { return encode.ParseTie(name) }

// GameSnapshotJSON converts a game snapshot to its on-disk form, bound
// to the instance it was captured on.
func GameSnapshotJSON(snap *GameSnapshot, fi *FlatGame, meta RunMetaJSON) *SnapshotJSON {
	return encode.FromCoreSnapshot(snap, fi, meta)
}

// BindGameSnapshot validates an on-disk snapshot against the instance a
// resume will run on (layer, version, graph hash) and rebuilds the
// in-memory snapshot.
func BindGameSnapshot(sj *SnapshotJSON, fi *FlatGame) (*GameSnapshot, error) {
	return sj.ToCoreSnapshot(fi)
}

// OrientSnapshotJSON converts an orientation snapshot to its on-disk
// form, bound to the graph it was captured on.
func OrientSnapshotJSON(snap *OrientSnapshot, c *FlatGraph, meta RunMetaJSON) *SnapshotJSON {
	return encode.FromOrientSnapshot(snap, c, meta)
}

// BindOrientSnapshot validates an on-disk snapshot against the graph a
// resume will run on and rebuilds the in-memory snapshot.
func BindOrientSnapshot(sj *SnapshotJSON, c *FlatGraph) (*OrientSnapshot, error) {
	return sj.ToOrientSnapshot(c)
}

// AssignSnapshotJSON converts an assignment snapshot to its on-disk
// form, bound to the network it was captured on.
func AssignSnapshotJSON(snap *AssignSnapshot, fb *FlatBipartite, meta RunMetaJSON) *SnapshotJSON {
	return encode.FromAssignSnapshot(snap, fb, meta)
}

// BindAssignSnapshot validates an on-disk snapshot against the network a
// resume will run on and rebuilds the in-memory snapshot.
func BindAssignSnapshot(sj *SnapshotJSON, fb *FlatBipartite) (*AssignSnapshot, error) {
	return sj.ToAssignSnapshot(fb)
}

// BoundedSnapshotJSON converts a k-bounded assignment snapshot to its
// on-disk form, bound to the network it was captured on.
func BoundedSnapshotJSON(snap *BoundedSnapshot, fb *FlatBipartite, meta RunMetaJSON) *SnapshotJSON {
	return encode.FromBoundedSnapshot(snap, fb, meta)
}

// BindBoundedSnapshot validates an on-disk snapshot against the network
// a resume will run on and rebuilds the in-memory snapshot.
func BindBoundedSnapshot(sj *SnapshotJSON, fb *FlatBipartite) (*BoundedSnapshot, error) {
	return sj.ToBoundedSnapshot(fb)
}

// WriteSnapshot streams a snapshot as indented JSON (deterministic
// encoding, pinned by golden-file tests).
func WriteSnapshot(w io.Writer, sj *SnapshotJSON) error { return encode.WriteSnapshot(w, sj) }

// ReadSnapshot parses a snapshot, rejecting unknown fields and unknown
// format versions.
func ReadSnapshot(r io.Reader) (*SnapshotJSON, error) { return encode.ReadSnapshot(r) }

// SaveSnapshotFile writes a snapshot crash-consistently (temp file in
// the target directory, synced, renamed over the destination).
func SaveSnapshotFile(path string, sj *SnapshotJSON) error { return encode.SaveSnapshotFile(path, sj) }

// ReadSnapshotFile reads a snapshot written by SaveSnapshotFile.
func ReadSnapshotFile(path string) (*SnapshotJSON, error) { return encode.ReadSnapshotFile(path) }

// DiffGameSolutions compares a replayed game solution against its
// recording and returns the first divergence (nil when bit-identical).
func DiffGameSolutions(recorded, replayed *GameSolution) *ReplayDivergence {
	return encode.DiffSolutions(recorded, replayed)
}

// DiffSnapshots compares a replayed run's snapshot against its recording
// and returns the first divergence (nil when bit-identical).
func DiffSnapshots(recorded, replayed *SnapshotJSON) *ReplayDivergence {
	return encode.DiffSnapshots(recorded, replayed)
}

// HashFlatGame returns the content hash a LayerCore snapshot binds to.
func HashFlatGame(fi *FlatGame) string { return encode.GraphHashFlatInstance(fi) }

// HashFlatGraph returns the content hash a LayerOrient snapshot binds to.
func HashFlatGraph(c *FlatGraph) string { return encode.GraphHashCSR(c) }

// HashFlatBipartite returns the content hash a LayerAssign or
// LayerBounded snapshot binds to.
func HashFlatBipartite(fb *FlatBipartite) string { return encode.GraphHashBipartite(fb) }
