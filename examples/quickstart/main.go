// Quickstart: compute a stable orientation of a random regular graph with
// the paper's token-dropping algorithm (Theorem 5.1), verify stability,
// and print the outcome.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tokendrop"
)

func main() {
	// A 4-regular graph on 24 vertices: every edge is a "customer" that
	// must pick one endpoint "server"; stable means no customer would
	// switch to its other endpoint.
	g := tokendrop.RandomRegular(24, 4, rand.New(rand.NewSource(1)))

	res, err := tokendrop.StableOrientation(g, tokendrop.OrientOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stable: %v\n", res.Orientation.Stable())
	fmt.Printf("phases: %d (Lemma 5.5 bound: 2Δ = %d)\n", res.Phases, 2*g.MaxDegree())
	fmt.Printf("communication rounds: %d (Theorem 5.1 worst case: %d)\n",
		res.Rounds, res.WorstCaseRounds)

	// Load distribution: in a d-regular graph the average load is d/2;
	// stability keeps every pair of adjacent loads within 1 of each other
	// in the only direction that matters.
	counts := map[int]int{}
	for v := 0; v < g.N(); v++ {
		counts[res.Orientation.Load(v)]++
	}
	fmt.Println("load histogram (load: #vertices):")
	for l := 0; l <= g.MaxDegree(); l++ {
		if counts[l] > 0 {
			fmt.Printf("  %d: %d\n", l, counts[l])
		}
	}

	// Every edge is happy: flipping it would not improve its head.
	unhappy := 0
	for id := range g.Edges() {
		if !res.Orientation.Happy(id) {
			unhappy++
		}
	}
	fmt.Printf("unhappy edges: %d\n", unhappy)
}
