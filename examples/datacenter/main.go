// Datacenter: the 0–1–many scenario of Section 7.3 — a scheduler only
// cares whether a rack is empty, lightly loaded, or busy. We solve the
// 2-bounded stable assignment (Theorem 7.5, O(C·S²) rounds — much faster
// than the full problem's O(C·S⁴)), then run the Theorem 7.4 reduction to
// extract a maximal matching of jobs to racks, and cross-check against
// the direct distributed maximal matching algorithm.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tokendrop"
)

func main() {
	const (
		jobs  = 90
		racks = 36
		reach = 4 // racks each job can run on
	)
	rng := rand.New(rand.NewSource(11))
	g := tokendrop.RandomBipartite(jobs, racks, reach, rng)
	b, err := tokendrop.NewBipartite(g, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("datacenter: %d jobs × %d racks, C=%d S=%d\n",
		jobs, racks, b.MaxCustomerDegree(), b.MaxServerDegree())

	// The relaxed placement: loads 0, 1, and "many" — cheap to stabilize.
	relaxed, err := tokendrop.KBoundedAssignment(b, tokendrop.BoundedOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2-bounded stable placement: %d phases, %d rounds, 2-stable=%v\n",
		relaxed.Phases, relaxed.Rounds, relaxed.Assignment.KStable(2))
	empty, single, busy := 0, 0, 0
	for _, s := range b.Servers() {
		switch l := relaxed.Assignment.Load(s); {
		case l == 0:
			empty++
		case l == 1:
			single++
		default:
			busy++
		}
	}
	fmt.Printf("racks: %d empty, %d single-job, %d busy — no job on a busy rack can see an empty one\n",
		empty, single, busy)

	// The full (unrelaxed) solve, for the round-count contrast.
	full, err := tokendrop.StableAssignment(b, tokendrop.AssignOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull stable placement: %d phases, %d rounds (relaxation used %d)\n",
		full.Phases, full.Rounds, relaxed.Rounds)

	// Theorem 7.4: one round of post-processing turns the relaxed
	// placement into a maximal matching.
	matchOf := tokendrop.MatchingFromBounded(relaxed.Assignment)
	if err := tokendrop.VerifyMaximalMatching(b, matchOf); err != nil {
		log.Fatalf("reduction broke maximality: %v", err)
	}
	matched := 0
	for c := 0; c < jobs; c++ {
		if matchOf[c] >= 0 {
			matched++
		}
	}
	fmt.Printf("\nTheorem 7.4 reduction: maximal matching with %d matched jobs\n", matched)

	direct, err := tokendrop.MaximalMatching(b, 1<<20, 0)
	if err != nil {
		log.Fatal(err)
	}
	directMatched := 0
	for c := 0; c < jobs; c++ {
		if direct.MatchOf[c] >= 0 {
			directMatched++
		}
	}
	fmt.Printf("direct proposal-algorithm matching: %d matched jobs in %d rounds\n",
		directMatched, direct.Rounds)
}
