// Loadbalancer: the paper's motivating scenario (Section 1.1) — customers
// pick among adjacent servers, selfishly preferring low load. We compute a
// stable assignment with the hypergraph token-dropping algorithm
// (Theorem 7.3), compare its quality against the exact optimal
// semi-matching (Section 1.3's 2-approximation guarantee), and against
// a naive "everyone picks their first server" strategy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tokendrop"
)

func main() {
	const (
		customers = 120
		servers   = 30
		choices   = 3 // each customer can reach 3 servers
	)
	rng := rand.New(rand.NewSource(7))
	g := tokendrop.RandomBipartite(customers, servers, choices, rng)
	b, err := tokendrop.NewBipartite(g, customers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d customers × %d servers, C=%d S=%d\n",
		customers, servers, b.MaxCustomerDegree(), b.MaxServerDegree())

	// Naive strategy: every customer takes its lowest-numbered server.
	naive := 0
	naiveLoads := make([]int, g.N())
	for c := 0; c < customers; c++ {
		naiveLoads[g.Adj(c)[0].To]++
	}
	for _, l := range naiveLoads {
		naive += l * (l + 1) / 2
	}

	res, err := tokendrop.StableAssignment(b, tokendrop.AssignOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	stableCost := res.Assignment.SemimatchingCost()

	ratio, optCost, err := tokendrop.SemimatchingApproxRatio(res.Assignment)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsemi-matching cost Σ f(load), f(x)=x(x+1)/2:\n")
	fmt.Printf("  naive first-choice: %d\n", naive)
	fmt.Printf("  stable assignment:  %d  (%d phases, %d rounds)\n", stableCost, res.Phases, res.Rounds)
	fmt.Printf("  exact optimum:      %d\n", optCost)
	fmt.Printf("  approximation ratio: %.3f (paper guarantee ≤ 2)\n", ratio)

	// The game-theoretic reading: nobody wants to move.
	fmt.Printf("\nstable = every customer happy: %v\n", res.Assignment.Stable())
	worst := 0
	for _, s := range b.Servers() {
		if l := res.Assignment.Load(s); l > worst {
			worst = l
		}
	}
	fmt.Printf("max server load: %d (perfect balance would be %d)\n",
		worst, (customers+servers-1)/servers)
}
