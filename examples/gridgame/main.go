// Gridgame: play the token dropping game (Section 4) on the paper's
// Figure 2 instance and on a random layered DAG, rendering the layers and
// the token traversals, including extended traversals with their tails
// (Definition 4.3, Figure 3).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"tokendrop"
)

func main() {
	fmt.Println("=== Figure 2 instance ===")
	play(tokendrop.Figure2Game(), 1)

	fmt.Println("\n=== random layered instance ===")
	inst := tokendrop.RandomLayeredGame(tokendrop.LayeredConfig{
		Levels: 4, Width: 6, ParentDeg: 2, TokenProb: 0.6, FreeBottom: true,
	}, rand.New(rand.NewSource(3)))
	play(inst, 3)
}

func play(inst *tokendrop.GameInstance, seed int64) {
	render(inst, inst.TokenVector())

	sol, stats, err := tokendrop.SolveGame(inst, tokendrop.GameOptions{Seed: seed, MaxRounds: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := tokendrop.VerifyGame(sol); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Printf("solved in %d communication rounds, %d moves, %d messages\n",
		stats.Rounds, len(sol.Moves), stats.Messages)

	fmt.Println("traversals (→ = one drop; tail appended per Definition 4.3):")
	for _, tr := range sol.Traversals() {
		ext := sol.ExtendedTraversal(tr)
		var b strings.Builder
		for i, v := range tr.Path {
			if i > 0 {
				b.WriteString(" → ")
			}
			fmt.Fprintf(&b, "%d", v)
		}
		if len(ext) > len(tr.Path) {
			fmt.Fprintf(&b, "   (extended: %v)", ext)
		}
		fmt.Printf("  %s\n", b.String())
	}

	fmt.Println("final position:")
	render(inst, sol.Final)
}

// render draws the instance layer by layer, marking token holders.
func render(inst *tokendrop.GameInstance, tokens []bool) {
	byLevel := map[int][]string{}
	maxLevel := 0
	for v := 0; v < inst.N(); v++ {
		l := inst.Level(v)
		cell := fmt.Sprintf("·%d", v)
		if tokens[v] {
			cell = fmt.Sprintf("●%d", v)
		}
		byLevel[l] = append(byLevel[l], cell)
		if l > maxLevel {
			maxLevel = l
		}
	}
	for l := maxLevel; l >= 0; l-- {
		fmt.Printf("  L%d: %s\n", l, strings.Join(byLevel[l], " "))
	}
}
