package main

// The churn half of td-serve: a client-mode load generator that drives
// a daemon through a mixed delta workload and, unlike a benchmark
// harness, is built to ride out the daemon's robustness machinery —
// overload sheds (429), injected faults and restarts (503, refused
// connections) are retried with exponential backoff that honors
// Retry-After, while domain refusals (409) are final.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// httpError is a non-OK daemon answer in the unified error shape.
type httpError struct {
	path   string
	status int
	msg    string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("%s: HTTP %d: %s", e.path, e.status, e.msg)
}

// retryable reports whether the failure is transient: overload sheds
// and unavailability clear on their own, domain refusals do not.
func (e *httpError) retryable() bool {
	return e.status == http.StatusTooManyRequests || e.status == http.StatusServiceUnavailable
}

// churnClient is the load generator: a mixed delta workload against a
// FRESH daemon (it assumes the initial server ids are 0..servers-1, as
// the daemon's generator lays them out, and tracks rotations from
// there). Arrivals and departures flow through a bounded window;
// periodically a random server is drained and a fresh one added.
type churnClient struct {
	base    string
	client  *http.Client
	rng     *rand.Rand
	retries int
	pool    []int // live server ids
	window  []int // churned customers, oldest first
	lat     []time.Duration
	applied int // deltas the daemon accepted
	refused int // domain refusals (409) the workload tolerates
	retried int // transient failures absorbed by backoff
}

// backoff sleeps before retry attempt (1-based), exponentially longer
// each time with jitter, never shorter than the daemon's Retry-After.
func (cc *churnClient) backoff(attempt int, retryAfter time.Duration) {
	d := 50 * time.Millisecond << uint(attempt-1)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	if retryAfter > d {
		d = retryAfter
	}
	time.Sleep(d + time.Duration(cc.rng.Int63n(int64(d/2)+1)))
}

// do runs one request through the retry loop. Connection errors and
// retryable statuses consume the retry budget; success decodes into
// out; anything else surfaces as an *httpError.
func (cc *churnClient) do(path string, send func() (*http.Response, error), out any) error {
	var last error
	for attempt := 0; ; attempt++ {
		resp, err := send()
		if err == nil {
			he := func() error {
				defer resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return json.NewDecoder(resp.Body).Decode(out)
				}
				var e errResp
				json.NewDecoder(resp.Body).Decode(&e)
				return &httpError{path: path, status: resp.StatusCode, msg: e.Error}
			}()
			var retryAfter time.Duration
			if he == nil {
				return nil
			}
			if hp, ok := he.(*httpError); !ok || !hp.retryable() {
				return he
			}
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				retryAfter = time.Duration(s) * time.Second
			}
			last = he
			if attempt >= cc.retries {
				return fmt.Errorf("%s: retries exhausted: %w", path, last)
			}
			cc.retried++
			cc.backoff(attempt+1, retryAfter)
			continue
		}
		// Connection-level failure: the daemon may be restarting.
		last = err
		if attempt >= cc.retries {
			return fmt.Errorf("%s: retries exhausted: %w", path, last)
		}
		cc.retried++
		cc.backoff(attempt+1, 0)
	}
}

func (cc *churnClient) call(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return cc.do(path, func() (*http.Response, error) {
		return cc.client.Post(cc.base+path, "application/json", bytes.NewReader(body))
	}, out)
}

func (cc *churnClient) callGet(path string, out any) error {
	return cc.do(path, func() (*http.Response, error) {
		return cc.client.Get(cc.base + path)
	}, out)
}

// refusal reports whether err is a domain refusal (409) the workload
// tolerates — a drain blocked by a single-port customer, an assign
// against a stale pool.
func refusal(err error) bool {
	he, ok := err.(*httpError)
	return ok && he.status == http.StatusConflict
}

func (cc *churnClient) step(i, cdeg int) error {
	t0 := time.Now()
	defer func() { cc.lat = append(cc.lat, time.Since(t0)) }()
	switch {
	case i%49 == 48:
		// Rotate a server out and a fresh one in. A drain is refused
		// when some incident customer has no other port — count it and
		// move on, the workload tolerates refusals.
		j := cc.rng.Intn(len(cc.pool))
		var ok okResp
		if err := cc.call("/drain", drainReq{Server: cc.pool[j]}, &ok); err != nil {
			if refusal(err) {
				cc.refused++
				return nil
			}
			return err
		}
		cc.applied++
		var sr serverResp
		if err := cc.call("/add-server", struct{}{}, &sr); err != nil {
			return err
		}
		cc.applied++
		cc.pool[j] = sr.Server
	case len(cc.window) >= 256:
		c := cc.window[0]
		cc.window = cc.window[:copy(cc.window, cc.window[1:])]
		var ok okResp
		if err := cc.call("/release", releaseReq{Customer: c}, &ok); err != nil {
			return err
		}
		cc.applied++
	default:
		servers := make([]int32, 0, cdeg)
		for len(servers) < cdeg {
			s := int32(cc.pool[cc.rng.Intn(len(cc.pool))])
			dup := false
			for _, prev := range servers {
				if prev == s {
					dup = true
					break
				}
			}
			if !dup {
				servers = append(servers, s)
			}
		}
		var ar assignResp
		if err := cc.call("/assign", assignReq{Servers: servers}, &ar); err != nil {
			// A refusal here means the pool is stale (the daemon saw
			// drains this client did not issue); count it and move on.
			if refusal(err) {
				cc.refused++
				return nil
			}
			return err
		}
		cc.applied++
		cc.window = append(cc.window, ar.Customer)
	}
	return nil
}

func churn(base string, deltas, cdeg int, seed int64, retries int) {
	cc := &churnClient{
		base:    base,
		client:  &http.Client{Timeout: 10 * time.Second},
		rng:     rand.New(rand.NewSource(seed)),
		retries: retries,
	}
	var st statsResp
	if err := cc.callGet("/stats", &st); err != nil {
		log.Fatalf("td-serve: cannot reach daemon: %v", err)
	}
	if st.Servers < cdeg {
		log.Fatalf("td-serve: daemon has %d servers, need at least %d", st.Servers, cdeg)
	}
	for s := 0; s < st.Servers; s++ {
		cc.pool = append(cc.pool, s)
	}
	t0 := time.Now()
	for i := 0; i < deltas; i++ {
		if err := cc.step(i, cdeg); err != nil {
			log.Fatalf("td-serve: churn delta %d: %v", i, err)
		}
	}
	elapsed := time.Since(t0)
	sort.Slice(cc.lat, func(i, j int) bool { return cc.lat[i] < cc.lat[j] })
	p50 := cc.lat[len(cc.lat)/2]
	p99 := cc.lat[len(cc.lat)*99/100]
	if err := cc.callGet("/stats", &st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("td-serve churn: %d deltas in %v (%.0f deltas/s), p50 %v, p99 %v, %d applied, %d refused, %d retried\n",
		deltas, elapsed.Round(time.Millisecond), float64(deltas)/elapsed.Seconds(), p50, p99,
		cc.applied, cc.refused, cc.retried)
	fmt.Printf("td-serve churn: daemon now at %d customers, %d servers, %d deltas, %d repair moves\n",
		st.Customers, st.Servers, st.Deltas, st.Moves)
}
