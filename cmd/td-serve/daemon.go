package main

// The daemon half of td-serve: HTTP endpoints over a mutex-guarded
// Resolver, wrapped in the robustness layers the package doc describes —
// admission control, request timeouts, periodic atomic snapshots with
// restore-on-boot, drain-aware shutdown, and two serve-layer failpoints
// ("serve/delta", visited once per admitted delta; "serve/snapshot",
// visited once per capture, where an injected fault skips the write and
// keeps serving).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tokendrop"
)

// Serve-layer failpoints, armed through -fail.
const (
	faultSiteDelta    = "serve/delta"
	faultSiteSnapshot = "serve/snapshot"
)

// snapshotFile is the snapshot's name inside -snapshot DIR.
const snapshotFile = "td-serve.snapshot.json"

type serveConfig struct {
	listen        string
	customers     int
	servers       int
	cdeg          int
	seed          int64
	shards        int
	randomTies    bool
	snapshotDir   string
	snapshotEvery time.Duration
	maxInflight   int
	queueWait     time.Duration
	reqTimeout    time.Duration
	drainTimeout  time.Duration
	failSpecs     []string
}

type assignReq struct {
	Servers []int32 `json:"servers"`
}

type assignResp struct {
	Customer int `json:"customer"`
	Server   int `json:"server"`
}

type releaseReq struct {
	Customer int `json:"customer"`
}

type serverResp struct {
	Server int `json:"server"`
}

type drainReq struct {
	Server int `json:"server"`
}

type okResp struct {
	OK bool `json:"ok"`
}

// errResp is the unified error shape of every endpoint: the message and
// the HTTP status repeated in the body, so clients never need to parse
// more than one failure format.
type errResp struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

type statsResp struct {
	Deltas       int     `json:"deltas"`
	Moves        int     `json:"moves"`
	FullSolves   int     `json:"full_solves"`
	Rollbacks    int     `json:"rollbacks"`
	Customers    int     `json:"customers"`
	Servers      int     `json:"servers"`
	Edges        int     `json:"edges"`
	Compactions  int     `json:"compactions"`
	Inflight     int     `json:"inflight"`
	Shed         int64   `json:"shed"`
	Timeouts     int64   `json:"timeouts"`
	Snapshots    int64   `json:"snapshots"`
	SnapshotSkip int64   `json:"snapshot_skipped"`
	Restored     bool    `json:"restored"`
	UptimeSec    float64 `json:"uptime_sec"`
}

// daemon wraps the Resolver in the concurrency discipline it documents
// (one mutex, every delta and every read under it) plus the admission
// and recovery machinery.
type daemon struct {
	cfg     serveConfig
	started time.Time

	mu   sync.Mutex
	r    *tokendrop.Resolver
	meta tokendrop.RunMetaJSON

	reg          *tokendrop.FaultRegistry
	failDelta    *tokendrop.FaultSite
	failSnapshot *tokendrop.FaultSite

	sem       chan struct{} // admission slots; len(sem) = inflight deltas
	ready     atomic.Bool
	draining  atomic.Bool
	shed      atomic.Int64 // requests refused with 429
	timeouts  atomic.Int64 // requests abandoned with 503
	drained   atomic.Int64 // requests completed while draining
	snapshots atomic.Int64
	snapSkip  atomic.Int64
	restored  bool
}

// newShell builds a daemon that can answer /healthz and refuse
// everything else: registry and admission slots exist, the Resolver
// does not yet. boot + ready.Store(true) completes it.
func newShell(cfg serveConfig) (*daemon, error) {
	if cfg.maxInflight < 1 {
		cfg.maxInflight = 1
	}
	d := &daemon{
		cfg:     cfg,
		started: time.Now(),
		reg:     tokendrop.NewFaultRegistry(cfg.seed),
		sem:     make(chan struct{}, cfg.maxInflight),
	}
	d.failDelta = d.reg.Site(faultSiteDelta)
	d.failSnapshot = d.reg.Site(faultSiteSnapshot)
	for _, spec := range cfg.failSpecs {
		name, sched, err := tokendrop.ParseFaultSpec(spec)
		if err != nil {
			return nil, err
		}
		d.reg.Arm(name, sched)
	}
	return d, nil
}

// newDaemon builds a fully booted, ready daemon; tests serve d.mux()
// through httptest instead of a real listener.
func newDaemon(cfg serveConfig) (*daemon, error) {
	d, err := newShell(cfg)
	if err != nil {
		return nil, err
	}
	if err := d.boot(); err != nil {
		return nil, err
	}
	d.ready.Store(true)
	return d, nil
}

// boot builds the Resolver: from the snapshot directory when a snapshot
// exists (tie rule and seed come from the snapshot's own provenance, so
// the continuation is faithful), from a seeded random network otherwise.
// A snapshot that exists but fails validation — wrong version, graph
// hash mismatch, unstable state — is fatal rather than silently
// replaced with a fresh network.
func (d *daemon) boot() error {
	tie := tokendrop.TieFirstPort
	if d.cfg.randomTies {
		tie = tokendrop.TieRandom
	}
	if d.cfg.snapshotDir != "" {
		if err := os.MkdirAll(d.cfg.snapshotDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(d.cfg.snapshotDir, snapshotFile)
		sj, err := tokendrop.ReadSnapshotFile(path)
		switch {
		case err == nil:
			snapTie, err := tokendrop.ParseTie(sj.Meta.Tie)
			if err != nil {
				return fmt.Errorf("restore %s: %w", path, err)
			}
			r, err := sj.ToResolver(tokendrop.ResolverOptions{
				Tie: snapTie, Seed: sj.Meta.Seed, Shards: d.cfg.shards, Fault: d.reg,
			})
			if err != nil {
				return fmt.Errorf("restore %s: %w", path, err)
			}
			d.r, d.meta, d.restored = r, sj.Meta, true
			st := r.Stats()
			log.Printf("td-serve: restored from %s (%d customers, %d servers, %d edges)",
				path, st.Customers, st.Servers, st.Edges)
			return nil
		case os.IsNotExist(err):
			// First boot: fall through to the seeded network.
		default:
			return fmt.Errorf("restore %s: %w", path, err)
		}
	}
	rng := rand.New(rand.NewSource(d.cfg.seed))
	b, err := tokendrop.NewBipartite(
		tokendrop.RandomBipartite(d.cfg.customers, d.cfg.servers, d.cfg.cdeg, rng), d.cfg.customers)
	if err != nil {
		return err
	}
	r, err := tokendrop.NewResolver(tokendrop.NewFlatBipartite(b), nil, tokendrop.ResolverOptions{
		Tie: tie, Seed: d.cfg.seed, Shards: d.cfg.shards, Fault: d.reg,
	})
	if err != nil {
		return err
	}
	d.r = r
	d.meta = tokendrop.RunMetaJSON{
		Workload: fmt.Sprintf("bipartite customers=%d servers=%d cdeg=%d",
			d.cfg.customers, d.cfg.servers, d.cfg.cdeg),
		GenSeed: d.cfg.seed, Tie: tokendrop.TieName(tie), Seed: d.cfg.seed, Shards: d.cfg.shards,
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errResp{Error: msg, Code: status})
}

// decode parses a JSON request body strictly; unknown fields are
// rejected so client typos fail loudly instead of silently no-opping.
func decode(w http.ResponseWriter, req *http.Request, v any) bool {
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && err != io.EOF {
		writeErr(w, http.StatusBadRequest, err.Error())
		return false
	}
	return true
}

// post guards an endpoint's method; the delta endpoints are POST-only.
func post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		h(w, req)
	}
}

// serveOp runs one delta through the robustness pipeline: refuse while
// booting or draining (503), admit within the bounded queue or shed
// (429 + Retry-After), then run op with a response deadline — a delta
// that outlives it answers 503 while the work finishes in the
// background, holding its admission slot so overload stays bounded.
// Injected faults (the delta was rolled back; the state is consistent)
// answer 503 + Retry-After; domain refusals answer 409.
func (d *daemon) serveOp(w http.ResponseWriter, op func() (any, error)) {
	if !d.ready.Load() {
		writeErr(w, http.StatusServiceUnavailable, "starting up")
		return
	}
	if d.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	select {
	case d.sem <- struct{}{}:
	default:
		wait := time.NewTimer(d.cfg.queueWait)
		select {
		case d.sem <- struct{}{}:
			wait.Stop()
		case <-wait.C:
			d.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "overloaded: admission queue full")
			return
		}
	}
	type result struct {
		v   any
		err error
	}
	ch := make(chan result, 1)
	go func() {
		defer func() {
			if d.draining.Load() {
				d.drained.Add(1)
			}
			<-d.sem
		}()
		if err := d.failDelta.Err(); err != nil {
			ch <- result{err: err}
			return
		}
		v, err := op()
		ch <- result{v, err}
	}()
	deadline := time.NewTimer(d.cfg.reqTimeout)
	defer deadline.Stop()
	select {
	case r := <-ch:
		switch {
		case r.err == nil:
			writeJSON(w, http.StatusOK, r.v)
		case errors.Is(r.err, tokendrop.ErrFaultInjected):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, r.err.Error())
		default:
			writeErr(w, http.StatusConflict, r.err.Error())
		}
	case <-deadline.C:
		d.timeouts.Add(1)
		writeErr(w, http.StatusServiceUnavailable, "request timed out; the delta completes in the background")
	}
}

func (d *daemon) handleAssign(w http.ResponseWriter, req *http.Request) {
	var in assignReq
	if !decode(w, req, &in) {
		return
	}
	if len(in.Servers) == 0 {
		writeErr(w, http.StatusBadRequest, "servers list is empty")
		return
	}
	d.serveOp(w, func() (any, error) {
		d.mu.Lock()
		defer d.mu.Unlock()
		c, err := d.r.AddCustomer(in.Servers)
		if err != nil {
			return nil, err
		}
		return assignResp{Customer: c, Server: d.r.ServerOf(c)}, nil
	})
}

func (d *daemon) handleRelease(w http.ResponseWriter, req *http.Request) {
	var in releaseReq
	if !decode(w, req, &in) {
		return
	}
	d.serveOp(w, func() (any, error) {
		d.mu.Lock()
		defer d.mu.Unlock()
		if err := d.r.RemoveCustomer(in.Customer); err != nil {
			return nil, err
		}
		return okResp{OK: true}, nil
	})
}

func (d *daemon) handleAddServer(w http.ResponseWriter, req *http.Request) {
	var in struct{}
	if !decode(w, req, &in) {
		return
	}
	d.serveOp(w, func() (any, error) {
		d.mu.Lock()
		defer d.mu.Unlock()
		s, err := d.r.AddServer()
		if err != nil {
			return nil, err
		}
		return serverResp{Server: s}, nil
	})
}

func (d *daemon) handleDrain(w http.ResponseWriter, req *http.Request) {
	var in drainReq
	if !decode(w, req, &in) {
		return
	}
	d.serveOp(w, func() (any, error) {
		d.mu.Lock()
		defer d.mu.Unlock()
		if err := d.r.DrainServer(in.Server); err != nil {
			return nil, err
		}
		return okResp{OK: true}, nil
	})
}

func (d *daemon) stats() statsResp {
	d.mu.Lock()
	st := d.r.Stats()
	d.mu.Unlock()
	return statsResp{
		Deltas: st.Deltas, Moves: st.Moves, FullSolves: st.FullSolves,
		Rollbacks: st.Rollbacks,
		Customers: st.Customers, Servers: st.Servers, Edges: st.Edges,
		Compactions:  st.Compactions,
		Inflight:     len(d.sem),
		Shed:         d.shed.Load(),
		Timeouts:     d.timeouts.Load(),
		Snapshots:    d.snapshots.Load(),
		SnapshotSkip: d.snapSkip.Load(),
		Restored:     d.restored,
		UptimeSec:    time.Since(d.started).Seconds(),
	}
}

func (d *daemon) handleStats(w http.ResponseWriter, req *http.Request) {
	if !d.ready.Load() {
		writeErr(w, http.StatusServiceUnavailable, "starting up")
		return
	}
	writeJSON(w, http.StatusOK, d.stats())
}

func (d *daemon) handleHealthz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, okResp{OK: true})
}

func (d *daemon) handleReadyz(w http.ResponseWriter, req *http.Request) {
	switch {
	case !d.ready.Load():
		writeErr(w, http.StatusServiceUnavailable, "starting up")
	case d.draining.Load():
		writeErr(w, http.StatusServiceUnavailable, "draining")
	default:
		writeJSON(w, http.StatusOK, okResp{OK: true})
	}
}

func (d *daemon) handleNotFound(w http.ResponseWriter, req *http.Request) {
	writeErr(w, http.StatusNotFound, "no such endpoint: "+req.URL.Path)
}

func (d *daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/assign", post(d.handleAssign))
	mux.HandleFunc("/release", post(d.handleRelease))
	mux.HandleFunc("/add-server", post(d.handleAddServer))
	mux.HandleFunc("/drain", post(d.handleDrain))
	mux.HandleFunc("/stats", d.handleStats)
	mux.HandleFunc("/healthz", d.handleHealthz)
	mux.HandleFunc("/readyz", d.handleReadyz)
	mux.HandleFunc("/", d.handleNotFound)
	return mux
}

// saveSnapshot captures the Resolver at a delta boundary and writes it
// atomically. An injected "serve/snapshot" fault, or a write failure,
// skips this capture and keeps serving — the previous snapshot on disk
// stays valid.
func (d *daemon) saveSnapshot() {
	if d.cfg.snapshotDir == "" {
		return
	}
	if err := d.failSnapshot.Err(); err != nil {
		d.snapSkip.Add(1)
		log.Printf("td-serve: snapshot skipped: %v", err)
		return
	}
	d.mu.Lock()
	sj := tokendrop.ResolverSnapshotJSON(d.r, d.meta)
	d.mu.Unlock()
	if err := tokendrop.SaveSnapshotFile(filepath.Join(d.cfg.snapshotDir, snapshotFile), sj); err != nil {
		d.snapSkip.Add(1)
		log.Printf("td-serve: snapshot write failed: %v", err)
		return
	}
	d.snapshots.Add(1)
}

func (d *daemon) snapshotLoop(stop <-chan struct{}) {
	tick := time.NewTicker(d.cfg.snapshotEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			d.saveSnapshot()
		case <-stop:
			return
		}
	}
}

func serve(cfg serveConfig) {
	d, err := newShell(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Listen before the (potentially slow) initial solve or restore so
	// /healthz answers during boot — /readyz and the delta endpoints
	// refuse with 503 until the Resolver is up.
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: d.mux()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	fmt.Printf("td-serve: listening on %s (customers=%d servers=%d cdeg=%d shards=%d)\n",
		ln.Addr(), cfg.customers, cfg.servers, cfg.cdeg, cfg.shards)

	if err := d.boot(); err != nil {
		log.Fatal(err)
	}
	defer d.r.Close()
	d.ready.Store(true)
	if d.restored {
		fmt.Printf("td-serve: state restored from snapshot (%d customers live)\n", d.stats().Customers)
	}

	stopSnap := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		if cfg.snapshotDir != "" {
			d.snapshotLoop(stopSnap)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		fmt.Printf("td-serve: %v, draining (%d requests in flight)\n", s, len(d.sem))
	}

	// Drain: stop admitting, let in-flight requests finish within the
	// deadline, then capture a final snapshot of the quiesced state.
	d.draining.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("td-serve: drain deadline hit: %v", err)
	}
	close(stopSnap)
	<-snapDone
	d.saveSnapshot()
	st := d.stats()
	fmt.Printf("td-serve: clean shutdown after %d deltas (%d moves, %d customers live, %d requests drained, %d snapshots)\n",
		st.Deltas, st.Moves, st.Customers, d.drained.Load(), st.Snapshots)
}
