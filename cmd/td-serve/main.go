// Command td-serve serves a live stable assignment over HTTP/JSON: a
// warmed incremental Resolver (the online counterpart of the sharded
// batch solver) absorbs customer arrivals, departures, server
// additions, and drains as single-delta repairs instead of from-scratch
// re-solves. The daemon seeds itself with a random bipartite network,
// solves it once at startup, and then every request mutates the live
// overlay under a mutex.
//
// Endpoints (request and response bodies are JSON):
//
//	POST /assign      {"servers":[0,7,21]}  → {"customer":42,"server":7}
//	POST /release     {"customer":42}       → {"ok":true}
//	POST /add-server  {}                    → {"server":250}
//	POST /drain       {"server":250}        → {"ok":true}
//	GET  /stats                             → live counters
//
// Rejected operations (dead ids, draining a customer's only port) come
// back as 409 with {"error":...}; malformed bodies as 400. SIGINT or
// SIGTERM shuts the daemon down gracefully.
//
// Usage:
//
//	td-serve -listen :8080 -customers 1000 -servers 250
//	td-serve -churn http://localhost:8080 -deltas 500
//
// The second form is the churn-load generator: it drives a fresh daemon
// through a mixed delta workload (arrivals, departures, drain-and-replace
// rotations) and prints sustained deltas/s with p50/p99 latency.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"tokendrop"
	"tokendrop/internal/cliutil"
)

type assignReq struct {
	Servers []int32 `json:"servers"`
}

type assignResp struct {
	Customer int `json:"customer"`
	Server   int `json:"server"`
}

type releaseReq struct {
	Customer int `json:"customer"`
}

type serverResp struct {
	Server int `json:"server"`
}

type drainReq struct {
	Server int `json:"server"`
}

type okResp struct {
	OK bool `json:"ok"`
}

type errResp struct {
	Error string `json:"error"`
}

type statsResp struct {
	Deltas      int     `json:"deltas"`
	Moves       int     `json:"moves"`
	FullSolves  int     `json:"full_solves"`
	Customers   int     `json:"customers"`
	Servers     int     `json:"servers"`
	Edges       int     `json:"edges"`
	Compactions int     `json:"compactions"`
	UptimeSec   float64 `json:"uptime_sec"`
}

// daemon wraps the Resolver in the concurrency discipline it documents:
// one mutex, every delta and every read under it.
type daemon struct {
	mu      sync.Mutex
	r       *tokendrop.Resolver
	started time.Time
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// decode parses a JSON request body strictly; unknown fields are
// rejected so client typos fail loudly instead of silently no-opping.
func decode(w http.ResponseWriter, req *http.Request, v any) bool {
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && err != io.EOF {
		writeJSON(w, http.StatusBadRequest, errResp{Error: err.Error()})
		return false
	}
	return true
}

// post guards an endpoint's method; the delta endpoints are POST-only.
func post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errResp{Error: "POST only"})
			return
		}
		h(w, req)
	}
}

func (d *daemon) handleAssign(w http.ResponseWriter, req *http.Request) {
	var in assignReq
	if !decode(w, req, &in) {
		return
	}
	if len(in.Servers) == 0 {
		writeJSON(w, http.StatusBadRequest, errResp{Error: "servers list is empty"})
		return
	}
	d.mu.Lock()
	c, err := d.r.AddCustomer(in.Servers)
	var so int
	if err == nil {
		so = d.r.ServerOf(c)
	}
	d.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusConflict, errResp{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, assignResp{Customer: c, Server: so})
}

func (d *daemon) handleRelease(w http.ResponseWriter, req *http.Request) {
	var in releaseReq
	if !decode(w, req, &in) {
		return
	}
	d.mu.Lock()
	err := d.r.RemoveCustomer(in.Customer)
	d.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusConflict, errResp{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, okResp{OK: true})
}

func (d *daemon) handleAddServer(w http.ResponseWriter, req *http.Request) {
	var in struct{}
	if !decode(w, req, &in) {
		return
	}
	d.mu.Lock()
	s, err := d.r.AddServer()
	d.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusConflict, errResp{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, serverResp{Server: s})
}

func (d *daemon) handleDrain(w http.ResponseWriter, req *http.Request) {
	var in drainReq
	if !decode(w, req, &in) {
		return
	}
	d.mu.Lock()
	err := d.r.DrainServer(in.Server)
	d.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusConflict, errResp{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, okResp{OK: true})
}

func (d *daemon) stats() statsResp {
	d.mu.Lock()
	st := d.r.Stats()
	d.mu.Unlock()
	return statsResp{
		Deltas: st.Deltas, Moves: st.Moves, FullSolves: st.FullSolves,
		Customers: st.Customers, Servers: st.Servers, Edges: st.Edges,
		Compactions: st.Compactions,
		UptimeSec:   time.Since(d.started).Seconds(),
	}
}

func (d *daemon) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, d.stats())
}

func serve(listen string, nc, ns, cdeg int, seed int64, shards int, randomTies bool) {
	tie := tokendrop.TieFirstPort
	if randomTies {
		tie = tokendrop.TieRandom
	}
	rng := rand.New(rand.NewSource(seed))
	b, err := tokendrop.NewBipartite(tokendrop.RandomBipartite(nc, ns, cdeg, rng), nc)
	if err != nil {
		log.Fatal(err)
	}
	fb := tokendrop.NewFlatBipartite(b)
	r, err := tokendrop.NewResolver(fb, nil, tokendrop.ResolverOptions{
		Tie: tie, Seed: seed, Shards: shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	d := &daemon{r: r, started: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/assign", post(d.handleAssign))
	mux.HandleFunc("/release", post(d.handleRelease))
	mux.HandleFunc("/add-server", post(d.handleAddServer))
	mux.HandleFunc("/drain", post(d.handleDrain))
	mux.HandleFunc("/stats", d.handleStats)
	srv := &http.Server{Addr: listen, Handler: mux}

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Printf("td-serve: listening on %s (customers=%d servers=%d cdeg=%d shards=%d)\n",
		listen, nc, ns, cdeg, shards)

	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		fmt.Printf("td-serve: %v, shutting down\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	st := d.stats()
	fmt.Printf("td-serve: clean shutdown after %d deltas (%d moves, %d customers live)\n",
		st.Deltas, st.Moves, st.Customers)
}

// churnClient is the load generator: a mixed delta workload against a
// FRESH daemon (it assumes the initial server ids are 0..servers-1, as
// the daemon's generator lays them out, and tracks rotations from
// there). Arrivals and departures flow through a bounded window;
// periodically a random server is drained and a fresh one added.
type churnClient struct {
	base   string
	client *http.Client
	rng    *rand.Rand
	pool   []int // live server ids
	window []int // churned customers, oldest first
	lat    []time.Duration
	errors int
}

func (cc *churnClient) call(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := cc.client.Post(cc.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errResp
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %s: %s", path, resp.Status, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (cc *churnClient) step(i, cdeg int) error {
	t0 := time.Now()
	defer func() { cc.lat = append(cc.lat, time.Since(t0)) }()
	switch {
	case i%49 == 48:
		// Rotate a server out and a fresh one in. A drain is refused
		// when some incident customer has no other port — count it and
		// move on, the workload tolerates refusals.
		j := cc.rng.Intn(len(cc.pool))
		var ok okResp
		if err := cc.call("/drain", drainReq{Server: cc.pool[j]}, &ok); err != nil {
			cc.errors++
			return nil
		}
		var sr serverResp
		if err := cc.call("/add-server", struct{}{}, &sr); err != nil {
			return err
		}
		cc.pool[j] = sr.Server
	case len(cc.window) >= 256:
		c := cc.window[0]
		cc.window = cc.window[:copy(cc.window, cc.window[1:])]
		var ok okResp
		if err := cc.call("/release", releaseReq{Customer: c}, &ok); err != nil {
			return err
		}
	default:
		servers := make([]int32, 0, cdeg)
		for len(servers) < cdeg {
			s := int32(cc.pool[cc.rng.Intn(len(cc.pool))])
			dup := false
			for _, prev := range servers {
				if prev == s {
					dup = true
					break
				}
			}
			if !dup {
				servers = append(servers, s)
			}
		}
		var ar assignResp
		if err := cc.call("/assign", assignReq{Servers: servers}, &ar); err != nil {
			// A refusal here means the pool is stale (the daemon saw
			// drains this client did not issue); count it and move on.
			cc.errors++
			return nil
		}
		cc.window = append(cc.window, ar.Customer)
	}
	return nil
}

func churn(base string, deltas, cdeg int, seed int64) {
	cc := &churnClient{
		base:   base,
		client: &http.Client{Timeout: 10 * time.Second},
		rng:    rand.New(rand.NewSource(seed)),
	}
	var st statsResp
	if err := cc.callGet("/stats", &st); err != nil {
		log.Fatalf("td-serve: cannot reach daemon: %v", err)
	}
	if st.Servers < cdeg {
		log.Fatalf("td-serve: daemon has %d servers, need at least %d", st.Servers, cdeg)
	}
	for s := 0; s < st.Servers; s++ {
		cc.pool = append(cc.pool, s)
	}
	t0 := time.Now()
	for i := 0; i < deltas; i++ {
		if err := cc.step(i, cdeg); err != nil {
			log.Fatalf("td-serve: churn delta %d: %v", i, err)
		}
	}
	elapsed := time.Since(t0)
	sort.Slice(cc.lat, func(i, j int) bool { return cc.lat[i] < cc.lat[j] })
	p50 := cc.lat[len(cc.lat)/2]
	p99 := cc.lat[len(cc.lat)*99/100]
	if err := cc.callGet("/stats", &st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("td-serve churn: %d deltas in %v (%.0f deltas/s), p50 %v, p99 %v, %d refused\n",
		deltas, elapsed.Round(time.Millisecond), float64(deltas)/elapsed.Seconds(), p50, p99, cc.errors)
	fmt.Printf("td-serve churn: daemon now at %d customers, %d servers, %d deltas, %d repair moves\n",
		st.Customers, st.Servers, st.Deltas, st.Moves)
}

func (cc *churnClient) callGet(path string, out any) error {
	resp, err := cc.client.Get(cc.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func main() {
	var (
		listen     = flag.String("listen", ":8080", "HTTP listen address (server mode)")
		nc         = flag.Int("customers", 1_000, "initial customers in the seeded network")
		ns         = flag.Int("servers", 250, "initial servers in the seeded network")
		cdeg       = flag.Int("cdeg", 3, "servers adjacent to each customer")
		seed       = flag.Int64("seed", 1, "workload and tie-break seed")
		randomTies = flag.Bool("random-ties", false, "randomized tie-breaking")
		shards     = cliutil.ShardsFlag()
		churnURL   = flag.String("churn", "", "client mode: drive a mixed churn workload against this daemon URL")
		deltas     = flag.Int("deltas", 500, "with -churn: number of deltas to apply")
		version    = cliutil.VersionFlag()
	)
	flag.Parse()
	cliutil.HandleVersionFlag(version)

	if *churnURL != "" {
		churn(*churnURL, *deltas, *cdeg, *seed)
		return
	}
	serve(*listen, *nc, *ns, *cdeg, *seed, *shards, *randomTies)
}
