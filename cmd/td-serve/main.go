// Command td-serve serves a live stable assignment over HTTP/JSON: a
// warmed incremental Resolver (the online counterpart of the sharded
// batch solver) absorbs customer arrivals, departures, server
// additions, and drains as single-delta repairs instead of from-scratch
// re-solves. The daemon seeds itself with a random bipartite network
// (or restores one from its snapshot directory), solves it once at
// startup, and then every request mutates the live overlay under a
// mutex.
//
// Endpoints (request and response bodies are JSON):
//
//	POST /assign      {"servers":[0,7,21]}  → {"customer":42,"server":7}
//	POST /release     {"customer":42}       → {"ok":true}
//	POST /add-server  {}                    → {"server":250}
//	POST /drain       {"server":250}        → {"ok":true}
//	GET  /stats                             → live counters
//	GET  /healthz                           → process liveness (always 200)
//	GET  /readyz                            → 200 once restored, 503 while
//	                                          booting or draining
//
// Every error, on every endpoint, is {"error":"...","code":N} with the
// HTTP status repeated in code. Rejected operations (dead ids, draining
// a customer's only port) come back as 409; malformed bodies as 400;
// unknown paths and methods as 404/405 in the same shape.
//
// The daemon is built to survive overload and crashes:
//
//   - Admission control: at most -max-inflight deltas run at once;
//     excess requests wait up to -queue-wait and are then shed with
//     429 + Retry-After, so latency stays bounded instead of the queue
//     growing without limit.
//   - Request timeouts: a delta that exceeds -request-timeout answers
//     503 while the work completes in the background (the Resolver
//     stays consistent; only the response is abandoned).
//   - Crash recovery: with -snapshot DIR the daemon atomically writes
//     its full state (graph + assignment, self-hashed) every
//     -snapshot-every, and on boot restores from the latest snapshot —
//     a kill -9 loses at most one snapshot interval of deltas.
//   - Graceful drain: SIGINT/SIGTERM stops admission, lets in-flight
//     requests finish (up to -drain-timeout), writes a final snapshot,
//     and reports how many requests completed during the drain.
//   - Fault injection: -fail SITE:KIND:k=v arms a failpoint (repeatable;
//     see the fault package). Injected resolver faults roll the delta
//     back and answer 503 + Retry-After — the client retries against a
//     consistent assignment.
//
// Usage:
//
//	td-serve -listen :8080 -customers 1000 -servers 250 -snapshot /var/lib/td
//	td-serve -churn http://localhost:8080 -deltas 500
//
// The second form is the churn-load generator: it drives a daemon
// through a mixed delta workload (arrivals, departures, drain-and-replace
// rotations) with exponential-backoff retries that honor Retry-After —
// it rides out daemon restarts and overload sheds — and prints sustained
// deltas/s with p50/p99 latency plus applied/refused/retried counts.
package main

import (
	"flag"
	"fmt"
	"time"

	"tokendrop/internal/cliutil"
)

// failFlags collects repeated -fail specs.
type failFlags []string

// String renders the collected specs for flag's usage output.
func (f *failFlags) String() string { return fmt.Sprint([]string(*f)) }

// Set appends one spec per flag occurrence.
func (f *failFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var (
		listen        = flag.String("listen", ":8080", "HTTP listen address (server mode)")
		nc            = flag.Int("customers", 1_000, "initial customers in the seeded network")
		ns            = flag.Int("servers", 250, "initial servers in the seeded network")
		cdeg          = flag.Int("cdeg", 3, "servers adjacent to each customer")
		seed          = flag.Int64("seed", 1, "workload and tie-break seed")
		randomTies    = flag.Bool("random-ties", false, "randomized tie-breaking")
		shards        = cliutil.ShardsFlag()
		snapshotDir   = flag.String("snapshot", "", "directory for periodic atomic snapshots; restore-on-boot when one exists")
		snapshotEvery = flag.Duration("snapshot-every", 2*time.Second, "with -snapshot: capture cadence")
		maxInflight   = flag.Int("max-inflight", 64, "admitted deltas running at once; excess requests queue")
		queueWait     = flag.Duration("queue-wait", 100*time.Millisecond, "longest a request waits for admission before 429")
		reqTimeout    = flag.Duration("request-timeout", 2*time.Second, "longest a delta may run before its request answers 503")
		drainTimeout  = flag.Duration("drain-timeout", 5*time.Second, "longest shutdown waits for in-flight requests")
		churnURL      = flag.String("churn", "", "client mode: drive a mixed churn workload against this daemon URL")
		deltas        = flag.Int("deltas", 500, "with -churn: number of deltas to apply")
		retries       = flag.Int("retries", 10, "with -churn: per-request retry budget for 429/503/connection errors")
		version       = cliutil.VersionFlag()
		fail          failFlags
	)
	flag.Var(&fail, "fail", "arm a failpoint, SITE:KIND:key=val,... (repeatable); e.g. resolver/repair:error:p=0.01")
	flag.Parse()
	cliutil.HandleVersionFlag(version)

	if *churnURL != "" {
		churn(*churnURL, *deltas, *cdeg, *seed, *retries)
		return
	}
	serve(serveConfig{
		listen:        *listen,
		customers:     *nc,
		servers:       *ns,
		cdeg:          *cdeg,
		seed:          *seed,
		shards:        *shards,
		randomTies:    *randomTies,
		snapshotDir:   *snapshotDir,
		snapshotEvery: *snapshotEvery,
		maxInflight:   *maxInflight,
		queueWait:     *queueWait,
		reqTimeout:    *reqTimeout,
		drainTimeout:  *drainTimeout,
		failSpecs:     fail,
	})
}
