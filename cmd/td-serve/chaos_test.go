package main

// Chaos suite for td-serve: in-process tests drive the daemon's mux
// directly (unified error shape, overload shedding, fault-injected
// deltas), and the process-level test builds the real binary, SIGKILLs
// it mid-churn, validates the surviving snapshot against the oracle,
// restarts from it, and proves the daemon serves on.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"tokendrop"
)

func testConfig() serveConfig {
	return serveConfig{
		customers: 60, servers: 20, cdeg: 3, seed: 1, shards: 1,
		maxInflight: 8, queueWait: 100 * time.Millisecond,
		reqTimeout: 2 * time.Second, drainTimeout: time.Second,
		snapshotEvery: time.Hour,
	}
}

// startDaemon boots an in-process daemon behind httptest and waits for
// its in-flight deltas to drain before closing the Resolver.
func startDaemon(t *testing.T, cfg serveConfig) (*daemon, *httptest.Server) {
	t.Helper()
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatalf("newDaemon: %v", err)
	}
	srv := httptest.NewServer(d.mux())
	t.Cleanup(func() {
		srv.Close()
		deadline := time.Now().Add(5 * time.Second)
		for len(d.sem) > 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if len(d.sem) > 0 {
			t.Errorf("deltas still in flight at teardown")
			return
		}
		d.r.Close()
	})
	return d, srv
}

// decodeErr asserts a response carries the unified error JSON with the
// status repeated in code.
func decodeErr(t *testing.T, resp *http.Response, wantStatus int) errResp {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	var e errResp
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if e.Code != wantStatus {
		t.Fatalf("error code = %d, want %d", e.Code, wantStatus)
	}
	if e.Error == "" {
		t.Fatal("error message is empty")
	}
	return e
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// TestErrorJSONShape pins the unified {"error":...,"code":N} contract
// across every failure class: bad method, bad body, unknown field,
// unknown path, and a domain refusal.
func TestErrorJSONShape(t *testing.T) {
	_, srv := startDaemon(t, testConfig())

	resp, err := http.Get(srv.URL + "/assign")
	if err != nil {
		t.Fatal(err)
	}
	decodeErr(t, resp, http.StatusMethodNotAllowed)

	decodeErr(t, postJSON(t, srv.URL+"/assign", `{"servers":`), http.StatusBadRequest)
	decodeErr(t, postJSON(t, srv.URL+"/assign", `{"serverz":[1]}`), http.StatusBadRequest)
	decodeErr(t, postJSON(t, srv.URL+"/assign", `{}`), http.StatusBadRequest)
	decodeErr(t, postJSON(t, srv.URL+"/release", `{"customer":99999}`), http.StatusConflict)
	decodeErr(t, postJSON(t, srv.URL+"/drain", `{"server":99999}`), http.StatusConflict)

	resp, err = http.Get(srv.URL + "/no-such-endpoint")
	if err != nil {
		t.Fatal(err)
	}
	decodeErr(t, resp, http.StatusNotFound)
}

// TestOverloadSheds pins graceful degradation: with one admission slot,
// a stalled delta, and a short response deadline, concurrent requests
// split into 429 sheds (with Retry-After) and 503 timeouts — never
// unbounded queueing, never a non-JSON error.
func TestOverloadSheds(t *testing.T) {
	cfg := testConfig()
	cfg.maxInflight = 1
	cfg.queueWait = 10 * time.Millisecond
	cfg.reqTimeout = 50 * time.Millisecond
	cfg.failSpecs = []string{"serve/delta:stall:every=1,delay=300ms"}
	_, srv := startDaemon(t, cfg)

	const n = 6
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/assign", "application/json",
				strings.NewReader(`{"servers":[0,1,2]}`))
			if err != nil {
				t.Errorf("POST /assign: %v", err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
			if resp.StatusCode != http.StatusOK {
				var e errResp
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Code != resp.StatusCode {
					t.Errorf("request %d: error body not unified JSON (err=%v, body code=%d, status=%d)",
						i, err, e.Code, resp.StatusCode)
				}
			}
		}(i)
	}
	wg.Wait()

	var shed, timedOut int
	for i, c := range codes {
		switch c {
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("429 without Retry-After header")
			}
		case http.StatusServiceUnavailable:
			timedOut++
		case http.StatusOK:
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if shed == 0 {
		t.Errorf("no request was shed with 429 (codes=%v)", codes)
	}
	if timedOut == 0 {
		t.Errorf("no request hit the response deadline with 503 (codes=%v)", codes)
	}
}

// TestFaultInjectedDelta pins the recovery contract for an injected
// fault at the serve/delta site: the delta answers 503 + Retry-After
// without touching the Resolver, and the retried request succeeds.
func TestFaultInjectedDelta(t *testing.T) {
	cfg := testConfig()
	cfg.failSpecs = []string{faultSiteDelta + ":error:every=1,max=1"}
	d, srv := startDaemon(t, cfg)

	resp := postJSON(t, srv.URL+"/assign", `{"servers":[0,1,2]}`)
	e := decodeErr(t, resp, http.StatusServiceUnavailable)
	if !strings.Contains(e.Error, "fault") && !strings.Contains(e.Error, "injected") {
		t.Errorf("error %q does not mention the injected fault", e.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("injected fault answered without Retry-After")
	}
	if got := d.stats().Deltas; got != 0 {
		t.Errorf("faulted delta reached the resolver (deltas = %d)", got)
	}

	resp = postJSON(t, srv.URL+"/assign", `{"servers":[0,1,2]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after rollback: status %d", resp.StatusCode)
	}
	var ar assignResp
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if ar.Customer != cfg.customers {
		t.Errorf("retried assign got customer %d, want %d", ar.Customer, cfg.customers)
	}
	d.mu.Lock()
	err := d.r.Verify()
	d.mu.Unlock()
	if err != nil {
		t.Errorf("post-rollback Verify: %v", err)
	}
}

// TestReadiness pins /healthz (always live) against /readyz (503 while
// draining) and the delta endpoints' draining refusal.
func TestReadiness(t *testing.T) {
	d, srv := startDaemon(t, testConfig())

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	d.draining.Store(true)
	defer d.draining.Store(false)
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	decodeErr(t, resp, http.StatusServiceUnavailable)
	decodeErr(t, postJSON(t, srv.URL+"/assign", `{"servers":[0,1,2]}`), http.StatusServiceUnavailable)

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Error("/healthz went unhealthy during drain")
	}
}

// procLog captures a child process's stdout line by line so the test
// can wait for boot and shutdown markers.
type procLog struct {
	mu    sync.Mutex
	lines []string
}

func (p *procLog) add(line string) {
	p.mu.Lock()
	p.lines = append(p.lines, line)
	p.mu.Unlock()
}

// waitFor blocks until a line containing want appears, returning it.
func (p *procLog) waitFor(t *testing.T, want string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		for _, l := range p.lines {
			if strings.Contains(l, want) {
				p.mu.Unlock()
				return l
			}
		}
		p.mu.Unlock()
		time.Sleep(10 * time.Millisecond)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t.Fatalf("no %q in output after %v; got:\n%s", want, timeout, strings.Join(p.lines, "\n"))
	return ""
}

// startProc launches the built binary and scans its stdout+stderr.
func startProc(t *testing.T, bin string, args ...string) (*exec.Cmd, *procLog) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	lg := &procLog{}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			lg.add(sc.Text())
		}
	}()
	return cmd, lg
}

// addrOf extracts the bound address from the boot line.
func addrOf(t *testing.T, line string) string {
	t.Helper()
	const marker = "listening on "
	i := strings.Index(line, marker)
	j := strings.Index(line, " (")
	if i < 0 || j < 0 || j <= i {
		t.Fatalf("cannot parse boot line %q", line)
	}
	return line[i+len(marker) : j]
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("/readyz never went green")
}

func getStats(t *testing.T, base string) statsResp {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResp
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestChaosKillRestart is the end-to-end crash-recovery suite: build
// the real binary, churn it with snapshots ticking, SIGKILL it
// mid-stream, prove the surviving snapshot is oracle-valid, restart
// from it, prove the daemon serves the restored assignment, and finish
// with a clean SIGTERM drain.
func TestChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real process")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "td-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	var buildOut bytes.Buffer
	build.Stdout, build.Stderr = &buildOut, &buildOut
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v\n%s", err, buildOut.String())
	}

	snapDir := filepath.Join(dir, "snap")
	args := []string{
		"-listen", "127.0.0.1:0", "-snapshot", snapDir, "-snapshot-every", "50ms",
		"-customers", "200", "-servers", "50", "-cdeg", "3",
	}
	cmd, lg := startProc(t, bin, args...)
	base := "http://" + addrOf(t, lg.waitFor(t, "listening on ", 15*time.Second))
	waitReady(t, base)

	// Scripted churn: arrivals, departures, and a few rotations. The
	// client tolerates 409 refusals everywhere — after the crash its
	// view may be one snapshot interval ahead of the daemon's.
	cc := &churnClient{
		base: base, client: &http.Client{Timeout: 5 * time.Second},
		rng: rand.New(rand.NewSource(7)), retries: 20,
	}
	for s := 0; s < 50; s++ {
		cc.pool = append(cc.pool, s)
	}
	var window []int
	applyDelta := func(i int) {
		switch {
		case i%40 == 39:
			j := cc.rng.Intn(len(cc.pool))
			var ok okResp
			if err := cc.call("/drain", drainReq{Server: cc.pool[j]}, &ok); err != nil {
				if !refusal(err) {
					t.Fatalf("drain: %v", err)
				}
				return
			}
			var sr serverResp
			if err := cc.call("/add-server", struct{}{}, &sr); err != nil {
				t.Fatalf("add-server: %v", err)
			}
			cc.pool[j] = sr.Server
		case len(window) >= 64:
			c := window[0]
			window = window[1:]
			var ok okResp
			if err := cc.call("/release", releaseReq{Customer: c}, &ok); err != nil && !refusal(err) {
				t.Fatalf("release: %v", err)
			}
		default:
			servers := []int32{}
			for len(servers) < 3 {
				s := int32(cc.pool[cc.rng.Intn(len(cc.pool))])
				dup := false
				for _, prev := range servers {
					dup = dup || prev == s
				}
				if !dup {
					servers = append(servers, s)
				}
			}
			var ar assignResp
			if err := cc.call("/assign", assignReq{Servers: servers}, &ar); err != nil {
				if !refusal(err) {
					t.Fatalf("assign: %v", err)
				}
				return
			}
			window = append(window, ar.Customer)
		}
	}
	for i := 0; i < 120; i++ {
		applyDelta(i)
	}
	// Let at least two snapshots land so the kill has state to lose.
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, base).Snapshots < 2 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if n := getStats(t, base).Snapshots; n < 2 {
		t.Fatalf("only %d snapshots before the kill", n)
	}
	for i := 120; i < 160; i++ {
		applyDelta(i)
	}

	// Crash: SIGKILL, no drain, no final snapshot.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// The surviving snapshot must be oracle-valid on its own: it
	// restores, its graph hash checks out, and the restored assignment
	// is complete, adjacent, stable, and count-consistent (Verify).
	snapPath := filepath.Join(snapDir, snapshotFile)
	sj, err := tokendrop.ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatalf("snapshot after kill: %v", err)
	}
	tie, err := tokendrop.ParseTie(sj.Meta.Tie)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sj.ToResolver(tokendrop.ResolverOptions{Tie: tie, Seed: sj.Meta.Seed})
	if err != nil {
		t.Fatalf("snapshot does not restore: %v", err)
	}
	if err := r.Verify(); err != nil {
		t.Fatalf("restored assignment fails the oracle: %v", err)
	}
	snapCustomers := r.Stats().Customers
	if snapCustomers != len(sj.CustIDs) {
		t.Fatalf("restored customers = %d, snapshot lists %d", snapCustomers, len(sj.CustIDs))
	}
	r.Close()

	// Restart from the same snapshot directory and serve on.
	cmd2, lg2 := startProc(t, bin, args...)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	base2 := "http://" + addrOf(t, lg2.waitFor(t, "listening on ", 15*time.Second))
	waitReady(t, base2)
	lg2.waitFor(t, "restored from snapshot", 5*time.Second)
	st := getStats(t, base2)
	if !st.Restored {
		t.Error("restarted daemon does not report restored state")
	}
	if st.Customers != snapCustomers {
		t.Errorf("restarted daemon serves %d customers, snapshot held %d", st.Customers, snapCustomers)
	}

	// The restored daemon accepts new deltas; some assigns may be
	// refused where the client's pool is ahead of the snapshot.
	cc.base = base2
	cc.client = &http.Client{Timeout: 5 * time.Second}
	okAssigns := 0
	for i := 0; i < 20; i++ {
		var ar assignResp
		err := cc.call("/assign", assignReq{Servers: []int32{0, 1, 2}}, &ar)
		if err == nil {
			okAssigns++
		} else if !refusal(err) {
			t.Fatalf("post-restart assign: %v", err)
		}
	}
	if okAssigns == 0 {
		t.Error("restored daemon accepted no deltas")
	}

	// Finish with a graceful drain: SIGTERM, final snapshot, the
	// clean-shutdown line with consistent counts.
	preStop := getStats(t, base2)
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	cmd2.Wait()
	lg2.waitFor(t, fmt.Sprintf("clean shutdown after %d deltas", preStop.Deltas), 5*time.Second)

	// The drain's final snapshot reflects the served deltas.
	sj2, err := tokendrop.ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatalf("snapshot after drain: %v", err)
	}
	if len(sj2.CustIDs) != preStop.Customers {
		t.Errorf("final snapshot lists %d customers, daemon served %d", len(sj2.CustIDs), preStop.Customers)
	}
}
