// Command td-assign computes stable assignments on customer/server
// networks (Theorem 7.3), the 2-bounded relaxation (Theorem 7.5), the
// Theorem 7.4 matching reduction, and the semi-matching approximation
// ratio.
//
// Usage examples:
//
//	td-assign -customers 60 -servers 20 -cdeg 4
//	td-assign -customers 40 -servers 8 -cdeg 3 -kbounded -k 2
//	td-assign -customers 30 -servers 10 -cdeg 3 -optimal
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"tokendrop"
)

func main() {
	var (
		nc       = flag.Int("customers", 40, "number of customers")
		ns       = flag.Int("servers", 12, "number of servers")
		cdeg     = flag.Int("cdeg", 3, "servers adjacent to each customer")
		kbounded = flag.Bool("kbounded", false, "solve the k-bounded relaxation instead")
		k        = flag.Int("k", 2, "threshold for -kbounded")
		optimal  = flag.Bool("optimal", false, "also compute the exact optimal semi-matching")
		seed     = flag.Int64("seed", 1, "seed")
		loads    = flag.Bool("loads", false, "print the server load histogram")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g := tokendrop.RandomBipartite(*nc, *ns, *cdeg, rng)
	b, err := tokendrop.NewBipartite(g, *nc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: customers=%d servers=%d C=%d S=%d\n",
		b.NumCustomers(), b.NumServers(), b.MaxCustomerDegree(), b.MaxServerDegree())

	var a *tokendrop.Assignment
	if *kbounded {
		res, err := tokendrop.KBoundedAssignment(b, tokendrop.BoundedOptions{K: *k, Seed: *seed, CheckInvariants: true})
		if err != nil {
			log.Fatal(err)
		}
		a = res.Assignment
		fmt.Printf("%d-bounded stable assignment (Thm 7.5): phases=%d rounds=%d k-stable=%v\n",
			res.K, res.Phases, res.Rounds, a.KStable(res.K))
		matchOf := tokendrop.MatchingFromBounded(a)
		err = tokendrop.VerifyMaximalMatching(b, matchOf)
		fmt.Printf("Theorem 7.4 reduction to maximal matching: valid=%v\n", err == nil)
	} else {
		res, err := tokendrop.StableAssignment(b, tokendrop.AssignOptions{Seed: *seed, CheckInvariants: true})
		if err != nil {
			log.Fatal(err)
		}
		a = res.Assignment
		fmt.Printf("stable assignment (Thm 7.3): phases=%d rounds=%d stable=%v cost=%d\n",
			res.Phases, res.Rounds, a.Stable(), a.SemimatchingCost())
	}

	if *optimal {
		ratio, opt, err := tokendrop.SemimatchingApproxRatio(a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("optimal semi-matching cost=%d, ratio=%.3f (paper guarantee for stable: ≤ 2)\n", opt, ratio)
	}

	if *loads {
		hist := map[int]int{}
		maxLoad := 0
		for _, s := range b.Servers() {
			l := a.Load(s)
			hist[l]++
			if l > maxLoad {
				maxLoad = l
			}
		}
		fmt.Println("load histogram:")
		for l := 0; l <= maxLoad; l++ {
			if hist[l] > 0 {
				fmt.Printf("  load %2d: %d servers\n", l, hist[l])
			}
		}
	}
}
