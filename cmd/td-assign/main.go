// Command td-assign computes stable assignments on customer/server
// networks (Theorem 7.3), the 2-bounded relaxation (Theorem 7.5), the
// Theorem 7.4 matching reduction, and the semi-matching approximation
// ratio. Both LOCAL runtimes are available: the seed object engine and the
// sharded flat engine (-engine sharded), which run bit-identical
// deterministic protocols.
//
// Usage examples:
//
//	td-assign -customers 60 -servers 20 -cdeg 4
//	td-assign -customers 40 -servers 8 -cdeg 3 -kbounded -k 2
//	td-assign -customers 30 -servers 10 -cdeg 3 -optimal
//	td-assign -customers 200000 -servers 50000 -cdeg 3 -engine sharded
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"tokendrop"
	"tokendrop/internal/cliutil"
)

// recordMeta canonicalizes the generator flags as run provenance.
func recordMeta(nc, ns, cdeg int, seed int64, shards int) tokendrop.RunMetaJSON {
	return tokendrop.RunMetaJSON{
		Workload: fmt.Sprintf("bipartite customers=%d servers=%d cdeg=%d", nc, ns, cdeg),
		GenSeed:  seed, Tie: tokendrop.TieName(tokendrop.TieFirstPort), Seed: seed, Shards: shards,
	}
}

// saveRecordSnapshot persists the latest mid-solve snapshot atomically,
// creating the recording directory on first use.
func saveRecordSnapshot(dir string, sj *tokendrop.SnapshotJSON) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return tokendrop.SaveSnapshotFile(filepath.Join(dir, "snapshot.json"), sj)
}

// finishRecord writes the final run state.
func finishRecord(dir string, sj *tokendrop.SnapshotJSON) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := tokendrop.SaveSnapshotFile(filepath.Join(dir, "run.json"), sj); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded run in %s\n", dir)
}

func main() {
	var (
		nc       = flag.Int("customers", 40, "number of customers")
		ns       = flag.Int("servers", 12, "number of servers")
		cdeg     = flag.Int("cdeg", 3, "servers adjacent to each customer")
		kbounded = flag.Bool("kbounded", false, "solve the k-bounded relaxation instead")
		k        = flag.Int("k", 2, "threshold for -kbounded")
		optimal  = flag.Bool("optimal", false, "also compute the exact optimal semi-matching")
		seed     = flag.Int64("seed", 1, "seed")
		loads    = flag.Bool("loads", false, "print the server load histogram")
		engine   = flag.String("engine", "local", "local (goroutine-per-node simulator) | sharded (flat CSR engine)")
		shards   = cliutil.ShardsFlag()
		record   = flag.String("record", "", "record the run into this directory (snapshot.json per phase, run.json final state); requires -engine sharded")
		version  = cliutil.VersionFlag()
	)
	flag.Parse()
	cliutil.HandleVersionFlag(version)

	if *record != "" && *engine != "sharded" {
		log.Fatal("-record requires -engine sharded (snapshots capture the flat engine's state)")
	}

	rng := rand.New(rand.NewSource(*seed))
	g := tokendrop.RandomBipartite(*nc, *ns, *cdeg, rng)
	b, err := tokendrop.NewBipartite(g, *nc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: customers=%d servers=%d C=%d S=%d engine=%s\n",
		b.NumCustomers(), b.NumServers(), b.MaxCustomerDegree(), b.MaxServerDegree(), *engine)

	// loadVec collects the per-server loads for -loads; the sharded paths
	// fill it from the flat result directly, so the histogram never forces
	// an object-graph materialization (only -optimal does).
	var a *tokendrop.Assignment
	var loadVec []int
	switch {
	case *engine == "sharded" && *kbounded:
		fb := tokendrop.NewFlatBipartite(b)
		sopt := tokendrop.BoundedShardedOptions{
			K: *k, Seed: *seed, Shards: *shards, CheckInvariants: true,
		}
		meta := recordMeta(*nc, *ns, *cdeg, *seed, *shards)
		if *record != "" {
			buf := new(tokendrop.BoundedSnapshot)
			sopt.SnapshotEvery = 1
			sopt.SnapshotInto = buf
			sopt.OnSnapshot = func(s *tokendrop.BoundedSnapshot) error {
				return saveRecordSnapshot(*record, tokendrop.BoundedSnapshotJSON(s, fb, meta))
			}
		}
		res, err := tokendrop.KBoundedAssignmentSharded(fb, sopt)
		if err != nil {
			log.Fatal(err)
		}
		if *record != "" {
			final := &tokendrop.BoundedSnapshot{
				K: res.K, Phase: res.Phases, Rounds: res.Rounds,
				ServerOf: res.ServerOf, Load: res.Load, PhaseLog: res.PhaseLog,
			}
			finishRecord(*record, tokendrop.BoundedSnapshotJSON(final, fb, meta))
		}
		fmt.Printf("%d-bounded stable assignment (Thm 7.5, sharded): phases=%d rounds=%d k-stable=%v\n",
			res.K, res.Phases, res.Rounds, res.KStable())
		matchOf := tokendrop.MatchingFromBoundedSharded(res)
		err = tokendrop.VerifyMaximalMatching(b, matchOf)
		fmt.Printf("Theorem 7.4 reduction to maximal matching: valid=%v\n", err == nil)
		for _, l := range res.Load {
			loadVec = append(loadVec, int(l))
		}
		if *optimal {
			a = res.Assignment()
		}
	case *engine == "sharded":
		fb := tokendrop.NewFlatBipartite(b)
		sopt := tokendrop.AssignShardedOptions{
			Seed: *seed, Shards: *shards, CheckInvariants: true,
		}
		meta := recordMeta(*nc, *ns, *cdeg, *seed, *shards)
		if *record != "" {
			buf := new(tokendrop.AssignSnapshot)
			sopt.SnapshotEvery = 1
			sopt.SnapshotInto = buf
			sopt.OnSnapshot = func(s *tokendrop.AssignSnapshot) error {
				return saveRecordSnapshot(*record, tokendrop.AssignSnapshotJSON(s, fb, meta))
			}
		}
		res, err := tokendrop.StableAssignmentSharded(fb, sopt)
		if err != nil {
			log.Fatal(err)
		}
		if *record != "" {
			final := &tokendrop.AssignSnapshot{
				Phase: res.Phases, Rounds: res.Rounds,
				ServerOf: res.ServerOf, Load: res.Load, PhaseLog: res.PhaseLog,
			}
			finishRecord(*record, tokendrop.AssignSnapshotJSON(final, fb, meta))
		}
		fmt.Printf("stable assignment (Thm 7.3, sharded): phases=%d rounds=%d stable=%v cost=%d\n",
			res.Phases, res.Rounds, res.Stable(), res.SemimatchingCost())
		for _, l := range res.Load {
			loadVec = append(loadVec, int(l))
		}
		if *optimal {
			a = res.Assignment()
		}
	case *kbounded:
		res, err := tokendrop.KBoundedAssignment(b, tokendrop.BoundedOptions{K: *k, Seed: *seed, CheckInvariants: true})
		if err != nil {
			log.Fatal(err)
		}
		a = res.Assignment
		fmt.Printf("%d-bounded stable assignment (Thm 7.5): phases=%d rounds=%d k-stable=%v\n",
			res.K, res.Phases, res.Rounds, a.KStable(res.K))
		matchOf := tokendrop.MatchingFromBounded(a)
		err = tokendrop.VerifyMaximalMatching(b, matchOf)
		fmt.Printf("Theorem 7.4 reduction to maximal matching: valid=%v\n", err == nil)
	default:
		res, err := tokendrop.StableAssignment(b, tokendrop.AssignOptions{Seed: *seed, CheckInvariants: true})
		if err != nil {
			log.Fatal(err)
		}
		a = res.Assignment
		fmt.Printf("stable assignment (Thm 7.3): phases=%d rounds=%d stable=%v cost=%d\n",
			res.Phases, res.Rounds, a.Stable(), a.SemimatchingCost())
	}

	if *optimal {
		ratio, opt, err := tokendrop.SemimatchingApproxRatio(a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("optimal semi-matching cost=%d, ratio=%.3f (paper guarantee for stable: ≤ 2)\n", opt, ratio)
	}

	if *loads {
		if loadVec == nil {
			for _, s := range b.Servers() {
				loadVec = append(loadVec, a.Load(s))
			}
		}
		hist := map[int]int{}
		maxLoad := 0
		for _, l := range loadVec {
			hist[l]++
			if l > maxLoad {
				maxLoad = l
			}
		}
		fmt.Println("load histogram:")
		for l := 0; l <= maxLoad; l++ {
			if hist[l] > 0 {
				fmt.Printf("  load %2d: %d servers\n", l, hist[l])
			}
		}
	}
}
