// Command td-experiments regenerates every experiment table of the
// reproduction (index E1–E29 in internal/bench): one table per
// theorem/figure of "Efficient Load-Balancing through Distributed Token
// Dropping" (SPAA 2021), plus the ablations, the engine-parity
// certificates (E22–E24), the shard-scaling sweeps of the bare engine
// (E25) and the whole phase loops (E26), and the baseline strategy
// arena's Pareto report (E28), and the multi-process transport wire-cost
// report (E29).
//
// With -shardedjson FILE it additionally measures the machine-readable
// engine benchmark report (rounds/s and allocs/round for E22–E29; see
// bench.ShardedBench) and writes it to FILE — the BENCH_sharded.json
// format the repository records committed snapshots of (full profile,
// plus the quick-profile baseline the CI bench-regression gate diffs
// against; see cmd/td-benchgate).
//
// Usage:
//
//	td-experiments [-quick] [-seed N] [-only E7] [-shards N] [-shardedjson FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tokendrop/internal/bench"
	"tokendrop/internal/cliutil"
)

func main() {
	quick := flag.Bool("quick", false, "small instance sizes (sub-second total)")
	seed := flag.Int64("seed", 42, "base seed for all workloads")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E4a,E7); empty = all")
	shards := cliutil.ShardsFlag()
	shardedJSON := flag.String("shardedjson", "", "write the machine-readable engine benchmark report (E22–E29) to this file")
	benchRepeat := flag.Int("benchrepeat", 5, "measurements per -shardedjson report entry (best run recorded)")
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.HandleVersionFlag(version)

	p := bench.Profile{Quick: *quick, Seed: *seed, Shards: *shards, Repeat: *benchRepeat}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	fmt.Printf("token dropping reproduction — experiment tables (quick=%v seed=%d)\n\n", *quick, *seed)
	violations := 0
	for _, tbl := range bench.All(p) {
		if len(want) > 0 && !want[strings.ToUpper(tbl.ID)] {
			continue
		}
		tbl.Render(os.Stdout)
		for _, row := range tbl.Rows {
			for _, cell := range row {
				if strings.Contains(cell, "VIOLATED") || strings.Contains(cell, "error") {
					violations++
				}
			}
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "%d claim violations detected\n", violations)
		os.Exit(1)
	}
	if *shardedJSON != "" {
		f, err := os.Create(*shardedJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sharded benchmark report: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteShardedBenchJSON(f, p); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "sharded benchmark report: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "sharded benchmark report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote engine benchmark report to %s\n", *shardedJSON)
	}
}
