// Command td-benchgate is the CI bench-regression gate: it compares a
// freshly measured engine benchmark report (the BENCH_sharded.json
// format of `td-experiments -shardedjson`) against a committed baseline
// of the same profile and exits non-zero when the fresh numbers regress
// — a rounds/s drop beyond the tolerance on any entry, an allocs/round
// increase beyond the slack on a sharded (steady-state) entry, p99
// latency growth past the tolerance on the serve entry, movement of the
// arena's token-dropping Pareto points, or any growth of the
// multi-process transport's deterministic per-round wire cost (the E29
// entries, compared exactly). Baseline entries the fresh report does
// not measure (for
// example scaling-sweep points past the runner's core count) are
// reported as warnings but do not fail the gate.
//
// Usage:
//
//	td-benchgate -base BENCH_sharded_quick.json -fresh fresh.json [-tolerance 0.15] [-allocslack 0.5]
package main

import (
	"flag"
	"fmt"
	"os"

	"tokendrop/internal/bench"
	"tokendrop/internal/cliutil"
)

func main() {
	basePath := flag.String("base", "BENCH_sharded_quick.json", "committed baseline report")
	freshPath := flag.String("fresh", "", "freshly measured report to gate (required)")
	tolerance := flag.Float64("tolerance", 0, "fractional rounds/s drop tolerated per entry (0 = the 0.15 default)")
	allocSlack := flag.Float64("allocslack", 0, "absolute allocs/round increase tolerated on steady-state entries (0 = the 0.5 default)")
	latTolerance := flag.Float64("lattolerance", 0, "fractional p99 delta-latency growth tolerated on the serve entry (0 = the 0.5 default)")
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.HandleVersionFlag(version)
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "td-benchgate: -fresh is required")
		os.Exit(2)
	}

	read := func(path string) *bench.ShardedBenchReport {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "td-benchgate: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		rep, err := bench.ReadShardedBenchJSON(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "td-benchgate: %s: %v\n", path, err)
			os.Exit(2)
		}
		return rep
	}
	base := read(*basePath)
	fresh := read(*freshPath)

	violations, warnings := bench.CompareShardedReports(base, fresh, bench.RegressionOptions{
		RoundsTolerance:  *tolerance,
		AllocSlack:       *allocSlack,
		LatencyTolerance: *latTolerance,
	})
	for _, w := range warnings {
		fmt.Printf("warning: %s\n", w)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Printf("REGRESSION: %s\n", v)
		}
		fmt.Fprintf(os.Stderr, "td-benchgate: %d regression(s) against %s\n", len(violations), *basePath)
		os.Exit(1)
	}
	fmt.Printf("td-benchgate: %d entries within tolerance of %s\n", len(base.Entries), *basePath)
}
