// Command td-orient computes stable orientations with the paper's
// Theorem 5.1 algorithm and optionally compares against the baselines.
//
// Each graph kind consumes a subset of the flags:
//
//	regular      -n (vertices), -d (degree)
//	gnm          -n (vertices), -m (edges)
//	grid         -n (side length; the grid is n×n)
//	tree         -d (arity), -depth (levels below the root)
//	caterpillar  -n (spine length), -d (legs per spine vertex)
//	star         -n (leaves)
//	cycle        -n (vertices)
//	powerlaw     -n (vertices), -d (max degree), -alpha (exponent)
//
// -engine selects the runtime: "local" is the goroutine-per-node seed
// engine, "sharded" the flat CSR engine for large graphs. Under sharded
// the regular kind generates directly into CSR form (requires 2d < n), so
// its seeded graphs differ from the local engine's pointer generator; all
// other kinds — powerlaw included — build the identical graph on either
// engine, and deterministic runs are bit-comparable across engines.
//
// Usage examples:
//
//	td-orient -graph regular -n 48 -d 6
//	td-orient -graph caterpillar -n 100 -d 2 -baselines
//	td-orient -graph gnm -n 60 -m 240 -phases
//	td-orient -graph tree -d 3 -depth 6
//	td-orient -graph regular -n 1000000 -d 4 -engine sharded
//	td-orient -graph powerlaw -n 500000 -d 32 -alpha 2.2 -engine sharded
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"tokendrop"
	"tokendrop/internal/cliutil"
)

func main() {
	var (
		kind      = flag.String("graph", "regular", "regular | gnm | grid | tree | caterpillar | star | cycle | powerlaw")
		n         = flag.Int("n", 32, "vertices (spine length for caterpillar, leaves for star, side for grid)")
		d         = flag.Int("d", 4, "degree (regular/tree), legs (caterpillar), or max degree (powerlaw)")
		m         = flag.Int("m", 64, "edges (gnm)")
		depth     = flag.Int("depth", 4, "tree depth (tree)")
		alpha     = flag.Float64("alpha", 2.0, "power-law degree exponent (powerlaw)")
		engine    = flag.String("engine", "local", "local (goroutine-per-node simulator) | sharded (flat CSR engine)")
		shards    = cliutil.ShardsFlag()
		seed      = flag.Int64("seed", 1, "seed")
		random    = flag.Bool("random-ties", false, "randomized tie-breaking")
		phases    = flag.Bool("phases", false, "print the per-phase log")
		baselines = flag.Bool("baselines", false, "also run the sequential greedy and selfish-flip baselines (local engine only)")
		record    = flag.String("record", "", "record the run into this directory (snapshot.json per phase, run.json final state); requires -engine sharded")
		version   = cliutil.VersionFlag()
	)
	flag.Parse()
	cliutil.HandleVersionFlag(version)

	if *engine != "local" && *engine != "sharded" {
		log.Fatalf("unknown engine %q (want local or sharded)", *engine)
	}
	if *record != "" && *engine != "sharded" {
		log.Fatal("-record requires -engine sharded (snapshots capture the flat engine's state)")
	}
	if *baselines && *engine != "local" {
		log.Fatal("-baselines requires -engine local")
	}
	if *engine == "sharded" && *kind == "regular" && 2**d >= *n {
		log.Fatalf("sharded regular generation requires 2d < n (got n=%d d=%d); dense graphs belong to -engine local", *n, *d)
	}
	if *kind == "regular" && *n**d%2 != 0 {
		log.Fatalf("a %d-regular graph needs n*d even (got n=%d)", *d, *n)
	}
	if *kind == "powerlaw" && *d >= *n {
		log.Fatalf("powerlaw needs max degree below n (got n=%d d=%d)", *n, *d)
	}

	rng := rand.New(rand.NewSource(*seed))
	var g *tokendrop.Graph     // pointer graph (local engine, baselines)
	var c *tokendrop.FlatGraph // CSR graph (sharded engine)
	switch *kind {
	case "regular":
		if *engine == "sharded" {
			c = tokendrop.RandomRegularFlat(*n, *d, rng)
		} else {
			g = tokendrop.RandomRegular(*n, *d, rng)
		}
	case "powerlaw":
		c = tokendrop.PowerLawFlat(*n, *alpha, *d, rng)
		if *engine == "local" {
			g = c.ToGraph()
			c = nil
		}
	case "gnm":
		g = tokendrop.RandomGraph(*n, *m, rng)
	case "grid":
		g = tokendrop.GridGraph(*n, *n)
	case "tree":
		g, _ = tokendrop.PerfectDAryTree(*d, *depth)
	case "caterpillar":
		g = tokendrop.CaterpillarGraph(*n, *d)
	case "star":
		g = tokendrop.StarGraph(*n)
	case "cycle":
		g = tokendrop.CycleGraph(*n)
	default:
		log.Fatalf("unknown graph %q", *kind)
	}
	if *engine == "sharded" && c == nil {
		c = tokendrop.NewFlatGraph(g)
	}

	tie := tokendrop.TieFirstPort
	if *random {
		tie = tokendrop.TieRandom
	}

	var (
		phaseCount, rounds, worstCase int
		stable                        bool
		potential, semiCost           int64
		phaseLog                      []tokendrop.OrientPhase
	)
	if *engine == "sharded" {
		fmt.Printf("graph: n=%d m=%d Δ=%d (sharded engine)\n", c.N(), c.M(), c.MaxDegree())
		sopt := tokendrop.OrientShardedOptions{
			Tie: tie, Seed: *seed, Shards: *shards, CheckInvariants: true,
		}
		meta := tokendrop.RunMetaJSON{
			Workload: fmt.Sprintf("%s n=%d d=%d m=%d depth=%d alpha=%g", *kind, *n, *d, *m, *depth, *alpha),
			GenSeed:  *seed, Tie: tokendrop.TieName(tie), Seed: *seed, Shards: *shards,
		}
		if *record != "" {
			if err := os.MkdirAll(*record, 0o755); err != nil {
				log.Fatal(err)
			}
			buf := new(tokendrop.OrientSnapshot)
			sopt.SnapshotEvery = 1
			sopt.SnapshotInto = buf
			sopt.OnSnapshot = func(s *tokendrop.OrientSnapshot) error {
				return tokendrop.SaveSnapshotFile(filepath.Join(*record, "snapshot.json"),
					tokendrop.OrientSnapshotJSON(s, c, meta))
			}
		}
		res, err := tokendrop.StableOrientationSharded(c, sopt)
		if err != nil {
			log.Fatal(err)
		}
		if *record != "" {
			final := &tokendrop.OrientSnapshot{
				Phase: res.Phases, Oriented: c.M(), Rounds: res.Rounds,
				Head: res.Head, Load: res.Load, PhaseLog: res.PhaseLog,
			}
			if err := tokendrop.SaveSnapshotFile(filepath.Join(*record, "run.json"),
				tokendrop.OrientSnapshotJSON(final, c, meta)); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("recorded run in %s\n", *record)
		}
		phaseCount, rounds, worstCase = res.Phases, res.Rounds, res.WorstCaseRounds
		stable, potential, semiCost = res.Stable(), res.Potential(), res.SemimatchingCost()
		phaseLog = res.PhaseLog
	} else {
		fmt.Printf("graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDegree())
		res, err := tokendrop.StableOrientation(g, tokendrop.OrientOptions{
			Tie: tie, Seed: *seed, CheckInvariants: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		phaseCount, rounds, worstCase = res.Phases, res.Rounds, res.WorstCaseRounds
		stable = res.Orientation.Stable()
		potential = int64(res.Orientation.Potential())
		semiCost = int64(res.Orientation.SemimatchingCost())
		phaseLog = res.PhaseLog
	}
	fmt.Printf("token dropping algorithm (Thm 5.1): phases=%d rounds=%d (worst-case bound %d) stable=%v\n",
		phaseCount, rounds, worstCase, stable)
	fmt.Printf("  potential Σload² = %d, semi-matching cost = %d\n", potential, semiCost)

	if *phases {
		for _, rec := range phaseLog {
			fmt.Printf("  phase %2d: proposals=%d accepted=%d gameEdges=%d gameRounds=%d moved=%d maxBadness=%d\n",
				rec.Phase, rec.Proposals, rec.Accepted, rec.GameEdges, rec.GameRounds, rec.TokensMoved, rec.MaxBadness)
		}
	}

	if *baselines {
		init := tokendrop.ArbitraryOrientation(g, tokendrop.InitTowardHigherID, nil)
		greedy := tokendrop.GreedyOrientation(init.Clone(), tokendrop.FlipFirst, nil)
		fmt.Printf("sequential greedy (§1.1): flips=%d potential %d→%d stable=%v\n",
			greedy.Flips, greedy.InitialPotential, greedy.FinalPotential, greedy.Orientation.Stable())
		selfish, err := tokendrop.SelfishOrientation(init, *seed, 1<<20, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("selfish-flip dynamic (CHSW12-class): rounds=%d flips=%d stable=%v\n",
			selfish.Rounds, selfish.Flips, selfish.Orientation.Stable())
	}
}
