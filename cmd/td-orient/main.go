// Command td-orient computes stable orientations with the paper's
// Theorem 5.1 algorithm and optionally compares against the baselines.
//
// Usage examples:
//
//	td-orient -graph regular -n 48 -d 6
//	td-orient -graph caterpillar -n 100 -d 2 -baselines
//	td-orient -graph gnm -n 60 -m 240 -phases
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"tokendrop"
)

func main() {
	var (
		kind      = flag.String("graph", "regular", "regular | gnm | grid | tree | caterpillar | star | cycle")
		n         = flag.Int("n", 32, "vertices (or spine length for caterpillar, leaves for star)")
		d         = flag.Int("d", 4, "degree (regular/tree) or legs (caterpillar)")
		m         = flag.Int("m", 64, "edges (gnm)")
		seed      = flag.Int64("seed", 1, "seed")
		random    = flag.Bool("random-ties", false, "randomized tie-breaking")
		phases    = flag.Bool("phases", false, "print the per-phase log")
		baselines = flag.Bool("baselines", false, "also run the sequential greedy and selfish-flip baselines")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *tokendrop.Graph
	switch *kind {
	case "regular":
		g = tokendrop.RandomRegular(*n, *d, rng)
	case "gnm":
		g = tokendrop.RandomGraph(*n, *m, rng)
	case "grid":
		g = tokendrop.GridGraph(*n, *n)
	case "tree":
		g, _ = tokendrop.PerfectDAryTree(*d, 4)
	case "caterpillar":
		g = tokendrop.CaterpillarGraph(*n, *d)
	case "star":
		g = tokendrop.StarGraph(*n)
	case "cycle":
		g = tokendrop.CycleGraph(*n)
	default:
		log.Fatalf("unknown graph %q", *kind)
	}

	fmt.Printf("graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDegree())

	opt := tokendrop.OrientOptions{Seed: *seed, CheckInvariants: true}
	if *random {
		opt.Tie = tokendrop.TieRandom
	}
	res, err := tokendrop.StableOrientation(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("token dropping algorithm (Thm 5.1): phases=%d rounds=%d (worst-case bound %d) stable=%v\n",
		res.Phases, res.Rounds, res.WorstCaseRounds, res.Orientation.Stable())
	fmt.Printf("  potential Σload² = %d, semi-matching cost = %d\n",
		res.Orientation.Potential(), res.Orientation.SemimatchingCost())

	if *phases {
		for _, rec := range res.PhaseLog {
			fmt.Printf("  phase %2d: proposals=%d accepted=%d gameEdges=%d gameRounds=%d moved=%d maxBadness=%d\n",
				rec.Phase, rec.Proposals, rec.Accepted, rec.GameEdges, rec.GameRounds, rec.TokensMoved, rec.MaxBadnessends)
		}
	}

	if *baselines {
		init := tokendrop.ArbitraryOrientation(g, tokendrop.InitTowardHigherID, nil)
		greedy := tokendrop.GreedyOrientation(init.Clone(), tokendrop.FlipFirst, nil)
		fmt.Printf("sequential greedy (§1.1): flips=%d potential %d→%d stable=%v\n",
			greedy.Flips, greedy.InitialPotential, greedy.FinalPotential, greedy.Orientation.Stable())
		selfish, err := tokendrop.SelfishOrientation(init, *seed, 1<<20, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("selfish-flip dynamic (CHSW12-class): rounds=%d flips=%d stable=%v\n",
			selfish.Rounds, selfish.Flips, selfish.Orientation.Stable())
	}
}
