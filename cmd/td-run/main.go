// Command td-run solves token dropping game instances and reports rounds,
// messages, and token traversals.
//
// Usage examples:
//
//	td-run -workload chain -levels 16
//	td-run -workload layered -levels 5 -width 12 -deg 3 -tokens 0.7 -solver proposal -paths
//	td-run -workload figure2 -solver sequential -paths
//	td-run -workload bipartite -width 20 -deg 4 -solver threelevel
//	td-run -workload layered -levels 7 -width 125000 -deg 4 -engine sharded
//	td-run -workload grid -levels 100 -width 10000 -engine sharded
//	td-run -workload powerlaw -width 500000 -deg 16 -engine sharded -solver threelevel
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"

	"tokendrop"
	"tokendrop/internal/cliutil"
	"tokendrop/internal/fault"
	"tokendrop/internal/mp"
)

// failFlags collects repeated -fail specs.
type failFlags []string

// String renders the collected specs for flag's usage output.
func (f *failFlags) String() string { return fmt.Sprint([]string(*f)) }

// Set appends one spec per flag occurrence.
func (f *failFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var (
		workload  = flag.String("workload", "layered", "chain | layered | figure2 | bipartite | topheavy | grid | powerlaw")
		levels    = flag.Int("levels", 5, "number of layers above layer 0")
		width     = flag.Int("width", 10, "vertices per layer (layered/topheavy/grid) or per side (bipartite/powerlaw)")
		deg       = flag.Int("deg", 3, "downward degree per vertex (max degree for powerlaw)")
		tokens    = flag.Float64("tokens", 0.6, "token density (layered)")
		solver    = flag.String("solver", "proposal", "proposal | threelevel | sequential | parallel")
		engine    = flag.String("engine", "local", "local (goroutine-per-node simulator) | sharded (flat CSR engine) | mp (multi-process sharded engine)")
		shards    = cliutil.ShardsFlag()
		procs     = flag.Int("procs", 2, "with -engine mp: worker-process count")
		sppFlag   = flag.Int("shards-per-proc", 1, "with -engine mp: engine shards per worker process")
		autores   = flag.Int("autoresume", 0, "with -engine mp: worker-loss recovery budget (respawn + validated fast-forward)")
		mpWorker  = flag.Bool("mp-worker", false, "internal: run as a multi-process worker over stdin/stdout (spawned by -engine mp)")
		alpha     = flag.Float64("alpha", 2.0, "power-law degree exponent (powerlaw)")
		seed      = flag.Int64("seed", 1, "workload and tie-break seed")
		random    = flag.Bool("random-ties", false, "randomized tie-breaking")
		paths     = flag.Bool("paths", false, "print token traversals")
		loadFile  = flag.String("load", "", "read the instance from a JSON file instead of generating one")
		saveFile  = flag.String("save", "", "write the generated instance to a JSON file")
		solFile   = flag.String("save-solution", "", "write the verified solution to a JSON file")
		trace     = flag.Bool("trace", false, "print the per-round convergence series (moves per round)")
		record    = flag.String("record", "", "record the run into this directory (instance.json, snapshot.json, run.json); requires -engine sharded")
		replay    = flag.String("replay", "", "replay a recorded run directory and verify bit-identical results; exits non-zero with the first divergence")
		snapEvery = flag.Int("snapshot-every", 32, "with -record: snapshot every k completed rounds")
		version   = cliutil.VersionFlag()
	)
	var fail failFlags
	flag.Var(&fail, "fail", "arm a failpoint, SITE:KIND:key=val,... (repeatable); e.g. mp/worker:crash:at=8")
	flag.Parse()
	cliutil.HandleVersionFlag(version)

	if *mpWorker {
		// Spawned by an -engine mp coordinator: speak the transport
		// protocol over stdin/stdout and exit. Errors went to the
		// coordinator as a FrameError; stderr is for humans.
		if err := mp.WorkerMain(os.Stdin, os.Stdout); err != nil {
			log.Fatalf("mp worker: %v", err)
		}
		return
	}

	if *replay != "" {
		tie := tokendrop.TieFirstPort
		if *random {
			tie = tokendrop.TieRandom
		}
		replayRun(*replay, *solver, tie, *seed, *shards)
		return
	}
	if *record != "" {
		if *engine != "sharded" {
			log.Fatal("-record requires -engine sharded (snapshots capture the flat engine's state)")
		}
		if *snapEvery <= 0 {
			log.Fatal("-snapshot-every must be positive")
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	var inst *tokendrop.GameInstance
	var flat *tokendrop.FlatGame // CSR-native workloads build this first
	if *loadFile != "" {
		f, err := os.Open(*loadFile)
		if err != nil {
			log.Fatal(err)
		}
		inst, err = tokendrop.LoadGame(f)
		f.Close()
		if err != nil {
			log.Fatalf("loading %s: %v", *loadFile, err)
		}
		*workload = "(loaded)"
	}
	switch *workload {
	case "(loaded)":
		// already have the instance
	case "chain":
		inst = tokendrop.ChainGame(*levels)
	case "figure2":
		inst = tokendrop.Figure2Game()
	case "layered":
		inst = tokendrop.RandomLayeredGame(tokendrop.LayeredConfig{
			Levels: *levels, Width: *width, ParentDeg: *deg,
			TokenProb: *tokens, FreeBottom: true,
		}, rng)
	case "topheavy":
		// A tokenless layered graph whose top layer is then fully occupied.
		inst = tokendrop.RandomLayeredGame(tokendrop.LayeredConfig{
			Levels: *levels, Width: *width, ParentDeg: *deg, TokenProb: 0,
		}, rng)
		g := inst.Graph()
		level := inst.Levels()
		token := make([]bool, g.N())
		for v := 0; v < g.N(); v++ {
			token[v] = level[v] == *levels
		}
		var err error
		inst, err = tokendrop.NewGame(g, level, token)
		if err != nil {
			log.Fatal(err)
		}
	case "bipartite":
		g := tokendrop.RandomBipartite(*width, *width, *deg, rng)
		inst = tokendrop.BipartiteGame(g, *width)
	case "grid":
		// levels+1 rows of width columns, top quarter of the rows occupied.
		rows := *levels + 1
		tokenRows := (rows + 3) / 4
		if tokenRows >= rows {
			tokenRows = rows - 1
		}
		flat = tokendrop.LayeredGridGame(rows, *width, tokenRows)
	case "powerlaw":
		flat = tokendrop.PowerLawBipartiteGame(*width, *width, *alpha, *deg, rng)
	default:
		log.Fatalf("unknown workload %q", *workload)
	}
	if flat != nil {
		// CSR-native workload: materialize the pointer instance too (the
		// sequential solvers, the object engine, and verification use it).
		inst = flat.Instance()
	}

	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := tokendrop.SaveGame(f, inst); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("instance saved to %s\n", *saveFile)
	}

	fmt.Printf("instance: n=%d m=%d height=%d Δ=%d tokens=%d\n",
		inst.N(), inst.Graph().M(), inst.Height(), inst.MaxDegree(), inst.NumTokens())

	if *engine != "local" && *engine != "sharded" && *engine != "mp" {
		log.Fatalf("unknown engine %q (want local, sharded, or mp)", *engine)
	}
	if (*engine == "sharded" || *engine == "mp") && *solver != "proposal" && *solver != "threelevel" {
		log.Fatalf("solver %q is centralized; -engine %s applies only to proposal | threelevel", *solver, *engine)
	}
	if *engine == "mp" && *record != "" {
		log.Fatal("-record requires -engine sharded (the recorder captures in-process snapshots)")
	}
	tie := tokendrop.TieFirstPort
	if *random {
		tie = tokendrop.TieRandom
	}
	opt := tokendrop.GameOptions{Tie: tie, Seed: *seed, MaxRounds: 1 << 20}

	var sol *tokendrop.GameSolution
	var stats tokendrop.GameStats
	var err error
	if *engine == "mp" {
		// Multi-process sharded engine: this process coordinates; each
		// worker is a re-execution of this binary in -mp-worker mode,
		// speaking the framed transport protocol over its pipes. The
		// result is bit-identical to -engine sharded (and, under
		// first-port ties, to -engine local).
		if flat == nil {
			flat = tokendrop.NewFlatGame(inst)
		}
		var reg *fault.Registry
		if len(fail) > 0 {
			reg = fault.NewRegistry(*seed)
			for _, spec := range fail {
				site, sched, perr := fault.ParseSpec(spec)
				if perr != nil {
					log.Fatalf("-fail %q: %v", spec, perr)
				}
				reg.Arm(site, sched)
			}
		}
		exe, eerr := os.Executable()
		if eerr != nil {
			log.Fatal(eerr)
		}
		mopt := mp.Options{
			Procs:         *procs,
			ShardsPerProc: *sppFlag,
			Solver:        *solver,
			Tie:           tie,
			Seed:          *seed,
			MaxRounds:     1 << 20,
			AutoResume:    *autores,
			Fault:         reg,
			Command:       func(int) *exec.Cmd { return exec.Command(exe, "-mp-worker") },
		}
		if *autores > 0 {
			mopt.SnapshotEvery = *snapEvery
		}
		res, mstats, merr := mp.Solve(flat, mopt)
		if merr != nil {
			log.Fatal(merr)
		}
		sol = res.Solution(inst)
		stats = res.Stats
		fmt.Printf("mp: procs=%d shards/proc=%d frames/round=%d bytes/round=%d restarts=%d\n",
			*procs, *sppFlag,
			mstats.WireFrames/int64(mstats.RoundsExecuted),
			mstats.WireBytes/int64(mstats.RoundsExecuted),
			mstats.Restarts)
	} else if *engine == "sharded" && (*solver == "proposal" || *solver == "threelevel") {
		if flat == nil {
			flat = tokendrop.NewFlatGame(inst)
		}
		sopt := tokendrop.ShardedGameOptions{Tie: tie, Seed: *seed, MaxRounds: 1 << 20, Shards: *shards}
		var rec *recorder
		if *record != "" {
			rec = &recorder{dir: *record, flat: flat, meta: tokendrop.RunMetaJSON{
				Workload: *workload, GenSeed: *seed, Tie: tokendrop.TieName(tie), Seed: *seed, Shards: *shards,
			}}
			rec.start(inst)
			sopt.SnapshotEvery = *snapEvery
			sopt.SnapshotInto = &rec.buf
			sopt.OnSnapshot = rec.hook
		}
		var res *tokendrop.FlatGameResult
		if *solver == "proposal" {
			res, err = tokendrop.SolveGameSharded(flat, sopt)
		} else {
			res, err = tokendrop.SolveGame3LevelSharded(flat, sopt)
		}
		if err != nil {
			log.Fatal(err)
		}
		sol = res.Solution(inst)
		stats = res.Stats
		if rec != nil {
			// run.json only ever holds a verified solution.
			if err := tokendrop.VerifyGame(sol); err != nil {
				log.Fatalf("solution failed verification: %v", err)
			}
			rec.finish(sol)
		}
	} else {
		switch *solver {
		case "proposal":
			sol, stats, err = tokendrop.SolveGame(inst, opt)
		case "threelevel":
			sol, stats, err = tokendrop.SolveGame3Level(inst, opt)
		case "sequential":
			sol = tokendrop.SolveGameSequential(inst, tokendrop.PolicyFirst, rng)
		case "parallel":
			sol = tokendrop.SolveGameSequential(inst, tokendrop.PolicyRandom, rng)
		default:
			log.Fatalf("unknown solver %q", *solver)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := tokendrop.VerifyGame(sol); err != nil {
		log.Fatalf("solution failed verification: %v", err)
	}
	if *solFile != "" {
		f, err := os.Create(*solFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := tokendrop.SaveSolution(f, sol); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("solution saved to %s\n", *solFile)
	}

	fmt.Printf("solved: moves=%d", len(sol.Moves))
	if stats.Rounds > 0 {
		fmt.Printf(" rounds=%d messages=%d maxActiveUnoccupied=%d (Lemma 4.4 cap: Δ²=%d)",
			stats.Rounds, stats.Messages, stats.MaxActiveUnoccupied, inst.MaxDegree()*inst.MaxDegree())
	}
	fmt.Println("\nverification: all three rules hold (edge-disjoint, unique destinations, maximal)")

	if *paths {
		for _, tr := range sol.Traversals() {
			fmt.Printf("  token@%d:", tr.Origin())
			for _, v := range tr.Path {
				fmt.Printf(" %d(L%d)", v, inst.Level(v))
			}
			tail := sol.Tail(tr)
			if len(tail) > 1 {
				fmt.Printf("   tail:%v", tail)
			}
			fmt.Println()
		}
	}

	if *trace {
		// Convergence series: token moves per communication round, a
		// figure-like view of how quickly the game gets stuck.
		perRound := map[int]int{}
		last := 0
		for _, m := range sol.Moves {
			perRound[m.Round]++
			if m.Round > last {
				last = m.Round
			}
		}
		fmt.Println("convergence (round: moves, cumulative):")
		cum := 0
		for r := 0; r <= last; r++ {
			if perRound[r] == 0 && r > 0 {
				continue
			}
			cum += perRound[r]
			bar := ""
			for i := 0; i < perRound[r]; i++ {
				bar += "#"
			}
			fmt.Printf("  %4d: %3d %4d  %s\n", r, perRound[r], cum, bar)
		}
	}
}
