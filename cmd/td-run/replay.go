package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tokendrop"
)

// Record/replay support for td-run. A recording directory holds three
// files, each written crash-consistently (temp file + rename for the
// snapshot, whole-file writes for the others):
//
//	instance.json  the exact instance the run solved
//	snapshot.json  the latest mid-solve snapshot (overwritten in place)
//	run.json       the final verified solution
//
// Replay reloads instance.json, re-runs the solve with the flags echoed
// in the snapshot provenance, and diffs the outcome against run.json —
// and when snapshot.json exists it additionally resumes from it,
// proving the crash-recovery path yields the bit-identical solution.

const (
	instanceFile = "instance.json"
	snapshotFile = "snapshot.json"
	runFile      = "run.json"
)

// recorder wires the snapshot hooks of a recorded run.
type recorder struct {
	dir  string
	flat *tokendrop.FlatGame
	meta tokendrop.RunMetaJSON
	buf  tokendrop.GameSnapshot
}

// start creates the directory and writes instance.json.
func (rec *recorder) start(inst *tokendrop.GameInstance) {
	if err := os.MkdirAll(rec.dir, 0o755); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(filepath.Join(rec.dir, instanceFile))
	if err != nil {
		log.Fatal(err)
	}
	if err := tokendrop.SaveGame(f, inst); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// hook persists one snapshot atomically over the previous one.
func (rec *recorder) hook(snap *tokendrop.GameSnapshot) error {
	return tokendrop.SaveSnapshotFile(filepath.Join(rec.dir, snapshotFile),
		tokendrop.GameSnapshotJSON(snap, rec.flat, rec.meta))
}

// finish writes run.json.
func (rec *recorder) finish(sol *tokendrop.GameSolution) {
	f, err := os.Create(filepath.Join(rec.dir, runFile))
	if err != nil {
		log.Fatal(err)
	}
	if err := tokendrop.SaveSolution(f, sol); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded run in %s\n", rec.dir)
}

// solveSharded runs one sharded solve of flat and returns the verified
// solution bound to inst.
func solveSharded(flat *tokendrop.FlatGame, inst *tokendrop.GameInstance, solver string,
	opt tokendrop.ShardedGameOptions) *tokendrop.GameSolution {
	var res *tokendrop.FlatGameResult
	var err error
	if solver == "threelevel" {
		res, err = tokendrop.SolveGame3LevelSharded(flat, opt)
	} else {
		res, err = tokendrop.SolveGameSharded(flat, opt)
	}
	if err != nil {
		log.Fatal(err)
	}
	sol := res.Solution(inst)
	if err := tokendrop.VerifyGame(sol); err != nil {
		log.Fatalf("replayed solution failed verification: %v", err)
	}
	return sol
}

// replayRun verifies a recording: a full re-run must match run.json
// bit-for-bit, and if snapshot.json exists, a resumed run must too. Any
// mismatch exits non-zero with the first divergence.
func replayRun(dir, solver string, tie tokendrop.TieBreak, seed int64, shards int) {
	f, err := os.Open(filepath.Join(dir, instanceFile))
	if err != nil {
		log.Fatal(err)
	}
	inst, err := tokendrop.LoadGame(f)
	f.Close()
	if err != nil {
		log.Fatalf("loading %s: %v", filepath.Join(dir, instanceFile), err)
	}
	f, err = os.Open(filepath.Join(dir, runFile))
	if err != nil {
		log.Fatal(err)
	}
	recorded, err := tokendrop.LoadSolution(f)
	f.Close()
	if err != nil {
		log.Fatalf("loading %s: %v", filepath.Join(dir, runFile), err)
	}

	flat := tokendrop.NewFlatGame(inst)
	opt := tokendrop.ShardedGameOptions{Tie: tie, Seed: seed, MaxRounds: 1 << 20, Shards: shards}

	// The recorded snapshot, when present, carries the run provenance —
	// refuse a replay under different solve parameters before diffing.
	sj, snapErr := tokendrop.ReadSnapshotFile(filepath.Join(dir, snapshotFile))
	if snapErr != nil && !errors.Is(snapErr, os.ErrNotExist) {
		log.Fatal(snapErr)
	}
	if sj != nil {
		if sj.Meta.Tie != tokendrop.TieName(tie) {
			log.Fatalf("recording used -random-ties=%v (tie %q); pass the same flags to replay",
				sj.Meta.Tie == "random", sj.Meta.Tie)
		}
		if sj.Meta.Seed != seed {
			log.Fatalf("recording used -seed %d, replay ran with -seed %d", sj.Meta.Seed, seed)
		}
	}

	fmt.Printf("replaying %s: n=%d m=%d tokens=%d\n", dir, inst.N(), inst.Graph().M(), inst.NumTokens())
	replayed := solveSharded(flat, inst, solver, opt)
	if d := tokendrop.DiffGameSolutions(recorded, replayed); d != nil {
		log.Fatalf("full replay: %v", d)
	}
	fmt.Printf("full replay matches: moves=%d rounds=%d\n", len(replayed.Moves), replayed.Rounds)

	if sj != nil {
		snap, err := tokendrop.BindGameSnapshot(sj, flat)
		if err != nil {
			log.Fatal(err)
		}
		ropt := opt
		ropt.ResumeFrom = snap
		resumed := solveSharded(flat, inst, solver, ropt)
		if d := tokendrop.DiffGameSolutions(recorded, resumed); d != nil {
			log.Fatalf("resume from snapshot (round %d): %v", snap.Round, d)
		}
		fmt.Printf("resume from snapshot at round %d matches bit-for-bit\n", snap.Round)
	} else {
		fmt.Println("no snapshot.json in the recording (run ended before the first snapshot interval)")
	}
	fmt.Println("replay verified")
}
