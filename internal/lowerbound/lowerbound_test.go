package lowerbound

import (
	"math/rand"
	"testing"

	"tokendrop/internal/baseline"
	"tokendrop/internal/graph"
	"tokendrop/internal/orient"
)

func TestCheckLemma61OnSolverOutput(t *testing.T) {
	for _, d := range []int{3, 4} {
		tree, _ := graph.PerfectDAry(d, 4)
		res, err := orient.Solve(tree, orient.Options{Seed: int64(d), CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckLemma61(res.Orientation); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckLemma61CatchesViolation(t *testing.T) {
	tree, _ := graph.PerfectDAry(3, 2)
	o := graph.NewOrientation(tree)
	// Point everything at the root: indegree 3 > h(root)+1 = 3? h(root)=2,
	// cap 3 — need a worse vertex: point all leaf edges at an internal
	// vertex (h=1, cap 2, indegree 2 from its leaves + 1 from root = 3).
	for id := range tree.Edges() {
		e := tree.Edge(id)
		// orient toward the lower-id endpoint (closer to the root), except
		// leaf edges toward the internal vertex... simpler: all toward V.
		o.Orient(id, e.U)
	}
	// All edges point at the parent side; the root (vertex 0) receives
	// its 3 child edges: indegree 3 ≤ h(0)+1 = 3 — not a violation. Build
	// one explicitly instead: all edges of a star at the hub.
	star := graph.Star(4)
	so := graph.NewOrientation(star)
	for id := range star.Edges() {
		so.Orient(id, 0)
	}
	if err := CheckLemma61(so); err == nil {
		t.Fatal("hub with indegree 4 > h+1 = 2 not caught")
	}
}

func TestCheckLemma62(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{3, 4, 6} {
		g := graph.RandomRegular(4*d, d, rng)
		o := baseline.OrientAll(g, baseline.InitRandom, rng)
		v, err := CheckLemma62(o, d)
		if err != nil {
			t.Fatal(err)
		}
		if o.Load(v) < (d+1)/2 {
			t.Fatal("returned vertex does not witness the lemma")
		}
		// Also after stabilizing: the lemma holds for ANY orientation.
		res := baseline.SequentialGreedy(o, baseline.FlipFirst, nil)
		if _, err := CheckLemma62(res.Orientation, d); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckLemma62RejectsIrregular(t *testing.T) {
	o := graph.NewOrientation(graph.Star(3))
	if _, err := CheckLemma62(o, 3); err == nil {
		t.Fatal("irregular graph accepted")
	}
}

func TestViewsDistinguishDegrees(t *testing.T) {
	g := graph.Path(5)
	views := Views(g, 2)
	if views[0] == views[2] {
		t.Fatal("endpoint and middle should differ at radius 2")
	}
	if views[0] != views[4] {
		t.Fatal("two endpoints should agree by symmetry")
	}
	if views[1] != views[3] {
		t.Fatal("symmetric interior vertices should agree")
	}
}

func TestViewsOnVertexTransitiveGraph(t *testing.T) {
	g := graph.Torus2D(5, 5)
	views := Views(g, 3)
	for v := 1; v < g.N(); v++ {
		if views[v] != views[0] {
			t.Fatal("torus is vertex-transitive; all views must agree")
		}
	}
}

func TestRunIndistinguishability(t *testing.T) {
	// Δ = 8, radius 1: need girth ≥ 4, and K_{8,8} is 8-regular with
	// girth exactly 4.
	reg := graph.CompleteBipartite(8, 8)
	rep, err := RunIndistinguishability(reg, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BallsMatch {
		t.Fatal("balls should be isomorphic")
	}
	if !rep.ViewsMatch {
		t.Fatal("simulator views should agree")
	}
	if !rep.Contradicts() {
		t.Fatalf("no contradiction: force %d vs cap %d", rep.RegularForce, rep.TreeCap)
	}
}

func TestRunIndistinguishabilityRadius2(t *testing.T) {
	// Δ = 11 allows radius 2 (hTarget 4); tree-shaped radius-2 balls need
	// girth ≥ 6, which is vanishingly rare in small random regular graphs
	// — skip when sampling fails rather than spin.
	rng := rand.New(rand.NewSource(11))
	reg, err := graph.RandomRegularGirth(150, 11, 6, 300, rng)
	if err != nil {
		t.Skipf("no 11-regular girth-6 sample at this size: %v", err)
	}
	rep, err := RunIndistinguishability(reg, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Contradicts() {
		t.Fatalf("no contradiction at radius 2: %+v", rep)
	}
}

func TestRunIndistinguishabilityRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	reg := graph.RandomRegular(12, 3, rng)
	if _, err := RunIndistinguishability(reg, 3, 1); err == nil {
		t.Fatal("Δ=3 should be rejected (no interior height exists)")
	}
	reg8 := graph.RandomRegular(30, 8, rng)
	if _, err := RunIndistinguishability(reg8, 8, 5); err == nil {
		t.Fatal("radius above ⌈Δ/2⌉-3 accepted")
	}
	if _, err := RunIndistinguishability(reg8, 7, 1); err == nil {
		t.Fatal("degree mismatch accepted")
	}
}
