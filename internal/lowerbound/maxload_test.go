package lowerbound

import (
	"math/rand"
	"testing"
)

func TestMaxLoadInstanceShape(t *testing.T) {
	for _, tc := range []struct{ ns, d int }{{10, 3}, {12, 4}, {20, 5}, {30, 8}} {
		rng := rand.New(rand.NewSource(int64(tc.ns*100 + tc.d)))
		fb := MaxLoadInstance(tc.ns, tc.d, rng)
		if err := fb.C.Validate(); err != nil {
			t.Fatalf("ns=%d d=%d: %v", tc.ns, tc.d, err)
		}
		wantCustomers := tc.ns * tc.d / 2
		if fb.NumCustomers() != wantCustomers || fb.NumServers() != tc.ns {
			t.Fatalf("ns=%d d=%d: got %d customers / %d servers, want %d / %d",
				tc.ns, tc.d, fb.NumCustomers(), fb.NumServers(), wantCustomers, tc.ns)
		}
		for c := 0; c < fb.NumCustomers(); c++ {
			if fb.C.Degree(c) != 2 {
				t.Fatalf("customer %d has degree %d, want 2", c, fb.C.Degree(c))
			}
		}
		for s := 0; s < fb.NumServers(); s++ {
			if fb.C.Degree(fb.NumCustomers()+s) != tc.d {
				t.Fatalf("server %d has degree %d, want %d", s, fb.C.Degree(fb.NumCustomers()+s), tc.d)
			}
		}
	}
}

// TestMaxLoadBoundHolds drives every complete assignment strategy we can
// improvise (first-adjacent, random-adjacent) through CheckMaxLoadBound:
// the Lemma 6.2 floor must hold for all of them.
func TestMaxLoadBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		d := 3 + trial%5
		ns := 20 + 2*(trial%3)
		if ns*d%2 != 0 {
			ns++
		}
		fb := MaxLoadInstance(ns, d, rng)
		nc := fb.NumCustomers()

		first := make([]int32, nc)
		random := make([]int32, nc)
		for c := 0; c < nc; c++ {
			lo, hi := fb.C.ArcRange(c)
			first[c] = fb.C.Col[lo] - int32(nc)
			random[c] = fb.C.Col[lo+rng.Intn(hi-lo)] - int32(nc)
		}
		for name, serverOf := range map[string][]int32{"first": first, "random": random} {
			max, err := CheckMaxLoadBound(fb, serverOf, d)
			if err != nil {
				t.Fatalf("trial %d (%s): %v", trial, name, err)
			}
			if max > d {
				t.Fatalf("trial %d (%s): max load %d exceeds degree ceiling %d", trial, name, max, d)
			}
		}
	}
}

func TestCheckMaxLoadBoundRejectsInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fb := MaxLoadInstance(10, 3, rng)
	nc := fb.NumCustomers()

	if _, err := CheckMaxLoadBound(fb, make([]int32, nc-1), 3); err == nil {
		t.Fatal("short assignment not rejected")
	}
	bad := make([]int32, nc)
	for c := range bad {
		lo, _ := fb.C.ArcRange(c)
		bad[c] = fb.C.Col[lo] - int32(nc)
	}
	bad[0] = int32(fb.NumServers())
	if _, err := CheckMaxLoadBound(fb, bad, 3); err == nil {
		t.Fatal("out-of-range server not rejected")
	}
	// A non-adjacent (but in-range) server: customer 0's two adjacent
	// servers are known; pick a third.
	lo, hi := fb.C.ArcRange(0)
	adj := map[int32]bool{}
	for i := lo; i < hi; i++ {
		adj[fb.C.Col[i]-int32(nc)] = true
	}
	for s := int32(0); int(s) < fb.NumServers(); s++ {
		if !adj[s] {
			bad[0] = s
			break
		}
	}
	if _, err := CheckMaxLoadBound(fb, bad, 3); err == nil {
		t.Fatal("non-adjacent server not rejected")
	}
}
