// Package lowerbound implements the constructions and checks behind the
// paper's Ω(Δ) lower bound for stable orientations (Section 6):
//
//   - Lemma 6.1: in any stable orientation of a perfect d-ary tree,
//     indegree(v) ≤ h(v) + 1 where h is the distance to the closest leaf;
//   - Lemma 6.2: any orientation of a d-regular graph has a vertex of
//     indegree at least ⌈d/2⌉;
//   - Theorem 6.3: a t-round algorithm with t ≤ Δ/2 − 3 cannot tell a
//     vertex of a Δ-regular girth-(Δ+1) graph from an interior vertex of a
//     perfect Δ-ary tree, yet stability forces contradictory indegrees at
//     the two — so no such algorithm exists.
//
// The package verifies the two lemmas on concrete algorithm outputs and
// demonstrates the indistinguishability premise on the LOCAL simulator
// with an anonymous view-collection machine: after t rounds a node's
// state is exactly its t-ball, so two nodes with isomorphic balls emit
// identical outputs.
package lowerbound

import (
	"fmt"
	"sort"
	"strings"

	"tokendrop/internal/graph"
	"tokendrop/internal/local"
)

// CheckLemma61 verifies indegree(v) ≤ h(v) + 1 for every vertex of a tree
// under the given complete orientation. The input must be a tree; the
// orientation is anything an algorithm produced (the lemma holds for
// stable orientations).
func CheckLemma61(o *graph.Orientation) error {
	g := o.Graph()
	h := graph.Height(g)
	for v := 0; v < g.N(); v++ {
		if o.Load(v) > h[v]+1 {
			return fmt.Errorf("lowerbound: Lemma 6.1 violated at %d: indegree %d > h+1 = %d",
				v, o.Load(v), h[v]+1)
		}
	}
	return nil
}

// CheckLemma62 verifies that some vertex of a d-regular graph has
// indegree at least ⌈d/2⌉ under the given complete orientation, returning
// that vertex.
func CheckLemma62(o *graph.Orientation, d int) (int, error) {
	g := o.Graph()
	if !g.IsRegular(d) {
		return -1, fmt.Errorf("lowerbound: graph is not %d-regular", d)
	}
	want := (d + 1) / 2
	for v := 0; v < g.N(); v++ {
		if o.Load(v) >= want {
			return v, nil
		}
	}
	return -1, fmt.Errorf("lowerbound: no vertex with indegree >= %d — Lemma 6.2 violated (impossible for a complete orientation)", want)
}

// viewMachine collects the anonymized t-radius view: after round r its
// state encodes the depth-r unfolding of the port-numbered neighborhood,
// with port labels erased by sorting (so the encoding is invariant under
// graph isomorphism, which is what a deterministic ID-oblivious LOCAL
// algorithm may depend on).
type viewMachine struct {
	rounds int
	state  string
}

func (m *viewMachine) Init(info local.NodeInfo) { m.state = "()" }

func (m *viewMachine) Step(round int, in []local.Payload, out []local.Payload) bool {
	var parts []string
	for _, raw := range in {
		if raw != nil {
			parts = append(parts, raw.(string))
		}
	}
	sort.Strings(parts)
	if round > 1 {
		m.state = "(" + strings.Join(parts, "") + ")"
	}
	if round > m.rounds {
		return true
	}
	for p := range out {
		out[p] = m.state
	}
	return false
}

// Views runs the anonymous view-collection machine for t rounds on g and
// returns each vertex's canonical t-view encoding. Two vertices receive
// equal encodings iff their t-radius views unfold identically — for
// radius below half the girth this coincides with rooted-ball isomorphism.
func Views(g *graph.Graph, t int) []string {
	machines := make([]*viewMachine, g.N())
	nw := local.NewNetwork(g, func(v int) local.Machine {
		machines[v] = &viewMachine{rounds: t}
		return machines[v]
	})
	if _, err := nw.Run(local.Options{MaxRounds: t + 2}); err != nil {
		panic(err) // the machine always halts after t+1 rounds
	}
	out := make([]string, g.N())
	for v, m := range machines {
		out[v] = m.state
	}
	return out
}

// Indistinguishability is the outcome of the Theorem 6.3 experiment.
type Indistinguishability struct {
	Delta        int
	Radius       int  // t, the hypothetical running time
	RegularN     int  // size of the Δ-regular graph used
	Girth        int  // its measured girth (-1: acyclic, impossible here)
	TreeVertex   int  // the interior tree vertex v′ with h(v′) = ⌈Δ/2⌉ − 2
	BallsMatch   bool // radius-t balls isomorphic (structure check)
	ViewsMatch   bool // t-round simulator outputs equal (behavioural check)
	RegularForce int  // ⌈Δ/2⌉ — the indegree Lemma 6.2 forces in G1
	TreeCap      int  // h(v′) + 1 — the indegree Lemma 6.1 allows in G2
}

// RunIndistinguishability instantiates the Theorem 6.3 construction for
// the given Δ-regular graph (which must have girth > 2·radius, so that
// balls are trees) and a perfect Δ-ary tree deep enough to contain an
// interior vertex at height ⌈Δ/2⌉ − 2 whose radius-t ball avoids both the
// root and the leaves. The returned report carries the contradiction pair
// (RegularForce > TreeCap ⟺ the two outputs cannot both be stable).
func RunIndistinguishability(reg *graph.Graph, delta, radius int) (*Indistinguishability, error) {
	if !reg.IsRegular(delta) {
		return nil, fmt.Errorf("lowerbound: graph is not %d-regular", delta)
	}
	girth := reg.Girth()
	if girth >= 0 && girth < 2*radius+2 {
		// A cycle of length ≤ 2t+1 lies entirely inside some radius-t
		// ball, so tree-shaped views need girth ≥ 2t+2.
		return nil, fmt.Errorf("lowerbound: girth %d too small for radius %d (need ≥ %d)", girth, radius, 2*radius+2)
	}
	// Tree with an interior vertex v′ at height ⌈Δ/2⌉ − 2 (as in the
	// Theorem 6.3 proof) whose ball of the given radius stays interior.
	hTarget := (delta+1)/2 - 2
	if hTarget < 0 {
		return nil, fmt.Errorf("lowerbound: Δ = %d too small for the construction", delta)
	}
	if radius > hTarget-1 {
		return nil, fmt.Errorf("lowerbound: radius %d would let v' see the leaves (need radius ≤ ⌈Δ/2⌉-3 = %d, as in t ≤ Δ/2-3)",
			radius, hTarget-1)
	}
	// The proof's tree has depth Δ+1 and places v′ at height ⌈Δ/2⌉ − 2 —
	// exponentially many vertices. The radius-t ball of any vertex that is
	// at distance > t from both the root and the leaves is the same
	// complete Δ-ary ball, so a depth-2(t+1) tree with v′ at depth t+1
	// exhibits the identical view; the indegree cap h(v′)+1 stays the
	// analytic value from the full-size construction.
	tree, depths := graph.PerfectDAry(delta, 2*(radius+1))
	pick := -1
	for v := range depths {
		if depths[v] == radius+1 {
			pick = v
			break
		}
	}
	if pick < 0 {
		return nil, fmt.Errorf("lowerbound: no interior vertex at depth %d", radius+1)
	}

	iso, err := graph.BallsIsomorphic(reg, 0, tree, pick, radius)
	if err != nil {
		return nil, err
	}

	regViews := Views(reg, radius)
	treeViews := Views(tree, radius)
	report := &Indistinguishability{
		Delta:        delta,
		Radius:       radius,
		RegularN:     reg.N(),
		Girth:        girth,
		TreeVertex:   pick,
		BallsMatch:   iso,
		ViewsMatch:   regViews[0] == treeViews[pick],
		RegularForce: (delta + 1) / 2,
		TreeCap:      hTarget + 1,
	}
	return report, nil
}

// Contradicts reports whether the experiment exhibits the Theorem 6.3
// contradiction: indistinguishable views with incompatible indegree
// requirements.
func (r *Indistinguishability) Contradicts() bool {
	return r.BallsMatch && r.ViewsMatch && r.RegularForce > r.TreeCap
}
