package lowerbound

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/graph"
)

// This file turns Lemma 6.2 into an adversarial assignment workload: take
// a d-regular graph on the servers and give every edge a degree-2
// customer adjacent to exactly the edge's endpoints. A complete
// assignment of the customers then IS an orientation of the server graph
// (each customer/edge points at its chosen server/head), so by Lemma 6.2
// every assigner — however clever, however long it runs — leaves some
// server with load at least ⌈d/2⌉. The family pins the arena's max-load
// axis: a strategy whose max load stays near MinMaxLoad(d) is doing
// essentially optimal work here, while load-oblivious strategies can be
// pushed all the way to d.

// MinMaxLoad returns ⌈d/2⌉, the Lemma 6.2 floor on the maximum server
// load of any complete assignment of a MaxLoadInstance built from a
// d-regular server graph.
func MinMaxLoad(d int) int { return (d + 1) / 2 }

// MaxLoadInstance builds the adversarial bipartite workload from a random
// d-regular server graph on ns vertices: one degree-2 customer per server
// edge, customers numbered before servers. ns*d must be even and 2d < ns
// (the CSRRandomRegular preconditions).
func MaxLoadInstance(ns, d int, rng *rand.Rand) *graph.CSRBipartite {
	reg := graph.CSRRandomRegular(ns, d, rng)
	return maxLoadFromRegular(reg)
}

// maxLoadFromRegular lifts an arbitrary server graph into the edge-customer
// bipartite form. Exposed through MaxLoadInstance; split out so tests can
// drive fixed topologies through the same lift.
func maxLoadFromRegular(reg *graph.CSR) *graph.CSRBipartite {
	nc := reg.M()
	b := graph.NewCSRBuilder(nc+reg.N(), 2*nc)
	c := 0
	for u := 0; u < reg.N(); u++ {
		lo, hi := reg.ArcRange(u)
		for i := lo; i < hi; i++ {
			v := int(reg.Col[i])
			if v <= u {
				continue // each undirected edge once
			}
			b.AddEdge(c, nc+u)
			b.AddEdge(c, nc+v)
			c++
		}
	}
	if c != nc {
		panic(fmt.Sprintf("lowerbound: lifted %d customers from %d edges", c, nc))
	}
	return graph.MustCSRBipartite(b.Build(), nc)
}

// CheckMaxLoadBound verifies the Lemma 6.2 floor on a complete assignment
// of a MaxLoadInstance: serverOf holds a server index per customer, d is
// the regular degree the instance was built with. It returns the observed
// maximum load, and an error if the assignment beats the floor — which
// would disprove the lemma — or is structurally invalid.
func CheckMaxLoadBound(fb *graph.CSRBipartite, serverOf []int32, d int) (int, error) {
	nc := fb.NumCustomers()
	if len(serverOf) != nc {
		return 0, fmt.Errorf("lowerbound: %d assignments for %d customers", len(serverOf), nc)
	}
	load := make([]int, fb.NumServers())
	for c, s := range serverOf {
		if s < 0 || int(s) >= fb.NumServers() {
			return 0, fmt.Errorf("lowerbound: customer %d assigned out of range (%d)", c, s)
		}
		lo, hi := fb.C.ArcRange(c)
		ok := false
		for i := lo; i < hi; i++ {
			if int(fb.C.Col[i]) == nc+int(s) {
				ok = true
				break
			}
		}
		if !ok {
			return 0, fmt.Errorf("lowerbound: customer %d assigned to non-adjacent server %d", c, s)
		}
		load[s]++
	}
	max := 0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	if max < MinMaxLoad(d) {
		return max, fmt.Errorf("lowerbound: max load %d beats the Lemma 6.2 floor %d — impossible", max, MinMaxLoad(d))
	}
	return max, nil
}
