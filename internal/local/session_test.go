package local

import (
	"testing"

	"tokendrop/internal/graph"
)

// TestSessionReuseMatchesRunSharded drives one session through a sequence
// of graphs of varying sizes (growing and shrinking) and checks every run
// against a fresh RunSharded execution of the same program.
func TestSessionReuseMatchesRunSharded(t *testing.T) {
	sess := NewSession(3)
	defer sess.Close()
	for _, n := range []int{5, 40, 12, 200, 7, 64} {
		csr := graph.NewCSRFromGraph(graph.Cycle(n))
		p1 := newFlatCountdown(csr, n%4+2)
		s1, err := sess.Run(csr, p1, ShardedOptions{})
		if err != nil {
			t.Fatalf("n=%d: session run: %v", n, err)
		}
		p2 := newFlatCountdown(csr, n%4+2)
		s2, err := RunSharded(csr, p2, ShardedOptions{Shards: 3})
		if err != nil {
			t.Fatalf("n=%d: fresh run: %v", n, err)
		}
		if s1.Rounds != s2.Rounds || s1.Halted != s2.Halted {
			t.Fatalf("n=%d: session stats %+v != fresh stats %+v", n, s1, s2)
		}
		if p1.total() != p2.total() {
			t.Fatalf("n=%d: session delivered %d, fresh delivered %d", n, p1.total(), p2.total())
		}
	}
}

// TestSessionMoreShardsThanVertices checks that a session whose worker
// count exceeds the vertex count (empty trailing shards) still runs
// correctly — the phase loops hand tiny subgames to wide sessions.
func TestSessionMoreShardsThanVertices(t *testing.T) {
	sess := NewSession(8)
	defer sess.Close()
	csr := graph.NewCSRFromGraph(graph.Cycle(3))
	p := newFlatCountdown(csr, 2)
	stats, err := sess.Run(csr, p, ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 2 || stats.Halted != 3 {
		t.Fatalf("stats = %+v, want 2 rounds, 3 halted", stats)
	}
}

// TestSessionEmptyGraph mirrors the RunSharded contract on n = 0.
func TestSessionEmptyGraph(t *testing.T) {
	sess := NewSession(2)
	defer sess.Close()
	b := graph.NewCSRBuilder(0, 0)
	csr := b.Build()
	p := newFlatCountdown(csr, 1)
	stats, err := sess.Run(csr, p, ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 || stats.Shards != 0 {
		t.Fatalf("stats = %+v, want zero value", stats)
	}
}

// TestSessionClosedRunErrors checks Run on a closed session fails loudly
// instead of deadlocking.
func TestSessionClosedRunErrors(t *testing.T) {
	sess := NewSession(2)
	sess.Close()
	sess.Close() // idempotent
	csr := graph.NewCSRFromGraph(graph.Cycle(4))
	if _, err := sess.Run(csr, newFlatCountdown(csr, 1), ShardedOptions{}); err == nil {
		t.Fatal("Run on a closed session succeeded")
	}
}

// flatSpin is the steady-state probe of the allocation tests: every
// vertex rebroadcasts a constant word each round and never halts; the
// run is bounded by Stop. It allocates nothing after construction.
type flatSpin struct{ csr *graph.CSR }

func (p *flatSpin) InitShards(bounds []int) {}

func (p *flatSpin) StepShard(round, shard int, verts []int32, recv, send []Word, halted []bool) {
	for _, v32 := range verts {
		a0, a1 := p.csr.ArcRange(int(v32))
		for i := a0; i < a1; i++ {
			send[p.csr.Rev[i]] = 1
		}
	}
}

// TestSessionParallelFor checks the kernel API against a sequential
// reference over many sizes (including 0 and fewer items than shards):
// every index is visited exactly once, with the documented slice bounds.
func TestSessionParallelFor(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		sess := NewSession(shards)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			visits := make([]int32, n)
			sess.ParallelFor(n, func(sh, lo, hi int) {
				if lo != n*sh/shards || hi != n*(sh+1)/shards {
					panic("slice bounds diverge from the documented split")
				}
				for i := lo; i < hi; i++ {
					visits[i]++
				}
			})
			for i, c := range visits {
				if c != 1 {
					t.Fatalf("shards=%d n=%d: index %d visited %d times", shards, n, i, c)
				}
			}
		}
		sess.Close()
	}
}

// TestSessionParallelForReuse interleaves ParallelFor dispatches with
// engine runs on one session — the phase-loop usage pattern — and checks
// both against fresh executions, mirroring TestSessionReuseMatchesRunSharded.
func TestSessionParallelForReuse(t *testing.T) {
	sess := NewSession(3)
	defer sess.Close()
	for _, n := range []int{5, 40, 12, 200, 7, 64} {
		// A central-pass stand-in: a per-index transform plus a per-shard
		// partial reduction, combined after the barrier.
		sq := make([]int64, n)
		partial := make([]int64, sess.Shards())
		sess.ParallelFor(n, func(sh, lo, hi int) {
			var sum int64
			for i := lo; i < hi; i++ {
				sq[i] = int64(i) * int64(i)
				sum += sq[i]
			}
			partial[sh] = sum
		})
		var got, want int64
		for _, p := range partial {
			got += p
		}
		for i := 0; i < n; i++ {
			want += int64(i) * int64(i)
		}
		if got != want {
			t.Fatalf("n=%d: parallel reduction %d != sequential %d", n, got, want)
		}

		csr := graph.NewCSRFromGraph(graph.Cycle(n))
		p1 := newFlatCountdown(csr, n%4+2)
		s1, err := sess.Run(csr, p1, ShardedOptions{})
		if err != nil {
			t.Fatalf("n=%d: session run: %v", n, err)
		}
		p2 := newFlatCountdown(csr, n%4+2)
		s2, err := RunSharded(csr, p2, ShardedOptions{Shards: 3})
		if err != nil {
			t.Fatalf("n=%d: fresh run: %v", n, err)
		}
		if s1 != s2 || p1.total() != p2.total() {
			t.Fatalf("n=%d: session run diverges from fresh run after ParallelFor", n)
		}
	}
}

// TestSessionParallelForPanic checks that a kernel panic is propagated to
// the caller and that the session (workers included) survives it.
func TestSessionParallelForPanic(t *testing.T) {
	sess := NewSession(4)
	defer sess.Close()
	boom := func() (recovered any) {
		defer func() { recovered = recover() }()
		sess.ParallelFor(100, func(sh, lo, hi int) {
			if sh == 2 {
				panic("kernel boom")
			}
		})
		return nil
	}
	if r := boom(); r != "kernel boom" {
		t.Fatalf("recovered %v, want the kernel's panic value", r)
	}
	// The pool must still serve dispatches and runs.
	count := make([]int32, 50)
	sess.ParallelFor(50, func(sh, lo, hi int) {
		for i := lo; i < hi; i++ {
			count[i]++
		}
	})
	for i, c := range count {
		if c != 1 {
			t.Fatalf("after panic: index %d visited %d times", i, c)
		}
	}
	csr := graph.NewCSRFromGraph(graph.Cycle(9))
	if _, err := sess.Run(csr, newFlatCountdown(csr, 2), ShardedOptions{}); err != nil {
		t.Fatalf("Run after kernel panic: %v", err)
	}
}

// TestSessionParallelForClosed pins the loud-failure contract.
func TestSessionParallelForClosed(t *testing.T) {
	sess := NewSession(2)
	sess.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("ParallelFor on a closed session did not panic")
		}
	}()
	sess.ParallelFor(10, func(sh, lo, hi int) {})
}

// TestSessionParallelForZeroAlloc asserts the kernel-API half of the
// zero-allocation contract: a warmed dispatch (hoisted kernel closure)
// allocates nothing.
func TestSessionParallelForZeroAlloc(t *testing.T) {
	sess := NewSession(4)
	defer sess.Close()
	out := make([]int64, 4096)
	kernel := func(sh, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = int64(i)
		}
	}
	run := func() { sess.ParallelFor(len(out), kernel) }
	run() // warm: worker stacks reach steady state
	if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
		t.Errorf("warmed Session.ParallelFor allocated %.1f objects per call; want 0", allocs)
	}
}

// TestSessionRunZeroAlloc asserts the engine-level half of the
// zero-allocation contract: a warmed session executes entire repeat Run
// calls — shard bounds, buffer reset, every round, awake-list
// bookkeeping — without a single heap allocation. The program-level half
// (proposal and hypergame programs) is asserted in internal/core and
// internal/hypergame.
func TestSessionRunZeroAlloc(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Complete(24))
	sess := NewSession(4)
	defer sess.Close()
	p := &flatSpin{csr: csr}
	stop := func(round int) bool { return round >= 16 }
	run := func() {
		if _, err := sess.Run(csr, p, ShardedOptions{Stop: stop}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: buffers, lists, and worker stacks reach steady state
	if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
		t.Errorf("warmed Session.Run allocated %.1f objects per call; want 0", allocs)
	}
}
