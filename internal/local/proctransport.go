package local

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"tokendrop/internal/graph"
)

// ProcTransport is the worker-process side of the multi-process engine:
// the session owns one process's shard group of a global layout, and
// every round barrier becomes one framed exchange with the coordinator
// (internal/mp) over the process's pipe — a FrameMsgs carrying this
// process's boundary-crossing buffer words upstream, answered by a
// FrameDeliv carrying the words other processes wrote into this
// process's inbox regions plus the global awake count. The slot routing
// is precomputed once per run (ExchangePlan), so the per-round frames
// are dense word blocks with no index traffic.
//
// The transport is strict about the conversation: a round echo that
// does not match, a payload of the wrong size, or any unexpected frame
// type aborts the run with a structured error rather than risking a
// silently divergent solve.
type ProcTransport struct {
	conn          *FrameConn
	proc          int
	procs         int
	shardsPerProc int
	plan          *ExchangePlan
	payload       []byte // reused frame-payload build buffer
}

// NewProcTransport wraps an established, handshaken coordinator
// connection: this process is worker proc of procs, owning
// shardsPerProc consecutive global shards. The exchange plan is built
// in BeginRun, once the run's graph and shard map are known.
func NewProcTransport(conn *FrameConn, proc, procs, shardsPerProc int) *ProcTransport {
	return &ProcTransport{conn: conn, proc: proc, procs: procs, shardsPerProc: shardsPerProc}
}

// Layout owns global shards [proc·spp, (proc+1)·spp) of procs·spp.
func (t *ProcTransport) Layout(sessionShards int) (total, lo, hi int) {
	return t.procs * t.shardsPerProc, t.proc * t.shardsPerProc, (t.proc + 1) * t.shardsPerProc
}

// BeginRun folds the global shard bounds into per-process bounds and
// precomputes the slot routing of every round.
func (t *ProcTransport) BeginRun(csr *graph.CSR, bounds []int) error {
	pb, err := ProcBoundsFromShards(bounds, t.procs, t.shardsPerProc)
	if err != nil {
		return err
	}
	t.plan = NewExchangePlan(csr, pb)
	return nil
}

// Plan exposes the run's exchange plan (nil before BeginRun); the
// worker main uses it for frame accounting assertions and tests.
func (t *ProcTransport) Plan() *ExchangePlan { return t.plan }

// Conn exposes the underlying connection (for byte accounting).
func (t *ProcTransport) Conn() *FrameConn { return t.conn }

// Exchange sends this round's boundary-crossing words upstream and
// scatters the coordinator's routed answer into buf, returning the
// global awake count. On return every slot this session reads next
// round is correct, exactly as if all processes shared the buffer.
func (t *ProcTransport) Exchange(round int, buf []Word, ownAwake int) (int, error) {
	// Pack: u32 round, u32 own awake count, then the outgoing block for
	// every other process in ascending process order.
	p := append(t.payload[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(p[0:4], uint32(round))
	binary.BigEndian.PutUint32(p[4:8], uint32(ownAwake))
	for q := 0; q < t.procs; q++ {
		if q == t.proc {
			continue
		}
		for _, slot := range t.plan.Block(t.proc, q) {
			p = append(p, byte(buf[slot]))
		}
	}
	t.payload = p
	if err := t.conn.Write(FrameMsgs, p); err != nil {
		return 0, err
	}
	if err := t.conn.Flush(); err != nil {
		return 0, err
	}

	ft, body, err := t.conn.Read()
	if err != nil {
		return 0, err
	}
	switch ft {
	case FrameDeliv:
	case FrameError:
		return 0, fmt.Errorf("local: coordinator aborted at round %d: %s", round, DecodeErrorFrame(body))
	default:
		return 0, &WireError{Op: "round exchange",
			Detail: fmt.Sprintf("expected a deliv frame at round %d, got %s", round, ft)}
	}
	if want := 8 + t.plan.DownWords(t.proc); len(body) != want {
		return 0, &WireError{Op: "deliv payload",
			Detail: fmt.Sprintf("%d bytes at round %d, want %d", len(body), round, want)}
	}
	if echo := int(binary.BigEndian.Uint32(body[0:4])); echo != round {
		return 0, &WireError{Op: "deliv payload",
			Detail: fmt.Sprintf("round echo %d, want %d — streams out of sync", echo, round)}
	}
	globalAwake := int(binary.BigEndian.Uint32(body[4:8]))
	// Scatter: the words every other process wrote into this process's
	// inbox regions, ascending source process order — the same order the
	// coordinator packed them.
	off := 8
	for q := 0; q < t.procs; q++ {
		if q == t.proc {
			continue
		}
		for _, slot := range t.plan.Block(q, t.proc) {
			buf[slot] = Word(body[off])
			off++
		}
	}
	return globalAwake, nil
}

var _ Transport = (*ProcTransport)(nil)

// ErrorFrame is the JSON payload of a FrameError: a human-readable
// reason the sending side gave up, so the peer can surface it instead
// of a bare broken pipe.
type ErrorFrame struct {
	Msg string `json:"msg"`
}

// EncodeErrorFrame builds a FrameError payload.
func EncodeErrorFrame(msg string) []byte {
	b, err := json.Marshal(ErrorFrame{Msg: msg})
	if err != nil {
		// A string always marshals; this is unreachable.
		return []byte(`{"msg":"unknown error"}`)
	}
	return b
}

// DecodeErrorFrame extracts the reason from a FrameError payload,
// tolerating garbage (the peer was failing when it wrote it).
func DecodeErrorFrame(b []byte) string {
	var e ErrorFrame
	if err := json.Unmarshal(b, &e); err != nil || e.Msg == "" {
		return fmt.Sprintf("unparseable error frame (%d bytes)", len(b))
	}
	return e.Msg
}
