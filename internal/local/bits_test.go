package local

import (
	"testing"

	"tokendrop/internal/graph"
)

type sizedMsg struct{ Bits_ int }

func (m sizedMsg) Bits() int { return m.Bits_ }

type unsizedMsg struct{}

// bitsProbe broadcasts one message per round and halts after two rounds.
type bitsProbe struct {
	payload Payload
	rounds  int
}

func (m *bitsProbe) Init(NodeInfo) {}

func (m *bitsProbe) Step(round int, in []Payload, out []Payload) bool {
	for p := range out {
		out[p] = m.payload
	}
	m.rounds++
	return m.rounds >= 2
}

func TestMeasureBitsTracksMax(t *testing.T) {
	g := graph.Path(3)
	sizes := []int{5, 17, 9}
	nw := NewNetwork(g, func(v int) Machine { return &bitsProbe{payload: sizedMsg{Bits_: sizes[v]}} })
	stats, err := nw.Run(Options{MeasureBits: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxMessageBits != 17 {
		t.Fatalf("max bits %d, want 17", stats.MaxMessageBits)
	}
}

func TestMeasureBitsUnknownPayload(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g, func(v int) Machine { return &bitsProbe{payload: unsizedMsg{}} })
	stats, err := nw.Run(Options{MeasureBits: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxMessageBits != -1 {
		t.Fatalf("unsized payloads should report -1, got %d", stats.MaxMessageBits)
	}
}

func TestMeasureBitsOffByDefault(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g, func(v int) Machine { return &bitsProbe{payload: sizedMsg{Bits_: 100}} })
	stats, err := nw.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxMessageBits != 0 {
		t.Fatalf("accounting ran without MeasureBits: %d", stats.MaxMessageBits)
	}
}
