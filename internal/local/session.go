package local

import (
	"fmt"
	"runtime"
	"time"

	"tokendrop/internal/fault"
	"tokendrop/internal/graph"
	"tokendrop/internal/reuse"
)

// This file adds the reusable execution layer of the sharded engine. A
// RunSharded call pays three construction costs the LOCAL model never
// charges for: it allocates both message buffers and the halted/awake
// bookkeeping, and it spawns (and then tears down) one worker goroutine
// per shard. A single game amortizes that over its whole run, but the
// phase loops of the orientation and assignment layers solve dozens of
// subgames per solve — at 10⁶ vertices the churn dominates the
// non-algorithmic cost. A Session hoists all of it: the worker pool is
// spawned once and parked on channels between runs, the buffers and
// per-shard lists are grown monotonically and rebuilt in place, and the
// shard bounds are recomputed in place for every subgame. A warmed
// Session therefore executes steady-state rounds — and entire repeat
// Run calls — without a single heap allocation (asserted by the
// AllocsPerRun regression tests in this package and in internal/core).
//
// The execution semantics are exactly RunSharded's (which is now a thin
// wrapper over a one-shot Session): same barrier discipline, same scrub
// protocol, same determinism argument. Results never depend on the
// session's worker count.

// scrubEntry queues a recently halted vertex whose two stale out-buffers
// must be zeroed before it can be left alone for good.
type scrubEntry struct {
	v         int32
	haltRound int32
}

// roundWork is the per-dispatch message from the coordinator to a worker:
// either one engine round (the round number and the two buffer roles) or,
// when kernel is non-nil, one ParallelFor slice [lo, hi).
//
// injectShard, when non-zero, schedules an injected fault on worker
// injectShard-1 this round: KindCrash panics it (recovered at the
// goroutine boundary, see fault.go), KindStall sleeps it for
// inject.Delay before the step.
type roundWork struct {
	round       int
	recv, send  []Word
	kernel      Kernel
	lo, hi      int
	injectShard int
	inject      fault.Fault
}

// Kernel is the caller-supplied body of a Session.ParallelFor: it
// processes the index slice [lo, hi) as shard sh of the dispatch. A
// kernel must only write state owned by its slice (plus per-shard
// accumulators indexed by sh) and must be a deterministic function of its
// inputs, so the combined result is independent of the worker count.
type Kernel func(sh, lo, hi int)

// Session is a reusable sharded-engine execution context: a persistent
// worker pool plus the double-buffered message arrays, halted flags,
// awake-vertex lists, and scrub rings of the engine, all retained and
// rebuilt in place across Run calls. Create one with NewSession, run any
// number of (csr, program) pairs through Run — the phase loops of the
// orientation and assignment runtimes run every per-phase subgame on one
// session — and release the workers with Close.
//
// Between runs the parked pool doubles as a generic parallel-for
// executor: ParallelFor runs a caller-supplied flat kernel over an index
// range, which is how the phase loops shard their central per-phase
// passes (proposal/accept evaluation, load scatter, game assembly marks)
// without growing a second thread pool.
//
// A Session is not safe for concurrent use; Run and ParallelFor calls
// must be sequential. Distinct Sessions are independent.
type Session struct {
	shards int
	start  []chan roundWork
	done   chan int
	closed bool

	// transport reconciles the message buffer at every round barrier and
	// decides which slice of the global shard layout this session owns;
	// shardBase is the first owned global shard of the current Run. The
	// default MemTransport owns everything and exchanges nothing — the
	// historical single-process engine, bit- and allocation-identical.
	transport Transport
	shardBase int

	// Per-run state, written by Run before the first round is issued and
	// read by the workers afterwards (the channel send orders the
	// accesses).
	csr  *graph.CSR
	prog FlatProgram

	bufA, bufB []Word
	halted     []bool
	bounds     []int
	awake      []int32 // backing array; shard s compacts awakeLists[s] within its segment
	awakeLists [][]int32
	scrubs     [][]scrubEntry

	// kernelPanics[sh] records a panic recovered from shard sh's kernel
	// during the current ParallelFor dispatch; the coordinator re-panics
	// with the first one (by shard order) after the barrier.
	kernelPanics []any

	// roundPanics[sh] records a panic recovered at worker sh's goroutine
	// boundary during a round (injected crash or organic program bug);
	// the crashed worker still reports done and respawns, and Run turns
	// the record into a *WorkerCrashError after the barrier. Writes are
	// ordered before the coordinator's reads by the done send.
	roundPanics []any
}

// NewSession starts a session with the given worker (shard) count; zero
// or negative means runtime.GOMAXPROCS(0). The workers are parked until
// the first Run and survive until Close. The session owns every shard
// and runs entirely in-process (MemTransport); use NewSessionTransport
// to own one slice of a multi-process layout.
func NewSession(shards int) *Session {
	return NewSessionTransport(shards, MemTransport{})
}

// NewSessionTransport starts a session whose round communication runs
// through tr: the transport decides which slice of the global shard
// layout the session steps and reconciles the message buffer at every
// round barrier. shards is the session's local worker count — the size
// of the owned slice; zero or negative means runtime.GOMAXPROCS(0).
func NewSessionTransport(shards int, tr Transport) *Session {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	s := &Session{
		shards:       shards,
		transport:    tr,
		start:        make([]chan roundWork, shards),
		done:         make(chan int, shards),
		bounds:       make([]int, shards+1),
		awakeLists:   make([][]int32, shards),
		scrubs:       make([][]scrubEntry, shards),
		kernelPanics: make([]any, shards),
		roundPanics:  make([]any, shards),
	}
	for sh := 0; sh < shards; sh++ {
		s.start[sh] = make(chan roundWork)
		go s.worker(sh)
	}
	return s
}

// Shards returns the session's worker count.
func (s *Session) Shards() int { return s.shards }

// Close releases the worker goroutines. The session must not be used
// afterwards; Close is idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, c := range s.start {
		close(c)
	}
}

// worker owns shard sh: it scrubs the outboxes of its recently halted
// vertices, steps the program over its awake list, and compacts the list,
// once per received roundWork. All state it touches is either owned by
// the shard or ordered by the start/done channel pair.
//
// The pool self-heals: a panic anywhere on the round path (injected
// KindCrash or an organic program bug) is recovered here at the
// goroutine boundary, recorded in roundPanics[sh], the barrier is
// completed with an awake count of 0, and a fresh worker respawns on
// the same channel before this goroutine exits — so the session
// survives the crash and Run surfaces it as a *WorkerCrashError.
// (Kernel panics never reach this recover; runKernel has its own.)
func (s *Session) worker(sh int) {
	defer func() {
		if r := recover(); r != nil {
			s.roundPanics[sh] = r
			go s.worker(sh)
			s.done <- 0
		}
	}()
	for w := range s.start[sh] {
		if w.kernel != nil {
			s.runKernel(sh, w)
			continue
		}
		if w.injectShard == sh+1 {
			if w.inject.Kind == fault.KindStall {
				time.Sleep(w.inject.Delay)
			} else {
				panic(&fault.Panic{Fault: w.inject})
			}
		}
		csr := s.csr
		// Scrub outboxes of recently halted vertices: a vertex that
		// halted in round r left words in both buffers (rounds r-1 and
		// r); they become stale at rounds r+1 and r+2 respectively,
		// which is exactly when this pass visits them. The vertex's
		// out-slots live at Rev[i] (receiver-indexed buffers, possibly
		// in other shards' vertex ranges); the write is still exclusive
		// because slot Rev[i] is only ever written by the sender behind
		// arc i — the halted vertex this worker owns — and its neighbor
		// only reads it.
		scrub := s.scrubs[sh][:0]
		for _, e := range s.scrubs[sh] {
			if int32(w.round)-e.haltRound > 2 {
				continue // both buffers scrubbed; drop the entry
			}
			a0, a1 := csr.ArcRange(int(e.v))
			for i := a0; i < a1; i++ {
				w.send[csr.Rev[i]] = 0
			}
			scrub = append(scrub, e)
		}
		s.scrubs[sh] = scrub

		s.prog.StepShard(w.round, s.shardBase+sh, s.awakeLists[sh], w.recv, w.send, s.halted)

		// Compact the awake list; newly halted vertices enter the scrub
		// ring.
		list := s.awakeLists[sh][:0]
		for _, v := range s.awakeLists[sh] {
			if s.halted[v] {
				s.scrubs[sh] = append(s.scrubs[sh], scrubEntry{v: v, haltRound: int32(w.round)})
			} else {
				list = append(list, v)
			}
		}
		s.awakeLists[sh] = list
		s.done <- len(list)
	}
}

// runKernel executes one ParallelFor slice, converting a kernel panic
// into a recorded value so the pool survives and the coordinator can
// re-panic on the caller's goroutine.
func (s *Session) runKernel(sh int, w roundWork) {
	defer func() {
		s.kernelPanics[sh] = recover()
		s.done <- 0
	}()
	w.kernel(sh, w.lo, w.hi)
}

// ParallelFor runs k over the index range [0, n) on the session's parked
// worker pool and returns when every slice has finished (one barrier, as
// in a Run round). Shard sh receives the contiguous slice
// [n·sh/Shards(), n·(sh+1)/Shards()) — the documented split, so callers
// producing per-shard output segments (compactions, partial reductions)
// can recompute the same bounds. Every shard is dispatched even when its
// slice is empty, so kernels may rely on per-shard accumulator slots
// being (re)written on every call.
//
// A panic raised by a kernel is recovered on the worker, the dispatch
// still completes on all shards, and the first panic value in shard
// order is re-raised on the caller's goroutine; the session remains
// usable. ParallelFor must not be called concurrently with Run or with
// another ParallelFor (a Session is not safe for concurrent use), and
// panics if the session is closed. A warmed call performs no heap
// allocations; hoist kernel closures out of hot loops, since closure
// construction itself may allocate.
func (s *Session) ParallelFor(n int, k Kernel) {
	if s.closed {
		panic("local: ParallelFor on a closed session")
	}
	for sh := 0; sh < s.shards; sh++ {
		s.start[sh] <- roundWork{kernel: k, lo: n * sh / s.shards, hi: n * (sh + 1) / s.shards}
	}
	for sh := 0; sh < s.shards; sh++ {
		<-s.done
	}
	for _, r := range s.kernelPanics {
		if r != nil {
			panic(r)
		}
	}
}

// shardBoundsInto partitions vertices 0..n-1 into contiguous shards
// balanced by arc count (vertex count alone would starve shards on
// skewed-degree graphs such as power-law workloads), writing the bounds
// in place. With more shards than vertices the trailing shards own empty
// ranges; programs and results are partition-independent either way.
func shardBoundsInto(bounds []int, csr *graph.CSR, shards int) []int {
	n := csr.N()
	bounds = bounds[:shards+1]
	bounds[0] = 0
	total := csr.NumArcs()
	v := 0
	for s := 1; s < shards; s++ {
		target := int32(total * s / shards)
		for v < n && csr.Row[v] < target {
			v++
		}
		bounds[s] = v
	}
	bounds[shards] = n
	return bounds
}

// Run initializes prog and executes synchronous rounds on csr until every
// vertex has halted, opt.MaxRounds is exceeded (an error), or opt.Stop
// says so. The session's worker count applies; opt.Shards is ignored. All
// engine state is rebuilt in place from the previous run — a warmed
// session (same or smaller graph) allocates nothing.
//
// Under a remote transport the session steps only its owned global
// shards: prog is initialized over the full global shard map (so vertex
// state exists everywhere, at its initial values), but only owned
// vertices are ever awake here, and the transport reconciles the
// boundary-crossing buffer slots each round. stats then describe the
// global run (Rounds, Shards) with locally countable fields (Halted)
// restricted to the owned range.
func (s *Session) Run(csr *graph.CSR, prog FlatProgram, opt ShardedOptions) (ShardedStats, error) {
	if s.closed {
		return ShardedStats{}, fmt.Errorf("local: Run on a closed session")
	}
	n := csr.N()
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = 1 << 20
	}
	var stats ShardedStats
	total, shardLo, shardHi := s.transport.Layout(s.shards)
	if shardHi-shardLo != s.shards || shardLo < 0 || shardHi > total {
		return stats, fmt.Errorf("local: transport layout [%d,%d) of %d does not fit %d session shards",
			shardLo, shardHi, total, s.shards)
	}
	s.shardBase = shardLo
	if n == 0 {
		prog.InitShards(make([]int, total+1))
		return stats, nil
	}
	stats.Shards = total
	if cap(s.bounds) < total+1 {
		s.bounds = make([]int, total+1)
	}
	s.bounds = shardBoundsInto(s.bounds[:total+1], csr, total)
	prog.InitShards(s.bounds)
	if err := s.transport.BeginRun(csr, s.bounds); err != nil {
		return stats, err
	}

	arcs := csr.NumArcs()
	s.bufA = reuse.Grown(s.bufA, arcs)
	s.bufB = reuse.Grown(s.bufB, arcs)
	clear(s.bufA)
	clear(s.bufB)
	if cap(s.halted) < n {
		s.halted = make([]bool, n)
	} else {
		s.halted = s.halted[:n]
		clear(s.halted)
	}
	if cap(s.awake) < n {
		s.awake = make([]int32, n)
	} else {
		s.awake = s.awake[:n]
	}
	for v := range s.awake {
		s.awake[v] = int32(v)
	}
	for sh := 0; sh < s.shards; sh++ {
		// Three-index reslice: each worker compacts (shrinks) its own
		// list in place, so the segments can never collide even though
		// they share one backing array. Worker sh owns global shard
		// shardBase+sh; under a remote transport the foreign segments
		// are simply never placed on any awake list, so those vertices
		// are never stepped and their state stays at its initial values.
		g := shardLo + sh
		s.awakeLists[sh] = s.awake[s.bounds[g]:s.bounds[g+1]:s.bounds[g+1]]
		s.scrubs[sh] = s.scrubs[sh][:0]
	}
	s.csr, s.prog = csr, prog

	recv, send := s.bufA, s.bufB
	// The workers are parked (all done receives in) whenever this loop is
	// not between a start send and a done receive, so dropping the run's
	// csr/prog references on the way out is race-free; holding them would
	// pin the caller's graph and program state until the next Run.
	defer func() { s.csr, s.prog = nil, nil }()
	for round := 1; ; round++ {
		if round > maxRounds {
			awake := 0
			for _, h := range s.halted {
				if !h {
					awake++
				}
			}
			return stats, fmt.Errorf("local: %d vertices still awake after %d rounds", awake, maxRounds)
		}
		work := roundWork{round: round, recv: recv, send: send}
		if f, ok := opt.Fault.Hit(); ok {
			// Visit n is round n: the site is consulted exactly once per
			// round, on this coordinating goroutine, so schedules are
			// deterministic. An injected error aborts here, before any
			// worker is started — the state is the quiescent state after
			// round-1 complete rounds. Crash and stall faults are handed
			// to one seeded-chosen worker via the dispatch.
			if f.Kind == fault.KindError {
				return stats, f.Err()
			}
			work.injectShard = opt.Fault.Intn(s.shards) + 1
			work.inject = f
		}
		for sh := 0; sh < s.shards; sh++ {
			s.start[sh] <- work
		}
		awake := 0
		for sh := 0; sh < s.shards; sh++ {
			awake += <-s.done
		}
		var crashed *WorkerCrashError
		for sh := 0; sh < s.shards; sh++ {
			if r := s.roundPanics[sh]; r != nil {
				s.roundPanics[sh] = nil
				if crashed == nil {
					crashed = &WorkerCrashError{Shard: sh, Round: round, Value: r}
				}
			}
		}
		if crashed != nil {
			// The crashed shard died mid-step, so the program state is
			// not the quiescent round-barrier state: stats.Rounds stays
			// at the last complete round and OnRound (the snapshot hook)
			// does not fire for this round — and nothing goes on the
			// wire, so a remote peer sees a clean cut, not a torn round.
			return stats, crashed
		}
		// Round barrier: reconcile the freshly written send buffer across
		// the transport and learn the global awake count. MemTransport is
		// a no-op returning awake unchanged; ProcTransport pushes this
		// session's boundary-crossing slots out and scatters the incoming
		// ones before any of them is read next round.
		globalAwake, err := s.transport.Exchange(round, send, awake)
		if err != nil {
			return stats, err
		}
		awake = globalAwake
		stats.Rounds = round
		if opt.OnRound != nil {
			opt.OnRound(round, awake)
		}
		if awake == 0 || (opt.Stop != nil && opt.Stop(round)) {
			break
		}
		recv, send = send, recv
	}
	for _, h := range s.halted {
		if h {
			stats.Halted++
		}
	}
	return stats, nil
}
