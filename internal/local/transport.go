package local

import (
	"fmt"
	"sort"

	"tokendrop/internal/graph"
)

// This file splits the round loop's communication behind the Transport
// interface (ROADMAP item 2(b)). The sharded engine's double-buffered,
// receiver-indexed byte-word layout is already a wire format: slot i of
// a buffer is the inbox slot of arc i's tail vertex, and the arcs of a
// contiguous vertex range occupy a contiguous slot range. A Session that
// owns only a slice of the global shard layout can therefore step its
// own vertices against its local buffer copy and then reconcile exactly
// the slots that cross the ownership boundary — one framed exchange per
// round in place of one barrier per round, which is what makes the
// paper's CONGEST-style communication charge measurable.
//
// Two transports exist:
//
//   - MemTransport: every shard lives in this process and the exchange
//     is the no-op it always was (the shared buffers ARE the network).
//     This is the default and is bit-identical — and allocation-
//     identical — to the pre-transport engine; the differential suites
//     and the AllocsPerRun == 0 pins run against it unchanged.
//   - ProcTransport (proctransport.go): the session owns one process's
//     shard group of a multi-process run and reconciles boundary slots
//     through length-prefixed frames over a pipe or socket to the
//     coordinator (internal/mp), which routes them star-wise between
//     the worker processes.
//
// Determinism is unchanged: a round still reads only the previous
// round's buffer and writes only sender-owned slots, so the result is
// independent of how the slots travelled.

// Transport is the round-communication backend of a Session: it decides
// which slice of the global shard layout this session steps, and it
// reconciles the message buffer at every round barrier. Implementations
// must be deterministic round-for-round; Exchange is called on the
// coordinating goroutine with every worker parked, so it may touch the
// buffer freely.
type Transport interface {
	// Layout returns the global shard count and the half-open global
	// shard range this session owns, given the session's worker count.
	// The owned range must have exactly sessionShards shards.
	Layout(sessionShards int) (total, lo, hi int)

	// BeginRun is called once per Run, after the global shard bounds are
	// computed and before round 1, so the transport can build its
	// exchange plan. bounds has total+1 entries (vertex bounds per
	// global shard).
	BeginRun(csr *graph.CSR, bounds []int) error

	// Exchange is called at each round barrier after the owned shards
	// finished stepping: buf is the round's freshly written send buffer,
	// ownAwake the awake count over the owned shards. It returns the
	// global awake count; for a remote transport it also pushes the
	// boundary-crossing slots out and scatters the incoming ones into
	// buf, so that after it returns, buf is correct on every slot this
	// session will read next round.
	Exchange(round int, buf []Word, ownAwake int) (int, error)
}

// MemTransport is the in-memory transport: the session owns every shard
// and the exchange is a no-op, because all workers already share the
// buffers. It is the engine's default and costs nothing — no
// allocations, no copies, one interface call per round.
type MemTransport struct{}

// Layout owns the whole shard range.
func (MemTransport) Layout(sessionShards int) (total, lo, hi int) {
	return sessionShards, 0, sessionShards
}

// BeginRun is a no-op.
func (MemTransport) BeginRun(*graph.CSR, []int) error { return nil }

// Exchange is a no-op: the local awake count is the global one.
func (MemTransport) Exchange(round int, buf []Word, ownAwake int) (int, error) {
	return ownAwake, nil
}

var _ Transport = MemTransport{}

// ShardBounds returns the engine's arc-balanced vertex partition for the
// given shard count — the exact split Session.Run uses — so transports,
// planners, and the multi-process coordinator agree on the shard map
// without private contracts.
func ShardBounds(csr *graph.CSR, shards int) []int {
	return shardBoundsInto(make([]int, shards+1), csr, shards)
}

// ExchangePlan precomputes the slot routing of a multi-process round.
// Process p owns the contiguous vertex range [bounds[p], bounds[p+1])
// and with it the contiguous inbox slot range [Row[bounds[p]],
// Row[bounds[p+1]]). Stepping its vertices writes send[Rev[i]] for its
// own arcs i — slots that may land in any process's inbox region, each
// written by exactly one sender. The plan lists, for every ordered pair
// (from, to), the boundary-crossing slots in the sender's arc order, so
// both ends pack and scatter the same dense block with no per-round
// index traffic: the per-round frame is just the block's words.
type ExchangePlan struct {
	procs  int
	bounds []int     // per-process vertex bounds, len procs+1
	arcLo  []int32   // per-process inbox region starts, len procs+1
	slots  [][]int32 // slots[from*procs+to]: crossing slots, sender arc order
}

// NewExchangePlan builds the plan for the given per-process vertex
// bounds (len procs+1, ascending, covering [0, csr.N()]).
func NewExchangePlan(csr *graph.CSR, procBounds []int) *ExchangePlan {
	procs := len(procBounds) - 1
	pl := &ExchangePlan{
		procs:  procs,
		bounds: append([]int(nil), procBounds...),
		arcLo:  make([]int32, procs+1),
		slots:  make([][]int32, procs*procs),
	}
	for p := 0; p <= procs; p++ {
		pl.arcLo[p] = csr.Row[procBounds[p]]
	}
	for p := 0; p < procs; p++ {
		lo, hi := csr.Row[procBounds[p]], csr.Row[procBounds[p+1]]
		for i := lo; i < hi; i++ {
			slot := csr.Rev[i]
			if slot >= lo && slot < hi {
				continue // stays inside p's own inbox region
			}
			q := pl.owner(slot)
			pl.slots[p*procs+q] = append(pl.slots[p*procs+q], slot)
		}
	}
	return pl
}

// owner returns the process whose inbox region contains slot.
func (pl *ExchangePlan) owner(slot int32) int {
	return sort.Search(pl.procs, func(p int) bool { return pl.arcLo[p+1] > slot })
}

// Procs returns the process count of the plan.
func (pl *ExchangePlan) Procs() int { return pl.procs }

// Block returns the boundary-crossing slots process from writes into
// process to's inbox region, in from's arc order. Both the sender's
// pack and the receiver's scatter iterate this list.
func (pl *ExchangePlan) Block(from, to int) []int32 { return pl.slots[from*pl.procs+to] }

// UpWords returns how many words process p sends per round (its
// boundary-crossing writes into every other process's region).
func (pl *ExchangePlan) UpWords(p int) int {
	n := 0
	for q := 0; q < pl.procs; q++ {
		n += len(pl.Block(p, q))
	}
	return n
}

// DownWords returns how many words process p receives per round.
func (pl *ExchangePlan) DownWords(p int) int {
	n := 0
	for q := 0; q < pl.procs; q++ {
		n += len(pl.Block(q, p))
	}
	return n
}

// CrossWords returns the total boundary-crossing words per round — the
// CONGEST-style message volume of the shard map, independent of how the
// words are routed.
func (pl *ExchangePlan) CrossWords() int64 {
	var n int64
	for p := 0; p < pl.procs; p++ {
		n += int64(pl.UpWords(p))
	}
	return n
}

// ProcBoundsFromShards folds a global shard-bounds slice (len
// procs*shardsPerProc+1) into per-process vertex bounds (len procs+1):
// process p owns shards [p*shardsPerProc, (p+1)*shardsPerProc).
func ProcBoundsFromShards(bounds []int, procs, shardsPerProc int) ([]int, error) {
	if shardsPerProc <= 0 || procs <= 0 {
		return nil, fmt.Errorf("local: %d procs × %d shards/proc is not a layout", procs, shardsPerProc)
	}
	if len(bounds) != procs*shardsPerProc+1 {
		return nil, fmt.Errorf("local: %d shard bounds for %d procs × %d shards/proc",
			len(bounds), procs, shardsPerProc)
	}
	pb := make([]int, procs+1)
	for p := 0; p <= procs; p++ {
		pb[p] = bounds[p*shardsPerProc]
	}
	return pb, nil
}

// roundFrameOverhead is the fixed per-frame wire cost of one round
// frame: the u32 length prefix, the type byte, and the u32 round and
// u32 awake-count header of FrameMsgs/FrameDeliv payloads.
const roundFrameOverhead = 4 + 1 + 4 + 4

// MPWireCost returns the deterministic per-round wire cost of a
// star-routed multi-process run over the given graph: the number of
// framed exchanges (one upstream and one downstream frame per worker
// process) and the total bytes crossing process boundaries, headers
// included. This is the quantity experiment E29 records and
// td-benchgate gates — it is a pure function of the graph and the shard
// map, so the gate fires on real message-volume regressions, never on
// timing noise. ProcTransport's frame accounting matches it exactly
// (asserted by the internal/mp tests).
func MPWireCost(csr *graph.CSR, procs, shardsPerProc int) (framesPerRound int, bytesPerRound int64, err error) {
	if shardsPerProc <= 0 {
		shardsPerProc = 1
	}
	bounds := ShardBounds(csr, procs*shardsPerProc)
	pb, err := ProcBoundsFromShards(bounds, procs, shardsPerProc)
	if err != nil {
		return 0, 0, err
	}
	pl := NewExchangePlan(csr, pb)
	framesPerRound = 2 * procs
	bytesPerRound = int64(framesPerRound)*roundFrameOverhead + 2*pl.CrossWords()
	return framesPerRound, bytesPerRound, nil
}
