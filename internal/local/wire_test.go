package local

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"tokendrop/internal/graph"
)

// frame builds one encoded frame for hand-crafted streams.
func frame(t FrameType, payload []byte) []byte {
	b := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(b[:4], uint32(len(payload)+1))
	b[4] = byte(t)
	copy(b[5:], payload)
	return b
}

func TestFrameConnRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewFrameConn(strings.NewReader(""), &buf)
	payloads := [][]byte{[]byte(`{"version":1}`), {}, []byte("abc"), bytes.Repeat([]byte{7}, 1<<17)}
	types := []FrameType{FrameHello, FrameMsgs, FrameSnap, FrameInstance}
	for i := range payloads {
		if err := w.Write(types[i], payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(0)
	for _, p := range payloads {
		wantBytes += int64(5 + len(p))
	}
	if w.FramesWritten != int64(len(payloads)) || w.BytesWritten != wantBytes {
		t.Fatalf("write accounting %d frames / %d bytes, want %d / %d",
			w.FramesWritten, w.BytesWritten, len(payloads), wantBytes)
	}

	r := NewFrameConn(bytes.NewReader(buf.Bytes()), io.Discard)
	for i := range payloads {
		ft, body, err := r.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ft != types[i] || !bytes.Equal(body, payloads[i]) {
			t.Fatalf("frame %d: got %s/%d bytes, want %s/%d", i, ft, len(body), types[i], len(payloads[i]))
		}
	}
	if r.FramesRead != int64(len(payloads)) || r.BytesRead != wantBytes {
		t.Fatalf("read accounting %d frames / %d bytes, want %d / %d",
			r.FramesRead, r.BytesRead, len(payloads), wantBytes)
	}
	if _, _, err := r.Read(); err == nil {
		t.Fatal("read past the last frame succeeded")
	}
}

// TestFrameConnRejections pins the decoder's strictness: truncated,
// torn, oversized, and unknown input all return a *WireError naming
// what was wrong — never a silent misparse.
func TestFrameConnRejections(t *testing.T) {
	valid := frame(FrameHello, []byte(`{"version":1}`))
	oversize := make([]byte, 4)
	binary.BigEndian.PutUint32(oversize, uint32(MaxFramePayload+1))
	cases := []struct {
		name   string
		stream []byte
		detail string // substring of the WireError
	}{
		{"empty stream", nil, "length prefix"},
		{"truncated length prefix", valid[:2], "length prefix"},
		{"zero-length frame", []byte{0, 0, 0, 0}, "zero-length"},
		{"oversized declared length", oversize, "exceeds"},
		{"missing type byte", valid[:4], "truncated before type byte"},
		{"unknown frame type", frame(FrameType(0x42), []byte("x")), "unknown frame type"},
		{"truncated payload", valid[:len(valid)-3], "truncated at"},
		// A torn stream: one byte vanishes mid-payload, so the next
		// header is read one byte early and lands on garbage. The second
		// read must fail, not deliver a shifted frame.
		{"torn between frames",
			append(append([]byte{}, valid[:len(valid)-1]...), frame(FrameError, EncodeErrorFrame("x"))...),
			""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn := NewFrameConn(bytes.NewReader(tc.stream), io.Discard)
			var err error
			for i := 0; i < 4 && err == nil; i++ {
				_, _, err = conn.Read()
			}
			if err == nil {
				t.Fatal("corrupt stream decoded without error")
			}
			var we *WireError
			if !errors.As(err, &we) {
				t.Fatalf("error %v is not a *WireError", err)
			}
			if tc.detail != "" && !strings.Contains(err.Error(), tc.detail) {
				t.Fatalf("error %q does not mention %q", err, tc.detail)
			}
		})
	}
}

func TestFrameConnWriteRefusesOversized(t *testing.T) {
	conn := NewFrameConn(strings.NewReader(""), io.Discard)
	err := conn.Write(FrameInstance, make([]byte, MaxFramePayload))
	var we *WireError
	if !errors.As(err, &we) || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized write not refused: %v", err)
	}
	if conn.FramesWritten != 0 {
		t.Fatal("refused write was counted")
	}
}

func TestHandshakeStrictDecode(t *testing.T) {
	h := &Handshake{Version: WireVersion, GraphHash: "abc", Solver: "proposal", Tie: "first-port",
		Procs: 2, Proc: 1, ShardsPerProc: 1, Bounds: []int{0, 3, 6}, MaxRounds: 10}
	b, err := EncodeHandshake(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHandshake(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.GraphHash != "abc" || got.Procs != 2 || len(got.Bounds) != 3 {
		t.Fatalf("handshake did not round-trip: %+v", got)
	}
	if err := got.CheckBasic(); err != nil {
		t.Fatalf("valid handshake rejected: %v", err)
	}

	for name, raw := range map[string]string{
		"unknown field": `{"version":1,"future_knob":true}`,
		"trailing data": string(b) + `{"version":1}`,
		"not json":      `version=1`,
	} {
		if _, err := DecodeHandshake([]byte(raw)); err == nil {
			t.Fatalf("%s accepted", name)
		} else if !strings.Contains(err.Error(), "handshake") {
			t.Fatalf("%s: error %q does not name the handshake", name, err)
		}
	}
}

func TestHandshakeCheckBasic(t *testing.T) {
	valid := func() Handshake {
		return Handshake{Version: WireVersion, Solver: "proposal", Tie: "first-port",
			Procs: 2, Proc: 0, ShardsPerProc: 2, Bounds: []int{0, 1, 2, 3, 4}}
	}
	cases := []struct {
		name   string
		mutate func(*Handshake)
		field  string
	}{
		{"wrong version", func(h *Handshake) { h.Version = WireVersion + 1 }, "version"},
		{"proc out of range", func(h *Handshake) { h.Proc = 2 }, "proc"},
		{"negative proc", func(h *Handshake) { h.Proc = -1 }, "proc"},
		{"zero shards per proc", func(h *Handshake) { h.ShardsPerProc = 0 }, "shards_per_proc"},
		{"bounds wrong length", func(h *Handshake) { h.Bounds = []int{0, 4} }, "bounds"},
		{"decreasing bounds", func(h *Handshake) { h.Bounds = []int{0, 3, 2, 3, 4} }, "bounds"},
		{"empty solver", func(h *Handshake) { h.Solver = "" }, "solver"},
		{"empty tie", func(h *Handshake) { h.Tie = "" }, "tie"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := valid()
			tc.mutate(&h)
			err := h.CheckBasic()
			var he *HandshakeError
			if !errors.As(err, &he) || he.Field != tc.field {
				t.Fatalf("want a HandshakeError on %q, got %v", tc.field, err)
			}
		})
	}
}

func TestPackUnpackBools(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000} {
		src := make([]bool, n)
		for i := range src {
			src[i] = rng.Intn(2) == 1
		}
		packed := PackBools(nil, src)
		if len(packed) != (n+7)/8 {
			t.Fatalf("n=%d: packed to %d bytes", n, len(packed))
		}
		got, err := UnpackBools(nil, packed, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if got[i] != src[i] {
				t.Fatalf("n=%d: bit %d did not round-trip", n, i)
			}
		}
		if _, err := UnpackBools(nil, append(packed, 0), n); err == nil {
			t.Fatalf("n=%d: oversized bitmap accepted", n)
		}
	}
}

// TestExchangePlanPartition checks the plan against first principles on
// a real graph: every boundary-crossing slot appears in exactly one
// block, no within-region slot appears anywhere, and the word totals
// agree between the send and receive sides.
func TestExchangePlanPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	csr := graph.NewCSRFromGraph(graph.RandomRegular(400, 4, rng))
	for _, procs := range []int{2, 3, 5} {
		bounds := ShardBounds(csr, procs)
		pl := NewExchangePlan(csr, bounds)
		if pl.Procs() != procs {
			t.Fatalf("procs=%d: plan reports %d", procs, pl.Procs())
		}
		seen := map[int32]int{}
		for from := 0; from < procs; from++ {
			for to := 0; to < procs; to++ {
				for _, slot := range pl.Block(from, to) {
					seen[slot]++
					if from == to {
						t.Fatalf("procs=%d: self-block (%d,%d) is not empty", procs, from, to)
					}
				}
			}
		}
		crossing := 0
		owner := func(arc int32) int {
			for p := 0; p < procs; p++ {
				if arc < csr.Row[bounds[p+1]] {
					return p
				}
			}
			t.Fatalf("arc %d has no owner", arc)
			return -1
		}
		for p := 0; p < procs; p++ {
			for i := csr.Row[bounds[p]]; i < csr.Row[bounds[p+1]]; i++ {
				if owner(csr.Rev[i]) != p {
					crossing++
					if seen[csr.Rev[i]] != 1 {
						t.Fatalf("procs=%d: crossing slot %d appears %d times", procs, csr.Rev[i], seen[csr.Rev[i]])
					}
				} else if seen[csr.Rev[i]] != 0 {
					t.Fatalf("procs=%d: within-region slot %d appears in a block", procs, csr.Rev[i])
				}
			}
		}
		up, down := 0, 0
		for p := 0; p < procs; p++ {
			up += pl.UpWords(p)
			down += pl.DownWords(p)
		}
		if up != crossing || down != crossing || pl.CrossWords() != int64(crossing) {
			t.Fatalf("procs=%d: up/down/cross = %d/%d/%d, want %d crossing slots",
				procs, up, down, pl.CrossWords(), crossing)
		}
		frames, wireBytes, err := MPWireCost(csr, procs, 1)
		if err != nil {
			t.Fatal(err)
		}
		if frames != 2*procs || wireBytes != int64(frames)*13+2*int64(crossing) {
			t.Fatalf("procs=%d: MPWireCost %d frames / %d bytes, want %d / %d",
				procs, frames, wireBytes, 2*procs, 2*procs*13+2*crossing)
		}
	}
}

func TestProcBoundsFromShardsRejections(t *testing.T) {
	if _, err := ProcBoundsFromShards([]int{0, 1, 2}, 2, 0); err == nil {
		t.Fatal("zero shards per proc accepted")
	}
	if _, err := ProcBoundsFromShards([]int{0, 1, 2}, 2, 2); err == nil {
		t.Fatal("wrong bounds length accepted")
	}
	pb, err := ProcBoundsFromShards([]int{0, 2, 4, 6, 8}, 2, 2)
	if err != nil || len(pb) != 3 || pb[0] != 0 || pb[1] != 4 || pb[2] != 8 {
		t.Fatalf("fold = %v, %v", pb, err)
	}
}

// exchangeHarness builds a ProcTransport whose coordinator side is a
// scripted byte stream, for protocol-violation tests.
func exchangeHarness(t *testing.T, reply []byte) (*ProcTransport, []Word) {
	t.Helper()
	csr := graph.NewCSRFromGraph(graph.Cycle(8))
	tr := NewProcTransport(NewFrameConn(bytes.NewReader(reply), io.Discard), 0, 2, 1)
	if err := tr.BeginRun(csr, ShardBounds(csr, 2)); err != nil {
		t.Fatal(err)
	}
	return tr, make([]Word, csr.NumArcs())
}

func TestProcTransportExchangeRejections(t *testing.T) {
	// Discover the expected deliv payload size from the plan.
	probe, _ := exchangeHarness(t, nil)
	down := probe.Plan().DownWords(0)
	goodDeliv := func(round, awake int) []byte {
		p := make([]byte, 8+down)
		binary.BigEndian.PutUint32(p[0:4], uint32(round))
		binary.BigEndian.PutUint32(p[4:8], uint32(awake))
		return p
	}

	t.Run("clean round", func(t *testing.T) {
		tr, buf := exchangeHarness(t, frame(FrameDeliv, goodDeliv(1, 9)))
		awake, err := tr.Exchange(1, buf, 4)
		if err != nil || awake != 9 {
			t.Fatalf("awake=%d err=%v", awake, err)
		}
	})
	t.Run("wrong frame type", func(t *testing.T) {
		tr, buf := exchangeHarness(t, frame(FrameSnap, goodDeliv(1, 9)))
		_, err := tr.Exchange(1, buf, 4)
		var we *WireError
		if !errors.As(err, &we) || !strings.Contains(err.Error(), "expected a deliv frame") {
			t.Fatalf("reordered frame not rejected: %v", err)
		}
	})
	t.Run("error frame surfaces reason", func(t *testing.T) {
		tr, buf := exchangeHarness(t, frame(FrameError, EncodeErrorFrame("sibling worker died")))
		_, err := tr.Exchange(1, buf, 4)
		if err == nil || !strings.Contains(err.Error(), "sibling worker died") {
			t.Fatalf("coordinator abort reason lost: %v", err)
		}
	})
	t.Run("wrong payload size", func(t *testing.T) {
		tr, buf := exchangeHarness(t, frame(FrameDeliv, goodDeliv(1, 9)[:7]))
		_, err := tr.Exchange(1, buf, 4)
		var we *WireError
		if !errors.As(err, &we) || !strings.Contains(err.Error(), "want") {
			t.Fatalf("short deliv not rejected: %v", err)
		}
	})
	t.Run("stale round echo", func(t *testing.T) {
		tr, buf := exchangeHarness(t, frame(FrameDeliv, goodDeliv(2, 9)))
		_, err := tr.Exchange(1, buf, 4)
		var we *WireError
		if !errors.As(err, &we) || !strings.Contains(err.Error(), "out of sync") {
			t.Fatalf("stale round echo not rejected: %v", err)
		}
	})
	t.Run("dead coordinator", func(t *testing.T) {
		tr, buf := exchangeHarness(t, nil)
		_, err := tr.Exchange(1, buf, 4)
		var we *WireError
		if !errors.As(err, &we) {
			t.Fatalf("EOF mid-round is not a WireError: %v", err)
		}
	})
}

func TestErrorFrameCodec(t *testing.T) {
	if got := DecodeErrorFrame(EncodeErrorFrame("boom")); got != "boom" {
		t.Fatalf("round-trip = %q", got)
	}
	for _, garbage := range [][]byte{nil, []byte("{"), []byte(`{"msg":""}`), []byte("not json")} {
		if got := DecodeErrorFrame(garbage); !strings.Contains(got, "unparseable") {
			t.Fatalf("garbage %q decoded to %q", garbage, got)
		}
	}
}

// FuzzFrameDecode drives the frame decoder (and the strict control-
// payload decoders behind it) over arbitrary byte streams: any input
// must either parse into frames with valid types or fail with an
// error — never panic, never deliver an invalid type. The committed
// seed corpus in testdata/fuzz covers the interesting shapes: valid
// conversations, torn streams, garbage lengths, unknown types.
func FuzzFrameDecode(f *testing.F) {
	hello := frame(FrameHello, []byte(`{"version":1}`))
	hs, _ := EncodeHandshake(&Handshake{Version: 1, GraphHash: "h", Solver: "proposal", Tie: "first-port",
		Procs: 2, Proc: 0, ShardsPerProc: 1, Bounds: []int{0, 1, 2}})
	f.Add([]byte{})
	f.Add(hello)
	f.Add(append(append([]byte{}, hello...), frame(FrameHandshake, hs)...))
	f.Add(frame(FrameError, EncodeErrorFrame("x")))
	f.Add(frame(FrameMsgs, []byte{0, 0, 0, 1, 0, 0, 0, 2, 7, 7}))
	f.Add(hello[:3])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0, 0, 0, 2, 0x42, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		conn := NewFrameConn(bytes.NewReader(data), io.Discard)
		for i := 0; i < 1024; i++ {
			ft, body, err := conn.Read()
			if err != nil {
				var we *WireError
				if !errors.As(err, &we) {
					t.Fatalf("decoder returned a non-WireError: %v", err)
				}
				return
			}
			if !validFrameType(ft) {
				t.Fatalf("decoder delivered invalid type 0x%02x", uint8(ft))
			}
			if len(body)+1 > MaxFramePayload {
				t.Fatalf("decoder delivered %d payload bytes past the cap", len(body))
			}
			switch ft {
			case FrameHandshake:
				if h, err := DecodeHandshake(body); err == nil {
					_ = h.CheckBasic()
				}
			case FrameError:
				_ = DecodeErrorFrame(body)
			}
		}
	})
}
