package local

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// This file is the transport wire format: length-prefixed, type-tagged
// frames over any byte stream (the multi-process mode uses the worker
// processes' stdin/stdout pipes). The format is deliberately strict —
// every decoder rejects truncated, oversized, or unknown input with a
// structured error instead of guessing — because a torn frame in the
// round path would otherwise corrupt a solve silently. The handshake is
// JSON with unknown fields disallowed, mirroring the versioned-snapshot
// conventions of internal/encode: a coordinator and worker built from
// different revisions must fail loudly at the handshake, not diverge
// mid-run.
//
// Frame layout (all integers big-endian):
//
//	u32 length   — byte length of what follows (type byte + payload)
//	u8  type     — one of the Frame* constants
//	...payload
//
// Round payloads (FrameMsgs, FrameDeliv) are binary:
//
//	u32 round — echoed both ways; a mismatch aborts the run
//	u32 awake — sender's own awake count (Msgs) / global count (Deliv)
//	...blocks — ExchangePlan word blocks, destination (Msgs) or
//	            source (Deliv) process ascending, own process skipped
//
// Control payloads (hello, handshake, snapshot, result, error) are
// strict JSON; they are off the per-round hot path.

// WireVersion is the transport protocol version. It participates in the
// handshake; both ends must agree exactly.
const WireVersion = 1

// MaxFramePayload bounds a frame's declared length (type byte +
// payload). The largest legitimate frame is the instance transfer — a
// few dozen bytes per arc — so a quarter gigabyte leaves room for
// 10⁷-arc graphs while rejecting garbage lengths from a corrupted or
// adversarial stream before any allocation happens.
const MaxFramePayload = 1 << 28

// FrameType tags a frame.
type FrameType uint8

// The frame types of the transport protocol.
const (
	FrameHello     FrameType = 0x01 // worker → coordinator: version announcement
	FrameHandshake FrameType = 0x02 // coordinator → worker: run configuration
	FrameInstance  FrameType = 0x03 // coordinator → worker: the flat instance
	FrameMsgs      FrameType = 0x10 // worker → coordinator: one round's boundary words
	FrameDeliv     FrameType = 0x11 // coordinator → worker: routed boundary words
	FrameSnap      FrameType = 0x12 // worker → coordinator: quiescent snapshot of its range
	FrameResult    FrameType = 0x20 // worker → coordinator: final per-range result
	FrameError     FrameType = 0x7f // either direction: structured failure
)

// String names the frame type for error messages.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameHandshake:
		return "handshake"
	case FrameInstance:
		return "instance"
	case FrameMsgs:
		return "msgs"
	case FrameDeliv:
		return "deliv"
	case FrameSnap:
		return "snap"
	case FrameResult:
		return "result"
	case FrameError:
		return "error"
	}
	return fmt.Sprintf("unknown(0x%02x)", uint8(t))
}

// validFrameType reports whether t is a declared frame type; the
// decoder rejects others (a stream that got out of sync lands here).
func validFrameType(t FrameType) bool {
	switch t {
	case FrameHello, FrameHandshake, FrameInstance, FrameMsgs, FrameDeliv,
		FrameSnap, FrameResult, FrameError:
		return true
	}
	return false
}

// WireError is a structured transport failure: what the decoder was
// doing, and why the stream cannot be trusted any further. Every frame
// and payload decoder returns one (wrapping the underlying I/O error
// when there is one), so transport failures are distinguishable from
// solver failures by type.
type WireError struct {
	Op     string // what was being decoded, e.g. "frame header", "deliv payload"
	Detail string // what was wrong
	Err    error  // underlying I/O error, if any
}

// Error describes the failure.
func (e *WireError) Error() string {
	msg := fmt.Sprintf("local: wire: %s: %s", e.Op, e.Detail)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying I/O error.
func (e *WireError) Unwrap() error { return e.Err }

// FrameConn frames a byte stream: buffered reads and writes of
// length-prefixed frames, with byte and frame accounting for the
// message-volume experiments. Not safe for concurrent use; the
// transport protocol is strictly sequential per connection.
type FrameConn struct {
	r    *bufio.Reader
	w    *bufio.Writer
	rbuf []byte // reused read-payload buffer; valid until the next Read
	hdr  [5]byte
	// Counters of everything that crossed this connection, headers
	// included. FramesRead/BytesRead count inbound, the Written pair
	// outbound.
	FramesRead, FramesWritten int64
	BytesRead, BytesWritten   int64
}

// NewFrameConn wraps a read and a write stream (for a worker process,
// its stdin and stdout; for the coordinator, the other ends).
func NewFrameConn(r io.Reader, w io.Writer) *FrameConn {
	return &FrameConn{r: bufio.NewReaderSize(r, 1<<16), w: bufio.NewWriterSize(w, 1<<16)}
}

// Read returns the next frame's type and payload. The payload slice is
// owned by the connection and overwritten by the next Read; decode or
// copy it before reading again. Truncated input, oversized lengths, and
// unknown types all return a *WireError.
func (c *FrameConn) Read() (FrameType, []byte, error) {
	if _, err := io.ReadFull(c.r, c.hdr[:4]); err != nil {
		return 0, nil, &WireError{Op: "frame header", Detail: "reading length prefix", Err: err}
	}
	length := binary.BigEndian.Uint32(c.hdr[:4])
	if length < 1 {
		return 0, nil, &WireError{Op: "frame header", Detail: "zero-length frame (missing type byte)"}
	}
	if length > MaxFramePayload {
		return 0, nil, &WireError{Op: "frame header",
			Detail: fmt.Sprintf("declared length %d exceeds the %d cap", length, MaxFramePayload)}
	}
	if _, err := io.ReadFull(c.r, c.hdr[4:5]); err != nil {
		return 0, nil, &WireError{Op: "frame header", Detail: "truncated before type byte", Err: err}
	}
	t := FrameType(c.hdr[4])
	if !validFrameType(t) {
		return 0, nil, &WireError{Op: "frame header", Detail: fmt.Sprintf("unknown frame type 0x%02x", c.hdr[4])}
	}
	n := int(length) - 1
	if cap(c.rbuf) < n {
		c.rbuf = make([]byte, n)
	}
	c.rbuf = c.rbuf[:n]
	if m, err := io.ReadFull(c.r, c.rbuf); err != nil {
		return 0, nil, &WireError{Op: t.String() + " payload",
			Detail: fmt.Sprintf("truncated at %d of %d bytes", m, n), Err: err}
	}
	c.FramesRead++
	c.BytesRead += int64(4 + int(length))
	return t, c.rbuf, nil
}

// Write appends one frame to the connection's write buffer; call Flush
// to push it to the peer. Oversized payloads are refused — the cap is
// part of the protocol, so a frame the peer would reject is never sent.
func (c *FrameConn) Write(t FrameType, payload []byte) error {
	if len(payload)+1 > MaxFramePayload {
		return &WireError{Op: t.String() + " write",
			Detail: fmt.Sprintf("payload of %d bytes exceeds the %d cap", len(payload), MaxFramePayload)}
	}
	binary.BigEndian.PutUint32(c.hdr[:4], uint32(len(payload)+1))
	c.hdr[4] = byte(t)
	if _, err := c.w.Write(c.hdr[:5]); err != nil {
		return &WireError{Op: t.String() + " write", Detail: "writing header", Err: err}
	}
	if _, err := c.w.Write(payload); err != nil {
		return &WireError{Op: t.String() + " write", Detail: "writing payload", Err: err}
	}
	c.FramesWritten++
	c.BytesWritten += int64(5 + len(payload))
	return nil
}

// Flush pushes buffered frames to the peer.
func (c *FrameConn) Flush() error {
	if err := c.w.Flush(); err != nil {
		return &WireError{Op: "flush", Detail: "flushing write buffer", Err: err}
	}
	return nil
}

// Hello is the worker's first frame: its protocol version, checked
// before anything else is interpreted.
type Hello struct {
	Version int `json:"version"`
}

// Handshake is the coordinator's run configuration: everything a worker
// needs to reproduce the exact solve — and everything it must verify
// before stepping a single round. A mismatch on any field is a
// *HandshakeError; the worker refuses the run rather than computing a
// divergent answer.
type Handshake struct {
	// Version is the transport protocol version (WireVersion).
	Version int `json:"version"`
	// GraphHash is the hex SHA-256 of the instance frame's payload; the
	// worker recomputes it over what it actually received.
	GraphHash string `json:"graph_hash"`
	// Solver and Tie name the algorithm and tie rule (the
	// internal/encode names), Seed feeds the TieRandom streams.
	Solver string `json:"solver"`
	Tie    string `json:"tie"`
	Seed   int64  `json:"seed"`
	// MaxRounds bounds the run as in ShardedOptions.
	MaxRounds int `json:"max_rounds"`
	// Procs × ShardsPerProc is the global shard layout; Proc is this
	// worker's index. Bounds is the coordinator's shard map (global
	// shard → first vertex, len Procs*ShardsPerProc+1); the worker
	// recomputes it from the instance and refuses on any difference.
	Procs         int   `json:"procs"`
	Proc          int   `json:"proc"`
	ShardsPerProc int   `json:"shards_per_proc"`
	Bounds        []int `json:"bounds"`
	// SnapshotEvery is the quiescent-snapshot cadence in rounds (0
	// disables capture, and with it crash recovery).
	SnapshotEvery int `json:"snapshot_every"`
	// Resume, when present, asks the worker to re-execute rounds
	// 1..Resume.Round and verify its range against the snapshot before
	// continuing (the validated fast-forward of internal/core).
	Resume *ResumeState `json:"resume,omitempty"`
}

// ResumeState is the per-worker slice of a retained quiescent snapshot.
type ResumeState struct {
	// Round is the snapshot cursor (completed rounds).
	Round int `json:"round"`
	// Moves is how many moves this worker's shards had logged at the
	// cursor.
	Moves int `json:"moves"`
	// Occupied packs the token placement of the worker's vertex range
	// at the cursor, LSB-first within each byte.
	Occupied []byte `json:"occupied"`
}

// EncodeHandshake serializes h.
func EncodeHandshake(h *Handshake) ([]byte, error) { return json.Marshal(h) }

// DecodeHandshake parses a handshake payload strictly: unknown fields,
// trailing garbage, and malformed JSON are all rejected, so protocol
// drift between coordinator and worker revisions fails here.
func DecodeHandshake(b []byte) (*Handshake, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var h Handshake
	if err := dec.Decode(&h); err != nil {
		return nil, &WireError{Op: "handshake", Detail: "strict decode failed", Err: err}
	}
	if dec.More() {
		return nil, &WireError{Op: "handshake", Detail: "trailing data after the handshake object"}
	}
	return &h, nil
}

// HandshakeError reports a handshake field the worker cannot accept:
// the run the coordinator describes is not the run this worker would
// execute, so it refuses loudly instead of diverging.
type HandshakeError struct {
	Field string // which handshake field mismatched
	Got   string // what the coordinator sent
	Want  string // what this worker requires
}

// Error describes the mismatch.
func (e *HandshakeError) Error() string {
	return fmt.Sprintf("local: handshake rejected: %s = %s, want %s", e.Field, e.Got, e.Want)
}

// CheckBasic validates the handshake's self-consistency: protocol
// version, layout sanity, and a shard map of the right shape. Graph
// hash and shard-map contents are checked against the instance after it
// arrives (the caller has the CSR; see ProcTransport.VerifyBounds).
func (h *Handshake) CheckBasic() error {
	if h.Version != WireVersion {
		return &HandshakeError{Field: "version", Got: fmt.Sprint(h.Version), Want: fmt.Sprint(WireVersion)}
	}
	if h.Procs < 1 || h.Proc < 0 || h.Proc >= h.Procs {
		return &HandshakeError{Field: "proc", Got: fmt.Sprintf("%d of %d", h.Proc, h.Procs),
			Want: "0 ≤ proc < procs"}
	}
	if h.ShardsPerProc < 1 {
		return &HandshakeError{Field: "shards_per_proc", Got: fmt.Sprint(h.ShardsPerProc), Want: "≥ 1"}
	}
	if want := h.Procs*h.ShardsPerProc + 1; len(h.Bounds) != want {
		return &HandshakeError{Field: "bounds", Got: fmt.Sprintf("%d entries", len(h.Bounds)),
			Want: fmt.Sprintf("%d entries", want)}
	}
	for i := 1; i < len(h.Bounds); i++ {
		if h.Bounds[i] < h.Bounds[i-1] {
			return &HandshakeError{Field: "bounds", Got: fmt.Sprintf("decreasing at shard %d", i),
				Want: "non-decreasing vertex bounds"}
		}
	}
	if h.Solver == "" {
		return &HandshakeError{Field: "solver", Got: "(empty)", Want: "a solver name"}
	}
	if h.Tie == "" {
		return &HandshakeError{Field: "tie", Got: "(empty)", Want: "a tie rule name"}
	}
	return nil
}

// PackBools packs a bool slice LSB-first (the ResumeState.Occupied and
// result bitmap format).
func PackBools(dst []byte, src []bool) []byte {
	dst = dst[:0]
	for i, b := range src {
		if i%8 == 0 {
			dst = append(dst, 0)
		}
		if b {
			dst[len(dst)-1] |= 1 << (i % 8)
		}
	}
	return dst
}

// UnpackBools unpacks n bools from a PackBools bitmap; it fails on a
// bitmap of the wrong size.
func UnpackBools(dst []bool, src []byte, n int) ([]bool, error) {
	if len(src) != (n+7)/8 {
		return nil, &WireError{Op: "bitmap",
			Detail: fmt.Sprintf("%d bytes for %d bools (want %d)", len(src), n, (n+7)/8)}
	}
	if cap(dst) < n {
		dst = make([]bool, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = src[i/8]&(1<<(i%8)) != 0
	}
	return dst, nil
}
