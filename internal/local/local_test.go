package local

import (
	"sync"
	"testing"

	"tokendrop/internal/graph"
)

// countdownMachine halts after a fixed number of rounds, broadcasting its
// remaining count each round.
type countdownMachine struct {
	left int
	info NodeInfo
	seen [][]Payload
}

func (m *countdownMachine) Init(info NodeInfo) { m.info = info }

func (m *countdownMachine) Step(round int, in []Payload, out []Payload) bool {
	cp := append([]Payload(nil), in...)
	m.seen = append(m.seen, cp)
	for p := range out {
		out[p] = m.left
	}
	m.left--
	return m.left <= 0
}

func TestRunHaltsAndCountsRounds(t *testing.T) {
	g := graph.Cycle(5)
	nw := NewNetwork(g, func(v int) Machine { return &countdownMachine{left: 3} })
	stats, err := nw.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", stats.Rounds)
	}
	// Each of 5 nodes broadcasts on 2 ports for 3 rounds; receivers are
	// awake for all deliveries except those addressed to nodes that halted
	// in the same round as the sender... here everyone halts together in
	// round 3, so messages from rounds 1 and 2 are delivered (round-3
	// messages target halted nodes and are dropped).
	if stats.Messages != 5*2*2 {
		t.Fatalf("messages = %d, want 20", stats.Messages)
	}
}

func TestNodeInfoExposed(t *testing.T) {
	g := graph.Star(3)
	machines := make([]*countdownMachine, g.N())
	nw := NewNetwork(g, func(v int) Machine {
		machines[v] = &countdownMachine{left: 1}
		return machines[v]
	})
	if _, err := nw.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	hub := machines[0].info
	if hub.ID != 0 || hub.Degree != 3 {
		t.Fatalf("hub info %+v", hub)
	}
	for p, nb := range hub.Neighbor {
		if nb != g.Adj(0)[p].To {
			t.Fatal("neighbor ids disagree with port order")
		}
	}
	leaf := machines[2].info
	if leaf.Degree != 1 || leaf.Neighbor[0] != 0 {
		t.Fatalf("leaf info %+v", leaf)
	}
}

// pingPong: node 0 sends a counter; node 1 increments and returns it.
// Verifies one-round message latency and payload integrity.
type pingPong struct {
	id    int
	last  int
	turns int
}

func (m *pingPong) Init(info NodeInfo) { m.id = info.ID }

func (m *pingPong) Step(round int, in []Payload, out []Payload) bool {
	if m.id == 0 {
		if round == 1 {
			out[0] = 1
			return false
		}
		if in[0] != nil {
			m.last = in[0].(int)
			if m.last >= 6 {
				return true
			}
			out[0] = m.last + 1
		}
		return false
	}
	if in[0] != nil {
		v := in[0].(int)
		m.turns++
		out[0] = v + 1
		return v+1 >= 6
	}
	return false
}

func TestPingPongLatency(t *testing.T) {
	g := graph.Path(2)
	var zero *pingPong
	nw := NewNetwork(g, func(v int) Machine {
		m := &pingPong{}
		if v == 0 {
			zero = m
		}
		return m
	})
	stats, err := nw.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if zero.last != 6 {
		t.Fatalf("final counter %d, want 6", zero.last)
	}
	// 1 sends in rounds 1..6 alternating: total rounds = 7 (node 0 halts
	// one round after receiving 6).
	if stats.Rounds < 6 || stats.Rounds > 8 {
		t.Fatalf("rounds = %d", stats.Rounds)
	}
}

// finalWordMachine: node 0 halts in round 1 while sending a message; node
// 1 stays awake one more round and must still receive it (final messages
// of a halting node are delivered).
type finalWordMachine struct {
	id       int
	gotFinal bool
}

func (m *finalWordMachine) Init(info NodeInfo) { m.id = info.ID }

func (m *finalWordMachine) Step(round int, in []Payload, out []Payload) bool {
	if m.id == 0 {
		out[0] = "bye"
		return true
	}
	if round == 2 {
		m.gotFinal = in[0] == "bye"
		return true
	}
	return false
}

func TestFinalMessagesDelivered(t *testing.T) {
	g := graph.Path(2)
	var receiver *finalWordMachine
	nw := NewNetwork(g, func(v int) Machine {
		m := &finalWordMachine{}
		if v == 1 {
			receiver = m
		}
		return m
	})
	if _, err := nw.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if !receiver.gotFinal {
		t.Fatal("final message of a halting node was dropped")
	}
}

// staleMachine checks that a halted node's old messages are never
// redelivered: node 0 sends once and halts; node 1 waits three rounds and
// confirms it saw exactly one non-nil payload.
type staleMachine struct {
	id       int
	nonNil   int
	lifetime int
}

func (m *staleMachine) Init(info NodeInfo) { m.id = info.ID }

func (m *staleMachine) Step(round int, in []Payload, out []Payload) bool {
	if m.id == 0 {
		out[0] = "once"
		return true
	}
	if in[0] != nil {
		m.nonNil++
	}
	m.lifetime++
	return m.lifetime >= 4
}

func TestNoStaleRedelivery(t *testing.T) {
	g := graph.Path(2)
	var waiter *staleMachine
	nw := NewNetwork(g, func(v int) Machine {
		m := &staleMachine{}
		if v == 1 {
			waiter = m
		}
		return m
	})
	if _, err := nw.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if waiter.nonNil != 1 {
		t.Fatalf("saw %d messages, want exactly 1", waiter.nonNil)
	}
}

func TestMaxRoundsGuard(t *testing.T) {
	g := graph.Path(3)
	nw := NewNetwork(g, func(v int) Machine { return &countdownMachine{left: 1 << 30} })
	if _, err := nw.Run(Options{MaxRounds: 10}); err == nil {
		t.Fatal("runaway protocol not caught")
	}
}

func TestCustomIDs(t *testing.T) {
	g := graph.Path(2)
	ids := []int{100, 200}
	machines := make([]*countdownMachine, 2)
	nw := NewNetworkIDs(g, ids, func(v int) Machine {
		machines[v] = &countdownMachine{left: 1}
		return machines[v]
	})
	if _, err := nw.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if machines[0].info.ID != 100 || machines[0].info.Neighbor[0] != 200 {
		t.Fatal("custom identifiers not exposed")
	}
}

func TestEmptyNetwork(t *testing.T) {
	nw := NewNetwork(graph.New(0), func(int) Machine { panic("no vertices") })
	stats, err := nw.Run(Options{})
	if err != nil || stats.Rounds != 0 {
		t.Fatalf("empty network: %v %+v", err, stats)
	}
}

// schedulerProbe records the payloads it receives each round; used to show
// worker counts do not affect results.
type schedulerProbe struct {
	id     int
	digest []int
	rounds int
}

func (m *schedulerProbe) Init(info NodeInfo) { m.id = info.ID }

func (m *schedulerProbe) Step(round int, in []Payload, out []Payload) bool {
	sum := m.id
	for _, p := range in {
		if p != nil {
			sum += p.(int)
		}
	}
	m.digest = append(m.digest, sum)
	for p := range out {
		out[p] = sum
	}
	m.rounds++
	return m.rounds >= 8
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	g := graph.Torus2D(6, 6)
	run := func(workers int) [][]int {
		machines := make([]*schedulerProbe, g.N())
		nw := NewNetwork(g, func(v int) Machine {
			machines[v] = &schedulerProbe{}
			return machines[v]
		})
		if _, err := nw.Run(Options{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		out := make([][]int, g.N())
		for v, m := range machines {
			out[v] = m.digest
		}
		return out
	}
	seq := run(1)
	for _, workers := range []int{2, 4, 16, 100} {
		par := run(workers)
		for v := range seq {
			for r := range seq[v] {
				if seq[v][r] != par[v][r] {
					t.Fatalf("workers=%d: node %d round %d digest %d != %d",
						workers, v, r, par[v][r], seq[v][r])
				}
			}
		}
	}
}

func TestOnRoundCallback(t *testing.T) {
	g := graph.Cycle(4)
	var mu sync.Mutex
	var perRound []int
	nw := NewNetwork(g, func(v int) Machine { return &countdownMachine{left: 2} })
	_, err := nw.Run(Options{OnRound: func(round, delivered int) {
		mu.Lock()
		perRound = append(perRound, delivered)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(perRound) != 2 {
		t.Fatalf("callback fired %d times", len(perRound))
	}
	if perRound[0] != 8 {
		t.Fatalf("round 1 delivered %d, want 8", perRound[0])
	}
}
