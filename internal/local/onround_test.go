package local

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"tokendrop/internal/graph"
)

// instrumentedCountdown wraps flatCountdown with an in-flight StepShard
// counter, so a test can assert the OnRound quiescence contract: no
// worker is inside StepShard while the hook runs.
type instrumentedCountdown struct {
	*flatCountdown
	inFlight atomic.Int32
	steps    atomic.Int64
}

func (p *instrumentedCountdown) StepShard(round, shard int, verts []int32, recv, send []Word, halted []bool) {
	p.inFlight.Add(1)
	p.steps.Add(1)
	p.flatCountdown.StepShard(round, shard, verts, recv, send, halted)
	p.inFlight.Add(-1)
}

// TestOnRoundQuiescence pins the capture contract the snapshot layers
// build on: OnRound fires exactly once per round, with strictly
// consecutive round numbers, while every worker is parked — so the hook
// can read all program state without synchronization.
func TestOnRoundQuiescence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	csr := graph.CSRRandomRegular(64, 4, rng)
	prog := &instrumentedCountdown{flatCountdown: newFlatCountdown(csr, 6)}
	var rounds []int
	var stepsAtHook []int64
	stats, err := RunSharded(csr, prog, ShardedOptions{
		Shards: 4,
		OnRound: func(round, awake int) {
			if got := prog.inFlight.Load(); got != 0 {
				t.Errorf("round %d: %d StepShard calls in flight during OnRound", round, got)
			}
			if awake < 0 || awake > csr.N() {
				t.Errorf("round %d: awake = %d out of range", round, awake)
			}
			rounds = append(rounds, round)
			stepsAtHook = append(stepsAtHook, prog.steps.Load())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != stats.Rounds {
		t.Fatalf("OnRound fired %d times over %d rounds", len(rounds), stats.Rounds)
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("OnRound sequence %v is not 1..%d", rounds, stats.Rounds)
		}
	}
	// The step count observed by the hook never moves between the hook's
	// return and the next round's start: each round's hook sees every
	// step of rounds 1..r and none of round r+1.
	for i := 1; i < len(stepsAtHook); i++ {
		if stepsAtHook[i] <= stepsAtHook[i-1] {
			t.Fatalf("hook at round %d saw %d total steps, round %d saw %d",
				i, stepsAtHook[i-1], i+1, stepsAtHook[i])
		}
	}
}

// TestOnRoundStopInterplay: Stop is consulted after OnRound each round,
// and once it returns true neither hook fires again.
func TestOnRoundStopInterplay(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	csr := graph.CSRRandomRegular(32, 4, rng)
	prog := newFlatCountdown(csr, 100) // far more rounds than the stop cutoff
	var hookRounds, stopRounds []int
	const cutoff = 3
	stats, err := RunSharded(csr, prog, ShardedOptions{
		Shards: 2,
		OnRound: func(round, awake int) {
			hookRounds = append(hookRounds, round)
		},
		Stop: func(round int) bool {
			if len(hookRounds) == 0 || hookRounds[len(hookRounds)-1] != round {
				t.Errorf("Stop(%d) ran before that round's OnRound", round)
			}
			stopRounds = append(stopRounds, round)
			return round >= cutoff
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != cutoff {
		t.Fatalf("run ended after %d rounds, want %d", stats.Rounds, cutoff)
	}
	if len(hookRounds) != cutoff || len(stopRounds) != cutoff {
		t.Fatalf("OnRound fired %d times, Stop %d times, want %d each",
			len(hookRounds), len(stopRounds), cutoff)
	}
}
