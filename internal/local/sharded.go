package local

import (
	"fmt"
	"runtime"

	"tokendrop/internal/graph"
)

// This file implements the sharded flat engine, the second LOCAL runtime of
// the package. The goroutine-per-round Network above is the faithful,
// fully general simulator (arbitrary Go payloads); the sharded engine
// trades payload generality for throughput so that million-node games are
// practical:
//
//   - the topology is a graph.CSR, so adjacency is three flat arrays,
//   - messages are single bytes (Word; 0 means "no message") in two flat
//     arc-indexed buffers that alternate roles every round (double
//     buffering). Buffers are receiver-indexed: slot i is the inbox slot
//     of arc i's tail vertex, and the sender behind arc i writes it as
//     send[Rev[i]]. Receivers therefore scan their inbox sequentially and
//     the one unavoidable random memory access per message is a store,
//     which does not stall the pipeline the way a dependent load does.
//     There is no separate delivery phase,
//   - vertices are partitioned into arc-balanced shards, each owned by one
//     persistent worker goroutine; a round is one channel-synchronized
//     barrier, with no goroutine spawns and no allocations inside a round,
//   - node state lives in the FlatProgram as struct-of-arrays, not in
//     per-node machine objects.
//
// Determinism holds for the same reason as in Network: within a round a
// worker writes only the state and out-arcs of its own vertices and reads
// only the previous round's buffer, so the outcome is independent of
// scheduling and of the shard count.

// Word is a one-byte message payload of the sharded engine. Zero means "no
// message"; protocols encode their message alphabet in the remaining
// values. Every game protocol in this repository uses an alphabet of a few
// constant symbols (they are O(1)-bit CONGEST protocols), so a byte is not
// a restriction here — and the width matters: both round buffers of a
// million-node, degree-7 instance then fit in ~14 MB, so the one random
// access per delivered message usually hits the last-level cache.
type Word uint8

// FlatProgram is a distributed algorithm in struct-of-arrays form, stepped
// shard-by-shard by RunSharded. Implementations must be deterministic
// functions of their inputs, must only touch per-vertex state of vertices
// in the [lo, hi) range they are given, and must not retain the buffer
// slices across calls.
type FlatProgram interface {
	// InitShards is called once before round 1 with the vertex partition:
	// shard s owns vertices [bounds[s], bounds[s+1]). Programs size any
	// per-shard accumulators (move logs, counters) here.
	InitShards(bounds []int)

	// StepShard executes one synchronous round for the given awake
	// vertices (ascending, all owned by this shard; the engine removes
	// halted vertices from the list between rounds).
	//
	// For vertex v and port p (arc index i = Row[v]+p), the word received
	// this round is recv[i] (0 = nothing), and the program must store the
	// outgoing word for port i into send[Rev[i]] — for every port of
	// every stepped vertex, including explicit zeroes, since the slots
	// hold the vertex's words from two rounds ago. (A program that can
	// prove its words are unchanged since two rounds ago may skip the
	// stores; see the quiescence optimization in core's flat programs.)
	// Setting halted[v] = true halts v after this round; its final send
	// words are still delivered next round, and it is never stepped
	// again.
	StepShard(round, shard int, verts []int32, recv, send []Word, halted []bool)
}

// ShardedOptions configure a RunSharded execution.
type ShardedOptions struct {
	// MaxRounds aborts the run if some vertex is still awake after this
	// many rounds. Zero means 1<<20, as in Options.
	MaxRounds int
	// Shards is the number of worker goroutines (and state partitions).
	// Zero means runtime.GOMAXPROCS(0). The result does not depend on it.
	Shards int
	// OnRound, if non-nil, runs on the coordinating goroutine after every
	// round with the round number and how many vertices are still awake.
	OnRound func(round, awake int)
	// Stop, if non-nil, is consulted after every round; returning true
	// ends the run even though vertices are still awake (used by
	// throughput benchmarks and simulation-side termination oracles).
	Stop func(round int) bool
}

// ShardedStats summarizes a RunSharded execution.
type ShardedStats struct {
	Rounds int // rounds executed
	Shards int // shard count actually used
	Halted int // vertices halted when the run ended
}

// shardBounds partitions vertices 0..n-1 into contiguous shards balanced
// by arc count (vertex count alone would starve shards on skewed-degree
// graphs such as power-law workloads).
func shardBounds(csr *graph.CSR, shards int) []int {
	n := csr.N()
	bounds := make([]int, shards+1)
	total := csr.NumArcs()
	v := 0
	for s := 1; s < shards; s++ {
		target := int32(total * s / shards)
		for v < n && csr.Row[v] < target {
			v++
		}
		bounds[s] = v
	}
	bounds[shards] = n
	return bounds
}

// RunSharded initializes prog and executes synchronous rounds until every
// vertex has halted, MaxRounds is exceeded (an error), or Stop says so.
func RunSharded(csr *graph.CSR, prog FlatProgram, opt ShardedOptions) (ShardedStats, error) {
	n := csr.N()
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = 1 << 20
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	var stats ShardedStats
	if n == 0 {
		prog.InitShards([]int{0})
		return stats, nil
	}
	stats.Shards = shards
	bounds := shardBounds(csr, shards)
	prog.InitShards(bounds)

	arcs := csr.NumArcs()
	bufA := make([]Word, arcs)
	bufB := make([]Word, arcs)
	halted := make([]bool, n)

	// Each worker owns its shard's awake-vertex list (compacted as
	// vertices halt, so a round costs O(awake), not O(n)) and a scrub
	// ring of recently halted vertices whose two stale out-buffers must
	// be zeroed before they can be left alone for good.
	type scrubEntry struct {
		v         int32
		haltRound int32
	}
	awakeLists := make([][]int32, shards)
	scrubs := make([][]scrubEntry, shards)
	for s := 0; s < shards; s++ {
		list := make([]int32, bounds[s+1]-bounds[s])
		for k := range list {
			list[k] = int32(bounds[s] + k)
		}
		awakeLists[s] = list
	}

	type roundWork struct {
		round      int
		recv, send []Word
	}
	start := make([]chan roundWork, shards)
	done := make(chan int, shards)
	for s := 0; s < shards; s++ {
		start[s] = make(chan roundWork)
		go func(s int) {
			for w := range start[s] {
				// Scrub outboxes of recently halted vertices: a vertex that
				// halted in round r left words in both buffers (rounds r-1
				// and r); they become stale at rounds r+1 and r+2
				// respectively, which is exactly when this pass visits them.
				// The vertex's out-slots live at Rev[i] (receiver-indexed
				// buffers, possibly in other shards' vertex ranges); the
				// write is still exclusive because slot Rev[i] is only ever
				// written by the sender behind arc i — the halted vertex
				// this worker owns — and its neighbor only reads it.
				scrub := scrubs[s][:0]
				for _, e := range scrubs[s] {
					if int32(w.round)-e.haltRound > 2 {
						continue // both buffers scrubbed; drop the entry
					}
					a0, a1 := csr.ArcRange(int(e.v))
					for i := a0; i < a1; i++ {
						w.send[csr.Rev[i]] = 0
					}
					scrub = append(scrub, e)
				}
				scrubs[s] = scrub

				prog.StepShard(w.round, s, awakeLists[s], w.recv, w.send, halted)

				// Compact the awake list; newly halted vertices enter the
				// scrub ring.
				list := awakeLists[s][:0]
				for _, v := range awakeLists[s] {
					if halted[v] {
						scrubs[s] = append(scrubs[s], scrubEntry{v: v, haltRound: int32(w.round)})
					} else {
						list = append(list, v)
					}
				}
				awakeLists[s] = list
				done <- len(list)
			}
		}(s)
	}
	shutdown := func() {
		for s := 0; s < shards; s++ {
			close(start[s])
		}
	}

	recv, send := bufA, bufB
	for round := 1; ; round++ {
		if round > maxRounds {
			shutdown()
			awake := 0
			for _, h := range halted {
				if !h {
					awake++
				}
			}
			return stats, fmt.Errorf("local: %d vertices still awake after %d rounds", awake, maxRounds)
		}
		work := roundWork{round: round, recv: recv, send: send}
		for s := 0; s < shards; s++ {
			start[s] <- work
		}
		awake := 0
		for s := 0; s < shards; s++ {
			awake += <-done
		}
		stats.Rounds = round
		if opt.OnRound != nil {
			opt.OnRound(round, awake)
		}
		if awake == 0 || (opt.Stop != nil && opt.Stop(round)) {
			break
		}
		recv, send = send, recv
	}
	shutdown()
	for _, h := range halted {
		if h {
			stats.Halted++
		}
	}
	return stats, nil
}
