package local

import (
	"runtime"

	"tokendrop/internal/fault"
	"tokendrop/internal/graph"
)

// This file implements the sharded flat engine, the second LOCAL runtime of
// the package. The goroutine-per-round Network above is the faithful,
// fully general simulator (arbitrary Go payloads); the sharded engine
// trades payload generality for throughput so that million-node games are
// practical:
//
//   - the topology is a graph.CSR, so adjacency is three flat arrays,
//   - messages are single bytes (Word; 0 means "no message") in two flat
//     arc-indexed buffers that alternate roles every round (double
//     buffering). Buffers are receiver-indexed: slot i is the inbox slot
//     of arc i's tail vertex, and the sender behind arc i writes it as
//     send[Rev[i]]. Receivers therefore scan their inbox sequentially and
//     the one unavoidable random memory access per message is a store,
//     which does not stall the pipeline the way a dependent load does.
//     There is no separate delivery phase,
//   - vertices are partitioned into arc-balanced shards, each owned by one
//     persistent worker goroutine; a round is one channel-synchronized
//     barrier, with no goroutine spawns and no allocations inside a round,
//   - node state lives in the FlatProgram as struct-of-arrays, not in
//     per-node machine objects.
//
// Determinism holds for the same reason as in Network: within a round a
// worker writes only the state and out-arcs of its own vertices and reads
// only the previous round's buffer, so the outcome is independent of
// scheduling and of the shard count.

// Word is a one-byte message payload of the sharded engine. Zero means "no
// message"; protocols encode their message alphabet in the remaining
// values. Every game protocol in this repository uses an alphabet of a few
// constant symbols (they are O(1)-bit CONGEST protocols), so a byte is not
// a restriction here — and the width matters: both round buffers of a
// million-node, degree-7 instance then fit in ~14 MB, so the one random
// access per delivered message usually hits the last-level cache.
type Word uint8

// FlatProgram is a distributed algorithm in struct-of-arrays form, stepped
// shard-by-shard by RunSharded. Implementations must be deterministic
// functions of their inputs, must only touch per-vertex state of vertices
// in the [lo, hi) range they are given, and must not retain the buffer
// slices across calls.
type FlatProgram interface {
	// InitShards is called once before round 1 with the vertex partition:
	// shard s owns vertices [bounds[s], bounds[s+1]). Programs size any
	// per-shard accumulators (move logs, counters) here.
	InitShards(bounds []int)

	// StepShard executes one synchronous round for the given awake
	// vertices (ascending, all owned by this shard; the engine removes
	// halted vertices from the list between rounds).
	//
	// For vertex v and port p (arc index i = Row[v]+p), the word received
	// this round is recv[i] (0 = nothing), and the program must store the
	// outgoing word for port i into send[Rev[i]] — for every port of
	// every stepped vertex, including explicit zeroes, since the slots
	// hold the vertex's words from two rounds ago. (A program that can
	// prove its words are unchanged since two rounds ago may skip the
	// stores; see the quiescence optimization in core's flat programs.)
	// Setting halted[v] = true halts v after this round; its final send
	// words are still delivered next round, and it is never stepped
	// again.
	StepShard(round, shard int, verts []int32, recv, send []Word, halted []bool)
}

// ShardedOptions configure a RunSharded execution.
type ShardedOptions struct {
	// MaxRounds aborts the run if some vertex is still awake after this
	// many rounds. Zero means 1<<20, as in Options.
	MaxRounds int
	// Shards is the number of worker goroutines (and state partitions);
	// 0 means runtime.GOMAXPROCS(0). The result does not depend on it.
	// Session.Run ignores this field in favor of the session's worker
	// count.
	Shards int
	// OnRound, if non-nil, runs on the coordinating goroutine after every
	// round with the round number and how many vertices are still awake.
	//
	// Quiescence contract: OnRound fires at the round barrier, after every
	// worker has reported done for the round and before any worker is
	// started on the next one. The workers are parked for the whole call,
	// so the hook may read all program state — and the engine's halted
	// array — without synchronization and sees exactly the state after
	// `round` complete rounds. This is what makes OnRound a
	// crash-consistent snapshot point: the snapshot layers (core, orient,
	// assign, bounded) capture mid-solve state from this hook and nowhere
	// else. The hook must not retain references into program state past
	// its return, and must not call back into the session.
	OnRound func(round, awake int)
	// Stop, if non-nil, is consulted after every round; returning true
	// ends the run even though vertices are still awake (used by
	// throughput benchmarks and simulation-side termination oracles).
	Stop func(round int) bool
	// Fault, if non-nil, is the engine's FaultSiteRound failpoint,
	// visited once per round by the run coordinator (visit n = round n).
	// See fault.go for what each fault kind does; nil costs one nil
	// check per round and nothing else.
	Fault *fault.Site
}

// ShardedStats summarizes a RunSharded execution.
type ShardedStats struct {
	Rounds int // rounds executed
	Shards int // shard count actually used
	Halted int // vertices halted when the run ended
}

// RunSharded initializes prog and executes synchronous rounds until every
// vertex has halted, MaxRounds is exceeded (an error), or Stop says so.
// It is a one-shot Session (see session.go): callers that solve many
// games — the phase loops of the orientation and assignment layers —
// should hold a Session instead and amortize the worker pool and buffer
// construction across all of them.
func RunSharded(csr *graph.CSR, prog FlatProgram, opt ShardedOptions) (ShardedStats, error) {
	n := csr.N()
	if n == 0 {
		prog.InitShards([]int{0})
		return ShardedStats{}, nil
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	s := NewSession(shards)
	defer s.Close()
	return s.Run(csr, prog, opt)
}
