package local

import (
	"testing"

	"tokendrop/internal/graph"
)

// flatCountdown mirrors countdownMachine for the sharded engine: every
// vertex broadcasts its remaining count and halts when it reaches zero.
type flatCountdown struct {
	csr        *graph.CSR
	left       []int
	seen       [][]Word // per vertex: received words, rounds concatenated
	shardTotal []int64
}

func newFlatCountdown(csr *graph.CSR, left int) *flatCountdown {
	p := &flatCountdown{csr: csr, left: make([]int, csr.N()), seen: make([][]Word, csr.N())}
	for v := range p.left {
		p.left[v] = left
	}
	return p
}

func (p *flatCountdown) InitShards(bounds []int) {
	p.shardTotal = make([]int64, len(bounds)-1)
}

func (p *flatCountdown) total() int64 {
	var t int64
	for _, s := range p.shardTotal {
		t += s
	}
	return t
}

func (p *flatCountdown) StepShard(round, shard int, verts []int32, recv, send []Word, halted []bool) {
	for _, v32 := range verts {
		v := int(v32)
		a0, a1 := p.csr.ArcRange(v)
		for i := a0; i < a1; i++ {
			w := recv[i]
			p.seen[v] = append(p.seen[v], w)
			if w != 0 {
				p.shardTotal[shard]++
			}
		}
		for i := a0; i < a1; i++ {
			send[p.csr.Rev[i]] = Word(p.left[v])
		}
		p.left[v]--
		if p.left[v] <= 0 {
			halted[v] = true
		}
	}
}

func TestShardedHaltsAndCountsRounds(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Cycle(5))
	p := newFlatCountdown(csr, 3)
	stats, err := RunSharded(csr, p, ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", stats.Rounds)
	}
	if stats.Halted != 5 {
		t.Fatalf("halted = %d, want 5", stats.Halted)
	}
	// As in TestRunHaltsAndCountsRounds: everyone halts together in round
	// 3, so only the broadcasts of rounds 1 and 2 are observed.
	if got := p.total(); got != 5*2*2 {
		t.Fatalf("delivered = %d, want 20", got)
	}
}

// flatFinalWord: vertex 0 sends once in round 1 and halts; vertex 1 stays
// awake four rounds and must see exactly one non-zero word — the final
// message is delivered, and nothing stale is ever redelivered.
type flatFinalWord struct {
	csr      *graph.CSR
	lifetime int
	nonZero  int
}

func (p *flatFinalWord) InitShards(bounds []int) {}

func (p *flatFinalWord) StepShard(round, shard int, verts []int32, recv, send []Word, halted []bool) {
	for _, v32 := range verts {
		v := int(v32)
		a0, a1 := p.csr.ArcRange(v)
		if v == 0 {
			for i := a0; i < a1; i++ {
				send[p.csr.Rev[i]] = 42
			}
			halted[v] = true
			continue
		}
		for i := a0; i < a1; i++ {
			if recv[i] != 0 {
				p.nonZero++
			}
			send[p.csr.Rev[i]] = 0
		}
		p.lifetime++
		if p.lifetime >= 4 {
			halted[v] = true
		}
	}
}

func TestShardedFinalWordNoStaleRedelivery(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Path(2))
	p := &flatFinalWord{csr: csr}
	if _, err := RunSharded(csr, p, ShardedOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if p.nonZero != 1 {
		t.Fatalf("receiver saw %d non-zero words, want exactly 1", p.nonZero)
	}
}

// flatDigest mirrors schedulerProbe: each vertex sums its id with the
// received words and broadcasts the sum, recording the per-round digests.
type flatDigest struct {
	csr    *graph.CSR
	rounds int
	digest [][]Word
}

func (p *flatDigest) InitShards(bounds []int) {}

func (p *flatDigest) StepShard(round, shard int, verts []int32, recv, send []Word, halted []bool) {
	for _, v32 := range verts {
		v := int(v32)
		a0, a1 := p.csr.ArcRange(v)
		sum := Word(v)
		for i := a0; i < a1; i++ {
			sum += recv[i]
		}
		p.digest[v] = append(p.digest[v], sum)
		for i := a0; i < a1; i++ {
			send[p.csr.Rev[i]] = sum
		}
		if round >= p.rounds {
			halted[v] = true
		}
	}
}

func TestShardedDeterminismAcrossShardCounts(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Torus2D(6, 6))
	run := func(shards int) [][]Word {
		p := &flatDigest{csr: csr, rounds: 8, digest: make([][]Word, csr.N())}
		if _, err := RunSharded(csr, p, ShardedOptions{Shards: shards}); err != nil {
			t.Fatal(err)
		}
		return p.digest
	}
	seq := run(1)
	for _, shards := range []int{2, 3, 4, 16, 100} {
		par := run(shards)
		for v := range seq {
			for r := range seq[v] {
				if seq[v][r] != par[v][r] {
					t.Fatalf("shards=%d: vertex %d round %d digest %d != %d",
						shards, v, r, par[v][r], seq[v][r])
				}
			}
		}
	}
}

func TestShardedMaxRoundsGuard(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Path(3))
	p := newFlatCountdown(csr, 1<<30)
	if _, err := RunSharded(csr, p, ShardedOptions{MaxRounds: 10}); err == nil {
		t.Fatal("runaway protocol not caught")
	}
}

func TestShardedEmptyGraph(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.New(0))
	stats, err := RunSharded(csr, newFlatCountdown(csr, 1), ShardedOptions{})
	if err != nil || stats.Rounds != 0 {
		t.Fatalf("empty graph: %v %+v", err, stats)
	}
}

func TestShardedStopCallback(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Cycle(4))
	p := newFlatCountdown(csr, 1<<20)
	var rounds []int
	stats, err := RunSharded(csr, p, ShardedOptions{
		Shards:  2,
		OnRound: func(round, awake int) { rounds = append(rounds, round) },
		Stop:    func(round int) bool { return round >= 5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 5 || len(rounds) != 5 {
		t.Fatalf("stats %+v, callbacks %v", stats, rounds)
	}
}

// TestShardedStressBarrier runs many tiny graphs with shard counts above
// the vertex count and assorted halting patterns; under -race this
// flushes synchronization bugs in the persistent-worker barrier.
func TestShardedStressBarrier(t *testing.T) {
	for n := 1; n <= 24; n++ {
		var g *graph.Graph
		switch n % 3 {
		case 0:
			g = graph.Path(n)
		case 1:
			g = graph.Star(n)
		default:
			g = graph.Complete(n%6 + 2)
		}
		csr := graph.NewCSRFromGraph(g)
		p := newFlatCountdown(csr, n%5+1)
		if _, err := RunSharded(csr, p, ShardedOptions{Shards: 16}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestShardBoundsCoverAndBalance checks the arc-balanced partition is a
// partition (monotone, covering) on a skewed-degree graph.
func TestShardBoundsCoverAndBalance(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Star(1000))
	for _, shards := range []int{1, 2, 3, 7, 16} {
		bounds := shardBoundsInto(make([]int, shards+1), csr, shards)
		if bounds[0] != 0 || bounds[shards] != csr.N() {
			t.Fatalf("shards=%d: bounds %v do not cover", shards, bounds)
		}
		for s := 0; s < shards; s++ {
			if bounds[s] > bounds[s+1] {
				t.Fatalf("shards=%d: bounds %v not monotone", shards, bounds)
			}
		}
	}
}
