package local

import (
	"errors"
	"testing"

	"tokendrop/internal/fault"
	"tokendrop/internal/graph"
)

// TestInjectedCrashSurfacesAndPoolSurvives pins the self-healing
// contract: a KindCrash fired at the round barrier panics one worker,
// Run returns a *WorkerCrashError in the ErrInjected chain with the
// crash round, and the same session then completes a clean re-run
// bit-identically to a never-faulted one.
func TestInjectedCrashSurfacesAndPoolSurvives(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Torus2D(6, 6))
	clean := func() [][]Word {
		p := &flatDigest{csr: csr, rounds: 8, digest: make([][]Word, csr.N())}
		if _, err := RunSharded(csr, p, ShardedOptions{Shards: 3}); err != nil {
			t.Fatal(err)
		}
		return p.digest
	}
	want := clean()

	s := NewSession(3)
	defer s.Close()
	reg := fault.NewRegistry(7)
	site := reg.Arm(FaultSiteRound, fault.Schedule{Kind: fault.KindCrash, TriggerAt: 4})

	p := &flatDigest{csr: csr, rounds: 8, digest: make([][]Word, csr.N())}
	stats, err := s.Run(csr, p, ShardedOptions{Fault: site})
	var wce *WorkerCrashError
	if !errors.As(err, &wce) {
		t.Fatalf("faulted run: err = %v, want WorkerCrashError", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("crash error %v does not match ErrInjected", err)
	}
	if wce.Round != 4 || wce.Shard < 0 || wce.Shard >= 3 {
		t.Fatalf("crash = %+v, want round 4, shard in [0,3)", wce)
	}
	if stats.Rounds != 3 {
		t.Fatalf("stats.Rounds = %d after crash in round 4, want 3 (last complete round)", stats.Rounds)
	}
	if tr := reg.Trace(); len(tr) != 1 || tr[0].Visit != 4 {
		t.Fatalf("trace = %+v, want one fire at visit 4", tr)
	}

	// The pool self-healed: the same session re-runs cleanly (the site
	// keeps counting visits, so TriggerAt=4 never fires again).
	p2 := &flatDigest{csr: csr, rounds: 8, digest: make([][]Word, csr.N())}
	if _, err := s.Run(csr, p2, ShardedOptions{Fault: site}); err != nil {
		t.Fatalf("re-run on healed session: %v", err)
	}
	for v := range want {
		for r := range want[v] {
			if p2.digest[v][r] != want[v][r] {
				t.Fatalf("healed re-run diverges at vertex %d round %d", v, r)
			}
		}
	}
}

// TestInjectedErrorAbortsAtQuiescentBarrier pins KindError semantics:
// the run aborts before the scheduled round is dispatched, no worker
// panics, and the reported rounds are the last complete round.
func TestInjectedErrorAbortsAtQuiescentBarrier(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Cycle(8))
	reg := fault.NewRegistry(1)
	site := reg.Arm(FaultSiteRound, fault.Schedule{Kind: fault.KindError, TriggerAt: 3})
	p := newFlatCountdown(csr, 10)
	stats, err := RunSharded(csr, p, ShardedOptions{Shards: 2, Fault: site})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected chain", err)
	}
	var wce *WorkerCrashError
	if errors.As(err, &wce) {
		t.Fatalf("KindError surfaced as a worker crash: %v", err)
	}
	if stats.Rounds != 2 {
		t.Fatalf("stats.Rounds = %d, want 2 complete rounds before the abort", stats.Rounds)
	}
}

// TestInjectedStallChangesNothing pins KindStall: a slow shard must not
// change any result (the barrier tolerates arbitrary skew).
func TestInjectedStallChangesNothing(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Torus2D(5, 5))
	run := func(site *fault.Site) [][]Word {
		p := &flatDigest{csr: csr, rounds: 6, digest: make([][]Word, csr.N())}
		if _, err := RunSharded(csr, p, ShardedOptions{Shards: 4, Fault: site}); err != nil {
			t.Fatal(err)
		}
		return p.digest
	}
	want := run(nil)
	reg := fault.NewRegistry(3)
	got := run(reg.Arm(FaultSiteRound, fault.Schedule{Kind: fault.KindStall, Every: 2, Delay: 2e6}))
	if len(reg.Trace()) == 0 {
		t.Fatal("stall schedule never fired")
	}
	for v := range want {
		for r := range want[v] {
			if got[v][r] != want[v][r] {
				t.Fatalf("stalled run diverges at vertex %d round %d", v, r)
			}
		}
	}
}

// panicAtRound is a program with an organic bug: it panics mid-step in
// a configured round on whichever shard owns vertex 0.
type panicAtRound struct {
	flatCountdown
	at int
}

func (p *panicAtRound) StepShard(round, shard int, verts []int32, recv, send []Word, halted []bool) {
	if round == p.at && len(verts) > 0 && verts[0] == 0 {
		panic("organic program bug")
	}
	p.flatCountdown.StepShard(round, shard, verts, recv, send, halted)
}

// TestOrganicPanicRecovered pins that a program bug no longer kills the
// process: it surfaces as a WorkerCrashError (outside the ErrInjected
// chain) and the session stays usable.
func TestOrganicPanicRecovered(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Cycle(6))
	s := NewSession(2)
	defer s.Close()
	p := &panicAtRound{flatCountdown: *newFlatCountdown(csr, 5), at: 2}
	_, err := s.Run(csr, p, ShardedOptions{})
	var wce *WorkerCrashError
	if !errors.As(err, &wce) {
		t.Fatalf("err = %v, want WorkerCrashError", err)
	}
	if wce.Round != 2 || wce.Value != "organic program bug" {
		t.Fatalf("crash = %+v", wce)
	}
	if errors.Is(err, fault.ErrInjected) {
		t.Fatal("organic panic matched ErrInjected")
	}
	if _, err := s.Run(csr, newFlatCountdown(csr, 3), ShardedOptions{}); err != nil {
		t.Fatalf("re-run after organic crash: %v", err)
	}
}

// TestCrashVictimDeterministic pins that the same registry seed crashes
// the same shard in the same round across runs.
func TestCrashVictimDeterministic(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Torus2D(6, 6))
	crash := func(seed int64) int {
		reg := fault.NewRegistry(seed)
		site := reg.Arm(FaultSiteRound, fault.Schedule{Kind: fault.KindCrash, TriggerAt: 3})
		p := &flatDigest{csr: csr, rounds: 8, digest: make([][]Word, csr.N())}
		_, err := RunSharded(csr, p, ShardedOptions{Shards: 8, Fault: site})
		var wce *WorkerCrashError
		if !errors.As(err, &wce) {
			t.Fatalf("err = %v, want WorkerCrashError", err)
		}
		return wce.Shard
	}
	if a, b := crash(11), crash(11); a != b {
		t.Fatalf("same seed picked shards %d and %d", a, b)
	}
}

// TestDisabledFaultRunBitMatches pins that threading a nil site through
// the options changes nothing.
func TestDisabledFaultRunBitMatches(t *testing.T) {
	csr := graph.NewCSRFromGraph(graph.Torus2D(6, 6))
	run := func(site *fault.Site) [][]Word {
		p := &flatDigest{csr: csr, rounds: 8, digest: make([][]Word, csr.N())}
		if _, err := RunSharded(csr, p, ShardedOptions{Shards: 2, Fault: site}); err != nil {
			t.Fatal(err)
		}
		return p.digest
	}
	want, got := run(nil), run(fault.NewRegistry(1).Site(FaultSiteRound))
	for v := range want {
		for r := range want[v] {
			if got[v][r] != want[v][r] {
				t.Fatalf("disarmed-site run diverges at vertex %d round %d", v, r)
			}
		}
	}
}
