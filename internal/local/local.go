// Package local implements a faithful simulator for the LOCAL model of
// distributed computing (Linial 1992, Peleg 2000), the model of Section 3
// of the paper: a port-numbered synchronous network in which computation
// proceeds in rounds, message sizes are unbounded, every node has a unique
// identifier, and a node initially knows only its own ID, its degree, and
// the IDs of its neighbors.
//
// Each graph vertex runs a Machine — a deterministic state machine stepped
// once per round. Within a round all machines step logically in parallel:
// the runner executes them on a pool of goroutines with a barrier between
// rounds, which is both the natural Go realization of synchronous message
// passing and deterministic, because machines communicate exclusively
// through the round's double-buffered port arrays.
package local

import (
	"fmt"
	"runtime"
	"sync"

	"tokendrop/internal/graph"
)

// Payload is an arbitrary message payload. The LOCAL model places no bound
// on message size, so payloads are ordinary Go values; algorithms in this
// repository use small immutable structs.
type Payload any

// Sized is implemented by payloads that can report their encoded size in
// bits. The LOCAL model never needs it, but every protocol in this
// repository happens to use O(log n)-bit messages — i.e. they also run in
// the CONGEST model — and the runner can verify that claim when
// Options.MeasureBits is set.
type Sized interface {
	Bits() int
}

// NodeInfo is the initial knowledge of a node in the LOCAL model.
type NodeInfo struct {
	// ID is the node's unique identifier (the graph vertex index; any
	// injective relabeling would do, and tests exercise relabelings).
	ID int
	// Degree is the number of incident edges, i.e. the number of ports.
	Degree int
	// Neighbor[p] is the ID of the neighbor reached through port p.
	Neighbor []int
}

// Machine is the per-node algorithm. Implementations must be deterministic
// functions of their inputs (seeded randomness is threaded through machine
// construction, never drawn from global state), which makes every run of
// the simulator reproducible regardless of goroutine scheduling.
type Machine interface {
	// Init is called once, before the first round, with the node's initial
	// knowledge. The machine may record info; the slice is owned by the
	// caller and must be copied if retained beyond Init. (All machines in
	// this repository retain the NodeInfo wholesale, which is safe because
	// the runner allocates one per node.)
	Init(info NodeInfo)

	// Step executes one synchronous round. in[p] is the payload received
	// on port p this round (nil if the neighbor sent nothing or has
	// halted); the machine writes its outgoing messages into out[p]
	// (pre-zeroed, one slot per port). Returning true halts the node: it
	// will not be stepped again and anything addressed to it is dropped.
	// A machine that wants neighbors to know it is leaving must say so in
	// its final messages, exactly as a real LOCAL algorithm would.
	Step(round int, in []Payload, out []Payload) (halt bool)
}

// Stats summarizes a run.
type Stats struct {
	Rounds   int   // rounds executed until every node halted
	Messages int64 // total messages delivered (non-nil payloads)
	Halted   int   // nodes that halted (== n on success)
	// MaxMessageBits is the largest delivered payload in bits, when
	// Options.MeasureBits is set; -1 marks a payload that does not
	// implement Sized (size unknown — LOCAL-only protocol).
	MaxMessageBits int
}

// Options configure a run.
type Options struct {
	// MaxRounds aborts the run if some node is still awake after this many
	// rounds; it guards against non-terminating protocols in tests.
	// Zero means a generous default of 1<<20 rounds.
	MaxRounds int
	// Workers is the number of goroutines stepping machines within a
	// round. Zero means runtime.GOMAXPROCS(0). One yields a fully
	// sequential execution (useful to demonstrate schedule independence).
	Workers int
	// OnRound, if non-nil, is invoked after every round with the round
	// number (1-based) and the number of messages delivered in that round.
	// It runs on the coordinating goroutine.
	OnRound func(round int, delivered int)
	// Stop, if non-nil, is consulted at the barrier after every round; a
	// true return ends the run even though machines are still awake. It is
	// a simulation-side termination oracle for protocols whose nodes
	// cannot detect global convergence locally (e.g. best-response
	// dynamics); it runs on the coordinating goroutine, where reading
	// machine state is race-free.
	Stop func(round int) bool
	// MeasureBits tracks the largest delivered payload size (see
	// Stats.MaxMessageBits and the Sized interface).
	MeasureBits bool
}

// Network binds machines to the vertices of a graph and runs them.
type Network struct {
	g        *graph.Graph
	machines []Machine
	// revPort[v][p] is the port at neighbor u = adj(v)[p].To that leads
	// back to v; precomputed so message routing is pure array indexing.
	revPort [][]int
	ids     []int // vertex -> exposed identifier
}

// NewNetwork creates a network over g where vertex v runs factory(v).
// IDs exposed to the machines are the vertex indices.
func NewNetwork(g *graph.Graph, factory func(v int) Machine) *Network {
	return NewNetworkIDs(g, nil, factory)
}

// NewNetworkIDs is NewNetwork with an explicit injective identifier
// assignment ids[v] (nil means identity). Lower-bound experiments use this
// to check that algorithm outputs depend only on the structure the model
// says they may depend on.
func NewNetworkIDs(g *graph.Graph, ids []int, factory func(v int) Machine) *Network {
	n := g.N()
	if ids == nil {
		ids = make([]int, n)
		for v := range ids {
			ids[v] = v
		}
	} else if len(ids) != n {
		panic(fmt.Sprintf("local: got %d ids for %d vertices", len(ids), n))
	}
	nw := &Network{
		g:        g,
		machines: make([]Machine, n),
		revPort:  make([][]int, n),
		ids:      ids,
	}
	// Precompute reverse ports: for the arc v --(port p)--> u, find the
	// port q at u with adj(u)[q].To == v.
	portOf := make([]map[int]int, n)
	for v := 0; v < n; v++ {
		adj := g.Adj(v)
		portOf[v] = make(map[int]int, len(adj))
		for p, a := range adj {
			portOf[v][a.To] = p
		}
	}
	for v := 0; v < n; v++ {
		adj := g.Adj(v)
		nw.revPort[v] = make([]int, len(adj))
		for p, a := range adj {
			nw.revPort[v][p] = portOf[a.To][v]
		}
	}
	for v := 0; v < n; v++ {
		nw.machines[v] = factory(v)
	}
	return nw
}

// Machine returns the machine at vertex v (for output extraction after a
// run).
func (nw *Network) Machine(v int) Machine { return nw.machines[v] }

// Run initializes every machine and executes synchronous rounds until all
// machines halt. It returns the run statistics or an error if MaxRounds is
// exceeded.
func (nw *Network) Run(opt Options) (Stats, error) {
	n := nw.g.N()
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = 1 << 20
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n && n > 0 {
		workers = n
	}

	// Double-buffered port arrays: curIn[v][p] read this round,
	// nextOut[v][p] written this round and routed into curIn afterwards.
	curIn := make([][]Payload, n)
	nextOut := make([][]Payload, n)
	for v := 0; v < n; v++ {
		d := nw.g.Degree(v)
		curIn[v] = make([]Payload, d)
		nextOut[v] = make([]Payload, d)
		info := NodeInfo{ID: nw.ids[v], Degree: d, Neighbor: make([]int, d)}
		for p, a := range nw.g.Adj(v) {
			info.Neighbor[p] = nw.ids[a.To]
		}
		nw.machines[v].Init(info)
	}

	halted := make([]bool, n)
	haltedAt := make([]int, n) // round in which the node halted
	var stats Stats
	awake := n
	if n == 0 {
		return stats, nil
	}

	step := func(v, round int) {
		if halted[v] {
			return
		}
		out := nextOut[v]
		for p := range out {
			out[p] = nil
		}
		if nw.machines[v].Step(round, curIn[v], out) {
			halted[v] = true
			haltedAt[v] = round
		}
	}

	for round := 1; awake > 0; round++ {
		if round > maxRounds {
			return stats, fmt.Errorf("local: %d nodes still awake after %d rounds", awake, maxRounds)
		}
		// Phase 1: step all awake machines in parallel.
		if workers == 1 {
			for v := 0; v < n; v++ {
				step(v, round)
			}
		} else {
			var wg sync.WaitGroup
			chunk := (n + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for v := lo; v < hi; v++ {
						step(v, round)
					}
				}(lo, hi)
			}
			wg.Wait()
		}
		// Phase 2: route nextOut into curIn along reverse ports and update
		// bookkeeping. A node that halted during this round still gets its
		// final messages delivered (it wrote them in its last Step); its
		// out-buffer is cleared afterwards so nothing stale is ever
		// redelivered. Receiver-major iteration reads each sender slot
		// exactly once, so this phase could also run in parallel; it is
		// cheap enough sequentially and keeps message accounting trivial.
		delivered := 0
		stillAwake := 0
		for v := 0; v < n; v++ {
			in := curIn[v]
			if halted[v] {
				for p := range in {
					in[p] = nil
				}
				continue
			}
			stillAwake++
			adj := nw.g.Adj(v)
			for p := range in {
				u := adj[p].To
				msg := nextOut[u][nw.revPort[v][p]]
				in[p] = msg
				if msg != nil {
					delivered++
					if opt.MeasureBits && stats.MaxMessageBits >= 0 {
						if s, ok := msg.(Sized); ok {
							if b := s.Bits(); b > stats.MaxMessageBits {
								stats.MaxMessageBits = b
							}
						} else {
							stats.MaxMessageBits = -1
						}
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			if halted[v] && haltedAt[v] == round {
				out := nextOut[v]
				for p := range out {
					out[p] = nil
				}
			}
		}
		awake = stillAwake
		stats.Rounds = round
		stats.Messages += int64(delivered)
		if opt.OnRound != nil {
			opt.OnRound(round, delivered)
		}
		if opt.Stop != nil && opt.Stop(round) {
			break
		}
	}
	stats.Halted = n - awake
	return stats, nil
}
