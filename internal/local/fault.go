package local

import "fmt"

// This file is the sharded engine's side of the failure model
// (ARCHITECTURE.md §"Failure model and recovery"). Two mechanisms
// compose:
//
//   - The worker pool self-heals: any panic on a worker's round path —
//     injected or organic (a buggy program) — is recovered at the
//     goroutine boundary, the barrier still completes, the worker
//     respawns, and Run returns a *WorkerCrashError instead of killing
//     the process. The session remains usable; the crashed run's
//     program state is undefined (a shard died mid-step), which is why
//     recovery means re-running, not patching — the snapshot layer in
//     internal/core resumes from the last quiescent capture and the
//     result bit-matches an uninterrupted run.
//
//   - ShardedOptions.Fault names the engine's one injection point,
//     FaultSiteRound: the coordinator visits it once per round, so site
//     visit numbers are round numbers and a TriggerAt schedule crashes
//     a deterministic round. KindCrash panics one seeded-chosen worker
//     mid-round (exercising the recovery path above); KindStall sleeps
//     that worker, which must not change any result (the barrier
//     already tolerates arbitrary shard skew); KindError aborts the run
//     at the quiescent barrier without touching any worker.
//
// Both are free when unused: the per-round site visit is a nil check,
// and the goroutine-boundary recover costs nothing until a panic
// actually unwinds — the warmed AllocsPerRun == 0 pins and the
// td-benchgate throughput gate both run with this code compiled in.

// FaultSiteRound is the engine's failpoint, visited by the run
// coordinator once per round before the round is dispatched (visit n =
// round n). Arm it through the fault.Registry wired into
// core.ShardedSolveOptions.Fault, or directly via ShardedOptions.Fault.
const FaultSiteRound = "engine/round"

// WorkerCrashError reports that a worker goroutine panicked during a
// round — an injected crash or an organic program bug. The barrier
// completed, the worker respawned, and the session remains usable, but
// the run's program state is undefined and the caller must re-run
// (typically resuming from a snapshot; see core.ShardedSolveOptions
// AutoResume). If several shards crashed in the same round, the lowest
// shard is reported.
type WorkerCrashError struct {
	// Shard is the worker that crashed.
	Shard int
	// Round is the round being executed when it crashed.
	Round int
	// Value is the recovered panic value; for injected crashes it is a
	// *fault.Panic.
	Value any
}

// Error describes the crash.
func (e *WorkerCrashError) Error() string {
	return fmt.Sprintf("local: shard %d crashed in round %d: %v", e.Shard, e.Round, e.Value)
}

// Unwrap exposes the panic value's error chain, so an injected crash
// matches errors.Is(err, fault.ErrInjected).
func (e *WorkerCrashError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

var _ error = (*WorkerCrashError)(nil)
