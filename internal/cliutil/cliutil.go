// Package cliutil holds the flag conventions shared by every cmd/*
// binary: the -version flag and the repo-standard -shards flag, so the
// binaries agree on wording and behavior instead of drifting copy by
// copy.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
)

// Version returns the one-line version string every binary prints for
// -version: the module version and VCS revision when the build recorded
// them (builds from a git checkout do), plus the Go toolchain.
func Version() string {
	version, revision, dirty := "(devel)", "", ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
	}
	if len(revision) > 12 {
		revision = revision[:12]
	}
	if revision != "" {
		return fmt.Sprintf("tokendrop %s (%s%s, %s)", version, revision, dirty, runtime.Version())
	}
	return fmt.Sprintf("tokendrop %s (%s)", version, runtime.Version())
}

// VersionFlag registers the conventional -version flag on the default
// flag set. Call HandleVersionFlag with the returned pointer right
// after flag.Parse.
func VersionFlag() *bool {
	return flag.Bool("version", false, "print version information and exit")
}

// HandleVersionFlag prints the version line and exits 0 when the
// -version flag was given; a no-op otherwise.
func HandleVersionFlag(show *bool) {
	if *show {
		fmt.Println(Version())
		os.Exit(0)
	}
}

// ShardsFlag registers the conventional -shards flag with the
// repo-standard wording, shared by every binary that runs the sharded
// engine.
func ShardsFlag() *int {
	return flag.Int("shards", 0, "sharded engine worker count (0 = runtime.GOMAXPROCS(0), i.e. one worker per core)")
}
