package cliutil

import (
	"strings"
	"testing"
)

func TestVersionShape(t *testing.T) {
	v := Version()
	if !strings.HasPrefix(v, "tokendrop ") {
		t.Fatalf("version line %q does not name the module", v)
	}
	if !strings.Contains(v, "go1") {
		t.Fatalf("version line %q does not name the toolchain", v)
	}
}
