package hypergame

import (
	"fmt"
	"math/rand"
	"sort"

	"tokendrop/internal/graph"
	"tokendrop/internal/local"
)

// Distributed solver for the hypergraph token dropping game (Section 7.1,
// Theorem 7.1). The LOCAL communication network is the incidence graph:
// every hyperedge becomes a relay node adjacent to its endpoints — exactly
// the customer/server network of the assignment problem, where a customer
// relays between the servers it is connected to.
//
// Protocol (single-communication-round granularity; compare the flat
// proposal algorithm in package core):
//
//   - a head server announces its occupancy to each hyperedge it heads
//     every round; the relay forwards the latest value to the hyperedge's
//     children every round (a two-round information lag),
//   - an unoccupied server with a live parent channel that relays
//     "occupied" sends a request up that channel and keeps it outstanding
//     until it resolves (at most one request in flight per server); the
//     request resolves when the token arrives or when the channel's
//     relayed occupancy turns false — the relay forwards requests only
//     while its view of the head is "occupied" and drops its pending
//     request the moment that view turns false, and the child's view lags
//     the relay's by exactly one round, so once the child observes
//     "unoccupied" no grant for the old request can exist anywhere,
//   - a relay forwards one pending child request to its head every round
//     until the request resolves: the head grants the hyperedge (the relay
//     routes the token to the pending child and the hyperedge is
//     consumed), or the head's relayed occupancy turns false,
//   - a head holding its token since the previous round grants it to
//     exactly one requesting hyperedge per round,
//   - servers terminate by the Section 4.1 rules lifted to hyperedges
//     (occupied with no live headed channel / unoccupied with no live
//     parent channel); relays terminate when consumed, when their head
//     leaves, or when all their children have left. Terminations say
//     goodbye on live ports, removing the node from the game.

type sAnnounce struct{ Occupied bool }
type sRequest struct{}
type sGrant struct{}
type sLeave struct{}
type cAnnounce struct{ Occupied bool }
type cRequest struct{}
type cGrant struct{}
type cLeave struct{}

type portRole int8

const (
	roleBystander portRole = iota
	roleHead               // server heads this hyperedge
	roleChild              // server is a child (one level below the head)
)

// serverMachine runs on an original game vertex.
type serverMachine struct {
	vertex int
	role   []portRole
	tie    int // 0 = first port, 1 = seeded random
	rng    *rand.Rand

	occupied  bool
	portDead  []bool
	chanOcc   []bool
	requested int // child port with an outstanding request, -1 if none
	active    int
}

// relayMachine runs on a hyperedge node.
type relayMachine struct {
	edgeID   int
	headPort int
	childPts []int
	vertexAt []int // per port: original vertex id

	headOcc  bool
	pending  int // child port of the pending request, -1 if none
	consumed bool
	portDead []bool

	moves []Move
}

func (m *serverMachine) Init(info local.NodeInfo) {
	m.portDead = make([]bool, info.Degree)
	m.chanOcc = make([]bool, info.Degree)
	m.requested = -1
	for p, r := range m.role {
		if r == roleBystander {
			m.portDead[p] = true
		}
	}
}

func (m *serverMachine) pick(eligible []bool) int {
	if m.tie == 0 {
		for p, ok := range eligible {
			if ok {
				return p
			}
		}
		return -1
	}
	count, choice := 0, -1
	for p, ok := range eligible {
		if !ok {
			continue
		}
		count++
		if m.rng.Intn(count) == 0 {
			choice = p
		}
	}
	return choice
}

func (m *serverMachine) Step(round int, in []local.Payload, out []local.Payload) bool {
	wasOccupied := m.occupied
	var requests []bool
	for p, raw := range in {
		if raw == nil {
			continue
		}
		switch msg := raw.(type) {
		case cLeave:
			m.portDead[p] = true
			m.chanOcc[p] = false
		case cAnnounce:
			if m.role[p] != roleChild {
				panic(fmt.Sprintf("hypergame: server %d got a child announce on a %d port", m.vertex, m.role[p]))
			}
			m.chanOcc[p] = msg.Occupied
		case cGrant:
			if m.occupied {
				panic(fmt.Sprintf("hypergame: server %d received a second token", m.vertex))
			}
			if p != m.requested {
				panic(fmt.Sprintf("hypergame: server %d granted through a channel it never requested", m.vertex))
			}
			m.occupied = true
			m.portDead[p] = true
			m.chanOcc[p] = false
		case cRequest:
			if m.role[p] != roleHead {
				panic(fmt.Sprintf("hypergame: server %d got a request on a non-head port", m.vertex))
			}
			if requests == nil {
				requests = make([]bool, len(in))
			}
			requests[p] = !m.portDead[p]
		default:
			panic(fmt.Sprintf("hypergame: server %d got unexpected payload %T", m.vertex, raw))
		}
	}

	// Resolve the outstanding request: token arrived, channel died, or the
	// channel's relayed occupancy turned false (after which no grant for
	// it can exist — see the package comment).
	if m.requested >= 0 && (m.occupied || m.portDead[m.requested] || !m.chanOcc[m.requested]) {
		m.requested = -1
	}

	grantPort := -1
	if wasOccupied && requests != nil {
		grantPort = m.pick(requests)
	}
	if grantPort >= 0 {
		m.occupied = false
		m.portDead[grantPort] = true
	}

	requestPort := -1
	if !m.occupied && m.requested < 0 {
		eligible := make([]bool, len(in))
		any := false
		for p := range eligible {
			if m.role[p] == roleChild && !m.portDead[p] && m.chanOcc[p] {
				eligible[p] = true
				any = true
			}
		}
		if any {
			requestPort = m.pick(eligible)
			m.requested = requestPort
			m.active++
		}
	}

	liveHead, liveChild := 0, 0
	for p, dead := range m.portDead {
		if dead {
			continue
		}
		switch m.role[p] {
		case roleHead:
			liveHead++
		case roleChild:
			liveChild++
		}
	}
	halt := (m.occupied && liveHead == 0) || (!m.occupied && liveChild == 0 && m.requested < 0)

	for p := range out {
		if m.portDead[p] && p != grantPort {
			continue
		}
		switch {
		case p == grantPort:
			out[p] = sGrant{}
		case halt:
			out[p] = sLeave{}
		case p == requestPort:
			out[p] = sRequest{}
		case m.role[p] == roleHead:
			out[p] = sAnnounce{Occupied: m.occupied}
		}
	}
	return halt
}

func (m *relayMachine) Init(info local.NodeInfo) {
	m.portDead = make([]bool, info.Degree)
	// Bystander endpoints are not part of the game; their ports are dead
	// from the start.
	alive := make([]bool, info.Degree)
	alive[m.headPort] = true
	for _, p := range m.childPts {
		alive[p] = true
	}
	for p := range m.portDead {
		m.portDead[p] = !alive[p]
	}
	m.pending = -1
}

func (m *relayMachine) Step(round int, in []local.Payload, out []local.Payload) bool {
	granted := false
	for p, raw := range in {
		if raw == nil {
			continue
		}
		switch msg := raw.(type) {
		case sLeave:
			m.portDead[p] = true
		case sAnnounce:
			if p != m.headPort {
				panic(fmt.Sprintf("hypergame: relay %d got an announce from a non-head", m.edgeID))
			}
			m.headOcc = msg.Occupied
		case sRequest:
			if m.portDead[p] {
				continue
			}
			if m.pending < 0 {
				m.pending = p
			}
		case sGrant:
			if p != m.headPort {
				panic(fmt.Sprintf("hypergame: relay %d got a grant from a non-head", m.edgeID))
			}
			if m.pending < 0 || m.portDead[m.pending] {
				panic(fmt.Sprintf("hypergame: relay %d got a grant with no pending child", m.edgeID))
			}
			granted = true
		default:
			panic(fmt.Sprintf("hypergame: relay %d got unexpected payload %T", m.edgeID, raw))
		}
	}

	if granted {
		// Route the token and dissolve: the hyperedge is consumed.
		m.consumed = true
		m.moves = append(m.moves, Move{
			Edge:  m.edgeID,
			From:  m.vertexAt[m.headPort],
			To:    m.vertexAt[m.pending],
			Round: round,
		})
		for p := range out {
			if m.portDead[p] {
				continue
			}
			if p == m.pending {
				out[p] = cGrant{}
			} else {
				out[p] = cLeave{}
			}
		}
		return true
	}

	// Drop a pending request that can no longer be answered: the child
	// left, or the head's latest word is "unoccupied" (any grant for our
	// pending request would have arrived together with or before that
	// announce — see the package comment).
	if m.pending >= 0 && (m.portDead[m.pending] || !m.headOcc) {
		m.pending = -1
	}

	liveChildren := 0
	for _, p := range m.childPts {
		if !m.portDead[p] {
			liveChildren++
		}
	}
	halt := m.portDead[m.headPort] || liveChildren == 0
	for p := range out {
		if m.portDead[p] {
			continue
		}
		switch {
		case halt:
			out[p] = cLeave{}
		case p == m.headPort:
			if m.pending >= 0 {
				out[p] = cRequest{}
			}
		default:
			out[p] = cAnnounce{Occupied: m.headOcc}
		}
	}
	return halt
}

var (
	_ local.Machine = (*serverMachine)(nil)
	_ local.Machine = (*relayMachine)(nil)
)

// SolveOptions configure the distributed solver.
type SolveOptions struct {
	RandomTies bool
	Seed       int64
	MaxRounds  int
	Workers    int
	// MeasureBits tracks the largest message size delivered (the CONGEST
	// compatibility check of experiment E21).
	MeasureBits bool
}

// DistStats reports distributed-run measurements.
type DistStats struct {
	Rounds          int
	Messages        int64
	MaxActiveRounds int // max over servers of request attempts (Lemma 4.4 analogue)
	MaxMessageBits  int // largest delivered payload (with MeasureBits)
}

// SolveProposal runs the distributed proposal algorithm for hypergraph
// token dropping and returns the verified-shape solution and statistics.
func SolveProposal(inst *Instance, opt SolveOptions) (*Solution, DistStats, error) {
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 1 << 20
	}
	n, m := inst.N(), inst.M()
	net := graph.New(n + m)
	for id, e := range inst.edges {
		for _, v := range e {
			net.AddEdge(v, n+id)
		}
	}
	// Note: no SortAdjacency — port p of relay id corresponds to
	// inst.edges[id][p], and server ports appear in hyperedge-id order,
	// both of which the machines rely on below.

	servers := make([]*serverMachine, n)
	relays := make([]*relayMachine, m)
	nw := local.NewNetwork(net, func(node int) local.Machine {
		if node < n {
			adj := net.Adj(node)
			sm := &serverMachine{
				vertex:   node,
				role:     make([]portRole, len(adj)),
				occupied: inst.Token(node),
			}
			if opt.RandomTies {
				sm.tie = 1
				sm.rng = rand.New(rand.NewSource(opt.Seed ^ int64(node)*0x9e3779b9))
			}
			for p, a := range adj {
				edge := a.To - n
				switch {
				case inst.head[edge] == node:
					sm.role[p] = roleHead
				case inst.level[node] == inst.level[inst.head[edge]]-1:
					sm.role[p] = roleChild
				default:
					sm.role[p] = roleBystander
				}
			}
			servers[node] = sm
			return sm
		}
		edge := node - n
		adj := net.Adj(node)
		rm := &relayMachine{edgeID: edge, headPort: -1, vertexAt: make([]int, len(adj))}
		for p, a := range adj {
			rm.vertexAt[p] = a.To
			if a.To == inst.head[edge] {
				rm.headPort = p
			} else if inst.level[a.To] == inst.level[inst.head[edge]]-1 {
				rm.childPts = append(rm.childPts, p)
			}
		}
		if rm.headPort < 0 {
			panic("hypergame: relay lost its head")
		}
		relays[edge] = rm
		return rm
	})
	stats, err := nw.Run(local.Options{MaxRounds: opt.MaxRounds, Workers: opt.Workers, MeasureBits: opt.MeasureBits})
	if err != nil {
		return nil, DistStats{}, err
	}

	var all []Move
	consumed := make([]bool, m)
	for _, rm := range relays {
		for _, mv := range rm.moves {
			all = append(all, mv)
			consumed[mv.Edge] = true
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Round < all[j].Round })
	final := make([]bool, n)
	maxActive := 0
	for v, sm := range servers {
		final[v] = sm.occupied
		if sm.active > maxActive {
			maxActive = sm.active
		}
	}
	sol := &Solution{Inst: inst, Moves: all, Final: final, Consumed: consumed, Rounds: stats.Rounds}
	ds := DistStats{Rounds: stats.Rounds, Messages: stats.Messages, MaxActiveRounds: maxActive, MaxMessageBits: stats.MaxMessageBits}
	return sol, ds, nil
}
