package hypergame

import (
	"fmt"
	"slices"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
	"tokendrop/internal/local"
	"tokendrop/internal/reuse"
)

// This file defines the flat-encoded side of the package: a flat hypergraph
// game instance and the shared plumbing of the sharded solvers (the
// proposal program below and the three-level program in flatthreelevel.go).
// The protocols are word-for-word the ones of distributed.go and
// threelevel.go; only the representation changes — the incidence network
// becomes a graph.CSR, message structs become single words, and the
// per-node server/relay machines become one struct-of-arrays program for
// local.RunSharded whose behavior branches on whether the stepped vertex is
// a server (0..n-1) or a hyperedge relay (n..n+m-1).
//
// The incidence CSR inserts edges exactly as the object solvers build their
// network — hyperedges in id order, endpoints in hyperedge order — so port
// numbering matches and, under first-port tie-breaking, the flat and object
// engines execute identical runs (rounds, messages, move logs, final
// placement), which the differential tests in this package assert.

// Message words of the flat hypergame protocols (local.Word; 0 = no
// message). Each word doubles for the server→relay and relay→server
// direction of the corresponding object payload pair (sAnnounce/cAnnounce,
// sRequest/cRequest, …); the receiver knows which side it is on.
const (
	hwAnnFree    local.Word = 1 + iota // announce: head unoccupied
	hwAnnOcc                           // announce: head occupied
	hwRequest                          // child asks for the head's token
	hwGrant                            // token passes (hyperedge consumed)
	hwLeave                            // sender terminates
	hwOffer                            // 3-level: middle head offers its token
	hwAccept                           // 3-level: bottom accepts an offer
	hwAccepted                         // 3-level: relay confirms the acceptance
	hwNoChildren                       // 3-level: offered hyperedge ran out of children
)

// Per-arc state flags of the flat programs, packed into one byte. The role
// bits describe the channel from the arc tail's perspective: for a server
// arc, whether the server heads the hyperedge behind it or is a child one
// level below the head; for a relay arc, whether it leads to the relay's
// head endpoint or to a child endpoint. Bystander channels (role bits 0)
// are dead from the start, exactly as the object machines kill them in
// Init.
const (
	hRoleMask  uint8 = 3      // 0 = bystander
	hRoleHead  uint8 = 1      // channel to/of the hyperedge head
	hRoleChild uint8 = 2      // channel to/of a child endpoint
	hDead      uint8 = 1 << 2 // consumed, departed, or bystander
	hChanOcc   uint8 = 1 << 3 // server side: last relayed head occupancy
)

// Packed per-vertex live-channel counters: three 21-bit fields in one word.
// Servers track live head channels, live child channels, and live child
// channels whose relayed occupancy is true; relays only use the child
// field (their single head channel's liveness is a flag bit on its arc).
const (
	hcntBits  = 21
	hcntMask  = 1<<hcntBits - 1
	hcntChild = 1 << hcntBits
	hcntOcc   = 1 << (2 * hcntBits)
)

// FlatInstance is a hypergraph token dropping game in flat form: int32
// levels, hyperedges as one packed endpoint array with offsets, and the
// incidence network (servers 0..n-1, relays n..n+m-1) prebuilt as a CSR.
// It is the hypergraph counterpart of core.FlatInstance, sized so the
// per-phase games of the sharded assignment runtime are a handful of
// allocations.
type FlatInstance struct {
	level []int32
	token []bool
	eptr  []int32 // len m+1: hyperedge id -> offset into ends
	ends  []int32 // packed endpoint lists
	head  []int32 // per hyperedge: the head endpoint
	inc   *graph.CSR
}

// NewFlatInstance validates the level structure — every hyperedge must
// have rank at least 2, distinct in-range endpoints, a head among its
// endpoints with ℓ(head) = min over other endpoints + 1, and no negative
// level — and builds the incidence network. The slices are retained, not
// copied; callers must not mutate them while the instance is in use.
// Loops building one instance per phase should use Workspace.NewFlatInstance,
// which rebuilds the incidence network and the instance shell in place.
func NewFlatInstance(level []int32, token []bool, eptr, ends, head []int32) (*FlatInstance, error) {
	if err := validateFlatInstance(level, token, eptr, ends, head, make([]int32, len(level))); err != nil {
		return nil, err
	}
	b := graph.NewCSRBuilder(len(level)+len(head), len(ends))
	addIncidence(b, len(level), eptr, ends)
	inc := b.Build()
	if err := checkIncidenceDegree(inc); err != nil {
		return nil, err
	}
	return &FlatInstance{level: level, token: token, eptr: eptr, ends: ends, head: head, inc: inc}, nil
}

// validateFlatInstance runs NewFlatInstance's structural checks. stamp is
// endpoint-duplicate scratch: len(level) entries, all zero on entry.
func validateFlatInstance(level []int32, token []bool, eptr, ends, head, stamp []int32) error {
	if len(level) != len(token) {
		return fmt.Errorf("hypergame: %d levels for %d token slots", len(level), len(token))
	}
	m := len(head)
	if len(eptr) != m+1 {
		return fmt.Errorf("hypergame: %d hyperedge offsets for %d heads", len(eptr), m)
	}
	if m > 0 && (eptr[0] != 0 || int(eptr[m]) != len(ends)) {
		return fmt.Errorf("hypergame: hyperedge offsets do not cover the endpoint array")
	}
	n := len(level)
	for v, l := range level {
		if l < 0 {
			return fmt.Errorf("hypergame: vertex %d has negative level", v)
		}
	}
	for id := 0; id < m; id++ {
		lo, hi := eptr[id], eptr[id+1]
		if hi-lo < 2 {
			return fmt.Errorf("hypergame: hyperedge %d has rank %d < 2", id, hi-lo)
		}
		headSeen := false
		minOther := int32(-1)
		for k := lo; k < hi; k++ {
			v := ends[k]
			if v < 0 || int(v) >= n {
				return fmt.Errorf("hypergame: hyperedge %d endpoint %d out of range", id, v)
			}
			if stamp[v] == int32(id)+1 {
				return fmt.Errorf("hypergame: hyperedge %d repeats endpoint %d", id, v)
			}
			stamp[v] = int32(id) + 1
			if v == head[id] {
				headSeen = true
				continue
			}
			if minOther < 0 || level[v] < minOther {
				minOther = level[v]
			}
		}
		if !headSeen {
			return fmt.Errorf("hypergame: head %d of hyperedge %d is not an endpoint", head[id], id)
		}
		if level[head[id]] != minOther+1 {
			return fmt.Errorf("hypergame: hyperedge %d head level %d != min other %d + 1",
				id, level[head[id]], minOther)
		}
	}
	return nil
}

// addIncidence inserts the incidence network exactly as SolveProposal
// builds it: hyperedges in id order, endpoints in hyperedge order — which
// makes the CSR's port numbering identical to the object network's.
func addIncidence(b *graph.CSRBuilder, n int, eptr, ends []int32) {
	for id := 0; id+1 < len(eptr); id++ {
		for k := eptr[id]; k < eptr[id+1]; k++ {
			b.AddEdge(int(ends[k]), n+id)
		}
	}
}

// checkIncidenceDegree rejects incidence degrees that would silently
// overflow the flat programs' packed 21-bit live-channel counts (a server
// in two million hyperedges, or a hyperedge of two million endpoints).
func checkIncidenceDegree(inc *graph.CSR) error {
	if d := inc.MaxDegree(); d >= 1<<hcntBits {
		return fmt.Errorf("hypergame: incidence degree %d exceeds the flat solver's counter range (2^%d - 1)",
			d, hcntBits)
	}
	return nil
}

// Workspace holds the reusable per-solve state of the sharded hypergame
// solvers: the incidence builder and CSR, the FlatInstance shell, the
// validation scratch, and the struct-of-arrays program state of both the
// proposal and the three-level programs. Everything is grown
// monotonically and rebuilt in place, so a phase loop that assembles and
// solves one hypergraph game per phase through a single workspace — the
// sharded assignment runtimes — stops allocating once its largest game
// has been seen. A workspace must not be shared by concurrent solves.
type Workspace struct {
	b     *graph.CSRBuilder
	inc   graph.CSR
	fi    FlatInstance
	stamp []int32
	st    flatHyperState
	prop  flatHyperProposal
	p3    flatHyper3
}

// NewWorkspace returns an empty workspace; the first instance sizes it.
func NewWorkspace() *Workspace {
	w := &Workspace{b: graph.NewCSRBuilder(0, 0)}
	w.prop.flatHyperState = &w.st
	w.p3.flatHyperState = &w.st
	return w
}

// NewFlatInstance is NewFlatInstance rebuilt in the workspace: the
// incidence network, the duplicate-endpoint scratch, and the instance
// shell are reused in place. As with the package function the input
// slices are retained, not copied. The returned instance — and any solve
// result whose construction borrows it — is valid only until the next
// NewFlatInstance call on the same workspace.
func (w *Workspace) NewFlatInstance(level []int32, token []bool, eptr, ends, head []int32) (*FlatInstance, error) {
	n, m := len(level), len(head)
	w.stamp = reuse.Grown(w.stamp, n)
	clear(w.stamp)
	if err := validateFlatInstance(level, token, eptr, ends, head, w.stamp); err != nil {
		return nil, err
	}
	w.b.Reset(n + m)
	addIncidence(w.b, n, eptr, ends)
	w.b.BuildInto(&w.inc)
	if err := checkIncidenceDegree(&w.inc); err != nil {
		return nil, err
	}
	w.fi = FlatInstance{level: level, token: token, eptr: eptr, ends: ends, head: head, inc: &w.inc}
	return &w.fi, nil
}

// NewFlatInstanceFromInstance converts a pointer-based Instance to flat
// form (same vertex ids, hyperedge ids, and incidence port order).
func NewFlatInstanceFromInstance(inst *Instance) *FlatInstance {
	n, m := inst.N(), inst.M()
	level := make([]int32, n)
	for v := 0; v < n; v++ {
		level[v] = int32(inst.Level(v))
	}
	token := make([]bool, n)
	eptr := make([]int32, m+1)
	head := make([]int32, m)
	total := 0
	for id := 0; id < m; id++ {
		total += len(inst.Edge(id))
	}
	ends := make([]int32, 0, total)
	for v := 0; v < n; v++ {
		token[v] = inst.Token(v)
	}
	for id := 0; id < m; id++ {
		for _, v := range inst.Edge(id) {
			ends = append(ends, int32(v))
		}
		eptr[id+1] = int32(len(ends))
		head[id] = int32(inst.Head(id))
	}
	fi, err := NewFlatInstance(level, token, eptr, ends, head)
	if err != nil {
		panic(err)
	}
	return fi
}

// N returns the number of vertices.
func (fi *FlatInstance) N() int { return len(fi.level) }

// M returns the number of hyperedges.
func (fi *FlatInstance) M() int { return len(fi.head) }

// Level returns the level of vertex v.
func (fi *FlatInstance) Level(v int) int { return int(fi.level[v]) }

// Token reports whether v initially holds a token.
func (fi *FlatInstance) Token(v int) bool { return fi.token[v] }

// Height returns the maximum level.
func (fi *FlatInstance) Height() int {
	h := int32(0)
	for _, l := range fi.level {
		if l > h {
			h = l
		}
	}
	return int(h)
}

// Instance materializes the pointer-based Instance (same vertex and
// hyperedge identifiers), for verification with the standard oracle.
func (fi *FlatInstance) Instance() *Instance {
	n, m := fi.N(), fi.M()
	level := make([]int, n)
	for v := range level {
		level[v] = int(fi.level[v])
	}
	edges := make([][]int, m)
	head := make([]int, m)
	for id := 0; id < m; id++ {
		e := make([]int, 0, fi.eptr[id+1]-fi.eptr[id])
		for k := fi.eptr[id]; k < fi.eptr[id+1]; k++ {
			e = append(e, int(fi.ends[k]))
		}
		edges[id] = e
		head[id] = int(fi.head[id])
	}
	return MustInstance(level, append([]bool(nil), fi.token...), edges, head)
}

// InitialPotential returns Σ level(v) over the initial token placement.
// Every move drops one token one level, so a legal play with k moves ends
// at potential InitialPotential() - k.
func (fi *FlatInstance) InitialPotential() int64 {
	var p int64
	for v, t := range fi.token {
		if t {
			p += int64(fi.level[v])
		}
	}
	return p
}

// ShardedSolveOptions configure the sharded flat solvers. RandomTies runs
// draw engine-specific per-vertex streams (core.SplitMix64 instead of the
// object machines' math/rand), so they are independent samples of the
// protocol; first-port runs are bit-identical to the object solvers.
type ShardedSolveOptions struct {
	RandomTies bool
	Seed       int64
	MaxRounds  int
	Shards     int // worker count; 0 = runtime.GOMAXPROCS(0)
	// Session, if non-nil, plays the game on this persistent engine
	// session instead of a one-shot engine; its worker count overrides
	// Shards. The assignment phase loops keep one session alive across
	// all their subgames so the worker pool and message buffers are
	// built once.
	Session *local.Session
	// Workspace, if non-nil, rebuilds the program's struct-of-arrays
	// state in place instead of allocating it per solve (see Workspace).
	Workspace *Workspace
}

// runFlatHyper executes prog on the options' session when one is set,
// else on a one-shot engine.
func runFlatHyper(inc *graph.CSR, prog local.FlatProgram, opt ShardedSolveOptions) (local.ShardedStats, error) {
	sopt := local.ShardedOptions{MaxRounds: opt.MaxRounds, Shards: opt.Shards}
	if opt.Session != nil {
		return opt.Session.Run(inc, prog, sopt)
	}
	return local.RunSharded(inc, prog, sopt)
}

// FlatResult is the outcome of a sharded hypergame solve: the final token
// placement over the servers, the chronological move log, and statistics.
type FlatResult struct {
	Final []bool
	Moves []Move
	Stats DistStats
}

// Solution wraps the result for Verify. inst must describe the same game
// (use FlatInstance.Instance(), or the Instance the FlatInstance was
// converted from).
func (r *FlatResult) Solution(inst *Instance) *Solution {
	consumed := make([]bool, inst.M())
	for _, m := range r.Moves {
		consumed[m.Edge] = true
	}
	return &Solution{
		Inst:     inst,
		Moves:    r.Moves,
		Final:    r.Final,
		Consumed: consumed,
		Rounds:   r.Stats.Rounds,
	}
}

// flatHyperState is the state shared by the two flat hypergame programs:
// one struct-of-arrays encoding of the server and relay machines over the
// incidence CSR.
type flatHyperState struct {
	fi   *FlatInstance
	tie  int // 0 = first port, 1 = seeded random
	rngs []uint64

	occ      []bool   // servers: occupied; relays: last announced head occupancy
	reqArc   []int32  // servers: outstanding request arc; relays: pending child request arc
	counters []uint64 // packed liveHead/liveChild/occChild (servers), liveChild (relays)
	headArc  []int32  // relays: the arc to the head endpoint (-1 for servers)
	active   []int32  // servers: request attempts (Lemma 4.4 analogue)
	aflags   []uint8  // per arc: role | hDead | hChanOcc

	// unch[v] counts consecutive outbox-event-free rounds of v, -1 after
	// an event: the quiescent-outbox skip of core's flat programs,
	// ported to the relay protocols. A vertex whose outgoing words are
	// provably what the double buffer already holds (no outbox-relevant
	// event for two consecutive rounds, so outbox(r) == outbox(r-2))
	// skips its stores entirely. In steady state most servers and relays
	// repeat the same announcement, so this removes the bulk of the
	// scattered stores; receivers still read the retained words, so runs
	// are bit-identical with the skip on or off.
	unch []int8

	shardMoves [][]Move
	shardMsgs  []int64
}

func newFlatHyperState(fi *FlatInstance, opt ShardedSolveOptions) *flatHyperState {
	st := &flatHyperState{}
	st.reset(fi, opt)
	return st
}

// reset rebuilds the shared program state for a fresh solve of fi in
// place, growing the arrays only when fi outgrows them — a warmed state
// (same-sized or shrinking games) resets without allocating. Used by the
// per-solve Workspace of the assignment phase loops.
func (st *flatHyperState) reset(fi *FlatInstance, opt ShardedSolveOptions) {
	n, m := fi.N(), fi.M()
	inc := fi.inc
	st.fi = fi
	st.occ = reuse.Grown(st.occ, n+m)
	st.reqArc = reuse.Grown(st.reqArc, n+m)
	st.counters = reuse.Grown(st.counters, n+m)
	st.headArc = reuse.Grown(st.headArc, n+m)
	st.active = reuse.Grown(st.active, n)
	st.aflags = reuse.Grown(st.aflags, inc.NumArcs())
	st.unch = reuse.Grown(st.unch, n+m)
	if opt.RandomTies {
		st.tie = 1
		st.rngs = reuse.Grown(st.rngs, n+m)
		for v := range st.rngs {
			st.rngs[v] = core.SplitMix64(uint64(opt.Seed) ^ uint64(v)*0x9e3779b97f4a7c15)
		}
	} else {
		st.tie = 0
		st.rngs = nil
	}
	clear(st.active)
	clear(st.occ)
	for v := range st.reqArc {
		st.reqArc[v] = -1
		st.headArc[v] = -1
		st.unch[v] = -1
	}
	copy(st.occ, fi.token)
	// Arc roles. For a server arc the relay behind it identifies the
	// hyperedge; for a relay arc the endpoint's level against the head's
	// decides. Bystander channels start dead on both sides, as in the
	// object machines' Init.
	for v := 0; v < n; v++ {
		lo, hi := inc.ArcRange(v)
		var cnt uint64
		for i := lo; i < hi; i++ {
			id := int(inc.Col[i]) - n
			switch {
			case fi.head[id] == int32(v):
				st.aflags[i] = hRoleHead
				cnt++
			case fi.level[v] == fi.level[fi.head[id]]-1:
				st.aflags[i] = hRoleChild
				cnt += hcntChild
			default:
				st.aflags[i] = hDead
			}
		}
		st.counters[v] = cnt
	}
	for id := 0; id < m; id++ {
		r := n + id
		lo, hi := inc.ArcRange(r)
		hl := fi.level[fi.head[id]]
		var cnt uint64
		for i := lo; i < hi; i++ {
			u := inc.Col[i]
			switch {
			case u == fi.head[id]:
				st.aflags[i] = hRoleHead
				st.headArc[r] = int32(i)
			case fi.level[u] == hl-1:
				st.aflags[i] = hRoleChild
				cnt += hcntChild
			default:
				st.aflags[i] = hDead
			}
		}
		if st.headArc[r] < 0 {
			panic("hypergame: relay lost its head")
		}
		st.counters[r] = cnt
	}
}

// InitShards implements local.FlatProgram. The per-shard logs are grown
// in place, so repeat solves on a warmed program allocate nothing.
func (st *flatHyperState) InitShards(bounds []int) {
	shards := len(bounds) - 1
	if cap(st.shardMoves) < shards {
		st.shardMoves = make([][]Move, shards)
	} else {
		st.shardMoves = st.shardMoves[:shards]
	}
	for s := range st.shardMoves {
		st.shardMoves[s] = st.shardMoves[s][:0]
	}
	st.shardMsgs = reuse.Grown(st.shardMsgs, shards)
	clear(st.shardMsgs)
}

// killArc marks arc i dead and updates the tail vertex's packed counters,
// idempotently (the object machines recount live ports from portDead every
// round; the counters maintain the same quantity incrementally).
func (st *flatHyperState) killArc(i int, cnt uint64) uint64 {
	f := st.aflags[i]
	if f&hDead != 0 {
		return cnt
	}
	switch f & hRoleMask {
	case hRoleHead:
		cnt--
	case hRoleChild:
		cnt -= hcntChild
		if f&hChanOcc != 0 {
			cnt -= hcntOcc
		}
	}
	st.aflags[i] = (f | hDead) &^ hChanOcc
	return cnt
}

// pickFirst returns the first arc in [a0,a1) passing the eligibility mask
// test, or -1 — the flat form of the machines' first-port pick.
func (st *flatHyperState) pickFirst(a0, a1 int, mask, want uint8) int {
	for i := a0; i < a1; i++ {
		if st.aflags[i]&mask == want {
			return i
		}
	}
	return -1
}

// pickRandom reservoir-samples uniformly over the eligible arcs using the
// vertex's SplitMix64 stream (the flat TieRandom rule).
func (st *flatHyperState) pickRandom(v, a0, a1 int, mask, want uint8) int {
	state := st.rngs[v]
	count, choice := 0, -1
	for i := a0; i < a1; i++ {
		if st.aflags[i]&mask != want {
			continue
		}
		count++
		var pick int
		state, pick = core.SplitMixIntn(state, count)
		if pick == 0 {
			choice = i
		}
	}
	st.rngs[v] = state
	return choice
}

func (st *flatHyperState) result(stats local.ShardedStats) *FlatResult {
	out := new(FlatResult)
	st.resultInto(stats, out)
	return out
}

// resultInto writes the run's outcome into out, reusing its slices
// grow-only — the allocation-free counterpart of result for callers that
// solve many games through one workspace (the assignment phase loop).
func (st *flatHyperState) resultInto(stats local.ShardedStats, out *FlatResult) {
	n := st.fi.N()
	total := 0
	for _, ms := range st.shardMoves {
		total += len(ms)
	}
	out.Moves = reuse.Grown(out.Moves, total)[:0]
	for _, ms := range st.shardMoves {
		out.Moves = append(out.Moves, ms...)
	}
	// Within a shard, moves are appended round-major with relay vertices
	// ascending; shards partition the vertex range in order, so the stable
	// sort reproduces the object engine's (round, hyperedge id) order.
	slices.SortStableFunc(out.Moves, func(a, b Move) int { return a.Round - b.Round })
	var messages int64
	for _, ms := range st.shardMsgs {
		messages += ms
	}
	maxActive := 0
	for _, a := range st.active {
		if int(a) > maxActive {
			maxActive = int(a)
		}
	}
	out.Final = reuse.Grown(out.Final, n)
	copy(out.Final, st.occ[:n])
	out.Stats = DistStats{Rounds: stats.Rounds, Messages: messages, MaxActiveRounds: maxActive}
}

// flatHyperProposal is the generic proposal solver of Theorem 7.1
// (distributed.go) in struct-of-arrays form. stepServer and stepRelay
// mirror serverMachine.Step and relayMachine.Step case for case; any
// semantic divergence is caught by the differential tests, which demand
// bit-identical runs under first-port tie-breaking.
type flatHyperProposal struct {
	*flatHyperState
}

// StepShard implements local.FlatProgram.
func (pr *flatHyperProposal) StepShard(round, shard int, verts []int32, recv, send []local.Word, halted []bool) {
	n := pr.fi.N()
	moves := pr.shardMoves[shard]
	var delivered int64
	for _, v32 := range verts {
		v := int(v32)
		if v < n {
			delivered += pr.stepServer(round, v, recv, send, halted)
		} else {
			var d int64
			moves, d = pr.stepRelay(round, v, recv, send, halted, moves)
			delivered += d
		}
	}
	pr.shardMoves[shard] = moves
	pr.shardMsgs[shard] += delivered
}

func (pr *flatHyperProposal) stepServer(round, v int, recv, send []local.Word, halted []bool) int64 {
	inc := pr.fi.inc
	a0, a1 := inc.ArcRange(v)
	aflags := pr.aflags
	occ := pr.occ[v]
	wasOcc := occ
	cnt := pr.counters[v]
	req := int(pr.reqArc[v])
	var delivered int64
	portDied := false
	reqFirst, reqSeen := -1, 0
	for i := a0; i < a1; i++ {
		msg := recv[i]
		if msg == 0 {
			continue
		}
		delivered++
		f := aflags[i]
		switch msg {
		case hwLeave:
			if f&hDead == 0 {
				portDied = true
			}
			cnt = pr.killArc(i, cnt)
		case hwAnnFree, hwAnnOcc:
			if f&hRoleMask != hRoleChild {
				panic(fmt.Sprintf("hypergame: server %d got a child announce on a non-child channel", v))
			}
			if f&hDead != 0 {
				break // stale announcement on a dead channel; occupancy is moot
			}
			if msg == hwAnnOcc {
				if f&hChanOcc == 0 {
					aflags[i] = f | hChanOcc
					cnt += hcntOcc
				}
			} else if f&hChanOcc != 0 {
				aflags[i] = f &^ hChanOcc
				cnt -= hcntOcc
			}
		case hwGrant:
			if occ {
				panic(fmt.Sprintf("hypergame: server %d received a second token", v))
			}
			if i != req {
				panic(fmt.Sprintf("hypergame: server %d granted through a channel it never requested", v))
			}
			occ = true
			if aflags[i]&hDead == 0 {
				portDied = true
			}
			cnt = pr.killArc(i, cnt)
		case hwRequest:
			if f&hRoleMask != hRoleHead {
				panic(fmt.Sprintf("hypergame: server %d got a request on a non-head channel", v))
			}
			if f&hDead == 0 {
				if reqFirst < 0 {
					reqFirst = i
				}
				reqSeen++
			}
		default:
			panic(fmt.Sprintf("hypergame: server %d got unexpected word %d", v, msg))
		}
	}

	// Resolve the outstanding request: token arrived, channel died, or the
	// channel's relayed occupancy turned false (see distributed.go).
	if req >= 0 && (occ || aflags[req]&hDead != 0 || aflags[req]&hChanOcc == 0) {
		req = -1
	}

	// Grant: only a token held since the previous round can be granted.
	grantArc := -1
	if wasOcc && reqSeen > 0 {
		if pr.tie == 0 || reqSeen == 1 {
			grantArc = reqFirst
		} else {
			state := pr.rngs[v]
			cn := 0
			for i := reqFirst; i < a1; i++ {
				if recv[i] == hwRequest && aflags[i]&hDead == 0 {
					cn++
					var pick int
					state, pick = core.SplitMixIntn(state, cn)
					if pick == 0 {
						grantArc = i
					}
					if cn == reqSeen {
						break
					}
				}
			}
			pr.rngs[v] = state
		}
	}
	if grantArc >= 0 {
		occ = false
		cnt = pr.killArc(grantArc, cnt)
	}

	// Request: unoccupied, nothing in flight, and some live child channel
	// relays an occupied head (the occChild counter tracks the eligible
	// set).
	requestArc := -1
	if !occ && req < 0 && cnt>>(2*hcntBits) > 0 {
		const mask = hRoleMask | hDead | hChanOcc
		const want = hRoleChild | hChanOcc
		if pr.tie == 0 {
			requestArc = pr.pickFirst(a0, a1, mask, want)
		} else {
			requestArc = pr.pickRandom(v, a0, a1, mask, want)
		}
		req = requestArc
		pr.active[v]++
	}

	liveHead := cnt & hcntMask
	liveChild := (cnt >> hcntBits) & hcntMask
	halt := (occ && liveHead == 0) || (!occ && liveChild == 0 && req < 0)

	// Quiescent-outbox skip (see flatHyperState.unch): the outbox is a
	// function of (occ, halt, grantArc, requestArc, dead ports); an
	// event-free round whose two predecessors were also event-free finds
	// its words already in the double buffer and skips the stores.
	changed := grantArc >= 0 || requestArc >= 0 || halt || occ != wasOcc || portDied
	un := pr.unch[v]
	if changed {
		un = -1
	} else if un < 2 {
		un++
	}
	if un < 2 {
		rev := inc.Rev
		for i := a0; i < a1; i++ {
			var word local.Word
			switch {
			case i == grantArc:
				word = hwGrant
			case aflags[i]&hDead != 0:
				// dead channel: nothing
			case halt:
				word = hwLeave
			case i == requestArc:
				word = hwRequest
			case aflags[i]&hRoleMask == hRoleHead:
				if occ {
					word = hwAnnOcc
				} else {
					word = hwAnnFree
				}
			}
			send[rev[i]] = word
		}
	}
	pr.unch[v] = un

	pr.occ[v] = occ
	pr.reqArc[v] = int32(req)
	pr.counters[v] = cnt
	if halt {
		halted[v] = true
	}
	return delivered
}

func (pr *flatHyperProposal) stepRelay(round, v int, recv, send []local.Word, halted []bool, moves []Move) ([]Move, int64) {
	inc := pr.fi.inc
	n := pr.fi.N()
	a0, a1 := inc.ArcRange(v)
	aflags := pr.aflags
	hArc := int(pr.headArc[v])
	headOcc := pr.occ[v]
	wasOcc := headOcc
	pend := int(pr.reqArc[v])
	hadPend := pend >= 0
	cnt := pr.counters[v]
	var delivered int64
	granted := false
	portDied := false
	for i := a0; i < a1; i++ {
		msg := recv[i]
		if msg == 0 {
			continue
		}
		delivered++
		switch msg {
		case hwLeave:
			if pr.aflags[i]&hDead == 0 {
				portDied = true
			}
			cnt = pr.killArc(i, cnt)
		case hwAnnFree, hwAnnOcc:
			if i != hArc {
				panic(fmt.Sprintf("hypergame: relay %d got an announce from a non-head", v-n))
			}
			headOcc = msg == hwAnnOcc
		case hwRequest:
			if aflags[i]&hDead != 0 {
				break
			}
			if pend < 0 {
				pend = i
			}
		case hwGrant:
			if i != hArc {
				panic(fmt.Sprintf("hypergame: relay %d got a grant from a non-head", v-n))
			}
			if pend < 0 || aflags[pend]&hDead != 0 {
				panic(fmt.Sprintf("hypergame: relay %d got a grant with no pending child", v-n))
			}
			granted = true
		default:
			panic(fmt.Sprintf("hypergame: relay %d got unexpected word %d", v-n, msg))
		}
	}

	rev := inc.Rev
	if granted {
		// Route the token and dissolve: the hyperedge is consumed.
		moves = append(moves, Move{
			Edge:  v - n,
			From:  int(inc.Col[hArc]),
			To:    int(inc.Col[pend]),
			Round: round,
		})
		for i := a0; i < a1; i++ {
			var word local.Word
			switch {
			case aflags[i]&hDead != 0:
			case i == pend:
				word = hwGrant
			default:
				word = hwLeave
			}
			send[rev[i]] = word
		}
		pr.occ[v] = headOcc
		pr.reqArc[v] = int32(pend)
		pr.counters[v] = cnt
		halted[v] = true
		return moves, delivered
	}

	// Drop a pending request that can no longer be answered: the child
	// left, or the head's latest word is "unoccupied".
	if pend >= 0 && (aflags[pend]&hDead != 0 || !headOcc) {
		pend = -1
	}

	liveChildren := (cnt >> hcntBits) & hcntMask
	halt := aflags[hArc]&hDead != 0 || liveChildren == 0

	// Quiescent-outbox skip (see flatHyperState.unch): the relay outbox
	// is a function of (headOcc, pend-presence, halt, dead ports).
	changed := halt || portDied || headOcc != wasOcc || (pend >= 0) != hadPend
	un := pr.unch[v]
	if changed {
		un = -1
	} else if un < 2 {
		un++
	}
	if un < 2 {
		for i := a0; i < a1; i++ {
			var word local.Word
			switch {
			case aflags[i]&hDead != 0:
			case halt:
				word = hwLeave
			case i == hArc:
				if pend >= 0 {
					word = hwRequest
				}
			default:
				if headOcc {
					word = hwAnnOcc
				} else {
					word = hwAnnFree
				}
			}
			send[rev[i]] = word
		}
	}
	pr.unch[v] = un

	pr.occ[v] = headOcc
	pr.reqArc[v] = int32(pend)
	pr.counters[v] = cnt
	if halt {
		halted[v] = true
	}
	return moves, delivered
}

var _ local.FlatProgram = (*flatHyperProposal)(nil)

// SolveProposalSharded runs the distributed proposal algorithm for
// hypergraph token dropping (Theorem 7.1) on the sharded flat engine.
// Under first-port tie-breaking the run is bit-identical to SolveProposal
// on the same game (same rounds, messages, moves, and final placement);
// RandomTies draws engine-specific streams. With opt.Session and
// opt.Workspace set, the engine and the program state are rebuilt in
// place across solves (see Workspace).
func SolveProposalSharded(fi *FlatInstance, opt ShardedSolveOptions) (*FlatResult, error) {
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 1 << 20
	}
	pr := &flatHyperProposal{&flatHyperState{}}
	if opt.Workspace != nil {
		pr = &opt.Workspace.prop
	}
	pr.reset(fi, opt)
	stats, err := runFlatHyper(fi.inc, pr, opt)
	if err != nil {
		return nil, err
	}
	return pr.result(stats), nil
}

// SolveProposalShardedInto is SolveProposalSharded writing its outcome
// into out (slices reused grow-only): with a warmed Session and Workspace
// the whole solve performs no heap allocations, which is what the
// assignment phase loop's own zero-allocation contract is built on.
func SolveProposalShardedInto(fi *FlatInstance, opt ShardedSolveOptions, out *FlatResult) error {
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 1 << 20
	}
	var pr *flatHyperProposal
	if opt.Workspace != nil {
		pr = &opt.Workspace.prop
	} else {
		pr = &flatHyperProposal{&flatHyperState{}}
	}
	pr.reset(fi, opt)
	stats, err := runFlatHyper(fi.inc, pr, opt)
	if err != nil {
		return err
	}
	pr.resultInto(stats, out)
	return nil
}
