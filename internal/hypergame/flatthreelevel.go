package hypergame

import (
	"fmt"

	"tokendrop/internal/core"
	"tokendrop/internal/local"
	"tokendrop/internal/reuse"
)

// flatHyper3 is the specialized three-level solver of Theorem 7.5
// (threelevel.go) in struct-of-arrays form. Servers branch on their level
// (top grants, bottom accepts, the middle pulls from above and pushes
// below); relays run in pull mode when their head is on level 2 and push
// mode when it is on level 1. stepTop/stepBottom/stepMiddle/stepRelay3
// mirror server3Machine.Step and relay3Machine.Step case for case; the
// differential tests demand bit-identical runs under first-port ties.
type flatHyper3 struct {
	*flatHyperState
	offArc   []int32 // middles: offered arc; relays: current offer target arc
	offering []bool  // relays: head has offered (latched until resolved)
	push     []bool  // relays: head on level 1 (push mode)
}

func newFlatHyper3(fi *FlatInstance, opt ShardedSolveOptions) *flatHyper3 {
	p3 := &flatHyper3{flatHyperState: &flatHyperState{}}
	p3.reset3(fi, opt)
	return p3
}

// reset3 rebuilds the three-level program state for a fresh solve of fi
// in place (see flatHyperState.reset).
func (p3 *flatHyper3) reset3(fi *FlatInstance, opt ShardedSolveOptions) {
	p3.flatHyperState.reset(fi, opt)
	n, m := fi.N(), fi.M()
	p3.offArc = reuse.Grown(p3.offArc, n+m)
	p3.offering = reuse.Grown(p3.offering, n+m)
	p3.push = reuse.Grown(p3.push, n+m)
	clear(p3.offering)
	clear(p3.push)
	for v := range p3.offArc {
		p3.offArc[v] = -1
	}
	for id := 0; id < m; id++ {
		p3.push[n+id] = fi.level[fi.head[id]] == 1
	}
}

// StepShard implements local.FlatProgram.
func (pr *flatHyper3) StepShard(round, shard int, verts []int32, recv, send []local.Word, halted []bool) {
	n := pr.fi.N()
	moves := pr.shardMoves[shard]
	var delivered int64
	for _, v32 := range verts {
		v := int(v32)
		var d int64
		if v < n {
			switch pr.fi.level[v] {
			case 0:
				d = pr.stepBottom(v, recv, send, halted)
			case 1:
				d = pr.stepMiddle(v, recv, send, halted)
			case 2:
				d = pr.stepTop(v, recv, send, halted)
			default:
				panic(fmt.Sprintf("hypergame: 3-level server on level %d", pr.fi.level[v]))
			}
		} else {
			moves, d = pr.stepRelay3(round, v, recv, send, halted, moves)
		}
		delivered += d
	}
	pr.shardMoves[shard] = moves
	pr.shardMsgs[shard] += delivered
}

// rescanPick reservoir-samples over the arcs in [first, a1) that received
// msg this round on a live channel — the flat form of the object machines'
// random pick over a requests/offers bitmap.
func (pr *flatHyper3) rescanPick(v, first, a1, seen int, msg local.Word, recv []local.Word) int {
	state := pr.rngs[v]
	count, choice := 0, -1
	for i := first; i < a1; i++ {
		if recv[i] == msg && pr.aflags[i]&hDead == 0 {
			count++
			var pick int
			state, pick = core.SplitMixIntn(state, count)
			if pick == 0 {
				choice = i
			}
			if count == seen {
				break
			}
		}
	}
	pr.rngs[v] = state
	return choice
}

// stepTop: level-2 servers only head hyperedges; they announce, grant one
// relayed request, and leave as soon as they are unoccupied or isolated.
func (pr *flatHyper3) stepTop(v int, recv, send []local.Word, halted []bool) int64 {
	inc := pr.fi.inc
	a0, a1 := inc.ArcRange(v)
	occ := pr.occ[v]
	wasOcc := occ
	cnt := pr.counters[v]
	var delivered int64
	portDied := false
	reqFirst, reqSeen := -1, 0
	for i := a0; i < a1; i++ {
		msg := recv[i]
		if msg == 0 {
			continue
		}
		delivered++
		switch msg {
		case hwLeave:
			if pr.aflags[i]&hDead == 0 {
				portDied = true
			}
			cnt = pr.killArc(i, cnt)
		case hwRequest:
			if pr.aflags[i]&hDead == 0 {
				if reqFirst < 0 {
					reqFirst = i
				}
				reqSeen++
			}
		default:
			panic(fmt.Sprintf("hypergame: level-2 server %d got unexpected word %d", v, msg))
		}
	}
	grantArc := -1
	if occ && reqSeen > 0 {
		if pr.tie == 0 || reqSeen == 1 {
			grantArc = reqFirst
		} else {
			grantArc = pr.rescanPick(v, reqFirst, a1, reqSeen, hwRequest, recv)
		}
	}
	if grantArc >= 0 {
		occ = false
		cnt = pr.killArc(grantArc, cnt)
	}
	halt := !occ || cnt&hcntMask == 0
	// Quiescent-outbox skip (see flatHyperState.unch).
	changed := grantArc >= 0 || halt || portDied || occ != wasOcc
	un := pr.unch[v]
	if changed {
		un = -1
	} else if un < 2 {
		un++
	}
	if un < 2 {
		rev := inc.Rev
		for i := a0; i < a1; i++ {
			var word local.Word
			switch {
			case i == grantArc:
				word = hwGrant
			case pr.aflags[i]&hDead != 0:
			case halt:
				word = hwLeave
			case pr.aflags[i]&hRoleMask == hRoleHead:
				if occ {
					word = hwAnnOcc
				} else {
					word = hwAnnFree
				}
			}
			send[rev[i]] = word
		}
	}
	pr.unch[v] = un
	pr.occ[v] = occ
	pr.counters[v] = cnt
	if halt {
		halted[v] = true
	}
	return delivered
}

// stepBottom: level-0 servers accept one relayed offer and leave.
func (pr *flatHyper3) stepBottom(v int, recv, send []local.Word, halted []bool) int64 {
	inc := pr.fi.inc
	a0, a1 := inc.ArcRange(v)
	occ := pr.occ[v]
	wasOcc := occ
	cnt := pr.counters[v]
	var delivered int64
	portDied := false
	offFirst, offSeen := -1, 0
	for i := a0; i < a1; i++ {
		msg := recv[i]
		if msg == 0 {
			continue
		}
		delivered++
		switch msg {
		case hwLeave:
			if pr.aflags[i]&hDead == 0 {
				portDied = true
			}
			cnt = pr.killArc(i, cnt)
		case hwOffer:
			if pr.aflags[i]&hDead == 0 {
				if offFirst < 0 {
					offFirst = i
				}
				offSeen++
			}
		default:
			panic(fmt.Sprintf("hypergame: level-0 server %d got unexpected word %d", v, msg))
		}
	}
	acceptArc := -1
	if !occ && offSeen > 0 {
		if pr.tie == 0 || offSeen == 1 {
			acceptArc = offFirst
		} else {
			acceptArc = pr.rescanPick(v, offFirst, a1, offSeen, hwOffer, recv)
		}
	}
	if acceptArc >= 0 {
		occ = true
		cnt = pr.killArc(acceptArc, cnt)
	}
	halt := occ || (cnt>>hcntBits)&hcntMask == 0
	// Quiescent-outbox skip (see flatHyperState.unch).
	changed := acceptArc >= 0 || halt || portDied || occ != wasOcc
	un := pr.unch[v]
	if changed {
		un = -1
	} else if un < 2 {
		un++
	}
	if un < 2 {
		rev := inc.Rev
		for i := a0; i < a1; i++ {
			var word local.Word
			switch {
			case i == acceptArc:
				word = hwAccept
			case pr.aflags[i]&hDead != 0:
			case halt:
				word = hwLeave
			}
			send[rev[i]] = word
		}
	}
	pr.unch[v] = un
	pr.occ[v] = occ
	pr.counters[v] = cnt
	if halt {
		halted[v] = true
	}
	return delivered
}

// stepMiddle: level-1 servers pull from above while unoccupied and push
// below while occupied.
func (pr *flatHyper3) stepMiddle(v int, recv, send []local.Word, halted []bool) int64 {
	inc := pr.fi.inc
	a0, a1 := inc.ArcRange(v)
	aflags := pr.aflags
	occ := pr.occ[v]
	wasOcc := occ
	cnt := pr.counters[v]
	req := int(pr.reqArc[v])
	off := int(pr.offArc[v])
	var delivered int64
	portDied := false
	for i := a0; i < a1; i++ {
		msg := recv[i]
		if msg == 0 {
			continue
		}
		delivered++
		f := aflags[i]
		switch msg {
		case hwLeave, hwNoChildren:
			// cNoChildren kills the offered channel just like a departure.
			if f&hDead == 0 {
				portDied = true
			}
			cnt = pr.killArc(i, cnt)
		case hwAnnFree, hwAnnOcc:
			if f&hRoleMask != hRoleChild {
				panic(fmt.Sprintf("hypergame: level-1 server %d got announce on non-child channel", v))
			}
			if f&hDead != 0 {
				break
			}
			if msg == hwAnnOcc {
				if f&hChanOcc == 0 {
					aflags[i] = f | hChanOcc
					cnt += hcntOcc
				}
			} else if f&hChanOcc != 0 {
				aflags[i] = f &^ hChanOcc
				cnt -= hcntOcc
			}
		case hwGrant:
			if occ {
				panic(fmt.Sprintf("hypergame: level-1 server %d received a second token", v))
			}
			if i != req {
				panic(fmt.Sprintf("hypergame: level-1 server %d granted through unrequested channel", v))
			}
			occ = true
			cnt = pr.killArc(i, cnt)
		case hwAccepted:
			if i != off {
				panic(fmt.Sprintf("hypergame: level-1 server %d accepted on unoffered channel", v))
			}
			occ = false
			cnt = pr.killArc(i, cnt)
			off = -1
		default:
			panic(fmt.Sprintf("hypergame: level-1 server %d got unexpected word %d", v, msg))
		}
	}
	if req >= 0 && (occ || aflags[req]&hDead != 0 || aflags[req]&hChanOcc == 0) {
		req = -1
	}
	if off >= 0 && aflags[off]&hDead != 0 {
		off = -1
	}

	requestArc, offerArc := -1, -1
	if !occ && req < 0 && cnt>>(2*hcntBits) > 0 {
		const mask = hRoleMask | hDead | hChanOcc
		const want = hRoleChild | hChanOcc
		if pr.tie == 0 {
			requestArc = pr.pickFirst(a0, a1, mask, want)
		} else {
			requestArc = pr.pickRandom(v, a0, a1, mask, want)
		}
		req = requestArc
		pr.active[v]++
	}
	if occ && off < 0 && cnt&hcntMask > 0 {
		const mask = hRoleMask | hDead
		const want = hRoleHead
		if pr.tie == 0 {
			offerArc = pr.pickFirst(a0, a1, mask, want)
		} else {
			offerArc = pr.pickRandom(v, a0, a1, mask, want)
		}
		off = offerArc
	}

	halt := (occ && cnt&hcntMask == 0) || (!occ && (cnt>>hcntBits)&hcntMask == 0 && req < 0)
	// Quiescent-outbox skip (see flatHyperState.unch).
	changed := requestArc >= 0 || offerArc >= 0 || halt || portDied || occ != wasOcc
	un := pr.unch[v]
	if changed {
		un = -1
	} else if un < 2 {
		un++
	}
	if un < 2 {
		rev := inc.Rev
		for i := a0; i < a1; i++ {
			var word local.Word
			switch {
			case aflags[i]&hDead != 0:
			case halt:
				word = hwLeave
			case i == requestArc:
				word = hwRequest
			case i == offerArc:
				word = hwOffer
			}
			send[rev[i]] = word
		}
	}
	pr.unch[v] = un
	pr.occ[v] = occ
	pr.reqArc[v] = int32(req)
	pr.offArc[v] = int32(off)
	pr.counters[v] = cnt
	if halt {
		halted[v] = true
	}
	return delivered
}

// stepRelay3 relays for one hyperedge: pull mode reuses the generic relay
// discipline; push mode walks the head's offer over the live children
// until one accepts.
func (pr *flatHyper3) stepRelay3(round, v int, recv, send []local.Word, halted []bool, moves []Move) ([]Move, int64) {
	inc := pr.fi.inc
	n := pr.fi.N()
	a0, a1 := inc.ArcRange(v)
	aflags := pr.aflags
	hArc := int(pr.headArc[v])
	headOcc := pr.occ[v]
	wasOcc := headOcc
	pend := int(pr.reqArc[v])
	hadPend := pend >= 0
	offChild := int(pr.offArc[v])
	wasOffChild := offChild
	offering := pr.offering[v]
	wasOffering := offering
	cnt := pr.counters[v]
	var delivered int64
	granted, accepted := false, false
	portDied := false
	for i := a0; i < a1; i++ {
		msg := recv[i]
		if msg == 0 {
			continue
		}
		delivered++
		switch msg {
		case hwLeave:
			if pr.aflags[i]&hDead == 0 {
				portDied = true
			}
			cnt = pr.killArc(i, cnt)
		case hwAnnFree, hwAnnOcc:
			headOcc = msg == hwAnnOcc
		case hwRequest:
			if pend < 0 && aflags[i]&hDead == 0 {
				pend = i
			}
		case hwGrant:
			if pend < 0 || aflags[pend]&hDead != 0 {
				panic(fmt.Sprintf("hypergame: relay %d granted with no pending child", v-n))
			}
			granted = true
		case hwOffer:
			if i != hArc {
				panic(fmt.Sprintf("hypergame: relay %d got an offer from a non-head", v-n))
			}
			offering = true
		case hwAccept:
			if i != offChild {
				panic(fmt.Sprintf("hypergame: relay %d got an accept from an unoffered child", v-n))
			}
			accepted = true
		default:
			panic(fmt.Sprintf("hypergame: relay %d got unexpected word %d", v-n, msg))
		}
	}

	rev := inc.Rev
	store := func(halt bool) {
		pr.occ[v] = headOcc
		pr.reqArc[v] = int32(pend)
		pr.offArc[v] = int32(offChild)
		pr.offering[v] = offering
		pr.counters[v] = cnt
		if halt {
			halted[v] = true
		}
	}
	if granted {
		moves = append(moves, Move{Edge: v - n, From: int(inc.Col[hArc]), To: int(inc.Col[pend]), Round: round})
		for i := a0; i < a1; i++ {
			var word local.Word
			switch {
			case aflags[i]&hDead != 0:
			case i == pend:
				word = hwGrant
			default:
				word = hwLeave
			}
			send[rev[i]] = word
		}
		store(true)
		return moves, delivered
	}
	if accepted {
		moves = append(moves, Move{Edge: v - n, From: int(inc.Col[hArc]), To: int(inc.Col[offChild]), Round: round})
		for i := a0; i < a1; i++ {
			var word local.Word
			switch {
			case aflags[i]&hDead != 0:
			case i == hArc:
				word = hwAccepted
			default:
				word = hwLeave
			}
			send[rev[i]] = word
		}
		store(true)
		return moves, delivered
	}

	if pend >= 0 && (aflags[pend]&hDead != 0 || !headOcc) {
		pend = -1
	}
	// Push mode: walk the offer to the next live child when the previous
	// target died without accepting.
	if offering && (offChild < 0 || aflags[offChild]&hDead != 0) {
		offChild = pr.pickFirst(a0, a1, hRoleMask|hDead, hRoleChild)
	}

	if aflags[hArc]&hDead != 0 || (cnt>>hcntBits)&hcntMask == 0 {
		for i := a0; i < a1; i++ {
			var word local.Word
			if aflags[i]&hDead == 0 {
				if offering && i == hArc {
					word = hwNoChildren
				} else {
					word = hwLeave
				}
			}
			send[rev[i]] = word
		}
		store(true)
		return moves, delivered
	}

	// Quiescent-outbox skip (see flatHyperState.unch): the steady-state
	// outbox is a function of (headOcc, pend-presence, offering,
	// offChild, dead ports); the granted/accepted/no-children paths
	// above always store (they halt).
	changed := portDied || headOcc != wasOcc || (pend >= 0) != hadPend ||
		offChild != wasOffChild || offering != wasOffering
	un := pr.unch[v]
	if changed {
		un = -1
	} else if un < 2 {
		un++
	}
	if un < 2 {
		push := pr.push[v]
		for i := a0; i < a1; i++ {
			var word local.Word
			switch {
			case aflags[i]&hDead != 0:
			case push && offering && i == offChild:
				word = hwOffer
			case !push && i == hArc:
				if pend >= 0 {
					word = hwRequest
				}
			case !push && i != hArc:
				if headOcc {
					word = hwAnnOcc
				} else {
					word = hwAnnFree
				}
			}
			send[rev[i]] = word
		}
	}
	pr.unch[v] = un
	store(false)
	return moves, delivered
}

var _ local.FlatProgram = (*flatHyper3)(nil)

// SolveThreeLevelSharded runs the specialized three-level solver on the
// sharded flat engine; games taller than ThreeLevelMaxLevel are an error.
// Under first-port tie-breaking the run is bit-identical to SolveThreeLevel
// on the same game; RandomTies draws engine-specific streams. With
// opt.Session and opt.Workspace set, the engine and the program state are
// rebuilt in place across solves (see Workspace).
func SolveThreeLevelSharded(fi *FlatInstance, opt ShardedSolveOptions) (*FlatResult, error) {
	if h := fi.Height(); h > ThreeLevelMaxLevel {
		return nil, fmt.Errorf("hypergame: 3-level solver got height %d > %d", h, ThreeLevelMaxLevel)
	}
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 1 << 20
	}
	pr := &flatHyper3{flatHyperState: &flatHyperState{}}
	if opt.Workspace != nil {
		pr = &opt.Workspace.p3
	}
	pr.reset3(fi, opt)
	stats, err := runFlatHyper(fi.inc, pr, opt)
	if err != nil {
		return nil, err
	}
	return pr.result(stats), nil
}
