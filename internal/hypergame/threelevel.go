package hypergame

import (
	"fmt"
	"math/rand"
	"sort"

	"tokendrop/internal/graph"
	"tokendrop/internal/local"
)

// Specialized solver for hypergraph games on levels {0, 1, 2} — the
// algorithm behind Theorem 7.5 (O(C·S²) for the 2-bounded stable
// assignment problem), which lifts the flat Theorem 4.7 algorithm to
// hyperedges: the middle layer drives all movement, pulling tokens down
// from level 2 through request/grant handshakes and pushing tokens to
// level 0 through offer/accept handshakes. Every resolved handshake
// removes a neighbor or a hyperedge from the game, which is what yields
// the O(Δ) = O(max(C,S)) round count per game.
//
// Pull channels (head on level 2) reuse the generic relay discipline of
// distributed.go; push channels (head on level 1) work in the opposite
// direction: the occupied head offers its token to the relay, the relay
// walks its live children until one accepts (live level-0 nodes are
// always unoccupied and accept immediately), and the acceptance consumes
// the hyperedge.

type sOffer struct{}
type sAccept struct{}
type cOffer struct{}
type cAccepted struct{}
type cNoChildren struct{}

// ThreeLevelMaxLevel is the maximum height accepted by SolveThreeLevel.
const ThreeLevelMaxLevel = 2

// server3Machine is the per-server machine of the specialized solver.
type server3Machine struct {
	vertex int
	level  int
	role   []portRole
	tie    int
	rng    *rand.Rand

	occupied  bool
	portDead  []bool
	chanOcc   []bool
	requested int // outstanding pull request port (level 1)
	offered   int // outstanding push offer port (level 1)
	active    int
}

func (m *server3Machine) Init(info local.NodeInfo) {
	m.portDead = make([]bool, info.Degree)
	m.chanOcc = make([]bool, info.Degree)
	m.requested = -1
	m.offered = -1
	for p, r := range m.role {
		if r == roleBystander {
			m.portDead[p] = true
		}
	}
}

func (m *server3Machine) pick(eligible []bool) int {
	if m.tie == 0 {
		for p, ok := range eligible {
			if ok {
				return p
			}
		}
		return -1
	}
	count, choice := 0, -1
	for p, ok := range eligible {
		if !ok {
			continue
		}
		count++
		if m.rng.Intn(count) == 0 {
			choice = p
		}
	}
	return choice
}

func (m *server3Machine) liveByRole(role portRole) int {
	n := 0
	for p, dead := range m.portDead {
		if !dead && m.role[p] == role {
			n++
		}
	}
	return n
}

func (m *server3Machine) Step(round int, in []local.Payload, out []local.Payload) bool {
	switch m.level {
	case 0:
		return m.stepBottom(in, out)
	case 1:
		return m.stepMiddle(in, out)
	case 2:
		return m.stepTop(in, out)
	}
	panic(fmt.Sprintf("hypergame: 3-level server on level %d", m.level))
}

// stepTop: level-2 servers only head hyperedges; they announce, grant one
// relayed request, and leave as soon as they are unoccupied or isolated.
func (m *server3Machine) stepTop(in []local.Payload, out []local.Payload) bool {
	var requests []bool
	for p, raw := range in {
		if raw == nil {
			continue
		}
		switch raw.(type) {
		case cLeave:
			m.portDead[p] = true
		case cRequest:
			if requests == nil {
				requests = make([]bool, len(in))
			}
			requests[p] = !m.portDead[p]
		default:
			panic(fmt.Sprintf("hypergame: level-2 server %d got %T", m.vertex, raw))
		}
	}
	grantPort := -1
	if m.occupied && requests != nil {
		grantPort = m.pick(requests)
	}
	if grantPort >= 0 {
		m.occupied = false
		m.portDead[grantPort] = true
	}
	halt := !m.occupied || m.liveByRole(roleHead) == 0
	for p := range out {
		if m.portDead[p] && p != grantPort {
			continue
		}
		switch {
		case p == grantPort:
			out[p] = sGrant{}
		case halt:
			out[p] = sLeave{}
		case m.role[p] == roleHead:
			out[p] = sAnnounce{Occupied: m.occupied}
		}
	}
	return halt
}

// stepBottom: level-0 servers accept one relayed offer and leave.
func (m *server3Machine) stepBottom(in []local.Payload, out []local.Payload) bool {
	var offers []bool
	for p, raw := range in {
		if raw == nil {
			continue
		}
		switch raw.(type) {
		case cLeave:
			m.portDead[p] = true
		case cOffer:
			if offers == nil {
				offers = make([]bool, len(in))
			}
			offers[p] = !m.portDead[p]
		default:
			panic(fmt.Sprintf("hypergame: level-0 server %d got %T", m.vertex, raw))
		}
	}
	acceptPort := -1
	if !m.occupied && offers != nil {
		acceptPort = m.pick(offers)
	}
	if acceptPort >= 0 {
		m.occupied = true
		m.portDead[acceptPort] = true
	}
	halt := m.occupied || m.liveByRole(roleChild) == 0
	for p := range out {
		if m.portDead[p] && p != acceptPort {
			continue
		}
		switch {
		case p == acceptPort:
			out[p] = sAccept{}
		case halt:
			out[p] = sLeave{}
		}
	}
	return halt
}

// stepMiddle: level-1 servers pull from above while unoccupied and push
// below while occupied.
func (m *server3Machine) stepMiddle(in []local.Payload, out []local.Payload) bool {
	for p, raw := range in {
		if raw == nil {
			continue
		}
		switch msg := raw.(type) {
		case cLeave:
			m.portDead[p] = true
			m.chanOcc[p] = false
		case cNoChildren:
			// Our offered hyperedge ran out of children; it is dead.
			m.portDead[p] = true
		case cAnnounce:
			if m.role[p] != roleChild {
				panic(fmt.Sprintf("hypergame: level-1 server %d got announce on non-child port", m.vertex))
			}
			m.chanOcc[p] = msg.Occupied
		case cGrant:
			if m.occupied {
				panic(fmt.Sprintf("hypergame: level-1 server %d received a second token", m.vertex))
			}
			if p != m.requested {
				panic(fmt.Sprintf("hypergame: level-1 server %d granted through unrequested channel", m.vertex))
			}
			m.occupied = true
			m.portDead[p] = true
			m.chanOcc[p] = false
		case cAccepted:
			if p != m.offered {
				panic(fmt.Sprintf("hypergame: level-1 server %d accepted on unoffered channel", m.vertex))
			}
			m.occupied = false
			m.portDead[p] = true
			m.offered = -1
		default:
			panic(fmt.Sprintf("hypergame: level-1 server %d got %T", m.vertex, raw))
		}
	}
	if m.requested >= 0 && (m.occupied || m.portDead[m.requested] || !m.chanOcc[m.requested]) {
		m.requested = -1
	}
	if m.offered >= 0 && m.portDead[m.offered] {
		m.offered = -1
	}

	requestPort, offerPort := -1, -1
	if !m.occupied && m.requested < 0 {
		eligible := make([]bool, len(in))
		any := false
		for p := range eligible {
			if m.role[p] == roleChild && !m.portDead[p] && m.chanOcc[p] {
				eligible[p] = true
				any = true
			}
		}
		if any {
			requestPort = m.pick(eligible)
			m.requested = requestPort
			m.active++
		}
	}
	if m.occupied && m.offered < 0 {
		eligible := make([]bool, len(in))
		any := false
		for p := range eligible {
			if m.role[p] == roleHead && !m.portDead[p] {
				eligible[p] = true
				any = true
			}
		}
		if any {
			offerPort = m.pick(eligible)
			m.offered = offerPort
		}
	}

	halt := (m.occupied && m.liveByRole(roleHead) == 0) ||
		(!m.occupied && m.liveByRole(roleChild) == 0 && m.requested < 0)
	for p := range out {
		if m.portDead[p] {
			continue
		}
		switch {
		case halt:
			out[p] = sLeave{}
		case p == requestPort:
			out[p] = sRequest{}
		case p == offerPort && m.offered == p:
			out[p] = sOffer{}
		}
	}
	return halt
}

// relay3Machine relays for one hyperedge: pull mode when its head is on
// level 2 (request/grant, as in distributed.go) and push mode when its
// head is on level 1 (offer walks the children until one accepts).
type relay3Machine struct {
	edgeID   int
	pushMode bool
	headPort int
	childPts []int
	vertexAt []int

	headOcc    bool
	pending    int // pull mode: pending child request port
	offerChild int // push mode: child the current offer was forwarded to
	offering   bool
	portDead   []bool

	moves []Move
}

func (m *relay3Machine) Init(info local.NodeInfo) {
	m.portDead = make([]bool, info.Degree)
	alive := make([]bool, info.Degree)
	alive[m.headPort] = true
	for _, p := range m.childPts {
		alive[p] = true
	}
	for p := range m.portDead {
		m.portDead[p] = !alive[p]
	}
	m.pending = -1
	m.offerChild = -1
}

func (m *relay3Machine) liveChildren() int {
	n := 0
	for _, p := range m.childPts {
		if !m.portDead[p] {
			n++
		}
	}
	return n
}

func (m *relay3Machine) nextLiveChild() int {
	for _, p := range m.childPts {
		if !m.portDead[p] {
			return p
		}
	}
	return -1
}

func (m *relay3Machine) Step(round int, in []local.Payload, out []local.Payload) bool {
	granted, accepted := false, false
	for p, raw := range in {
		if raw == nil {
			continue
		}
		switch msg := raw.(type) {
		case sLeave:
			m.portDead[p] = true
		case sAnnounce:
			m.headOcc = msg.Occupied
		case sRequest:
			if m.pending < 0 && !m.portDead[p] {
				m.pending = p
			}
		case sGrant:
			if m.pending < 0 || m.portDead[m.pending] {
				panic(fmt.Sprintf("hypergame: relay %d granted with no pending child", m.edgeID))
			}
			granted = true
		case sOffer:
			if p != m.headPort {
				panic(fmt.Sprintf("hypergame: relay %d got an offer from a non-head", m.edgeID))
			}
			m.offering = true
		case sAccept:
			if p != m.offerChild {
				panic(fmt.Sprintf("hypergame: relay %d got an accept from an unoffered child", m.edgeID))
			}
			accepted = true
		default:
			panic(fmt.Sprintf("hypergame: relay %d got %T", m.edgeID, raw))
		}
	}

	if granted {
		m.moves = append(m.moves, Move{
			Edge: m.edgeID, From: m.vertexAt[m.headPort], To: m.vertexAt[m.pending], Round: round,
		})
		for p := range out {
			if m.portDead[p] {
				continue
			}
			if p == m.pending {
				out[p] = cGrant{}
			} else {
				out[p] = cLeave{}
			}
		}
		return true
	}
	if accepted {
		m.moves = append(m.moves, Move{
			Edge: m.edgeID, From: m.vertexAt[m.headPort], To: m.vertexAt[m.offerChild], Round: round,
		})
		for p := range out {
			if m.portDead[p] {
				continue
			}
			if p == m.headPort {
				out[p] = cAccepted{}
			} else {
				out[p] = cLeave{}
			}
		}
		return true
	}

	if m.pending >= 0 && (m.portDead[m.pending] || !m.headOcc) {
		m.pending = -1
	}
	// Push mode: walk the offer to the next live child when the previous
	// target died without accepting.
	if m.offering && (m.offerChild < 0 || m.portDead[m.offerChild]) {
		m.offerChild = m.nextLiveChild()
	}

	if m.portDead[m.headPort] || m.liveChildren() == 0 {
		for p := range out {
			if m.portDead[p] {
				continue
			}
			if m.offering && p == m.headPort {
				out[p] = cNoChildren{}
			} else {
				out[p] = cLeave{}
			}
		}
		return true
	}

	for p := range out {
		if m.portDead[p] {
			continue
		}
		switch {
		case m.pushMode && m.offering && p == m.offerChild:
			out[p] = cOffer{}
		case !m.pushMode && p == m.headPort && m.pending >= 0:
			out[p] = cRequest{}
		case !m.pushMode && p != m.headPort:
			out[p] = cAnnounce{Occupied: m.headOcc}
		}
	}
	return false
}

var (
	_ local.Machine = (*server3Machine)(nil)
	_ local.Machine = (*relay3Machine)(nil)
)

// SolveThreeLevel runs the specialized solver on a game of height at most
// ThreeLevelMaxLevel. It returns an error on taller games.
func SolveThreeLevel(inst *Instance, opt SolveOptions) (*Solution, DistStats, error) {
	if h := inst.Height(); h > ThreeLevelMaxLevel {
		return nil, DistStats{}, fmt.Errorf("hypergame: 3-level solver got height %d > %d", h, ThreeLevelMaxLevel)
	}
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 1 << 20
	}
	n, mm := inst.N(), inst.M()
	net := graph.New(n + mm)
	for id, e := range inst.edges {
		for _, v := range e {
			net.AddEdge(v, n+id)
		}
	}

	servers := make([]*server3Machine, n)
	relays := make([]*relay3Machine, mm)
	nw := local.NewNetwork(net, func(node int) local.Machine {
		if node < n {
			adj := net.Adj(node)
			sm := &server3Machine{
				vertex:   node,
				level:    inst.level[node],
				role:     make([]portRole, len(adj)),
				occupied: inst.Token(node),
			}
			if opt.RandomTies {
				sm.tie = 1
				sm.rng = rand.New(rand.NewSource(opt.Seed ^ int64(node)*0x9e3779b9))
			}
			for p, a := range adj {
				edge := a.To - n
				switch {
				case inst.head[edge] == node:
					sm.role[p] = roleHead
				case inst.level[node] == inst.level[inst.head[edge]]-1:
					sm.role[p] = roleChild
				default:
					sm.role[p] = roleBystander
				}
			}
			servers[node] = sm
			return sm
		}
		edge := node - n
		adj := net.Adj(node)
		rm := &relay3Machine{
			edgeID:   edge,
			pushMode: inst.level[inst.head[edge]] == 1,
			headPort: -1,
			vertexAt: make([]int, len(adj)),
		}
		for p, a := range adj {
			rm.vertexAt[p] = a.To
			if a.To == inst.head[edge] {
				rm.headPort = p
			} else if inst.level[a.To] == inst.level[inst.head[edge]]-1 {
				rm.childPts = append(rm.childPts, p)
			}
		}
		relays[edge] = rm
		return rm
	})
	stats, err := nw.Run(local.Options{MaxRounds: opt.MaxRounds, Workers: opt.Workers, MeasureBits: opt.MeasureBits})
	if err != nil {
		return nil, DistStats{}, err
	}

	var all []Move
	consumed := make([]bool, mm)
	for _, rm := range relays {
		for _, mv := range rm.moves {
			all = append(all, mv)
			consumed[mv.Edge] = true
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Round < all[j].Round })
	final := make([]bool, n)
	maxActive := 0
	for v, sm := range servers {
		final[v] = sm.occupied
		if sm.active > maxActive {
			maxActive = sm.active
		}
	}
	sol := &Solution{Inst: inst, Moves: all, Final: final, Consumed: consumed, Rounds: stats.Rounds}
	ds := DistStats{Rounds: stats.Rounds, Messages: stats.Messages, MaxActiveRounds: maxActive, MaxMessageBits: stats.MaxMessageBits}
	return sol, ds, nil
}
