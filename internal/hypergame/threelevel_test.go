package hypergame

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestThreeLevelRejectsTallGames(t *testing.T) {
	inst := MustInstance(
		[]int{0, 1, 2, 3},
		[]bool{false, false, false, true},
		[][]int{{0, 1}, {1, 2}, {2, 3}},
		[]int{1, 2, 3},
	)
	if _, _, err := SolveThreeLevel(inst, SolveOptions{}); err == nil {
		t.Fatal("height-3 game accepted")
	}
}

func TestThreeLevelOnTriInstance(t *testing.T) {
	sol, stats, err := SolveThreeLevel(triInstance(), SolveOptions{MaxRounds: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sol); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds == 0 || len(sol.Moves) == 0 {
		t.Fatal("expected movement")
	}
}

// random3Level builds a random game on levels {0,1,2}: level-2 heads with
// level-1 children (pull edges) and level-1 heads with level-0 children
// (push edges). Tokens at all of level 2 and some of level 1; level-1
// heads have true load 1 in the Theorem 7.5 setting, here generalized.
func random3Level(width, pullEdges, pushEdges, rank int, midProb float64, rng *rand.Rand) *Instance {
	n := 3 * width
	level := make([]int, n)
	id := func(l, i int) int { return l*width + i }
	for l := 0; l < 3; l++ {
		for i := 0; i < width; i++ {
			level[id(l, i)] = l
		}
	}
	var edges [][]int
	var heads []int
	addEdge := func(headLevel int) {
		head := id(headLevel, rng.Intn(width))
		members := map[int]bool{head: true}
		members[id(headLevel-1, rng.Intn(width))] = true
		for len(members) < rank {
			l := headLevel - 1 + rng.Intn(2)
			if l > 2 {
				l = 2
			}
			members[id(l, rng.Intn(width))] = true
		}
		e := make([]int, 0, len(members))
		for v := range members {
			e = append(e, v)
		}
		edges = append(edges, e)
		heads = append(heads, head)
	}
	for i := 0; i < pullEdges; i++ {
		addEdge(2)
	}
	for i := 0; i < pushEdges; i++ {
		addEdge(1)
	}
	token := make([]bool, n)
	for i := 0; i < width; i++ {
		token[id(2, i)] = true
		if rng.Float64() < midProb {
			token[id(1, i)] = true
		}
	}
	inst, err := NewInstance(level, token, edges, heads)
	if err != nil {
		return random3Level(width, pullEdges, pushEdges, rank, midProb, rng)
	}
	return inst
}

func TestThreeLevelRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 20; i++ {
		inst := random3Level(3+rng.Intn(6), 2+rng.Intn(10), 2+rng.Intn(10), 2+rng.Intn(3), rng.Float64(), rng)
		for _, random := range []bool{false, true} {
			sol, _, err := SolveThreeLevel(inst, SolveOptions{RandomTies: random, Seed: int64(i), MaxRounds: 200000})
			if err != nil {
				t.Fatalf("instance %d: %v", i, err)
			}
			if err := Verify(sol); err != nil {
				t.Fatalf("instance %d (random=%v): %v", i, random, err)
			}
		}
	}
}

func TestThreeLevelAgreesWithGenericSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := random3Level(6, 8, 8, 3, 0.4, rng)
	a, _, err := SolveThreeLevel(inst, SolveOptions{MaxRounds: 200000})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SolveProposal(inst, SolveOptions{MaxRounds: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(a); err != nil {
		t.Fatalf("specialized: %v", err)
	}
	if err := Verify(b); err != nil {
		t.Fatalf("generic: %v", err)
	}
}

func TestThreeLevelLinearRounds(t *testing.T) {
	// The specialized solver's rounds grow linearly with the degree on
	// 3-level games (Theorem 4.7 lifted to hyperedges).
	rng := rand.New(rand.NewSource(29))
	for _, width := range []int{4, 8, 12} {
		inst := random3Level(width, width*2, width*2, 3, 0.5, rng)
		s := inst.MaxVertexDegree()
		sol, stats, err := SolveThreeLevel(inst, SolveOptions{MaxRounds: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(sol); err != nil {
			t.Fatal(err)
		}
		if stats.Rounds > 25*s+60 {
			t.Fatalf("S=%d: %d rounds, above the linear bound", s, stats.Rounds)
		}
	}
}

func TestThreeLevelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	inst := random3Level(6, 10, 10, 3, 0.3, rng)
	run := func(workers int) *Solution {
		sol, _, err := SolveThreeLevel(inst, SolveOptions{MaxRounds: 200000, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	a, b := run(1), run(10)
	if len(a.Moves) != len(b.Moves) {
		t.Fatal("nondeterministic move count")
	}
	for i := range a.Moves {
		if a.Moves[i] != b.Moves[i] {
			t.Fatal("nondeterministic move log")
		}
	}
}

// Property: specialized solutions verify on random 3-level games.
func TestThreeLevelProperty(t *testing.T) {
	check := func(seed int64, wRaw, puRaw, psRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := random3Level(int(wRaw%6)+3, int(puRaw%10)+1, int(psRaw%10)+1, 2+int(seed&1), rng.Float64(), rng)
		sol, _, err := SolveThreeLevel(inst, SolveOptions{RandomTies: seed%2 == 0, Seed: seed, MaxRounds: 1 << 20})
		if err != nil {
			return false
		}
		return Verify(sol) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
