package hypergame

import (
	"math/rand"
	"testing"
)

// The flat-solver differential tests pin the sharded hypergame ports to
// the object machines: both build the incidence network with the same port
// numbering and run the same protocol, so under first-port tie-breaking
// the rounds, message counts, move logs, and final placements must agree
// exactly. RandomTies runs draw engine-specific streams and are judged by
// the rules oracle alone.

func assertFlatMatches(t *testing.T, tag string, inst *Instance, sol *Solution, stats DistStats, flat *FlatResult) {
	t.Helper()
	if flat.Stats.Rounds != stats.Rounds {
		t.Fatalf("%s: rounds %d (flat) != %d (object)", tag, flat.Stats.Rounds, stats.Rounds)
	}
	if flat.Stats.Messages != stats.Messages {
		t.Fatalf("%s: messages %d (flat) != %d (object)", tag, flat.Stats.Messages, stats.Messages)
	}
	if flat.Stats.MaxActiveRounds != stats.MaxActiveRounds {
		t.Fatalf("%s: max active %d (flat) != %d (object)", tag, flat.Stats.MaxActiveRounds, stats.MaxActiveRounds)
	}
	if len(flat.Moves) != len(sol.Moves) {
		t.Fatalf("%s: %d moves (flat) != %d (object)", tag, len(flat.Moves), len(sol.Moves))
	}
	for i := range flat.Moves {
		if flat.Moves[i] != sol.Moves[i] {
			t.Fatalf("%s: move %d diverges: %+v (flat) != %+v (object)", tag, i, flat.Moves[i], sol.Moves[i])
		}
	}
	for v := range flat.Final {
		if flat.Final[v] != sol.Final[v] {
			t.Fatalf("%s: final token at %d diverges", tag, v)
		}
	}
	if err := Verify(flat.Solution(inst)); err != nil {
		t.Fatalf("%s: flat solution unverified: %v", tag, err)
	}
}

func TestFlatProposalMatchesObject(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 60; i++ {
		inst := randomHyperInstance(2+rng.Intn(4), 3+rng.Intn(5), 2+rng.Intn(12), 2+rng.Intn(3), rng.Float64(), rng)
		sol, stats, err := SolveProposal(inst, SolveOptions{Seed: int64(i), MaxRounds: 200000})
		if err != nil {
			t.Fatalf("instance %d: object solver: %v", i, err)
		}
		fi := NewFlatInstanceFromInstance(inst)
		flat, err := SolveProposalSharded(fi, ShardedSolveOptions{Seed: int64(i), Shards: 1 + i%5})
		if err != nil {
			t.Fatalf("instance %d: flat solver: %v", i, err)
		}
		assertFlatMatches(t, "proposal", inst, sol, stats, flat)
	}
}

func TestFlatThreeLevelMatchesObject(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 60; i++ {
		inst := random3Level(3+rng.Intn(6), 2+rng.Intn(10), 2+rng.Intn(10), 2+rng.Intn(3), rng.Float64(), rng)
		sol, stats, err := SolveThreeLevel(inst, SolveOptions{Seed: int64(i), MaxRounds: 200000})
		if err != nil {
			t.Fatalf("instance %d: object solver: %v", i, err)
		}
		fi := NewFlatInstanceFromInstance(inst)
		flat, err := SolveThreeLevelSharded(fi, ShardedSolveOptions{Seed: int64(i), Shards: 1 + i%5})
		if err != nil {
			t.Fatalf("instance %d: flat solver: %v", i, err)
		}
		assertFlatMatches(t, "three-level", inst, sol, stats, flat)
	}
}

func TestFlatSolversRandomTies(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 25; i++ {
		inst := randomHyperInstance(2+rng.Intn(3), 3+rng.Intn(4), 2+rng.Intn(10), 2+rng.Intn(3), rng.Float64(), rng)
		fi := NewFlatInstanceFromInstance(inst)
		flat, err := SolveProposalSharded(fi, ShardedSolveOptions{RandomTies: true, Seed: int64(i), Shards: 1 + i%4})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if err := Verify(flat.Solution(inst)); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}

		inst3 := random3Level(3+rng.Intn(4), 2+rng.Intn(8), 2+rng.Intn(8), 2+rng.Intn(3), rng.Float64(), rng)
		fi3 := NewFlatInstanceFromInstance(inst3)
		flat3, err := SolveThreeLevelSharded(fi3, ShardedSolveOptions{RandomTies: true, Seed: int64(i), Shards: 1 + i%4})
		if err != nil {
			t.Fatalf("instance %d: 3-level: %v", i, err)
		}
		if err := Verify(flat3.Solution(inst3)); err != nil {
			t.Fatalf("instance %d: 3-level: %v", i, err)
		}
	}
}

// TestFlatShardCountInvariance pins schedule independence: the same game
// solved with 1..8 shards produces the same run.
func TestFlatShardCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	inst := randomHyperInstance(4, 6, 20, 3, 0.7, rng)
	fi := NewFlatInstanceFromInstance(inst)
	base, err := SolveProposalSharded(fi, ShardedSolveOptions{Seed: 7, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for shards := 2; shards <= 8; shards++ {
		res, err := SolveProposalSharded(fi, ShardedSolveOptions{Seed: 7, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Rounds != base.Stats.Rounds || len(res.Moves) != len(base.Moves) {
			t.Fatalf("shards=%d diverges from shards=1", shards)
		}
		for i := range res.Moves {
			if res.Moves[i] != base.Moves[i] {
				t.Fatalf("shards=%d: move %d diverges", shards, i)
			}
		}
	}
}

func TestNewFlatInstanceValidation(t *testing.T) {
	lvl := []int32{1, 0, 0}
	tok := []bool{true, false, false}
	cases := []struct {
		name string
		lvl  []int32
		tok  []bool
		eptr []int32
		ends []int32
		head []int32
	}{
		{"rank 1", lvl, tok, []int32{0, 1}, []int32{0}, []int32{0}},
		{"head not endpoint", lvl, tok, []int32{0, 2}, []int32{1, 2}, []int32{0}},
		{"repeated endpoint", lvl, tok, []int32{0, 2}, []int32{1, 1}, []int32{1}},
		{"bad head level", []int32{2, 0, 0}, tok, []int32{0, 2}, []int32{0, 1}, []int32{0}},
		{"negative level", []int32{-1, 0, 0}, tok, []int32{0, 2}, []int32{0, 1}, []int32{0}},
		{"length mismatch", lvl, []bool{true}, []int32{0, 2}, []int32{0, 1}, []int32{0}},
		{"offset mismatch", lvl, tok, []int32{0, 1, 2}, []int32{0, 1}, []int32{0}},
	}
	for _, tc := range cases {
		if _, err := NewFlatInstance(tc.lvl, tc.tok, tc.eptr, tc.ends, tc.head); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if _, err := NewFlatInstance(lvl, tok, []int32{0, 2}, []int32{0, 1}, []int32{0}); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}
