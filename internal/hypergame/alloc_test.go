package hypergame

import (
	"math/rand"
	"reflect"
	"testing"

	"tokendrop/internal/local"
)

// These tests pin the zero-allocation contract of the reusable execution
// layer for the hypergraph programs: a warmed local.Session plus
// Workspace rebuilds the incidence network, resets the program, and
// replays the entire engine run without a single heap allocation, and a
// reused session/workspace pair is observably identical to a fresh
// engine.

// TestSessionZeroAllocHyperProposal asserts 0 allocs for warmed repeat
// runs of the relay proposal program, including the per-phase incidence
// rebuild (Workspace.NewFlatInstance) the assignment loops perform.
func TestSessionZeroAllocHyperProposal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := NewFlatInstanceFromInstance(RandomLayered(LayeredConfig{
		Levels: 3, Width: 50, Edges: 140, Rank: 3, TokenProb: 0.7,
	}, rng))
	sess := local.NewSession(2)
	defer sess.Close()
	w := NewWorkspace()
	opt := ShardedSolveOptions{}
	run := func() {
		fi, err := w.NewFlatInstance(base.level, base.token, base.eptr, base.ends, base.head)
		if err != nil {
			t.Fatal(err)
		}
		w.prop.reset(fi, opt)
		if _, err := sess.Run(fi.inc, &w.prop, local.ShardedOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: grow the builder, incidence CSR, and program arrays once
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Errorf("warmed hypergame proposal solve allocated %.1f objects per run; want 0", allocs)
	}
}

// TestSessionZeroAllocHyperThreeLevel is the same contract for the
// specialized three-level program.
func TestSessionZeroAllocHyperThreeLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := NewFlatInstanceFromInstance(RandomThreeLevel(ThreeLevelConfig{
		Width: 60, PullEdges: 90, PushEdges: 90, Rank: 3, MidProb: 0.5,
	}, rng))
	sess := local.NewSession(2)
	defer sess.Close()
	w := NewWorkspace()
	opt := ShardedSolveOptions{}
	run := func() {
		fi, err := w.NewFlatInstance(base.level, base.token, base.eptr, base.ends, base.head)
		if err != nil {
			t.Fatal(err)
		}
		w.p3.reset3(fi, opt)
		if _, err := sess.Run(fi.inc, &w.p3, local.ShardedOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Errorf("warmed three-level hypergame solve allocated %.1f objects per run; want 0", allocs)
	}
}

// TestHyperSessionWorkspaceReuseMatchesFresh solves a varied sequence of
// hypergraph games (growing and shrinking, both solvers, both tie rules)
// through one session/workspace pair and demands exactly the
// fresh-engine results.
func TestHyperSessionWorkspaceReuseMatchesFresh(t *testing.T) {
	sess := local.NewSession(3)
	defer sess.Close()
	w := NewWorkspace()
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 18; i++ {
		var base *FlatInstance
		three := i%2 == 0
		if three {
			base = NewFlatInstanceFromInstance(RandomThreeLevel(ThreeLevelConfig{
				Width: 10 + 25*(i%3), PullEdges: 30 + 20*(i%3), PushEdges: 30, Rank: 2 + i%3, MidProb: 0.5,
			}, rng))
		} else {
			base = NewFlatInstanceFromInstance(RandomLayered(LayeredConfig{
				Levels: 2 + i%3, Width: 10 + 20*(i%4), Edges: 40 + 30*(i%3), Rank: 2 + i%2, TokenProb: 0.6,
			}, rng))
		}
		opt := ShardedSolveOptions{RandomTies: i%3 == 2, Seed: int64(i)}
		reused := opt
		reused.Session = sess
		reused.Workspace = w
		fi, err := w.NewFlatInstance(base.level, base.token, base.eptr, base.ends, base.head)
		if err != nil {
			t.Fatalf("game %d: workspace instance: %v", i, err)
		}

		solve := SolveProposalSharded
		if three {
			solve = SolveThreeLevelSharded
		}
		got, err := solve(fi, reused)
		if err != nil {
			t.Fatalf("game %d: reused solve: %v", i, err)
		}
		want, err := solve(base, opt)
		if err != nil {
			t.Fatalf("game %d: fresh solve: %v", i, err)
		}
		if got.Stats != want.Stats {
			t.Fatalf("game %d: stats %+v != fresh %+v", i, got.Stats, want.Stats)
		}
		if !reflect.DeepEqual(got.Moves, want.Moves) {
			t.Fatalf("game %d: move logs diverge (reused %d moves, fresh %d)", i, len(got.Moves), len(want.Moves))
		}
		if !reflect.DeepEqual(got.Final, want.Final) {
			t.Fatalf("game %d: final placements diverge", i)
		}
	}
}
