// Package hypergame generalizes the token dropping game to hypergraphs
// (Section 7.1): customers of degree above two become hyperedges over the
// server vertices. Each hyperedge e = {v1, …, vi} has a head v1 with
// ℓ(v1) = min{ℓ(v2), …, ℓ(vi)} + 1; a token can be passed by the head to
// one of the hyperedge's children (endpoints one level below the head),
// consuming the whole hyperedge. The rules of edge-disjoint traversals,
// unique destinations, and maximal traversals carry over.
//
// The distributed solver (Theorem 7.1, O(L·S²) rounds) runs on the natural
// LOCAL communication network of the assignment problem: the bipartite
// incidence graph in which every hyperedge is a relay node between its
// endpoint servers.
//
// Both solvers (the generic Theorem 7.1 proposal protocol and the
// specialized Theorem 7.5 three-level protocol) exist on both LOCAL
// runtimes: SolveProposal/SolveThreeLevel step object machines on the
// seed engine, SolveProposalSharded/SolveThreeLevelSharded run the same
// protocols as flat programs on the sharded engine, bit-identically under
// first-port tie-breaking (flat_test.go asserts this exactly).
package hypergame

import (
	"fmt"
	"math/rand"
	"sort"
)

// Instance is a hypergraph token dropping game.
type Instance struct {
	level []int
	token []bool
	edges [][]int // hyperedges: endpoint vertex sets
	head  []int   // per hyperedge: the head endpoint
}

// NewInstance validates the level structure: every hyperedge must satisfy
// ℓ(head) = min over other endpoints + 1, heads must be endpoints, and
// endpoints must be distinct.
func NewInstance(level []int, token []bool, edges [][]int, head []int) (*Instance, error) {
	if len(level) != len(token) {
		return nil, fmt.Errorf("hypergame: %d levels for %d token slots", len(level), len(token))
	}
	if len(edges) != len(head) {
		return nil, fmt.Errorf("hypergame: %d edges with %d heads", len(edges), len(head))
	}
	n := len(level)
	for v, l := range level {
		if l < 0 {
			return nil, fmt.Errorf("hypergame: vertex %d has negative level", v)
		}
	}
	for id, e := range edges {
		if len(e) < 2 {
			return nil, fmt.Errorf("hypergame: hyperedge %d has rank %d < 2", id, len(e))
		}
		seen := make(map[int]bool, len(e))
		headSeen := false
		minOther := -1
		for _, v := range e {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("hypergame: hyperedge %d endpoint %d out of range", id, v)
			}
			if seen[v] {
				return nil, fmt.Errorf("hypergame: hyperedge %d repeats endpoint %d", id, v)
			}
			seen[v] = true
			if v == head[id] {
				headSeen = true
				continue
			}
			if minOther < 0 || level[v] < minOther {
				minOther = level[v]
			}
		}
		if !headSeen {
			return nil, fmt.Errorf("hypergame: head %d of hyperedge %d is not an endpoint", head[id], id)
		}
		if level[head[id]] != minOther+1 {
			return nil, fmt.Errorf("hypergame: hyperedge %d head level %d != min other %d + 1",
				id, level[head[id]], minOther)
		}
	}
	return &Instance{
		level: append([]int(nil), level...),
		token: append([]bool(nil), token...),
		edges: cloneEdges(edges),
		head:  append([]int(nil), head...),
	}, nil
}

func cloneEdges(edges [][]int) [][]int {
	out := make([][]int, len(edges))
	for i, e := range edges {
		out[i] = append([]int(nil), e...)
	}
	return out
}

// MustInstance is NewInstance that panics on error.
func MustInstance(level []int, token []bool, edges [][]int, head []int) *Instance {
	inst, err := NewInstance(level, token, edges, head)
	if err != nil {
		panic(err)
	}
	return inst
}

// N returns the number of vertices.
func (in *Instance) N() int { return len(in.level) }

// M returns the number of hyperedges.
func (in *Instance) M() int { return len(in.edges) }

// Level returns the level of vertex v.
func (in *Instance) Level(v int) int { return in.level[v] }

// Height returns the maximum level.
func (in *Instance) Height() int {
	h := 0
	for _, l := range in.level {
		if l > h {
			h = l
		}
	}
	return h
}

// Token reports whether v initially holds a token.
func (in *Instance) Token(v int) bool { return in.token[v] }

// NumTokens returns the number of tokens.
func (in *Instance) NumTokens() int {
	k := 0
	for _, t := range in.token {
		if t {
			k++
		}
	}
	return k
}

// Edge returns the endpoints of hyperedge id (shared slice; do not
// modify).
func (in *Instance) Edge(id int) []int { return in.edges[id] }

// Head returns the head endpoint of hyperedge id.
func (in *Instance) Head(id int) int { return in.head[id] }

// Children returns the child endpoints of hyperedge id: the endpoints one
// level below the head.
func (in *Instance) Children(id int) []int {
	h := in.head[id]
	want := in.level[h] - 1
	var out []int
	for _, v := range in.edges[id] {
		if v != h && in.level[v] == want {
			out = append(out, v)
		}
	}
	return out
}

// HeadedBy returns the hyperedge ids whose head is v, in increasing order.
func (in *Instance) HeadedBy(v int) []int {
	var out []int
	for id, h := range in.head {
		if h == v {
			out = append(out, id)
		}
	}
	return out
}

// MaxRank returns C, the largest hyperedge rank.
func (in *Instance) MaxRank() int {
	c := 0
	for _, e := range in.edges {
		if len(e) > c {
			c = len(e)
		}
	}
	return c
}

// MaxVertexDegree returns S, the largest number of hyperedges sharing a
// vertex.
func (in *Instance) MaxVertexDegree() int {
	deg := make([]int, len(in.level))
	for _, e := range in.edges {
		for _, v := range e {
			deg[v]++
		}
	}
	s := 0
	for _, d := range deg {
		if d > s {
			s = d
		}
	}
	return s
}

// Move is one token pass: the head From of hyperedge Edge drops its token
// to child To, consuming the hyperedge.
type Move struct {
	Edge     int
	From, To int
	Round    int
}

// State is a mutable game position.
type State struct {
	inst     *Instance
	token    []bool
	consumed []bool
}

// NewState returns the initial position of inst.
func NewState(inst *Instance) *State {
	return &State{
		inst:     inst,
		token:    append([]bool(nil), inst.token...),
		consumed: make([]bool, inst.M()),
	}
}

// Token reports whether v currently holds a token.
func (s *State) Token(v int) bool { return s.token[v] }

// Consumed reports whether hyperedge id has been consumed.
func (s *State) Consumed(id int) bool { return s.consumed[id] }

// CanMove checks the legality of a move in the current position.
func (s *State) CanMove(id, from, to int) error {
	if id < 0 || id >= s.inst.M() {
		return fmt.Errorf("hypergame: no hyperedge %d", id)
	}
	if s.inst.head[id] != from {
		return fmt.Errorf("hypergame: %d is not the head of hyperedge %d", from, id)
	}
	child := false
	for _, v := range s.inst.Children(id) {
		if v == to {
			child = true
			break
		}
	}
	if !child {
		return fmt.Errorf("hypergame: %d is not a child of hyperedge %d", to, id)
	}
	if s.consumed[id] {
		return fmt.Errorf("hypergame: hyperedge %d already consumed", id)
	}
	if !s.token[from] {
		return fmt.Errorf("hypergame: vertex %d holds no token", from)
	}
	if s.token[to] {
		return fmt.Errorf("hypergame: vertex %d already holds a token", to)
	}
	return nil
}

// Apply performs the move, consuming the hyperedge.
func (s *State) Apply(id, from, to int) error {
	if err := s.CanMove(id, from, to); err != nil {
		return err
	}
	s.token[from] = false
	s.token[to] = true
	s.consumed[id] = true
	return nil
}

// MovableTokens lists all currently legal moves in deterministic order.
func (s *State) MovableTokens() []Move {
	var out []Move
	for id := range s.inst.edges {
		if s.consumed[id] {
			continue
		}
		h := s.inst.head[id]
		if !s.token[h] {
			continue
		}
		for _, c := range s.inst.Children(id) {
			if !s.token[c] {
				out = append(out, Move{Edge: id, From: h, To: c})
			}
		}
	}
	return out
}

// Stuck reports whether no token can move.
func (s *State) Stuck() bool { return len(s.MovableTokens()) == 0 }

// Solution is a move log plus the final position.
type Solution struct {
	Inst     *Instance
	Moves    []Move
	Final    []bool
	Consumed []bool
	Rounds   int
}

// Traversal is the vertex path a token followed.
type Traversal struct{ Path []int }

// Origin returns the first vertex of the traversal.
func (t Traversal) Origin() int { return t.Path[0] }

// Destination returns the last vertex of the traversal.
func (t Traversal) Destination() int { return t.Path[len(t.Path)-1] }

// Traversals reconstructs per-token paths by chronological occupancy
// simulation (cf. core.Solution.Traversals). It panics on illegal logs.
func (s *Solution) Traversals() []Traversal {
	moves := append([]Move(nil), s.Moves...)
	sort.SliceStable(moves, func(i, j int) bool { return moves[i].Round < moves[j].Round })
	tokenAt := make([]int, s.Inst.N())
	for v := range tokenAt {
		tokenAt[v] = -1
	}
	var paths [][]int
	for v := 0; v < s.Inst.N(); v++ {
		if s.Inst.Token(v) {
			tokenAt[v] = len(paths)
			paths = append(paths, []int{v})
		}
	}
	for _, m := range moves {
		tk := tokenAt[m.From]
		if tk < 0 {
			panic(fmt.Sprintf("hypergame: move %+v leaves an empty vertex", m))
		}
		if tokenAt[m.To] >= 0 {
			panic(fmt.Sprintf("hypergame: move %+v lands on an occupied vertex", m))
		}
		tokenAt[m.From] = -1
		tokenAt[m.To] = tk
		paths[tk] = append(paths[tk], m.To)
	}
	out := make([]Traversal, len(paths))
	for i, p := range paths {
		out[i] = Traversal{Path: p}
	}
	return out
}

// Verify replays the solution against the hypergraph game rules: legal
// moves over fresh hyperedges (rule 1), unique destinations (rule 2), and
// maximality (rule 3). It mirrors core.Verify.
func Verify(s *Solution) error {
	st := NewState(s.Inst)
	moves := append([]Move(nil), s.Moves...)
	sort.SliceStable(moves, func(i, j int) bool { return moves[i].Round < moves[j].Round })
	for i, m := range moves {
		if err := st.Apply(m.Edge, m.From, m.To); err != nil {
			return fmt.Errorf("hypergame: move %d (round %d) illegal: %w", i, m.Round, err)
		}
	}
	if s.Final != nil {
		for v, want := range s.Final {
			if st.Token(v) != want {
				return fmt.Errorf("hypergame: replay token(%d)=%v, solution says %v", v, st.Token(v), want)
			}
		}
	}
	if s.Consumed != nil {
		for id, want := range s.Consumed {
			if st.Consumed(id) != want {
				return fmt.Errorf("hypergame: replay consumed(%d)=%v, solution says %v", id, st.Consumed(id), want)
			}
		}
	}
	count := 0
	for v := 0; v < s.Inst.N(); v++ {
		if st.Token(v) {
			count++
		}
	}
	if count != s.Inst.NumTokens() {
		return fmt.Errorf("hypergame: token count changed from %d to %d", s.Inst.NumTokens(), count)
	}
	if mv := st.MovableTokens(); len(mv) > 0 {
		return fmt.Errorf("hypergame: not maximal: %d tokens can still move (first: %+v)", len(mv), mv[0])
	}
	seen := make(map[int]bool)
	for _, tr := range s.Traversals() {
		if seen[tr.Destination()] {
			return fmt.Errorf("hypergame: two traversals end at %d", tr.Destination())
		}
		seen[tr.Destination()] = true
	}
	return nil
}

// SolveSequential plays the game to completion with a centralized
// scheduler: repeatedly perform the first (or a seeded-random) legal move.
func SolveSequential(inst *Instance, rng *rand.Rand) *Solution {
	st := NewState(inst)
	var log []Move
	for step := 0; ; step++ {
		moves := st.MovableTokens()
		if len(moves) == 0 {
			break
		}
		m := moves[0]
		if rng != nil {
			m = moves[rng.Intn(len(moves))]
		}
		m.Round = step
		if err := st.Apply(m.Edge, m.From, m.To); err != nil {
			panic("hypergame: sequential solver chose an illegal move: " + err.Error())
		}
		log = append(log, m)
	}
	return &Solution{
		Inst:     inst,
		Moves:    log,
		Final:    append([]bool(nil), st.token...),
		Consumed: append([]bool(nil), st.consumed...),
	}
}
