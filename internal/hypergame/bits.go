package hypergame

// Encoded message sizes (local.Sized): a 4-bit tag covers the eleven
// relay/server message kinds; every payload is a constant number of bits,
// so the hypergraph game solvers are CONGEST-compatible as well.

func (sAnnounce) Bits() int   { return 4 + 1 }
func (sRequest) Bits() int    { return 4 }
func (sGrant) Bits() int      { return 4 }
func (sLeave) Bits() int      { return 4 }
func (cAnnounce) Bits() int   { return 4 + 1 }
func (cRequest) Bits() int    { return 4 }
func (cGrant) Bits() int      { return 4 }
func (cLeave) Bits() int      { return 4 }
func (sOffer) Bits() int      { return 4 }
func (sAccept) Bits() int     { return 4 }
func (cOffer) Bits() int      { return 4 }
func (cAccepted) Bits() int   { return 4 }
func (cNoChildren) Bits() int { return 4 }
