package hypergame

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// triInstance builds a small 3-level hypergraph game used across tests:
// vertices 0,1 at level 0; 2,3 at level 1; 4 at level 2; hyperedges
// {4,2,3} headed by 4 and {2,0,1} headed by 2; tokens at 4 and 2.
func triInstance() *Instance {
	return MustInstance(
		[]int{0, 0, 1, 1, 2},
		[]bool{false, false, true, false, true},
		[][]int{{4, 2, 3}, {2, 0, 1}},
		[]int{4, 2},
	)
}

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance([]int{0, 1}, []bool{false, true}, [][]int{{0, 1}}, []int{1}); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	cases := []struct {
		name  string
		level []int
		token []bool
		edges [][]int
		head  []int
	}{
		{"head not endpoint", []int{0, 1}, []bool{false, false}, [][]int{{0, 1}}, []int{5}},
		{"bad head level", []int{0, 2}, []bool{false, false}, [][]int{{0, 1}}, []int{1}},
		{"repeat endpoint", []int{0, 1}, []bool{false, false}, [][]int{{0, 0, 1}}, []int{1}},
		{"rank 1", []int{0, 1}, []bool{false, false}, [][]int{{1}}, []int{1}},
		{"negative level", []int{-1, 0}, []bool{false, false}, [][]int{{0, 1}}, []int{1}},
		{"size mismatch", []int{0, 1}, []bool{false}, [][]int{{0, 1}}, []int{1}},
	}
	for _, tc := range cases {
		if _, err := NewInstance(tc.level, tc.token, tc.edges, tc.head); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestChildrenAndAccessors(t *testing.T) {
	inst := triInstance()
	if inst.Height() != 2 || inst.NumTokens() != 2 || inst.M() != 2 {
		t.Fatal("basic accessors")
	}
	kids := inst.Children(0) // hyperedge {4,2,3} headed by 4: children at level 1
	if len(kids) != 2 {
		t.Fatalf("children of edge 0: %v", kids)
	}
	if hb := inst.HeadedBy(2); len(hb) != 1 || hb[0] != 1 {
		t.Fatalf("HeadedBy(2) = %v", hb)
	}
	if inst.MaxRank() != 3 {
		t.Fatal("max rank")
	}
	if inst.MaxVertexDegree() != 2 { // vertex 2 is in both hyperedges
		t.Fatal("max vertex degree")
	}
}

func TestStateMoves(t *testing.T) {
	inst := triInstance()
	st := NewState(inst)
	// Token at 2 can drop to 0 or 1 via edge 1; token at 4 cannot move
	// (its only children 2,3: 2 occupied, 3 free → it CAN move to 3).
	if len(st.MovableTokens()) != 3 {
		t.Fatalf("movable: %v", st.MovableTokens())
	}
	if err := st.Apply(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(1, 2, 1); err == nil {
		t.Fatal("reusing a consumed hyperedge allowed")
	}
	if err := st.Apply(0, 4, 2); err != nil {
		t.Fatal(err)
	}
	if !st.Stuck() {
		t.Fatal("should be stuck: edges consumed")
	}
}

func TestStateRejectsNonChildMoves(t *testing.T) {
	inst := triInstance()
	st := NewState(inst)
	if err := st.CanMove(0, 4, 0); err == nil {
		t.Fatal("move to non-endpoint/non-child accepted")
	}
	if err := st.CanMove(0, 2, 3); err == nil {
		t.Fatal("move by non-head accepted")
	}
}

func TestSequentialSolveAndVerify(t *testing.T) {
	sol := SolveSequential(triInstance(), nil)
	if err := Verify(sol); err != nil {
		t.Fatal(err)
	}
	solR := SolveSequential(triInstance(), rand.New(rand.NewSource(1)))
	if err := Verify(solR); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesNonMaximal(t *testing.T) {
	sol := SolveSequential(triInstance(), nil)
	bad := &Solution{Inst: sol.Inst, Moves: sol.Moves[:1]}
	if err := Verify(bad); err == nil {
		t.Fatal("accepted a truncated solution")
	}
}

// randomHyperInstance builds a random layered hypergraph game. Levels has
// width vertices per level; each hyperedge picks a head at some level
// ℓ ≥ 1 and rank-1 other endpoints from levels ≥ ℓ-1 with at least one at
// exactly ℓ-1.
func randomHyperInstance(levels, width, edges, rank int, tokenProb float64, rng *rand.Rand) *Instance {
	n := (levels + 1) * width
	level := make([]int, n)
	id := func(l, i int) int { return l*width + i }
	for l := 0; l <= levels; l++ {
		for i := 0; i < width; i++ {
			level[id(l, i)] = l
		}
	}
	var hedges [][]int
	var heads []int
	for e := 0; e < edges; e++ {
		hl := 1 + rng.Intn(levels)
		head := id(hl, rng.Intn(width))
		members := map[int]bool{head: true}
		// one guaranteed child
		child := id(hl-1, rng.Intn(width))
		members[child] = true
		for len(members) < rank {
			l := hl - 1 + rng.Intn(levels-hl+2)
			if l > levels {
				l = levels
			}
			members[id(l, rng.Intn(width))] = true
		}
		edge := make([]int, 0, len(members))
		for v := range members {
			edge = append(edge, v)
		}
		hedges = append(hedges, edge)
		heads = append(heads, head)
	}
	token := make([]bool, n)
	for v := range token {
		if level[v] > 0 && rng.Float64() < tokenProb {
			token[v] = true
		}
	}
	inst, err := NewInstance(level, token, hedges, heads)
	if err != nil {
		// The head's min-other-level condition can fail when extra
		// endpoints all landed above; retry with a fresh draw.
		return randomHyperInstance(levels, width, edges, rank, tokenProb, rng)
	}
	return inst
}

func TestRandomSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		inst := randomHyperInstance(3, 5, 12, 3, 0.5, rng)
		sol := SolveSequential(inst, rng)
		if err := Verify(sol); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
}

func TestDistributedOnTriInstance(t *testing.T) {
	sol, stats, err := SolveProposal(triInstance(), SolveOptions{MaxRounds: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sol); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestDistributedRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		inst := randomHyperInstance(1+rng.Intn(3), 3+rng.Intn(5), 4+rng.Intn(16), 2+rng.Intn(3), rng.Float64(), rng)
		for _, random := range []bool{false, true} {
			sol, _, err := SolveProposal(inst, SolveOptions{RandomTies: random, Seed: int64(i), MaxRounds: 200000})
			if err != nil {
				t.Fatalf("instance %d: %v", i, err)
			}
			if err := Verify(sol); err != nil {
				t.Fatalf("instance %d (random=%v): %v", i, random, err)
			}
		}
	}
}

func TestDistributedRankTwoMatchesFlatGame(t *testing.T) {
	// Rank-2 hyperedges are ordinary edges; the hypergraph solver must
	// still produce verifying, maximal solutions on them.
	rng := rand.New(rand.NewSource(11))
	inst := randomHyperInstance(3, 6, 18, 2, 0.6, rng)
	sol, _, err := SolveProposal(inst, SolveOptions{MaxRounds: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sol); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem71RoundBound(t *testing.T) {
	// Theorem 7.1: O(L·S²) rounds. Generous constant, sweep of S.
	rng := rand.New(rand.NewSource(13))
	for _, width := range []int{4, 6, 8} {
		inst := randomHyperInstance(3, width, width*3, 3, 0.7, rng)
		s := inst.MaxVertexDegree()
		l := inst.Height()
		sol, stats, err := SolveProposal(inst, SolveOptions{MaxRounds: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(sol); err != nil {
			t.Fatal(err)
		}
		bound := 20*(l+1)*s*s + 60
		if stats.Rounds > bound {
			t.Fatalf("S=%d L=%d: %d rounds > bound %d", s, l, stats.Rounds, bound)
		}
	}
}

func TestDistributedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	inst := randomHyperInstance(3, 6, 20, 3, 0.5, rng)
	run := func(workers int) *Solution {
		sol, _, err := SolveProposal(inst, SolveOptions{MaxRounds: 200000, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	a, b := run(1), run(12)
	if len(a.Moves) != len(b.Moves) {
		t.Fatal("nondeterministic move count")
	}
	for i := range a.Moves {
		if a.Moves[i] != b.Moves[i] {
			t.Fatal("nondeterministic move log")
		}
	}
}

// Property: distributed solutions verify across random instances.
func TestDistributedProperty(t *testing.T) {
	check := func(seed int64, lRaw, wRaw, eRaw, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		levels := int(lRaw%3) + 1
		width := int(wRaw%5) + 3
		edges := int(eRaw%20) + 2
		rank := int(rRaw%3) + 2
		inst := randomHyperInstance(levels, width, edges, rank, rng.Float64(), rng)
		sol, _, err := SolveProposal(inst, SolveOptions{RandomTies: seed%2 == 0, Seed: seed, MaxRounds: 1 << 20})
		if err != nil {
			return false
		}
		return Verify(sol) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
