package hypergame

import (
	"fmt"
	"math/rand"
)

// Workload generators: the Section 7.1 adversary hands out levels, heads,
// and tokens; these builders cover the shapes the experiments exercise.

// LayeredConfig describes a random layered hypergraph game: Levels+1
// layers of Width vertices, Edges hyperedges of rank Rank. Every
// hyperedge picks a head on a layer ℓ ≥ 1, one guaranteed child on layer
// ℓ-1, and its remaining endpoints on layers ≥ ℓ-1 (so the head's
// level-validity constraint can always be met). Tokens appear on layers
// above 0 with probability TokenProb.
type LayeredConfig struct {
	Levels    int
	Width     int
	Edges     int
	Rank      int
	TokenProb float64
}

// RandomLayered builds an instance per cfg. Construction resamples
// internally until the level constraints hold, which takes O(1) attempts
// in expectation for any sane configuration.
func RandomLayered(cfg LayeredConfig, rng *rand.Rand) *Instance {
	if cfg.Levels < 1 || cfg.Width < 1 || cfg.Rank < 2 {
		panic(fmt.Sprintf("hypergame: bad layered config %+v", cfg))
	}
	if cfg.Rank > cfg.Width*2 {
		panic("hypergame: rank too large for the layer width")
	}
	n := (cfg.Levels + 1) * cfg.Width
	level := make([]int, n)
	id := func(l, i int) int { return l*cfg.Width + i }
	for l := 0; l <= cfg.Levels; l++ {
		for i := 0; i < cfg.Width; i++ {
			level[id(l, i)] = l
		}
	}
	for attempt := 0; ; attempt++ {
		if attempt > 1000 {
			panic("hypergame: layered workload generation failed to converge")
		}
		var edges [][]int
		var heads []int
		ok := true
		for e := 0; e < cfg.Edges && ok; e++ {
			hl := 1 + rng.Intn(cfg.Levels)
			head := id(hl, rng.Intn(cfg.Width))
			members := map[int]bool{head: true}
			members[id(hl-1, rng.Intn(cfg.Width))] = true
			tries := 0
			for len(members) < cfg.Rank {
				l := hl - 1 + rng.Intn(cfg.Levels-hl+2)
				if l > cfg.Levels {
					l = cfg.Levels
				}
				members[id(l, rng.Intn(cfg.Width))] = true
				if tries++; tries > 100*cfg.Rank {
					ok = false
					break
				}
			}
			edge := make([]int, 0, len(members))
			for v := range members {
				edge = append(edge, v)
			}
			edges = append(edges, edge)
			heads = append(heads, head)
		}
		if !ok {
			continue
		}
		token := make([]bool, n)
		for v := range token {
			if level[v] > 0 && rng.Float64() < cfg.TokenProb {
				token[v] = true
			}
		}
		inst, err := NewInstance(level, token, edges, heads)
		if err == nil {
			return inst
		}
	}
}

// ThreeLevelConfig describes a random game on levels {0, 1, 2} with
// separate pull (head on 2) and push (head on 1) hyperedge counts — the
// Theorem 7.5 shape.
type ThreeLevelConfig struct {
	Width     int
	PullEdges int
	PushEdges int
	Rank      int
	MidProb   float64 // token probability on the middle layer
}

// RandomThreeLevel builds an instance per cfg: every level-2 vertex holds
// a token, middle-layer tokens appear with MidProb.
func RandomThreeLevel(cfg ThreeLevelConfig, rng *rand.Rand) *Instance {
	if cfg.Width < 2 || cfg.Rank < 2 {
		panic(fmt.Sprintf("hypergame: bad 3-level config %+v", cfg))
	}
	n := 3 * cfg.Width
	level := make([]int, n)
	id := func(l, i int) int { return l*cfg.Width + i }
	for l := 0; l < 3; l++ {
		for i := 0; i < cfg.Width; i++ {
			level[id(l, i)] = l
		}
	}
	for attempt := 0; ; attempt++ {
		if attempt > 1000 {
			panic("hypergame: 3-level workload generation failed to converge")
		}
		var edges [][]int
		var heads []int
		add := func(headLevel int) {
			head := id(headLevel, rng.Intn(cfg.Width))
			members := map[int]bool{head: true}
			members[id(headLevel-1, rng.Intn(cfg.Width))] = true
			for len(members) < cfg.Rank {
				l := headLevel - 1 + rng.Intn(2)
				if l > 2 {
					l = 2
				}
				members[id(l, rng.Intn(cfg.Width))] = true
			}
			edge := make([]int, 0, len(members))
			for v := range members {
				edge = append(edge, v)
			}
			edges = append(edges, edge)
			heads = append(heads, head)
		}
		for i := 0; i < cfg.PullEdges; i++ {
			add(2)
		}
		for i := 0; i < cfg.PushEdges; i++ {
			add(1)
		}
		token := make([]bool, n)
		for i := 0; i < cfg.Width; i++ {
			token[id(2, i)] = true
			if rng.Float64() < cfg.MidProb {
				token[id(1, i)] = true
			}
		}
		inst, err := NewInstance(level, token, edges, heads)
		if err == nil {
			return inst
		}
	}
}
