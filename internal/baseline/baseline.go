// Package baseline implements the comparators the paper measures its
// algorithm against:
//
//   - the centralized sequential algorithm of Section 1.1 ("start with an
//     arbitrary orientation and repeatedly pick an arbitrary unhappy edge
//     and flip it"), whose termination is certified by the strictly
//     decreasing potential Σ indegree², and
//   - a distributed best-response ("selfish flip") dynamic in the
//     CHSW12 class: every node starts with an arbitrarily oriented
//     edge set and overloaded servers shed load by flipping unhappy edges,
//     with randomized symmetry breaking. The full text of Czygrinow et
//     al. (DISC 2012) is not available offline; this comparator preserves
//     the design decision the paper credits for the prior work's O(Δ⁵)
//     cost — starting from an arbitrary orientation and repairing the
//     resulting unhappiness — which is what experiment E8 isolates.
//
// Both baselines produce stable orientations verified by the same oracle
// (graph.Orientation.Stable) as the paper's algorithm.
package baseline

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/graph"
)

// InitRule selects the arbitrary initial orientation.
type InitRule int

const (
	// InitTowardHigherID orients every edge toward its higher-numbered
	// endpoint — the canonical "arbitrary" choice, adversarially bad on
	// stars and trees.
	InitTowardHigherID InitRule = iota
	// InitRandom orients every edge by a fair coin.
	InitRandom
)

// OrientAll returns a complete orientation of g per the rule.
func OrientAll(g *graph.Graph, rule InitRule, rng *rand.Rand) *graph.Orientation {
	o := graph.NewOrientation(g)
	for id, e := range g.Edges() {
		head := e.V // higher endpoint (edges are normalized U < V)
		if rule == InitRandom && rng.Intn(2) == 0 {
			head = e.U
		}
		o.Orient(id, head)
	}
	return o
}

// FlipPolicy selects which unhappy edge the sequential algorithm flips.
type FlipPolicy int

const (
	// FlipFirst flips the lowest-numbered unhappy edge.
	FlipFirst FlipPolicy = iota
	// FlipRandom flips a uniformly random unhappy edge.
	FlipRandom
	// FlipWorst flips an edge of maximum badness.
	FlipWorst
)

// SequentialResult reports a sequential greedy run.
type SequentialResult struct {
	Orientation      *graph.Orientation
	Flips            int
	InitialPotential int
	FinalPotential   int
}

// SequentialGreedy runs the Section 1.1 centralized algorithm from the
// given starting orientation (which it mutates) until no edge is unhappy.
// Every flip strictly decreases the potential, so the run terminates after
// at most (initial potential)/2 flips; the implementation enforces that as
// an invariant.
func SequentialGreedy(o *graph.Orientation, policy FlipPolicy, rng *rand.Rand) SequentialResult {
	res := SequentialResult{Orientation: o, InitialPotential: o.Potential()}
	pot := res.InitialPotential
	for {
		unhappy := o.UnhappyEdges()
		if len(unhappy) == 0 {
			break
		}
		var id int
		switch policy {
		case FlipFirst:
			id = unhappy[0]
		case FlipRandom:
			id = unhappy[rng.Intn(len(unhappy))]
		case FlipWorst:
			id = unhappy[0]
			for _, cand := range unhappy[1:] {
				if o.Badness(cand) > o.Badness(id) {
					id = cand
				}
			}
		default:
			panic("baseline: unknown flip policy")
		}
		o.Flip(id)
		res.Flips++
		if p := o.Potential(); p >= pot {
			panic(fmt.Sprintf("baseline: potential did not decrease (%d -> %d)", pot, p))
		} else {
			pot = p
		}
	}
	res.FinalPotential = pot
	return res
}

// FlipChainLength measures the propagation-chain phenomenon of Section
// 1.1: starting from the given orientation, it performs the FlipFirst
// dynamics and returns the length of the longest causal chain of flips,
// where flip j extends a chain ending at flip i if they share an endpoint
// and j happened after i. It demonstrates why the centralized algorithm
// is inherently sequential on caterpillar graphs.
func FlipChainLength(o *graph.Orientation) int {
	g := o.Graph()
	// chain[v] = longest chain of flips so far that ended at an edge
	// incident to v.
	chain := make([]int, g.N())
	longest := 0
	for {
		unhappy := o.UnhappyEdges()
		if len(unhappy) == 0 {
			return longest
		}
		id := unhappy[0]
		e := g.Edge(id)
		c := 1 + max(chain[e.U], chain[e.V])
		chain[e.U] = max(chain[e.U], c)
		chain[e.V] = max(chain[e.V], c)
		if c > longest {
			longest = c
		}
		o.Flip(id)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
