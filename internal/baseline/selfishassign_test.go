package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"tokendrop/internal/graph"
)

func selfishBip(t *testing.T, nl, nr, c int, seed int64) *graph.Bipartite {
	t.Helper()
	g := graph.RandomBipartite(nl, nr, c, rand.New(rand.NewSource(seed)))
	b, err := graph.NewBipartite(g, nl)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// checkSelfishStable verifies validity, exact loads, and the Section 7
// stability predicate of a SelfishAssign result.
func checkSelfishStable(t *testing.T, b *graph.Bipartite, res *SelfishAssignResult) {
	t.Helper()
	a := graph.NewAssignment(b)
	for c, s := range res.ServerOf {
		if s < 0 || int(s) >= b.NumServers() {
			t.Fatalf("customer %d assigned to out-of-range server %d", c, s)
		}
		adjacent := false
		for _, arc := range b.G.Adj(c) {
			if arc.To == b.NumLeft+int(s) {
				adjacent = true
				break
			}
		}
		if !adjacent {
			t.Fatalf("customer %d assigned to non-adjacent server %d", c, s)
		}
		a.Assign(c, b.NumLeft+int(s))
	}
	for s := 0; s < b.NumServers(); s++ {
		if int32(a.Load(b.NumLeft+s)) != res.Load[s] {
			t.Fatalf("server %d: reported load %d, recounted %d", s, res.Load[s], a.Load(b.NumLeft+s))
		}
	}
	if !a.Stable() {
		t.Fatalf("result not stable: max badness %d", a.MaxBadness())
	}
}

func TestSelfishAssignStabilizes(t *testing.T) {
	for i := 0; i < 20; i++ {
		seed := int64(100 + i)
		b := selfishBip(t, 20+i, 5+i%4, 2+i%3, seed)
		res, err := SelfishAssign(b, nil, seed, 0, 2)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		checkSelfishStable(t, b, res)
		if res.Rounds <= 0 || res.Messages <= 0 {
			t.Fatalf("instance %d: implausible stats %+v", i, res)
		}
	}
}

func TestSelfishAssignDeterministic(t *testing.T) {
	b := selfishBip(t, 40, 8, 3, 7)
	r1, err := SelfishAssign(b, nil, 42, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SelfishAssign(b, nil, 42, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", r1, r2)
	}
}

func TestSelfishAssignInitial(t *testing.T) {
	b := selfishBip(t, 30, 6, 3, 11)
	// Pile everyone onto their last adjacent server; the dynamic must
	// still reach stability from a deliberately bad start.
	initial := make([]int32, b.NumLeft)
	for c := 0; c < b.NumLeft; c++ {
		adj := b.G.Adj(c)
		initial[c] = int32(adj[len(adj)-1].To - b.NumLeft)
	}
	res, err := SelfishAssign(b, initial, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSelfishStable(t, b, res)

	if _, err := SelfishAssign(b, initial[:5], 3, 0, 1); err == nil {
		t.Fatal("short initial assignment not rejected")
	}
}
