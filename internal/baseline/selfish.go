package baseline

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/graph"
	"tokendrop/internal/loadbalance"
	"tokendrop/internal/local"
)

// This file implements the distributed selfish-flip dynamic: the
// CHSW12-class comparator of experiment E8. All edges start oriented
// arbitrarily; in every 3-round cycle,
//
//	round 0: every node applies the flip acknowledged in the previous
//	         cycle (if any) and broadcasts its load,
//	round 1: every node tosses a fair coin to be a PROPOSER or ACCEPTOR;
//	         a proposer that heads an unhappy edge (badness ≥ 2) offers
//	         one such edge's flip to the edge's tail,
//	round 2: an acceptor that received offers acknowledges exactly one,
//	         applying its side of the flip; the proposer applies its side
//	         at the start of the next cycle.
//
// Flips executed in one cycle touch pairwise-disjoint nodes, so each flip
// strictly decreases the potential Σ indegree² by at least 2 and the
// dynamic converges with probability 1; the coin toss breaks the symmetric
// deadlocks a deterministic rule would spin on. Nodes cannot locally
// detect global stability (a classic property of best-response dynamics),
// so the run is ended by the simulator's termination oracle once every
// edge is happy — see local.Options.Stop.

// The cycle's messages are the shared best-response vocabulary of
// internal/loadbalance (LoadMsg/OfferMsg/AckMsg), defined once for every
// comparator dynamic in this repository.

// flipMachine is the per-node state machine of the selfish-flip dynamic.
type flipMachine struct {
	vertex     int
	rng        *rand.Rand
	headIsSelf []bool // per port: edge points at this node
	load       int
	nbrLoad    []int
	offerOut   int // port of our outstanding offer, -1 if none
	flips      int
}

func newFlipMachine(o *graph.Orientation, v int, seed int64) *flipMachine {
	g := o.Graph()
	adj := g.Adj(v)
	m := &flipMachine{
		vertex:     v,
		rng:        rand.New(rand.NewSource(seed ^ int64(v)*0x5bd1e995)),
		headIsSelf: make([]bool, len(adj)),
		load:       o.Load(v),
		offerOut:   -1,
	}
	for p, a := range adj {
		m.headIsSelf[p] = o.Head(a.Edge) == v
	}
	return m
}

func (m *flipMachine) Init(info local.NodeInfo) {
	m.nbrLoad = make([]int, info.Degree)
	for i := range m.nbrLoad {
		m.nbrLoad[i] = -1
	}
}

func (m *flipMachine) Step(round int, in []local.Payload, out []local.Payload) bool {
	switch (round - 1) % 3 {
	case 0: // apply pending ack, broadcast load
		for p, raw := range in {
			if raw == nil {
				continue
			}
			if _, ok := raw.(loadbalance.AckMsg); !ok {
				panic(fmt.Sprintf("baseline: vertex %d expected acks, got %T", m.vertex, raw))
			}
			if p != m.offerOut {
				panic(fmt.Sprintf("baseline: vertex %d acked on a port it never offered", m.vertex))
			}
			// Our offer was taken: the edge now points at the tail.
			m.headIsSelf[p] = false
			m.load--
			m.flips++
		}
		m.offerOut = -1
		for p := range out {
			out[p] = loadbalance.LoadMsg{Load: m.load}
		}
	case 1: // read loads, maybe offer one unhappy in-edge for flipping
		for p, raw := range in {
			if raw == nil {
				continue
			}
			msg, ok := raw.(loadbalance.LoadMsg)
			if !ok {
				panic(fmt.Sprintf("baseline: vertex %d expected loads, got %T", m.vertex, raw))
			}
			m.nbrLoad[p] = msg.Load
		}
		if m.rng.Intn(2) == 0 {
			return false // acceptor this cycle
		}
		// Proposer: offer the worst unhappy in-edge, ties to low port.
		best, bestBadness := -1, 1
		for p, self := range m.headIsSelf {
			if !self || m.nbrLoad[p] < 0 {
				continue
			}
			if b := m.load - m.nbrLoad[p]; b > bestBadness {
				best, bestBadness = p, b
			}
		}
		if best >= 0 {
			m.offerOut = best
			out[best] = loadbalance.OfferMsg{}
		}
	case 2: // acceptors take at most one offer
		var offers []int
		for p, raw := range in {
			if raw == nil {
				continue
			}
			if _, ok := raw.(loadbalance.OfferMsg); !ok {
				panic(fmt.Sprintf("baseline: vertex %d expected offers, got %T", m.vertex, raw))
			}
			offers = append(offers, p)
		}
		if m.offerOut >= 0 || len(offers) == 0 {
			// Proposers never accept; their own offer resolves next cycle.
			return false
		}
		p := offers[m.rng.Intn(len(offers))]
		if m.headIsSelf[p] {
			panic(fmt.Sprintf("baseline: vertex %d offered a flip of an edge it heads", m.vertex))
		}
		m.headIsSelf[p] = true
		m.load++
		m.flips++
		out[p] = loadbalance.AckMsg{}
	}
	return false
}

var _ local.Machine = (*flipMachine)(nil)

// SelfishResult reports a selfish-flip run.
type SelfishResult struct {
	Orientation *graph.Orientation
	Rounds      int   // communication rounds until global stability
	Flips       int   // total edge flips (each counted once)
	Messages    int64 // messages delivered
}

// SelfishFlips runs the distributed dynamic from the given starting
// orientation until it is stable (or maxRounds passes without
// convergence, which returns an error). The input orientation is not
// mutated; the stabilized orientation is returned.
func SelfishFlips(o *graph.Orientation, seed int64, maxRounds, workers int) (*SelfishResult, error) {
	g := o.Graph()
	if maxRounds == 0 {
		maxRounds = 1 << 20
	}
	machines := make([]*flipMachine, g.N())
	nw := local.NewNetwork(g, func(v int) local.Machine {
		machines[v] = newFlipMachine(o, v, seed)
		return machines[v]
	})
	// Termination oracle: loads and orientations are consistent across
	// machine mirrors at the barrier after every round ≡ 1 (mod 3) — both
	// flip sides have applied, and the cycle's broadcast is in flight.
	stable := func(round int) bool {
		if (round-1)%3 != 0 {
			return false
		}
		for _, e := range g.Edges() {
			u, v := e.U, e.V
			pu := portOf(g, u, v)
			var head, tail int
			if machines[u].headIsSelf[pu] {
				head, tail = u, v
			} else {
				head, tail = v, u
			}
			if machines[head].load >= machines[tail].load+2 {
				return false
			}
		}
		return true
	}
	stats, err := nw.Run(local.Options{MaxRounds: maxRounds, Workers: workers, Stop: stable})
	if err != nil {
		return nil, fmt.Errorf("baseline: selfish flips did not converge: %w", err)
	}
	// Read the final orientation out of the machine mirrors.
	final := graph.NewOrientation(g)
	flips := 0
	for v, m := range machines {
		flips += m.flips
		for p, a := range g.Adj(v) {
			if m.headIsSelf[p] {
				final.Orient(a.Edge, v)
			}
		}
	}
	return &SelfishResult{
		Orientation: final,
		Rounds:      stats.Rounds,
		Flips:       flips / 2, // both endpoints count each flip
		Messages:    stats.Messages,
	}, nil
}

// portOf returns the port at u leading to v.
func portOf(g *graph.Graph, u, v int) int {
	for p, a := range g.Adj(u) {
		if a.To == v {
			return p
		}
	}
	panic(fmt.Sprintf("baseline: no edge {%d,%d}", u, v))
}
