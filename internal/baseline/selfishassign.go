package baseline

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/graph"
	"tokendrop/internal/loadbalance"
	"tokendrop/internal/local"
)

// This file generalizes the selfish-flip comparator from orientations to
// bipartite customer/server assignment, so the same CHSW12-class design
// decision — start from an arbitrary complete assignment, shed the
// resulting unhappiness by local best responses — can race the paper's
// assignment layer inside internal/arena. The dynamic runs on the
// customer/server incidence network in 6-round cycles:
//
//	phase 0: every server applies the departures confirmed last cycle
//	         and broadcasts its load to its incident customers;
//	phase 1: every customer with badness ≥ 2 (its server's load exceeds
//	         its least-loaded alternative's by at least two) asks its
//	         current server for permission to leave;
//	phase 2: every server tosses a fair coin to be a PROPOSER or an
//	         ACCEPTOR this cycle; a proposer grants exactly one leave
//	         request (uniformly at random), an acceptor grants none;
//	phase 3: a granted customer sends a join request to a least-loaded
//	         adjacent server (uniform among minima);
//	phase 4: an acceptor server admits at most one join request
//	         (uniformly at random) and acknowledges it; proposers admit
//	         none, so an unlucky customer simply stays put;
//	phase 5: an admitted customer switches servers and sends its old
//	         server the departure notice phase 0 consumes.
//
// Moves executed in one cycle leave distinct proposer servers (each
// grants one departure and admits nothing) and enter distinct acceptor
// servers (each admits one arrival and releases nothing), and every
// load a decision reads is exact at the moment the move applies, so a
// move from load L to load T needs T ≤ L − 2 and decreases Σ load² by
// at least 2: the dynamic converges with probability 1. As with the
// other best-response comparators, nodes cannot detect global
// stability, so the simulator's termination oracle (local.Options.Stop)
// ends the run once every customer has badness at most 1 — exactly the
// stable-assignment predicate of Section 7. Messages are the shared
// best-response vocabulary of internal/loadbalance.

// selfishCustomer is the per-customer machine of the dynamic.
type selfishCustomer struct {
	vertex  int
	rng     *rand.Rand
	cur     int // port of the current server
	nbrLoad []int
	target  int // port of the outstanding join request, -1 if none
	moves   int
}

func (m *selfishCustomer) Init(info local.NodeInfo) {
	m.nbrLoad = make([]int, info.Degree)
	for i := range m.nbrLoad {
		m.nbrLoad[i] = -1
	}
	m.target = -1
}

func (m *selfishCustomer) Step(round int, in []local.Payload, out []local.Payload) bool {
	switch (round - 1) % 6 {
	case 1: // read loads; unhappy customers ask to leave
		for p, raw := range in {
			if raw == nil {
				continue
			}
			msg, ok := raw.(loadbalance.LoadMsg)
			if !ok {
				panic(fmt.Sprintf("baseline: customer %d expected loads, got %T", m.vertex, raw))
			}
			m.nbrLoad[p] = msg.Load
		}
		min := m.nbrLoad[m.cur]
		for _, l := range m.nbrLoad {
			if l >= 0 && l < min {
				min = l
			}
		}
		if m.nbrLoad[m.cur] >= min+2 {
			out[m.cur] = loadbalance.OfferMsg{}
		}
	case 3: // a granted customer targets a least-loaded alternative
		if in[m.cur] == nil {
			return false
		}
		if _, ok := in[m.cur].(loadbalance.AckMsg); !ok {
			panic(fmt.Sprintf("baseline: customer %d expected a leave grant, got %T", m.vertex, in[m.cur]))
		}
		min := -1
		for p, l := range m.nbrLoad {
			if p == m.cur || l < 0 {
				continue
			}
			if min < 0 || l < min {
				min = l
			}
		}
		if min > m.nbrLoad[m.cur]-2 {
			panic(fmt.Sprintf("baseline: customer %d granted a leave without a 2-cheaper alternative", m.vertex))
		}
		count := 0
		for p, l := range m.nbrLoad {
			if p == m.cur || l != min {
				continue
			}
			count++
			if m.rng.Intn(count) == 0 {
				m.target = p
			}
		}
		out[m.target] = loadbalance.OfferMsg{}
	case 5: // an admitted customer switches and notifies its old server
		if m.target < 0 {
			return false
		}
		p := m.target
		m.target = -1
		if in[p] == nil {
			return false // rejected: the target was a proposer or admitted another
		}
		if _, ok := in[p].(loadbalance.AckMsg); !ok {
			panic(fmt.Sprintf("baseline: customer %d expected a join ack, got %T", m.vertex, in[p]))
		}
		old := m.cur
		m.cur = p
		m.moves++
		out[old] = loadbalance.AckMsg{}
	}
	return false
}

var _ local.Machine = (*selfishCustomer)(nil)

// selfishServer is the per-server machine of the dynamic.
type selfishServer struct {
	vertex   int
	rng      *rand.Rand
	load     int
	proposer bool // role this cycle, drawn at phase 2
}

func (m *selfishServer) Init(info local.NodeInfo) {}

func (m *selfishServer) Step(round int, in []local.Payload, out []local.Payload) bool {
	switch (round - 1) % 6 {
	case 0: // apply confirmed departures, broadcast load
		for _, raw := range in {
			if raw == nil {
				continue
			}
			if _, ok := raw.(loadbalance.AckMsg); !ok {
				panic(fmt.Sprintf("baseline: server %d expected departure notices, got %T", m.vertex, raw))
			}
			m.load--
		}
		for p := range out {
			out[p] = loadbalance.LoadMsg{Load: m.load}
		}
	case 2: // proposers grant exactly one leave request
		m.proposer = m.rng.Intn(2) == 1
		if !m.proposer {
			return false // acceptor this cycle: phase 4 may admit a join
		}
		pick, count := -1, 0
		for p, raw := range in {
			if raw == nil {
				continue
			}
			if _, ok := raw.(loadbalance.OfferMsg); !ok {
				panic(fmt.Sprintf("baseline: server %d expected leave requests, got %T", m.vertex, raw))
			}
			count++
			if m.rng.Intn(count) == 0 {
				pick = p
			}
		}
		if pick >= 0 {
			out[pick] = loadbalance.AckMsg{}
		}
	case 4: // acceptors admit at most one join request
		if m.proposer {
			return false // granted a departure at phase 2; implicit reject
		}
		pick, count := -1, 0
		for p, raw := range in {
			if raw == nil {
				continue
			}
			if _, ok := raw.(loadbalance.OfferMsg); !ok {
				panic(fmt.Sprintf("baseline: server %d expected join requests, got %T", m.vertex, raw))
			}
			count++
			if m.rng.Intn(count) == 0 {
				pick = p
			}
		}
		if pick >= 0 {
			m.load++
			out[pick] = loadbalance.AckMsg{}
		}
	}
	return false
}

var _ local.Machine = (*selfishServer)(nil)

// SelfishAssignResult reports a selfish-reassignment run.
type SelfishAssignResult struct {
	// ServerOf holds the final server index (in [0, NumServers)) of every
	// customer.
	ServerOf []int32
	// Load holds the final per-server-index load.
	Load []int32
	// Rounds is the communication rounds until global stability.
	Rounds int
	// Moves counts executed reassignments.
	Moves int
	// Messages counts delivered messages.
	Messages int64
}

// SelfishAssign runs the distributed selfish-reassignment dynamic on b
// until every customer has badness at most 1 (the Section 7 stability
// predicate), or maxRounds passes without convergence, which returns an
// error. initial, when non-nil, is the arbitrary starting assignment as
// a server index per customer (it must be adjacent); nil starts every
// customer on its first port — the canonical arbitrary choice. Every
// customer must have at least one adjacent server.
func SelfishAssign(b *graph.Bipartite, initial []int32, seed int64, maxRounds, workers int) (*SelfishAssignResult, error) {
	g := b.G
	nl := b.NumLeft
	if maxRounds == 0 {
		maxRounds = 1 << 20
	}
	if initial != nil && len(initial) != nl {
		return nil, fmt.Errorf("baseline: initial assignment has %d entries for %d customers", len(initial), nl)
	}
	customers := make([]*selfishCustomer, nl)
	servers := make([]*selfishServer, b.NumServers())
	nw := local.NewNetwork(g, func(v int) local.Machine {
		if v < nl {
			if g.Degree(v) == 0 {
				panic(fmt.Sprintf("baseline: customer %d has no adjacent server", v))
			}
			cur := 0
			if initial != nil {
				cur = -1
				for p, a := range g.Adj(v) {
					if a.To == nl+int(initial[v]) {
						cur = p
						break
					}
				}
				if cur < 0 {
					panic(fmt.Sprintf("baseline: initial assigns customer %d to non-adjacent server %d", v, initial[v]))
				}
			}
			customers[v] = &selfishCustomer{
				vertex: v,
				rng:    rand.New(rand.NewSource(seed ^ int64(v)*0x5bd1e995)),
				cur:    cur,
			}
			return customers[v]
		}
		servers[v-nl] = &selfishServer{
			vertex: v,
			rng:    rand.New(rand.NewSource(seed ^ int64(v)*0x632be5ab)),
		}
		return servers[v-nl]
	})
	// Seed the server loads from the initial assignment (the customers
	// know their ports; the servers must start with consistent counts).
	for c, m := range customers {
		servers[g.Adj(c)[m.cur].To-nl].load++
	}
	// Termination oracle: at the barrier after every phase-5 step the
	// customers' placements are final for the cycle (departure notices in
	// flight only affect server-side counters), so recount loads from the
	// customer mirrors and test the stability predicate directly.
	load := make([]int32, b.NumServers())
	stable := func(round int) bool {
		if (round-1)%6 != 5 {
			return false
		}
		for i := range load {
			load[i] = 0
		}
		for c, m := range customers {
			load[g.Adj(c)[m.cur].To-nl]++
		}
		for c, m := range customers {
			cur := load[g.Adj(c)[m.cur].To-nl]
			for _, a := range g.Adj(c) {
				if cur >= load[a.To-nl]+2 {
					return false
				}
			}
		}
		return true
	}
	stats, err := nw.Run(local.Options{MaxRounds: maxRounds, Workers: workers, Stop: stable})
	if err != nil {
		return nil, fmt.Errorf("baseline: selfish reassignment did not converge: %w", err)
	}
	res := &SelfishAssignResult{
		ServerOf: make([]int32, nl),
		Load:     make([]int32, b.NumServers()),
		Rounds:   stats.Rounds,
		Messages: stats.Messages,
	}
	for c, m := range customers {
		s := g.Adj(c)[m.cur].To - nl
		res.ServerOf[c] = int32(s)
		res.Load[s]++
		res.Moves += m.moves
	}
	return res, nil
}
