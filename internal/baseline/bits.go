package baseline

import "math/bits"

// Encoded message sizes (local.Sized): loads dominate at Θ(log n) bits —
// the selfish-flip dynamic is CONGEST-compatible too.

func (m loadMsg) Bits() int { return 2 + bits.Len(uint(m.Load)) }
func (flipOffer) Bits() int { return 2 }
func (flipAck) Bits() int   { return 2 }
