package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tokendrop/internal/graph"
)

func TestOrientAllRules(t *testing.T) {
	g := graph.Cycle(6)
	o := OrientAll(g, InitTowardHigherID, nil)
	if !o.Complete() {
		t.Fatal("incomplete orientation")
	}
	for id := range g.Edges() {
		if o.Head(id) != g.Edge(id).V {
			t.Fatal("higher-id rule violated")
		}
	}
	r := OrientAll(g, InitRandom, rand.New(rand.NewSource(1)))
	if !r.Complete() {
		t.Fatal("incomplete random orientation")
	}
}

func TestSequentialGreedyStabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, policy := range []FlipPolicy{FlipFirst, FlipRandom, FlipWorst} {
		g := graph.RandomGNM(30, 90, rng)
		o := OrientAll(g, InitTowardHigherID, nil)
		res := SequentialGreedy(o, policy, rand.New(rand.NewSource(3)))
		if !res.Orientation.Stable() {
			t.Fatalf("policy %d: not stable", policy)
		}
		if res.FinalPotential > res.InitialPotential {
			t.Fatal("potential increased")
		}
		if res.Flips > res.InitialPotential/2 {
			t.Fatal("more flips than the potential permits")
		}
	}
}

func TestSequentialGreedyStarWorstCase(t *testing.T) {
	// All edges point at the hub: load d on the hub. Stability needs the
	// hub load to drop to ≤ 2; each flip sheds one unit.
	const d = 10
	g := graph.Star(d)
	o := OrientAll(g, InitTowardHigherID, nil) // hub is vertex 0... higher id = leaves
	// InitTowardHigherID points edges {0, leaf} at the leaf; build the
	// adversarial all-at-hub orientation explicitly.
	o = graph.NewOrientation(g)
	for id := range g.Edges() {
		o.Orient(id, 0)
	}
	res := SequentialGreedy(o, FlipFirst, nil)
	if !res.Orientation.Stable() {
		t.Fatal("unstable")
	}
	if hub := res.Orientation.Load(0); hub > 2 {
		t.Fatalf("hub load %d after stabilization", hub)
	}
	if res.Flips < d-2 {
		t.Fatalf("expected ≈%d flips, got %d", d-2, res.Flips)
	}
}

func TestFlipChainGrowsWithGraph(t *testing.T) {
	// The Section 1.1 motivation: the sequential algorithm's flips form
	// causal chains that grow with the instance. A "staircase" — vertex i
	// carries i pendant leaves, all oriented inward — forces vertex i to
	// shed ≈ i/2 leaves one by one, each flip causally after the previous
	// one at the same vertex.
	chainLen := func(steps int) int {
		g := graph.New(steps)
		var leafOf [][]int
		for v := 0; v < steps; v++ {
			if v+1 < steps {
				g.AddEdge(v, v+1)
			}
			var leaves []int
			for l := 0; l < v; l++ {
				leaves = append(leaves, g.AddVertex())
			}
			leafOf = append(leafOf, leaves)
		}
		for v, leaves := range leafOf {
			for _, leaf := range leaves {
				g.AddEdge(v, leaf)
			}
		}
		o := graph.NewOrientation(g)
		for id, e := range g.Edges() {
			head := e.U // spine edges toward the lower end
			if e.V >= steps {
				head = e.U // leaf edges into the spine (U is the spine side)
			}
			o.Orient(id, head)
		}
		return FlipChainLength(o)
	}
	short := chainLen(6)
	long := chainLen(18)
	if long <= short {
		t.Fatalf("cascade did not grow: steps 6 -> chain %d, steps 18 -> chain %d", short, long)
	}
}

func TestSelfishFlipsConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		g := graph.RandomGNM(20, 60, rng)
		o := OrientAll(g, InitRandom, rng)
		res, err := SelfishFlips(o, int64(i), 1<<18, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Orientation.Stable() {
			t.Fatal("selfish flips ended unstable")
		}
		if err := res.Orientation.CheckLoads(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSelfishFlipsOnStableInput(t *testing.T) {
	// A consistently oriented cycle is already stable: the dynamic should
	// stop in the first cycle with zero flips.
	g := graph.Cycle(8)
	o := graph.NewOrientation(g)
	for v := 0; v < 8; v++ {
		id, _ := g.EdgeID(v, (v+1)%8)
		o.Orient(id, (v+1)%8)
	}
	res, err := SelfishFlips(o, 1, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 0 {
		t.Fatalf("stable input produced %d flips", res.Flips)
	}
	if res.Rounds != 1 {
		t.Fatalf("stable input ran %d rounds", res.Rounds)
	}
}

func TestSelfishFlipsStarCascade(t *testing.T) {
	g := graph.Star(12)
	o := graph.NewOrientation(g)
	for id := range g.Edges() {
		o.Orient(id, 0)
	}
	res, err := SelfishFlips(o, 3, 1<<18, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Orientation.Stable() {
		t.Fatal("unstable")
	}
	if res.Flips < 10 {
		t.Fatalf("expected ≈10 flips to drain the hub, got %d", res.Flips)
	}
}

func TestSelfishFlipsPreservesInput(t *testing.T) {
	g := graph.Star(6)
	o := graph.NewOrientation(g)
	for id := range g.Edges() {
		o.Orient(id, 0)
	}
	if _, err := SelfishFlips(o, 1, 1<<18, 0); err != nil {
		t.Fatal(err)
	}
	if o.Load(0) != 6 {
		t.Fatal("input orientation was mutated")
	}
}

// Property: the sequential greedy stabilizes any random starting
// orientation, with a final potential no worse than the start.
func TestSequentialGreedyProperty(t *testing.T) {
	check := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 2
		maxM := n * (n - 1) / 2
		m := int(mRaw) % (maxM + 1)
		g := graph.RandomGNM(n, m, rng)
		o := OrientAll(g, InitRandom, rng)
		res := SequentialGreedy(o, FlipRandom, rng)
		return res.Orientation.Stable() && res.FinalPotential <= res.InitialPotential
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
