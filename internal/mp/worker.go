package mp

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"tokendrop/internal/core"
	"tokendrop/internal/encode"
	"tokendrop/internal/local"
)

// This file is the worker-process side of the multi-process engine. A
// worker speaks the transport protocol over its stdin/stdout pipe:
//
//	worker → hello            (protocol version)
//	coord  → handshake        (run configuration, strict JSON)
//	coord  → instance         (the flat game, binary, hash-bound)
//	per round r:
//	  worker → msgs(r)        (own awake count + boundary words)
//	  coord  → deliv(r)       (global awake count + routed words)
//	  worker → snap(r)        (if r is on the snapshot cadence)
//	worker → result           (own range of the solution)
//
// and refuses to run anything it cannot verify: protocol version,
// instance hash, solver and tie names, and the shard map are all
// checked against its own computation before round 1, so a coordinator
// and worker that would diverge fail at the handshake instead.

// snapPayload is the JSON body of a FrameSnap: the worker's slice of a
// quiescent snapshot — its own vertex range's placement and its own
// shards' move count at the round cursor.
type snapPayload struct {
	Round    int    `json:"round"`
	Moves    int    `json:"moves"`
	Occupied []byte `json:"occupied"`
}

// resultPayload is the JSON body of a FrameResult: the worker's share
// of the finished solve. Moves carries only moves granted by the
// worker's own shards, already in the engine's per-worker order
// (round-major, vertices ascending), so the coordinator's stable merge
// reproduces the global move order exactly.
type resultPayload struct {
	Rounds    int         `json:"rounds"`
	Final     []byte      `json:"final"` // own-range placement bitmap
	Moves     []core.Move `json:"moves"`
	Messages  int64       `json:"messages"`
	MaxActive int         `json:"max_active"`
}

// WorkerMain runs one worker process's whole life over the given
// streams (stdin/stdout when spawned by the coordinator): handshake,
// solve, result. Errors are reported to the coordinator as a FrameError
// before returning, so the parent sees a reason rather than a bare
// exit. td-run's hidden -mp-worker mode and the test harness both call
// this directly.
func WorkerMain(r io.Reader, w io.Writer) error {
	conn := local.NewFrameConn(r, w)
	if err := workerRun(conn); err != nil {
		// Best-effort: the coordinator may already be gone.
		_ = conn.Write(local.FrameError, local.EncodeErrorFrame(err.Error()))
		_ = conn.Flush()
		return err
	}
	return nil
}

// expectFrame reads one frame and requires the given type, translating
// a peer's FrameError into a returned error.
func expectFrame(conn *local.FrameConn, want local.FrameType) ([]byte, error) {
	t, body, err := conn.Read()
	if err != nil {
		return nil, err
	}
	switch t {
	case want:
		return body, nil
	case local.FrameError:
		return nil, fmt.Errorf("mp: peer failed: %s", local.DecodeErrorFrame(body))
	default:
		return nil, &local.WireError{Op: "protocol",
			Detail: fmt.Sprintf("expected a %s frame, got %s", want, t)}
	}
}

func workerRun(conn *local.FrameConn) error {
	hello, err := json.Marshal(local.Hello{Version: local.WireVersion})
	if err != nil {
		return err
	}
	if err := conn.Write(local.FrameHello, hello); err != nil {
		return err
	}
	if err := conn.Flush(); err != nil {
		return err
	}

	body, err := expectFrame(conn, local.FrameHandshake)
	if err != nil {
		return err
	}
	h, err := local.DecodeHandshake(body)
	if err != nil {
		return err
	}
	if err := h.CheckBasic(); err != nil {
		return err
	}
	tie, err := encode.ParseTie(h.Tie)
	if err != nil {
		return &local.HandshakeError{Field: "tie", Got: h.Tie, Want: "a known tie rule"}
	}
	var solve func(*core.FlatInstance, core.ShardedSolveOptions) (*core.FlatResult, error)
	switch h.Solver {
	case "proposal":
		solve = core.SolveProposalSharded
	case "threelevel":
		solve = core.SolveThreeLevelSharded
	default:
		return &local.HandshakeError{Field: "solver", Got: h.Solver, Want: "proposal or threelevel"}
	}

	body, err = expectFrame(conn, local.FrameInstance)
	if err != nil {
		return err
	}
	if got := InstanceHash(body); got != h.GraphHash {
		return &local.HandshakeError{Field: "graph_hash", Got: h.GraphHash, Want: got}
	}
	fi, err := DecodeInstance(body)
	if err != nil {
		return err
	}
	// The shard map must be the one this worker would compute — the
	// engine recomputes it inside Run, so a handshake that disagrees
	// would route the exchange against a different partition.
	total := h.Procs * h.ShardsPerProc
	bounds := local.ShardBounds(fi.CSR(), total)
	if len(bounds) != len(h.Bounds) {
		return &local.HandshakeError{Field: "bounds",
			Got: fmt.Sprintf("%d entries", len(h.Bounds)), Want: fmt.Sprintf("%d entries", len(bounds))}
	}
	for i, b := range bounds {
		if h.Bounds[i] != b {
			return &local.HandshakeError{Field: "bounds",
				Got:  fmt.Sprintf("shard %d starts at vertex %d", i, h.Bounds[i]),
				Want: fmt.Sprintf("vertex %d (the engine's arc-balanced split)", b)}
		}
	}

	vLo := bounds[h.Proc*h.ShardsPerProc]
	vHi := bounds[(h.Proc+1)*h.ShardsPerProc]
	tr := local.NewProcTransport(conn, h.Proc, h.Procs, h.ShardsPerProc)
	sess := local.NewSessionTransport(h.ShardsPerProc, tr)
	defer sess.Close()

	sopt := core.ShardedSolveOptions{
		Tie:       tie,
		Seed:      h.Seed,
		MaxRounds: h.MaxRounds,
		Session:   sess,
	}
	var snapBuf core.Snapshot
	var snapBits []byte
	if h.SnapshotEvery > 0 {
		sopt.SnapshotEvery = h.SnapshotEvery
		sopt.SnapshotInto = &snapBuf
		sopt.OnSnapshot = func(s *core.Snapshot) error {
			snapBits = local.PackBools(snapBits, s.Occupied[vLo:vHi])
			p, err := json.Marshal(snapPayload{Round: s.Round, Moves: s.Moves, Occupied: snapBits})
			if err != nil {
				return err
			}
			if err := conn.Write(local.FrameSnap, p); err != nil {
				return err
			}
			return conn.Flush()
		}
	}
	if h.Resume != nil {
		// Reconstitute a full-placement snapshot from the worker's own
		// slice: foreign vertices are never stepped here, so their
		// placement at any cursor equals their initial tokens, and the
		// move count at the cursor is the own-shard count the snapshot
		// recorded. Resume is then the standard validated fast-forward.
		occ := make([]bool, fi.N())
		for v := range occ {
			occ[v] = fi.Token(v)
		}
		own, err := local.UnpackBools(nil, h.Resume.Occupied, vHi-vLo)
		if err != nil {
			return err
		}
		copy(occ[vLo:vHi], own)
		sopt.ResumeFrom = &core.Snapshot{Round: h.Resume.Round, Moves: h.Resume.Moves, Occupied: occ}
	}

	res, err := solve(fi, sopt)
	if err != nil {
		return err
	}
	rp := resultPayload{
		Rounds:    res.Stats.Rounds,
		Final:     local.PackBools(nil, res.Final[vLo:vHi]),
		Moves:     res.Moves,
		Messages:  res.Stats.Messages,
		MaxActive: res.Stats.MaxActiveUnoccupied,
	}
	p, err := json.Marshal(&rp)
	if err != nil {
		return err
	}
	if err := conn.Write(local.FrameResult, p); err != nil {
		return err
	}
	return conn.Flush()
}

// decodeStrict strictly parses a JSON control payload into v.
func decodeStrict(body []byte, v any, what string) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &local.WireError{Op: what, Detail: "strict decode failed", Err: err}
	}
	if dec.More() {
		return &local.WireError{Op: what, Detail: "trailing data"}
	}
	return nil
}

// roundHeader extracts the round/count header of a Msgs payload.
func roundHeader(body []byte) (round, count int, ok bool) {
	if len(body) < 8 {
		return 0, 0, false
	}
	return int(binary.BigEndian.Uint32(body[0:4])), int(binary.BigEndian.Uint32(body[4:8])), true
}
