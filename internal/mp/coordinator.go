package mp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"time"

	"tokendrop/internal/core"
	"tokendrop/internal/encode"
	"tokendrop/internal/fault"
	"tokendrop/internal/local"
)

// FaultSiteWorker is the coordinator's failpoint: it is visited once
// per round before the round's frames are read, so 'mp/worker:crash:...'
// schedules deterministically SIGKILL a seeded-chosen worker process at
// a chosen round. Visit counts accumulate across AutoResume restarts
// (the registry outlives the attempt), so an at=N schedule fires once
// per run, exactly like the in-process engine/round site.
const FaultSiteWorker = "mp/worker"

// Options configure a multi-process solve.
type Options struct {
	// Procs is the worker-process count (≥ 1); ShardsPerProc the number
	// of engine shards each worker steps (default 1).
	Procs         int
	ShardsPerProc int
	// Solver names the flat solver: "proposal" or "threelevel".
	Solver string
	Tie    core.TieBreak
	Seed   int64
	// MaxRounds bounds the run (0 = the engine default).
	MaxRounds int
	// SnapshotEvery is the quiescent-snapshot cadence in rounds; workers
	// ship their slice of every capture to the coordinator, which
	// retains the latest complete set for crash recovery. Zero disables
	// capture (recovery then re-runs from round 1, equivalent by
	// determinism but unvalidated).
	SnapshotEvery int
	// AutoResume is the worker-loss retry budget: when a worker process
	// dies (EOF, broken pipe, injected kill), the coordinator kills the
	// fleet, respawns it, and re-runs with the retained snapshot as the
	// validated fast-forward cursor, up to AutoResume times. Zero
	// surfaces the first loss as an error.
	AutoResume int
	// Fault, if non-nil, arms FaultSiteWorker from this registry.
	Fault *fault.Registry
	// Command builds the (unstarted) worker process for the given proc
	// index; its stdin/stdout are claimed by the coordinator and its
	// process must run WorkerMain over them (td-run re-executes itself
	// with a hidden flag). Stderr passes through to this process's
	// stderr unless already set.
	Command func(proc int) *exec.Cmd
}

// RunStats describes a finished multi-process solve from the
// coordinator's seat.
type RunStats struct {
	// Rounds is the solved game's round count; RoundsExecuted counts
	// every round the coordinator routed, including rounds re-executed
	// by AutoResume restarts.
	Rounds, RoundsExecuted int
	// Restarts is how many times the fleet was respawned.
	Restarts int
	// WireFrames and WireBytes count the round-path frames (msgs +
	// deliv, headers included) across all attempts. With no restarts,
	// WireBytes == MPWireCost bytes/round × Rounds exactly — the
	// accounting the E29 benchmark entries and their gate rely on.
	WireFrames, WireBytes int64
}

// WorkerLostError reports a worker process that stopped answering —
// killed, crashed, or torn mid-frame. It unwraps to fault.ErrInjected
// only through the schedule that caused it; AutoResume treats every
// worker loss as recoverable.
type WorkerLostError struct {
	Proc  int
	Round int
	Err   error
}

// Error describes the loss.
func (e *WorkerLostError) Error() string {
	return fmt.Sprintf("mp: worker %d lost at round %d: %v", e.Proc, e.Round, e.Err)
}

// Unwrap exposes the underlying transport error.
func (e *WorkerLostError) Unwrap() error { return e.Err }

// recoverable reports whether the AutoResume loop may retry err: a lost
// worker process or an injected coordinator fault. Handshake
// rejections, resume-validation failures, and worker-reported solve
// errors are final.
func recoverable(err error) bool {
	var lost *WorkerLostError
	return errors.As(err, &lost) || errors.Is(err, fault.ErrInjected)
}

// retainedSnaps is the latest complete quiescent snapshot set: every
// worker's slice at the same round cursor.
type retainedSnaps struct {
	have  bool
	round int
	moves []int
	occ   [][]byte
}

// worker is one spawned worker process and its framed connection.
type worker struct {
	cmd   *exec.Cmd
	conn  *local.FrameConn
	stdin io.Closer
}

// Solve runs fi across opt.Procs worker processes and returns a result
// bit-identical to the in-memory engine's (the lockstep contract; the
// differential tests assert it under both tie rules). Worker-process
// loss is recovered through opt.AutoResume exactly like an in-process
// worker crash: respawn, validated fast-forward from the retained
// quiescent snapshot, continue.
func Solve(fi *core.FlatInstance, opt Options) (*core.FlatResult, RunStats, error) {
	var stats RunStats
	if opt.Procs < 1 {
		return nil, stats, fmt.Errorf("mp: %d worker processes", opt.Procs)
	}
	if opt.ShardsPerProc < 1 {
		opt.ShardsPerProc = 1
	}
	if opt.Solver == "" {
		opt.Solver = "proposal"
	}
	if opt.Command == nil {
		return nil, stats, fmt.Errorf("mp: no worker command configured")
	}
	payload := EncodeInstance(fi)
	hash := InstanceHash(payload)
	bounds := local.ShardBounds(fi.CSR(), opt.Procs*opt.ShardsPerProc)
	retained := &retainedSnaps{}
	for attempt := 0; ; attempt++ {
		res, err := runOnce(fi, payload, hash, bounds, opt, retained, &stats)
		if err == nil || attempt >= opt.AutoResume || !recoverable(err) {
			return res, stats, err
		}
		stats.Restarts++
	}
}

// killAll tears down every still-tracked worker process.
func killAll(workers []*worker) {
	for _, w := range workers {
		if w == nil {
			continue
		}
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
		_ = w.stdin.Close()
		_ = w.cmd.Wait()
	}
}

// runOnce executes one attempt: spawn the fleet, handshake, route
// rounds, collect the result. retained is updated with every complete
// snapshot set so a later attempt can fast-forward.
func runOnce(fi *core.FlatInstance, payload []byte, hash string, bounds []int,
	opt Options, retained *retainedSnaps, stats *RunStats) (result *core.FlatResult, err error) {
	procs, spp := opt.Procs, opt.ShardsPerProc
	csr := fi.CSR()
	workers := make([]*worker, procs)
	defer killAll(workers)

	for p := 0; p < procs; p++ {
		cmd := opt.Command(p)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if cmd.Stderr == nil {
			cmd.Stderr = os.Stderr
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("mp: spawning worker %d: %w", p, err)
		}
		workers[p] = &worker{cmd: cmd, conn: local.NewFrameConn(stdout, stdin), stdin: stdin}
	}

	// Handshake every worker: hello in, configuration + instance out.
	for p, w := range workers {
		body, err := expectFrame(w.conn, local.FrameHello)
		if err != nil {
			return nil, &WorkerLostError{Proc: p, Err: err}
		}
		var hello local.Hello
		if err := decodeStrict(body, &hello, "hello"); err != nil {
			return nil, &WorkerLostError{Proc: p, Err: err}
		}
		if hello.Version != local.WireVersion {
			return nil, &local.HandshakeError{Field: "version",
				Got: fmt.Sprint(hello.Version), Want: fmt.Sprint(local.WireVersion)}
		}
		h := &local.Handshake{
			Version:       local.WireVersion,
			GraphHash:     hash,
			Solver:        opt.Solver,
			Tie:           encode.TieName(opt.Tie),
			Seed:          opt.Seed,
			MaxRounds:     opt.MaxRounds,
			Procs:         procs,
			Proc:          p,
			ShardsPerProc: spp,
			Bounds:        bounds,
			SnapshotEvery: opt.SnapshotEvery,
		}
		if retained.have {
			h.Resume = &local.ResumeState{
				Round:    retained.round,
				Moves:    retained.moves[p],
				Occupied: retained.occ[p],
			}
		}
		hb, err := local.EncodeHandshake(h)
		if err != nil {
			return nil, err
		}
		if err := w.conn.Write(local.FrameHandshake, hb); err != nil {
			return nil, &WorkerLostError{Proc: p, Err: err}
		}
		if err := w.conn.Write(local.FrameInstance, payload); err != nil {
			return nil, &WorkerLostError{Proc: p, Err: err}
		}
		if err := w.conn.Flush(); err != nil {
			return nil, &WorkerLostError{Proc: p, Err: err}
		}
	}

	procBounds, err := local.ProcBoundsFromShards(bounds, procs, spp)
	if err != nil {
		return nil, err
	}
	plan := local.NewExchangePlan(csr, procBounds)
	// offsets[q*procs+p]: where Block(q,p) starts inside worker q's msgs
	// payload (after the 8-byte round/awake header, destination
	// processes ascending, q itself skipped).
	offsets := make([]int, procs*procs)
	for q := 0; q < procs; q++ {
		off := 8
		for p := 0; p < procs; p++ {
			if p == q {
				continue
			}
			offsets[q*procs+p] = off
			off += len(plan.Block(q, p))
		}
	}

	site := opt.Fault.Site(FaultSiteWorker)
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = 1 << 20
	}
	msgs := make([][]byte, procs)
	var dbuf []byte
	pendingMoves := make([]int, procs)
	pendingOcc := make([][]byte, procs)

	for round := 1; ; round++ {
		if round > maxRounds+1 {
			// The workers bound their own loops; reaching this means they
			// did not, which is a protocol bug, not a solve outcome.
			return nil, fmt.Errorf("mp: coordinator still routing after %d rounds", maxRounds)
		}
		if f, ok := site.Hit(); ok {
			switch f.Kind {
			case fault.KindCrash:
				victim := site.Intn(procs)
				if w := workers[victim]; w.cmd.Process != nil {
					_ = w.cmd.Process.Kill()
				}
			case fault.KindStall:
				time.Sleep(f.Delay)
			default:
				return nil, f.Err()
			}
		}

		awake := 0
		for p, w := range workers {
			body, err := expectMsgsFrame(w.conn, p, round)
			if err != nil {
				return nil, err
			}
			if want := 8 + plan.UpWords(p); len(body) != want {
				return nil, &WorkerLostError{Proc: p, Round: round, Err: &local.WireError{
					Op: "msgs payload", Detail: fmt.Sprintf("%d bytes, want %d", len(body), want)}}
			}
			r, a, _ := roundHeader(body)
			if r != round {
				return nil, &WorkerLostError{Proc: p, Round: round, Err: &local.WireError{
					Op: "msgs payload", Detail: fmt.Sprintf("round echo %d, want %d", r, round)}}
			}
			awake += a
			msgs[p] = body
			stats.WireFrames++
			stats.WireBytes += int64(5 + len(body))
		}

		for p, w := range workers {
			d := append(dbuf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
			binary.BigEndian.PutUint32(d[0:4], uint32(round))
			binary.BigEndian.PutUint32(d[4:8], uint32(awake))
			for q := 0; q < procs; q++ {
				if q == p {
					continue
				}
				off := offsets[q*procs+p]
				d = append(d, msgs[q][off:off+len(plan.Block(q, p))]...)
			}
			dbuf = d
			if err := w.conn.Write(local.FrameDeliv, d); err != nil {
				return nil, &WorkerLostError{Proc: p, Round: round, Err: err}
			}
			if err := w.conn.Flush(); err != nil {
				return nil, &WorkerLostError{Proc: p, Round: round, Err: err}
			}
			stats.WireFrames++
			stats.WireBytes += int64(5 + len(d))
		}
		stats.RoundsExecuted++

		if opt.SnapshotEvery > 0 && round%opt.SnapshotEvery == 0 {
			for p, w := range workers {
				body, err := expectFrame(w.conn, local.FrameSnap)
				if err != nil {
					return nil, wrapLost(p, round, err)
				}
				var sp snapPayload
				if err := decodeStrict(body, &sp, "snap payload"); err != nil {
					return nil, &WorkerLostError{Proc: p, Round: round, Err: err}
				}
				if sp.Round != round {
					return nil, &WorkerLostError{Proc: p, Round: round, Err: &local.WireError{
						Op: "snap payload", Detail: fmt.Sprintf("cursor %d, want %d", sp.Round, round)}}
				}
				pendingMoves[p] = sp.Moves
				pendingOcc[p] = append(pendingOcc[p][:0], sp.Occupied...)
			}
			// Commit only complete sets: every worker's slice at the same
			// cursor, so a restart resumes a consistent global state.
			retained.have = true
			retained.round = round
			retained.moves = append(retained.moves[:0], pendingMoves...)
			if retained.occ == nil {
				retained.occ = make([][]byte, procs)
			}
			for p := range pendingOcc {
				retained.occ[p] = append(retained.occ[p][:0], pendingOcc[p]...)
			}
		}

		if awake == 0 {
			res, err := collectResults(fi, workers, bounds, spp, round)
			if err != nil {
				return nil, err
			}
			stats.Rounds = round
			for p, w := range workers {
				_ = w.stdin.Close()
				if err := w.cmd.Wait(); err != nil {
					return nil, fmt.Errorf("mp: worker %d exited uncleanly after the result: %w", p, err)
				}
				workers[p] = nil
			}
			return res, nil
		}
	}
}

// wrapLost classifies an error from a worker conversation: transport
// failures mean the process is gone (recoverable), while a relayed
// FrameError or protocol violation is a final, structured failure.
func wrapLost(p, round int, err error) error {
	var we *local.WireError
	if errors.As(err, &we) && we.Err != nil {
		return &WorkerLostError{Proc: p, Round: round, Err: err}
	}
	return fmt.Errorf("mp: worker %d at round %d: %w", p, round, err)
}

// expectMsgsFrame reads worker p's round frame, classifying transport
// failures as worker loss and relaying worker-reported errors verbatim.
func expectMsgsFrame(conn *local.FrameConn, p, round int) ([]byte, error) {
	t, body, err := conn.Read()
	if err != nil {
		return nil, &WorkerLostError{Proc: p, Round: round, Err: err}
	}
	switch t {
	case local.FrameMsgs:
		return body, nil
	case local.FrameError:
		return nil, fmt.Errorf("mp: worker %d failed at round %d: %s", p, round, local.DecodeErrorFrame(body))
	default:
		return nil, &WorkerLostError{Proc: p, Round: round, Err: &local.WireError{
			Op: "protocol", Detail: fmt.Sprintf("expected a msgs frame, got %s", t)}}
	}
}

// collectResults reads every worker's result frame and assembles the
// global FlatResult: placements are disjoint slices, and the per-worker
// move logs — each already round-major — merge with a stable sort into
// the exact global order of the in-memory engine.
func collectResults(fi *core.FlatInstance, workers []*worker, bounds []int, spp, round int) (*core.FlatResult, error) {
	n := fi.N()
	final := make([]bool, n)
	all := make([]core.Move, 0, fi.NumTokens())
	var messages int64
	maxActive := 0
	for p, w := range workers {
		body, err := expectFrame(w.conn, local.FrameResult)
		if err != nil {
			return nil, wrapLost(p, round, err)
		}
		var rp resultPayload
		if err := decodeStrict(body, &rp, "result payload"); err != nil {
			return nil, &WorkerLostError{Proc: p, Round: round, Err: err}
		}
		if rp.Rounds != round {
			return nil, fmt.Errorf("mp: worker %d solved %d rounds, coordinator routed %d", p, rp.Rounds, round)
		}
		vLo, vHi := bounds[p*spp], bounds[(p+1)*spp]
		own, err := local.UnpackBools(nil, rp.Final, vHi-vLo)
		if err != nil {
			return nil, &WorkerLostError{Proc: p, Round: round, Err: err}
		}
		copy(final[vLo:vHi], own)
		all = append(all, rp.Moves...)
		messages += rp.Messages
		if rp.MaxActive > maxActive {
			maxActive = rp.MaxActive
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Round < all[j].Round })
	return &core.FlatResult{
		Final: final,
		Moves: all,
		Stats: core.DistStats{Rounds: round, Messages: messages, MaxActiveUnoccupied: maxActive},
	}, nil
}
