package mp

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"

	"tokendrop/internal/core"
	"tokendrop/internal/fault"
	"tokendrop/internal/local"
)

// TestMain doubles as the worker executable: the coordinator respawns
// this test binary with TD_MP_WORKER=1 and speaks the transport
// protocol over its pipes, so the multi-process tests exercise real
// processes, real pipes, and real SIGKILL.
func TestMain(m *testing.M) {
	if os.Getenv("TD_MP_WORKER") == "1" {
		if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// selfWorker builds worker commands that re-execute this test binary.
func selfWorker(proc int) *exec.Cmd {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "TD_MP_WORKER=1")
	return cmd
}

// layered12k is the differential workhorse: a ~12k-vertex random
// layered game (the E22 shape at CI scale).
func layered12k(seed int64) *core.FlatInstance {
	rng := rand.New(rand.NewSource(seed))
	inst := core.RandomLayered(core.LayeredConfig{
		Levels: 5, Width: 2000, ParentDeg: 3, TokenProb: 0.6, FreeBottom: true,
	}, rng)
	return core.NewFlatInstance(inst)
}

// solveInMemory runs the reference in-memory sharded solve.
func solveInMemory(t *testing.T, fi *core.FlatInstance, solver string, tie core.TieBreak, seed int64, shards int) *core.FlatResult {
	t.Helper()
	sopt := core.ShardedSolveOptions{Tie: tie, Seed: seed, Shards: shards}
	var res *core.FlatResult
	var err error
	if solver == "threelevel" {
		res, err = core.SolveThreeLevelSharded(fi, sopt)
	} else {
		res, err = core.SolveProposalSharded(fi, sopt)
	}
	if err != nil {
		t.Fatalf("in-memory solve: %v", err)
	}
	return res
}

// TestSolveMatchesInMemory is the multi-process lockstep contract: the
// same game solved across separate OS processes must be bit-identical —
// final placement, move log, every stat — to the in-memory engine,
// under both tie rules and across process counts.
func TestSolveMatchesInMemory(t *testing.T) {
	fi := layered12k(7)
	for _, tc := range []struct {
		tie   core.TieBreak
		procs int
		spp   int
	}{
		{core.TieFirstPort, 2, 1},
		{core.TieFirstPort, 3, 2},
		{core.TieRandom, 2, 2},
		{core.TieRandom, 3, 1},
	} {
		name := fmt.Sprintf("tie=%d/procs=%d/spp=%d", tc.tie, tc.procs, tc.spp)
		t.Run(name, func(t *testing.T) {
			want := solveInMemory(t, fi, "proposal", tc.tie, 42, tc.procs*tc.spp)
			got, stats, err := Solve(fi, Options{
				Procs: tc.procs, ShardsPerProc: tc.spp,
				Solver: "proposal", Tie: tc.tie, Seed: 42,
				Command: selfWorker,
			})
			if err != nil {
				t.Fatalf("mp solve: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("mp result diverged from the in-memory engine:\n  mp: rounds=%d moves=%d messages=%d\n  mem: rounds=%d moves=%d messages=%d",
					got.Stats.Rounds, len(got.Moves), got.Stats.Messages,
					want.Stats.Rounds, len(want.Moves), want.Stats.Messages)
			}
			if stats.Rounds != want.Stats.Rounds || stats.Restarts != 0 {
				t.Fatalf("run stats %+v, want rounds=%d restarts=0", stats, want.Stats.Rounds)
			}
		})
	}
}

// TestSolveThreeLevel runs the second flat solver through the same
// multi-process path on a 3-level game.
func TestSolveThreeLevel(t *testing.T) {
	fi := core.FlatLayeredGrid(3, 2000, 1)
	for _, tie := range []core.TieBreak{core.TieFirstPort, core.TieRandom} {
		want := solveInMemory(t, fi, "threelevel", tie, 11, 2)
		got, _, err := Solve(fi, Options{
			Procs: 2, Solver: "threelevel", Tie: tie, Seed: 11, Command: selfWorker,
		})
		if err != nil {
			t.Fatalf("tie=%d: mp solve: %v", tie, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tie=%d: threelevel mp result diverged from the in-memory engine", tie)
		}
	}
}

// TestSolveLarge is the scale acceptance bar: a ≥10⁵-vertex game across
// two processes, bit-identical under both tie rules.
func TestSolveLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-vertex solve in -short mode")
	}
	fi := core.FlatLayeredGrid(11, 10000, 3) // 110,000 vertices
	for _, tie := range []core.TieBreak{core.TieFirstPort, core.TieRandom} {
		want := solveInMemory(t, fi, "proposal", tie, 1, 2)
		got, _, err := Solve(fi, Options{
			Procs: 2, Solver: "proposal", Tie: tie, Seed: 1, Command: selfWorker,
		})
		if err != nil {
			t.Fatalf("tie=%d: mp solve: %v", tie, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tie=%d: 110k-vertex mp result diverged from the in-memory engine", tie)
		}
	}
}

// TestWireAccountingMatchesPlan ties the static E29 numbers to reality:
// the coordinator's actual frame and byte counters must equal
// local.MPWireCost's plan-derived per-round cost times the rounds
// routed.
func TestWireAccountingMatchesPlan(t *testing.T) {
	fi := layered12k(3)
	const procs, spp = 3, 2
	got, stats, err := Solve(fi, Options{
		Procs: procs, ShardsPerProc: spp, Solver: "proposal", Seed: 5, Command: selfWorker,
	})
	if err != nil {
		t.Fatalf("mp solve: %v", err)
	}
	frames, bytes, err := local.MPWireCost(fi.CSR(), procs, spp)
	if err != nil {
		t.Fatalf("MPWireCost: %v", err)
	}
	rounds := int64(stats.RoundsExecuted)
	if stats.WireFrames != int64(frames)*rounds {
		t.Fatalf("WireFrames = %d, plan says %d frames/round × %d rounds = %d",
			stats.WireFrames, frames, rounds, int64(frames)*rounds)
	}
	if stats.WireBytes != bytes*rounds {
		t.Fatalf("WireBytes = %d, plan says %d bytes/round × %d rounds = %d",
			stats.WireBytes, bytes, rounds, bytes*rounds)
	}
	if got.Stats.Rounds != stats.RoundsExecuted {
		t.Fatalf("executed %d rounds for a %d-round solve with no restarts",
			stats.RoundsExecuted, got.Stats.Rounds)
	}
}

// TestKillWorkerAutoResume is the process-loss recovery story: a worker
// SIGKILLed mid-run is recovered by respawning the fleet and
// fast-forwarding through the retained quiescent snapshot, and the
// recovered result still bit-matches the uninterrupted in-memory run.
func TestKillWorkerAutoResume(t *testing.T) {
	fi := layered12k(9)
	want := solveInMemory(t, fi, "proposal", core.TieFirstPort, 42, 2)
	if want.Stats.Rounds < 10 {
		t.Fatalf("test instance solves in %d rounds; too short to kill at round 8", want.Stats.Rounds)
	}
	reg := fault.NewRegistry(1)
	if _, sched, err := fault.ParseSpec("mp/worker:crash:at=8"); err != nil {
		t.Fatal(err)
	} else {
		reg.Arm(FaultSiteWorker, sched)
	}
	got, stats, err := Solve(fi, Options{
		Procs: 2, Solver: "proposal", Seed: 42,
		SnapshotEvery: 4, AutoResume: 2,
		Fault: reg, Command: selfWorker,
	})
	if err != nil {
		t.Fatalf("mp solve with kill at round 8: %v", err)
	}
	if stats.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", stats.Restarts)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovered mp result diverged from the uninterrupted in-memory run")
	}
}

// TestKillWorkerNoBudget: the same loss without AutoResume surfaces a
// structured WorkerLostError.
func TestKillWorkerNoBudget(t *testing.T) {
	fi := layered12k(9)
	reg := fault.NewRegistry(1)
	_, sched, err := fault.ParseSpec("mp/worker:crash:at=3")
	if err != nil {
		t.Fatal(err)
	}
	reg.Arm(FaultSiteWorker, sched)
	_, _, err = Solve(fi, Options{
		Procs: 2, Solver: "proposal", Seed: 42, Fault: reg, Command: selfWorker,
	})
	var lost *WorkerLostError
	if !errors.As(err, &lost) {
		t.Fatalf("error = %v, want a *WorkerLostError", err)
	}
}

// handshakeProbe drives WorkerMain in-process over pipes so the
// handshake-rejection paths are testable without subprocesses: it plays
// coordinator, sending a (possibly corrupted) handshake + instance, and
// returns the worker's FrameError text.
func handshakeProbe(t *testing.T, fi *core.FlatInstance, mutate func(*local.Handshake)) string {
	t.Helper()
	toWorkerR, toWorkerW := io.Pipe()
	fromWorkerR, fromWorkerW := io.Pipe()
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- WorkerMain(toWorkerR, fromWorkerW)
		fromWorkerW.Close()
	}()
	conn := local.NewFrameConn(fromWorkerR, toWorkerW)
	if _, err := expectFrame(conn, local.FrameHello); err != nil {
		t.Fatalf("hello: %v", err)
	}
	payload := EncodeInstance(fi)
	h := &local.Handshake{
		Version:       local.WireVersion,
		GraphHash:     InstanceHash(payload),
		Solver:        "proposal",
		Tie:           "first-port",
		Procs:         2,
		Proc:          0,
		ShardsPerProc: 1,
		Bounds:        local.ShardBounds(fi.CSR(), 2),
	}
	mutate(h)
	hb, err := local.EncodeHandshake(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Write(local.FrameHandshake, hb); err != nil {
		t.Fatal(err)
	}
	if err := conn.Write(local.FrameInstance, payload); err != nil {
		t.Fatal(err)
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	ft, body, err := conn.Read()
	if err != nil {
		t.Fatalf("reading the worker's verdict: %v", err)
	}
	if ft != local.FrameError {
		t.Fatalf("worker accepted a corrupted handshake (sent a %s frame)", ft)
	}
	toWorkerW.Close()
	if err := <-workerErr; err == nil {
		t.Fatal("WorkerMain returned nil after rejecting the handshake")
	}
	return local.DecodeErrorFrame(body)
}

// TestHandshakeRejections: every mismatch the handshake guards —
// version, graph hash, tie rule, solver, shard map — fails loudly with
// a structured error naming the field.
func TestHandshakeRejections(t *testing.T) {
	fi := core.FlatLayeredGrid(3, 50, 1)
	cases := []struct {
		name   string
		mutate func(*local.Handshake)
		want   string
	}{
		{"version", func(h *local.Handshake) { h.Version = 99 }, "version"},
		{"graph hash", func(h *local.Handshake) { h.GraphHash = strings.Repeat("0", 64) }, "graph_hash"},
		{"tie rule", func(h *local.Handshake) { h.Tie = "coin-flip" }, "tie"},
		{"solver", func(h *local.Handshake) { h.Solver = "quantum" }, "solver"},
		{"shard map", func(h *local.Handshake) { h.Bounds[1]++ }, "bounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := handshakeProbe(t, fi, tc.mutate)
			if !strings.Contains(msg, tc.want) {
				t.Fatalf("rejection %q does not name the %q field", msg, tc.want)
			}
			if !strings.Contains(msg, "handshake rejected") && !strings.Contains(msg, "wire") {
				t.Fatalf("rejection %q is not a structured handshake/wire error", msg)
			}
		})
	}
}

// TestInstanceCodecRoundTrip: the binary instance transfer reproduces
// the exact CSR, levels, and tokens.
func TestInstanceCodecRoundTrip(t *testing.T) {
	fi := layered12k(5)
	payload := EncodeInstance(fi)
	back, err := DecodeInstance(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(back.CSR(), fi.CSR()) {
		t.Fatal("CSR did not round-trip")
	}
	for v := 0; v < fi.N(); v++ {
		if back.Level(v) != fi.Level(v) || back.Token(v) != fi.Token(v) {
			t.Fatalf("vertex %d: level/token did not round-trip", v)
		}
	}
	if InstanceHash(payload) != InstanceHash(EncodeInstance(back)) {
		t.Fatal("re-encoding changed the instance hash")
	}
}

// TestInstanceCodecRejectsCorruption: truncated and size-inconsistent
// instance payloads fail with structured errors rather than panicking.
func TestInstanceCodecRejectsCorruption(t *testing.T) {
	payload := EncodeInstance(core.FlatLayeredGrid(3, 20, 1))
	for _, tc := range []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"header only", payload[:8]},
		{"truncated", payload[:len(payload)-3]},
		{"oversized", append(append([]byte(nil), payload...), 0xff)},
	} {
		if _, err := DecodeInstance(tc.b); err == nil {
			t.Fatalf("%s instance payload decoded without error", tc.name)
		}
	}
}
