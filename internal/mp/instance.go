// Package mp runs the sharded engine across OS processes: a coordinator
// spawns one worker process per shard group, ships every worker the same
// flat game instance, and routes the boundary-crossing message-buffer
// words between them once per round (local.ProcTransport on the worker
// side). The design is SPMD: every worker builds the identical instance
// and program, steps only its own contiguous shard range, and the
// double-buffered receiver-indexed buffer layout — already a wire format
// — carries the rounds. Results are bit-identical to the in-memory
// engine under both tie rules, which the differential tests assert, and
// a worker process lost mid-run is recovered through the same
// AutoResume snapshot story as an in-process worker crash: kill the
// fleet, respawn it, and fast-forward through the retained quiescent
// snapshot with validation.
package mp

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
	"tokendrop/internal/local"
)

// This file is the instance codec: the one bulk transfer of a run. The
// coordinator encodes its FlatInstance once and streams the same bytes
// to every worker (FrameInstance), so all processes construct the
// identical CSR — same arc order, same port numbering, same tie-break
// behaviour — by construction rather than by convention. The handshake
// carries the payload's SHA-256; each worker recomputes it over what it
// actually received, so a torn or mismatched transfer fails loudly
// before a single round runs.
//
// Layout (big-endian): u32 n, u32 arcs, then Row (n+1), Col, EID, Rev
// (arcs each) as i32, level (n) as i32, and the token bitmap
// ((n+7)/8 bytes, LSB-first). Everything a FlatInstance is made of.

// instanceWireSize returns the encoded size of fi.
func instanceWireSize(fi *core.FlatInstance) int {
	n, arcs := fi.N(), fi.CSR().NumArcs()
	return 8 + 4*(n+1) + 3*4*arcs + 4*n + (n+7)/8
}

// EncodeInstance serializes fi for the FrameInstance transfer.
func EncodeInstance(fi *core.FlatInstance) []byte {
	csr := fi.CSR()
	n, arcs := fi.N(), csr.NumArcs()
	b := make([]byte, 0, instanceWireSize(fi))
	var u [4]byte
	put := func(x int32) {
		binary.BigEndian.PutUint32(u[:], uint32(x))
		b = append(b, u[:]...)
	}
	put(int32(n))
	put(int32(arcs))
	for _, x := range csr.Row {
		put(x)
	}
	for _, x := range csr.Col {
		put(x)
	}
	for _, x := range csr.EID {
		put(x)
	}
	for _, x := range csr.Rev {
		put(x)
	}
	for v := 0; v < n; v++ {
		put(int32(fi.Level(v)))
	}
	bitmap := make([]bool, n)
	for v := 0; v < n; v++ {
		bitmap[v] = fi.Token(v)
	}
	return append(b, local.PackBools(nil, bitmap)...)
}

// DecodeInstance reconstructs the FlatInstance from an EncodeInstance
// payload, validating the CSR and the game (adjacent levels, no
// negative level) exactly as local construction would.
func DecodeInstance(b []byte) (*core.FlatInstance, error) {
	bad := func(what string) (*core.FlatInstance, error) {
		return nil, &local.WireError{Op: "instance payload", Detail: what}
	}
	if len(b) < 8 {
		return bad(fmt.Sprintf("%d bytes, want at least the n/arcs header", len(b)))
	}
	n := int(int32(binary.BigEndian.Uint32(b[0:4])))
	arcs := int(int32(binary.BigEndian.Uint32(b[4:8])))
	if n < 0 || arcs < 0 || arcs%2 != 0 {
		return bad(fmt.Sprintf("implausible dimensions n=%d arcs=%d", n, arcs))
	}
	want := 8 + 4*(n+1) + 3*4*arcs + 4*n + (n+7)/8
	if len(b) != want {
		return bad(fmt.Sprintf("%d bytes for n=%d arcs=%d, want %d", len(b), n, arcs, want))
	}
	off := 8
	ints := func(count int) []int32 {
		xs := make([]int32, count)
		for i := range xs {
			xs[i] = int32(binary.BigEndian.Uint32(b[off : off+4]))
			off += 4
		}
		return xs
	}
	csr := &graph.CSR{Row: ints(n + 1), Col: ints(arcs), EID: ints(arcs), Rev: ints(arcs)}
	level := ints(n)
	token, err := local.UnpackBools(nil, b[off:], n)
	if err != nil {
		return nil, err
	}
	if err := csr.Validate(); err != nil {
		return nil, fmt.Errorf("mp: received instance: %w", err)
	}
	return core.NewFlatInstanceCSR(csr, level, token)
}

// InstanceHash is the handshake's graph binding: the hex SHA-256 of the
// encoded instance payload.
func InstanceHash(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}
