package loadbalance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tokendrop/internal/graph"
)

func TestStateBasics(t *testing.T) {
	g := graph.Path(3)
	s, err := NewState(g, []int{4, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.LocallyOptimal() {
		t.Fatal("4-0 gap should not be optimal")
	}
	if s.Potential() != 16 || s.Total() != 4 {
		t.Fatal("potential/total wrong")
	}
	opt, _ := NewState(g, []int{2, 1, 1})
	if !opt.LocallyOptimal() {
		t.Fatal("2-1-1 is locally optimal")
	}
}

func TestNewStateRejectsBadInput(t *testing.T) {
	g := graph.Path(2)
	if _, err := NewState(g, []int{1}); err == nil {
		t.Fatal("short vector accepted")
	}
	if _, err := NewState(g, []int{-1, 0}); err == nil {
		t.Fatal("negative load accepted")
	}
}

func TestBalanceSmall(t *testing.T) {
	g := graph.Path(4)
	s, _ := NewState(g, []int{8, 0, 0, 0})
	res, err := Balance(s, 1, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Final.LocallyOptimal() {
		t.Fatal("not locally optimal")
	}
	if res.Final.Total() != 8 {
		t.Fatal("load lost")
	}
	if res.Final.Potential() > s.Potential() {
		t.Fatal("potential increased")
	}
}

func TestBalanceAlreadyOptimal(t *testing.T) {
	g := graph.Cycle(5)
	s, _ := NewState(g, []int{1, 1, 1, 1, 1})
	res, err := Balance(s, 2, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnitMoves != 0 || res.Rounds != 1 {
		t.Fatalf("already-optimal input did %d moves over %d rounds", res.UnitMoves, res.Rounds)
	}
}

func TestDumbbellShape(t *testing.T) {
	s, err := Dumbbell(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.G.N() != 8 || s.G.M() != 7 {
		t.Fatalf("dumbbell shape n=%d m=%d", s.G.N(), s.G.M())
	}
	if s.Total() != 24 {
		t.Fatal("initial load")
	}
	if !s.G.IsConnected() {
		t.Fatal("bridge missing")
	}
}

func TestBottleneckCostGrowsWithLoad(t *testing.T) {
	// The Section 2 phenomenon: rounds grow (roughly linearly) with the
	// initial per-vertex load, because every surplus unit crosses the
	// single bridge individually.
	rounds := func(initial int) int {
		s, err := Dumbbell(3, initial)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Balance(s, 7, 1<<22, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Final.LocallyOptimal() {
			t.Fatal("not optimal")
		}
		return res.Rounds
	}
	small := rounds(4)
	large := rounds(32)
	if large < 3*small/2 {
		t.Fatalf("bottleneck cost did not grow: load 4 -> %d rounds, load 32 -> %d rounds", small, large)
	}
}

func TestBalanceConservesAndConverges(t *testing.T) {
	check := func(seed int64, nRaw, loadRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 3
		g := graph.RandomGNM(n, min(2*n, n*(n-1)/2), rng)
		load := make([]int, n)
		for i := range load {
			load[i] = int(loadRaw) % 9 * (i % 3)
		}
		s, err := NewState(g, load)
		if err != nil {
			return false
		}
		res, err := Balance(s, seed, 1<<22, 0)
		if err != nil {
			return false
		}
		return res.Final.LocallyOptimal() && res.Final.Total() == s.Total() &&
			res.Final.Potential() <= s.Potential()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
