package loadbalance

import "math/bits"

// The shared message vocabulary of the best-response comparators: every
// 3-round-cycle dynamic in this repository (the locally-optimal balancer
// here, the selfish-flip orientation players and the selfish-reassignment
// assignment players in internal/baseline) exchanges exactly a load
// announcement, a transfer offer, and a transfer acknowledgement. The
// types live here once so the comparator packages share one definition
// instead of re-declaring structurally identical messages — and one set
// of encoded sizes (local.Sized): load announcements are the only
// Θ(log load)-bit messages, offers and acks are constant.

// LoadMsg announces the sender's current load.
type LoadMsg struct{ Load int }

// OfferMsg offers one unit of the dynamic's currency (a load unit, an
// edge flip, a customer move) to the receiver.
type OfferMsg struct{}

// AckMsg accepts exactly one previously received offer.
type AckMsg struct{}

// Bits returns the encoded size of a load announcement: a 2-bit tag plus
// the load's binary representation.
func (m LoadMsg) Bits() int { return 2 + bits.Len(uint(m.Load)) }

// Bits returns the constant encoded size of an offer.
func (OfferMsg) Bits() int { return 2 }

// Bits returns the constant encoded size of an acknowledgement.
func (AckMsg) Bits() int { return 2 }
