package loadbalance

import "math/bits"

// Encoded message sizes (local.Sized): load announcements are the only
// Θ(log load)-bit messages of the balancing dynamic.

func (m lbLoad) Bits() int { return 2 + bits.Len(uint(m.Load)) }
func (lbOffer) Bits() int  { return 2 }
func (lbAck) Bits() int    { return 2 }
