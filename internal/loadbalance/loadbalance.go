// Package loadbalance implements locally optimal load balancing (Feuilloley,
// Hirvonen, Suomela, DISC 2015), the problem Section 2 of the paper
// contrasts token dropping against: integer loads sit on nodes, a unit of
// load may move across an edge any number of times, and the goal is a
// locally optimal state — no single move lowers Σ load², i.e. adjacent
// loads differ by at most one.
//
// The paper's point is structural: token dropping consumes an edge after
// one use, so a bottleneck edge between a high-load and a low-load region
// is crossed once and the game simply gets stuck; a load balancer must
// push units across it one by one, paying Ω(initial load) rounds. The
// distributed best-response dynamic implemented here makes that cost
// measurable (experiment E15), which is the evidence behind the paper's
// remark that token dropping is the strictly easier problem.
package loadbalance

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/graph"
	"tokendrop/internal/local"
)

// State is a load vector over the vertices of a graph.
type State struct {
	G    *graph.Graph
	Load []int
}

// NewState wraps a load vector (copied).
func NewState(g *graph.Graph, load []int) (*State, error) {
	if len(load) != g.N() {
		return nil, fmt.Errorf("loadbalance: %d loads for %d vertices", len(load), g.N())
	}
	for v, l := range load {
		if l < 0 {
			return nil, fmt.Errorf("loadbalance: negative load at %d", v)
		}
	}
	return &State{G: g, Load: append([]int(nil), load...)}, nil
}

// LocallyOptimal reports whether no single unit move improves Σ load²:
// every edge's endpoint loads differ by at most one.
func (s *State) LocallyOptimal() bool {
	for _, e := range s.G.Edges() {
		d := s.Load[e.U] - s.Load[e.V]
		if d < -1 || d > 1 {
			return false
		}
	}
	return true
}

// Potential returns Σ load².
func (s *State) Potential() int {
	p := 0
	for _, l := range s.Load {
		p += l * l
	}
	return p
}

// Total returns the load sum (conserved by balancing).
func (s *State) Total() int {
	t := 0
	for _, l := range s.Load {
		t += l
	}
	return t
}

// The dynamic exchanges the shared best-response messages of bits.go
// (LoadMsg/OfferMsg/AckMsg); the protocol mirrors the selfish-flip
// comparator (3-round cycles, coin-flip roles, node-disjoint transfers
// per cycle), with load units in place of edge flips.

type lbMachine struct {
	vertex  int
	rng     *rand.Rand
	load    int
	nbrLoad []int
	offerTo int
	moves   int
}

func (m *lbMachine) Init(info local.NodeInfo) {
	m.nbrLoad = make([]int, info.Degree)
	for i := range m.nbrLoad {
		m.nbrLoad[i] = -1
	}
	m.offerTo = -1
}

func (m *lbMachine) Step(round int, in []local.Payload, out []local.Payload) bool {
	switch (round - 1) % 3 {
	case 0: // apply acks from last cycle, broadcast loads
		for p, raw := range in {
			if raw == nil {
				continue
			}
			if _, ok := raw.(AckMsg); !ok {
				panic(fmt.Sprintf("loadbalance: vertex %d expected acks, got %T", m.vertex, raw))
			}
			if p != m.offerTo {
				panic("loadbalance: ack on an unoffered port")
			}
			m.load--
			m.moves++
		}
		m.offerTo = -1
		for p := range out {
			out[p] = LoadMsg{Load: m.load}
		}
	case 1: // read loads; proposers offer one unit downhill
		for p, raw := range in {
			if raw == nil {
				continue
			}
			msg, ok := raw.(LoadMsg)
			if !ok {
				panic(fmt.Sprintf("loadbalance: vertex %d expected loads, got %T", m.vertex, raw))
			}
			m.nbrLoad[p] = msg.Load
		}
		if m.rng.Intn(2) == 0 {
			return false // receiver role this cycle
		}
		best, bestGap := -1, 1
		for p, nl := range m.nbrLoad {
			if nl < 0 {
				continue
			}
			if gap := m.load - nl; gap > bestGap {
				best, bestGap = p, gap
			}
		}
		if best >= 0 {
			m.offerTo = best
			out[best] = OfferMsg{}
		}
	case 2: // receivers take at most one unit
		var offers []int
		for p, raw := range in {
			if raw == nil {
				continue
			}
			if _, ok := raw.(OfferMsg); !ok {
				panic(fmt.Sprintf("loadbalance: vertex %d expected offers, got %T", m.vertex, raw))
			}
			offers = append(offers, p)
		}
		if m.offerTo >= 0 || len(offers) == 0 {
			return false
		}
		p := offers[m.rng.Intn(len(offers))]
		m.load++
		m.moves++
		out[p] = AckMsg{}
	}
	return false
}

var _ local.Machine = (*lbMachine)(nil)

// Result reports a balancing run.
type Result struct {
	Final     *State
	Rounds    int
	UnitMoves int // single-unit transfers executed (each counted once)
}

// Balance runs the distributed dynamic from the given state until locally
// optimal (simulator-side termination oracle, as for the selfish-flip
// baseline) and returns the balanced state. The input is not mutated.
func Balance(s *State, seed int64, maxRounds, workers int) (*Result, error) {
	if maxRounds == 0 {
		maxRounds = 1 << 22
	}
	g := s.G
	machines := make([]*lbMachine, g.N())
	nw := local.NewNetwork(g, func(v int) local.Machine {
		machines[v] = &lbMachine{
			vertex: v,
			rng:    rand.New(rand.NewSource(seed ^ int64(v)*0x632be5ab)),
			load:   s.Load[v],
		}
		return machines[v]
	})
	stop := func(round int) bool {
		if (round-1)%3 != 0 {
			return false
		}
		for _, e := range g.Edges() {
			d := machines[e.U].load - machines[e.V].load
			if d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	stats, err := nw.Run(local.Options{MaxRounds: maxRounds, Workers: workers, Stop: stop})
	if err != nil {
		return nil, fmt.Errorf("loadbalance: dynamic did not converge: %w", err)
	}
	final := make([]int, g.N())
	moves := 0
	for v, m := range machines {
		final[v] = m.load
		moves += m.moves
	}
	fs, err := NewState(g, final)
	if err != nil {
		return nil, err
	}
	if fs.Total() != s.Total() {
		return nil, fmt.Errorf("loadbalance: load not conserved: %d -> %d", s.Total(), fs.Total())
	}
	return &Result{Final: fs, Rounds: stats.Rounds, UnitMoves: moves / 2}, nil
}

// Dumbbell builds the Section 2 bottleneck scenario: two groups of `side`
// vertices joined by a single bridge edge, with `initial` units of load on
// every vertex of the left group and none on the right. Within each group
// the vertices form a path (so load can spread internally), and all
// traffic between the groups must cross the one bridge.
func Dumbbell(side, initial int) (*State, error) {
	g := graph.New(2 * side)
	for i := 0; i+1 < side; i++ {
		g.AddEdge(i, i+1)
		g.AddEdge(side+i, side+i+1)
	}
	g.AddEdge(side-1, side) // the bridge
	g.SortAdjacency()
	load := make([]int, 2*side)
	for i := 0; i < side; i++ {
		load[i] = initial
	}
	return NewState(g, load)
}
