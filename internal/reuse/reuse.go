// Package reuse holds the one helper the grow-only storage discipline of
// the reusable execution layer is built on (see ARCHITECTURE.md, "The
// reusable execution layer"): engine sessions, CSR builders, and solver
// workspaces all keep their arrays across runs and resize them in place.
package reuse

// Grown returns s resized to n entries, reusing its backing array when
// the capacity suffices. Contents are unspecified: callers overwrite
// every entry, or zero explicitly with clear().
func Grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
