package assign

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"tokendrop/internal/core"
	"tokendrop/internal/fault"
	"tokendrop/internal/graph"
)

// fireOnce arms the repair failpoint to fire on the first repair move
// of the next delta, whatever the site's visit count is by now.
func fireOnce(reg *fault.Registry, kind fault.Kind) {
	reg.Arm(FaultSiteRepair, fault.Schedule{Kind: kind, Every: 1, Max: 1})
}

// sameResolverState asserts two resolvers agree on the whole protocol
// surface: live sets, assignments, loads, and customer port orders.
func sameResolverState(t *testing.T, tag string, a, b *Resolver) {
	t.Helper()
	as, bs := a.Stats(), b.Stats()
	if as.Customers != bs.Customers || as.Servers != bs.Servers || as.Edges != bs.Edges {
		t.Fatalf("%s: live counts %d/%d/%d vs %d/%d/%d", tag,
			as.Customers, as.Servers, as.Edges, bs.Customers, bs.Servers, bs.Edges)
	}
	if as.Moves != bs.Moves || as.Deltas != bs.Deltas {
		t.Fatalf("%s: moves/deltas %d/%d vs %d/%d", tag, as.Moves, as.Deltas, bs.Moves, bs.Deltas)
	}
	ids := a.Overlay().CustomerIDs()
	if n := b.Overlay().CustomerIDs(); n > ids {
		ids = n
	}
	for c := 0; c < ids; c++ {
		if a.Overlay().CustomerLive(c) != b.Overlay().CustomerLive(c) {
			t.Fatalf("%s: customer %d liveness differs", tag, c)
		}
		if !a.Overlay().CustomerLive(c) {
			continue
		}
		if a.ServerOf(c) != b.ServerOf(c) {
			t.Fatalf("%s: customer %d assigned %d vs %d", tag, c, a.ServerOf(c), b.ServerOf(c))
		}
		aa, ba := a.Overlay().Adj(c), b.Overlay().Adj(c)
		if len(aa) != len(ba) {
			t.Fatalf("%s: customer %d degree %d vs %d", tag, c, len(aa), len(ba))
		}
		for p := range aa {
			if aa[p] != ba[p] {
				t.Fatalf("%s: customer %d port %d: %d vs %d", tag, c, p, aa[p], ba[p])
			}
		}
	}
	sids := a.Overlay().ServerIDs()
	if n := b.Overlay().ServerIDs(); n > sids {
		sids = n
	}
	for s := 0; s < sids; s++ {
		if a.Overlay().ServerLive(s) != b.Overlay().ServerLive(s) {
			t.Fatalf("%s: server %d liveness differs", tag, s)
		}
		if a.Overlay().ServerLive(s) && a.Load(s) != b.Load(s) {
			t.Fatalf("%s: server %d load %d vs %d", tag, s, a.Load(s), b.Load(s))
		}
	}
}

// TestRollbackRetryBitEquivalence is the tentpole resolver guarantee: a
// faulted resolver and an unfaulted twin run the same delta sequence,
// and every AddCustomer/AddEdge that an injected repair fault aborts is
// rolled back and retried — after which the two resolvers must agree
// bit-exactly on assignments, loads, and port orders, under both tie
// rules. A perturbed RNG stream or a mis-restored load would make the
// TieRandom twin drift within a few deltas.
func TestRollbackRetryBitEquivalence(t *testing.T) {
	for _, tie := range []core.TieBreak{core.TieFirstPort, core.TieRandom} {
		rng := rand.New(rand.NewSource(31 + int64(tie)))
		b := graph.MustBipartite(graph.RandomBipartite(40, 10, 3, rng), 40)
		fb := graph.NewCSRBipartiteFromBipartite(b)
		reg := fault.NewRegistry(1)
		mk := func(reg *fault.Registry) *Resolver {
			r, err := NewResolver(fb, nil, ResolverOptions{
				Tie: tie, Seed: 5, Shards: 2, SelfCheck: true, Fault: reg,
			})
			if err != nil {
				t.Fatalf("tie %v: NewResolver: %v", tie, err)
			}
			return r
		}
		faulted, ref := mk(reg), mk(nil)
		defer faulted.Close()
		defer ref.Close()
		sameResolverState(t, "construction", faulted, ref)

		var liveCust, liveServ []int32
		for c := 0; c < fb.NumLeft; c++ {
			liveCust = append(liveCust, int32(c))
		}
		for s := 0; s < fb.NumServers(); s++ {
			liveServ = append(liveServ, int32(s))
		}
		rollbacks := 0
		for step := 0; step < 500; step++ {
			switch op := rng.Intn(4); {
			case op == 0 && len(liveServ) > 0: // faultable: add customer
				want := 1 + rng.Intn(3)
				perm := rng.Perm(len(liveServ))
				servers := make([]int32, 0, want)
				for _, i := range perm {
					servers = append(servers, liveServ[i])
					if len(servers) == want {
						break
					}
				}
				fireOnce(reg, fault.KindError)
				c, err := faulted.AddCustomer(servers)
				if err != nil {
					if !errors.Is(err, fault.ErrInjected) {
						t.Fatalf("tie %v step %d: AddCustomer: %v", tie, step, err)
					}
					rollbacks++
					sameResolverState(t, "post-rollback", faulted, ref)
					reg.Disarm(FaultSiteRepair)
					if c, err = faulted.AddCustomer(servers); err != nil {
						t.Fatalf("tie %v step %d: retry AddCustomer: %v", tie, step, err)
					}
				}
				reg.Disarm(FaultSiteRepair)
				cr, err := ref.AddCustomer(servers)
				if err != nil {
					t.Fatalf("tie %v step %d: ref AddCustomer: %v", tie, step, err)
				}
				if c != cr {
					t.Fatalf("tie %v step %d: ids diverged %d vs %d", tie, step, c, cr)
				}
				liveCust = append(liveCust, int32(c))
			case op == 1 && len(liveCust) > 0 && len(liveServ) > 0: // faultable: add edge
				c := liveCust[rng.Intn(len(liveCust))]
				s := liveServ[rng.Intn(len(liveServ))]
				dup := false
				for _, u := range faulted.Overlay().Adj(int(c)) {
					if u == s {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				fireOnce(reg, fault.KindError)
				if err := faulted.AddEdge(int(c), int(s)); err != nil {
					if !errors.Is(err, fault.ErrInjected) {
						t.Fatalf("tie %v step %d: AddEdge: %v", tie, step, err)
					}
					rollbacks++
					sameResolverState(t, "post-rollback", faulted, ref)
					reg.Disarm(FaultSiteRepair)
					if err := faulted.AddEdge(int(c), int(s)); err != nil {
						t.Fatalf("tie %v step %d: retry AddEdge: %v", tie, step, err)
					}
				}
				reg.Disarm(FaultSiteRepair)
				if err := ref.AddEdge(int(c), int(s)); err != nil {
					t.Fatalf("tie %v step %d: ref AddEdge: %v", tie, step, err)
				}
			case op == 2 && len(liveCust) > 1: // plain churn: remove customer
				i := rng.Intn(len(liveCust))
				c := liveCust[i]
				if err := faulted.RemoveCustomer(int(c)); err != nil {
					t.Fatalf("tie %v step %d: RemoveCustomer: %v", tie, step, err)
				}
				if err := ref.RemoveCustomer(int(c)); err != nil {
					t.Fatalf("tie %v step %d: ref RemoveCustomer: %v", tie, step, err)
				}
				liveCust[i] = liveCust[len(liveCust)-1]
				liveCust = liveCust[:len(liveCust)-1]
			default: // plain churn: remove a random non-last edge
				if len(liveCust) == 0 {
					continue
				}
				c := liveCust[rng.Intn(len(liveCust))]
				adj := faulted.Overlay().Adj(int(c))
				if len(adj) < 2 {
					continue
				}
				s := adj[rng.Intn(len(adj))]
				if err := faulted.RemoveEdge(int(c), int(s)); err != nil {
					t.Fatalf("tie %v step %d: RemoveEdge: %v", tie, step, err)
				}
				if err := ref.RemoveEdge(int(c), int(s)); err != nil {
					t.Fatalf("tie %v step %d: ref RemoveEdge: %v", tie, step, err)
				}
			}
			sameResolverState(t, "step", faulted, ref)
		}
		if rollbacks < 5 {
			t.Fatalf("tie %v: only %d injected rollbacks exercised; churn too tame", tie, rollbacks)
		}
		if got := faulted.Stats().Rollbacks; got != rollbacks {
			t.Fatalf("tie %v: stats count %d rollbacks, test observed %d", tie, got, rollbacks)
		}
		if ref.Stats().Rollbacks != 0 {
			t.Fatalf("tie %v: unfaulted resolver reports rollbacks", tie)
		}
	}
}

// TestRollbackAnywhereOracle injects repair faults into every delta kind
// — including the removal ops whose rollback perturbs (non-protocol)
// incidence order — and checks the resolver stays oracle-valid: every
// rollback leaves a Verify-clean state, the final network matches the
// model's live sets, and the batch solver agrees it is stable.
func TestRollbackAnywhereOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	b := graph.MustBipartite(graph.RandomBipartite(60, 16, 3, rng), 60)
	fb := graph.NewCSRBipartiteFromBipartite(b)
	reg := fault.NewRegistry(3)
	r, err := NewResolver(fb, nil, ResolverOptions{
		Tie: core.TieRandom, Seed: 7, Shards: 2, SelfCheck: true,
		FragThreshold: 0.3, Fault: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var liveCust, liveServ []int32
	for c := 0; c < fb.NumLeft; c++ {
		liveCust = append(liveCust, int32(c))
	}
	for s := 0; s < fb.NumServers(); s++ {
		liveServ = append(liveServ, int32(s))
	}
	edges := func() int { return r.Stats().Edges }
	rollbacks := 0
	for step := 0; step < 600; step++ {
		// Every delta may fault on its first repair move; the injected
		// kind alternates so crash-flavored faults abort deltas too.
		kind := fault.KindError
		if step%2 == 1 {
			kind = fault.KindCrash
		}
		fireOnce(reg, kind)
		before := [3]int{len(liveCust), len(liveServ), edges()}
		var opErr error
		switch op := rng.Intn(10); {
		case op < 3 && len(liveServ) > 0:
			want := 1 + rng.Intn(3)
			perm := rng.Perm(len(liveServ))
			servers := make([]int32, 0, want)
			for _, i := range perm {
				servers = append(servers, liveServ[i])
				if len(servers) == want {
					break
				}
			}
			var c int
			c, opErr = r.AddCustomer(servers)
			if opErr == nil {
				liveCust = append(liveCust, int32(c))
			}
		case op < 5 && len(liveCust) > 1:
			i := rng.Intn(len(liveCust))
			opErr = r.RemoveCustomer(int(liveCust[i]))
			if opErr == nil {
				liveCust[i] = liveCust[len(liveCust)-1]
				liveCust = liveCust[:len(liveCust)-1]
			}
		case op < 6:
			var s int
			s, opErr = r.AddServer()
			if opErr == nil {
				liveServ = append(liveServ, int32(s))
			}
		case op < 7 && len(liveServ) > 1:
			i := rng.Intn(len(liveServ))
			s := liveServ[i]
			drainable := true
			for _, c := range r.Overlay().Incident(int(s)) {
				if len(r.Overlay().Adj(int(c))) < 2 {
					drainable = false
					break
				}
			}
			if !drainable {
				reg.Disarm(FaultSiteRepair)
				continue
			}
			opErr = r.DrainServer(int(s))
			if opErr == nil {
				liveServ[i] = liveServ[len(liveServ)-1]
				liveServ = liveServ[:len(liveServ)-1]
			}
		case op < 9 && len(liveCust) > 0 && len(liveServ) > 0:
			c := liveCust[rng.Intn(len(liveCust))]
			s := liveServ[rng.Intn(len(liveServ))]
			dup := false
			for _, u := range r.Overlay().Adj(int(c)) {
				if u == s {
					dup = true
					break
				}
			}
			if dup {
				reg.Disarm(FaultSiteRepair)
				continue
			}
			opErr = r.AddEdge(int(c), int(s))
		default:
			if len(liveCust) == 0 {
				reg.Disarm(FaultSiteRepair)
				continue
			}
			c := liveCust[rng.Intn(len(liveCust))]
			adj := r.Overlay().Adj(int(c))
			if len(adj) < 2 {
				reg.Disarm(FaultSiteRepair)
				continue
			}
			opErr = r.RemoveEdge(int(c), int(adj[rng.Intn(len(adj))]))
		}
		reg.Disarm(FaultSiteRepair)
		if opErr != nil {
			if !errors.Is(opErr, fault.ErrInjected) {
				t.Fatalf("step %d: non-injected failure: %v", step, opErr)
			}
			rollbacks++
			// SelfCheck already verified inside rollback; re-verify from
			// the outside and pin that the live sets did not move.
			if err := r.Verify(); err != nil {
				t.Fatalf("step %d: verify after rollback: %v", step, err)
			}
			after := [3]int{len(liveCust), len(liveServ), edges()}
			if after != before {
				t.Fatalf("step %d: rollback changed live counts %v -> %v", step, before, after)
			}
		}
	}
	if rollbacks < 20 {
		t.Fatalf("only %d rollbacks exercised; churn too tame", rollbacks)
	}
	st := r.Stats()
	if st.Rollbacks != rollbacks {
		t.Fatalf("stats count %d rollbacks, test observed %d", st.Rollbacks, rollbacks)
	}
	if st.Customers != len(liveCust) || st.Servers != len(liveServ) {
		t.Fatalf("live counts drifted: resolver %d/%d, model %d/%d",
			st.Customers, st.Servers, len(liveCust), len(liveServ))
	}

	var bld graph.CSRBuilder
	bld.Reset(0)
	var oc graph.OverlayCSR
	r.Overlay().BuildCSR(&bld, &oc)
	res, err := SolveSharded(oc.Bipartite(), ShardedOptions{
		Tie: core.TieRandom, Seed: 99, Shards: 2, CheckInvariants: true,
	})
	if err != nil {
		t.Fatalf("oracle solve: %v", err)
	}
	if !res.Stable() {
		t.Fatal("oracle solve unstable on post-rollback network")
	}
}

// TestRepairStallIsGraceful pins the degradation mode: a stall at the
// repair site delays the cascade but the delta completes normally, with
// no rollback.
func TestRepairStallIsGraceful(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	b := graph.MustBipartite(graph.RandomBipartite(30, 8, 3, rng), 30)
	fb := graph.NewCSRBipartiteFromBipartite(b)
	reg := fault.NewRegistry(1)
	r, err := NewResolver(fb, nil, ResolverOptions{Shards: 1, SelfCheck: true, Fault: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	reg.Arm(FaultSiteRepair, fault.Schedule{Kind: fault.KindStall, Every: 1, Delay: time.Millisecond})
	for i := 0; i < 20; i++ {
		c, err := r.AddCustomer([]int32{0, 1})
		if err != nil {
			t.Fatalf("delta %d under stall: %v", i, err)
		}
		if err := r.RemoveCustomer(c); err != nil {
			t.Fatalf("delta %d under stall: %v", i, err)
		}
	}
	if rb := r.Stats().Rollbacks; rb != 0 {
		t.Fatalf("stalls caused %d rollbacks, want 0", rb)
	}
}

// TestResolverFaultSteadyStateAllocs extends the steady-state pin to a
// journaling resolver: with the registry wired in (journal armed, site
// disarmed), warmed delta churn still allocates nothing — the undo log's
// buffers are grow-only.
func TestResolverFaultSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := graph.MustBipartite(graph.RandomBipartite(200, 40, 3, rng), 200)
	fb := graph.NewCSRBipartiteFromBipartite(b)
	reg := fault.NewRegistry(1)
	r, err := NewResolver(fb, nil, ResolverOptions{Tie: core.TieRandom, Seed: 9, Fault: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ports := []int32{0, 7, 21}
	churn := func() {
		c, err := r.AddCustomer(ports)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.AddEdge(c, 33); err != nil {
			t.Fatal(err)
		}
		if err := r.RemoveEdge(c, 7); err != nil {
			t.Fatal(err)
		}
		if err := r.RemoveCustomer(c); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		churn()
	}
	if avg := testing.AllocsPerRun(100, churn); avg != 0 {
		t.Fatalf("journaled steady-state churn allocates %v per cycle", avg)
	}
}
