package assign

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
)

// The differential suite pins the sharded assignment port to the seed
// engine: under first-port tie-breaking both run the same deterministic
// protocol over the same per-phase incidence port numbering, so the phase
// logs, round counts, and final assignments must agree bit for bit on
// every instance. TieRandom draws engine-specific streams, so those runs
// are checked only against the solution-level oracles (hypergame.Verify on
// every subgame, stability, capacity, and load-recount at the end).

// diffBipartite derives a seeded customer/server network from a case
// index, cycling through the families the assignment experiments run on.
func diffBipartite(i int) (*graph.Bipartite, string) {
	rng := rand.New(rand.NewSource(int64(7000 + i)))
	switch i % 7 {
	case 0:
		nl, nr, c := 12+(i/7)%6*6, 4+(i/7)%4*2, 2+i%3
		return graph.MustBipartite(graph.RandomBipartite(nl, nr, c, rng), nl),
			fmt.Sprintf("random nl=%d nr=%d c=%d", nl, nr, c)
	case 1:
		nr := 3 + (i/7)%4
		c := 2 + i%2
		nl := nr * c * 2
		s := nl * c / nr
		return graph.MustBipartite(graph.RandomBipartiteRegular(nl, nr, c, s, rng), nl),
			fmt.Sprintf("regular nl=%d nr=%d c=%d s=%d", nl, nr, c, s)
	case 2:
		a, b := 4+(i/7)%5, 3+(i/7)%3
		return graph.MustBipartite(graph.CompleteBipartite(a, b), a),
			fmt.Sprintf("complete %dx%d", a, b)
	case 3:
		// Skewed demand: power-law customer degrees, CSR-native adjacency
		// order (not neighbor-sorted).
		nl, nr := 20+(i/7)%5*10, 5+(i/7)%5
		csr := graph.CSRPowerLawBipartite(nl, nr, 2.0, 1+nr/2, rng)
		return graph.MustBipartite(csr.ToGraph(), nl),
			fmt.Sprintf("powerlaw nl=%d nr=%d", nl, nr)
	case 4:
		// Star contention: every customer sees one shared hub plus one
		// private server — maximal proposal collisions on the hub.
		nl := 6 + (i/7)%8
		g := graph.New(nl + nl + 1)
		for c := 0; c < nl; c++ {
			g.AddEdge(c, nl)        // shared hub
			g.AddEdge(c, nl+1+c%nl) // private-ish server
		}
		return graph.MustBipartite(g, nl), fmt.Sprintf("hub nl=%d", nl)
	case 5:
		// Chain: customer c sees servers c and c+1 — the propagation
		// workload where reassignment cascades travel.
		nl := 8 + (i/7)%10
		g := graph.New(nl + nl + 1)
		for c := 0; c < nl; c++ {
			g.AddEdge(c, nl+c)
			g.AddEdge(c, nl+c+1)
		}
		return graph.MustBipartite(g, nl), fmt.Sprintf("chain nl=%d", nl)
	default:
		// Degree-1 customers mixed in: they never join a game but load the
		// servers the game plays over.
		nl, nr := 15+(i/7)%6*5, 4+(i/7)%4
		g := graph.New(nl + nr)
		for c := 0; c < nl; c++ {
			if c%3 == 0 {
				g.AddEdge(c, nl+c%nr)
				continue
			}
			a := c % nr
			b := (c*7 + 1) % nr
			if a == b {
				b = (b + 1) % nr
			}
			g.AddEdge(c, nl+a)
			g.AddEdge(c, nl+b)
		}
		return graph.MustBipartite(g, nl), fmt.Sprintf("mixed nl=%d nr=%d", nl, nr)
	}
}

func TestDifferentialAssignEngines(t *testing.T) {
	const cases = 105
	for i := 0; i < cases; i++ {
		b, name := diffBipartite(i)
		seed := int64(400 + i)
		tag := fmt.Sprintf("case %d (%s)", i, name)

		seedRes, err := Solve(b, Options{Seed: seed, CheckInvariants: true})
		if err != nil {
			t.Fatalf("%s: seed engine: %v", tag, err)
		}
		fb := graph.NewCSRBipartiteFromBipartite(b)
		flatRes, err := SolveSharded(fb, ShardedOptions{
			Tie: core.TieFirstPort, Seed: seed, Shards: 1 + i%5,
			CheckInvariants: true, VerifyGames: true,
		})
		if err != nil {
			t.Fatalf("%s: sharded engine: %v", tag, err)
		}

		if flatRes.Phases != seedRes.Phases {
			t.Fatalf("%s: phases %d (sharded) != %d (seed)", tag, flatRes.Phases, seedRes.Phases)
		}
		if flatRes.Rounds != seedRes.Rounds {
			t.Fatalf("%s: rounds %d (sharded) != %d (seed)", tag, flatRes.Rounds, seedRes.Rounds)
		}
		if !slices.Equal(flatRes.PhaseLog, seedRes.PhaseLog) {
			t.Fatalf("%s: phase logs diverge:\nsharded: %+v\nseed:    %+v", tag, flatRes.PhaseLog, seedRes.PhaseLog)
		}
		for c := 0; c < b.NumLeft; c++ {
			if b.NumLeft+int(flatRes.ServerOf[c]) != seedRes.Assignment.ServerOf[c] {
				t.Fatalf("%s: customer %d assigned to %d (sharded) != %d (seed)",
					tag, c, b.NumLeft+int(flatRes.ServerOf[c]), seedRes.Assignment.ServerOf[c])
			}
		}
		for s := 0; s < b.NumServers(); s++ {
			if int(flatRes.Load[s]) != seedRes.Assignment.Load(b.NumLeft+s) {
				t.Fatalf("%s: load of server %d diverges", tag, s)
			}
		}
		if !flatRes.Stable() {
			t.Fatalf("%s: sharded result not stable", tag)
		}
	}
}

// TestDifferentialAssignTieRandom runs the sharded port under TieRandom.
// Its proposal, accept, and game streams legitimately differ from the
// seed engine's, so the runs are judged by the oracles alone: every phase
// subgame passes hypergame.Verify, every phase satisfies the Lemma
// 5.3/5.4 analogues and the potential identity, and the final assignment
// is complete, stable, and load-consistent.
func TestDifferentialAssignTieRandom(t *testing.T) {
	for i := 0; i < 40; i++ {
		b, name := diffBipartite(i)
		tag := fmt.Sprintf("case %d (%s)", i, name)
		fb := graph.NewCSRBipartiteFromBipartite(b)
		flatRes, err := SolveSharded(fb, ShardedOptions{
			Tie: core.TieRandom, Seed: int64(1300 + i), Shards: 1 + i%4,
			CheckInvariants: true, VerifyGames: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if !flatRes.Stable() {
			t.Fatalf("%s: not stable", tag)
		}
		a := flatRes.Assignment()
		if !a.Stable() {
			t.Fatalf("%s: materialized assignment not stable", tag)
		}
		if err := a.CheckLoads(); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
	}
}

// TestAssignShardCountInvariance pins schedule independence: the same
// network solved with 1..8 shards produces the same run.
func TestAssignShardCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	b := graph.MustBipartite(graph.RandomBipartite(40, 10, 3, rng), 40)
	fb := graph.NewCSRBipartiteFromBipartite(b)
	base, err := SolveSharded(fb, ShardedOptions{Tie: core.TieFirstPort, Seed: 31, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for shards := 2; shards <= 8; shards++ {
		res, err := SolveSharded(fb, ShardedOptions{Tie: core.TieFirstPort, Seed: 31, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != base.Rounds || !slices.Equal(res.ServerOf, base.ServerOf) ||
			!slices.Equal(res.PhaseLog, base.PhaseLog) {
			t.Fatalf("shards=%d diverges from shards=1", shards)
		}
	}
}

// TestAssignCentralStepInvariance pins the parallel central passes: the
// proposal/accept kernels, game-assembly marks, result scatter, and the
// unassigned-list compaction run on Session.ParallelFor, so the whole
// run must be bit-identical at shard counts 1, 2, and 8 under both tie
// rules. TieRandom is the sharper check: the per-customer and
// per-server draw streams of the owner-computes kernels must not depend
// on the split.
func TestAssignCentralStepInvariance(t *testing.T) {
	for i := 0; i < 12; i++ {
		b, name := diffBipartite(3 * i)
		fb := graph.NewCSRBipartiteFromBipartite(b)
		for _, tie := range []core.TieBreak{core.TieFirstPort, core.TieRandom} {
			base, err := SolveSharded(fb, ShardedOptions{
				Tie: tie, Seed: int64(700 + i), Shards: 1, CheckInvariants: true,
			})
			if err != nil {
				t.Fatalf("case %d (%s) tie=%v shards=1: %v", i, name, tie, err)
			}
			for _, shards := range []int{2, 8} {
				res, err := SolveSharded(fb, ShardedOptions{
					Tie: tie, Seed: int64(700 + i), Shards: shards, CheckInvariants: true,
				})
				if err != nil {
					t.Fatalf("case %d (%s) tie=%v shards=%d: %v", i, name, tie, shards, err)
				}
				if res.Rounds != base.Rounds || res.Phases != base.Phases ||
					!slices.Equal(res.PhaseLog, base.PhaseLog) ||
					!slices.Equal(res.ServerOf, base.ServerOf) || !slices.Equal(res.Load, base.Load) {
					t.Fatalf("case %d (%s) tie=%v: shards=%d diverges from shards=1", i, name, tie, shards)
				}
			}
		}
	}
}

// TestSolveShardedCSRNative runs the sharded port on a network built
// directly in CSR form, cross-checked against the seed engine on the
// materialized graph (which preserves the port order, so the runs must
// agree exactly).
func TestSolveShardedCSRNative(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	csr := graph.CSRPowerLawBipartite(300, 40, 2.2, 12, rng)
	fb, err := graph.NewCSRBipartite(csr, 300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveSharded(fb, ShardedOptions{Tie: core.TieFirstPort, Seed: 5, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable() {
		t.Fatal("not stable")
	}
	b := fb.ToBipartite()
	seedRes, err := Solve(b, Options{Seed: 5})
	if err != nil {
		t.Fatalf("seed engine: %v", err)
	}
	if seedRes.Rounds != res.Rounds || seedRes.Phases != res.Phases {
		t.Fatalf("runs diverge: rounds %d/%d phases %d/%d",
			res.Rounds, seedRes.Rounds, res.Phases, seedRes.Phases)
	}
	for c := 0; c < fb.NumLeft; c++ {
		if fb.NumLeft+int(res.ServerOf[c]) != seedRes.Assignment.ServerOf[c] {
			t.Fatalf("customer %d assignments diverge", c)
		}
	}
}

// TestSolveShardedErrors mirrors Solve's input validation.
func TestSolveShardedErrors(t *testing.T) {
	g := graph.New(3) // customer 0 isolated, customer 1 sees server 2
	g.AddEdge(1, 2)
	fb := graph.NewCSRBipartiteFromBipartite(graph.MustBipartite(g, 2))
	if _, err := SolveSharded(fb, ShardedOptions{}); err == nil {
		t.Fatal("no error for an isolated customer")
	}
	rng := rand.New(rand.NewSource(9))
	b := graph.MustBipartite(graph.RandomBipartite(20, 4, 3, rng), 20)
	if _, err := SolveSharded(graph.NewCSRBipartiteFromBipartite(b), ShardedOptions{MaxPhases: 1}); err == nil {
		t.Fatal("no error when the phase budget is exceeded")
	}
}
