package assign

import (
	"fmt"
	"slices"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
	"tokendrop/internal/hypergame"
	"tokendrop/internal/local"
	"tokendrop/internal/reuse"
)

// This file ports the Theorem 7.3 stable-assignment algorithm to the
// sharded flat runtime, the last paper layer off the fast path: the
// seed-engine Solve above builds per-phase object hypergraphs and plays
// them goroutine-per-node, while SolveSharded keeps the whole phase loop in
// flat arrays over a graph.CSRBipartite and plays each phase's hypergraph
// token dropping subgame with hypergame.SolveProposalSharded — the
// struct-of-arrays port of the Theorem 7.1 relay protocol.
//
// Assignment state is two flat arrays: serverOf[c] (the assigned server
// index of customer c, -1 while unassigned) and load[s]. Per phase:
//
//   - proposals/accepts are computed directly from the shared load array
//     (the same simulation shortcut Solve uses: the load broadcast and the
//     acceptance notification are charged as 2 communication rounds but
//     evaluated centrally, since both sides apply one deterministic rule to
//     the same broadcast values). The central passes themselves run as
//     flat kernels on the engine session's parked workers
//     (local.Session.ParallelFor) in owner-computes form, so they shard
//     exactly like the subgame rounds and the results stay independent of
//     the worker count;
//   - the phase's virtual token hypergraph — assigned customers of badness
//     exactly 1 as hyperedges over the servers, levels = loads, tokens at
//     acceptors — is assembled as a flat hypergame.FlatInstance with
//     hyperedges in customer-id order and endpoints in adjacency order,
//     exactly the insertion order Solve hands hypergame.SolveProposal, so
//     the incidence network's port numbering matches the object solver's;
//   - traversed hyperedges reassign their customers, accepted customers
//     are assigned.
//
// With identical port numbering, levels, and tokens, the sharded subgame
// run is bit-identical to the object-engine run under first-port
// tie-breaking (the guarantee of the hypergame differential tests), and
// therefore so are the phase log, the round counts, and the final
// assignment — which the differential suite in this package asserts on
// ~100 bipartite instances.

// ShardedOptions configure a SolveSharded run.
type ShardedOptions struct {
	// Tie selects the tie-breaking rule. TieFirstPort runs are
	// bit-identical to Solve with RandomTies false; TieRandom draws
	// engine-specific streams (per-vertex splitmix64 instead of the seed
	// engine's shared math/rand), so those runs are independent samples of
	// the protocol.
	Tie core.TieBreak
	// Seed drives all randomized tie-breaking.
	Seed int64
	// Shards is the worker count of the engine session that plays every
	// phase's subgame; 0 means runtime.GOMAXPROCS(0). The result does
	// not depend on it.
	Shards int
	// MaxPhases guards against non-termination; 0 means 4·C·S + 8
	// (Lemma 7.2 gives C·S + 1), as in Options.
	MaxPhases int
	// CheckInvariants replays the Section 7.2 analogues of Lemmas 5.3–5.4
	// (loads grow by exactly one at token destinations, badness at most 1
	// after every phase), the subgame potential identity, and a load
	// recount. Linear per phase; tests and experiments keep it on.
	CheckInvariants bool
	// VerifyGames additionally materializes every phase's subgame in
	// object form and runs hypergame.Verify on its solution. Expensive at
	// scale — meant for tests, not million-customer runs.
	VerifyGames bool

	// SnapshotEvery asks for a crash-consistent snapshot after every k-th
	// completed phase (k > 0). Captures happen at the phase boundary, where
	// the engine session is quiescent and the assignment arrays are the
	// whole mid-solve state.
	SnapshotEvery int
	// SnapshotAt asks for one snapshot after the given phase completes, in
	// addition to any SnapshotEvery schedule.
	SnapshotAt int
	// OnSnapshot receives each capture. A non-nil error aborts the solve
	// with that error. The *Snapshot is only valid during the call when
	// SnapshotInto is set (the buffer is rewritten by the next capture).
	OnSnapshot func(*Snapshot) error
	// SnapshotInto, when non-nil, is the caller-owned buffer every capture
	// is written into (slices reused grow-only), keeping the snapshot pass
	// allocation-free in steady state. When nil each capture allocates a
	// fresh Snapshot.
	SnapshotInto *Snapshot
	// ResumeFrom restores a snapshot's state and continues the solve from
	// the phase after its cursor. The snapshot must come from a run on the
	// same network with the same Tie and Seed; shape and consistency are
	// validated, semantic mismatches surface as divergent results.
	ResumeFrom *Snapshot

	// Session, when non-nil, is the engine session every phase runs on;
	// the caller keeps ownership (it is not closed) and Shards is
	// ignored. Long-running callers — the incremental Resolver, serving
	// daemons — hold one warmed session across many solves so repeat
	// solves stay allocation-lean.
	Session *local.Session
	// Workspace, when non-nil, is the hypergame workspace the per-phase
	// subgames are assembled in; the caller keeps ownership. Single-
	// caller, like the session.
	Workspace *hypergame.Workspace
	// WarmStart seeds the solve from a prior assignment on the same
	// network instead of from scratch, so a perturbed instance re-solves
	// at the cost of its dirty region: the phase loop's unassigned scans
	// are seeded from the listed dirty customers plus the closure their
	// release destabilizes, and the per-phase subgames stay proportional
	// to the badness the perturbation created. Incompatible with
	// ResumeFrom.
	WarmStart *WarmStart

	// Scratch, when non-nil, owns every per-solve allocation — the
	// assignment arrays, the per-phase scratch, the subgame result, and
	// the returned ShardedResult itself. Together with a caller-owned
	// Session and Workspace it makes warmed repeat solves completely
	// allocation-free (the arena's scoreboard contract). Single-caller,
	// like the session; the returned result and its slices are only
	// valid until the next solve with the same scratch.
	Scratch *SolveScratch
}

// WarmStart is a prior assignment SolveSharded can continue from. The
// prior must be stable (the usual case: it is a previous solve's
// output); the solver releases the dirty customers plus the closure
// their release destabilizes, so the clean region re-enters the phase
// loop at badness ≤ 1 — the inter-phase invariant — without the caller
// computing anything beyond the directly-perturbed set. The arrays are
// copied, never aliased.
type WarmStart struct {
	// ServerOf holds the prior assignment as a server index per customer
	// (-1 for unassigned; every unassigned customer must be listed in
	// Dirty).
	ServerOf []int32
	// Load holds the prior per-server load, consistent with ServerOf.
	Load []int32
	// Dirty lists the perturbed customers in ascending order — the seed
	// of the re-solve. Their prior assignments (if any) are released
	// before the first phase, and the phase loop solves only them.
	Dirty []int32
}

// applyWarmStart seeds the scratch's serverOf/load/unassigned from ws,
// validates its shape, and releases the dirty closure: dropping a dirty
// customer's assignment lowers its server's load, which can push an
// untouched neighbor's badness to 2 (its cheapest alternative got
// cheaper), so the release cascades — any assigned customer whose
// badness reaches 2 is released too, each release strictly shrinking the
// assigned set until the remaining clean region is back at badness ≤ 1
// (the inter-phase invariant the phase loop needs). Returns the
// ascending unassigned list: the dirty customers plus the closure.
func (sc *SolveScratch) applyWarmStart(ws *WarmStart) ([]int32, error) {
	fb := sc.fb
	serverOf, load, unassigned := sc.serverOf, sc.load, sc.unassigned
	nl, ns := fb.NumLeft, fb.NumServers()
	if len(ws.ServerOf) != nl || len(ws.Load) != ns {
		return nil, fmt.Errorf("warm start shaped %d/%d for a %d/%d network",
			len(ws.ServerOf), len(ws.Load), nl, ns)
	}
	copy(serverOf, ws.ServerOf)
	copy(load, ws.Load)
	unassigned = unassigned[:0]
	prev := int32(-1)
	for _, c := range ws.Dirty {
		if c <= prev || int(c) >= nl {
			return nil, fmt.Errorf("warm start dirty list not ascending in [0,%d): %d after %d", nl, c, prev)
		}
		prev = c
		if so := serverOf[c]; so >= 0 {
			if int(so) >= ns {
				return nil, fmt.Errorf("warm start assigns customer %d to server %d (ns=%d)", c, so, ns)
			}
			load[so]--
			serverOf[c] = -1
		}
		unassigned = append(unassigned, c)
	}
	di := 0
	var total int64
	for c := 0; c < nl; c++ {
		if di < len(unassigned) && unassigned[di] == int32(c) {
			di++
			continue
		}
		if serverOf[c] < 0 {
			return nil, fmt.Errorf("warm start leaves customer %d unassigned but not dirty", c)
		}
		if int(serverOf[c]) >= ns {
			return nil, fmt.Errorf("warm start assigns customer %d to server %d (ns=%d)", c, serverOf[c], ns)
		}
		total++
	}
	var loadSum int64
	for _, l := range load {
		if l < 0 {
			return nil, fmt.Errorf("warm start load went negative")
		}
		loadSum += int64(l)
	}
	if loadSum != total {
		return nil, fmt.Errorf("warm start loads sum to %d for %d assigned customers", loadSum, total)
	}

	// The closure cascade. Work is proportional to the perturbed
	// neighborhood: only customers incident to a load-dropped server are
	// ever re-examined (a release at server d can only raise badness at
	// customers that can see d).
	csr := fb.C
	dropped := sc.dropped[:0]
	for _, c := range ws.Dirty {
		if so := ws.ServerOf[c]; so >= 0 {
			dropped = append(dropped, so)
		}
	}
	for len(dropped) > 0 {
		d := dropped[len(dropped)-1]
		dropped = dropped[:len(dropped)-1]
		slo, shi := csr.ArcRange(nl + int(d))
		for i := slo; i < shi; i++ {
			c := csr.Col[i]
			so := serverOf[c]
			if so < 0 {
				continue
			}
			alo, ahi := csr.ArcRange(int(c))
			min := int32(-1)
			for j := alo; j < ahi; j++ {
				if l := load[int(csr.Col[j])-nl]; min < 0 || l < min {
					min = l
				}
			}
			if load[so]-min < 2 {
				continue
			}
			load[so]--
			serverOf[c] = -1
			unassigned = append(unassigned, c)
			dropped = append(dropped, so)
		}
	}
	sc.dropped = dropped
	slices.Sort(unassigned)
	return unassigned, nil
}

// ShardedResult is the outcome of SolveSharded: the assignment in flat
// form plus the same accounting Result carries.
type ShardedResult struct {
	// ServerOf holds the assigned server of every customer as an index in
	// [0, NumServers); -1 never occurs in a completed run.
	ServerOf []int32
	// Load holds the final number of customers per server index.
	Load   []int32
	Phases int
	// Rounds counts communication rounds on the adaptive schedule: two per
	// phase (load broadcast, accept notification) plus the game's rounds
	// on the customer/server incidence network.
	Rounds   int
	PhaseLog []PhaseRecord
	// Messages counts the messages the distributed reading of the solve
	// delivers: per phase, one load announcement per customer-side arc
	// (the broadcast round), one proposal per unassigned customer, one
	// acceptance notification per accept, plus the subgame's exact
	// message count from the engine. A ResumeFrom run counts messages
	// from the resume point only (snapshots predate the counter).
	Messages int64

	fb *graph.CSRBipartite
}

// Bipartite returns the flat network the result was computed on.
func (r *ShardedResult) Bipartite() *graph.CSRBipartite { return r.fb }

// MaxBadness returns the maximum badness over assigned customers.
func (r *ShardedResult) MaxBadness() int {
	return int(flatMaxBadness(r.fb, r.ServerOf, r.Load))
}

// Stable reports the stable assignment condition of Section 7: every
// customer is assigned and none can lower its server's load by switching.
func (r *ShardedResult) Stable() bool {
	for _, s := range r.ServerOf {
		if s < 0 {
			return false
		}
	}
	return r.MaxBadness() <= 1
}

// SemimatchingCost returns Σ_s f(load(s)) with f(x) = x(x+1)/2, the
// objective of Section 1.3.
func (r *ShardedResult) SemimatchingCost() int64 {
	var cost int64
	for _, l := range r.Load {
		cost += int64(l) * int64(l+1) / 2
	}
	return cost
}

// Assignment materializes the pointer-based assignment (same vertex
// identifiers), for cross-checks against the seed engine and the
// semi-matching tooling. O(n + m) object construction — test-sized.
func (r *ShardedResult) Assignment() *graph.Assignment {
	b := r.fb.ToBipartite()
	a := graph.NewAssignment(b)
	for c, s := range r.ServerOf {
		if s >= 0 {
			a.Assign(c, r.fb.NumLeft+int(s))
		}
	}
	return a
}

// flatMaxBadness returns the maximum badness over assigned customers
// (load of the assigned server minus the minimum adjacent load).
func flatMaxBadness(fb *graph.CSRBipartite, serverOf, load []int32) int32 {
	csr := fb.C
	nl := fb.NumLeft
	max := int32(0)
	for c := 0; c < nl; c++ {
		so := serverOf[c]
		if so < 0 {
			continue
		}
		lo, hi := csr.ArcRange(c)
		min := int32(-1)
		for i := lo; i < hi; i++ {
			if l := load[int(csr.Col[i])-nl]; min < 0 || l < min {
				min = l
			}
		}
		if b := load[so] - min; b > max {
			max = b
		}
	}
	return max
}

// SolveScratch owns the per-solve storage of SolveSharded: the
// assignment arrays, the proposal/accept index, the per-phase subgame
// scratch, the subgame result, and the ShardedResult handed back. All of
// it is reused grow-only across solves, and the six central-pass kernels
// are built once per scratch (capturing only the scratch pointer), so a
// warmed solve with a caller-owned Session and Workspace performs no
// heap allocations at all. Single-caller, like the session.
type SolveScratch struct {
	// Per-solve bindings the kernels read through the scratch pointer.
	fb  *graph.CSRBipartite
	tie core.TieBreak

	serverOf   []int32
	load       []int32
	unassigned []int32
	custRng    []uint64 // engine-specific TieRandom streams
	servRng    []uint64
	servPtr    []int32
	servCust   []int32
	servCursor []int32
	propServer []int32

	// Reused per-phase scratch.
	acceptCust   []int32
	token        []bool
	gameLevel    []int32
	eptr         []int32
	ends         []int32
	heads        []int32
	gameCustomer []int32
	include      []byte
	loadsBefore  []int32
	partAccepted []int32
	partKept     []int32
	partMaxBad   []int32
	dropped      []int32
	sol          hypergame.FlatResult
	res          ShardedResult

	propose, accept, mark, scatter, compact, badness func(sh, lo, hi int)
}

// ensureKernels builds the central per-phase kernels on first use. They
// run as flat kernels on the engine session's parked workers
// (Session.ParallelFor) and read all state through the scratch pointer,
// so one set of closures serves every solve the scratch sees.
func (sc *SolveScratch) ensureKernels() {
	if sc.propose != nil {
		return
	}

	// Step 1: every unassigned customer proposes to the adjacent server
	// with the smallest load (ties to the smaller id, or seeded-random) —
	// independent per customer, sharded over the unassigned list.
	sc.propose = func(sh, lo, hi int) {
		csr, nl, load := sc.fb.C, sc.fb.NumLeft, sc.load
		for idx := lo; idx < hi; idx++ {
			c := sc.unassigned[idx]
			alo, ahi := csr.ArcRange(int(c))
			best := int32(-1)
			bestLoad := int32(0)
			for i := alo; i < ahi; i++ {
				s := csr.Col[i] - int32(nl)
				if l := load[s]; best < 0 || l < bestLoad || (l == bestLoad && s < best) {
					best, bestLoad = s, l
				}
			}
			if sc.tie == core.TieRandom {
				state := sc.custRng[c]
				count := 0
				for i := alo; i < ahi; i++ {
					s := csr.Col[i] - int32(nl)
					if load[s] != bestLoad {
						continue
					}
					count++
					var pick int
					state, pick = core.SplitMixIntn(state, count)
					if pick == 0 {
						best = s
					}
				}
				sc.custRng[c] = state
			}
			sc.propServer[c] = best
		}
	}

	// Step 2, owner-computes per server: accept one proposing customer —
	// the smallest id under TieFirstPort (the ascending incident scan
	// finds it first), a uniform draw in ascending customer order under
	// TieRandom. Stale propServer entries from earlier phases are
	// filtered by the serverOf test (an unassigned customer rewrote its
	// entry this phase).
	sc.accept = func(sh, lo, hi int) {
		serverOf, propServer := sc.serverOf, sc.propServer
		accepted := int32(0)
		for s := lo; s < hi; s++ {
			best := int32(-1)
			if sc.tie == core.TieRandom {
				state := sc.servRng[s]
				count := 0
				for j := sc.servPtr[s]; j < sc.servPtr[s+1]; j++ {
					c := sc.servCust[j]
					if serverOf[c] >= 0 || propServer[c] != int32(s) {
						continue
					}
					count++
					var pick int
					state, pick = core.SplitMixIntn(state, count)
					if pick == 0 {
						best = c
					}
				}
				sc.servRng[s] = state
			} else {
				for j := sc.servPtr[s]; j < sc.servPtr[s+1]; j++ {
					c := sc.servCust[j]
					if serverOf[c] < 0 && propServer[c] == int32(s) {
						best = c
						break
					}
				}
			}
			sc.acceptCust[s] = best
			sc.token[s] = best >= 0
			if best >= 0 {
				accepted++
			}
		}
		sc.partAccepted[sh] = accepted
	}

	// Step 3's filter over customers: the min-load adjacency scan is the
	// expensive part and runs on the kernels; the order-dependent
	// hyperedge insertion that follows is a sequential scan of the marks
	// (customer-id order is what matches the object network's ports).
	sc.mark = func(sh, lo, hi int) {
		csr, nl, load := sc.fb.C, sc.fb.NumLeft, sc.load
		for c := lo; c < hi; c++ {
			so := sc.serverOf[c]
			if so < 0 {
				sc.include[c] = 0
				continue
			}
			alo, ahi := csr.ArcRange(c)
			if ahi-alo < 2 {
				sc.include[c] = 0
				continue
			}
			min := int32(-1)
			for i := alo; i < ahi; i++ {
				if l := load[int(csr.Col[i])-nl]; min < 0 || l < min {
					min = l
				}
			}
			if load[so]-min == 1 {
				sc.include[c] = 1
			} else {
				sc.include[c] = 0
			}
		}
	}

	// Step 6's scatter: each accepting server assigns its customer.
	// Distinct servers accept distinct customers, so the writes never
	// collide.
	sc.scatter = func(sh, lo, hi int) {
		for s := lo; s < hi; s++ {
			if c := sc.acceptCust[s]; c >= 0 {
				sc.serverOf[c] = int32(s)
				sc.load[s]++
			}
		}
	}

	// The unassigned list's compaction: each shard compacts the
	// survivors of its own slice in place (the slices are disjoint and
	// writes stay at or below the read cursor); the coordinator then
	// concatenates the per-shard prefixes, preserving ascending order.
	sc.compact = func(sh, lo, hi int) {
		w := lo
		for i := lo; i < hi; i++ {
			if c := sc.unassigned[i]; sc.serverOf[c] < 0 {
				sc.unassigned[w] = c
				w++
			}
		}
		sc.partKept[sh] = int32(w - lo)
	}

	// The per-phase max-badness recount of the phase log, as a
	// max-reduction over customers.
	sc.badness = func(sh, lo, hi int) {
		csr, nl, load := sc.fb.C, sc.fb.NumLeft, sc.load
		max := int32(0)
		for c := lo; c < hi; c++ {
			so := sc.serverOf[c]
			if so < 0 {
				continue
			}
			alo, ahi := csr.ArcRange(c)
			min := int32(-1)
			for i := alo; i < ahi; i++ {
				if l := load[int(csr.Col[i])-nl]; min < 0 || l < min {
					min = l
				}
			}
			if b := load[so] - min; b > max {
				max = b
			}
		}
		sc.partMaxBad[sh] = max
	}
}

// SolveSharded runs the Theorem 7.3 algorithm on fb using the sharded flat
// runtime for every phase's hypergraph token dropping subgame. Under
// TieFirstPort the run is bit-identical to Solve on the same network (same
// phase log, rounds, and final assignment).
func SolveSharded(fb *graph.CSRBipartite, opt ShardedOptions) (*ShardedResult, error) {
	csr := fb.C
	nl, ns := fb.NumLeft, fb.NumServers()
	for c := 0; c < nl; c++ {
		if csr.Degree(c) == 0 {
			return nil, fmt.Errorf("assign: customer %d has no adjacent server", c)
		}
	}
	cs := fb.MaxCustomerDegree() * fb.MaxServerDegree()
	maxPhases := opt.MaxPhases
	if maxPhases == 0 {
		maxPhases = 4*cs + 8
	}

	sc := opt.Scratch
	if sc == nil {
		sc = new(SolveScratch)
	}
	sc.fb = fb
	sc.tie = opt.Tie
	sc.ensureKernels()

	sc.serverOf = reuse.Grown(sc.serverOf, nl)
	sc.unassigned = reuse.Grown(sc.unassigned, nl)
	serverOf := sc.serverOf
	for c := range serverOf {
		serverOf[c] = -1
		sc.unassigned[c] = int32(c)
	}
	sc.load = reuse.Grown(sc.load, ns)
	clear(sc.load)
	load := sc.load

	res := &sc.res
	res.ServerOf = serverOf
	res.Load = load
	res.Phases = 0
	res.Rounds = 0
	res.Messages = 0
	res.PhaseLog = res.PhaseLog[:0]
	res.fb = fb

	var custRng, servRng []uint64
	if opt.Tie == core.TieRandom {
		sc.custRng = reuse.Grown(sc.custRng, nl)
		custRng = sc.custRng
		for c := range custRng {
			custRng[c] = core.SplitMix64(uint64(opt.Seed) ^ uint64(c)*0x9e3779b97f4a7c15)
		}
		sc.servRng = reuse.Grown(sc.servRng, ns)
		servRng = sc.servRng
		for s := range servRng {
			servRng[s] = core.SplitMix64(uint64(opt.Seed) ^ uint64(nl+s)*0x9e3779b97f4a7c15)
		}
	}

	// Per-server incident customers in ascending customer order. The
	// central accept pass runs owner-computes on the kernel executor —
	// each server derives its own accepted customer — and this index
	// keeps that bit-identical to the unassigned-list loop it replaces: a
	// server's accept decision (and, under TieRandom, its per-server draw
	// stream) depends only on the subsequence of its proposing customers
	// in ascending customer order, which is exactly the order the
	// ascending unassigned list presented them in. The input CSR's
	// server-side port order may be arbitrary (CSR-native inputs), so
	// the index is built from the customer side.
	sc.servPtr = reuse.Grown(sc.servPtr, ns+1)
	servPtr := sc.servPtr
	clear(servPtr)
	custArcs := int(csr.Row[nl]) // arcs of the customer side
	for i := 0; i < custArcs; i++ {
		servPtr[int(csr.Col[i])-nl+1]++
	}
	for s := 0; s < ns; s++ {
		servPtr[s+1] += servPtr[s]
	}
	sc.servCust = reuse.Grown(sc.servCust, custArcs)
	sc.servCursor = reuse.Grown(sc.servCursor, ns)
	servCust, servCursor := sc.servCust, sc.servCursor
	copy(servCursor, servPtr[:ns])
	for c := 0; c < nl; c++ {
		lo, hi := csr.ArcRange(c)
		for i := lo; i < hi; i++ {
			s := int(csr.Col[i]) - nl
			servCust[servCursor[s]] = int32(c)
			servCursor[s]++
		}
	}
	sc.propServer = reuse.Grown(sc.propServer, nl) // customer -> proposed-to server, this phase
	for c := range sc.propServer {
		sc.propServer[c] = -1
	}

	// Reused per-phase scratch.
	sc.acceptCust = reuse.Grown(sc.acceptCust, ns)
	sc.token = reuse.Grown(sc.token, ns)
	sc.gameLevel = reuse.Grown(sc.gameLevel, ns)
	sc.include = reuse.Grown(sc.include, nl) // game-assembly marks, indexed by customer
	if opt.CheckInvariants {
		sc.loadsBefore = reuse.Grown(sc.loadsBefore, ns)
	}

	// The reusable execution layer: one engine session (persistent worker
	// pool and message buffers) plays every phase's hypergame, and one
	// workspace rebuilds the incidence network and the flat program state
	// in place per phase, so the steady-state phase loop performs no
	// engine or program allocations. Callers with many solves to run
	// (warm-started re-solves, serving daemons) pass their own session
	// and workspace through the options and keep them across calls.
	sess := opt.Session
	if sess == nil {
		sess = local.NewSession(opt.Shards)
		defer sess.Close()
	}
	gws := opt.Workspace
	if gws == nil {
		gws = hypergame.NewWorkspace()
	}

	// The central per-phase passes run as the kernels of ensureKernels on
	// the session's parked workers (Session.ParallelFor); their
	// per-shard reductions land here.
	shards := sess.Shards()
	sc.partAccepted = reuse.Grown(sc.partAccepted, shards)
	sc.partKept = reuse.Grown(sc.partKept, shards)
	sc.partMaxBad = reuse.Grown(sc.partMaxBad, shards)

	startPhase := 1
	if ws := opt.WarmStart; ws != nil {
		if opt.ResumeFrom != nil {
			return nil, fmt.Errorf("assign: WarmStart and ResumeFrom are mutually exclusive")
		}
		ua, err := sc.applyWarmStart(ws)
		if err != nil {
			return nil, fmt.Errorf("assign: %w", err)
		}
		sc.unassigned = ua
		if opt.CheckInvariants {
			if err := recountWarmLoads(fb, serverOf, load); err != nil {
				return nil, fmt.Errorf("assign: warm start: %w", err)
			}
			if mb := flatMaxBadness(fb, serverOf, load); mb > 1 {
				return nil, fmt.Errorf("assign: warm start clean region has badness %d", mb)
			}
		}
	}
	if rs := opt.ResumeFrom; rs != nil {
		ua, err := restoreAssignSnapshot(rs, nl, ns, opt.Tie, serverOf, load, sc.unassigned, custRng, servRng)
		if err != nil {
			return nil, fmt.Errorf("assign: %w", err)
		}
		sc.unassigned = ua
		res.Rounds = rs.Rounds
		res.PhaseLog = append(res.PhaseLog, rs.PhaseLog...)
		res.Phases = rs.Phase
		startPhase = rs.Phase + 1
	}

	for phase := startPhase; len(sc.unassigned) > 0; phase++ {
		if phase > maxPhases {
			return nil, fmt.Errorf("assign: phase %d exceeds the Lemma 7.2 budget (C·S=%d)", phase, cs)
		}
		rec := PhaseRecord{Phase: phase, Proposals: len(sc.unassigned)}

		// Steps 1 and 2 — the proposal and accept passes (see
		// ensureKernels). 2 communication rounds; in the distributed
		// reading the broadcast costs one load announcement per
		// customer-side arc, then one proposal and one acceptance
		// notification per participating customer.
		sess.ParallelFor(len(sc.unassigned), sc.propose)
		sess.ParallelFor(ns, sc.accept)
		for _, a := range sc.partAccepted {
			rec.Accepted += int(a)
		}
		res.Rounds += 2
		res.Messages += int64(custArcs) + int64(rec.Proposals) + int64(rec.Accepted)

		// Step 3 — the virtual token hypergraph: server levels = loads,
		// hyperedges = the assigned customers of badness exactly 1 (heads =
		// their servers), tokens at acceptors. The badness filter runs on
		// the kernels (sc.mark); the insertion itself stays a
		// sequential scan of the marks, because customer-id insertion
		// order with adjacency-order endpoints is what reproduces the
		// object network's port numbering (see the file comment).
		copy(sc.gameLevel, load)
		sess.ParallelFor(nl, sc.mark)
		sc.eptr = append(sc.eptr[:0], 0)
		sc.ends = sc.ends[:0]
		sc.heads = sc.heads[:0]
		sc.gameCustomer = sc.gameCustomer[:0]
		for c := 0; c < nl; c++ {
			if sc.include[c] == 0 {
				continue
			}
			lo, hi := csr.ArcRange(c)
			for i := lo; i < hi; i++ {
				sc.ends = append(sc.ends, csr.Col[i]-int32(nl))
			}
			sc.eptr = append(sc.eptr, int32(len(sc.ends)))
			sc.heads = append(sc.heads, serverOf[c])
			sc.gameCustomer = append(sc.gameCustomer, int32(c))
		}
		fi, err := gws.NewFlatInstance(sc.gameLevel, sc.token, sc.eptr, sc.ends, sc.heads)
		if err != nil {
			return nil, fmt.Errorf("assign: phase %d produced an invalid game: %w", phase, err)
		}
		rec.GameEdges = len(sc.heads)

		// Step 4 — play the game on the sharded engine.
		if err := hypergame.SolveProposalShardedInto(fi, hypergame.ShardedSolveOptions{
			RandomTies: opt.Tie == core.TieRandom,
			Seed:       opt.Seed + int64(phase)*1_000_003,
			MaxRounds:  1 << 20,
			Session:    sess,
			Workspace:  gws,
		}, &sc.sol); err != nil {
			return nil, fmt.Errorf("assign: phase %d game failed: %w", phase, err)
		}
		sol := &sc.sol
		if opt.VerifyGames {
			if err := hypergame.Verify(sol.Solution(fi.Instance())); err != nil {
				return nil, fmt.Errorf("assign: phase %d game unverified: %w", phase, err)
			}
		}
		if opt.CheckInvariants {
			var finalPot int64
			for s, occ := range sol.Final {
				if occ {
					finalPot += int64(fi.Level(s))
				}
			}
			if got := fi.InitialPotential() - int64(len(sol.Moves)); got != finalPot {
				return nil, fmt.Errorf("assign: phase %d potential identity broken: %d != %d", phase, got, finalPot)
			}
			copy(sc.loadsBefore, load)
		}
		rec.GameRounds = sol.Stats.Rounds
		res.Rounds += sol.Stats.Rounds
		res.Messages += sol.Stats.Messages

		// Step 5 — apply the moves: a token passed from u to v through
		// customer e moves e's head from u to v (reassignment).
		for _, mv := range sol.Moves {
			c := sc.gameCustomer[mv.Edge]
			load[serverOf[c]]--
			serverOf[c] = int32(mv.To)
			load[mv.To]++
			rec.TokensMoved++
		}
		// Step 6 — assign the accepted customers (sc.scatter), then
		// compact the unassigned list (sc.compact + ordered concat of
		// the per-shard survivor prefixes, using ParallelFor's documented
		// slice split).
		sess.ParallelFor(ns, sc.scatter)
		u := len(sc.unassigned)
		sess.ParallelFor(u, sc.compact)
		kept := 0
		for sh := 0; sh < shards; sh++ {
			lo := u * sh / shards
			k := int(sc.partKept[sh])
			copy(sc.unassigned[kept:kept+k], sc.unassigned[lo:lo+k])
			kept += k
		}
		sc.unassigned = sc.unassigned[:kept]

		if opt.CheckInvariants {
			if err := checkFlatPhaseInvariants(fb, serverOf, load, sc.loadsBefore, sol.Final); err != nil {
				return nil, fmt.Errorf("assign: phase %d: %w", phase, err)
			}
		}
		sess.ParallelFor(nl, sc.badness)
		rec.MaxBadness = 0
		for _, b := range sc.partMaxBad {
			if int(b) > rec.MaxBadness {
				rec.MaxBadness = int(b)
			}
		}
		res.PhaseLog = append(res.PhaseLog, rec)
		res.Phases = phase

		if opt.OnSnapshot != nil &&
			((opt.SnapshotEvery > 0 && phase%opt.SnapshotEvery == 0) || phase == opt.SnapshotAt) {
			snap := opt.SnapshotInto
			if snap == nil {
				snap = new(Snapshot)
			}
			captureAssignSnapshot(snap, phase, res.Rounds, serverOf, load, sc.unassigned, custRng, servRng, res.PhaseLog)
			if err := opt.OnSnapshot(snap); err != nil {
				return nil, fmt.Errorf("assign: snapshot at phase %d: %w", phase, err)
			}
		}
	}
	return res, nil
}

// recountWarmLoads checks a warm start's cached loads against a
// from-scratch recount and every assignment against the adjacency.
func recountWarmLoads(fb *graph.CSRBipartite, serverOf, load []int32) error {
	fresh := make([]int32, len(load))
	for c, so := range serverOf {
		if so < 0 {
			continue
		}
		found := false
		lo, hi := fb.C.ArcRange(c)
		for i := lo; i < hi; i++ {
			if int(fb.C.Col[i])-fb.NumLeft == int(so) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("customer %d assigned to non-adjacent server %d", c, so)
		}
		fresh[so]++
	}
	for s := range fresh {
		if fresh[s] != load[s] {
			return fmt.Errorf("load of server %d drifted: recomputed %d, cached %d", s, fresh[s], load[s])
		}
	}
	return nil
}

// checkFlatPhaseInvariants enforces the Section 7.2 analogues of Lemmas
// 5.3 and 5.4: server loads grow by exactly one at token destinations
// (equivalently, where a token rests when the game ends) and stay put
// elsewhere, no assigned customer has badness above 1 at the end of a
// phase, and the cached loads match a from-scratch recount.
func checkFlatPhaseInvariants(fb *graph.CSRBipartite, serverOf, load, before []int32, finalToken []bool) error {
	for s, b := range before {
		want := b
		if finalToken[s] {
			want++
		}
		if load[s] != want {
			return fmt.Errorf("lemma 5.3 analogue violated at server %d: load %d -> %d, destination=%v",
				fb.NumLeft+s, b, load[s], finalToken[s])
		}
	}
	fresh := make([]int32, len(load))
	for c, so := range serverOf {
		if so < 0 {
			continue
		}
		found := false
		lo, hi := fb.C.ArcRange(c)
		for i := lo; i < hi; i++ {
			if int(fb.C.Col[i])-fb.NumLeft == int(so) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("customer %d assigned to non-adjacent server %d", c, so)
		}
		fresh[so]++
	}
	for s := range fresh {
		if fresh[s] != load[s] {
			return fmt.Errorf("load of server %d drifted: recomputed %d, cached %d", s, fresh[s], load[s])
		}
	}
	if mb := flatMaxBadness(fb, serverOf, load); mb > 1 {
		return fmt.Errorf("lemma 5.4 analogue violated: max badness %d", mb)
	}
	return nil
}
