// Package assign implements the stable assignment algorithm of Section
// 7.2 (Theorem 7.3): every customer of a bipartite customer/server network
// must pick one adjacent server, and the result is stable when no customer
// can lower its server's load by switching. The algorithm generalizes the
// stable-orientation scheme of Section 5 — customers become hyperedges,
// token dropping runs on the hypergraph (package hypergame), and "flipping
// an edge" becomes moving a hyperedge's head — and runs in O(C·S⁴) rounds
// for customer degree C and server degree S (doc.go's Theorem 7.3 bound;
// Lemma 7.2 bounds the phases by C·S + 1).
//
// The layer runs on both LOCAL runtimes: Solve on the seed object engine
// (this file), SolveSharded on the sharded flat engine (flat.go). Under
// first-port tie-breaking the two produce bit-identical runs, which the
// differential suite in this package asserts.
package assign

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/graph"
	"tokendrop/internal/hypergame"
)

// Options configure Solve.
type Options struct {
	// RandomTies randomizes proposal acceptance and the game's choices.
	RandomTies bool
	// Seed drives all randomized tie-breaking.
	Seed int64
	// Workers for the LOCAL runtime (0 = GOMAXPROCS).
	Workers int
	// MaxPhases guards against non-termination; 0 means 4·C·S + 8
	// (Lemma 7.2 gives C·S + 1).
	MaxPhases int
	// CheckInvariants verifies the per-phase game solutions and the
	// badness/load invariants (the Section 7.2 analogues of Lemmas
	// 5.3–5.4).
	CheckInvariants bool
}

// PhaseRecord captures one phase for experiments.
type PhaseRecord struct {
	Phase       int
	Proposals   int // unassigned customers at phase start
	Accepted    int // customers assigned this phase
	GameEdges   int // badness-1 customers in the game
	GameRounds  int
	TokensMoved int
	MaxBadness  int // after the phase (must be ≤ 1)
}

// Result is the outcome of Solve.
type Result struct {
	Assignment *graph.Assignment
	Phases     int
	// Rounds counts communication rounds on the adaptive schedule: two
	// per phase (load broadcast, accept notification) plus the game's
	// rounds on the customer/server incidence network.
	Rounds   int
	PhaseLog []PhaseRecord
}

// Solve computes a stable assignment for b.
func Solve(b *graph.Bipartite, opt Options) (*Result, error) {
	for c := 0; c < b.NumLeft; c++ {
		if b.G.Degree(c) == 0 {
			return nil, fmt.Errorf("assign: customer %d has no adjacent server", c)
		}
	}
	cs := b.MaxCustomerDegree() * b.MaxServerDegree()
	maxPhases := opt.MaxPhases
	if maxPhases == 0 {
		maxPhases = 4*cs + 8
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	a := graph.NewAssignment(b)
	res := &Result{Assignment: a}

	for phase := 1; !a.Complete(); phase++ {
		if phase > maxPhases {
			return nil, fmt.Errorf("assign: phase %d exceeds the Lemma 7.2 budget (C·S=%d)", phase, cs)
		}
		rec := PhaseRecord{Phase: phase}

		// Step 1 — every unassigned customer proposes to the adjacent
		// server with the smallest load (ties to the smaller id, or
		// seeded-random); one load-broadcast round.
		proposalsTo := make(map[int][]int) // server -> customers
		for c := 0; c < b.NumLeft; c++ {
			if a.Assigned(c) {
				continue
			}
			rec.Proposals++
			best := -1
			for _, arc := range b.G.Adj(c) {
				if best < 0 || a.Load(arc.To) < a.Load(best) ||
					(a.Load(arc.To) == a.Load(best) && arc.To < best) {
					best = arc.To
				}
			}
			if opt.RandomTies {
				var mins []int
				for _, arc := range b.G.Adj(c) {
					if a.Load(arc.To) == a.Load(best) {
						mins = append(mins, arc.To)
					}
				}
				best = mins[rng.Intn(len(mins))]
			}
			proposalsTo[best] = append(proposalsTo[best], c)
		}

		// Step 2 — each server accepts exactly one proposal; one round.
		accepted := make(map[int]int) // customer -> server
		acceptedOrder := make([]int, 0, len(proposalsTo))
		token := make([]bool, b.NumServers())
		for s := b.NumLeft; s < b.G.N(); s++ {
			props := proposalsTo[s]
			if len(props) == 0 {
				continue
			}
			pick := props[0]
			if opt.RandomTies {
				pick = props[rng.Intn(len(props))]
			}
			accepted[pick] = s
			acceptedOrder = append(acceptedOrder, pick)
			token[s-b.NumLeft] = true
		}
		rec.Accepted = len(accepted)
		res.Rounds += 2

		// Step 3 — build the hypergraph game: server vertices with levels
		// = loads, hyperedges = assigned customers of badness exactly 1
		// (heads = their servers), tokens at accepting servers.
		levels := make([]int, b.NumServers())
		for i := range levels {
			levels[i] = a.Load(b.NumLeft + i)
		}
		var hedges [][]int
		var heads []int
		var gameCustomer []int
		for c := 0; c < b.NumLeft; c++ {
			if !a.Assigned(c) || b.G.Degree(c) < 2 || a.Badness(c) != 1 {
				continue
			}
			e := make([]int, 0, b.G.Degree(c))
			for _, arc := range b.G.Adj(c) {
				e = append(e, arc.To-b.NumLeft)
			}
			hedges = append(hedges, e)
			heads = append(heads, a.ServerOf[c]-b.NumLeft)
			gameCustomer = append(gameCustomer, c)
		}
		inst, err := hypergame.NewInstance(levels, token, hedges, heads)
		if err != nil {
			return nil, fmt.Errorf("assign: phase %d produced an invalid game: %w", phase, err)
		}
		rec.GameEdges = len(hedges)

		// Step 4 — play the game on the incidence network.
		sol, stats, err := hypergame.SolveProposal(inst, hypergame.SolveOptions{
			RandomTies: opt.RandomTies,
			Seed:       opt.Seed + int64(phase)*1_000_003,
			Workers:    opt.Workers,
			MaxRounds:  1 << 20,
		})
		if err != nil {
			return nil, fmt.Errorf("assign: phase %d game failed: %w", phase, err)
		}
		if opt.CheckInvariants {
			if err := hypergame.Verify(sol); err != nil {
				return nil, fmt.Errorf("assign: phase %d game unverified: %w", phase, err)
			}
		}
		rec.GameRounds = stats.Rounds
		res.Rounds += stats.Rounds

		var loadsBefore []int
		if opt.CheckInvariants {
			loadsBefore = a.Loads()
		}

		// Step 5 — apply the moves: a token passed from u to v through
		// customer e moves e's head from u to v (reassignment).
		for _, mv := range sol.Moves {
			c := gameCustomer[mv.Edge]
			a.Reassign(c, b.NumLeft+mv.To)
			rec.TokensMoved++
		}
		// Step 6 — assign the accepted customers.
		for _, c := range acceptedOrder {
			a.Assign(c, accepted[c])
		}

		if opt.CheckInvariants {
			if err := checkPhaseInvariants(b, a, loadsBefore, sol); err != nil {
				return nil, fmt.Errorf("assign: phase %d: %w", phase, err)
			}
		}
		rec.MaxBadness = a.MaxBadness()
		res.PhaseLog = append(res.PhaseLog, rec)
		res.Phases = phase
	}
	return res, nil
}

// checkPhaseInvariants enforces the Section 7.2 analogues of Lemmas 5.3
// and 5.4: server loads grow by exactly one at token destinations and stay
// put elsewhere, and no assigned customer has badness above 1 at the end
// of a phase.
func checkPhaseInvariants(b *graph.Bipartite, a *graph.Assignment, loadsBefore []int, sol *hypergame.Solution) error {
	isDest := make([]bool, b.NumServers())
	for _, tr := range sol.Traversals() {
		isDest[tr.Destination()] = true
	}
	for s := b.NumLeft; s < b.G.N(); s++ {
		want := loadsBefore[s]
		if isDest[s-b.NumLeft] {
			want++
		}
		if a.Load(s) != want {
			return fmt.Errorf("lemma 5.3 analogue violated at server %d: load %d -> %d, destination=%v",
				s, loadsBefore[s], a.Load(s), isDest[s-b.NumLeft])
		}
	}
	if mb := a.MaxBadness(); mb > 1 {
		return fmt.Errorf("lemma 5.4 analogue violated: max badness %d", mb)
	}
	return a.CheckLoads()
}
