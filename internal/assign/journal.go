package assign

// The resolver's undo journal: the assign-layer side of the failure
// model (ARCHITECTURE.md §"Failure model and recovery"). When a
// fault.Registry is wired into ResolverOptions, every delta operation
// records, before each mutation, what it is about to change — overlay
// primitives, assignment/load writes, tie-break RNG draws — and a
// repair failpoint firing mid-cascade rolls the whole delta back to the
// prior consistent assignment by replaying the journal in reverse with
// compensating operations. The overlay's LIFO id recycling is what
// makes the compensations exact: re-adding the customer (or server) a
// delta removed is guaranteed to get the same id back.
//
// Rollback restores the protocol surface bit-exactly: assignments,
// loads, RNG streams, customer port order, and the live edge set all
// return to their pre-delta state (asserted by the equivalence suites).
// Two things may differ benignly: server incidence lists are
// maintenance-ordered (documented non-surface — re-insertion appends),
// and arena/id-space growth triggered by the aborted delta persists
// (invisible to the live walk).
//
// A resolver with no registry records nothing and checks one nil site
// per repair move; the journal's buffers are grow-only, so armed warmed
// deltas stay allocation-free too.

import "fmt"

// FaultSiteRepair is the resolver's failpoint, visited once per repair
// move (after the move is chosen, before it is applied). An error or
// crash firing aborts the delta and rolls it back; a stall firing just
// delays the cascade. Arm it through ResolverOptions.Fault.
const FaultSiteRepair = "resolver/repair"

// Journal entry kinds for overlay mutations (jOvOp.kind).
const (
	jAddCustomer uint8 = iota
	jRemoveCustomer
	jAddEdge
	jRemoveEdge
	jRemoveServer
)

// jMove records an assignment write: customer c was moved away from
// server from (-1 = was unassigned). Undo moves c back and re-adjusts
// both loads.
type jMove struct {
	c, from int32
}

// jRng records a tie-break stream write: customer c's stream held state
// before the draw.
type jRng struct {
	c     int32
	state uint64
}

// jOvOp records one overlay mutation. c and s are the customer/server
// ids involved; port is the removed port position (jRemoveEdge); lo/hi
// index the journal's shared adjacency buffer (jRemoveCustomer).
type jOvOp struct {
	kind   uint8
	c, s   int32
	port   int32
	lo, hi int32
}

// journal is the per-delta undo log. armed is set once at construction
// (registry wired in) and never changes; begin resets the log at every
// delta boundary.
type journal struct {
	armed bool
	moves []jMove
	rngs  []jRng
	ops   []jOvOp
	adj   []int32 // shared backing for jRemoveCustomer adjacency copies
	seq   uint64  // r.seq at delta start
	mvs   int     // r.stats.Moves at delta start
}

// begin opens a delta's journal scope.
func (r *Resolver) begin() {
	if !r.jr.armed {
		return
	}
	r.jr.moves = r.jr.moves[:0]
	r.jr.rngs = r.jr.rngs[:0]
	r.jr.ops = r.jr.ops[:0]
	r.jr.adj = r.jr.adj[:0]
	r.jr.seq = r.seq
	r.jr.mvs = r.stats.Moves
}

// recordOp journals an overlay mutation about to happen.
func (r *Resolver) recordOp(kind uint8, c, s, port int32) {
	if !r.jr.armed {
		return
	}
	op := jOvOp{kind: kind, c: c, s: s, port: port, lo: -1, hi: -1}
	if kind == jRemoveCustomer {
		op.lo = int32(len(r.jr.adj))
		r.jr.adj = append(r.jr.adj, r.ov.Adj(int(c))...)
		op.hi = int32(len(r.jr.adj))
	}
	r.jr.ops = append(r.jr.ops, op)
}

// recordRng journals customer c's tie-break stream before a write.
func (r *Resolver) recordRng(c int32) {
	if r.jr.armed {
		r.jr.rngs = append(r.jr.rngs, jRng{c: c, state: r.custRng[c]})
	}
}

// setServer is the single write path for assignments: it journals the
// old binding, moves customer c to server s (-1 = unassign), and
// adjusts both load counters.
func (r *Resolver) setServer(c, s int32) {
	if r.jr.armed {
		r.jr.moves = append(r.jr.moves, jMove{c: c, from: r.serverOf[c]})
	}
	if old := r.serverOf[c]; old >= 0 {
		r.load[old]--
	}
	r.serverOf[c] = s
	if s >= 0 {
		r.load[s]++
	}
}

// rollback restores the pre-delta state after cause aborted a delta
// mid-flight, and returns the error the operation surfaces. The journal
// is replayed newest-first within each record class: assignment moves,
// then RNG streams, then overlay compensations (the classes touch
// disjoint state, so class order is free; order within a class is not).
// Rollback failure means the journal and the overlay disagree — that is
// corruption, and it panics rather than serving a broken assignment.
func (r *Resolver) rollback(cause error) error {
	for _, c := range r.pending {
		r.inPending[c] = false
	}
	r.pending = r.pending[:0]
	for i := len(r.jr.moves) - 1; i >= 0; i-- {
		m := r.jr.moves[i]
		if cur := r.serverOf[m.c]; cur >= 0 {
			r.load[cur]--
		}
		if m.from >= 0 {
			r.load[m.from]++
		}
		r.serverOf[m.c] = m.from
	}
	for i := len(r.jr.rngs) - 1; i >= 0; i-- {
		e := r.jr.rngs[i]
		r.custRng[e.c] = e.state
	}
	r.seq = r.jr.seq
	for i := len(r.jr.ops) - 1; i >= 0; i-- {
		op := r.jr.ops[i]
		switch op.kind {
		case jAddCustomer:
			if err := r.ov.RemoveCustomer(int(op.c)); err != nil {
				panic(fmt.Sprintf("assign: rollback cannot remove customer %d: %v", op.c, err))
			}
		case jRemoveCustomer:
			id, err := r.ov.AddCustomer(r.jr.adj[op.lo:op.hi])
			if err != nil {
				panic(fmt.Sprintf("assign: rollback cannot re-add customer %d: %v", op.c, err))
			}
			if id != int(op.c) {
				panic(fmt.Sprintf("assign: rollback re-added customer as %d, want recycled id %d", id, op.c))
			}
		case jAddEdge:
			if err := r.ov.RemoveEdge(int(op.c), int(op.s)); err != nil {
				panic(fmt.Sprintf("assign: rollback cannot remove edge {%d,%d}: %v", op.c, op.s, err))
			}
		case jRemoveEdge:
			if err := r.ov.AddEdgeAt(int(op.c), int(op.s), int(op.port)); err != nil {
				panic(fmt.Sprintf("assign: rollback cannot restore edge {%d,%d}@%d: %v", op.c, op.s, op.port, err))
			}
		case jRemoveServer:
			if id := r.ov.AddServer(); id != int(op.c) {
				panic(fmt.Sprintf("assign: rollback re-added server as %d, want recycled id %d", id, op.c))
			}
		}
	}
	r.stats.Moves = r.jr.mvs
	r.stats.Rollbacks++
	err := fmt.Errorf("assign: delta rolled back: %w", cause)
	if r.selfCheck {
		if verr := r.Verify(); verr != nil {
			panic(fmt.Sprintf("assign: resolver corrupt after rollback: %v (cause: %v)", verr, cause))
		}
	}
	return err
}

// abort unwinds a failed delta: rollback when the journal is armed,
// plain error propagation otherwise (matching the unjournaled
// behavior). For overlay errors that pre-validation should have made
// impossible.
func (r *Resolver) abort(err error) error {
	if r.jr.armed {
		return r.rollback(err)
	}
	return err
}
