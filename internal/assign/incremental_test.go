package assign

import (
	"math/rand"
	"testing"
	"time"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
)

// The incremental suite is oracle-based, per the Resolver's contract:
// after any delta sequence the Resolver's state must satisfy the same
// stability predicate a from-scratch SolveSharded run on the mutated
// network does (every live customer assigned to an adjacent server,
// loads consistent, badness at most 1). Assignments themselves are never
// compared — stable states are not unique and move logs legitimately
// differ between the incremental and batch paths.

// churnStep applies one random delta to r, mirroring it in live, the
// test's model of which ids are live. Returns false when the rng drew an
// op the current state cannot support (the caller just draws again).
func churnStep(t *testing.T, r *Resolver, rng *rand.Rand, liveCust, liveServ *[]int32) bool {
	t.Helper()
	pickFrom := func(ids []int32) int32 { return ids[rng.Intn(len(ids))] }
	removeID := func(ids *[]int32, id int32) {
		for i, v := range *ids {
			if v == id {
				(*ids)[i] = (*ids)[len(*ids)-1]
				*ids = (*ids)[:len(*ids)-1]
				return
			}
		}
		t.Fatalf("model lost id %d", id)
	}
	switch op := rng.Intn(10); {
	case op < 3: // add customer with 1..3 distinct ports
		if len(*liveServ) == 0 {
			return false
		}
		want := 1 + rng.Intn(3)
		perm := rng.Perm(len(*liveServ))
		servers := make([]int32, 0, want)
		for _, i := range perm {
			servers = append(servers, (*liveServ)[i])
			if len(servers) == want {
				break
			}
		}
		c, err := r.AddCustomer(servers)
		if err != nil {
			t.Fatalf("AddCustomer(%v): %v", servers, err)
		}
		*liveCust = append(*liveCust, int32(c))
	case op < 5: // remove customer
		if len(*liveCust) == 0 {
			return false
		}
		c := pickFrom(*liveCust)
		if err := r.RemoveCustomer(int(c)); err != nil {
			t.Fatalf("RemoveCustomer(%d): %v", c, err)
		}
		removeID(liveCust, c)
	case op < 6: // add server
		s, err := r.AddServer()
		if err != nil {
			t.Fatalf("AddServer: %v", err)
		}
		*liveServ = append(*liveServ, int32(s))
	case op < 7: // drain server (skip when a customer depends on it alone)
		if len(*liveServ) < 2 {
			return false
		}
		s := pickFrom(*liveServ)
		for _, c := range r.Overlay().Incident(int(s)) {
			if len(r.Overlay().Adj(int(c))) < 2 {
				return false
			}
		}
		if err := r.DrainServer(int(s)); err != nil {
			t.Fatalf("DrainServer(%d): %v", s, err)
		}
		removeID(liveServ, s)
	case op < 9: // add edge
		if len(*liveCust) == 0 || len(*liveServ) == 0 {
			return false
		}
		c, s := pickFrom(*liveCust), pickFrom(*liveServ)
		for _, u := range r.Overlay().Adj(int(c)) {
			if u == s {
				return false
			}
		}
		if err := r.AddEdge(int(c), int(s)); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", c, s, err)
		}
	default: // remove edge (never the last one)
		if len(*liveCust) == 0 {
			return false
		}
		c := pickFrom(*liveCust)
		adj := r.Overlay().Adj(int(c))
		if len(adj) < 2 {
			return false
		}
		s := adj[rng.Intn(len(adj))]
		if err := r.RemoveEdge(int(c), int(s)); err != nil {
			t.Fatalf("RemoveEdge(%d,%d): %v", c, s, err)
		}
	}
	return true
}

// TestResolverChurnEquivalence drives a Resolver through random deltas
// with SelfCheck on (so every operation oracle-verifies the incremental
// state) and then checks the batch oracle on the mutated network: a
// from-scratch SolveSharded on the compacted graph — at shards 1, 2,
// and 8, both tie rules — must find it solvable and stable with the
// same live counts the Resolver reports.
func TestResolverChurnEquivalence(t *testing.T) {
	for _, tie := range []core.TieBreak{core.TieFirstPort, core.TieRandom} {
		rng := rand.New(rand.NewSource(42 + int64(tie)))
		b := graph.MustBipartite(graph.RandomBipartite(60, 16, 3, rng), 60)
		fb := graph.NewCSRBipartiteFromBipartite(b)
		r, err := NewResolver(fb, nil, ResolverOptions{
			Tie: tie, Seed: 5, Shards: 2, SelfCheck: true, FragThreshold: 0.3,
		})
		if err != nil {
			t.Fatalf("tie %v: NewResolver: %v", tie, err)
		}
		defer r.Close()

		liveCust := make([]int32, 0, 128)
		liveServ := make([]int32, 0, 32)
		for c := 0; c < fb.NumLeft; c++ {
			liveCust = append(liveCust, int32(c))
		}
		for s := 0; s < fb.NumServers(); s++ {
			liveServ = append(liveServ, int32(s))
		}
		for applied := 0; applied < 400; {
			if churnStep(t, r, rng, &liveCust, &liveServ) {
				applied++
			}
		}
		if err := r.Verify(); err != nil {
			t.Fatalf("tie %v: post-churn verify: %v", tie, err)
		}
		st := r.Stats()
		if st.Customers != len(liveCust) || st.Servers != len(liveServ) {
			t.Fatalf("tie %v: stats report %d/%d live, model has %d/%d",
				tie, st.Customers, st.Servers, len(liveCust), len(liveServ))
		}

		// The batch oracle on the mutated network, across shard counts.
		var bld graph.CSRBuilder
		bld.Reset(0)
		var oc graph.OverlayCSR
		r.Overlay().BuildCSR(&bld, &oc)
		for _, shards := range []int{1, 2, 8} {
			res, err := SolveSharded(oc.Bipartite(), ShardedOptions{
				Tie: tie, Seed: 99, Shards: shards, CheckInvariants: true,
			})
			if err != nil {
				t.Fatalf("tie %v shards %d: oracle solve: %v", tie, shards, err)
			}
			if !res.Stable() {
				t.Fatalf("tie %v shards %d: oracle solve unstable", tie, shards)
			}
			if len(res.ServerOf) != st.Customers {
				t.Fatalf("tie %v shards %d: oracle solved %d customers, resolver has %d",
					tie, shards, len(res.ServerOf), st.Customers)
			}
		}

		// FullSolve on the resolver's own machinery lands in a verified
		// stable state too.
		if err := r.FullSolve(); err != nil {
			t.Fatalf("tie %v: FullSolve: %v", tie, err)
		}
		if err := r.Verify(); err != nil {
			t.Fatalf("tie %v: post-FullSolve verify: %v", tie, err)
		}
	}
}

// TestResolverAdoptsPrior checks the adopt-and-repair construction path:
// a stable prior is adopted without moves, an unstable one is repaired.
func TestResolverAdoptsPrior(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := graph.MustBipartite(graph.RandomBipartite(50, 10, 3, rng), 50)
	fb := graph.NewCSRBipartiteFromBipartite(b)
	res, err := SolveSharded(fb, ShardedOptions{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResolver(fb, res.ServerOf, ResolverOptions{SelfCheck: true})
	if err != nil {
		t.Fatalf("stable prior rejected: %v", err)
	}
	if moves := r.Stats().Moves; moves != 0 {
		t.Fatalf("stable prior caused %d repair moves", moves)
	}
	r.Close()

	// Pile everyone onto each customer's first port: valid but (almost
	// surely) unstable. The resolver must repair it to stability.
	worst := make([]int32, fb.NumLeft)
	for c := 0; c < fb.NumLeft; c++ {
		worst[c] = fb.C.Col[fb.C.Row[c]] - int32(fb.NumLeft)
	}
	r2, err := NewResolver(fb, worst, ResolverOptions{SelfCheck: true})
	if err != nil {
		t.Fatalf("unstable prior: %v", err)
	}
	defer r2.Close()
	if err := r2.Verify(); err != nil {
		t.Fatalf("repair of unstable prior: %v", err)
	}

	// Shape and range errors are rejected.
	if _, err := NewResolver(fb, make([]int32, 3), ResolverOptions{}); err == nil {
		t.Fatal("short prior accepted")
	}
	bad := make([]int32, fb.NumLeft)
	bad[0] = int32(fb.NumServers())
	if _, err := NewResolver(fb, bad, ResolverOptions{}); err == nil {
		t.Fatal("out-of-range prior accepted")
	}
}

// TestResolverErrors pins the guarded error paths: dead ids, last-edge
// removal, draining a sole provider.
func TestResolverErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := graph.MustBipartite(graph.RandomBipartiteRegular(8, 4, 2, 4, rng), 8)
	fb := graph.NewCSRBipartiteFromBipartite(b)
	r, err := NewResolver(fb, nil, ResolverOptions{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.RemoveCustomer(99); err == nil {
		t.Fatal("removing a dead customer id succeeded")
	}
	if err := r.DrainServer(99); err == nil {
		t.Fatal("draining a dead server id succeeded")
	}
	if _, err := r.AddCustomer(nil); err == nil {
		t.Fatal("customer with no ports accepted")
	}
	s, err := r.AddServer()
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.AddCustomer([]int32{int32(s)})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveEdge(c, s); err == nil {
		t.Fatal("removing a customer's last edge succeeded")
	}
	if err := r.DrainServer(s); err == nil {
		t.Fatal("draining a sole provider succeeded")
	}
	if err := r.RemoveCustomer(c); err != nil {
		t.Fatal(err)
	}
	if err := r.DrainServer(s); err != nil {
		t.Fatalf("draining the now-empty server: %v", err)
	}
}

// TestResolverSteadyStateAllocs pins the serving-path guarantee: on a
// warmed resolver, delta application allocates nothing.
func TestResolverSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := graph.MustBipartite(graph.RandomBipartite(200, 40, 3, rng), 200)
	fb := graph.NewCSRBipartiteFromBipartite(b)
	r, err := NewResolver(fb, nil, ResolverOptions{Tie: core.TieRandom, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ports := []int32{0, 7, 21}
	churn := func() {
		c, err := r.AddCustomer(ports)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.AddEdge(c, 33); err != nil {
			t.Fatal(err)
		}
		if err := r.RemoveEdge(c, 7); err != nil {
			t.Fatal(err)
		}
		if err := r.RemoveCustomer(c); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ { // warm arenas, queue, and free lists
		churn()
	}
	if avg := testing.AllocsPerRun(100, churn); avg != 0 {
		t.Fatalf("steady-state delta churn allocates %v per cycle", avg)
	}
}

// TestWarmStartSharded checks the dirty-region path through the batch
// solver: release a random subset of a stable assignment, re-solve with
// WarmStart, and oracle-verify the result. Both tie rules, shards 1/2/8.
func TestWarmStartSharded(t *testing.T) {
	for _, tie := range []core.TieBreak{core.TieFirstPort, core.TieRandom} {
		for _, shards := range []int{1, 2, 8} {
			rng := rand.New(rand.NewSource(100 + int64(shards) + int64(tie)))
			b := graph.MustBipartite(graph.RandomBipartite(80, 20, 3, rng), 80)
			fb := graph.NewCSRBipartiteFromBipartite(b)
			res, err := SolveSharded(fb, ShardedOptions{Tie: tie, Seed: 4, Shards: shards, CheckInvariants: true})
			if err != nil {
				t.Fatal(err)
			}
			dirty := make([]int32, 0, 20)
			for c := 0; c < fb.NumLeft; c++ {
				if rng.Intn(4) == 0 {
					dirty = append(dirty, int32(c))
				}
			}
			warm, err := SolveSharded(fb, ShardedOptions{
				Tie: tie, Seed: 5, Shards: shards, CheckInvariants: true,
				WarmStart: &WarmStart{ServerOf: res.ServerOf, Load: res.Load, Dirty: dirty},
			})
			if err != nil {
				t.Fatalf("tie %v shards %d: warm solve: %v", tie, shards, err)
			}
			if !warm.Stable() {
				t.Fatalf("tie %v shards %d: warm solve unstable", tie, shards)
			}
			// The warm solve only worked the dirty region: phase-1
			// proposals are the dirty customers plus their released
			// closure, never fewer than the dirty set.
			if len(warm.PhaseLog) > 0 && warm.PhaseLog[0].Proposals < len(dirty) {
				t.Fatalf("tie %v shards %d: warm solve proposed %d customers for %d dirty",
					tie, shards, warm.PhaseLog[0].Proposals, len(dirty))
			}
		}
	}
}

// TestWarmStartValidation pins the warm-start error paths.
func TestWarmStartValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := graph.MustBipartite(graph.RandomBipartite(30, 8, 3, rng), 30)
	fb := graph.NewCSRBipartiteFromBipartite(b)
	res, err := SolveSharded(fb, ShardedOptions{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	solve := func(ws *WarmStart) error {
		_, err := SolveSharded(fb, ShardedOptions{CheckInvariants: true, WarmStart: ws})
		return err
	}
	if err := solve(&WarmStart{ServerOf: res.ServerOf[:5], Load: res.Load}); err == nil {
		t.Fatal("short ServerOf accepted")
	}
	if err := solve(&WarmStart{ServerOf: res.ServerOf, Load: res.Load, Dirty: []int32{5, 5}}); err == nil {
		t.Fatal("non-ascending dirty list accepted")
	}
	bad := append([]int32(nil), res.ServerOf...)
	bad[7] = -1 // unassigned but not dirty
	if err := solve(&WarmStart{ServerOf: bad, Load: res.Load, Dirty: nil}); err == nil {
		t.Fatal("undeclared unassigned customer accepted")
	}
	badLoad := append([]int32(nil), res.Load...)
	badLoad[0]++
	if err := solve(&WarmStart{ServerOf: res.ServerOf, Load: badLoad}); err == nil {
		t.Fatal("inconsistent loads accepted")
	}
	if _, err := SolveSharded(fb, ShardedOptions{
		WarmStart:  &WarmStart{ServerOf: res.ServerOf, Load: res.Load},
		ResumeFrom: &Snapshot{},
	}); err == nil {
		t.Fatal("WarmStart+ResumeFrom accepted")
	}
}

// TestSingleDeltaSpeedup pins the acceptance criterion of the
// incremental layer: under a churning workload on a network of 10^5
// customers, a single-customer delta re-solves at least 10× faster than
// a from-scratch SolveSharded of the same mutated network. The real
// margin is orders of magnitude (microseconds against milliseconds);
// the 10× floor keeps the assertion robust on loaded runners.
func TestSingleDeltaSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("times a 10^5-customer workload")
	}
	nl, nr, cdeg := 100_000, 25_000, 3
	rng := rand.New(rand.NewSource(11))
	b := graph.MustBipartite(graph.RandomBipartite(nl, nr, cdeg, rng), nl)
	fb := graph.NewCSRBipartiteFromBipartite(b)
	r, err := NewResolver(fb, nil, ResolverOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ports := make([]int32, cdeg)
	draw := func() {
		for k := range ports {
		redraw:
			ports[k] = int32(rng.Intn(nr))
			for _, prev := range ports[:k] {
				if prev == ports[k] {
					goto redraw
				}
			}
		}
	}
	// Reach churn steady state first: a window of arrivals and
	// departures leaves the resolver's grow-only buffers warm and its
	// assignment shaped by past repairs, which is the serving regime the
	// criterion describes.
	recent := make([]int32, 0, 256)
	for i := 0; i < 2000; i++ {
		if len(recent) == cap(recent) {
			c := recent[0]
			recent = recent[:copy(recent, recent[1:])]
			if err := r.RemoveCustomer(int(c)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		draw()
		c, err := r.AddCustomer(ports)
		if err != nil {
			t.Fatal(err)
		}
		recent = append(recent, int32(c))
	}

	const deltas = 2000
	t0 := time.Now()
	for i := 0; i < deltas/2; i++ {
		draw()
		c, err := r.AddCustomer(ports)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.RemoveCustomer(c); err != nil {
			t.Fatal(err)
		}
	}
	perDelta := time.Since(t0) / deltas
	if perDelta <= 0 {
		perDelta = 1
	}

	// The from-scratch comparison point: SolveSharded on the compacted
	// mutated network, best of two so a one-off pause cannot flatter the
	// incremental side. Construction cost is excluded — the comparison
	// is solve against solve.
	var bld graph.CSRBuilder
	bld.Reset(0)
	var oc graph.OverlayCSR
	r.Overlay().BuildCSR(&bld, &oc)
	ofb := oc.Bipartite()
	var full time.Duration
	for rep := 0; rep < 2; rep++ {
		t1 := time.Now()
		res, err := SolveSharded(ofb, ShardedOptions{Seed: 9})
		d := time.Since(t1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stable() {
			t.Fatal("from-scratch solve unstable")
		}
		if rep == 0 || d < full {
			full = d
		}
	}
	ratio := float64(full) / float64(perDelta)
	t.Logf("per-delta %v, from-scratch %v, speedup %.0f×", perDelta, full, ratio)
	if ratio < 10 {
		t.Fatalf("single-customer delta only %.1f× faster than from-scratch solve (want ≥10×): delta %v, full %v",
			ratio, perDelta, full)
	}
}
