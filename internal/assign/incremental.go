package assign

// Incremental re-solve: a Resolver keeps a live network (as a mutable
// graph.BipartiteOverlay) together with a stable assignment on it, and
// repairs the assignment after every mutation instead of re-solving from
// scratch. The repair rule is the natural local one — while any assigned
// customer has badness at least 2, reassign it to a least-loaded adjacent
// server — and it provably terminates in a stable state from any
// starting assignment: a move from a level-a server to a level-b server
// with a−b ≥ 2 changes the semi-matching potential Φ = Σ_s f(load(s)),
// f(x) = x(x+1)/2, by (b+1)−a ≤ −1, so Φ strictly decreases with every
// move and the cascade stops. The dirty region the cascade explores is
// discovered, not declared: whenever a server's load changes, every
// customer incident to it is enqueued for re-examination (that set
// covers both the customers whose own server got heavier and those whose
// cheapest alternative got lighter), and the queue drains to empty
// before a delta operation returns.
//
// The Resolver is oracle-equivalent to the batch solver, not lockstep:
// after any delta sequence its state satisfies the same stability
// predicate SolveSharded's output does on the same (mutated) network,
// but the particular stable assignment — and any move log — may differ.
// Tests verify it with the oracle check (assignment valid, loads
// consistent, badness at most 1), never by comparing assignments.
//
// Steady state allocates nothing: the pending queue, its membership
// bitmap, and the per-customer RNG streams are grow-only and bounded by
// the overlay's id space, which LIFO id recycling bounds by the peak
// live count.

import (
	"fmt"

	"tokendrop/internal/core"
	"tokendrop/internal/fault"
	"tokendrop/internal/graph"
	"tokendrop/internal/hypergame"
	"tokendrop/internal/local"
)

// ResolverOptions configures a Resolver.
type ResolverOptions struct {
	// Tie selects the tie-breaking rule for repair moves and initial
	// placements: TieFirstPort prefers the smallest server id among the
	// least-loaded adjacent servers (the flat engine's rule), TieRandom
	// draws from a per-customer splitmix64 stream.
	Tie core.TieBreak
	// Seed drives the TieRandom streams and any from-scratch fallback
	// solves.
	Seed int64
	// Shards is the worker count of the persistent engine session the
	// Resolver keeps for from-scratch solves; 0 means
	// runtime.GOMAXPROCS(0).
	Shards int
	// FragThreshold is passed to the overlay (0 means its 0.5 default).
	FragThreshold float64
	// SelfCheck runs Verify after every delta operation and turns a
	// failure into the operation's error. Linear per delta — tests keep
	// it on, serving paths leave it off.
	SelfCheck bool
	// Fault wires a failpoint registry into the Resolver: the repair
	// cascade visits FaultSiteRepair once per move, and an injected
	// error or crash aborts the delta and rolls the Resolver back to
	// the prior consistent assignment (see journal.go). Nil means no
	// failpoints and no journaling overhead.
	Fault *fault.Registry
}

// ResolverStats counts what a Resolver has done since creation.
type ResolverStats struct {
	// Deltas counts completed mutation operations.
	Deltas int
	// Moves counts repair reassignments (each strictly decreased Φ).
	Moves int
	// FullSolves counts from-scratch fallback solves.
	FullSolves int
	// Customers, Servers, and Edges are the live counts.
	Customers, Servers, Edges int
	// Compactions is the overlay's arena-compaction count.
	Compactions int
	// Rollbacks counts deltas aborted by an injected fault and rolled
	// back to the prior consistent assignment.
	Rollbacks int
}

// Resolver maintains a stable assignment on a mutable bipartite network
// under customer, server, and edge churn. Not safe for concurrent use;
// serving layers wrap it in a mutex.
type Resolver struct {
	ov       *graph.BipartiteOverlay
	serverOf []int32 // by overlay customer id; -1 when dead or unassigned
	load     []int32 // by overlay server id; stale entries for dead ids

	tie     core.TieBreak
	seed    int64
	custRng []uint64 // TieRandom streams, by overlay customer id
	seq     uint64   // stream-creation counter (decorrelates recycled ids)

	pending   []int32 // repair stack; empty between operations
	inPending []bool  // stack membership, by overlay customer id
	scratch   []int32 // DrainServer's incidence snapshot

	selfCheck  bool
	stats      ResolverStats
	verifyLoad []int32 // Verify's recount buffer

	failRepair *fault.Site // FaultSiteRepair; nil without a registry
	jr         journal     // per-delta undo log; disarmed without a registry

	// The persistent from-scratch machinery: one warmed session,
	// workspace, and builder serve every FullSolve and oracle rebuild.
	sess    *local.Session
	gws     *hypergame.Workspace
	builder *graph.CSRBuilder
	oc      graph.OverlayCSR
}

// NewResolver returns a Resolver over the network fb (nil means start
// empty). When prior is non-nil it must have one entry per customer —
// an adjacent server index, or -1 for customers the Resolver should
// place itself; the Resolver adopts it and repairs it to stability,
// which costs nothing when the prior is already stable. When prior is
// nil and fb has customers, a from-scratch SolveSharded produces the
// initial assignment. Close releases the engine session.
func NewResolver(fb *graph.CSRBipartite, prior []int32, opt ResolverOptions) (*Resolver, error) {
	if prior != nil {
		nl := 0
		if fb != nil {
			nl = fb.NumLeft
		}
		if len(prior) != nl {
			return nil, fmt.Errorf("assign: prior assignment has %d entries for %d customers", len(prior), nl)
		}
	}
	return NewResolverFromOverlay(graph.NewBipartiteOverlay(fb), prior, opt)
}

// NewResolverFromOverlay returns a Resolver adopting ov — the restore
// path of the snapshot format, where overlay ids must survive a
// round-trip. The Resolver takes ownership of ov. prior, when non-nil,
// is indexed by overlay customer id (length at least ov.CustomerIDs());
// live customers with prior -1 are placed greedily, and the whole
// adopted state is repaired to stability. When prior is nil and ov has
// customers, a from-scratch solve on the compacted graph initializes
// the assignment.
func NewResolverFromOverlay(ov *graph.BipartiteOverlay, prior []int32, opt ResolverOptions) (*Resolver, error) {
	r := &Resolver{
		ov:      ov,
		tie:     opt.Tie,
		seed:    opt.Seed,
		sess:    local.NewSession(opt.Shards),
		gws:     hypergame.NewWorkspace(),
		builder: graph.NewCSRBuilder(0, 0),
	}
	if opt.FragThreshold != 0 {
		r.ov.FragThreshold = opt.FragThreshold
	}
	r.selfCheck = opt.SelfCheck
	if opt.Fault != nil {
		r.failRepair = opt.Fault.Site(FaultSiteRepair)
	}
	r.growCustomers()
	r.growServers()
	for c := range r.serverOf {
		r.serverOf[c] = -1
		if r.ov.CustomerLive(c) {
			r.seedRng(c)
		}
	}
	if prior != nil {
		if len(prior) < r.ov.CustomerIDs() {
			r.Close()
			return nil, fmt.Errorf("assign: prior assignment covers %d of %d overlay customer ids",
				len(prior), r.ov.CustomerIDs())
		}
		for c := range r.serverOf {
			if !r.ov.CustomerLive(c) {
				continue
			}
			s := prior[c]
			if s < 0 {
				continue
			}
			if !r.ov.ServerLive(int(s)) {
				r.Close()
				return nil, fmt.Errorf("assign: prior assigns customer %d to dead server %d", c, s)
			}
			r.serverOf[c] = s
			r.load[s]++
		}
		// Adopt-and-repair: place the unassigned, enqueue everything
		// once; stable priors cost one scan, unstable ones are repaired.
		for c := range r.serverOf {
			if !r.ov.CustomerLive(c) {
				continue
			}
			if r.serverOf[c] < 0 {
				if len(r.ov.Adj(c)) == 0 {
					r.Close()
					return nil, fmt.Errorf("assign: customer %d has no adjacent server to place on", c)
				}
				best, _ := r.pickServer(int32(c))
				r.serverOf[c] = best
				r.load[best]++
			}
			r.push(int32(c))
		}
		// Construction-time repair faults fail construction outright —
		// there is no prior consistent state to roll back to.
		if err := r.repair(); err != nil {
			r.Close()
			return nil, fmt.Errorf("assign: resolver construction: %w", err)
		}
	} else if r.ov.NumCustomers() > 0 {
		if err := r.FullSolve(); err != nil {
			r.Close()
			return nil, err
		}
	}
	if err := r.Verify(); err != nil {
		r.Close()
		return nil, fmt.Errorf("assign: resolver construction: %w", err)
	}
	// Arm the undo journal only now: delta operations roll back to the
	// consistent state that construction just verified.
	r.jr.armed = opt.Fault != nil
	return r, nil
}

// Close releases the Resolver's engine session.
func (r *Resolver) Close() { r.sess.Close() }

// Overlay returns the live network. Callers must not mutate it directly
// — assignments would drift; use the Resolver's delta operations.
func (r *Resolver) Overlay() *graph.BipartiteOverlay { return r.ov }

// ServerOf returns the server id customer c is assigned to (-1 when c
// is not a live customer).
func (r *Resolver) ServerOf(c int) int {
	if !r.ov.CustomerLive(c) {
		return -1
	}
	return int(r.serverOf[c])
}

// Load returns server s's load (0 when s is not a live server).
func (r *Resolver) Load(s int) int {
	if !r.ov.ServerLive(s) {
		return 0
	}
	return int(r.load[s])
}

// Stats returns the operation counters with the live counts filled in.
func (r *Resolver) Stats() ResolverStats {
	st := r.stats
	st.Customers = r.ov.NumCustomers()
	st.Servers = r.ov.NumServers()
	st.Edges = r.ov.NumEdges()
	st.Compactions = r.ov.Compactions()
	return st
}

// growCustomers resizes the customer-indexed arrays to the overlay's id
// space, preserving existing entries (append-based, unlike reuse.Grown).
func (r *Resolver) growCustomers() {
	n := r.ov.CustomerIDs()
	for len(r.serverOf) < n {
		r.serverOf = append(r.serverOf, -1)
	}
	for len(r.custRng) < n {
		r.custRng = append(r.custRng, 0)
	}
	for len(r.inPending) < n {
		r.inPending = append(r.inPending, false)
	}
}

// growServers resizes the server-indexed load array likewise.
func (r *Resolver) growServers() {
	n := r.ov.ServerIDs()
	for len(r.load) < n {
		r.load = append(r.load, 0)
	}
}

// seedRng starts a fresh TieRandom stream for customer id c. The
// creation counter keeps a recycled id's stream decorrelated from its
// previous life's.
func (r *Resolver) seedRng(c int) {
	r.recordRng(int32(c))
	r.seq++
	r.custRng[c] = core.SplitMix64(uint64(r.seed) ^ uint64(c)*0x9e3779b97f4a7c15 ^ r.seq*0x94d049bb133111eb)
}

// push enqueues customer c for repair unless it is already pending.
func (r *Resolver) push(c int32) {
	if !r.inPending[c] {
		r.inPending[c] = true
		r.pending = append(r.pending, c)
	}
}

// dirtyServer enqueues every customer incident to server s — the
// discovery rule: a load change at s can only create badness at
// customers that can see s.
func (r *Resolver) dirtyServer(s int) {
	for _, c := range r.ov.Incident(s) {
		r.push(c)
	}
}

// pickServer returns the least-loaded server adjacent to customer c
// under the tie rule, and its load. The caller guarantees c is live
// with at least one port.
func (r *Resolver) pickServer(c int32) (best, bestLoad int32) {
	adj := r.ov.Adj(int(c))
	best = -1
	for _, s := range adj {
		if l := r.load[s]; best < 0 || l < bestLoad || (l == bestLoad && s < best) {
			best, bestLoad = s, l
		}
	}
	if r.tie == core.TieRandom {
		r.recordRng(c)
		state := r.custRng[c]
		count := 0
		for _, s := range adj {
			if r.load[s] != bestLoad {
				continue
			}
			count++
			var pick int
			state, pick = core.SplitMixIntn(state, count)
			if pick == 0 {
				best = s
			}
		}
		r.custRng[c] = state
	}
	return best, bestLoad
}

// repair drains the pending stack: any popped customer whose badness is
// at least 2 moves to a least-loaded adjacent server, dirtying both
// endpoints' incidences. Φ = Σ f(load) strictly decreases per move, so
// the drain terminates with every live customer at badness ≤ 1.
//
// The FaultSiteRepair failpoint is visited once per move, after the
// move is chosen and before it is applied — so visit counts equal
// repair moves, and an injected error leaves the chosen move unapplied
// for the caller to roll back. A stall just delays the cascade.
func (r *Resolver) repair() error {
	for n := len(r.pending); n > 0; n = len(r.pending) {
		c := r.pending[n-1]
		r.pending = r.pending[:n-1]
		r.inPending[c] = false
		so := r.serverOf[c]
		if so < 0 {
			continue // removed while pending (queues drain before ids recycle)
		}
		best, bestLoad := r.pickServer(c)
		if r.load[so]-bestLoad < 2 {
			continue
		}
		if err := r.failRepair.Err(); err != nil {
			return err
		}
		r.setServer(c, best)
		r.stats.Moves++
		r.dirtyServer(int(so))
		r.dirtyServer(int(best))
	}
	return nil
}

// finish runs the post-delta bookkeeping shared by every mutation.
func (r *Resolver) finish() error {
	r.stats.Deltas++
	if r.selfCheck {
		if err := r.Verify(); err != nil {
			return fmt.Errorf("assign: resolver self-check: %w", err)
		}
	}
	return nil
}

// AddCustomer inserts a customer adjacent to the given live server ids
// (ports left to right), assigns it to a least-loaded one, repairs, and
// returns the new customer's id.
func (r *Resolver) AddCustomer(servers []int32) (int, error) {
	r.begin()
	c, err := r.ov.AddCustomer(servers)
	if err != nil {
		return -1, err
	}
	r.recordOp(jAddCustomer, int32(c), -1, -1)
	r.growCustomers()
	r.seedRng(c)
	best, _ := r.pickServer(int32(c))
	r.setServer(int32(c), best)
	r.dirtyServer(int(best))
	if err := r.repair(); err != nil {
		return -1, r.rollback(err)
	}
	return c, r.finish()
}

// RemoveCustomer deletes customer c, releases its assignment, and
// repairs the hole its departure opened.
func (r *Resolver) RemoveCustomer(c int) error {
	if !r.ov.CustomerLive(c) {
		return fmt.Errorf("assign: resolver customer %d is not live", c)
	}
	r.begin()
	from := r.serverOf[c]
	r.recordOp(jRemoveCustomer, int32(c), -1, -1) // copies Adj(c); must precede the removal
	if err := r.ov.RemoveCustomer(c); err != nil {
		return err
	}
	r.setServer(int32(c), -1)
	r.dirtyServer(int(from))
	if err := r.repair(); err != nil {
		return r.rollback(err)
	}
	return r.finish()
}

// AddServer inserts an isolated server and returns its id. No repair
// runs — an edgeless server is invisible to every customer.
func (r *Resolver) AddServer() (int, error) {
	s := r.ov.AddServer()
	r.growServers()
	r.load[s] = 0
	return s, r.finish()
}

// AddEdge connects customer c to server s (appended as c's last port)
// and repairs — the new option can make c's current server look 2 worse.
func (r *Resolver) AddEdge(c, s int) error {
	r.begin()
	if err := r.ov.AddEdge(c, s); err != nil {
		return err
	}
	r.recordOp(jAddEdge, int32(c), int32(s), -1)
	r.push(int32(c))
	if err := r.repair(); err != nil {
		return r.rollback(err)
	}
	return r.finish()
}

// RemoveEdge disconnects customer c from server s. Removing c's last
// edge is an error (remove the customer instead); when c was assigned
// to s it is reassigned and the cascade repairs the rest. Removing a
// non-assigned edge needs no repair: shrinking an adjacency can only
// lower the customer's badness, and no load changes.
func (r *Resolver) RemoveEdge(c, s int) error {
	if r.ov.CustomerLive(c) && len(r.ov.Adj(c)) == 1 {
		return fmt.Errorf("assign: resolver cannot remove customer %d's last edge", c)
	}
	r.begin()
	from := int32(-1)
	port := int32(-1)
	if r.ov.CustomerLive(c) {
		from = r.serverOf[c]
		if r.jr.armed {
			for i, t := range r.ov.Adj(c) {
				if int(t) == s {
					port = int32(i)
					break
				}
			}
		}
	}
	if err := r.ov.RemoveEdge(c, s); err != nil {
		return err
	}
	r.recordOp(jRemoveEdge, int32(c), int32(s), port)
	if int(from) == s {
		best, _ := r.pickServer(int32(c))
		r.setServer(int32(c), best)
		r.dirtyServer(s)
		r.dirtyServer(int(best))
		if err := r.repair(); err != nil {
			return r.rollback(err)
		}
	}
	return r.finish()
}

// DrainServer removes server s entirely: every incident edge is
// deleted, customers assigned to s are reassigned, and the cascade
// repairs the displaced load. Errors without mutating when any incident
// customer has s as its only port (those customers must be removed or
// re-homed first).
func (r *Resolver) DrainServer(s int) error {
	if !r.ov.ServerLive(s) {
		return fmt.Errorf("assign: resolver server %d is not live", s)
	}
	inc := r.ov.Incident(s)
	for _, c := range inc {
		if len(r.ov.Adj(int(c))) < 2 {
			return fmt.Errorf("assign: resolver cannot drain server %d: customer %d has no other port", s, c)
		}
	}
	r.begin()
	r.scratch = append(r.scratch[:0], inc...) // inc aliases the arena
	for _, c := range r.scratch {
		port := int32(-1)
		if r.jr.armed {
			for i, t := range r.ov.Adj(int(c)) {
				if int(t) == s {
					port = int32(i)
					break
				}
			}
		}
		if err := r.ov.RemoveEdge(int(c), s); err != nil {
			return r.abort(err)
		}
		r.recordOp(jRemoveEdge, c, int32(s), port)
	}
	if err := r.ov.RemoveServer(s); err != nil {
		return r.abort(err)
	}
	r.recordOp(jRemoveServer, int32(s), -1, -1)
	for _, c := range r.scratch {
		if r.serverOf[c] != int32(s) {
			continue
		}
		best, _ := r.pickServer(c)
		r.setServer(c, best)
		r.dirtyServer(int(best))
	}
	if err := r.repair(); err != nil {
		return r.rollback(err)
	}
	return r.finish()
}

// FullSolve discards the current assignment and re-solves the live
// network from scratch on the Resolver's persistent session, replacing
// the assignment with the batch solver's. The entry point for callers
// that suspect drift, and the oracle the equivalence tests compare
// against.
func (r *Resolver) FullSolve() error {
	r.ov.BuildCSR(r.builder, &r.oc)
	res, err := SolveSharded(r.oc.Bipartite(), ShardedOptions{
		Tie:       r.tie,
		Seed:      r.seed + int64(r.stats.FullSolves)*1_000_003,
		Session:   r.sess,
		Workspace: r.gws,
	})
	if err != nil {
		return fmt.Errorf("assign: resolver full solve: %w", err)
	}
	for c := range r.serverOf {
		r.serverOf[c] = -1
	}
	for s := range r.load {
		r.load[s] = 0
	}
	for d, so := range res.ServerOf {
		s := r.oc.ServID[so]
		r.serverOf[r.oc.CustID[d]] = s
		r.load[s]++
	}
	r.stats.FullSolves++
	return nil
}

// Verify oracle-checks the Resolver's state: the pending queue is
// empty, dead customers hold no assignment, every live customer is
// assigned to an adjacent live server, cached loads match a recount,
// and every live customer's badness is at most 1 — the same stability
// predicate a from-scratch solve's result satisfies.
func (r *Resolver) Verify() error {
	if len(r.pending) > 0 {
		return fmt.Errorf("resolver left %d customers pending", len(r.pending))
	}
	for len(r.verifyLoad) < r.ov.ServerIDs() {
		r.verifyLoad = append(r.verifyLoad, 0)
	}
	clear(r.verifyLoad)
	for c := 0; c < r.ov.CustomerIDs(); c++ {
		so := r.serverOf[c]
		if !r.ov.CustomerLive(c) {
			if so >= 0 {
				return fmt.Errorf("dead customer %d still assigned to %d", c, so)
			}
			continue
		}
		if so < 0 {
			return fmt.Errorf("live customer %d unassigned", c)
		}
		if !r.ov.ServerLive(int(so)) {
			return fmt.Errorf("customer %d assigned to dead server %d", c, so)
		}
		found := false
		for _, s := range r.ov.Adj(c) {
			if s == so {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("customer %d assigned to non-adjacent server %d", c, so)
		}
		r.verifyLoad[so]++
	}
	for s := 0; s < r.ov.ServerIDs(); s++ {
		if !r.ov.ServerLive(s) {
			continue
		}
		if r.verifyLoad[s] != r.load[s] {
			return fmt.Errorf("load of server %d drifted: recomputed %d, cached %d", s, r.verifyLoad[s], r.load[s])
		}
	}
	for c := 0; c < r.ov.CustomerIDs(); c++ {
		if !r.ov.CustomerLive(c) {
			continue
		}
		min := int32(-1)
		for _, s := range r.ov.Adj(c) {
			if l := r.load[s]; min < 0 || l < min {
				min = l
			}
		}
		if b := r.load[r.serverOf[c]] - min; b > 1 {
			return fmt.Errorf("customer %d has badness %d", c, b)
		}
	}
	return nil
}
