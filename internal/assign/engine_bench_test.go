package assign

import (
	"math/rand"
	"sync"
	"testing"

	"tokendrop/internal/graph"
)

// Assignment engine benchmarks at the scales the load-balancing
// evaluations run at (10⁵–10⁶ customers). Both engines execute the same
// deterministic phase algorithm (first-port ties) on the same random
// customer/server network — the flat view is converted from the very
// graph the seed engine consumes, so the runs are bit-identical — and
// solve the assignment to stability. The rounds/s metric counts adaptive
// communication rounds of the whole run per wall-clock second; CHANGES.md
// records measured numbers. Run with
//
//	go test ./internal/assign -bench Assign -benchtime 1x
const benchCdeg = 3

var (
	benchMu  sync.Mutex
	benchBs  = map[int]*graph.Bipartite{}
	benchFbs = map[int]*graph.CSRBipartite{}
)

func benchNetwork(nl int) (*graph.Bipartite, *graph.CSRBipartite) {
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchBs[nl] == nil {
		rng := rand.New(rand.NewSource(42))
		benchBs[nl] = graph.MustBipartite(graph.RandomBipartite(nl, nl/4, benchCdeg, rng), nl)
		benchFbs[nl] = graph.NewCSRBipartiteFromBipartite(benchBs[nl])
	}
	return benchBs[nl], benchFbs[nl]
}

func benchShardedAssign(b *testing.B, nl, shards int) {
	_, fb := benchNetwork(nl)
	rounds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SolveSharded(fb, ShardedOptions{Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		rounds += res.Rounds
	}
	b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/s")
}

func benchSeedAssign(b *testing.B, nl int) {
	bb, _ := benchNetwork(nl)
	rounds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Solve(bb, Options{})
		if err != nil {
			b.Fatal(err)
		}
		rounds += res.Rounds
	}
	b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/s")
}

func BenchmarkAssignSharded100k(b *testing.B) { benchShardedAssign(b, 100_000, 0) }
func BenchmarkAssignSeed100k(b *testing.B)    { benchSeedAssign(b, 100_000) }
func BenchmarkAssignSharded1M(b *testing.B)   { benchShardedAssign(b, 1_000_000, 0) }
func BenchmarkAssignSeed1M(b *testing.B)      { benchSeedAssign(b, 1_000_000) }

// Multi-shard scaling of the 10⁶-customer run; the outcome is shard-count
// independent, only the wall clock changes.
func BenchmarkAssignShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "shards1", 2: "shards2", 4: "shards4", 8: "shards8"}[shards],
			func(b *testing.B) { benchShardedAssign(b, 1_000_000, shards) })
	}
}
