package assign

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tokendrop/internal/graph"
)

func bip(t *testing.T, g *graph.Graph, nl int) *graph.Bipartite {
	t.Helper()
	b, err := graph.NewBipartite(g, nl)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func solve(t *testing.T, b *graph.Bipartite, opt Options) *Result {
	t.Helper()
	opt.CheckInvariants = true
	res, err := Solve(b, opt)
	if err != nil {
		t.Fatalf("assign.Solve: %v", err)
	}
	if !res.Assignment.Stable() {
		t.Fatal("assignment is not stable")
	}
	if err := res.Assignment.CheckLoads(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSolveTinyNetworks(t *testing.T) {
	// One customer, one server.
	g := graph.New(2)
	g.AddEdge(0, 1)
	solve(t, bip(t, g, 1), Options{})

	// Two customers sharing one of two servers.
	g2 := graph.New(4)
	g2.AddEdge(0, 2)
	g2.AddEdge(0, 3)
	g2.AddEdge(1, 2)
	g2.AddEdge(1, 3)
	res := solve(t, bip(t, g2, 2), Options{})
	// Balanced: one customer per server.
	if res.Assignment.Load(2) != 1 || res.Assignment.Load(3) != 1 {
		t.Fatalf("loads %d/%d, want 1/1", res.Assignment.Load(2), res.Assignment.Load(3))
	}
}

func TestSolveCompleteBipartite(t *testing.T) {
	b := bip(t, graph.CompleteBipartite(9, 3), 9)
	res := solve(t, b, Options{})
	// Perfectly balanceable: every server should carry exactly 3.
	for s := 9; s < 12; s++ {
		if res.Assignment.Load(s) != 3 {
			t.Fatalf("server %d load %d, want 3", s, res.Assignment.Load(s))
		}
	}
}

func TestDegreeOneCustomers(t *testing.T) {
	// Star of customers around one server plus a free server nobody can
	// reach: degree-1 customers are always happy wherever they must go.
	g := graph.New(5)
	g.AddEdge(0, 3)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	// server 4 isolated
	res := solve(t, bip(t, g, 3), Options{})
	if res.Assignment.Load(3) != 3 {
		t.Fatal("forced server should carry all customers")
	}
}

func TestCustomerWithoutServerRejected(t *testing.T) {
	g := graph.New(2) // customer 0 isolated, server 1 isolated
	b := bip(t, g, 1)
	if _, err := Solve(b, Options{}); err == nil {
		t.Fatal("isolated customer accepted")
	}
}

func TestSolveRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 12; i++ {
		nl, nr := 5+rng.Intn(20), 3+rng.Intn(10)
		c := 1 + rng.Intn(min(nr, 5))
		g := graph.RandomBipartite(nl, nr, c, rng)
		for _, random := range []bool{false, true} {
			solve(t, bip(t, g, nl), Options{RandomTies: random, Seed: int64(i)})
		}
	}
}

func TestLemma72PhaseBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		nl, nr := 12+rng.Intn(12), 4+rng.Intn(6)
		c := 2 + rng.Intn(3)
		if c > nr {
			c = nr
		}
		g := graph.RandomBipartite(nl, nr, c, rng)
		b := bip(t, g, nl)
		res := solve(t, b, Options{Seed: int64(i)})
		bound := b.MaxCustomerDegree()*b.MaxServerDegree() + 1
		if res.Phases > bound {
			t.Fatalf("phases %d above Lemma 7.2 bound %d", res.Phases, bound)
		}
	}
}

func TestBadnessInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomBipartite(30, 8, 3, rng)
	res := solve(t, bip(t, g, 30), Options{Seed: 5})
	for _, rec := range res.PhaseLog {
		if rec.MaxBadness > 1 {
			t.Fatalf("phase %d ended with badness %d", rec.Phase, rec.MaxBadness)
		}
		if rec.Proposals > 0 && rec.Accepted == 0 {
			t.Fatalf("phase %d made no progress", rec.Phase)
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.RandomBipartite(20, 6, 3, rng)
	b := bip(t, g, 20)
	a := solve(t, b, Options{Seed: 99})
	bb := solve(t, b, Options{Seed: 99})
	for c := 0; c < 20; c++ {
		if a.Assignment.ServerOf[c] != bb.Assignment.ServerOf[c] {
			t.Fatal("same seed, different assignment")
		}
	}
	if a.Rounds != bb.Rounds {
		t.Fatal("same seed, different rounds")
	}
}

func TestStableOrientationAsDegree2Assignment(t *testing.T) {
	// The stable orientation problem is the special case with degree-2
	// customers: model each edge of a graph as a customer connected to
	// its two endpoint "servers".
	base := graph.Cycle(7)
	nl := base.M()
	g := graph.New(nl + base.N())
	for id, e := range base.Edges() {
		g.AddEdge(id, nl+e.U)
		g.AddEdge(id, nl+e.V)
	}
	res := solve(t, bip(t, g, nl), Options{})
	// On a cycle, the stable loads are 0, 1, or 2 with every customer
	// happy; total load = number of edges.
	total := 0
	for s := nl; s < g.N(); s++ {
		total += res.Assignment.Load(s)
	}
	if total != base.M() {
		t.Fatal("load total mismatch")
	}
}

// Property: Solve yields stable assignments within the phase budget.
func TestSolveProperty(t *testing.T) {
	check := func(seed int64, nlRaw, nrRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := int(nlRaw%20) + 2
		nr := int(nrRaw%8) + 2
		c := int(cRaw)%min(nr, 4) + 1
		g := graph.RandomBipartite(nl, nr, c, rng)
		b, err := graph.NewBipartite(g, nl)
		if err != nil {
			return false
		}
		res, err := Solve(b, Options{Seed: seed, RandomTies: seed%2 == 0, CheckInvariants: true})
		if err != nil {
			return false
		}
		return res.Assignment.Stable()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
