package assign

import (
	"math/rand"
	"reflect"
	"testing"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
	"tokendrop/internal/hypergame"
	"tokendrop/internal/local"
)

// TestSolveScratchMatchesFresh solves a varied sequence of networks
// (growing and shrinking, both tie rules) through one scratch + session +
// workspace and demands exactly the fresh-solve results, including the
// new message accounting.
func TestSolveScratchMatchesFresh(t *testing.T) {
	sess := local.NewSession(3)
	defer sess.Close()
	gws := hypergame.NewWorkspace()
	sc := new(SolveScratch)
	rng := rand.New(rand.NewSource(21))
	sizes := []struct{ nl, nr, c int }{{40, 10, 3}, {120, 25, 4}, {30, 8, 2}, {200, 30, 3}, {60, 12, 5}}
	for i, sz := range sizes {
		tie := core.TieFirstPort
		if i%2 == 1 {
			tie = core.TieRandom
		}
		g := graph.RandomBipartite(sz.nl, sz.nr, sz.c, rng)
		fb := graph.NewCSRBipartiteFromBipartite(graph.MustBipartite(g, sz.nl))
		fresh, err := SolveSharded(fb, ShardedOptions{Tie: tie, Seed: int64(i), Shards: 2, CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		reused, err := SolveSharded(fb, ShardedOptions{
			Tie: tie, Seed: int64(i), CheckInvariants: true,
			Session: sess, Workspace: gws, Scratch: sc,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fresh.ServerOf, reused.ServerOf) || !reflect.DeepEqual(fresh.Load, reused.Load) {
			t.Fatalf("instance %d: scratch solve diverged from fresh solve", i)
		}
		if fresh.Phases != reused.Phases || fresh.Rounds != reused.Rounds ||
			fresh.Messages != reused.Messages || !reflect.DeepEqual(fresh.PhaseLog, reused.PhaseLog) {
			t.Fatalf("instance %d: accounting diverged: fresh {p=%d r=%d m=%d}, reused {p=%d r=%d m=%d}",
				i, fresh.Phases, fresh.Rounds, fresh.Messages, reused.Phases, reused.Rounds, reused.Messages)
		}
		if fresh.Messages <= int64(fresh.Rounds) {
			t.Fatalf("instance %d: implausible message count %d for %d rounds", i, fresh.Messages, fresh.Rounds)
		}
	}
}

// TestSolveShardedZeroAllocWarmed pins the scoreboard contract the arena
// relies on: a warmed scratch + session + workspace repeat solve of the
// full batch solver performs no heap allocations, under both tie rules.
func TestSolveShardedZeroAllocWarmed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomBipartite(150, 30, 3, rng)
	fb := graph.NewCSRBipartiteFromBipartite(graph.MustBipartite(g, 150))
	for _, tie := range []core.TieBreak{core.TieFirstPort, core.TieRandom} {
		sess := local.NewSession(2)
		gws := hypergame.NewWorkspace()
		sc := new(SolveScratch)
		run := func() {
			if _, err := SolveSharded(fb, ShardedOptions{
				Tie: tie, Seed: 9, Session: sess, Workspace: gws, Scratch: sc,
			}); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm: grow the scratch, session, and workspace arrays once
		if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
			t.Errorf("tie=%v: warmed SolveSharded allocated %.1f objects per run; want 0", tie, allocs)
		}
		sess.Close()
	}
}
