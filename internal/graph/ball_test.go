package graph

import (
	"math/rand"
	"testing"
)

func TestExtractBall(t *testing.T) {
	g := Path(7)
	b := ExtractBall(g, 3, 2)
	if b.G.N() != 5 { // vertices 1..5
		t.Fatalf("ball size %d, want 5", b.G.N())
	}
	if !b.IsTree() {
		t.Fatal("path ball must be a tree")
	}
	for i, v := range b.Orig {
		if b.Dist[i] != abs(v-3) {
			t.Fatalf("dist of %d = %d", v, b.Dist[i])
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestBallWithCycle(t *testing.T) {
	b := ExtractBall(Cycle(5), 0, 2)
	if b.G.N() != 5 {
		t.Fatal("radius-2 ball of C5 is the whole cycle")
	}
	if b.IsTree() {
		t.Fatal("whole C5 is not a tree")
	}
}

func TestCanonicalTreeIsomorphism(t *testing.T) {
	// Two different spots in a large cycle look identical at radius 2.
	g := Cycle(20)
	iso, err := BallsIsomorphic(g, 3, g, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !iso {
		t.Fatal("cycle balls must be isomorphic")
	}
	// A path endpoint looks different from an interior vertex.
	p := Path(9)
	iso, err = BallsIsomorphic(p, 0, p, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if iso {
		t.Fatal("endpoint and interior balls must differ")
	}
}

func TestTheorem63Indistinguishability(t *testing.T) {
	// The heart of the Section 6 lower bound: a vertex of a Δ-regular
	// high-girth graph and an interior vertex of a perfect Δ-ary tree have
	// isomorphic t-radius views when t is below both half the girth and
	// the distance to the tree's boundary.
	const d, girth = 3, 8
	rng := rand.New(rand.NewSource(42))
	reg, err := RandomRegularGirth(120, d, girth, 5000, rng)
	if err != nil {
		t.Skipf("no high-girth sample: %v", err)
	}
	tree, depths := PerfectDAry(d, 7)
	// Pick a tree vertex far from both root and leaves.
	pick := -1
	for v, dep := range depths {
		if dep == 3 {
			pick = v
			break
		}
	}
	if pick < 0 {
		t.Fatal("no interior vertex found")
	}
	const radius = 3 // < girth/2 and within depth margin
	iso, err := BallsIsomorphic(reg, 0, tree, pick, radius)
	if err != nil {
		t.Fatal(err)
	}
	if !iso {
		t.Fatal("regular-graph ball and interior tree ball should be isomorphic")
	}
}

func TestHeightOnStarAndPath(t *testing.T) {
	h := Height(Star(4))
	if h[0] != 1 {
		t.Fatalf("hub height %d", h[0])
	}
	for v := 1; v <= 4; v++ {
		if h[v] != 0 {
			t.Fatal("leaf height must be 0")
		}
	}
	hp := Height(Path(5))
	want := []int{0, 1, 2, 1, 0}
	for v := range want {
		if hp[v] != want[v] {
			t.Fatalf("path heights %v, want %v", hp, want)
		}
	}
}

func TestHeightPanicsOnNonTree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on cyclic input")
		}
	}()
	Height(Cycle(4))
}

func TestBallsIsomorphicErrorOnCyclicBall(t *testing.T) {
	if _, err := BallsIsomorphic(Cycle(4), 0, Path(9), 4, 2); err == nil {
		t.Fatal("cyclic ball should be rejected")
	}
}
