package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph on n vertices: 0-1-2-…-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs at least 3 vertices")
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	g.SortAdjacency()
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Star returns the star graph with one hub (vertex 0) and leaves 1..leaves.
func Star(leaves int) *Graph {
	g := New(leaves + 1)
	for v := 1; v <= leaves; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// Grid2D returns the rows×cols grid graph. Vertex (r, c) has identifier
// r*cols + c.
func Grid2D(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g.SortAdjacency()
	return g
}

// Torus2D returns the rows×cols torus (grid with wraparound). Both
// dimensions must be at least 3 to keep the graph simple.
func Torus2D(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: torus dimensions must be >= 3")
	}
	g := New(rows * cols)
	id := func(r, c int) int { return (r%rows)*cols + (c % cols) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, c+1))
			g.AddEdge(id(r, c), id(r+1, c))
		}
	}
	g.SortAdjacency()
	return g
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on the left side,
// a..a+b-1 on the right side.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			g.AddEdge(u, a+v)
		}
	}
	return g
}

// PerfectDAry returns a perfect d-ary tree in the sense of Section 6 of the
// paper: a tree where every non-leaf vertex has degree exactly d and all
// leaves are at the same depth. The root (vertex 0) therefore has d
// children and every internal non-root vertex has d-1 children. depth is
// the number of edges on a root-to-leaf path; depth 0 yields K_1.
//
// The second return value gives each vertex's depth (distance from root).
func PerfectDAry(d, depth int) (*Graph, []int) {
	if d < 2 {
		panic("graph: perfect d-ary tree needs d >= 2")
	}
	if depth < 0 {
		panic("graph: negative depth")
	}
	g := New(1)
	depths := []int{0}
	frontier := []int{0}
	for lvl := 1; lvl <= depth; lvl++ {
		var next []int
		for _, parent := range frontier {
			kids := d - 1
			if parent == 0 {
				kids = d
			}
			for k := 0; k < kids; k++ {
				c := g.AddVertex()
				depths = append(depths, lvl)
				g.AddEdge(parent, c)
				next = append(next, c)
			}
		}
		frontier = next
	}
	g.SortAdjacency()
	return g, depths
}

// Caterpillar returns a "propagation chain" graph from Section 1.1's
// motivation: a path of length spine where every spine vertex additionally
// carries legs pendant leaves. A single flip at one end of an arbitrary
// orientation can force a chain of corrections along the whole spine, which
// is the worst case for the centralized sequential algorithm.
func Caterpillar(spine, legs int) *Graph {
	g := New(spine)
	for v := 0; v+1 < spine; v++ {
		g.AddEdge(v, v+1)
	}
	for v := 0; v < spine; v++ {
		for l := 0; l < legs; l++ {
			leaf := g.AddVertex()
			g.AddEdge(v, leaf)
		}
	}
	g.SortAdjacency()
	return g
}

// RandomGNM returns a uniformly random simple graph with n vertices and m
// edges, drawn without replacement from all vertex pairs.
func RandomGNM(n, m int, rng *rand.Rand) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: cannot place %d edges in a simple graph on %d vertices", m, n))
	}
	g := New(n)
	// Rejection sampling is fine at the densities the experiments use
	// (m far below maxM); fall back to explicit enumeration when dense.
	if m*3 < maxM*2 {
		for g.M() < m {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
	} else {
		all := make([]Edge, 0, maxM)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				all = append(all, Edge{U: u, V: v})
			}
		}
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		for _, e := range all[:m] {
			g.AddEdge(e.U, e.V)
		}
	}
	g.SortAdjacency()
	return g
}

// RandomRegular returns a random d-regular simple graph on n vertices via
// the pairing (configuration) model, repairing self-loops and duplicate
// edges with random double-edge swaps (Steger–Wormald style) so the method
// converges even at high density. Very dense requests (d >= n/2) are
// served by generating the (n-1-d)-regular complement. n*d must be even
// and d < n.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if n*d%2 != 0 {
		panic("graph: n*d must be even for a d-regular graph")
	}
	if d >= n {
		panic("graph: need d < n for a simple d-regular graph")
	}
	if d == 0 {
		return New(n)
	}
	if d >= (n+1)/2 && n >= 3 {
		return complement(RandomRegular(n, n-1-d, rng))
	}
	stubs := make([]int, 0, n*d)
	for restart := 0; restart < 100; restart++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for k := 0; k < d; k++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		pairs := make([][2]int, 0, len(stubs)/2)
		count := make(map[Edge]int, len(stubs)/2)
		for i := 0; i < len(stubs); i += 2 {
			pairs = append(pairs, [2]int{stubs[i], stubs[i+1]})
			if stubs[i] != stubs[i+1] {
				count[NormEdge(stubs[i], stubs[i+1])]++
			}
		}
		if repairPairing(pairs, count, rng) {
			g := New(n)
			for _, p := range pairs {
				g.AddEdge(p[0], p[1])
			}
			g.SortAdjacency()
			return g
		}
	}
	panic("graph: random regular generation failed to converge")
}

// repairPairing removes self-loops and duplicate pairs by random double
// swaps. It returns true once the pairing is simple, or false if it gave
// up (the caller restarts from a fresh shuffle).
func repairPairing(pairs [][2]int, count map[Edge]int, rng *rand.Rand) bool {
	isBad := func(p [2]int) bool {
		return p[0] == p[1] || count[NormEdge(p[0], p[1])] > 1
	}
	budget := 200 * len(pairs)
	for sweep := 0; sweep < 100; sweep++ {
		anyBad := false
		for i := range pairs {
			for isBad(pairs[i]) {
				anyBad = true
				if budget == 0 {
					return false
				}
				budget--
				trySwapPair(pairs, count, i, rng.Intn(len(pairs)), rng)
			}
		}
		if !anyBad {
			return true
		}
	}
	return false
}

// trySwapPair attempts the double swap (a,b),(c,e) -> (a,c),(b,e) (with a
// random orientation of the second pair) and applies it only if both new
// pairs are simple and distinct.
func trySwapPair(pairs [][2]int, count map[Edge]int, i, j int, rng *rand.Rand) bool {
	if i == j {
		return false
	}
	a, b := pairs[i][0], pairs[i][1]
	c, e := pairs[j][0], pairs[j][1]
	if rng.Intn(2) == 0 {
		c, e = e, c
	}
	if a == c || b == e {
		return false
	}
	dec := func(x, y int) {
		if x != y {
			count[NormEdge(x, y)]--
		}
	}
	inc := func(x, y int) {
		if x != y {
			count[NormEdge(x, y)]++
		}
	}
	dec(a, b)
	dec(c, e)
	ok := count[NormEdge(a, c)] == 0 && count[NormEdge(b, e)] == 0 && NormEdge(a, c) != NormEdge(b, e)
	if !ok {
		inc(a, b)
		inc(c, e)
		return false
	}
	inc(a, c)
	inc(b, e)
	pairs[i] = [2]int{a, c}
	pairs[j] = [2]int{b, e}
	return true
}

// complement returns the complement graph of g (no self-loops).
func complement(g *Graph) *Graph {
	n := g.N()
	out := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				out.AddEdge(u, v)
			}
		}
	}
	out.SortAdjacency()
	return out
}

// RandomRegularGirth returns a random d-regular graph with girth at least
// minGirth, by repeated sampling. The caller is responsible for choosing n
// large enough that such graphs are not vanishingly rare (as a rule of
// thumb n should exceed (d-1)^(minGirth/2)); the function gives up with an
// error after maxAttempts samples rather than spinning forever.
func RandomRegularGirth(n, d, minGirth, maxAttempts int, rng *rand.Rand) (*Graph, error) {
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g := RandomRegular(n, d, rng)
		if girth := g.Girth(); girth < 0 || girth >= minGirth {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no %d-regular graph on %d vertices with girth >= %d found in %d attempts",
		d, n, minGirth, maxAttempts)
}

// CirculantGirth returns a deterministic d-regular-ish high girth structure:
// the cycle power graph C_n(1, s, s^2, ...) is NOT high girth, so instead we
// expose the standard explicit family used in the lower-bound experiments:
// the incidence graph of a projective-plane-free construction is overkill,
// and the experiments only need modest girth at modest degree — see
// RandomRegularGirth. CirculantGirth therefore returns the plain cycle when
// d == 2 (girth n) and falls back to random search otherwise.
func CirculantGirth(n, d, minGirth int, rng *rand.Rand) (*Graph, error) {
	if d == 2 {
		if n < minGirth {
			return nil, fmt.Errorf("graph: cycle on %d vertices has girth %d < %d", n, n, minGirth)
		}
		return Cycle(n), nil
	}
	return RandomRegularGirth(n, d, minGirth, 2000, rng)
}

// RandomBipartite returns a random bipartite graph with left vertices
// 0..nl-1 ("customers") and right vertices nl..nl+nr-1 ("servers"), where
// every left vertex picks exactly c distinct right neighbors uniformly at
// random. c must not exceed nr.
func RandomBipartite(nl, nr, c int, rng *rand.Rand) *Graph {
	if c > nr {
		panic("graph: customer degree exceeds server count")
	}
	g := New(nl + nr)
	perm := make([]int, nr)
	for u := 0; u < nl; u++ {
		for i := range perm {
			perm[i] = i
		}
		// Partial Fisher–Yates: draw c distinct servers.
		for i := 0; i < c; i++ {
			j := i + rng.Intn(nr-i)
			perm[i], perm[j] = perm[j], perm[i]
			g.AddEdge(u, nl+perm[i])
		}
	}
	g.SortAdjacency()
	return g
}

// RandomBipartiteRegular returns a bipartite graph where every left vertex
// has degree c and every right vertex has degree s (so nl*c must equal
// nr*s), built by the configuration model with swap repair: duplicate
// (customer, server) pairs are eliminated by exchanging the left entries
// of two random pairs, which preserves both degree sequences and converges
// even when the degrees approach the side sizes.
func RandomBipartiteRegular(nl, nr, c, s int, rng *rand.Rand) *Graph {
	if nl*c != nr*s {
		panic(fmt.Sprintf("graph: degree sums differ: %d*%d != %d*%d", nl, c, nr, s))
	}
	if c > nr || s > nl {
		panic("graph: bipartite degrees exceed the opposite side")
	}
	total := nl * c
	left := make([]int, 0, total)
	for restart := 0; restart < 100; restart++ {
		left = left[:0]
		for v := 0; v < nl; v++ {
			for k := 0; k < c; k++ {
				left = append(left, v)
			}
		}
		rng.Shuffle(len(left), func(i, j int) { left[i], left[j] = left[j], left[i] })
		// Slot i is wired to server nl + i/s; only left entries move.
		server := func(i int) int { return nl + i/s }
		count := make(map[Edge]int, total)
		for i, u := range left {
			count[Edge{U: u, V: server(i)}]++
		}
		isBad := func(i int) bool { return count[Edge{U: left[i], V: server(i)}] > 1 }
		budget := 200 * total
		ok := true
		for i := 0; i < total && ok; i++ {
			for isBad(i) {
				if budget == 0 {
					ok = false
					break
				}
				budget--
				j := rng.Intn(total)
				if j == i {
					continue
				}
				// Exchange left[i] and left[j] if both resulting pairs are
				// fresh.
				a, b := left[i], left[j]
				if a == b {
					continue
				}
				count[Edge{U: a, V: server(i)}]--
				count[Edge{U: b, V: server(j)}]--
				if count[Edge{U: a, V: server(j)}] == 0 && count[Edge{U: b, V: server(i)}] == 0 {
					count[Edge{U: a, V: server(j)}]++
					count[Edge{U: b, V: server(i)}]++
					left[i], left[j] = b, a
				} else {
					count[Edge{U: a, V: server(i)}]++
					count[Edge{U: b, V: server(j)}]++
				}
			}
		}
		if !ok {
			continue
		}
		g := New(nl + nr)
		for i, u := range left {
			g.AddEdge(u, server(i))
		}
		g.SortAdjacency()
		return g
	}
	panic("graph: random bipartite regular generation failed to converge")
}

// Disjoint returns the disjoint union of the given graphs; the vertices of
// each successive graph are shifted past those of the previous ones.
func Disjoint(gs ...*Graph) *Graph {
	total := 0
	for _, g := range gs {
		total += g.N()
	}
	out := New(total)
	base := 0
	for _, g := range gs {
		for _, e := range g.Edges() {
			out.AddEdge(base+e.U, base+e.V)
		}
		base += g.N()
	}
	out.SortAdjacency()
	return out
}
