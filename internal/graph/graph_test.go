package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAddEdge(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("fresh graph: n=%d m=%d", g.N(), g.M())
	}
	id := g.AddEdge(2, 0)
	if id != 0 {
		t.Fatalf("first edge id = %d", id)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("edge not visible from both endpoints")
	}
	if g.Edge(id) != (Edge{U: 0, V: 2}) {
		t.Fatalf("edge not normalized: %v", g.Edge(id))
	}
	if g.Degree(0) != 1 || g.Degree(2) != 1 || g.Degree(1) != 0 {
		t.Fatal("degrees wrong after AddEdge")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*Graph)
	}{
		{"self-loop", func(g *Graph) { g.AddEdge(1, 1) }},
		{"duplicate", func(g *Graph) { g.AddEdge(0, 1); g.AddEdge(1, 0) }},
		{"out-of-range", func(g *Graph) { g.AddEdge(0, 9) }},
		{"negative", func(g *Graph) { g.AddEdge(-1, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn(New(3))
		})
	}
}

func TestEdgeOther(t *testing.T) {
	e := NormEdge(7, 3)
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other is wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	e.Other(5)
}

func TestEdgeID(t *testing.T) {
	g := Path(5)
	id, ok := g.EdgeID(2, 3)
	if !ok {
		t.Fatal("edge {2,3} missing")
	}
	if g.Edge(id) != NormEdge(2, 3) {
		t.Fatal("EdgeID returned wrong edge")
	}
	if _, ok := g.EdgeID(0, 4); ok {
		t.Fatal("phantom edge")
	}
	if _, ok := g.EdgeID(-1, 2); ok {
		t.Fatal("negative vertex lookup succeeded")
	}
}

func TestAddVertex(t *testing.T) {
	g := New(1)
	v := g.AddVertex()
	if v != 1 || g.N() != 2 {
		t.Fatalf("AddVertex: v=%d n=%d", v, g.N())
	}
	g.AddEdge(0, v)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Cycle(5)
	h := g.Clone()
	h.AddVertex()
	h.AddEdge(0, 5)
	if g.N() != 5 || g.M() != 5 {
		t.Fatal("mutating the clone changed the original")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSortAdjacencyAndPorts(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 0)
	g.AddEdge(1, 0)
	g.AddEdge(2, 0)
	g.SortAdjacency()
	want := []int{1, 2, 3}
	got := g.Neighbors(0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbors of 0 = %v, want %v", got, want)
		}
	}
	// Arc edge ids must still agree with the edge table after sorting.
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDistances(t *testing.T) {
	g := Grid2D(3, 4)
	dist := g.BFS(0)
	if dist[0] != 0 {
		t.Fatal("dist to self != 0")
	}
	// Manhattan distance in a grid.
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if dist[r*4+c] != r+c {
				t.Fatalf("dist[(%d,%d)] = %d, want %d", r, c, dist[r*4+c], r+c)
			}
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := Disjoint(Path(3), Path(2))
	dist := g.BFS(0)
	if dist[3] != -1 || dist[4] != -1 {
		t.Fatal("vertices of the other component should be unreachable")
	}
	if g.IsConnected() {
		t.Fatal("disjoint union reported connected")
	}
	if !Path(4).IsConnected() {
		t.Fatal("path reported disconnected")
	}
}

func TestGirth(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"tree", Path(6), -1},
		{"triangle", Complete(3), 3},
		{"C5", Cycle(5), 5},
		{"K4", Complete(4), 3},
		{"grid", Grid2D(3, 3), 4},
		{"K33", CompleteBipartite(3, 3), 4},
	}
	for _, tc := range cases {
		if got := tc.g.Girth(); got != tc.want {
			t.Errorf("girth(%s) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestBipartition(t *testing.T) {
	side, ok := Grid2D(4, 4).Bipartition()
	if !ok {
		t.Fatal("grid is bipartite")
	}
	g := Grid2D(4, 4)
	for _, e := range g.Edges() {
		if side[e.U] == side[e.V] {
			t.Fatal("2-coloring has a monochromatic edge")
		}
	}
	if _, ok := Cycle(5).Bipartition(); ok {
		t.Fatal("odd cycle reported bipartite")
	}
}

func TestMaxDegreeAndRegular(t *testing.T) {
	if Complete(5).MaxDegree() != 4 {
		t.Fatal("K5 max degree")
	}
	if !Cycle(7).IsRegular(2) {
		t.Fatal("cycle should be 2-regular")
	}
	if Path(4).IsRegular(2) {
		t.Fatal("path is not 2-regular")
	}
	if New(3).MaxDegree() != 0 {
		t.Fatal("edgeless graph max degree")
	}
}

// Property: for random graphs, Validate always passes, the degree sum is
// 2m, and every edge is seen from both endpoints.
func TestRandomGraphInvariants(t *testing.T) {
	check := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 2
		maxM := n * (n - 1) / 2
		m := int(mRaw) % (maxM + 1)
		g := RandomGNM(n, m, rand.New(rand.NewSource(seed)))
		if g.M() != m {
			return false
		}
		if err := g.Validate(); err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
