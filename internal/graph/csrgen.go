package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// This file holds generators that build directly into CSR form, for
// workloads at scales (10⁶+ vertices) where assembling the pointer-based
// Graph first would dominate the run. They use stamp-based rejection
// sampling instead of the O(width) partial Fisher–Yates of the small
// generators, so the cost per vertex is O(degree) regardless of layer
// width.

// CSRRandomLayered builds a random layered graph: levels+1 layers of width
// vertices each, vertex i of layer ℓ is ℓ*width+i, and every vertex on
// layer ℓ ≥ 1 connects to deg distinct uniformly random vertices on layer
// ℓ-1. Every vertex above the bottom layer therefore has downward degree
// exactly deg (a random Δ-regular-below layered graph); upward degrees are
// binomial.
func CSRRandomLayered(levels, width, deg int, rng *rand.Rand) *CSR {
	if levels < 0 || width < 1 {
		panic(fmt.Sprintf("graph: bad layered shape levels=%d width=%d", levels, width))
	}
	if deg > width {
		panic("graph: layered degree exceeds layer width")
	}
	n := (levels + 1) * width
	b := NewCSRBuilder(n, levels*width*deg)
	if 2*deg >= width {
		// Dense picks: partial Fisher–Yates, O(width) per vertex.
		perm := make([]int, width)
		for lvl := 1; lvl <= levels; lvl++ {
			base := lvl * width
			below := (lvl - 1) * width
			for i := 0; i < width; i++ {
				for k := range perm {
					perm[k] = k
				}
				for k := 0; k < deg; k++ {
					j := k + rng.Intn(width-k)
					perm[k], perm[j] = perm[j], perm[k]
					b.AddEdge(base+i, below+perm[k])
				}
			}
		}
		return b.Build()
	}
	stamp := make([]int32, width)
	gen := int32(0)
	for lvl := 1; lvl <= levels; lvl++ {
		base := lvl * width
		below := (lvl - 1) * width
		for i := 0; i < width; i++ {
			gen++
			for k := 0; k < deg; k++ {
				j := rng.Intn(width)
				for stamp[j] == gen {
					j = rng.Intn(width)
				}
				stamp[j] = gen
				b.AddEdge(base+i, below+j)
			}
		}
	}
	return b.Build()
}

// CSRLayeredGrid builds a diagonal lattice of rows layers × cols columns:
// vertex (r, c) is r*cols+c and connects to (r+1, c) and (r+1, (c+1) mod
// cols). Every edge joins adjacent rows, so with level(v) = row(v) the
// lattice is a valid token dropping arena of height rows-1 with Δ = 4; the
// wraparound keeps interior degrees uniform. cols must be at least 2.
func CSRLayeredGrid(rows, cols int) *CSR {
	if rows < 1 || cols < 2 {
		panic(fmt.Sprintf("graph: bad grid shape %dx%d (needs rows >= 1, cols >= 2)", rows, cols))
	}
	b := NewCSRBuilder(rows*cols, 2*(rows-1)*cols)
	for r := 0; r+1 < rows; r++ {
		base := r * cols
		up := (r + 1) * cols
		for c := 0; c < cols; c++ {
			b.AddEdge(up+c, base+c)
			b.AddEdge(up+c, base+(c+1)%cols)
		}
	}
	return b.Build()
}

// CSRRandomRegular builds a random d-regular simple graph on n vertices
// directly in CSR form — the orientation-workload counterpart of the
// pointer-based RandomRegular, sized for 10⁶+ vertices. It runs the pairing
// (configuration) model over a flat stub array: stubs are shuffled and
// paired in order, and a pair that would form a self-loop or duplicate
// edge is rejected by re-drawing its second stub from the unpaired tail
// (the sparse-regime analogue of the Steger–Wormald repair swaps). If the
// tail runs out of compatible stubs — vanishingly rare for d ≪ n — the
// whole shuffle restarts. n*d must be even and 2*d must be below n (the
// dense regime belongs to the pointer generator and its complement trick).
func CSRRandomRegular(n, d int, rng *rand.Rand) *CSR {
	if n*d%2 != 0 {
		panic("graph: n*d must be even for a d-regular graph")
	}
	if d < 0 || (d > 0 && 2*d >= n) {
		panic(fmt.Sprintf("graph: CSRRandomRegular needs 0 <= 2d < n, got n=%d d=%d", n, d))
	}
	if d == 0 {
		return NewCSRBuilder(n, 0).Build()
	}
	stubs := make([]int32, n*d)
	seen := make(map[int64]bool, n*d/2)
	for restart := 0; restart < 100; restart++ {
		for i := range stubs {
			stubs[i] = int32(i / d)
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		clear(seen)
		b := NewCSRBuilder(n, n*d/2)
		ok := true
		for i := 0; ok && i < len(stubs); i += 2 {
			// Re-draw the partner of stubs[i] until the pair is simple; each
			// swap keeps the remaining tail a uniform multiset.
			const tries = 64
			t := 0
			for ; t < tries; t++ {
				u, v := stubs[i], stubs[i+1]
				if u > v {
					u, v = v, u
				}
				key := int64(u)<<32 | int64(v)
				if u != v && !seen[key] {
					seen[key] = true
					b.AddEdge(int(u), int(v))
					break
				}
				if i+2 >= len(stubs) {
					t = tries
					break
				}
				j := i + 1 + rng.Intn(len(stubs)-i-1)
				stubs[i+1], stubs[j] = stubs[j], stubs[i+1]
			}
			if t == tries {
				ok = false
			}
		}
		if ok {
			return b.Build()
		}
	}
	panic("graph: CSR random regular generation failed to converge")
}

// CSRPowerLaw builds a general (non-bipartite) power-law graph on n
// vertices in CSR form: every vertex draws a target degree from a
// truncated power law P(d) ∝ d^(-alpha) on 1..maxDeg and attaches to that
// many distinct uniformly random other vertices, with stamp-based
// rejection for repeats within a vertex's draw and a packed-edge set
// rejecting the (rare, for maxDeg ≪ n) duplicates across draws. Realized
// degrees exceed the drawn ones by the edges a vertex receives, exactly
// like the skewed-demand workloads of the load-balancing evaluations —
// a few hubs, a heavy tail of near-singletons. maxDeg must be below n.
func CSRPowerLaw(n int, alpha float64, maxDeg int, rng *rand.Rand) *CSR {
	if n < 2 {
		panic(fmt.Sprintf("graph: CSRPowerLaw needs n >= 2, got %d", n))
	}
	if maxDeg < 1 || maxDeg >= n {
		panic(fmt.Sprintf("graph: maxDeg=%d out of range (n=%d)", maxDeg, n))
	}
	cdf := make([]float64, maxDeg)
	sum := 0.0
	for d := 1; d <= maxDeg; d++ {
		sum += math.Pow(float64(d), -alpha)
		cdf[d-1] = sum
	}
	drawDeg := func() int {
		x := rng.Float64() * sum
		lo, hi := 0, maxDeg-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo + 1
	}
	b := NewCSRBuilder(n, n*2)
	seen := make(map[int64]bool, n*2)
	stamp := make([]int32, n)
	for u := 0; u < n; u++ {
		d := drawDeg()
		stamp[u] = int32(u) + 1 // never attach to self
		// Rejection budget: a vertex whose neighborhood is nearly saturated
		// (a hub that already received most of the graph) stops early with
		// a smaller realized degree instead of spinning.
		budget := 16 * (d + 1)
		for k := 0; k < d && budget > 0; k++ {
			j := rng.Intn(n)
			lo, hi := u, j
			if lo > hi {
				lo, hi = hi, lo
			}
			key := int64(lo)<<32 | int64(hi)
			for stamp[j] == int32(u)+1 || seen[key] {
				budget--
				if budget == 0 {
					break
				}
				j = rng.Intn(n)
				lo, hi = u, j
				if lo > hi {
					lo, hi = hi, lo
				}
				key = int64(lo)<<32 | int64(hi)
			}
			if budget == 0 {
				break
			}
			stamp[j] = int32(u) + 1
			seen[key] = true
			b.AddEdge(u, j)
		}
	}
	return b.Build()
}

// CSRPowerLawBipartite builds a bipartite customer/server graph with left
// vertices 0..nl-1 and right vertices nl..nl+nr-1, where each left vertex
// draws its degree from a truncated power law P(d) ∝ d^(-alpha) on
// 1..maxDeg and attaches to that many distinct uniformly random servers.
// This is the skewed-demand regime of the load-balancing evaluations
// (a few hot customers with many connections, a heavy tail of singletons).
// maxDeg must not exceed nr.
func CSRPowerLawBipartite(nl, nr int, alpha float64, maxDeg int, rng *rand.Rand) *CSR {
	if nl < 0 || nr < 1 {
		panic(fmt.Sprintf("graph: bad bipartite shape nl=%d nr=%d", nl, nr))
	}
	if maxDeg < 1 || maxDeg > nr {
		panic(fmt.Sprintf("graph: maxDeg=%d out of range (nr=%d)", maxDeg, nr))
	}
	// Cumulative distribution over degrees 1..maxDeg.
	cdf := make([]float64, maxDeg)
	sum := 0.0
	for d := 1; d <= maxDeg; d++ {
		sum += math.Pow(float64(d), -alpha)
		cdf[d-1] = sum
	}
	drawDeg := func() int {
		x := rng.Float64() * sum
		lo, hi := 0, maxDeg-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo + 1
	}
	b := NewCSRBuilder(nl+nr, nl*2)
	stamp := make([]int32, nr)
	gen := int32(0)
	var perm []int // allocated only when a dense draw needs Fisher–Yates
	for u := 0; u < nl; u++ {
		d := drawDeg()
		if 2*d >= nr {
			if perm == nil {
				perm = make([]int, nr)
			}
			for k := range perm {
				perm[k] = k
			}
			for k := 0; k < d; k++ {
				j := k + rng.Intn(nr-k)
				perm[k], perm[j] = perm[j], perm[k]
				b.AddEdge(u, nl+perm[k])
			}
			continue
		}
		gen++
		for k := 0; k < d; k++ {
			j := rng.Intn(nr)
			for stamp[j] == gen {
				j = rng.Intn(nr)
			}
			stamp[j] = gen
			b.AddEdge(u, nl+j)
		}
	}
	return b.Build()
}
