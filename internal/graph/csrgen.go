package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// This file holds generators that build directly into CSR form, for
// workloads at scales (10⁶+ vertices) where assembling the pointer-based
// Graph first would dominate the run. They use stamp-based rejection
// sampling instead of the O(width) partial Fisher–Yates of the small
// generators, so the cost per vertex is O(degree) regardless of layer
// width.

// CSRRandomLayered builds a random layered graph: levels+1 layers of width
// vertices each, vertex i of layer ℓ is ℓ*width+i, and every vertex on
// layer ℓ ≥ 1 connects to deg distinct uniformly random vertices on layer
// ℓ-1. Every vertex above the bottom layer therefore has downward degree
// exactly deg (a random Δ-regular-below layered graph); upward degrees are
// binomial.
func CSRRandomLayered(levels, width, deg int, rng *rand.Rand) *CSR {
	if levels < 0 || width < 1 {
		panic(fmt.Sprintf("graph: bad layered shape levels=%d width=%d", levels, width))
	}
	if deg > width {
		panic("graph: layered degree exceeds layer width")
	}
	n := (levels + 1) * width
	b := NewCSRBuilder(n, levels*width*deg)
	if 2*deg >= width {
		// Dense picks: partial Fisher–Yates, O(width) per vertex.
		perm := make([]int, width)
		for lvl := 1; lvl <= levels; lvl++ {
			base := lvl * width
			below := (lvl - 1) * width
			for i := 0; i < width; i++ {
				for k := range perm {
					perm[k] = k
				}
				for k := 0; k < deg; k++ {
					j := k + rng.Intn(width-k)
					perm[k], perm[j] = perm[j], perm[k]
					b.AddEdge(base+i, below+perm[k])
				}
			}
		}
		return b.Build()
	}
	stamp := make([]int32, width)
	gen := int32(0)
	for lvl := 1; lvl <= levels; lvl++ {
		base := lvl * width
		below := (lvl - 1) * width
		for i := 0; i < width; i++ {
			gen++
			for k := 0; k < deg; k++ {
				j := rng.Intn(width)
				for stamp[j] == gen {
					j = rng.Intn(width)
				}
				stamp[j] = gen
				b.AddEdge(base+i, below+j)
			}
		}
	}
	return b.Build()
}

// CSRLayeredGrid builds a diagonal lattice of rows layers × cols columns:
// vertex (r, c) is r*cols+c and connects to (r+1, c) and (r+1, (c+1) mod
// cols). Every edge joins adjacent rows, so with level(v) = row(v) the
// lattice is a valid token dropping arena of height rows-1 with Δ = 4; the
// wraparound keeps interior degrees uniform. cols must be at least 2.
func CSRLayeredGrid(rows, cols int) *CSR {
	if rows < 1 || cols < 2 {
		panic(fmt.Sprintf("graph: bad grid shape %dx%d (needs rows >= 1, cols >= 2)", rows, cols))
	}
	b := NewCSRBuilder(rows*cols, 2*(rows-1)*cols)
	for r := 0; r+1 < rows; r++ {
		base := r * cols
		up := (r + 1) * cols
		for c := 0; c < cols; c++ {
			b.AddEdge(up+c, base+c)
			b.AddEdge(up+c, base+(c+1)%cols)
		}
	}
	return b.Build()
}

// CSRPowerLawBipartite builds a bipartite customer/server graph with left
// vertices 0..nl-1 and right vertices nl..nl+nr-1, where each left vertex
// draws its degree from a truncated power law P(d) ∝ d^(-alpha) on
// 1..maxDeg and attaches to that many distinct uniformly random servers.
// This is the skewed-demand regime of the load-balancing evaluations
// (a few hot customers with many connections, a heavy tail of singletons).
// maxDeg must not exceed nr.
func CSRPowerLawBipartite(nl, nr int, alpha float64, maxDeg int, rng *rand.Rand) *CSR {
	if nl < 0 || nr < 1 {
		panic(fmt.Sprintf("graph: bad bipartite shape nl=%d nr=%d", nl, nr))
	}
	if maxDeg < 1 || maxDeg > nr {
		panic(fmt.Sprintf("graph: maxDeg=%d out of range (nr=%d)", maxDeg, nr))
	}
	// Cumulative distribution over degrees 1..maxDeg.
	cdf := make([]float64, maxDeg)
	sum := 0.0
	for d := 1; d <= maxDeg; d++ {
		sum += math.Pow(float64(d), -alpha)
		cdf[d-1] = sum
	}
	drawDeg := func() int {
		x := rng.Float64() * sum
		lo, hi := 0, maxDeg-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo + 1
	}
	b := NewCSRBuilder(nl+nr, nl*2)
	stamp := make([]int32, nr)
	gen := int32(0)
	var perm []int // allocated only when a dense draw needs Fisher–Yates
	for u := 0; u < nl; u++ {
		d := drawDeg()
		if 2*d >= nr {
			if perm == nil {
				perm = make([]int, nr)
			}
			for k := range perm {
				perm[k] = k
			}
			for k := 0; k < d; k++ {
				j := k + rng.Intn(nr-k)
				perm[k], perm[j] = perm[j], perm[k]
				b.AddEdge(u, nl+perm[k])
			}
			continue
		}
		gen++
		for k := 0; k < d; k++ {
			j := rng.Intn(nr)
			for stamp[j] == gen {
				j = rng.Intn(nr)
			}
			stamp[j] = gen
			b.AddEdge(u, nl+j)
		}
	}
	return b.Build()
}
