package graph

import "fmt"

// Orientation assigns a direction to a subset of the edges of a graph. The
// paper's stable-orientation algorithm grows a partial orientation phase by
// phase, so "unoriented" is a first-class state here. For an oriented edge
// we store its head: the vertex the edge points to (the server the customer
// chose, in the paper's interpretation). The indegree of a vertex is its
// load.
type Orientation struct {
	g    *Graph
	head []int // per edge: head vertex, or -1 if unoriented
	load []int // per vertex: current indegree
	m    int   // number of oriented edges
}

// Unoriented marks an edge with no direction assigned yet.
const Unoriented = -1

// NewOrientation returns an all-unoriented orientation of g.
func NewOrientation(g *Graph) *Orientation {
	head := make([]int, g.M())
	for i := range head {
		head[i] = Unoriented
	}
	return &Orientation{g: g, head: head, load: make([]int, g.N())}
}

// Graph returns the underlying graph.
func (o *Orientation) Graph() *Graph { return o.g }

// Clone returns a deep copy of o.
func (o *Orientation) Clone() *Orientation {
	return &Orientation{
		g:    o.g,
		head: append([]int(nil), o.head...),
		load: append([]int(nil), o.load...),
		m:    o.m,
	}
}

// Oriented reports whether edge id has been assigned a direction.
func (o *Orientation) Oriented(id int) bool { return o.head[id] != Unoriented }

// Complete reports whether every edge is oriented.
func (o *Orientation) Complete() bool { return o.m == o.g.M() }

// NumOriented returns the number of oriented edges.
func (o *Orientation) NumOriented() int { return o.m }

// Head returns the head vertex of edge id, or Unoriented.
func (o *Orientation) Head(id int) int { return o.head[id] }

// Tail returns the tail vertex of an oriented edge id; it panics if the
// edge is unoriented.
func (o *Orientation) Tail(id int) int {
	h := o.head[id]
	if h == Unoriented {
		panic(fmt.Sprintf("graph: edge %d is unoriented", id))
	}
	return o.g.Edge(id).Other(h)
}

// Load returns the load (indegree) of vertex v.
func (o *Orientation) Load(v int) int { return o.load[v] }

// Loads returns a copy of the per-vertex load vector.
func (o *Orientation) Loads() []int { return append([]int(nil), o.load...) }

// Orient directs edge id toward head. The edge must currently be
// unoriented.
func (o *Orientation) Orient(id, head int) {
	if o.head[id] != Unoriented {
		panic(fmt.Sprintf("graph: edge %d already oriented", id))
	}
	e := o.g.Edge(id)
	if head != e.U && head != e.V {
		panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %d = %v", head, id, e))
	}
	o.head[id] = head
	o.load[head]++
	o.m++
}

// Flip reverses the direction of an oriented edge id.
func (o *Orientation) Flip(id int) {
	h := o.head[id]
	if h == Unoriented {
		panic(fmt.Sprintf("graph: cannot flip unoriented edge %d", id))
	}
	t := o.g.Edge(id).Other(h)
	o.load[h]--
	o.load[t]++
	o.head[id] = t
}

// Badness returns indegree(head) - indegree(tail) for an oriented edge
// (Section 5 of the paper). It panics on unoriented edges.
func (o *Orientation) Badness(id int) int {
	h := o.head[id]
	if h == Unoriented {
		panic(fmt.Sprintf("graph: edge %d is unoriented", id))
	}
	t := o.g.Edge(id).Other(h)
	return o.load[h] - o.load[t]
}

// Happy reports whether an oriented edge (u, v) is happy:
// indegree(v) <= indegree(u) + 1, i.e. flipping it would not lower the
// load of its head (Section 1.1).
func (o *Orientation) Happy(id int) bool { return o.Badness(id) <= 1 }

// MaxBadness returns the maximum badness over oriented edges (0 if there
// are none).
func (o *Orientation) MaxBadness() int {
	max := 0
	for id, h := range o.head {
		if h == Unoriented {
			continue
		}
		if b := o.Badness(id); b > max {
			max = b
		}
	}
	return max
}

// UnhappyEdges returns the identifiers of all oriented edges that are not
// happy, in increasing order.
func (o *Orientation) UnhappyEdges() []int {
	var out []int
	for id, h := range o.head {
		if h != Unoriented && !o.Happy(id) {
			out = append(out, id)
		}
	}
	return out
}

// Stable reports whether the orientation is complete and every edge is
// happy — the stable orientation condition of Section 1.1.
func (o *Orientation) Stable() bool {
	if !o.Complete() {
		return false
	}
	for id := range o.head {
		if !o.Happy(id) {
			return false
		}
	}
	return true
}

// Potential returns the sum of squared loads, the potential function that
// proves termination of the centralized sequential algorithm (Section 1.1)
// and the local optimum objective of the load-balancing view.
func (o *Orientation) Potential() int {
	p := 0
	for _, l := range o.load {
		p += l * l
	}
	return p
}

// SemimatchingCost returns Σ_v f(load(v)) with f(x) = 1 + 2 + … + x =
// x(x+1)/2, the semi-matching objective of Section 1.3 (HLLT06).
func (o *Orientation) SemimatchingCost() int {
	c := 0
	for _, l := range o.load {
		c += l * (l + 1) / 2
	}
	return c
}

// CheckLoads recomputes loads from scratch and returns an error if the
// incrementally maintained load vector has drifted — a pure consistency
// oracle for tests.
func (o *Orientation) CheckLoads() error {
	fresh := make([]int, o.g.N())
	count := 0
	for _, h := range o.head {
		if h == Unoriented {
			continue
		}
		fresh[h]++
		count++
	}
	if count != o.m {
		return fmt.Errorf("graph: oriented-edge count drifted: counted %d, cached %d", count, o.m)
	}
	for v := range fresh {
		if fresh[v] != o.load[v] {
			return fmt.Errorf("graph: load of %d drifted: recomputed %d, cached %d", v, fresh[v], o.load[v])
		}
	}
	return nil
}
