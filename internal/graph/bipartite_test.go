package graph

import (
	"math/rand"
	"testing"
)

func TestNewBipartiteErrors(t *testing.T) {
	cross := New(4)
	cross.AddEdge(0, 1) // both sides of the split at 1... depends on numLeft
	t.Run("non-crossing edge", func(t *testing.T) {
		g := New(4)
		g.AddEdge(0, 1) // two customers
		g.AddEdge(1, 2)
		if _, err := NewBipartite(g, 2); err == nil {
			t.Fatal("no error for a customer-customer edge")
		}
		h := New(4)
		h.AddEdge(2, 3) // two servers
		if _, err := NewBipartite(h, 2); err == nil {
			t.Fatal("no error for a server-server edge")
		}
	})
	t.Run("bad numLeft", func(t *testing.T) {
		g := New(3)
		if _, err := NewBipartite(g, -1); err == nil {
			t.Fatal("no error for numLeft = -1")
		}
		if _, err := NewBipartite(g, 4); err == nil {
			t.Fatal("no error for numLeft > n")
		}
	})
	t.Run("boundary splits are valid", func(t *testing.T) {
		g := New(3) // no edges: any split works, including the empty sides
		for _, nl := range []int{0, 3} {
			if _, err := NewBipartite(g, nl); err != nil {
				t.Fatalf("numLeft=%d rejected on an edgeless graph: %v", nl, err)
			}
		}
		if _, err := NewBipartite(cross, 1); err != nil {
			t.Fatalf("crossing edge rejected: %v", err)
		}
	})
}

func TestNewCSRBipartiteErrors(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	csr := NewCSRFromGraph(g)
	if _, err := NewCSRBipartite(csr, 2); err == nil {
		t.Fatal("no error for a customer-customer edge")
	}
	h := New(4)
	h.AddEdge(2, 3)
	if _, err := NewCSRBipartite(NewCSRFromGraph(h), 2); err == nil {
		t.Fatal("no error for a server-server edge")
	}
	if _, err := NewCSRBipartite(csr, -1); err == nil {
		t.Fatal("no error for numLeft = -1")
	}
	if _, err := NewCSRBipartite(csr, 5); err == nil {
		t.Fatal("no error for numLeft > n")
	}
}

// TestCSRBipartiteRoundTrip pins the flat view to the object view: degrees
// and side statistics agree, and ToBipartite preserves ids and port order.
func TestCSRBipartiteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomBipartite(30, 8, 3, rng)
	b := MustBipartite(g, 30)
	fb := NewCSRBipartiteFromBipartite(b)

	if fb.NumCustomers() != b.NumCustomers() || fb.NumServers() != b.NumServers() {
		t.Fatal("side sizes diverge")
	}
	if fb.MaxCustomerDegree() != b.MaxCustomerDegree() || fb.MaxServerDegree() != b.MaxServerDegree() {
		t.Fatal("degree statistics diverge")
	}
	if !fb.IsCustomer(0) || fb.IsCustomer(30) {
		t.Fatal("side predicate diverges")
	}
	back := fb.ToBipartite()
	if back.NumLeft != b.NumLeft || back.G.N() != b.G.N() || back.G.M() != b.G.M() {
		t.Fatal("round trip changed the shape")
	}
	for v := 0; v < b.G.N(); v++ {
		av, bv := b.G.Adj(v), back.G.Adj(v)
		if len(av) != len(bv) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for p := range av {
			if av[p] != bv[p] {
				t.Fatalf("vertex %d port %d changed: %v -> %v", v, p, av[p], bv[p])
			}
		}
	}
	if err := fb.C.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMustCSRBipartitePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCSRBipartite did not panic on an invalid split")
		}
	}()
	g := New(4)
	g.AddEdge(0, 1)
	MustCSRBipartite(NewCSRFromGraph(g), 2)
}
