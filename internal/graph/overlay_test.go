package graph

import (
	"math/rand"
	"testing"
)

// refOverlay is the obvious map/slice model the arena-backed overlay is
// differentially tested against.
type refOverlay struct {
	adj  map[int][]int // customer -> servers, port order
	serv map[int]bool
}

func newRefOverlay() *refOverlay {
	return &refOverlay{adj: map[int][]int{}, serv: map[int]bool{}}
}

func checkAgainstRef(t *testing.T, o *BipartiteOverlay, ref *refOverlay) {
	t.Helper()
	if o.NumCustomers() != len(ref.adj) {
		t.Fatalf("live customers: overlay %d, ref %d", o.NumCustomers(), len(ref.adj))
	}
	if o.NumServers() != len(ref.serv) {
		t.Fatalf("live servers: overlay %d, ref %d", o.NumServers(), len(ref.serv))
	}
	edges := 0
	for c, servers := range ref.adj {
		edges += len(servers)
		if !o.CustomerLive(c) {
			t.Fatalf("customer %d live in ref, dead in overlay", c)
		}
		adj := o.Adj(c)
		if len(adj) != len(servers) {
			t.Fatalf("customer %d degree: overlay %d, ref %d", c, len(adj), len(servers))
		}
		for p, s := range servers {
			if int(adj[p]) != s {
				t.Fatalf("customer %d port %d: overlay %d, ref %d", c, p, adj[p], s)
			}
		}
	}
	if o.NumEdges() != edges {
		t.Fatalf("edges: overlay %d, ref %d", o.NumEdges(), edges)
	}
	// Incidence lists must hold exactly the incident customers (order is
	// maintenance-defined, so compare as sets).
	for s := range ref.serv {
		if !o.ServerLive(s) {
			t.Fatalf("server %d live in ref, dead in overlay", s)
		}
		want := map[int]bool{}
		for c, servers := range ref.adj {
			for _, t := range servers {
				if t == s {
					want[c] = true
				}
			}
		}
		inc := o.Incident(s)
		if len(inc) != len(want) {
			t.Fatalf("server %d incidence size: overlay %d, ref %d", s, len(inc), len(want))
		}
		for _, c := range inc {
			if !want[int(c)] {
				t.Fatalf("server %d incidence holds non-incident customer %d", s, c)
			}
		}
	}
}

// TestOverlayDifferential drives random deltas through the overlay and a
// reference model, checking adjacency (port order included), incidence,
// and the compacted CSR after every few steps — including across the
// automatic arena compactions the churn triggers.
func TestOverlayDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	o := NewBipartiteOverlay(nil)
	o.FragThreshold = 0.3 // compact eagerly so the test crosses it often
	ref := newRefOverlay()
	b := NewCSRBuilder(0, 0)
	var oc OverlayCSR

	liveServers := func() []int {
		var ids []int
		for s := range ref.serv {
			ids = append(ids, s)
		}
		return ids
	}
	liveCustomers := func() []int {
		var ids []int
		for c := range ref.adj {
			ids = append(ids, c)
		}
		return ids
	}

	for step := 0; step < 4000; step++ {
		op := rng.Intn(10)
		switch {
		case op < 2 || len(ref.serv) == 0: // add server
			s := o.AddServer()
			if ref.serv[s] {
				t.Fatalf("step %d: AddServer returned live id %d", step, s)
			}
			ref.serv[s] = true
		case op < 5: // add customer
			ids := liveServers()
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
			d := 1 + rng.Intn(min(3, len(ids)))
			servers := make([]int32, d)
			for i := 0; i < d; i++ {
				servers[i] = int32(ids[i])
			}
			c, err := o.AddCustomer(servers)
			if err != nil {
				t.Fatalf("step %d: AddCustomer: %v", step, err)
			}
			if _, ok := ref.adj[c]; ok {
				t.Fatalf("step %d: AddCustomer returned live id %d", step, c)
			}
			ref.adj[c] = nil
			for _, s := range servers {
				ref.adj[c] = append(ref.adj[c], int(s))
			}
		case op < 7: // remove customer
			ids := liveCustomers()
			if len(ids) == 0 {
				continue
			}
			c := ids[rng.Intn(len(ids))]
			if err := o.RemoveCustomer(c); err != nil {
				t.Fatalf("step %d: RemoveCustomer(%d): %v", step, c, err)
			}
			delete(ref.adj, c)
		case op < 8: // add edge
			cs, ss := liveCustomers(), liveServers()
			if len(cs) == 0 {
				continue
			}
			c := cs[rng.Intn(len(cs))]
			s := ss[rng.Intn(len(ss))]
			present := false
			for _, t := range ref.adj[c] {
				if t == s {
					present = true
				}
			}
			err := o.AddEdge(c, s)
			if present {
				if err == nil {
					t.Fatalf("step %d: duplicate AddEdge(%d,%d) accepted", step, c, s)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: AddEdge(%d,%d): %v", step, c, s, err)
			}
			ref.adj[c] = append(ref.adj[c], s)
		case op < 9: // remove edge
			cs := liveCustomers()
			if len(cs) == 0 {
				continue
			}
			c := cs[rng.Intn(len(cs))]
			if len(ref.adj[c]) == 0 {
				continue
			}
			p := rng.Intn(len(ref.adj[c]))
			s := ref.adj[c][p]
			if err := o.RemoveEdge(c, s); err != nil {
				t.Fatalf("step %d: RemoveEdge(%d,%d): %v", step, c, s, err)
			}
			ref.adj[c] = append(ref.adj[c][:p], ref.adj[c][p+1:]...)
		default: // remove an empty server
			ids := liveServers()
			s := ids[rng.Intn(len(ids))]
			incident := false
			for _, servers := range ref.adj {
				for _, t := range servers {
					if t == s {
						incident = true
					}
				}
			}
			err := o.RemoveServer(s)
			if incident {
				if err == nil {
					t.Fatalf("step %d: RemoveServer(%d) accepted with incident customers", step, s)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: RemoveServer(%d): %v", step, s, err)
			}
			delete(ref.serv, s)
		}
		if step%137 == 0 {
			checkAgainstRef(t, o, ref)
			checkBuildCSR(t, o, ref, b, &oc)
		}
	}
	checkAgainstRef(t, o, ref)
	checkBuildCSR(t, o, ref, b, &oc)
	if o.Compactions() == 0 {
		t.Fatalf("churn never crossed the fragmentation threshold (frag=%.2f)", o.Frag())
	}
	// An explicit compaction reclaims everything and changes nothing.
	o.CompactArenas()
	if o.Frag() != 0 {
		t.Fatalf("explicit compaction left frag=%.2f", o.Frag())
	}
	checkAgainstRef(t, o, ref)
}

// checkBuildCSR compacts the overlay and validates the flat graph: CSR
// invariants, the bipartition, the id maps, and every live customer's
// ports in overlay order.
func checkBuildCSR(t *testing.T, o *BipartiteOverlay, ref *refOverlay, b *CSRBuilder, oc *OverlayCSR) {
	t.Helper()
	o.BuildCSR(b, oc)
	if err := oc.C.Validate(); err != nil {
		t.Fatalf("compacted CSR invalid: %v", err)
	}
	if _, err := NewCSRBipartite(&oc.C, oc.NumLeft); err != nil {
		t.Fatalf("compacted CSR not bipartite: %v", err)
	}
	if oc.NumLeft != len(ref.adj) {
		t.Fatalf("compacted NumLeft %d, ref %d", oc.NumLeft, len(ref.adj))
	}
	for d := 0; d < oc.NumLeft; d++ {
		c := int(oc.CustID[d])
		if int(oc.CustDense[c]) != d {
			t.Fatalf("customer id maps disagree at dense %d", d)
		}
		want := ref.adj[c]
		lo, hi := oc.C.ArcRange(d)
		if hi-lo != len(want) {
			t.Fatalf("customer %d compacted degree %d, ref %d", c, hi-lo, len(want))
		}
		for p := 0; p < len(want); p++ {
			s := int(oc.ServID[int(oc.C.Col[lo+p])-oc.NumLeft])
			if s != want[p] {
				t.Fatalf("customer %d port %d: compacted server %d, ref %d", c, p, s, want[p])
			}
		}
	}
}

// TestOverlayFromCSR checks that ingesting a CSRBipartite preserves ids
// and port order, and that compacting it straight back yields the same
// graph.
func TestOverlayFromCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bip := MustBipartite(RandomBipartite(40, 12, 3, rng), 40)
	fb := NewCSRBipartiteFromBipartite(bip)
	o := NewBipartiteOverlay(fb)
	if o.NumCustomers() != 40 || o.NumServers() != 12 || o.NumEdges() != fb.C.M() {
		t.Fatalf("ingest counts wrong: %d/%d/%d", o.NumCustomers(), o.NumServers(), o.NumEdges())
	}
	for c := 0; c < 40; c++ {
		lo, hi := fb.C.ArcRange(c)
		adj := o.Adj(c)
		for p := 0; p < hi-lo; p++ {
			if int(adj[p]) != int(fb.C.Col[lo+p])-40 {
				t.Fatalf("ingest broke port order at customer %d port %d", c, p)
			}
		}
	}
	b := NewCSRBuilder(0, 0)
	var oc OverlayCSR
	o.BuildCSR(b, &oc)
	if err := oc.C.Validate(); err != nil {
		t.Fatalf("round-trip CSR invalid: %v", err)
	}
	for c := 0; c < 40; c++ {
		lo, hi := fb.C.ArcRange(c)
		clo, chi := oc.C.ArcRange(c)
		if hi-lo != chi-clo {
			t.Fatalf("round-trip degree drifted at customer %d", c)
		}
		for p := 0; p < hi-lo; p++ {
			if oc.C.Col[clo+p] != fb.C.Col[lo+p] {
				t.Fatalf("round-trip port order drifted at customer %d port %d", c, p)
			}
		}
	}
}

// TestOverlayIDRecycling pins the LIFO id-recycling contract: the id
// space stays bounded by the peak live count under churn.
func TestOverlayIDRecycling(t *testing.T) {
	o := NewBipartiteOverlay(nil)
	s := o.AddServer()
	var ids []int
	for i := 0; i < 8; i++ {
		c, err := o.AddCustomer([]int32{int32(s)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c)
	}
	for _, c := range ids {
		if err := o.RemoveCustomer(c); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		c, err := o.AddCustomer([]int32{int32(s)})
		if err != nil {
			t.Fatal(err)
		}
		if c >= 8 {
			t.Fatalf("churn leaked into fresh id %d despite free ids", c)
		}
		if err := o.RemoveCustomer(c); err != nil {
			t.Fatal(err)
		}
	}
	if o.CustomerIDs() != 8 {
		t.Fatalf("id space grew to %d under churn", o.CustomerIDs())
	}
}

// TestOverlaySteadyStateAllocs pins the zero-allocation contract for a
// warmed overlay under assign/release churn.
func TestOverlaySteadyStateAllocs(t *testing.T) {
	o := NewBipartiteOverlay(nil)
	var servers []int32
	for s := 0; s < 16; s++ {
		servers = append(servers, int32(o.AddServer()))
	}
	adj := make([]int32, 3)
	churn := func() {
		for i := 0; i < 64; i++ {
			adj[0] = servers[i%16]
			adj[1] = servers[(i+5)%16]
			adj[2] = servers[(i+11)%16]
			c, err := o.AddCustomer(adj)
			if err != nil {
				t.Fatal(err)
			}
			if err := o.RemoveCustomer(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 50; i++ { // warm arenas past the churn's high-water mark
		churn()
	}
	if avg := testing.AllocsPerRun(20, churn); avg != 0 {
		t.Fatalf("warmed overlay churn allocates %.1f times per round", avg)
	}
}

// TestResetShrink pins the builder's release policy: Reset retains peak
// capacity, ResetShrink drops it to the requested budget.
func TestResetShrink(t *testing.T) {
	b := NewCSRBuilder(4, 0)
	for i := 0; i < 1000; i++ {
		b.AddEdge(i%4, (i+1)%4+0) // duplicates are fine for capacity accounting
	}
	b.Build()
	b.Reset(4)
	if cap(b.us) < 1000 {
		t.Fatalf("Reset released the edge buffer (cap %d)", cap(b.us))
	}
	b.ResetShrink(4, 16)
	if cap(b.us) > 16 || cap(b.vs) > 16 {
		t.Fatalf("ResetShrink kept cap %d/%d over budget 16", cap(b.us), cap(b.vs))
	}
	if b.N() != 4 || b.M() != 0 {
		t.Fatalf("ResetShrink broke the reset: n=%d m=%d", b.N(), b.M())
	}
	// Still fully usable afterwards.
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	c := b.Build()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	b.ResetShrink(0, 0)
	if cap(b.us) != 0 || cap(b.deg) != 0 {
		t.Fatalf("ResetShrink(0,0) kept buffers (cap %d, deg %d)", cap(b.us), cap(b.deg))
	}
}

// TestAddEdgeAtInverse pins the rollback contract AddEdgeAt exists for:
// RemoveEdge followed by AddEdgeAt at the removed port restores the
// customer's port order bit-exactly, at every port position, under
// enough churn to cross arena relocations.
func TestAddEdgeAtInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	o := NewBipartiteOverlay(nil)
	o.FragThreshold = 0.3
	var servers []int
	for s := 0; s < 8; s++ {
		servers = append(servers, o.AddServer())
	}
	var customers []int
	for c := 0; c < 16; c++ {
		deg := 1 + rng.Intn(5)
		perm := rng.Perm(len(servers))
		adj := make([]int32, deg)
		for i := range adj {
			adj[i] = int32(servers[perm[i]])
		}
		id, err := o.AddCustomer(adj)
		if err != nil {
			t.Fatal(err)
		}
		customers = append(customers, id)
	}
	for step := 0; step < 500; step++ {
		c := customers[rng.Intn(len(customers))]
		before := append([]int32(nil), o.Adj(c)...)
		at := rng.Intn(len(before))
		s := int(before[at])
		if err := o.RemoveEdge(c, s); err != nil {
			t.Fatalf("step %d: remove {%d,%d}: %v", step, c, s, err)
		}
		if err := o.AddEdgeAt(c, s, at); err != nil {
			t.Fatalf("step %d: restore {%d,%d}@%d: %v", step, c, s, at, err)
		}
		after := o.Adj(c)
		if len(after) != len(before) {
			t.Fatalf("step %d: degree %d, want %d", step, len(after), len(before))
		}
		for p := range before {
			if after[p] != before[p] {
				t.Fatalf("step %d: port %d = %d, want %d (restored at %d)", step, p, after[p], before[p], at)
			}
		}
		// Interleave unrelated churn so segments relocate between checks.
		if step%7 == 0 {
			victim := customers[rng.Intn(len(customers))]
			adj := append([]int32(nil), o.Adj(victim)...)
			if err := o.RemoveCustomer(victim); err != nil {
				t.Fatal(err)
			}
			id, err := o.AddCustomer(adj)
			if err != nil {
				t.Fatal(err)
			}
			if id != victim {
				t.Fatalf("step %d: recycled id %d, want %d", step, id, victim)
			}
		}
	}
}

// TestAddEdgeAtRejects pins AddEdgeAt's validation: dead endpoints,
// out-of-range positions, and parallel edges all error without mutating.
func TestAddEdgeAtRejects(t *testing.T) {
	o := NewBipartiteOverlay(nil)
	s0, s1 := o.AddServer(), o.AddServer()
	c, err := o.AddCustomer([]int32{int32(s0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdgeAt(c+1, s1, 0); err == nil {
		t.Fatal("accepted dead customer")
	}
	if err := o.AddEdgeAt(c, s1+1, 0); err == nil {
		t.Fatal("accepted dead server")
	}
	if err := o.AddEdgeAt(c, s1, 2); err == nil {
		t.Fatal("accepted out-of-range position")
	}
	if err := o.AddEdgeAt(c, s1, -1); err == nil {
		t.Fatal("accepted negative position")
	}
	if err := o.AddEdgeAt(c, s0, 0); err == nil {
		t.Fatal("accepted parallel edge")
	}
	if got := o.Adj(c); len(got) != 1 || int(got[0]) != s0 {
		t.Fatalf("rejected inserts mutated adjacency: %v", got)
	}
	if err := o.AddEdgeAt(c, s1, 0); err != nil {
		t.Fatal(err)
	}
	if got := o.Adj(c); len(got) != 2 || int(got[0]) != s1 || int(got[1]) != s0 {
		t.Fatalf("front insert got %v, want [s1 s0]", got)
	}
}
