package graph

import (
	"fmt"

	"tokendrop/internal/reuse"
)

// CSR is a compressed sparse row view of an undirected graph: flat arrays
// instead of per-vertex slices, so million-vertex instances fit in a few
// contiguous allocations and round-based runtimes touch memory strictly
// sequentially. It is the substrate of the sharded LOCAL engine
// (internal/local.RunSharded); the pointer-based Graph remains the
// representation of the structural tooling (BFS, girth, balls).
//
// Arcs are the directed halves of the undirected edges. The arcs leaving
// vertex v occupy the contiguous index range [Row[v], Row[v+1]); the
// position of an arc within that range is the LOCAL port number of v, so a
// CSR fixes the port numbering exactly as a Graph's adjacency order does.
// For arc i, Col[i] is the head vertex, EID[i] the identifier of the
// underlying undirected edge, and Rev[i] the index of the opposite arc
// (Rev is an involution: Rev[Rev[i]] == i). Message routing is therefore a
// single flat lookup — the word sent to v on its port p is found at
// out[Rev[Row[v]+p]] — with no per-vertex indirection.
type CSR struct {
	Row []int32 // len N()+1: arc range boundaries per vertex
	Col []int32 // per arc: head vertex
	EID []int32 // per arc: undirected edge identifier
	Rev []int32 // per arc: index of the reverse arc
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.Row) - 1 }

// M returns the number of undirected edges.
func (c *CSR) M() int { return len(c.Col) / 2 }

// NumArcs returns the number of directed arcs (2·M).
func (c *CSR) NumArcs() int { return len(c.Col) }

// Degree returns the degree of vertex v.
func (c *CSR) Degree(v int) int { return int(c.Row[v+1] - c.Row[v]) }

// ArcRange returns the half-open arc index range of vertex v.
func (c *CSR) ArcRange(v int) (lo, hi int) { return int(c.Row[v]), int(c.Row[v+1]) }

// MaxDegree returns Δ, the maximum degree over all vertices.
func (c *CSR) MaxDegree() int {
	d := int32(0)
	for v := 0; v+1 < len(c.Row); v++ {
		if deg := c.Row[v+1] - c.Row[v]; deg > d {
			d = deg
		}
	}
	return int(d)
}

// Tail returns the tail vertex of arc i in O(log n) (binary search over
// Row); hot loops should instead derive the tail from the vertex whose
// range they are iterating.
func (c *CSR) Tail(i int) int {
	lo, hi := 0, c.N()
	for lo < hi {
		mid := (lo + hi) / 2
		if int32(i) >= c.Row[mid+1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Validate checks internal consistency: monotone Row, in-range heads and
// edge ids, Rev a fixed-point-free involution pairing the two halves of
// each edge, matching edge ids across reverse arcs, no self-loops, and no
// duplicate edges. It is O(arcs) plus a duplicate check and meant for
// tests and generators, not hot paths.
func (c *CSR) Validate() error {
	n := c.N()
	if len(c.Row) == 0 || c.Row[0] != 0 {
		return fmt.Errorf("graph: csr Row must start at 0")
	}
	arcs := len(c.Col)
	if len(c.EID) != arcs || len(c.Rev) != arcs {
		return fmt.Errorf("graph: csr arc arrays disagree: %d cols, %d eids, %d revs",
			arcs, len(c.EID), len(c.Rev))
	}
	if int(c.Row[n]) != arcs {
		return fmt.Errorf("graph: csr Row ends at %d for %d arcs", c.Row[n], arcs)
	}
	if arcs%2 != 0 {
		return fmt.Errorf("graph: odd arc count %d", arcs)
	}
	for v := 0; v < n; v++ {
		if c.Row[v] > c.Row[v+1] {
			return fmt.Errorf("graph: csr Row decreases at vertex %d", v)
		}
	}
	m := arcs / 2
	seen := make(map[Edge]bool, m)
	for v := 0; v < n; v++ {
		for i := int(c.Row[v]); i < int(c.Row[v+1]); i++ {
			to := int(c.Col[i])
			if to < 0 || to >= n {
				return fmt.Errorf("graph: arc %d points to out-of-range vertex %d", i, to)
			}
			if to == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if id := int(c.EID[i]); id < 0 || id >= m {
				return fmt.Errorf("graph: arc %d has edge id %d (m=%d)", i, id, m)
			}
			r := int(c.Rev[i])
			if r < 0 || r >= arcs || r == i {
				return fmt.Errorf("graph: arc %d has bad reverse %d", i, r)
			}
			if int(c.Rev[r]) != i {
				return fmt.Errorf("graph: Rev is not an involution at arc %d", i)
			}
			if c.EID[r] != c.EID[i] {
				return fmt.Errorf("graph: arcs %d and %d disagree on edge id", i, r)
			}
			if int(c.Col[r]) != v {
				return fmt.Errorf("graph: reverse of arc %d (%d->%d) does not return to %d", i, v, to, v)
			}
			if v < to {
				e := Edge{U: v, V: to}
				if seen[e] {
					return fmt.Errorf("graph: duplicate edge %v", e)
				}
				seen[e] = true
			}
		}
	}
	return nil
}

// NewCSRFromGraph converts g to CSR form, preserving g's adjacency order —
// port p of vertex v is the same neighbor in both representations, so
// deterministic algorithms behave identically on either.
func NewCSRFromGraph(g *Graph) *CSR {
	n := g.N()
	c := &CSR{
		Row: make([]int32, n+1),
		Col: make([]int32, 2*g.M()),
		EID: make([]int32, 2*g.M()),
		Rev: make([]int32, 2*g.M()),
	}
	for v := 0; v < n; v++ {
		c.Row[v+1] = c.Row[v] + int32(len(g.adj[v]))
	}
	first := make([]int32, g.M())
	for i := range first {
		first[i] = -1
	}
	idx := int32(0)
	for v := 0; v < n; v++ {
		for _, a := range g.adj[v] {
			c.Col[idx] = int32(a.To)
			c.EID[idx] = int32(a.Edge)
			if f := first[a.Edge]; f < 0 {
				first[a.Edge] = idx
			} else {
				c.Rev[idx] = f
				c.Rev[f] = idx
			}
			idx++
		}
	}
	return c
}

// ToGraph materializes the pointer-based Graph with the same vertex set,
// edge identifiers, and — crucially — the same adjacency (port) order.
func (c *CSR) ToGraph() *Graph {
	n := c.N()
	g := &Graph{
		adj:   make([][]Arc, n),
		edges: make([]Edge, c.M()),
	}
	for v := 0; v < n; v++ {
		lo, hi := c.ArcRange(v)
		adj := make([]Arc, hi-lo)
		for i := lo; i < hi; i++ {
			to := int(c.Col[i])
			adj[i-lo] = Arc{To: to, Edge: int(c.EID[i])}
			if v < to {
				g.edges[c.EID[i]] = Edge{U: v, V: to}
			}
		}
		g.adj[v] = adj
	}
	return g
}

// CSRBuilder accumulates edges and assembles a CSR in two passes (counting
// sort by tail vertex). Unlike Graph.AddEdge it performs no duplicate
// detection — generators are expected to emit each edge once; Validate
// catches violations in tests. Edge identifiers are assigned in insertion
// order, and the port order of each vertex is the order in which its edges
// were inserted.
//
// A builder is reusable: Reset clears the edge list (retaining capacity)
// and BuildInto assembles the graph into caller-owned arrays, so loops
// that build one subgame CSR per phase — the orientation and assignment
// runtimes — allocate nothing once warmed.
type CSRBuilder struct {
	n      int
	us, vs []int32
	deg    []int32 // scratch of BuildInto: degree counts, then fill cursor
}

// NewCSRBuilder returns a builder for a graph on n vertices, preallocating
// room for edgeHint edges.
func NewCSRBuilder(n, edgeHint int) *CSRBuilder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	if edgeHint < 0 {
		edgeHint = 0
	}
	return &CSRBuilder{
		n:  n,
		us: make([]int32, 0, edgeHint),
		vs: make([]int32, 0, edgeHint),
	}
}

// N returns the vertex count.
func (b *CSRBuilder) N() int { return b.n }

// M returns the number of edges inserted so far.
func (b *CSRBuilder) M() int { return len(b.us) }

// AddEdge inserts the undirected edge {u, v} and returns its identifier.
func (b *CSRBuilder) AddEdge(u, v int) int {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range (n=%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	return len(b.us) - 1
}

// Reset clears the builder for reuse on a graph with n vertices,
// retaining the edge buffer's capacity (and the scratch of BuildInto).
func (b *CSRBuilder) Reset(n int) {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	b.n = n
	b.us = b.us[:0]
	b.vs = b.vs[:0]
}

// ResetShrink is Reset with a release policy for long-running callers:
// backing arrays whose capacity exceeds what a graph of edgeCap edges
// needs are dropped for the garbage collector to reclaim, instead of
// being pinned at their peak size forever. Reset alone retains peak
// capacity by design (the phase loops rebuild same-sized subgames every
// phase); a daemon that served one outsized solve calls ResetShrink with
// its steady-state edge budget so the one-off peak does not become the
// process's floor. edgeCap <= 0 releases the buffers entirely.
func (b *CSRBuilder) ResetShrink(n, edgeCap int) {
	b.Reset(n)
	if edgeCap < 0 {
		edgeCap = 0
	}
	if cap(b.us) > edgeCap {
		b.us = make([]int32, 0, edgeCap)
		b.vs = make([]int32, 0, edgeCap)
	}
	if cap(b.deg) > n {
		b.deg = nil
		if n > 0 {
			b.deg = make([]int32, 0, n)
		}
	}
}

// Build assembles the CSR into fresh arrays. The builder can be reused
// afterwards (its edge buffer is retained); the returned CSR is
// independent of the builder and of any later BuildInto targets.
func (b *CSRBuilder) Build() *CSR {
	c := &CSR{}
	b.BuildInto(c)
	return c
}

// BuildInto assembles the CSR into c, growing c's arrays only when the
// graph outgrows their capacity — repeated Reset/AddEdge/BuildInto cycles
// over same-sized or shrinking graphs allocate nothing. Any previous
// contents of c (and anything aliasing its arrays) are overwritten.
func (b *CSRBuilder) BuildInto(c *CSR) {
	m := len(b.us)
	c.Row = reuse.Grown(c.Row, b.n+1)
	c.Col = reuse.Grown(c.Col, 2*m)
	c.EID = reuse.Grown(c.EID, 2*m)
	c.Rev = reuse.Grown(c.Rev, 2*m)
	deg := reuse.Grown(b.deg, b.n)
	b.deg = deg
	clear(deg)
	for i := 0; i < m; i++ {
		deg[b.us[i]]++
		deg[b.vs[i]]++
	}
	c.Row[0] = 0
	for v := 0; v < b.n; v++ {
		c.Row[v+1] = c.Row[v] + deg[v]
	}
	cursor := deg // reuse as fill cursor
	copy(cursor, c.Row[:b.n])
	for i := 0; i < m; i++ {
		u, v := b.us[i], b.vs[i]
		au := cursor[u]
		cursor[u]++
		av := cursor[v]
		cursor[v]++
		c.Col[au] = v
		c.Col[av] = u
		c.EID[au] = int32(i)
		c.EID[av] = int32(i)
		c.Rev[au] = av
		c.Rev[av] = au
	}
}
