package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPathCycleComplete(t *testing.T) {
	if g := Path(1); g.N() != 1 || g.M() != 0 {
		t.Fatal("trivial path")
	}
	if g := Path(5); g.M() != 4 {
		t.Fatal("path edge count")
	}
	if g := Cycle(6); g.M() != 6 || !g.IsRegular(2) {
		t.Fatal("cycle shape")
	}
	if g := Complete(6); g.M() != 15 || !g.IsRegular(5) {
		t.Fatal("K6 shape")
	}
	if g := Star(7); g.Degree(0) != 7 || g.M() != 7 {
		t.Fatal("star shape")
	}
}

func TestGridTorus(t *testing.T) {
	g := Grid2D(3, 5)
	if g.N() != 15 || g.M() != 3*4+2*5 {
		t.Fatalf("grid: n=%d m=%d", g.N(), g.M())
	}
	tor := Torus2D(4, 5)
	if !tor.IsRegular(4) {
		t.Fatal("torus should be 4-regular")
	}
	if err := tor.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.M() != 12 {
		t.Fatal("K34 edges")
	}
	side, ok := g.Bipartition()
	if !ok {
		t.Fatal("K34 must be bipartite")
	}
	for u := 0; u < 3; u++ {
		if side[u] != side[0] {
			t.Fatal("left side split")
		}
	}
}

func TestPerfectDAry(t *testing.T) {
	g, depths := PerfectDAry(3, 3)
	// Sizes: 1 + 3 + 3*2 + 6*2 = 22.
	if g.N() != 22 {
		t.Fatalf("3-ary depth-3 tree has %d vertices, want 22", g.N())
	}
	if g.M() != g.N()-1 || !g.IsConnected() {
		t.Fatal("not a tree")
	}
	// Every non-leaf has degree exactly 3 (the Section 6 definition).
	for v := 0; v < g.N(); v++ {
		if depths[v] < 3 && g.Degree(v) != 3 {
			t.Fatalf("internal vertex %d (depth %d) has degree %d", v, depths[v], g.Degree(v))
		}
		if depths[v] == 3 && g.Degree(v) != 1 {
			t.Fatalf("leaf %d has degree %d", v, g.Degree(v))
		}
	}
	// All leaves at the same depth = BFS distance from root.
	dist := g.BFS(0)
	for v := 0; v < g.N(); v++ {
		if dist[v] != depths[v] {
			t.Fatalf("depth bookkeeping: dist=%d depths=%d", dist[v], depths[v])
		}
	}
}

func TestPerfectDAryHeight(t *testing.T) {
	g, depths := PerfectDAry(4, 2)
	h := Height(g)
	for v := range depths {
		want := 2 - depths[v]
		if h[v] != want {
			t.Fatalf("height of depth-%d vertex = %d, want %d", depths[v], h[v], want)
		}
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(10, 3)
	if g.N() != 10+30 {
		t.Fatal("caterpillar size")
	}
	if g.Degree(5) != 2+3 {
		t.Fatal("interior spine degree")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {16, 5}, {50, 2}} {
		g := RandomRegular(tc.n, tc.d, rng)
		if !g.IsRegular(tc.d) {
			t.Fatalf("RandomRegular(%d,%d) not regular", tc.n, tc.d)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomRegularOddProductPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd n*d should panic")
		}
	}()
	RandomRegular(5, 3, rand.New(rand.NewSource(1)))
}

func TestRandomRegularGirth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := RandomRegularGirth(60, 3, 5, 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(3) {
		t.Fatal("not 3-regular")
	}
	if girth := g.Girth(); girth >= 0 && girth < 5 {
		t.Fatalf("girth %d < 5", girth)
	}
}

func TestCirculantGirthCycle(t *testing.T) {
	g, err := CirculantGirth(12, 2, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if g.Girth() != 12 {
		t.Fatal("cycle girth")
	}
	if _, err := CirculantGirth(5, 2, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("short cycle should fail the girth requirement")
	}
}

func TestRandomBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomBipartite(20, 10, 4, rng)
	for u := 0; u < 20; u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("customer %d degree %d", u, g.Degree(u))
		}
		for _, a := range g.Adj(u) {
			if a.To < 20 {
				t.Fatal("customer adjacent to customer")
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBipartiteRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := RandomBipartiteRegular(12, 8, 2, 3, rng)
	for u := 0; u < 12; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("left degree %d", g.Degree(u))
		}
	}
	for v := 12; v < 20; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("right degree %d", g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBipartiteRegularMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched degree sums should panic")
		}
	}()
	RandomBipartiteRegular(3, 3, 2, 3, rand.New(rand.NewSource(1)))
}

func TestDisjoint(t *testing.T) {
	g := Disjoint(Cycle(3), Cycle(4), Path(2))
	if g.N() != 9 || g.M() != 3+4+1 {
		t.Fatalf("disjoint union: n=%d m=%d", g.N(), g.M())
	}
	if g.HasEdge(2, 3) {
		t.Fatal("components leaked into each other")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: random regular graphs are simple, regular, and valid across
// seeds and parameters.
func TestRandomRegularProperty(t *testing.T) {
	check := func(seed int64, nRaw, dRaw uint8) bool {
		d := int(dRaw%5) + 2 // 2..6
		n := int(nRaw%20) + d + 2
		if n*d%2 != 0 {
			n++
		}
		g := RandomRegular(n, d, rand.New(rand.NewSource(seed)))
		return g.IsRegular(d) && g.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
