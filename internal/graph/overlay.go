package graph

import (
	"fmt"

	"tokendrop/internal/reuse"
)

// This file is the mutable graph layer of the online serving mode: a
// BipartiteOverlay absorbs customer/server/edge deltas without rebuilding
// the flat arrays, and compacts into a CSRBipartite (via
// CSRBuilder.Reset/BuildInto) only when asked — the incremental
// assignment runtime (internal/assign.Resolver) runs directly on the
// overlay, and the batch solvers and the snapshot format consume the
// compacted CSR.
//
// # Port-order rules
//
// The lockstep contract of ARCHITECTURE.md makes port numbering part of
// every protocol, so a mutable representation must pin it explicitly:
//
//   - A customer's port order is the insertion order of its edges:
//     ingesting a CSRBipartite preserves its arc order, AddCustomer
//     appends the given servers left to right, AddEdge appends at the
//     end, and RemoveEdge closes the gap without reordering (ports shift
//     left). First-port scans over a customer's adjacency are therefore
//     a deterministic function of the delta sequence.
//   - A server's incidence list is maintenance-ordered, not
//     port-ordered: removal swaps the last entry into the hole. It is a
//     reverse index for locality (which customers touch this server),
//     not a protocol surface; deterministic given the delta sequence,
//     but not stable under it.
//   - BuildCSR emits the live graph with dense ids assigned in ascending
//     overlay id order on both sides, inserting each live customer's
//     edges in its overlay port order. The compacted CSR's customer
//     ports therefore equal the overlay's, and its server ports follow
//     ascending-customer insertion order — the same rule the batch
//     assignment layer documents for its incidence networks.
//
// Identifiers are stable across mutations and compactions: an id is
// never reused while live, and freed ids are recycled LIFO by later
// inserts, so the id space stays bounded by the peak live count.

// segArena stores one variable-length int32 segment per identifier in a
// single backing array. Segments are allocated at the end of the arena;
// removing or outgrowing a segment leaks its words ("dead" words) until
// compactInto rewrites the live segments densely. Grow-only: the arena
// and its spare double-buffer are never released, so a warmed overlay
// mutates with zero heap allocations.
type segArena struct {
	off, length, capa []int32
	arena             []int32
	spare             []int32
	dead              int
}

// ensureID grows the per-id arrays to cover id.
func (a *segArena) ensureID(id int) {
	for len(a.off) <= id {
		a.off = append(a.off, 0)
		a.length = append(a.length, 0)
		a.capa = append(a.capa, 0)
	}
}

// seg returns the live segment of id (aliasing the arena; valid until
// the next mutation).
func (a *segArena) seg(id int) []int32 {
	o := a.off[id]
	return a.arena[o : o+a.length[id]]
}

// alloc places a fresh empty segment of the given capacity for id at the
// end of the arena, leaking any previous segment.
func (a *segArena) alloc(id, capacity int) {
	a.dead += int(a.capa[id])
	a.off[id] = int32(len(a.arena))
	a.length[id] = 0
	a.capa[id] = int32(capacity)
	for i := 0; i < capacity; i++ {
		a.arena = append(a.arena, 0)
	}
}

// push appends v to id's segment, relocating it with doubled capacity
// when full.
func (a *segArena) push(id int, v int32) {
	if a.length[id] == a.capa[id] {
		old := a.seg(id)
		newCap := int(a.capa[id]) * 2
		if newCap < 4 {
			newCap = 4
		}
		a.alloc(id, newCap)
		o := int(a.off[id])
		copy(a.arena[o:], old)
		a.length[id] = int32(len(old))
	}
	a.arena[int(a.off[id])+int(a.length[id])] = v
	a.length[id]++
}

// removeAt deletes position i of id's segment; ordered removal shifts
// the tail left (preserving port order), unordered swaps the last entry
// in. The freed slot stays in the segment's capacity.
func (a *segArena) removeAt(id, i int, ordered bool) {
	s := a.seg(id)
	if ordered {
		copy(s[i:], s[i+1:])
	} else {
		s[i] = s[len(s)-1]
	}
	a.length[id]--
}

// free drops id's segment entirely, leaking its words.
func (a *segArena) free(id int) {
	a.dead += int(a.capa[id])
	a.length[id] = 0
	a.capa[id] = 0
}

// compact rewrites the live segments densely into the spare buffer (in
// ascending id order, capacities trimmed to lengths) and swaps the
// buffers. Steady-state compactions allocate nothing once the spare has
// grown to the live size.
func (a *segArena) compact() {
	total := 0
	for id := range a.off {
		total += int(a.length[id])
	}
	if cap(a.spare) < total {
		a.spare = make([]int32, 0, total)
	}
	a.spare = a.spare[:0]
	for id := range a.off {
		s := a.seg(id)
		a.off[id] = int32(len(a.spare))
		a.capa[id] = a.length[id]
		a.spare = append(a.spare, s...)
	}
	a.arena, a.spare = a.spare, a.arena
	a.dead = 0
}

// words returns the arena's occupied size (live + dead words).
func (a *segArena) words() int { return len(a.arena) }

// BipartiteOverlay is a mutable customer/server network: the delta-
// absorbing counterpart of CSRBipartite. Customers, servers, and edges
// can be inserted and deleted in O(degree) without touching the rest of
// the graph; the structure compacts its internal arenas automatically
// when the leaked fraction crosses FragThreshold, and compacts into a
// flat CSRBipartite on demand with BuildCSR. See the file comment for
// the port-order rules that keep the lockstep contract intact.
//
// A warmed overlay (arenas grown to the workload's high-water mark)
// applies deltas with zero heap allocations. Not safe for concurrent
// use.
type BipartiteOverlay struct {
	cust segArena // per customer: adjacent server ids, port order
	serv segArena // per server: incident customer ids, maintenance order

	custLive, servLive []bool
	custFree, servFree []int32

	liveCust, liveServ int
	edges              int
	compactions        int

	// FragThreshold is the leaked-word fraction of the internal arenas
	// that triggers an automatic arena compaction on the next mutation
	// (0 means the 0.5 default; set above 1 to disable). Compaction
	// rewrites the arenas densely in place — identifiers, port order,
	// and the incidence order of untouched servers are preserved.
	FragThreshold float64
}

// NewBipartiteOverlay returns an overlay seeded from fb (nil means an
// empty network). Vertex ids are preserved: customer c of fb keeps id c,
// server fb.NumLeft+s becomes server id s, and every customer's port
// order is fb's arc order.
func NewBipartiteOverlay(fb *CSRBipartite) *BipartiteOverlay {
	o := &BipartiteOverlay{}
	if fb == nil {
		return o
	}
	nl, ns := fb.NumLeft, fb.NumServers()
	csr := fb.C
	o.cust.ensureID(nl - 1)
	o.serv.ensureID(ns - 1)
	for c := 0; c < nl; c++ {
		o.custLive = append(o.custLive, true)
		lo, hi := csr.ArcRange(c)
		o.cust.alloc(c, hi-lo)
		for i := lo; i < hi; i++ {
			o.cust.push(c, csr.Col[i]-int32(nl))
		}
	}
	for s := 0; s < ns; s++ {
		o.servLive = append(o.servLive, true)
		o.serv.alloc(s, csr.Degree(nl+s))
	}
	for c := 0; c < nl; c++ {
		for _, s := range o.cust.seg(c) {
			o.serv.push(int(s), int32(c))
		}
	}
	o.liveCust, o.liveServ = nl, ns
	o.edges = csr.M()
	return o
}

// RestoreBipartiteOverlay rebuilds an overlay from its serialized live
// state — the inverse of walking the live ids, used by the encode
// package's "overlay" snapshot layer. custIDs lists the live customer
// ids ascending; customer custIDs[i]'s port-ordered adjacency is
// adjServ[adjPtr[i]:adjPtr[i+1]]. servIDs lists the live server ids
// ascending (isolated servers included). Identifiers are preserved
// exactly; dead ids below the maxima enter the free lists with the
// smallest id recycled first. Every adjacency entry must name a listed
// server and ports must not repeat; isolated live customers are
// permitted (the graph layer does not require solvability).
func RestoreBipartiteOverlay(custIDs, adjPtr, adjServ, servIDs []int32) (*BipartiteOverlay, error) {
	if len(adjPtr) == 0 && len(custIDs) == 0 {
		adjPtr = []int32{0}
	}
	if len(adjPtr) != len(custIDs)+1 {
		return nil, fmt.Errorf("graph: overlay restore has %d adjacency offsets for %d customers",
			len(adjPtr), len(custIDs))
	}
	if adjPtr[0] != 0 || int(adjPtr[len(adjPtr)-1]) != len(adjServ) {
		return nil, fmt.Errorf("graph: overlay restore adjacency offsets span [%d,%d] over %d entries",
			adjPtr[0], adjPtr[len(adjPtr)-1], len(adjServ))
	}
	o := &BipartiteOverlay{}

	nsIDs := 0
	if n := len(servIDs); n > 0 {
		nsIDs = int(servIDs[n-1]) + 1
	}
	o.servLive = make([]bool, nsIDs)
	prev := int32(-1)
	for _, s := range servIDs {
		if s <= prev {
			return nil, fmt.Errorf("graph: overlay restore server ids not ascending: %d after %d", s, prev)
		}
		prev = s
		o.servLive[s] = true
	}
	o.liveServ = len(servIDs)
	for s := nsIDs - 1; s >= 0; s-- {
		if !o.servLive[s] {
			o.servFree = append(o.servFree, int32(s))
		}
	}
	o.serv.ensureID(nsIDs - 1)

	ncIDs := 0
	if n := len(custIDs); n > 0 {
		ncIDs = int(custIDs[n-1]) + 1
	}
	o.custLive = make([]bool, ncIDs)
	prev = -1
	for _, c := range custIDs {
		if c <= prev {
			return nil, fmt.Errorf("graph: overlay restore customer ids not ascending: %d after %d", c, prev)
		}
		prev = c
		o.custLive[c] = true
	}
	o.liveCust = len(custIDs)
	for c := ncIDs - 1; c >= 0; c-- {
		if !o.custLive[c] {
			o.custFree = append(o.custFree, int32(c))
		}
	}
	o.cust.ensureID(ncIDs - 1)

	incCount := make([]int32, nsIDs)
	for i, c := range custIDs {
		lo, hi := adjPtr[i], adjPtr[i+1]
		if lo > hi {
			return nil, fmt.Errorf("graph: overlay restore adjacency offsets decrease at customer %d", c)
		}
		adj := adjServ[lo:hi]
		for j, s := range adj {
			if int(s) >= nsIDs || s < 0 || !o.servLive[s] {
				return nil, fmt.Errorf("graph: overlay restore customer %d adjacent to unlisted server %d", c, s)
			}
			for _, t := range adj[:j] {
				if t == s {
					return nil, fmt.Errorf("graph: overlay restore customer %d repeats port to server %d", c, s)
				}
			}
			incCount[s]++
		}
	}
	for _, s := range servIDs {
		o.serv.alloc(int(s), int(incCount[s]))
	}
	for i, c := range custIDs {
		adj := adjServ[adjPtr[i]:adjPtr[i+1]]
		o.cust.alloc(int(c), len(adj))
		for _, s := range adj {
			o.cust.push(int(c), s)
			o.serv.push(int(s), c)
		}
	}
	o.edges = len(adjServ)
	return o, nil
}

// NumCustomers returns the live customer count.
func (o *BipartiteOverlay) NumCustomers() int { return o.liveCust }

// NumServers returns the live server count.
func (o *BipartiteOverlay) NumServers() int { return o.liveServ }

// NumEdges returns the live edge count.
func (o *BipartiteOverlay) NumEdges() int { return o.edges }

// CustomerIDs returns the size of the customer id space (live ids are a
// subset of [0, CustomerIDs())).
func (o *BipartiteOverlay) CustomerIDs() int { return len(o.custLive) }

// ServerIDs returns the size of the server id space.
func (o *BipartiteOverlay) ServerIDs() int { return len(o.servLive) }

// CustomerLive reports whether customer id c is live.
func (o *BipartiteOverlay) CustomerLive(c int) bool {
	return c >= 0 && c < len(o.custLive) && o.custLive[c]
}

// ServerLive reports whether server id s is live.
func (o *BipartiteOverlay) ServerLive(s int) bool {
	return s >= 0 && s < len(o.servLive) && o.servLive[s]
}

// Adj returns customer c's adjacent server ids in port order. The slice
// aliases the overlay and is valid only until the next mutation.
func (o *BipartiteOverlay) Adj(c int) []int32 { return o.cust.seg(c) }

// Incident returns the customer ids incident to server s, in maintenance
// order (not port order). The slice aliases the overlay and is valid
// only until the next mutation.
func (o *BipartiteOverlay) Incident(s int) []int32 { return o.serv.seg(s) }

// Compactions returns how many automatic or explicit arena compactions
// the overlay has performed.
func (o *BipartiteOverlay) Compactions() int { return o.compactions }

// Frag returns the leaked fraction of the internal arenas: dead words
// over occupied words (0 when empty).
func (o *BipartiteOverlay) Frag() float64 {
	words := o.cust.words() + o.serv.words()
	if words == 0 {
		return 0
	}
	return float64(o.cust.dead+o.serv.dead) / float64(words)
}

// CompactArenas rewrites both internal arenas densely, reclaiming every
// leaked word. Ids, port order, and incidence order are preserved.
// Called automatically when Frag crosses FragThreshold; explicit calls
// are useful before long idle periods.
func (o *BipartiteOverlay) CompactArenas() {
	o.cust.compact()
	o.serv.compact()
	o.compactions++
}

// maybeCompact applies the FragThreshold policy after a mutation that
// leaked arena words.
func (o *BipartiteOverlay) maybeCompact() {
	t := o.FragThreshold
	if t == 0 {
		t = 0.5
	}
	if dead := o.cust.dead + o.serv.dead; dead > 256 && float64(dead) > t*float64(o.cust.words()+o.serv.words()) {
		o.CompactArenas()
	}
}

// AddCustomer inserts a customer adjacent to the given live servers
// (ports left to right) and returns its id — a recycled id when one is
// free, a fresh one otherwise.
func (o *BipartiteOverlay) AddCustomer(servers []int32) (int, error) {
	if len(servers) == 0 {
		return -1, fmt.Errorf("graph: overlay customer needs at least one adjacent server")
	}
	for i, s := range servers {
		if !o.ServerLive(int(s)) {
			return -1, fmt.Errorf("graph: overlay customer adjacency names dead server %d", s)
		}
		for _, t := range servers[:i] {
			if t == s {
				return -1, fmt.Errorf("graph: overlay customer adjacency repeats server %d", s)
			}
		}
	}
	var c int
	if n := len(o.custFree); n > 0 {
		c = int(o.custFree[n-1])
		o.custFree = o.custFree[:n-1]
	} else {
		c = len(o.custLive)
		o.custLive = append(o.custLive, false)
		o.cust.ensureID(c)
	}
	o.custLive[c] = true
	o.liveCust++
	o.cust.alloc(c, len(servers))
	for _, s := range servers {
		o.cust.push(c, s)
		o.serv.push(int(s), int32(c))
	}
	o.edges += len(servers)
	o.maybeCompact()
	return c, nil
}

// RemoveCustomer deletes customer c and its edges; the id becomes
// recyclable.
func (o *BipartiteOverlay) RemoveCustomer(c int) error {
	if !o.CustomerLive(c) {
		return fmt.Errorf("graph: overlay customer %d is not live", c)
	}
	for _, s := range o.cust.seg(c) {
		o.dropIncident(int(s), int32(c))
	}
	o.edges -= int(o.cust.length[c])
	o.cust.free(c)
	o.custLive[c] = false
	o.liveCust--
	o.custFree = append(o.custFree, int32(c))
	o.maybeCompact()
	return nil
}

// AddServer inserts an isolated server and returns its id — recycled
// when one is free, fresh otherwise.
func (o *BipartiteOverlay) AddServer() int {
	var s int
	if n := len(o.servFree); n > 0 {
		s = int(o.servFree[n-1])
		o.servFree = o.servFree[:n-1]
	} else {
		s = len(o.servLive)
		o.servLive = append(o.servLive, false)
		o.serv.ensureID(s)
	}
	o.servLive[s] = true
	o.liveServ++
	o.serv.alloc(s, 0)
	return s
}

// RemoveServer deletes server s, which must have no incident customers
// (callers drain it first, via RemoveEdge or customer removal).
func (o *BipartiteOverlay) RemoveServer(s int) error {
	if !o.ServerLive(s) {
		return fmt.Errorf("graph: overlay server %d is not live", s)
	}
	if o.serv.length[s] != 0 {
		return fmt.Errorf("graph: overlay server %d still has %d incident customers", s, o.serv.length[s])
	}
	o.serv.free(s)
	o.servLive[s] = false
	o.liveServ--
	o.servFree = append(o.servFree, int32(s))
	o.maybeCompact()
	return nil
}

// AddEdge appends server s to customer c's ports (it must not already be
// adjacent).
func (o *BipartiteOverlay) AddEdge(c, s int) error {
	if !o.CustomerLive(c) {
		return fmt.Errorf("graph: overlay customer %d is not live", c)
	}
	if !o.ServerLive(s) {
		return fmt.Errorf("graph: overlay server %d is not live", s)
	}
	for _, t := range o.cust.seg(c) {
		if int(t) == s {
			return fmt.Errorf("graph: overlay edge {%d,%d} already present", c, s)
		}
	}
	o.cust.push(c, int32(s))
	o.serv.push(s, int32(c))
	o.edges++
	o.maybeCompact()
	return nil
}

// AddEdgeAt inserts server s as customer c's port at position at,
// shifting later ports right by one — the exact inverse of RemoveEdge
// for the customer's port order, which is the protocol surface. (The
// server's incidence list is maintenance-ordered, so s's side is a
// plain append.) This is the rollback primitive of the resolver's
// delta journal; use AddEdge for ordinary growth.
func (o *BipartiteOverlay) AddEdgeAt(c, s, at int) error {
	if !o.CustomerLive(c) {
		return fmt.Errorf("graph: overlay customer %d is not live", c)
	}
	if !o.ServerLive(s) {
		return fmt.Errorf("graph: overlay server %d is not live", s)
	}
	adj := o.cust.seg(c)
	if at < 0 || at > len(adj) {
		return fmt.Errorf("graph: overlay customer %d has %d ports, cannot insert at %d", c, len(adj), at)
	}
	for _, t := range adj {
		if int(t) == s {
			return fmt.Errorf("graph: overlay edge {%d,%d} already present", c, s)
		}
	}
	o.cust.push(c, int32(s))
	seg := o.cust.seg(c) // push may have relocated the segment
	copy(seg[at+1:], seg[at:len(seg)-1])
	seg[at] = int32(s)
	o.serv.push(s, int32(c))
	o.edges++
	o.maybeCompact()
	return nil
}

// RemoveEdge deletes the edge between customer c and server s, shifting
// c's later ports left by one.
func (o *BipartiteOverlay) RemoveEdge(c, s int) error {
	if !o.CustomerLive(c) {
		return fmt.Errorf("graph: overlay customer %d is not live", c)
	}
	adj := o.cust.seg(c)
	at := -1
	for i, t := range adj {
		if int(t) == s {
			at = i
			break
		}
	}
	if at < 0 {
		return fmt.Errorf("graph: overlay edge {%d,%d} not present", c, s)
	}
	o.cust.removeAt(c, at, true)
	o.dropIncident(s, int32(c))
	o.edges--
	o.maybeCompact()
	return nil
}

// dropIncident removes customer c from server s's incidence list
// (swap-remove; the list is maintenance-ordered).
func (o *BipartiteOverlay) dropIncident(s int, c int32) {
	inc := o.serv.seg(s)
	for i, t := range inc {
		if t == c {
			o.serv.removeAt(s, i, false)
			return
		}
	}
	panic(fmt.Sprintf("graph: overlay incidence of server %d lost customer %d", s, c))
}

// OverlayCSR is a compacted flat view of a BipartiteOverlay's live
// graph, with the id maps that connect dense CSR ids to stable overlay
// ids. Buffers are reused grow-only across BuildCSR calls.
type OverlayCSR struct {
	// C is the compacted graph; customers occupy dense ids
	// [0, NumLeft), servers the rest (ascending overlay id on both
	// sides; see the port-order rules in this file).
	C CSR
	// NumLeft is the live customer count (the bipartition split).
	NumLeft int
	// CustID maps dense customer ids to overlay customer ids; ServID
	// likewise for servers (dense id minus NumLeft).
	CustID, ServID []int32
	// CustDense maps overlay customer ids to dense ids (-1 when dead);
	// ServDense likewise for servers.
	CustDense, ServDense []int32

	bip CSRBipartite
}

// Bipartite returns the compacted graph as a CSRBipartite view (valid
// until the next BuildCSR into this OverlayCSR).
func (oc *OverlayCSR) Bipartite() *CSRBipartite {
	oc.bip = CSRBipartite{C: &oc.C, NumLeft: oc.NumLeft}
	return &oc.bip
}

// BuildCSR compacts the live overlay graph into out using b
// (CSRBuilder.Reset + BuildInto, so repeated compactions of same-sized
// or shrinking graphs allocate nothing once warmed). Every live customer
// must have at least one edge if the result is to be solvable; BuildCSR
// itself permits isolated customers and servers.
func (o *BipartiteOverlay) BuildCSR(b *CSRBuilder, out *OverlayCSR) {
	out.CustID = reuse.Grown(out.CustID, o.liveCust)
	out.ServID = reuse.Grown(out.ServID, o.liveServ)
	out.CustDense = reuse.Grown(out.CustDense, len(o.custLive))
	out.ServDense = reuse.Grown(out.ServDense, len(o.servLive))
	dc := 0
	for c := range o.custLive {
		if o.custLive[c] {
			out.CustID[dc] = int32(c)
			out.CustDense[c] = int32(dc)
			dc++
		} else {
			out.CustDense[c] = -1
		}
	}
	ds := 0
	for s := range o.servLive {
		if o.servLive[s] {
			out.ServID[ds] = int32(s)
			out.ServDense[s] = int32(ds)
			ds++
		} else {
			out.ServDense[s] = -1
		}
	}
	out.NumLeft = dc
	b.Reset(dc + ds)
	for d := 0; d < dc; d++ {
		c := int(out.CustID[d])
		for _, s := range o.cust.seg(c) {
			b.AddEdge(d, dc+int(out.ServDense[s]))
		}
	}
	b.BuildInto(&out.C)
}
