package graph

import "fmt"

// Bipartite views a graph as a two-sided customer/server network
// (Section 7): vertices 0..NumLeft-1 are customers ("left"), the rest are
// servers ("right"). Every edge must cross the bipartition. The underlying
// Graph doubles as the LOCAL communication network for the distributed
// assignment algorithms.
type Bipartite struct {
	G       *Graph
	NumLeft int
}

// NewBipartite validates that every edge of g crosses the split at
// numLeft and returns the wrapped view.
func NewBipartite(g *Graph, numLeft int) (*Bipartite, error) {
	if numLeft < 0 || numLeft > g.N() {
		return nil, fmt.Errorf("graph: bipartition at %d outside [0,%d]", numLeft, g.N())
	}
	for id, e := range g.Edges() {
		if (e.U < numLeft) == (e.V < numLeft) {
			return nil, fmt.Errorf("graph: edge %d = %v does not cross the bipartition at %d", id, e, numLeft)
		}
	}
	return &Bipartite{G: g, NumLeft: numLeft}, nil
}

// MustBipartite is NewBipartite that panics on error.
func MustBipartite(g *Graph, numLeft int) *Bipartite {
	b, err := NewBipartite(g, numLeft)
	if err != nil {
		panic(err)
	}
	return b
}

// IsCustomer reports whether vertex v is on the left (customer) side.
func (b *Bipartite) IsCustomer(v int) bool { return v < b.NumLeft }

// NumCustomers returns the number of customers.
func (b *Bipartite) NumCustomers() int { return b.NumLeft }

// NumServers returns the number of servers.
func (b *Bipartite) NumServers() int { return b.G.N() - b.NumLeft }

// Customers returns the customer vertex identifiers 0..NumLeft-1.
func (b *Bipartite) Customers() []int {
	out := make([]int, b.NumLeft)
	for i := range out {
		out[i] = i
	}
	return out
}

// Servers returns the server vertex identifiers NumLeft..n-1.
func (b *Bipartite) Servers() []int {
	out := make([]int, b.NumServers())
	for i := range out {
		out[i] = b.NumLeft + i
	}
	return out
}

// MaxCustomerDegree returns C, the maximum degree over customers.
func (b *Bipartite) MaxCustomerDegree() int {
	c := 0
	for v := 0; v < b.NumLeft; v++ {
		if d := b.G.Degree(v); d > c {
			c = d
		}
	}
	return c
}

// MaxServerDegree returns S, the maximum degree over servers.
func (b *Bipartite) MaxServerDegree() int {
	s := 0
	for v := b.NumLeft; v < b.G.N(); v++ {
		if d := b.G.Degree(v); d > s {
			s = d
		}
	}
	return s
}

// Assignment maps every customer to one adjacent server — the output
// object of the stable assignment problem (Section 7). ServerOf[c] is the
// assigned server of customer c, or -1 while unassigned. Loads are
// maintained incrementally.
type Assignment struct {
	B        *Bipartite
	ServerOf []int
	load     []int // indexed by vertex id (customers stay 0)
}

// NewAssignment returns an all-unassigned assignment over b.
func NewAssignment(b *Bipartite) *Assignment {
	so := make([]int, b.NumLeft)
	for i := range so {
		so[i] = -1
	}
	return &Assignment{B: b, ServerOf: so, load: make([]int, b.G.N())}
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	return &Assignment{
		B:        a.B,
		ServerOf: append([]int(nil), a.ServerOf...),
		load:     append([]int(nil), a.load...),
	}
}

// Assigned reports whether customer c has a server.
func (a *Assignment) Assigned(c int) bool { return a.ServerOf[c] >= 0 }

// Complete reports whether every customer is assigned.
func (a *Assignment) Complete() bool {
	for _, s := range a.ServerOf {
		if s < 0 {
			return false
		}
	}
	return true
}

// Load returns the number of customers assigned to server s.
func (a *Assignment) Load(s int) int { return a.load[s] }

// Assign binds customer c to server s (which must be adjacent; c must be
// unassigned).
func (a *Assignment) Assign(c, s int) {
	if a.ServerOf[c] >= 0 {
		panic(fmt.Sprintf("graph: customer %d already assigned", c))
	}
	if !a.B.G.HasEdge(c, s) || a.B.IsCustomer(s) {
		panic(fmt.Sprintf("graph: customer %d cannot use server %d", c, s))
	}
	a.ServerOf[c] = s
	a.load[s]++
}

// Reassign moves customer c from its current server to adjacent server s.
func (a *Assignment) Reassign(c, s int) {
	old := a.ServerOf[c]
	if old < 0 {
		panic(fmt.Sprintf("graph: customer %d not assigned yet", c))
	}
	if !a.B.G.HasEdge(c, s) || a.B.IsCustomer(s) {
		panic(fmt.Sprintf("graph: customer %d cannot use server %d", c, s))
	}
	a.load[old]--
	a.ServerOf[c] = s
	a.load[s]++
}

// Badness returns load(assigned) - min over adjacent servers of load — the
// hyperedge badness of Section 7.2. Zero or negative means the customer
// uses a least-loaded adjacent server.
func (a *Assignment) Badness(c int) int {
	s := a.ServerOf[c]
	if s < 0 {
		panic(fmt.Sprintf("graph: customer %d not assigned", c))
	}
	min := -1
	for _, arc := range a.B.G.Adj(c) {
		if l := a.load[arc.To]; min < 0 || l < min {
			min = l
		}
	}
	return a.load[s] - min
}

// Happy reports whether customer c has no incentive to switch: its
// server's load is at most any adjacent server's load plus one.
func (a *Assignment) Happy(c int) bool { return a.Badness(c) <= 1 }

// Stable reports whether the assignment is complete and every customer is
// happy — the stable assignment condition of Section 7.
func (a *Assignment) Stable() bool {
	if !a.Complete() {
		return false
	}
	for c := 0; c < a.B.NumLeft; c++ {
		if !a.Happy(c) {
			return false
		}
	}
	return true
}

// MaxBadness returns the maximum badness over assigned customers.
func (a *Assignment) MaxBadness() int {
	max := 0
	for c := 0; c < a.B.NumLeft; c++ {
		if a.ServerOf[c] < 0 {
			continue
		}
		if b := a.Badness(c); b > max {
			max = b
		}
	}
	return max
}

// SemimatchingCost returns Σ_s f(load(s)) with f(x) = x(x+1)/2, the
// objective of Section 1.3.
func (a *Assignment) SemimatchingCost() int {
	cost := 0
	for s := a.B.NumLeft; s < a.B.G.N(); s++ {
		l := a.load[s]
		cost += l * (l + 1) / 2
	}
	return cost
}

// Loads returns a copy of the per-server load vector indexed by vertex id.
func (a *Assignment) Loads() []int { return append([]int(nil), a.load...) }

// CheckLoads recomputes loads from scratch; a consistency oracle.
func (a *Assignment) CheckLoads() error {
	fresh := make([]int, a.B.G.N())
	for c, s := range a.ServerOf {
		if s < 0 {
			continue
		}
		if a.B.IsCustomer(s) || !a.B.G.HasEdge(c, s) {
			return fmt.Errorf("graph: customer %d assigned to invalid server %d", c, s)
		}
		fresh[s]++
	}
	for v := range fresh {
		if fresh[v] != a.load[v] {
			return fmt.Errorf("graph: load of %d drifted: %d cached, %d actual", v, a.load[v], fresh[v])
		}
	}
	return nil
}

// EffectiveLoad returns min(load, k) — the truncated load of the k-bounded
// relaxation (Section 7.3).
func (a *Assignment) EffectiveLoad(s, k int) int {
	if a.load[s] > k {
		return k
	}
	return a.load[s]
}

// KBadness is Badness computed on effective (k-truncated) loads.
func (a *Assignment) KBadness(c, k int) int {
	s := a.ServerOf[c]
	if s < 0 {
		panic(fmt.Sprintf("graph: customer %d not assigned", c))
	}
	min := -1
	for _, arc := range a.B.G.Adj(c) {
		if l := a.EffectiveLoad(arc.To, k); min < 0 || l < min {
			min = l
		}
	}
	return a.EffectiveLoad(s, k) - min
}

// KStable reports whether the assignment solves the k-bounded stable
// assignment problem: complete, and no customer on a server of (true)
// load ℓ has a neighbor of load at most min(k, ℓ) - 2 (Section 7.3).
func (a *Assignment) KStable(k int) bool {
	if !a.Complete() {
		return false
	}
	for c := 0; c < a.B.NumLeft; c++ {
		l := a.load[a.ServerOf[c]]
		threshold := l
		if k < threshold {
			threshold = k
		}
		for _, arc := range a.B.G.Adj(c) {
			if a.load[arc.To] <= threshold-2 {
				return false
			}
		}
	}
	return true
}
