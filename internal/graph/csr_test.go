package graph

import (
	"math/rand"
	"testing"
)

func TestCSRFromGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*Graph{
		New(0),
		New(3),
		Path(7),
		Star(9),
		Torus2D(4, 5),
		RandomGNM(30, 80, rng),
	} {
		csr := NewCSRFromGraph(g)
		if err := csr.Validate(); err != nil {
			t.Fatalf("csr invalid: %v", err)
		}
		if csr.N() != g.N() || csr.M() != g.M() {
			t.Fatalf("csr %dx%d, graph %dx%d", csr.N(), csr.M(), g.N(), g.M())
		}
		// Port order must survive the round trip exactly.
		back := csr.ToGraph()
		if err := back.Validate(); err != nil {
			t.Fatalf("round-tripped graph invalid: %v", err)
		}
		for v := 0; v < g.N(); v++ {
			a, b := g.Adj(v), back.Adj(v)
			if len(a) != len(b) {
				t.Fatalf("vertex %d degree changed", v)
			}
			for p := range a {
				if a[p] != b[p] {
					t.Fatalf("vertex %d port %d: %v != %v", v, p, a[p], b[p])
				}
			}
		}
		for id, e := range g.Edges() {
			if back.Edge(id) != e {
				t.Fatalf("edge %d changed: %v != %v", id, back.Edge(id), e)
			}
		}
	}
}

func TestCSRRevRouting(t *testing.T) {
	g := RandomGNM(25, 60, rand.New(rand.NewSource(2)))
	csr := NewCSRFromGraph(g)
	for v := 0; v < csr.N(); v++ {
		lo, hi := csr.ArcRange(v)
		for i := lo; i < hi; i++ {
			r := int(csr.Rev[i])
			if int(csr.Col[r]) != v {
				t.Fatalf("reverse of arc %d does not lead back to %d", i, v)
			}
			if csr.Tail(i) != v {
				t.Fatalf("Tail(%d) = %d, want %d", i, csr.Tail(i), v)
			}
			if csr.Tail(r) != int(csr.Col[i]) {
				t.Fatalf("tail of reverse arc disagrees with head")
			}
		}
	}
}

func TestCSRBuilderMatchesGraph(t *testing.T) {
	edges := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}}
	g := New(5)
	b := NewCSRBuilder(5, len(edges))
	for _, e := range edges {
		idG := g.AddEdge(e[0], e[1])
		idB := b.AddEdge(e[0], e[1])
		if idG != idB {
			t.Fatalf("edge ids diverge: %d != %d", idG, idB)
		}
	}
	csr := b.Build()
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Graph.AddEdge appends arcs in insertion order, as does the builder's
	// counting sort, so adjacency must agree arc for arc.
	ref := NewCSRFromGraph(g)
	if len(csr.Col) != len(ref.Col) {
		t.Fatalf("arc counts differ")
	}
	for i := range csr.Col {
		if csr.Col[i] != ref.Col[i] || csr.EID[i] != ref.EID[i] || csr.Rev[i] != ref.Rev[i] {
			t.Fatalf("arc %d differs: (%d,%d,%d) != (%d,%d,%d)", i,
				csr.Col[i], csr.EID[i], csr.Rev[i], ref.Col[i], ref.EID[i], ref.Rev[i])
		}
	}
}

// TestCSRBuilderResetBuildInto drives one builder through a sequence of
// graphs of varying sizes via Reset/BuildInto and checks every assembly
// against a fresh builder's Build, then asserts the warmed rebuild cycle
// performs no heap allocations — the contract the per-phase subgame
// construction of the orientation and assignment runtimes relies on.
func TestCSRBuilderResetBuildInto(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	b := NewCSRBuilder(0, 0)
	var c CSR
	sizes := []int{8, 40, 12, 100, 5, 64}
	for _, n := range sizes {
		b.Reset(n)
		fresh := NewCSRBuilder(n, 0)
		for u := 1; u < n; u++ {
			v := rng.Intn(u)
			if idA, idB := b.AddEdge(u, v), fresh.AddEdge(u, v); idA != idB {
				t.Fatalf("n=%d: edge ids diverge: %d != %d", n, idA, idB)
			}
		}
		b.BuildInto(&c)
		if err := c.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ref := fresh.Build()
		if len(c.Col) != len(ref.Col) || c.N() != ref.N() {
			t.Fatalf("n=%d: shapes differ", n)
		}
		for i := range c.Col {
			if c.Col[i] != ref.Col[i] || c.EID[i] != ref.EID[i] || c.Rev[i] != ref.Rev[i] {
				t.Fatalf("n=%d: arc %d differs", n, i)
			}
		}
	}
	// Warmed rebuild of the largest graph: no allocations.
	n := 100
	rebuild := func() {
		b.Reset(n)
		for u := 1; u < n; u++ {
			b.AddEdge(u, u-1)
		}
		b.BuildInto(&c)
	}
	rebuild()
	if allocs := testing.AllocsPerRun(5, rebuild); allocs != 0 {
		t.Errorf("warmed Reset/BuildInto cycle allocated %.1f objects; want 0", allocs)
	}
}

func TestCSRRandomLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ levels, width, deg int }{
		{3, 10, 3},
		{2, 5, 5},  // dense: Fisher–Yates path
		{1, 40, 2}, // sparse: stamp path
		{0, 4, 2},  // no layers above 0: edgeless
	} {
		csr := CSRRandomLayered(tc.levels, tc.width, tc.deg, rng)
		if err := csr.Validate(); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if csr.N() != (tc.levels+1)*tc.width {
			t.Fatalf("%+v: n=%d", tc, csr.N())
		}
		if want := tc.levels * tc.width * tc.deg; csr.M() != want {
			t.Fatalf("%+v: m=%d, want %d", tc, csr.M(), want)
		}
		// Every vertex above the bottom layer has exactly deg downward
		// edges, and all edges join adjacent layers.
		down := make([]int, csr.N())
		for v := 0; v < csr.N(); v++ {
			lv := v / tc.width
			lo, hi := csr.ArcRange(v)
			for i := lo; i < hi; i++ {
				lw := int(csr.Col[i]) / tc.width
				if lw != lv-1 && lw != lv+1 {
					t.Fatalf("%+v: edge joins layers %d and %d", tc, lv, lw)
				}
				if lw == lv-1 {
					down[v]++
				}
			}
		}
		for v := tc.width; v < csr.N(); v++ {
			if down[v] != tc.deg {
				t.Fatalf("%+v: vertex %d has %d downward edges, want %d", tc, v, down[v], tc.deg)
			}
		}
	}
}

func TestCSRLayeredGrid(t *testing.T) {
	csr := CSRLayeredGrid(4, 5)
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
	if csr.N() != 20 || csr.M() != 2*3*5 {
		t.Fatalf("n=%d m=%d", csr.N(), csr.M())
	}
	for v := 0; v < csr.N(); v++ {
		r := v / 5
		lo, hi := csr.ArcRange(v)
		for i := lo; i < hi; i++ {
			rw := int(csr.Col[i]) / 5
			if rw != r-1 && rw != r+1 {
				t.Fatalf("edge joins rows %d and %d", r, rw)
			}
		}
		// Interior rows have degree 4 (two up, two down).
		if r > 0 && r < 3 && hi-lo != 4 {
			t.Fatalf("vertex %d (row %d) has degree %d, want 4", v, r, hi-lo)
		}
	}
}

func TestCSRPowerLawBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nl, nr, maxDeg := 300, 60, 12
	csr := CSRPowerLawBipartite(nl, nr, 2.2, maxDeg, rng)
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
	if csr.N() != nl+nr {
		t.Fatalf("n=%d", csr.N())
	}
	ones := 0
	for u := 0; u < nl; u++ {
		d := csr.Degree(u)
		if d < 1 || d > maxDeg {
			t.Fatalf("customer %d has degree %d", u, d)
		}
		if d == 1 {
			ones++
		}
		lo, hi := csr.ArcRange(u)
		for i := lo; i < hi; i++ {
			if int(csr.Col[i]) < nl {
				t.Fatalf("customer %d links to customer %d", u, csr.Col[i])
			}
		}
	}
	// A power law with alpha > 2 is dominated by degree-1 customers.
	if ones < nl/2 {
		t.Fatalf("only %d/%d degree-1 customers; power law looks wrong", ones, nl)
	}
	// Dense-draw fallback: maxDeg close to nr must still terminate and
	// produce distinct neighbors (Validate above would catch duplicates).
	dense := CSRPowerLawBipartite(20, 8, 0.5, 8, rng)
	if err := dense.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCSRRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ n, d int }{
		{10, 0},
		{10, 3},
		{50, 4},
		{101, 6},
		{400, 7},
	} {
		csr := CSRRandomRegular(tc.n, tc.d, rng)
		if err := csr.Validate(); err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		if csr.N() != tc.n || csr.M() != tc.n*tc.d/2 {
			t.Fatalf("n=%d d=%d: got %d vertices %d edges", tc.n, tc.d, csr.N(), csr.M())
		}
		for v := 0; v < csr.N(); v++ {
			if csr.Degree(v) != tc.d {
				t.Fatalf("n=%d d=%d: vertex %d has degree %d", tc.n, tc.d, v, csr.Degree(v))
			}
		}
	}
}

func TestCSRPowerLawGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, maxDeg := 500, 20
	csr := CSRPowerLaw(n, 2.2, maxDeg, rng)
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
	if csr.N() != n {
		t.Fatalf("n=%d", csr.N())
	}
	// Every vertex drew at least one edge, so realized degrees are >= 1
	// unless its rejection budget ran dry (impossible at this density).
	ones, max := 0, 0
	for v := 0; v < n; v++ {
		d := csr.Degree(v)
		if d < 1 {
			t.Fatalf("vertex %d is isolated", v)
		}
		if d <= 2 {
			ones++
		}
		if d > max {
			max = d
		}
	}
	// Heavy tail of low-degree vertices, and at least one hub above the
	// uniform mean (alpha > 2 concentrates draws at degree 1; received
	// edges add a Poisson-like floor on top).
	if ones < n/4 {
		t.Fatalf("only %d/%d low-degree vertices; power law looks wrong", ones, n)
	}
	if max < 5 {
		t.Fatalf("max degree %d; expected at least one hub", max)
	}
}
