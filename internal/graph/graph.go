// Package graph provides the undirected-graph substrate used throughout the
// token dropping reproduction: a compact adjacency representation with
// stable edge identifiers, generators for the graph families the paper
// evaluates on (random regular graphs, high-girth graphs, perfect d-ary
// trees, bipartite customer/server graphs, layered DAGs), and structural
// tooling (BFS, girth, ball extraction, rooted-tree isomorphism) needed by
// the lower-bound experiments of Section 6.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between vertices U and V. Construction
// normalizes U < V so an Edge value is a canonical key for the edge.
type Edge struct {
	U, V int
}

// NormEdge returns the canonical (smaller endpoint first) form of {u, v}.
func NormEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", x, e))
}

// Arc is one directed half of an undirected edge as seen from a vertex's
// adjacency list: the neighbor it leads to and the identifier of the
// underlying undirected edge.
type Arc struct {
	To   int // neighbor vertex
	Edge int // undirected edge identifier, index into Edges()
}

// Graph is an undirected multigraph with vertices 0..n-1 and stable edge
// identifiers 0..m-1. Self-loops are rejected; parallel edges are allowed
// by the representation but rejected by AddEdge (the paper's graphs are
// simple).
//
// The zero value is an empty graph with no vertices; use New for a graph
// with a fixed vertex count.
type Graph struct {
	adj   [][]Arc
	edges []Edge
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{adj: make([][]Arc, n)}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := &Graph{
		adj:   make([][]Arc, len(g.adj)),
		edges: append([]Edge(nil), g.edges...),
	}
	for v, as := range g.adj {
		h.adj[v] = append([]Arc(nil), as...)
	}
	return h
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddVertex appends a fresh isolated vertex and returns its identifier.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge inserts the undirected edge {u, v} and returns its identifier.
// It panics on self-loops, duplicate edges, and out-of-range endpoints:
// all the paper's constructions are simple graphs, so a violation is a bug
// in the caller, not an input error.
func (g *Graph) AddEdge(u, v int) int {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range (n=%d)", u, v, len(g.adj)))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if g.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: duplicate edge {%d,%d}", u, v))
	}
	id := len(g.edges)
	g.edges = append(g.edges, NormEdge(u, v))
	g.adj[u] = append(g.adj[u], Arc{To: v, Edge: id})
	g.adj[v] = append(g.adj[v], Arc{To: u, Edge: id})
	return id
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	for _, a := range g.adj[u] {
		if a.To == v {
			return true
		}
	}
	return false
}

// EdgeID returns the identifier of edge {u, v} and whether it exists.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	if u < 0 || u >= len(g.adj) {
		return 0, false
	}
	for _, a := range g.adj[u] {
		if a.To == v {
			return a.Edge, true
		}
	}
	return 0, false
}

// Edge returns the endpoints of edge id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns the edge list indexed by edge identifier. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns Δ, the maximum degree over all vertices (0 for an
// edgeless graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for _, as := range g.adj {
		if len(as) > d {
			d = len(as)
		}
	}
	return d
}

// Adj returns the adjacency list of v as arcs (neighbor, edge id). The
// slice is owned by the graph and must not be modified. The order of arcs
// defines the port numbering used by the LOCAL runtime: port p of v leads
// to Adj(v)[p].To.
func (g *Graph) Adj(v int) []Arc { return g.adj[v] }

// Neighbors returns the neighbors of v in port order as a fresh slice.
func (g *Graph) Neighbors(v int) []int {
	ns := make([]int, len(g.adj[v]))
	for i, a := range g.adj[v] {
		ns[i] = a.To
	}
	return ns
}

// SortAdjacency reorders every adjacency list by neighbor identifier.
// Generators call this so that port numbering — and therefore every
// deterministic tie-break in the distributed algorithms — is a function of
// the graph alone, not of edge insertion order.
func (g *Graph) SortAdjacency() {
	for v := range g.adj {
		sort.Slice(g.adj[v], func(i, j int) bool { return g.adj[v][i].To < g.adj[v][j].To })
	}
}

// IsRegular reports whether every vertex has degree d.
func (g *Graph) IsRegular(d int) bool {
	for _, as := range g.adj {
		if len(as) != d {
			return false
		}
	}
	return true
}

// Validate checks internal consistency (each edge appears in exactly the
// two adjacency lists of its endpoints, no self-loops, no duplicates) and
// returns a descriptive error on the first violation. It is used by tests
// and by generators with nontrivial construction logic.
func (g *Graph) Validate() error {
	seen := make(map[Edge]bool, len(g.edges))
	for id, e := range g.edges {
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self-loop at %d", id, e.U)
		}
		if e.U < 0 || e.V >= len(g.adj) {
			return fmt.Errorf("graph: edge %d = %v out of range", id, e)
		}
		if seen[e] {
			return fmt.Errorf("graph: duplicate edge %v", e)
		}
		seen[e] = true
	}
	deg := make([]int, len(g.adj))
	for v, as := range g.adj {
		dup := make(map[int]bool, len(as))
		for _, a := range as {
			if a.Edge < 0 || a.Edge >= len(g.edges) {
				return fmt.Errorf("graph: vertex %d references unknown edge %d", v, a.Edge)
			}
			e := g.edges[a.Edge]
			if e.Other(v) != a.To {
				return fmt.Errorf("graph: vertex %d arc to %d disagrees with edge %d = %v", v, a.To, a.Edge, e)
			}
			if dup[a.To] {
				return fmt.Errorf("graph: vertex %d lists neighbor %d twice", v, a.To)
			}
			dup[a.To] = true
			deg[v]++
		}
	}
	total := 0
	for _, d := range deg {
		total += d
	}
	if total != 2*len(g.edges) {
		return fmt.Errorf("graph: degree sum %d != 2m = %d", total, 2*len(g.edges))
	}
	return nil
}

// BFS runs a breadth-first search from src and returns the distance slice
// (-1 for unreachable vertices).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.adj[v] {
			if dist[a.To] < 0 {
				dist[a.To] = dist[v] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return dist
}

// IsConnected reports whether g is connected (vacuously true for n <= 1).
func (g *Graph) IsConnected() bool {
	if len(g.adj) <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Girth returns the length of a shortest cycle in g, or -1 if g is acyclic
// (a forest). It runs a BFS from every vertex, which is O(n·m) — fine for
// the instance sizes of the lower-bound experiments.
func (g *Graph) Girth() int {
	best := -1
	dist := make([]int, len(g.adj))
	parentEdge := make([]int, len(g.adj))
	for src := range g.adj {
		for i := range dist {
			dist[i] = -1
			parentEdge[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, a := range g.adj[v] {
				if a.Edge == parentEdge[v] {
					continue
				}
				if dist[a.To] < 0 {
					dist[a.To] = dist[v] + 1
					parentEdge[a.To] = a.Edge
					queue = append(queue, a.To)
				} else {
					// A non-tree edge closes a cycle through src of length
					// dist[v] + dist[a.To] + 1 (an upper bound that is tight
					// for some src, which suffices for a minimum over all src).
					c := dist[v] + dist[a.To] + 1
					if best < 0 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// Bipartition attempts to 2-color g. It returns the side (0/1) of each
// vertex and true on success, or nil and false if g has an odd cycle.
func (g *Graph) Bipartition() ([]int, bool) {
	side := make([]int, len(g.adj))
	for i := range side {
		side[i] = -1
	}
	for src := range g.adj {
		if side[src] >= 0 {
			continue
		}
		side[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, a := range g.adj[v] {
				if side[a.To] < 0 {
					side[a.To] = 1 - side[v]
					queue = append(queue, a.To)
				} else if side[a.To] == side[v] {
					return nil, false
				}
			}
		}
	}
	return side, true
}
