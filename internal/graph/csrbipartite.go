package graph

import "fmt"

// CSRBipartite views a CSR graph as a two-sided customer/server network —
// the flat counterpart of Bipartite, and the input of the sharded
// assignment runtime (internal/assign.SolveSharded). Vertices 0..NumLeft-1
// are customers ("left"), the rest are servers ("right"), and every edge
// must cross the bipartition. Because customers occupy a prefix of the
// vertex range, the customer adjacency is the packed prefix
// Col[0:Row[NumLeft]] of the arc arrays and the server adjacency is the
// packed suffix — phase loops scan each side with strictly sequential
// reads and index per-server state as Col[i]-NumLeft with no indirection.
type CSRBipartite struct {
	C       *CSR
	NumLeft int
}

// NewCSRBipartite validates that every edge of c crosses the split at
// numLeft and returns the wrapped view.
func NewCSRBipartite(c *CSR, numLeft int) (*CSRBipartite, error) {
	if numLeft < 0 || numLeft > c.N() {
		return nil, fmt.Errorf("graph: bipartition at %d outside [0,%d]", numLeft, c.N())
	}
	for v := 0; v < numLeft; v++ {
		lo, hi := c.ArcRange(v)
		for i := lo; i < hi; i++ {
			if int(c.Col[i]) < numLeft {
				return nil, fmt.Errorf("graph: edge %d = {%d,%d} does not cross the bipartition at %d",
					c.EID[i], v, c.Col[i], numLeft)
			}
		}
	}
	for v := numLeft; v < c.N(); v++ {
		lo, hi := c.ArcRange(v)
		for i := lo; i < hi; i++ {
			if int(c.Col[i]) >= numLeft {
				return nil, fmt.Errorf("graph: edge %d = {%d,%d} does not cross the bipartition at %d",
					c.EID[i], v, c.Col[i], numLeft)
			}
		}
	}
	return &CSRBipartite{C: c, NumLeft: numLeft}, nil
}

// MustCSRBipartite is NewCSRBipartite that panics on error; for generators
// whose construction guarantees a crossing edge set.
func MustCSRBipartite(c *CSR, numLeft int) *CSRBipartite {
	b, err := NewCSRBipartite(c, numLeft)
	if err != nil {
		panic(err)
	}
	return b
}

// NewCSRBipartiteFromBipartite converts a pointer-based Bipartite to flat
// form, preserving vertex ids, edge ids, and port order — deterministic
// algorithms behave identically on either view, which is what lets the
// differential suite compare assign.Solve with assign.SolveSharded bit for
// bit.
func NewCSRBipartiteFromBipartite(b *Bipartite) *CSRBipartite {
	return &CSRBipartite{C: NewCSRFromGraph(b.G), NumLeft: b.NumLeft}
}

// ToBipartite materializes the pointer-based view (same vertex and edge
// identifiers, same port order), for cross-checks against the seed engine
// and the structural tooling. O(n + m) object construction — test-sized.
func (b *CSRBipartite) ToBipartite() *Bipartite {
	return &Bipartite{G: b.C.ToGraph(), NumLeft: b.NumLeft}
}

// NumCustomers returns the number of customers.
func (b *CSRBipartite) NumCustomers() int { return b.NumLeft }

// NumServers returns the number of servers.
func (b *CSRBipartite) NumServers() int { return b.C.N() - b.NumLeft }

// IsCustomer reports whether vertex v is on the left (customer) side.
func (b *CSRBipartite) IsCustomer(v int) bool { return v < b.NumLeft }

// MaxCustomerDegree returns C, the maximum degree over customers.
func (b *CSRBipartite) MaxCustomerDegree() int {
	c := int32(0)
	for v := 0; v < b.NumLeft; v++ {
		if d := b.C.Row[v+1] - b.C.Row[v]; d > c {
			c = d
		}
	}
	return int(c)
}

// MaxServerDegree returns S, the maximum degree over servers.
func (b *CSRBipartite) MaxServerDegree() int {
	s := int32(0)
	for v := b.NumLeft; v < b.C.N(); v++ {
		if d := b.C.Row[v+1] - b.C.Row[v]; d > s {
			s = d
		}
	}
	return int(s)
}
