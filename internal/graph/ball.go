package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Ball is the subgraph induced by all vertices within distance radius of a
// center vertex, with the original vertex identifiers remembered. It is the
// "t-radius neighborhood G[v, t]" of Section 6.
type Ball struct {
	Center int   // center in the original graph
	Radius int   // extraction radius
	Orig   []int // ball vertex -> original vertex
	Dist   []int // ball vertex -> distance from center
	G      *Graph
}

// ExtractBall returns the ball of the given radius around center.
func ExtractBall(g *Graph, center, radius int) *Ball {
	dist := g.BFS(center)
	idx := make(map[int]int)
	var orig []int
	for v, d := range dist {
		if d >= 0 && d <= radius {
			idx[v] = len(orig)
			orig = append(orig, v)
		}
	}
	// Keep vertex order deterministic (BFS over sorted adjacency already
	// yields increasing ids per level, but sort for safety).
	sort.Ints(orig)
	for i, v := range orig {
		idx[v] = i
	}
	sub := New(len(orig))
	bdist := make([]int, len(orig))
	for i, v := range orig {
		bdist[i] = dist[v]
	}
	for _, e := range g.Edges() {
		iu, okU := idx[e.U]
		iv, okV := idx[e.V]
		if okU && okV {
			sub.AddEdge(iu, iv)
		}
	}
	sub.SortAdjacency()
	return &Ball{Center: center, Radius: radius, Orig: orig, Dist: bdist, G: sub}
}

// IsTree reports whether the ball is acyclic (always true when the radius
// is below half the girth of the host graph — the situation exploited by
// the Section 6 indistinguishability argument).
func (b *Ball) IsTree() bool {
	return b.G.M() == b.G.N()-1 && b.G.IsConnected()
}

// CanonicalTree returns a canonical string encoding of the ball viewed as
// a tree rooted at the center (AHU-style canonization). Two balls that are
// trees receive the same encoding iff they are isomorphic as rooted trees,
// which — for anonymous-structure algorithms — is exactly the condition
// under which a deterministic LOCAL algorithm that ignores concrete IDs
// behaves identically at the two centers. It panics if the ball is not a
// tree; use IsTree first.
func (b *Ball) CanonicalTree() string {
	if !b.IsTree() {
		panic("graph: CanonicalTree on a non-tree ball")
	}
	centerIdx := -1
	for i, v := range b.Orig {
		if v == b.Center {
			centerIdx = i
			break
		}
	}
	if centerIdx < 0 {
		panic("graph: ball lost its center")
	}
	var encode func(v, parent int) string
	encode = func(v, parent int) string {
		var kids []string
		for _, a := range b.G.Adj(v) {
			if a.To != parent {
				kids = append(kids, encode(a.To, v))
			}
		}
		sort.Strings(kids)
		return "(" + strings.Join(kids, "") + ")"
	}
	return encode(centerIdx, -1)
}

// BallsIsomorphic reports whether the radius-t balls around u in g and
// around v in h are isomorphic as rooted trees. It returns an error if
// either ball contains a cycle (the canonical form implemented here covers
// the tree case, which is the one the Section 6 argument needs).
func BallsIsomorphic(g *Graph, u int, h *Graph, v, radius int) (bool, error) {
	bu := ExtractBall(g, u, radius)
	bv := ExtractBall(h, v, radius)
	if !bu.IsTree() {
		return false, fmt.Errorf("graph: ball of radius %d around %d contains a cycle", radius, u)
	}
	if !bv.IsTree() {
		return false, fmt.Errorf("graph: ball of radius %d around %d contains a cycle", radius, v)
	}
	return bu.CanonicalTree() == bv.CanonicalTree(), nil
}

// Height returns, for every vertex of a tree (a connected acyclic graph),
// its height h(v): the distance to the closest leaf, where a leaf is a
// vertex of degree at most 1 (Section 6). It panics if g is not a tree.
func Height(g *Graph) []int {
	if g.M() != g.N()-1 || !g.IsConnected() {
		panic("graph: Height requires a tree")
	}
	n := g.N()
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	// Multi-source BFS from all leaves.
	var queue []int
	for v := 0; v < n; v++ {
		if g.Degree(v) <= 1 {
			h[v] = 0
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.Adj(v) {
			if h[a.To] < 0 {
				h[a.To] = h[v] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return h
}
