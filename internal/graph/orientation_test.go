package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrientationBasics(t *testing.T) {
	g := Path(3) // edges {0,1}, {1,2}
	o := NewOrientation(g)
	if o.Complete() || o.NumOriented() != 0 {
		t.Fatal("fresh orientation should be empty")
	}
	e01, _ := g.EdgeID(0, 1)
	e12, _ := g.EdgeID(1, 2)
	o.Orient(e01, 1)
	if o.Head(e01) != 1 || o.Tail(e01) != 0 {
		t.Fatal("head/tail wrong")
	}
	if o.Load(1) != 1 || o.Load(0) != 0 {
		t.Fatal("load wrong")
	}
	o.Orient(e12, 1)
	if !o.Complete() {
		t.Fatal("should be complete")
	}
	if o.Load(1) != 2 {
		t.Fatal("load of shared head")
	}
	if o.Badness(e01) != 2 || o.Happy(e01) {
		t.Fatalf("badness=%d", o.Badness(e01))
	}
	if o.Stable() {
		t.Fatal("unhappy orientation reported stable")
	}
	o.Flip(e01)
	if o.Head(e01) != 0 || o.Load(1) != 1 || o.Load(0) != 1 {
		t.Fatal("flip bookkeeping")
	}
	if !o.Stable() {
		t.Fatal("balanced path orientation should be stable")
	}
	if err := o.CheckLoads(); err != nil {
		t.Fatal(err)
	}
}

func TestOrientationPanics(t *testing.T) {
	g := Path(2)
	o := NewOrientation(g)
	t.Run("double orient", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		o2 := NewOrientation(g)
		o2.Orient(0, 1)
		o2.Orient(0, 0)
	})
	t.Run("flip unoriented", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		o.Flip(0)
	})
	t.Run("orient to non-endpoint", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		o3 := NewOrientation(Path(3))
		o3.Orient(0, 2)
	})
	t.Run("badness of unoriented", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		NewOrientation(g).Badness(0)
	})
}

func TestPotentialAndCost(t *testing.T) {
	g := Star(3)
	o := NewOrientation(g)
	for id := range g.Edges() {
		o.Orient(id, 0) // all point at the hub
	}
	if o.Potential() != 9 {
		t.Fatalf("potential = %d, want 9", o.Potential())
	}
	if o.SemimatchingCost() != 1+2+3 {
		t.Fatalf("cost = %d, want 6", o.SemimatchingCost())
	}
	o.Flip(0)
	if o.Potential() != 4+1 {
		t.Fatalf("potential after flip = %d", o.Potential())
	}
}

func TestUnhappyEdgesAndMaxBadness(t *testing.T) {
	g := Star(4)
	o := NewOrientation(g)
	for id := range g.Edges() {
		o.Orient(id, 0)
	}
	if o.MaxBadness() != 4 {
		t.Fatalf("max badness = %d", o.MaxBadness())
	}
	unhappy := o.UnhappyEdges()
	if len(unhappy) != 4 {
		t.Fatalf("%d unhappy edges, want 4", len(unhappy))
	}
}

func TestStableOnExamples(t *testing.T) {
	// Figure 1 spirit: orient a cycle consistently; every vertex has load
	// 1, all edges are happy.
	g := Cycle(6)
	o := NewOrientation(g)
	for v := 0; v < 6; v++ {
		id, _ := g.EdgeID(v, (v+1)%6)
		o.Orient(id, (v+1)%6)
	}
	if !o.Stable() {
		t.Fatal("cyclically oriented cycle must be stable")
	}
}

func TestCloneOrientation(t *testing.T) {
	g := Path(4)
	o := NewOrientation(g)
	o.Orient(0, 1)
	c := o.Clone()
	c.Orient(1, 1)
	if o.NumOriented() != 1 || c.NumOriented() != 2 {
		t.Fatal("clone not independent")
	}
	if err := o.CheckLoads(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckLoads(); err != nil {
		t.Fatal(err)
	}
}

// Property: after any sequence of orients and flips, incremental loads
// match a from-scratch recount, and flipping an edge twice restores it.
func TestOrientationFlipProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGNM(12, 20, rng)
		o := NewOrientation(g)
		for id := range g.Edges() {
			e := g.Edge(id)
			if rng.Intn(2) == 0 {
				o.Orient(id, e.U)
			} else {
				o.Orient(id, e.V)
			}
		}
		for i := 0; i < 50; i++ {
			id := rng.Intn(g.M())
			before := o.Head(id)
			o.Flip(id)
			o.Flip(id)
			if o.Head(id) != before {
				return false
			}
			o.Flip(id)
		}
		return o.CheckLoads() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the potential drops by exactly 2(b-1) when flipping an edge of
// badness b — the quantity behind the sequential algorithm's termination
// argument (Section 1.1).
func TestFlipPotentialDelta(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGNM(10, 16, rng)
		o := NewOrientation(g)
		for id := range g.Edges() {
			e := g.Edge(id)
			if rng.Intn(2) == 0 {
				o.Orient(id, e.U)
			} else {
				o.Orient(id, e.V)
			}
		}
		id := rng.Intn(g.M())
		b := o.Badness(id)
		before := o.Potential()
		o.Flip(id)
		return before-o.Potential() == 2*(b-1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
