package bench

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/assign"
	"tokendrop/internal/baseline"
	"tokendrop/internal/bounded"
	"tokendrop/internal/graph"
	"tokendrop/internal/matching"
	"tokendrop/internal/semimatch"
)

// E10 (Theorems 7.1, 7.3): stable assignment sweeps over customer degree C
// and server degree S.
func E10AssignSweeps(p Profile) []*Table {
	cTable := &Table{
		ID:      "E10a",
		Title:   "Stable assignment vs customer degree C at bounded S",
		Claim:   "O(C·S) phases (Lemma 7.2) and O(C·S⁴) rounds (Theorem 7.3)",
		Columns: []string{"C", "S", "customers", "phases", "C·S+1", "rounds", "stable"},
	}
	cs := []int{2, 3, 4, 6}
	if p.Quick {
		cs = []int{2, 4}
	}
	for _, c := range cs {
		rng := rand.New(rand.NewSource(p.Seed + int64(c)))
		nl, nr := 24, 12
		g := graph.RandomBipartite(nl, nr, c, rng)
		b := graph.MustBipartite(g, nl)
		res, err := assign.Solve(b, assign.Options{Seed: p.Seed, CheckInvariants: true})
		if err != nil {
			cTable.AddRow(c, "-", nl, "-", "-", "-", "error: "+err.Error())
			continue
		}
		cMax, sMax := b.MaxCustomerDegree(), b.MaxServerDegree()
		cTable.AddRow(cMax, sMax, nl, res.Phases, cMax*sMax+1, res.Rounds, mark(res.Assignment.Stable()))
	}

	sTable := &Table{
		ID:      "E10b",
		Title:   "Stable assignment vs server degree S at fixed C",
		Claim:   "rounds grow polynomially in S, phases stay within C·S+1 (Lemma 7.2)",
		Columns: []string{"C", "S", "customers", "phases", "rounds", "stable"},
	}
	srv := []int{4, 6, 9, 12}
	if p.Quick {
		srv = []int{4, 8}
	}
	const c = 3
	for _, s := range srv {
		rng := rand.New(rand.NewSource(p.Seed + int64(s)))
		// Regular bipartite: nl·c = nr·s.
		nr := 12
		nl := nr * s / c
		if nl*c != nr*s {
			nl = nr * s
			nr = nr * c
			// fall back to a simple ratio; keep degrees exact
			nl, nr = s*4, c*4
		}
		g := graph.RandomBipartiteRegular(nl, nr, c, s, rng)
		b := graph.MustBipartite(g, nl)
		res, err := assign.Solve(b, assign.Options{Seed: p.Seed, CheckInvariants: true})
		if err != nil {
			sTable.AddRow(c, s, nl, "-", "-", "error: "+err.Error())
			continue
		}
		sTable.AddRow(b.MaxCustomerDegree(), b.MaxServerDegree(), nl, res.Phases, res.Rounds,
			mark(res.Assignment.Stable()))
	}
	return []*Table{cTable, sTable}
}

// E11 (Theorem 7.4): 2-bounded stable assignment reduces to maximal
// matching.
func E11BoundedToMatching(p Profile) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "2-bounded stable assignment ⇒ maximal matching (Theorem 7.4 reduction)",
		Claim:   "the post-processed assignment is a maximal matching, so the MM lower bound transfers",
		Columns: []string{"n_left", "n_right", "C", "phases", "rounds", "matching maximal"},
	}
	cases := []struct{ nl, nr, c int }{{12, 8, 2}, {24, 10, 3}, {48, 16, 4}, {96, 32, 5}}
	if p.Quick {
		cases = cases[:2]
	}
	for i, tc := range cases {
		rng := rand.New(rand.NewSource(p.Seed + int64(i)))
		g := graph.RandomBipartite(tc.nl, tc.nr, tc.c, rng)
		b := graph.MustBipartite(g, tc.nl)
		res, err := bounded.Solve(b, bounded.Options{Seed: p.Seed, CheckInvariants: true})
		if err != nil {
			t.AddRow(tc.nl, tc.nr, tc.c, "-", "-", "error: "+err.Error())
			continue
		}
		matchOf := bounded.ReduceToMatching(res.Assignment)
		t.AddRow(tc.nl, tc.nr, tc.c, res.Phases, res.Rounds,
			mark(matching.VerifyMaximal(b, matchOf) == nil))
	}
	return t
}

// E12 (Theorem 7.5): the 2-bounded relaxation is much faster than the
// general stable assignment as S grows.
func E12BoundedSweep(p Profile) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "2-bounded relaxation vs general stable assignment (S sweep)",
		Claim:   "relaxed: O(C·S²) rounds (Theorem 7.5); general: O(C·S⁴) (Theorem 7.3) — the gap grows with S",
		Columns: []string{"C", "S", "bounded rounds", "general rounds", "general/bounded"},
	}
	srv := []int{4, 6, 9, 12, 15}
	if p.Quick {
		srv = []int{4, 8}
	}
	const c = 3
	var xs, ys []float64
	for _, s := range srv {
		rng := rand.New(rand.NewSource(p.Seed + int64(s)))
		nl, nr := s*4, c*4
		g := graph.RandomBipartiteRegular(nl, nr, c, s, rng)
		b := graph.MustBipartite(g, nl)
		rb, err1 := bounded.Solve(b, bounded.Options{Seed: p.Seed})
		ra, err2 := assign.Solve(b, assign.Options{Seed: p.Seed})
		if err1 != nil || err2 != nil {
			continue
		}
		ratio := float64(ra.Rounds) / float64(rb.Rounds)
		t.AddRow(b.MaxCustomerDegree(), b.MaxServerDegree(), rb.Rounds, ra.Rounds, ratio)
		xs = append(xs, float64(b.MaxServerDegree()))
		ys = append(ys, float64(rb.Rounds))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("bounded rounds ~ S^%.2f (theorem envelope: ≤ 2 in S)", FitPowerLaw(xs, ys)))
	return t
}

// E13 (§1.3): stable assignments 2-approximate the optimal semi-matching.
func E13SemimatchApprox(p Profile) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Stable assignment vs exact optimal semi-matching",
		Claim:   "a stable assignment is a factor-2 approximation of the optimal semi-matching (§1.3, CHSW12)",
		Columns: []string{"workload", "customers", "servers", "stable cost", "optimal cost", "ratio", "≤ 2"},
	}
	type wl struct {
		name       string
		nl, nr, c  int
		regular    bool
		regularDeg int
	}
	cases := []wl{
		{"uniform random", 30, 10, 3, false, 0},
		{"skewed (few servers)", 40, 5, 2, false, 0},
		{"regular", 24, 8, 2, true, 6},
		{"dense choice", 20, 10, 6, false, 0},
	}
	if p.Quick {
		cases = cases[:2]
	}
	for i, tc := range cases {
		rng := rand.New(rand.NewSource(p.Seed + int64(i)))
		var g *graph.Graph
		if tc.regular {
			g = graph.RandomBipartiteRegular(tc.nl, tc.nr, tc.c, tc.regularDeg, rng)
		} else {
			g = graph.RandomBipartite(tc.nl, tc.nr, tc.c, rng)
		}
		b := graph.MustBipartite(g, tc.nl)
		res, err := assign.Solve(b, assign.Options{Seed: p.Seed, CheckInvariants: true})
		if err != nil {
			t.AddRow(tc.name, tc.nl, tc.nr, "-", "-", "-", "error: "+err.Error())
			continue
		}
		ratio, opt, err := semimatch.ApproxRatio(res.Assignment)
		if err != nil {
			t.AddRow(tc.name, tc.nl, tc.nr, "-", "-", "-", "error: "+err.Error())
			continue
		}
		t.AddRow(tc.name, tc.nl, tc.nr, res.Assignment.SemimatchingCost(), opt, ratio, mark(ratio <= 2.0))
	}
	return t
}

// E14 (§1.1): the centralized sequential algorithm — termination via the
// potential, and flip counts across sizes.
func E14SequentialGreedy(p Profile) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "Centralized sequential greedy (§1.1): flips and potential descent",
		Claim:   "Σ indegree² strictly decreases per flip, so the greedy terminates in polynomial time",
		Columns: []string{"graph", "n", "m", "initial Φ", "final Φ", "flips", "stable"},
	}
	type wl struct {
		name string
		g    *graph.Graph
	}
	rng := rand.New(rand.NewSource(p.Seed))
	cases := []wl{
		{"star K1,16", graph.Star(16)},
		{"random n=40 m=120", graph.RandomGNM(40, 120, rng)},
		{"random n=80 m=320", graph.RandomGNM(80, 320, rng)},
		{"caterpillar 40x2", graph.Caterpillar(40, 2)},
	}
	if p.Quick {
		cases = cases[:2]
	}
	for _, tc := range cases {
		o := baseline.OrientAll(tc.g, baseline.InitRandom, rng)
		res := baseline.SequentialGreedy(o, baseline.FlipFirst, nil)
		t.AddRow(tc.name, tc.g.N(), tc.g.M(), res.InitialPotential, res.FinalPotential,
			res.Flips, mark(res.Orientation.Stable()))
	}
	return t
}

// All runs every experiment and returns the tables in index order:
// E1–E14 reproduce the paper's figures and theorems, E15–E21 are the
// ablations and open-question probes, E22–E24 certify seed-vs-sharded
// engine parity and speedups for the game, orientation, and assignment
// layers, E25 sweeps the sharded engine's worker count, E26 sweeps it
// across whole phase-loop solves (parallel central steps included), and
// E28 races the assignment strategies across the arena's workload
// families (internal/arena), and E29 records the multi-process
// transport's deterministic per-round wire cost (internal/mp).
func All(p Profile) []*Table {
	var out []*Table
	out = append(out, E1StableOrientationExamples(p))
	out = append(out, E2TokenDroppingFigure2(p))
	out = append(out, E3TraversalTails(p))
	out = append(out, E4ProposalDeltaSweep(p))
	out = append(out, E4ProposalLevelSweep(p))
	out = append(out, E5Height2Matching(p))
	out = append(out, E6ThreeLevelSweep(p))
	out = append(out, E7OrientDeltaSweep(p))
	out = append(out, E8OrientVsBaseline(p)...)
	out = append(out, E9LowerBound(p))
	out = append(out, E10AssignSweeps(p)...)
	out = append(out, E11BoundedToMatching(p))
	out = append(out, E12BoundedSweep(p))
	out = append(out, E13SemimatchApprox(p))
	out = append(out, E14SequentialGreedy(p))
	out = append(out, E15LoadBalancingContrast(p))
	out = append(out, E16HeightGapAblation(p))
	out = append(out, E17ThresholdSweep(p))
	out = append(out, E18TieBreakAblation(p))
	out = append(out, E19ScheduleAblation(p))
	out = append(out, E20RuntimeScaling(p))
	out = append(out, E21MessageSizes(p))
	out = append(out, E22ShardedEngine(p))
	out = append(out, E23OrientSharded(p))
	out = append(out, E24AssignSharded(p))
	out = append(out, E25ShardScaling(p))
	out = append(out, E26CentralStepScaling(p))
	out = append(out, E28ArenaPareto(p))
	out = append(out, E29WireCost(p))
	return out
}
