package bench

import (
	"fmt"
	"math/rand"
	"time"

	"tokendrop/internal/assign"
	"tokendrop/internal/bounded"
	"tokendrop/internal/core"
	"tokendrop/internal/graph"
	"tokendrop/internal/loadbalance"
	"tokendrop/internal/orient"
)

// E15 (§2): single-use edges vs free movement — token dropping gets stuck
// after crossing a bottleneck once; locally optimal load balancing pays
// for every unit.
func E15LoadBalancingContrast(p Profile) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "Bottleneck: token dropping vs locally optimal load balancing (FHS15)",
		Claim:   "single-use edges make token dropping strictly easier: balancing cost grows with the load, the game's does not (§2)",
		Columns: []string{"initial load", "balance rounds", "unit moves", "game rounds", "game moves"},
	}
	loads := []int{4, 8, 16, 32, 64}
	if p.Quick {
		loads = []int{4, 16}
	}
	var xs, ys []float64
	for _, initial := range loads {
		st, err := loadbalance.Dumbbell(4, initial)
		if err != nil {
			continue
		}
		res, err := loadbalance.Balance(st, p.Seed, 1<<22, 0)
		if err != nil {
			t.AddRow(initial, "error: "+err.Error(), "-", "-", "-")
			continue
		}
		// The analogous game: the same initial surplus as tokens on the
		// top of a two-layer bottleneck; each token can cross once.
		rng := rand.New(rand.NewSource(p.Seed))
		inst := core.Bottleneck(initial, 2, rng)
		sol, stats, gerr := core.SolveProposal(inst, core.SolveOptions{Seed: p.Seed, MaxRounds: 1 << 20})
		gameRounds, gameMoves := -1, -1
		if gerr == nil {
			gameRounds = stats.Rounds
			gameMoves = len(sol.Moves)
		}
		t.AddRow(initial, res.Rounds, res.UnitMoves, gameRounds, gameMoves)
		xs = append(xs, float64(initial))
		ys = append(ys, float64(res.Rounds))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("balancing rounds ~ load^%.2f — the per-unit bottleneck cost the paper's conjecture rests on", FitPowerLaw(xs, ys)))
	return t
}

// E16 (§4.3 open question): 4-level games have no o(Δ²) algorithm yet —
// measure the generic algorithm's behaviour at heights 2, 3, 4, 5.
func E16HeightGapAblation(p Profile) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "Height ablation: generic algorithm across game heights (the §4.3 open question)",
		Claim:   "3-level games admit O(Δ); 4-level games are open between O(Δ) and O(Δ²) — the measured gap on random workloads",
		Columns: []string{"height", "Δ", "rounds", "rounds/Δ", "3lvl-specialized rounds"},
	}
	heights := []int{1, 2, 3, 4}
	d := 8
	if p.Quick {
		d = 5
	}
	for _, h := range heights {
		rng := rand.New(rand.NewSource(p.Seed + int64(h)))
		cfg := core.LayeredConfig{Levels: h, Width: 3 * d, ParentDeg: d, TokenProb: 0.8, FreeBottom: true}
		inst := core.RandomLayered(cfg, rng)
		delta := inst.MaxDegree()
		_, stats, err := core.SolveProposal(inst, core.SolveOptions{Seed: p.Seed, MaxRounds: 1 << 20})
		if err != nil {
			continue
		}
		spec := "-"
		if h <= core.ThreeLevelMaxLevel {
			if _, s3, err := core.SolveThreeLevel(inst, core.SolveOptions{Seed: p.Seed, MaxRounds: 1 << 20}); err == nil {
				spec = fmt.Sprint(s3.Rounds)
			}
		}
		t.AddRow(h+1, delta, stats.Rounds, float64(stats.Rounds)/float64(delta), spec)
	}
	return t
}

// E17 (§7.3): interpolate between the 2-bounded relaxation and the full
// problem by sweeping the threshold k.
func E17ThresholdSweep(p Profile) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "k-bounded threshold sweep (relaxation → general problem)",
		Claim:   "the Ω(Δ) lower bound weakens proportionally to the threshold; measured cost grows with k toward the unrelaxed problem (§7.3)",
		Columns: []string{"k", "phases", "rounds", "k-stable", "fully stable too"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	nl, nr := 48, 12
	if p.Quick {
		nl, nr = 24, 8
	}
	g := graph.RandomBipartite(nl, nr, 3, rng)
	b := graph.MustBipartite(g, nl)
	ks := []int{2, 3, 4, 6}
	if p.Quick {
		ks = []int{2, 3}
	}
	for _, k := range ks {
		res, err := bounded.Solve(b, bounded.Options{K: k, Seed: p.Seed, CheckInvariants: true})
		if err != nil {
			t.AddRow(k, "-", "-", "error: "+err.Error(), "-")
			continue
		}
		t.AddRow(k, res.Phases, res.Rounds, mark(res.Assignment.KStable(k)),
			fmt.Sprint(res.Assignment.Stable()))
	}
	full, err := assign.Solve(b, assign.Options{Seed: p.Seed})
	if err == nil {
		t.AddRow("∞ (general)", full.Phases, full.Rounds, mark(full.Assignment.Stable()), "true")
	}
	return t
}

// E18: tie-breaking ablation — the paper allows arbitrary ties; check the
// bounds are insensitive to the rule.
func E18TieBreakAblation(p Profile) *Table {
	t := &Table{
		ID:      "E18",
		Title:   "Tie-break ablation: deterministic first-port vs seeded random",
		Claim:   "the paper's bounds hold for arbitrary tie-breaking (§4.1); measured rounds barely move",
		Columns: []string{"workload", "first-port rounds", "random-tie rounds"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	d := 8
	if p.Quick {
		d = 5
	}
	cfg := core.LayeredConfig{Levels: 4, Width: 3 * d, ParentDeg: d, TokenProb: 0.8, FreeBottom: true}
	inst := core.RandomLayered(cfg, rng)
	_, fp, err1 := core.SolveProposal(inst, core.SolveOptions{Tie: core.TieFirstPort, MaxRounds: 1 << 20})
	_, rt, err2 := core.SolveProposal(inst, core.SolveOptions{Tie: core.TieRandom, Seed: p.Seed, MaxRounds: 1 << 20})
	if err1 == nil && err2 == nil {
		t.AddRow("token dropping (random layered)", fp.Rounds, rt.Rounds)
	}
	g := graph.RandomRegular(6*4, 4, rng)
	o1, err1 := orient.Solve(g, orient.Options{Tie: core.TieFirstPort, Seed: p.Seed})
	o2, err2 := orient.Solve(g, orient.Options{Tie: core.TieRandom, Seed: p.Seed})
	if err1 == nil && err2 == nil {
		t.AddRow("stable orientation (4-regular)", o1.Rounds, o2.Rounds)
	}
	return t
}

// E19: schedule ablation — the adaptive driver vs the fixed-schedule LOCAL
// machine (identical outputs in kind, very different round budgets).
func E19ScheduleAblation(p Profile) *Table {
	t := &Table{
		ID:      "E19",
		Title:   "Schedule ablation: adaptive barriers vs the paper's fixed LOCAL schedule",
		Claim:   "the fixed schedule spends the full Θ(Δ⁴) budget; the same computation quiesces orders of magnitude earlier",
		Columns: []string{"Δ", "n", "adaptive rounds", "fixed rounds", "fixed last-active", "stable (both)"},
	}
	degrees := []int{2, 3, 4}
	if p.Quick {
		degrees = []int{2, 3}
	}
	for _, d := range degrees {
		rng := rand.New(rand.NewSource(p.Seed + int64(d)))
		n := 6 * d
		if n*d%2 != 0 {
			n++
		}
		g := graph.RandomRegular(n, d, rng)
		adaptive, err1 := orient.Solve(g, orient.Options{Seed: p.Seed})
		fixed, err2 := orient.SolveFixed(g, orient.FixedOptions{Seed: p.Seed})
		if err1 != nil || err2 != nil {
			t.AddRow(d, n, "-", "-", "-", "error")
			continue
		}
		t.AddRow(d, n, adaptive.Rounds, fixed.Rounds, fixed.LastActiveRound,
			mark(adaptive.Orientation.Stable() && fixed.Orientation.Stable()))
	}
	return t
}

// E20: simulator throughput — wall time of one large game across worker
// counts (the systems-side sanity check of the parallel round executor).
func E20RuntimeScaling(p Profile) *Table {
	t := &Table{
		ID:      "E20",
		Title:   "LOCAL simulator scaling: workers vs wall time on one large game",
		Claim:   "per-round node steps parallelize across goroutines with identical results",
		Columns: []string{"workers", "wall time", "rounds", "moves"},
	}
	width := 512
	if p.Quick {
		width = 128
	}
	rng := rand.New(rand.NewSource(p.Seed))
	cfg := core.LayeredConfig{Levels: 12, Width: width, ParentDeg: 4, TokenProb: 0.6, FreeBottom: true}
	inst := core.RandomLayered(cfg, rng)
	workers := []int{1, 2, 4, 8}
	if p.Quick {
		workers = []int{1, 4}
	}
	var refMoves = -1
	for _, w := range workers {
		start := time.Now()
		sol, stats, err := core.SolveProposal(inst, core.SolveOptions{MaxRounds: 1 << 20, Workers: w})
		if err != nil {
			t.AddRow(w, "error", "-", "-")
			continue
		}
		elapsed := time.Since(start).Round(time.Microsecond)
		if refMoves < 0 {
			refMoves = len(sol.Moves)
		} else if refMoves != len(sol.Moves) {
			t.AddRow(w, "NONDETERMINISTIC", stats.Rounds, len(sol.Moves))
			continue
		}
		t.AddRow(w, elapsed.String(), stats.Rounds, len(sol.Moves))
	}
	return t
}
