package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "T0",
		Title:   "demo",
		Claim:   "demonstration",
		Columns: []string{"a", "bbbb"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("long-cell", true)
	tbl.Notes = append(tbl.Notes, "a note")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T0", "demo", "demonstration", "long-cell", "2.500", "a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFitPowerLaw(t *testing.T) {
	// y = 3·x²
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	if b := FitPowerLaw(xs, ys); math.Abs(b-2) > 1e-9 {
		t.Fatalf("exponent %f, want 2", b)
	}
	// Degenerate inputs.
	if !math.IsNaN(FitPowerLaw([]float64{1}, []float64{1})) {
		t.Fatal("single point should be NaN")
	}
	if !math.IsNaN(FitPowerLaw([]float64{2, 2}, []float64{1, 5})) {
		t.Fatal("vertical data should be NaN")
	}
	if !math.IsNaN(FitPowerLaw([]float64{-1, 0}, []float64{1, 1})) {
		t.Fatal("non-positive xs should be skipped")
	}
}

// TestAllExperimentsQuick runs every experiment on the quick profile and
// checks each produced a populated table with no invariant violations.
// This is the end-to-end smoke test of the whole reproduction.
func TestAllExperimentsQuick(t *testing.T) {
	tables := All(Profile{Quick: true, Seed: 42})
	if len(tables) < 14 {
		t.Fatalf("only %d tables produced", len(tables))
	}
	seen := map[string]bool{}
	for _, tbl := range tables {
		if seen[tbl.ID] {
			t.Fatalf("duplicate experiment id %s", tbl.ID)
		}
		seen[tbl.ID] = true
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s produced no rows", tbl.ID)
		}
		for _, row := range tbl.Rows {
			for _, cell := range row {
				if strings.Contains(cell, "VIOLATED") || strings.Contains(cell, "error") {
					t.Fatalf("%s reports a violation: %v", tbl.ID, row)
				}
			}
		}
	}
	for _, id := range []string{
		"E1", "E2", "E3", "E4a", "E4b", "E5", "E6", "E7", "E8a", "E8b", "E9",
		"E10a", "E10b", "E11", "E12", "E13", "E14",
		"E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22",
	} {
		if !seen[id] {
			t.Fatalf("experiment %s missing", id)
		}
	}
}
