package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "T0",
		Title:   "demo",
		Claim:   "demonstration",
		Columns: []string{"a", "bbbb"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("long-cell", true)
	tbl.Notes = append(tbl.Notes, "a note")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T0", "demo", "demonstration", "long-cell", "2.500", "a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFitPowerLaw(t *testing.T) {
	// y = 3·x²
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	if b := FitPowerLaw(xs, ys); math.Abs(b-2) > 1e-9 {
		t.Fatalf("exponent %f, want 2", b)
	}
	// Degenerate inputs.
	if !math.IsNaN(FitPowerLaw([]float64{1}, []float64{1})) {
		t.Fatal("single point should be NaN")
	}
	if !math.IsNaN(FitPowerLaw([]float64{2, 2}, []float64{1, 5})) {
		t.Fatal("vertical data should be NaN")
	}
	if !math.IsNaN(FitPowerLaw([]float64{-1, 0}, []float64{1, 1})) {
		t.Fatal("non-positive xs should be skipped")
	}
}

// TestShardedBenchQuick measures the machine-readable engine report on
// the quick profile and checks its shape: every experiment present, a
// seed/sharded pair per layer, a multi-point scaling sweep, and valid
// JSON out of the writer.
func TestShardedBenchQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteShardedBenchJSON(&buf, Profile{Quick: true, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	var rep ShardedBenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.Quick || rep.Seed != 7 || rep.GoMaxProcs < 1 {
		t.Fatalf("report header %+v malformed", rep)
	}
	byExp := map[string][]ShardedBenchEntry{}
	for _, e := range rep.Entries {
		byExp[e.Experiment] = append(byExp[e.Experiment], e)
		if e.Experiment == "E29" {
			// The wire-cost entries are static, not timed: no rounds, but
			// the deterministic wire fields must be populated.
			if e.WireFramesPerRound <= 0 || e.WireBytesPerRound <= 0 {
				t.Fatalf("E29 entry %+v has no wire cost", e)
			}
			continue
		}
		if e.Rounds <= 0 || e.Seconds < 0 {
			t.Fatalf("entry %+v has no rounds", e)
		}
	}
	for _, exp := range []string{"E22", "E23", "E24"} {
		pair := byExp[exp]
		if len(pair) != 2 || pair[0].Engine != "seed" || pair[1].Engine != "sharded" {
			t.Fatalf("%s: want a seed/sharded pair, got %+v", exp, pair)
		}
		if pair[0].Rounds != pair[1].Rounds {
			t.Fatalf("%s: engines disagree on rounds: %d != %d", exp, pair[0].Rounds, pair[1].Rounds)
		}
	}
	if len(byExp["E25"]) < 2 {
		t.Fatalf("E25: want a multi-point scaling sweep, got %+v", byExp["E25"])
	}
	for _, e := range byExp["E25"] {
		if e.Shards < 1 || e.Rounds != byExp["E25"][0].Rounds {
			t.Fatalf("E25 entry %+v malformed or shard-variant", e)
		}
	}
	serve := byExp["E27"]
	if len(serve) != 1 || serve[0].Layer != "serving" || serve[0].Engine != "incremental" {
		t.Fatalf("E27: want one serving/incremental entry, got %+v", serve)
	}
	if e := serve[0]; e.P50Micros <= 0 || e.P99Micros < e.P50Micros {
		t.Fatalf("E27 latency percentiles malformed: %+v", e)
	}
	wire := byExp["E29"]
	if len(wire) != 6 { // 3 layers × 2 process counts
		t.Fatalf("E29: want 6 wire-cost entries, got %+v", wire)
	}
	for _, e := range wire {
		if e.Engine != "mp" || e.Shards < 2 {
			t.Fatalf("E29 entry %+v not keyed as engine mp with a process count", e)
		}
		if e.WireFramesPerRound != 2*e.Shards {
			t.Fatalf("E29 entry %+v: star routing sends 2 frames per process per round", e)
		}
	}
}

// TestAllExperimentsQuick runs every experiment on the quick profile and
// checks each produced a populated table with no invariant violations.
// This is the end-to-end smoke test of the whole reproduction.
func TestAllExperimentsQuick(t *testing.T) {
	tables := All(Profile{Quick: true, Seed: 42})
	if len(tables) < 14 {
		t.Fatalf("only %d tables produced", len(tables))
	}
	seen := map[string]bool{}
	for _, tbl := range tables {
		if seen[tbl.ID] {
			t.Fatalf("duplicate experiment id %s", tbl.ID)
		}
		seen[tbl.ID] = true
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s produced no rows", tbl.ID)
		}
		for _, row := range tbl.Rows {
			for _, cell := range row {
				if strings.Contains(cell, "VIOLATED") || strings.Contains(cell, "error") {
					t.Fatalf("%s reports a violation: %v", tbl.ID, row)
				}
			}
		}
	}
	for _, id := range []string{
		"E1", "E2", "E3", "E4a", "E4b", "E5", "E6", "E7", "E8a", "E8b", "E9",
		"E10a", "E10b", "E11", "E12", "E13", "E14",
		"E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22",
		"E23", "E24", "E25", "E26", "E28", "E29",
	} {
		if !seen[id] {
			t.Fatalf("experiment %s missing", id)
		}
	}
}
