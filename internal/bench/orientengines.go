package bench

import (
	"fmt"
	"math/rand"
	"time"

	"tokendrop/internal/graph"
	"tokendrop/internal/orient"
)

// E23: the sharded orientation runtime versus the seed engine. Both run
// the Theorem 5.1 phase algorithm under TieFirstPort on the same graph
// with identical per-phase port numbering, so beyond the timing the
// experiment certifies that the two runtimes produce the same run — same
// phases, rounds, phase log, and final orientation — and that the result
// is stable.
func E23OrientSharded(p Profile) *Table {
	t := &Table{
		ID:    "E23",
		Title: "Sharded orientation runtime vs seed engine (Thm 5.1)",
		Claim: "the flat phase loop reproduces the seed engine's orientation runs bit for bit, faster",
		Columns: []string{"engine", "n", "m", "phases", "rounds", "final Σload²", "ms", "rounds/s",
			"stable", "engines agree"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n, d := 60_000, 4
	if p.Quick {
		n = 2_000
	}
	g := graph.RandomRegular(n, d, rng)
	csr := graph.NewCSRFromGraph(g)

	t0 := time.Now()
	seedRes, err := orient.Solve(g, orient.Options{Seed: p.Seed})
	seedMS := time.Since(t0).Seconds() * 1000
	if err != nil {
		t.AddRow("seed", n, g.M(), "error", err.Error(), "", "", "", mark(false), "")
		return t
	}
	t0 = time.Now()
	flatRes, err := orient.SolveSharded(csr, orient.ShardedOptions{Seed: p.Seed, Shards: p.Shards})
	shardMS := time.Since(t0).Seconds() * 1000
	if err != nil {
		t.AddRow("sharded", n, csr.M(), "error", err.Error(), "", "", "", mark(false), "")
		return t
	}

	agree := seedRes.Phases == flatRes.Phases && seedRes.Rounds == flatRes.Rounds &&
		len(seedRes.PhaseLog) == len(flatRes.PhaseLog)
	for i := range seedRes.PhaseLog {
		agree = agree && seedRes.PhaseLog[i] == flatRes.PhaseLog[i]
	}
	for id := 0; agree && id < g.M(); id++ {
		agree = seedRes.Orientation.Head(id) == int(flatRes.Head[id])
	}
	rps := func(rounds int, ms float64) string {
		if ms <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", float64(rounds)/(ms/1000))
	}
	t.AddRow("seed", n, g.M(), seedRes.Phases, seedRes.Rounds, seedRes.Orientation.Potential(),
		seedMS, rps(seedRes.Rounds, seedMS), mark(seedRes.Orientation.Stable()), mark(agree))
	t.AddRow("sharded", n, csr.M(), flatRes.Phases, flatRes.Rounds, flatRes.Potential(),
		shardMS, rps(flatRes.Rounds, shardMS), mark(flatRes.Stable()), mark(agree))
	if shardMS > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("speedup %.1fx end-to-end at n=%d (10⁶-vertex numbers in CHANGES.md)",
			seedMS/shardMS, n))
	}
	return t
}
