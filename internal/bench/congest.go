package bench

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/core"
	"tokendrop/internal/hypergame"
	"tokendrop/internal/lowerbound"
)

// E21: message-size audit. The LOCAL model allows unbounded messages, but
// every protocol in this reproduction uses O(1)-bit game messages and
// O(log n)-bit load broadcasts — so the paper's algorithms also run in the
// CONGEST model. This experiment measures the largest message actually
// delivered, per protocol.
func E21MessageSizes(p Profile) *Table {
	t := &Table{
		ID:      "E21",
		Title:   "Message-size audit: the algorithms fit the CONGEST model",
		Claim:   "token dropping needs O(1)-bit messages; only load broadcasts reach Θ(log n) bits",
		Columns: []string{"protocol", "n", "max message bits", "CONGEST-compatible"},
	}
	rng := rand.New(rand.NewSource(p.Seed))

	cfg := core.LayeredConfig{Levels: 5, Width: 12, ParentDeg: 4, TokenProb: 0.7, FreeBottom: true}
	inst := core.RandomLayered(cfg, rng)
	if _, stats, err := core.SolveProposal(inst, core.SolveOptions{MaxRounds: 1 << 20, MeasureBits: true}); err == nil {
		t.AddRow("token dropping (proposal)", inst.N(), stats.MaxMessageBits, mark(stats.MaxMessageBits >= 0))
	}

	inst3 := core.ThreeLevelRandom(12, 12, 4, 0.4, rng)
	if _, stats, err := core.SolveThreeLevel(inst3, core.SolveOptions{MaxRounds: 1 << 20, MeasureBits: true}); err == nil {
		t.AddRow("token dropping (3-level)", inst3.N(), stats.MaxMessageBits, mark(stats.MaxMessageBits >= 0))
	}

	hcfg := hypergame.LayeredConfig{Levels: 3, Width: 8, Edges: 20, Rank: 3, TokenProb: 0.5}
	hinst := hypergame.RandomLayered(hcfg, rng)
	if _, stats, err := hypergame.SolveProposal(hinst, hypergame.SolveOptions{MaxRounds: 1 << 20, MeasureBits: true}); err == nil {
		t.AddRow("hypergraph game (relayed)", hinst.N()+hinst.M(), stats.MaxMessageBits, mark(stats.MaxMessageBits >= 0))
	}

	// Contrast: the anonymous view-collection machine of the Section 6
	// experiment ships whole neighbourhood encodings — a genuinely
	// LOCAL-only protocol. Its payloads implement no size bound, which the
	// runtime reports as -1 ("unknown").
	views := lowerbound.Views(core.Figure2().Graph(), 2)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"contrast: the Section 6 view-collection machine ships ball encodings of up to %d bytes — LOCAL-only by design",
		maxLen(views)))
	return t
}

func maxLen(ss []string) int {
	m := 0
	for _, s := range ss {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}
