package bench

import (
	"strings"
	"testing"
)

func gateReport(entries ...ShardedBenchEntry) *ShardedBenchReport {
	return &ShardedBenchReport{Quick: true, Seed: 42, Entries: entries}
}

func gateEntry(exp, layer, engine string, shards int, rps, apr float64) ShardedBenchEntry {
	return ShardedBenchEntry{
		Experiment: exp, Layer: layer, Engine: engine, Shards: shards,
		RoundsPerSec: rps, AllocsPerRound: apr,
	}
}

func TestCompareShardedReportsClean(t *testing.T) {
	base := gateReport(
		gateEntry("E22", "game", "seed", 0, 1000, 90000),
		gateEntry("E22", "game", "sharded", 2, 5000, 0.4),
	)
	fresh := gateReport(
		gateEntry("E22", "game", "seed", 0, 950, 95000), // seed allocs are not gated
		gateEntry("E22", "game", "sharded", 2, 4600, 0.6),
		gateEntry("E25", "game", "sharded", 4, 9000, 0.4), // extra keys are fine
	)
	v, w := CompareShardedReports(base, fresh, RegressionOptions{})
	if len(v) != 0 || len(w) != 0 {
		t.Fatalf("clean diff produced violations %v warnings %v", v, w)
	}
}

func TestCompareShardedReportsRoundsRegression(t *testing.T) {
	base := gateReport(gateEntry("E23", "orientation", "sharded", 2, 1000, 1))
	fresh := gateReport(gateEntry("E23", "orientation", "sharded", 2, 800, 1))
	v, _ := CompareShardedReports(base, fresh, RegressionOptions{})
	if len(v) != 1 || !strings.Contains(v[0], "rounds/s regressed") {
		t.Fatalf("20%% drop not flagged: %v", v)
	}
	// Within the tolerance: no violation.
	fresh.Entries[0].RoundsPerSec = 900
	if v, _ := CompareShardedReports(base, fresh, RegressionOptions{}); len(v) != 0 {
		t.Fatalf("10%% drop flagged despite 15%% tolerance: %v", v)
	}
	// A tighter tolerance flags it.
	if v, _ := CompareShardedReports(base, fresh, RegressionOptions{RoundsTolerance: 0.05}); len(v) != 1 {
		t.Fatalf("10%% drop not flagged at 5%% tolerance: %v", v)
	}
}

func TestCompareShardedReportsAllocRegression(t *testing.T) {
	base := gateReport(gateEntry("E24", "assignment", "sharded", 2, 1000, 2.4))
	fresh := gateReport(gateEntry("E24", "assignment", "sharded", 2, 1000, 3.4))
	v, _ := CompareShardedReports(base, fresh, RegressionOptions{})
	if len(v) != 1 || !strings.Contains(v[0], "allocs/round grew") {
		t.Fatalf("+1 alloc/round not flagged: %v", v)
	}
	fresh.Entries[0].AllocsPerRound = 2.8 // inside the 0.5 slack
	if v, _ := CompareShardedReports(base, fresh, RegressionOptions{}); len(v) != 0 {
		t.Fatalf("in-slack alloc noise flagged: %v", v)
	}
}

// TestCompareShardedReportsServeEntry pins the gate on the serve-mode
// entry: the alloc check covers the incremental engine and p99 latency
// growth past the tolerance is a violation.
func TestCompareShardedReportsServeEntry(t *testing.T) {
	mk := func(rps, apr, p99 float64) *ShardedBenchReport {
		e := gateEntry("E27", "serving", "incremental", 2, rps, apr)
		e.P50Micros, e.P99Micros = p99/4, p99
		return gateReport(e)
	}
	base := mk(100_000, 0.1, 40)
	v, w := CompareShardedReports(base, mk(98_000, 0.2, 50), RegressionOptions{})
	if len(v) != 0 || len(w) != 0 {
		t.Fatalf("healthy serve entry flagged: violations %v warnings %v", v, w)
	}
	if v, _ := CompareShardedReports(base, mk(98_000, 1.2, 50), RegressionOptions{}); len(v) != 1 ||
		!strings.Contains(v[0], "allocs/round grew") {
		t.Fatalf("incremental alloc churn not flagged: %v", v)
	}
	if v, _ := CompareShardedReports(base, mk(98_000, 0.1, 70), RegressionOptions{}); len(v) != 1 ||
		!strings.Contains(v[0], "p99 delta latency grew") {
		t.Fatalf("75%% p99 growth not flagged: %v", v)
	}
	if v, _ := CompareShardedReports(base, mk(98_000, 0.1, 70), RegressionOptions{LatencyTolerance: 2}); len(v) != 0 {
		t.Fatalf("p99 growth flagged despite widened tolerance: %v", v)
	}
}

// TestCompareShardedReportsArenaEntries pins the E28 gate: token-dropping
// Pareto rows fail on max-load or rounds growth; the competing baselines
// are report-only, however badly they move.
func TestCompareShardedReportsArenaEntries(t *testing.T) {
	mk := func(engine, workload string, maxLoad, rounds int) ShardedBenchEntry {
		return ShardedBenchEntry{
			Experiment: "E28", Layer: "arena", Engine: engine, Workload: workload,
			MaxLoad: maxLoad, MinMaxLoad: 2, Rounds: rounds, Messages: 500,
		}
	}
	base := gateReport(
		mk("token-dropping", "adversarial/ns=24,d=4", 3, 22),
		mk("token-dropping", "uniform/nl=300,nr=60,deg=3", 6, 68),
		mk("random", "adversarial/ns=24,d=4", 4, 1),
	)
	fresh := gateReport(
		mk("token-dropping", "adversarial/ns=24,d=4", 3, 22),
		mk("token-dropping", "uniform/nl=300,nr=60,deg=3", 6, 68),
		mk("random", "adversarial/ns=24,d=4", 9, 1), // report-only competitor
	)
	if v, w := CompareShardedReports(base, fresh, RegressionOptions{}); len(v) != 0 || len(w) != 0 {
		t.Fatalf("clean arena diff flagged: violations %v warnings %v", v, w)
	}
	fresh.Entries[0].MaxLoad = 4
	v, _ := CompareShardedReports(base, fresh, RegressionOptions{})
	if len(v) != 1 || !strings.Contains(v[0], "max load grew") {
		t.Fatalf("token-dropping max-load growth not flagged: %v", v)
	}
	fresh.Entries[0].MaxLoad = 3
	fresh.Entries[1].Rounds = 90
	v, _ = CompareShardedReports(base, fresh, RegressionOptions{})
	if len(v) != 1 || !strings.Contains(v[0], "rounds grew") {
		t.Fatalf("token-dropping rounds growth not flagged: %v", v)
	}
	// The workload joins the arena key: the same strategy on two
	// families gates independently (no collision).
	if k1, k2 := fresh.Entries[0].Workload, fresh.Entries[1].Workload; k1 == k2 {
		t.Fatalf("test fixture lost its distinct workloads: %q %q", k1, k2)
	}
}

// TestCompareShardedReportsWireEntries pins the E29 gate: the wire-cost
// entries are deterministic, so any growth in frames or bytes per round
// is a violation, and a shrink warns that the baseline is stale.
func TestCompareShardedReportsWireEntries(t *testing.T) {
	mk := func(layer string, procs, frames int, bytes int64) ShardedBenchEntry {
		return ShardedBenchEntry{
			Experiment: "E29", Layer: layer, Engine: "mp", Shards: procs,
			WireFramesPerRound: frames, WireBytesPerRound: bytes,
		}
	}
	base := gateReport(mk("game", 2, 4, 1012), mk("game", 4, 8, 2200))
	fresh := gateReport(mk("game", 2, 4, 1012), mk("game", 4, 8, 2200))
	if v, w := CompareShardedReports(base, fresh, RegressionOptions{}); len(v) != 0 || len(w) != 0 {
		t.Fatalf("identical wire entries flagged: violations %v warnings %v", v, w)
	}
	fresh.Entries[0].WireBytesPerRound = 1040
	v, _ := CompareShardedReports(base, fresh, RegressionOptions{})
	if len(v) != 1 || !strings.Contains(v[0], "wire cost grew") {
		t.Fatalf("byte growth not flagged: %v", v)
	}
	fresh.Entries[0].WireBytesPerRound = 1012
	fresh.Entries[1].WireFramesPerRound = 10
	v, _ = CompareShardedReports(base, fresh, RegressionOptions{})
	if len(v) != 1 || !strings.Contains(v[0], "wire cost grew") {
		t.Fatalf("frame growth not flagged: %v", v)
	}
	fresh.Entries[1].WireFramesPerRound = 8
	fresh.Entries[1].WireBytesPerRound = 2000
	v, w := CompareShardedReports(base, fresh, RegressionOptions{})
	if len(v) != 0 || len(w) != 1 || !strings.Contains(w[0], "wire cost shrank") {
		t.Fatalf("shrink should warn, not fail: violations %v warnings %v", v, w)
	}
}

func TestCompareShardedReportsProfileAndKeys(t *testing.T) {
	base := gateReport(gateEntry("E22", "game", "sharded", 2, 1000, 0))
	fresh := gateReport(gateEntry("E22", "game", "sharded", 2, 1000, 0))
	fresh.Quick = false
	if v, _ := CompareShardedReports(base, fresh, RegressionOptions{}); len(v) != 1 ||
		!strings.Contains(v[0], "profiles differ") {
		t.Fatalf("quick/full mismatch not flagged: %v", v)
	}
	fresh.Quick = true
	fresh.Entries[0].Shards = 4 // the baseline key disappears
	v, w := CompareShardedReports(base, fresh, RegressionOptions{})
	if len(v) != 0 || len(w) != 1 || !strings.Contains(w[0], "not measured") {
		t.Fatalf("missing key should warn, not fail: violations %v warnings %v", v, w)
	}
}

// TestShardedBenchJSONRoundTrip pins the gate's end-to-end plumbing on a
// real (quick) measurement: write, re-read, and self-compare — a report
// can never regress against itself.
func TestShardedBenchJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("measures a quick benchmark profile")
	}
	var buf strings.Builder
	if err := WriteShardedBenchJSON(&buf, Profile{Quick: true, Seed: 42, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadShardedBenchJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) == 0 || !rep.Quick {
		t.Fatalf("report did not round-trip: %+v", rep)
	}
	for _, want := range []string{"E22", "E23", "E24", "E25", "E26", "E27", "E28", "E29"} {
		found := false
		for _, e := range rep.Entries {
			if e.Experiment == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("report has no %s entries", want)
		}
	}
	if v, w := CompareShardedReports(rep, rep, RegressionOptions{}); len(v) != 0 || len(w) != 0 {
		t.Fatalf("self-comparison not clean: violations %v warnings %v", v, w)
	}
}
