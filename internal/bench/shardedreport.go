package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"slices"
	"time"

	"tokendrop/internal/assign"
	"tokendrop/internal/core"
	"tokendrop/internal/graph"
	"tokendrop/internal/local"
	"tokendrop/internal/orient"
)

// This file produces BENCH_sharded.json, the machine-readable companion
// of the engine experiments E22–E29: rounds/s and allocs/round for the
// seed and sharded runtimes of every paper layer, the shard-scaling
// sweeps of the bare engine (E25) and of the whole phase loops (E26),
// the serve-mode steady-state churn of the incremental Resolver
// (E27: deltas/s plus p50/p99 per-delta latency), the strategy
// arena's Pareto entries (E28: max load, rounds, messages, wall-clock
// per strategy×workload; see internal/arena), and the multi-process
// transport's deterministic wire cost (E29; see wirecost.go). CI
// regenerates it on
// the quick profile each run, diffs it against the committed quick
// baseline with the bench-regression gate (CompareShardedReports,
// cmd/td-benchgate), and the repo records a full-profile snapshot, so
// future PRs have a perf trajectory to diff against instead of prose
// numbers in CHANGES.md alone.

// ShardedBenchEntry is one measured run. For the serve-mode entry (E27)
// a "round" is one applied delta, so RoundsPerSec is sustained deltas/s
// and the latency percentiles below are populated.
type ShardedBenchEntry struct {
	Experiment     string  `json:"experiment"`       // E22–E27
	Layer          string  `json:"layer"`            // game | orientation | assignment | serving
	Engine         string  `json:"engine"`           // seed | sharded | incremental
	Workload       string  `json:"workload"`         // generator description
	N              int     `json:"n"`                // vertices (or customers)
	M              int     `json:"m"`                // edges
	Shards         int     `json:"shards,omitempty"` // 0 = GOMAXPROCS default
	Rounds         int     `json:"rounds"`
	Seconds        float64 `json:"seconds"`
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	BytesPerRound  float64 `json:"bytes_per_round"`
	SpeedupVsSeed  float64 `json:"speedup_vs_seed,omitempty"`
	// P50Micros and P99Micros are per-delta latency percentiles in
	// microseconds, measured on the serve-mode entry only.
	P50Micros float64 `json:"p50_micros,omitempty"`
	P99Micros float64 `json:"p99_micros,omitempty"`
	// MaxLoad, MinMaxLoad, and Messages are the arena Pareto axes,
	// populated on the E28 strategy entries only: final maximum server
	// load, the workload's proven floor (0 when none is known), and
	// delivered (or probe+claim modeled) messages.
	MaxLoad    int   `json:"max_load,omitempty"`
	MinMaxLoad int   `json:"min_max_load,omitempty"`
	Messages   int64 `json:"messages,omitempty"`
	// WireFramesPerRound and WireBytesPerRound are the multi-process
	// transport's per-round wire cost, populated on the E29 entries
	// only. They are a pure function of the graph and shard map
	// (local.MPWireCost) — exactly reproducible, so the regression gate
	// compares them for equality rather than within a tolerance.
	WireFramesPerRound int   `json:"wire_frames_per_round,omitempty"`
	WireBytesPerRound  int64 `json:"wire_bytes_per_round,omitempty"`
}

// ShardedBenchReport is the full report.
type ShardedBenchReport struct {
	GeneratedUnix int64               `json:"generated_unix"`
	GoVersion     string              `json:"go_version"`
	GoMaxProcs    int                 `json:"go_maxprocs"`
	Quick         bool                `json:"quick"`
	Seed          int64               `json:"seed"`
	Entries       []ShardedBenchEntry `json:"entries"`
}

// measured wraps one run with wall-clock and heap accounting. The
// ReadMemStats pair counts every allocation the run performs (including
// its worker goroutines), which is exactly the churn the reusable
// execution layer is meant to eliminate.
func measured(run func() (rounds int, err error)) (ShardedBenchEntry, error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	rounds, err := run()
	sec := time.Since(t0).Seconds()
	runtime.ReadMemStats(&m1)
	e := ShardedBenchEntry{Rounds: rounds, Seconds: sec}
	if err != nil {
		return e, err
	}
	if sec > 0 {
		e.RoundsPerSec = float64(rounds) / sec
	}
	if rounds > 0 {
		e.AllocsPerRound = float64(m1.Mallocs-m0.Mallocs) / float64(rounds)
		e.BytesPerRound = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(rounds)
	}
	return e, nil
}

// measuredBest re-measures run p.Repeat times and combines the reps:
// wall-clock fields from the fastest rep, allocation fields from the
// leanest (they are gated independently). Best-of-N is what makes the
// quick profile stable enough for the regression gate: its runs finish
// in well under a millisecond, where single-shot timings swing several
// times the gate's tolerance on a busy runner.
func measuredBest(repeat int, run func() (rounds int, err error)) (ShardedBenchEntry, error) {
	best, err := measured(run)
	if err != nil {
		return best, err
	}
	for r := 1; r < repeat; r++ {
		e, err := measured(run)
		if err != nil {
			return e, err
		}
		if e.RoundsPerSec > best.RoundsPerSec {
			best.Rounds, best.Seconds, best.RoundsPerSec = e.Rounds, e.Seconds, e.RoundsPerSec
		}
		if e.AllocsPerRound < best.AllocsPerRound {
			best.AllocsPerRound = e.AllocsPerRound
		}
		if e.BytesPerRound < best.BytesPerRound {
			best.BytesPerRound = e.BytesPerRound
		}
	}
	return best, nil
}

// ShardedBench measures every entry of the report (best of p.Repeat
// reps; see measuredBest). Sharded game runs are warmed first and the
// warmed runs are recorded, since the steady-state contract (0
// allocs/round on a warmed session) is the quantity under regression
// watch; the orientation and assignment runs are end-to-end solves,
// construction included.
func ShardedBench(p Profile) (*ShardedBenchReport, error) {
	rep := &ShardedBenchReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Quick:         p.Quick,
		Seed:          p.Seed,
	}
	add := func(e ShardedBenchEntry, err error) error {
		if err != nil {
			return fmt.Errorf("bench: %s %s %s: %w", e.Experiment, e.Layer, e.Engine, err)
		}
		rep.Entries = append(rep.Entries, e)
		return nil
	}
	// Entries record the worker count actually used — the regression
	// gate keys on it, and the 0-means-GOMAXPROCS default resolves
	// differently across machines.
	resolvedShards := p.Shards
	if resolvedShards <= 0 {
		resolvedShards = runtime.GOMAXPROCS(0)
	}
	finishEntry := func(e *ShardedBenchEntry, exp, layer, engine, workload string, n, m int) {
		e.Experiment, e.Layer, e.Engine, e.Workload, e.N, e.M = exp, layer, engine, workload, n, m
	}

	// E22 — the Theorem 4.1 game layer.
	rng := rand.New(rand.NewSource(p.Seed))
	gcfg := core.LayeredConfig{Levels: 5, Width: 20_000, ParentDeg: 4, TokenProb: 0.6, FreeBottom: true}
	if p.Quick {
		gcfg.Width = 60
	}
	fi := core.FlatRandomLayered(gcfg, rng)
	gameWorkload := fmt.Sprintf("random layered L=%d w=%d d=%d", gcfg.Levels, gcfg.Width, gcfg.ParentDeg)
	inst := fi.Instance()
	var seedSec float64
	{
		e, err := measuredBest(p.Repeat, func() (int, error) {
			_, stats, err := core.SolveProposal(inst, core.SolveOptions{Tie: core.TieFirstPort, MaxRounds: 1 << 20})
			return stats.Rounds, err
		})
		finishEntry(&e, "E22", "game", "seed", gameWorkload, fi.N(), fi.M())
		seedSec = e.Seconds
		if err := add(e, err); err != nil {
			return nil, err
		}
	}
	{
		sess := local.NewSession(p.Shards)
		ws := core.NewSolverWorkspace()
		opt := core.ShardedSolveOptions{Tie: core.TieFirstPort, MaxRounds: 1 << 20, Session: sess, Workspace: ws}
		solve := func() (int, error) {
			res, err := core.SolveProposalSharded(fi, opt)
			if err != nil {
				return 0, err
			}
			return res.Stats.Rounds, nil
		}
		if _, err := solve(); err != nil { // warm the session and workspace
			sess.Close()
			return nil, fmt.Errorf("bench: E22 sharded warm-up: %w", err)
		}
		e, err := measuredBest(p.Repeat, solve)
		sess.Close()
		finishEntry(&e, "E22", "game", "sharded", gameWorkload, fi.N(), fi.M())
		e.Shards = resolvedShards
		if e.Seconds > 0 && seedSec > 0 {
			e.SpeedupVsSeed = seedSec / e.Seconds
		}
		if err := add(e, err); err != nil {
			return nil, err
		}
	}

	// E23 — the Theorem 5.1 orientation layer.
	on, od := 60_000, 4
	if p.Quick {
		on = 2_000
	}
	og := graph.RandomRegular(on, od, rng)
	ocsr := graph.NewCSRFromGraph(og)
	orientWorkload := fmt.Sprintf("random %d-regular", od)
	{
		e, err := measuredBest(p.Repeat, func() (int, error) {
			res, err := orient.Solve(og, orient.Options{Seed: p.Seed})
			if err != nil {
				return 0, err
			}
			return res.Rounds, nil
		})
		finishEntry(&e, "E23", "orientation", "seed", orientWorkload, on, og.M())
		seedSec = e.Seconds
		if err := add(e, err); err != nil {
			return nil, err
		}
	}
	{
		e, err := measuredBest(p.Repeat, func() (int, error) {
			res, err := orient.SolveSharded(ocsr, orient.ShardedOptions{Seed: p.Seed, Shards: p.Shards})
			if err != nil {
				return 0, err
			}
			return res.Rounds, nil
		})
		finishEntry(&e, "E23", "orientation", "sharded", orientWorkload, on, ocsr.M())
		e.Shards = resolvedShards
		if e.Seconds > 0 && seedSec > 0 {
			e.SpeedupVsSeed = seedSec / e.Seconds
		}
		if err := add(e, err); err != nil {
			return nil, err
		}
	}

	// E24 — the Theorem 7.3 assignment layer.
	nl, nr, cdeg := 100_000, 25_000, 3
	if p.Quick {
		nl, nr = 4_000, 1_000
	}
	ab := graph.MustBipartite(graph.RandomBipartite(nl, nr, cdeg, rng), nl)
	afb := graph.NewCSRBipartiteFromBipartite(ab)
	assignWorkload := fmt.Sprintf("random bipartite cdeg=%d", cdeg)
	{
		e, err := measuredBest(p.Repeat, func() (int, error) {
			res, err := assign.Solve(ab, assign.Options{Seed: p.Seed})
			if err != nil {
				return 0, err
			}
			return res.Rounds, nil
		})
		finishEntry(&e, "E24", "assignment", "seed", assignWorkload, nl, ab.G.M())
		seedSec = e.Seconds
		if err := add(e, err); err != nil {
			return nil, err
		}
	}
	{
		e, err := measuredBest(p.Repeat, func() (int, error) {
			res, err := assign.SolveSharded(afb, assign.ShardedOptions{Seed: p.Seed, Shards: p.Shards})
			if err != nil {
				return 0, err
			}
			return res.Rounds, nil
		})
		finishEntry(&e, "E24", "assignment", "sharded", assignWorkload, nl, afb.C.M())
		e.Shards = resolvedShards
		if e.Seconds > 0 && seedSec > 0 {
			e.SpeedupVsSeed = seedSec / e.Seconds
		}
		if err := add(e, err); err != nil {
			return nil, err
		}
	}

	// E25 — shard scaling on the game layer.
	for _, shards := range e25ShardCounts() {
		shards := shards
		e, err := measuredBest(p.Repeat, func() (int, error) {
			res, err := core.SolveProposalSharded(fi, core.ShardedSolveOptions{
				Tie: core.TieFirstPort, Shards: shards, MaxRounds: 1 << 20,
			})
			if err != nil {
				return 0, err
			}
			return res.Stats.Rounds, nil
		})
		finishEntry(&e, "E25", "game", "sharded", gameWorkload, fi.N(), fi.M())
		e.Shards = shards
		if err := add(e, err); err != nil {
			return nil, err
		}
	}

	// E26 — shard scaling of the whole phase loops (parallel central
	// steps + subgames on one session), on the E23/E24 workloads.
	for _, shards := range e25ShardCounts() {
		shards := shards
		e, err := measuredBest(p.Repeat, func() (int, error) {
			res, err := orient.SolveSharded(ocsr, orient.ShardedOptions{Seed: p.Seed, Shards: shards})
			if err != nil {
				return 0, err
			}
			return res.Rounds, nil
		})
		finishEntry(&e, "E26", "orientation", "sharded", orientWorkload, on, ocsr.M())
		e.Shards = shards
		if err := add(e, err); err != nil {
			return nil, err
		}

		e, err = measuredBest(p.Repeat, func() (int, error) {
			res, err := assign.SolveSharded(afb, assign.ShardedOptions{Seed: p.Seed, Shards: shards})
			if err != nil {
				return 0, err
			}
			return res.Rounds, nil
		})
		finishEntry(&e, "E26", "assignment", "sharded", assignWorkload, nl, afb.C.M())
		e.Shards = shards
		if err := add(e, err); err != nil {
			return nil, err
		}
	}

	// E27 — the serving layer: steady-state churn on a warmed Resolver.
	// A "round" is one applied delta (arrivals and departures through a
	// bounded ring of churned customers, edge additions, and periodic
	// drain-and-replace server rotations), so RoundsPerSec is sustained
	// deltas/s; per-delta latency is sampled around every operation and
	// reported as p50/p99. Unlike the batch entries, the wall-clock,
	// allocation, and latency figures all come from the single fastest
	// rep, so the percentiles describe the recorded run.
	{
		snl, snr, scdeg := 1_000_000, 250_000, 3
		sdeltas := 50_000
		if p.Quick {
			// The network shrinks but the delta count stays high: per-delta
			// cost is near-constant, and a run under ~10ms would time too
			// noisily for the regression gate.
			snl, snr, sdeltas = 20_000, 5_000, 20_000
		}
		sb := graph.MustBipartite(graph.RandomBipartite(snl, snr, scdeg, rng), snl)
		sfb := graph.NewCSRBipartiteFromBipartite(sb)
		res, err := assign.NewResolver(sfb, nil, assign.ResolverOptions{Seed: p.Seed, Shards: p.Shards})
		if err != nil {
			return nil, fmt.Errorf("bench: E27 resolver: %w", err)
		}
		serveWorkload := fmt.Sprintf("mixed churn over random bipartite cdeg=%d", scdeg)
		servPool := make([]int32, snr) // live server ids; drained slots are replaced in place
		for s := range servPool {
			servPool[s] = int32(s)
		}
		ring := make([]int32, 0, 512) // churned customers, oldest first
		ports := make([]int32, scdeg)
		lat := make([]time.Duration, 0, sdeltas)
		crng := rand.New(rand.NewSource(p.Seed + 27))
		churn := func() (int, error) {
			lat = lat[:0]
			for i := 0; i < sdeltas; i++ {
				t0 := time.Now()
				var err error
				switch {
				case i%97 == 96:
					// Rotate a random server out and a fresh one in. A
					// drain can legitimately be refused when some incident
					// customer has no other port; the rotation is skipped.
					j := crng.Intn(len(servPool))
					if derr := res.DrainServer(int(servPool[j])); derr == nil {
						ns, aerr := res.AddServer()
						if aerr != nil {
							err = aerr
						} else {
							servPool[j] = int32(ns)
						}
					}
				case i%13 == 5 && len(ring) > 0:
					// Grow a churned customer's adjacency by one port,
					// unless the draw already is one.
					c := ring[crng.Intn(len(ring))]
					s := servPool[crng.Intn(len(servPool))]
					dup := false
					for _, t := range res.Overlay().Adj(int(c)) {
						if t == s {
							dup = true
							break
						}
					}
					if !dup {
						err = res.AddEdge(int(c), int(s))
					}
				case len(ring) == cap(ring):
					c := ring[0]
					copy(ring, ring[1:])
					ring = ring[:len(ring)-1]
					err = res.RemoveCustomer(int(c))
				default:
					for k := range ports {
					redraw:
						ports[k] = servPool[crng.Intn(len(servPool))]
						for _, prev := range ports[:k] {
							if prev == ports[k] {
								goto redraw
							}
						}
					}
					c, aerr := res.AddCustomer(ports)
					if aerr != nil {
						err = aerr
					} else {
						ring = append(ring, int32(c))
					}
				}
				lat = append(lat, time.Since(t0))
				if err != nil {
					return i, err
				}
			}
			return sdeltas, nil
		}
		if _, err := churn(); err != nil { // warm the resolver's grow-only state
			res.Close()
			return nil, fmt.Errorf("bench: E27 warm-up: %w", err)
		}
		var best ShardedBenchEntry
		for r := 0; r < p.Repeat || r == 0; r++ {
			e, err := measured(churn)
			if err != nil {
				res.Close()
				return nil, fmt.Errorf("bench: E27 serving incremental: %w", err)
			}
			slices.Sort(lat)
			e.P50Micros = float64(lat[len(lat)/2]) / 1e3
			e.P99Micros = float64(lat[len(lat)*99/100]) / 1e3
			if r == 0 || e.RoundsPerSec > best.RoundsPerSec {
				wasBest := best
				best = e
				if r > 0 && wasBest.AllocsPerRound < best.AllocsPerRound {
					best.AllocsPerRound = wasBest.AllocsPerRound
					best.BytesPerRound = wasBest.BytesPerRound
				}
			} else if e.AllocsPerRound < best.AllocsPerRound {
				best.AllocsPerRound = e.AllocsPerRound
				best.BytesPerRound = e.BytesPerRound
			}
		}
		res.Close()
		finishEntry(&best, "E27", "serving", "incremental", serveWorkload, snl, sfb.C.M())
		best.Shards = resolvedShards
		if err := add(best, nil); err != nil {
			return nil, err
		}
	}

	// E28 — the strategy arena's Pareto entries (max load, rounds,
	// messages, wall-clock per strategy×workload). Deterministic in the
	// profile seed; the gate watches the token-dropping rows.
	arenaEntries, err := arenaBenchEntries(p)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	rep.Entries = append(rep.Entries, arenaEntries...)

	// E29 — the multi-process transport's deterministic wire cost per
	// layer and process count (see wirecost.go). Not timed: the numbers
	// are exact, and the gate compares them for equality.
	wireEntries, err := E29BenchEntries(p)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	rep.Entries = append(rep.Entries, wireEntries...)
	return rep, nil
}

// WriteShardedBenchJSON measures the report and writes it as indented
// JSON (the BENCH_sharded.json format).
func WriteShardedBenchJSON(w io.Writer, p Profile) error {
	rep, err := ShardedBench(p)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
