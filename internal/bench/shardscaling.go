package bench

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"time"

	"tokendrop/internal/core"
)

// e25ShardCounts returns the worker counts the scaling experiment sweeps:
// powers of two through GOMAXPROCS, always extending past it (to 2× on a
// single-core box) so the table shows where oversubscription starts.
func e25ShardCounts() []int {
	procs := runtime.GOMAXPROCS(0)
	var counts []int
	for s := 1; s <= procs; s *= 2 {
		counts = append(counts, s)
	}
	if last := counts[len(counts)-1]; last < 2*procs {
		counts = append(counts, last*2)
	}
	return counts
}

// E25: shard scaling of the flat engine. One proposal game is solved to
// completion at increasing worker counts; by the engine's determinism
// contract every run must be bit-identical (same rounds and moves), so
// the sweep isolates the pure throughput effect of adding workers. On a
// single hardware thread the curve is expected to be flat (the barrier
// costs what the compute saves); on multi-core hardware rounds/s should
// climb until the shard count passes the core count.
func E25ShardScaling(p Profile) *Table {
	t := &Table{
		ID:    "E25",
		Title: "Sharded engine shard scaling (proposal algorithm)",
		Claim: "results are shard-count invariant; throughput scales with workers up to the core count",
		Columns: []string{"shards", "n", "m", "rounds", "moves", "ms", "rounds/s",
			"speedup vs 1", "agrees with 1"},
		Notes: []string{fmt.Sprintf("GOMAXPROCS = %d", runtime.GOMAXPROCS(0))},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	cfg := core.LayeredConfig{Levels: 5, Width: 4000, ParentDeg: 4, TokenProb: 0.6, FreeBottom: true}
	if p.Quick {
		cfg.Width = 60
	}
	fi := core.FlatRandomLayered(cfg, rng)

	var baseMS float64
	var baseRounds int
	var baseMoves []core.Move
	for _, shards := range e25ShardCounts() {
		t0 := time.Now()
		res, err := core.SolveProposalSharded(fi, core.ShardedSolveOptions{
			Tie: core.TieFirstPort, Shards: shards, MaxRounds: 1 << 20,
		})
		ms := time.Since(t0).Seconds() * 1000
		if err != nil {
			t.AddRow(shards, fi.N(), fi.M(), "error", err.Error(), "", "", "", mark(false))
			return t
		}
		if shards == 1 {
			baseMS, baseRounds, baseMoves = ms, res.Stats.Rounds, res.Moves
		}
		agree := res.Stats.Rounds == baseRounds && reflect.DeepEqual(res.Moves, baseMoves)
		rps, speed := "-", "-"
		if ms > 0 {
			rps = fmt.Sprintf("%.0f", float64(res.Stats.Rounds)/(ms/1000))
			if baseMS > 0 {
				speed = fmt.Sprintf("%.2f", baseMS/ms)
			}
		}
		t.AddRow(shards, fi.N(), fi.M(), res.Stats.Rounds, len(res.Moves), ms, rps, speed, mark(agree))
	}
	return t
}
