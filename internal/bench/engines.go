package bench

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"tokendrop/internal/core"
)

// E22: the sharded flat LOCAL engine versus the seed goroutine-per-node
// engine. Both run the deterministic proposal protocol (TieFirstPort) on
// the same game with identical port numbering, so beyond the timing the
// experiment certifies that the two engines produce the same run — same
// rounds, same move count, same final configuration potential — and that
// the solution verifies.
func E22ShardedEngine(p Profile) *Table {
	t := &Table{
		ID:    "E22",
		Title: "Sharded flat engine vs seed engine (proposal algorithm)",
		Claim: "the CSR/flat-word engine reproduces the object engine's runs bit for bit, faster",
		Columns: []string{"engine", "n", "m", "rounds", "moves", "final Φ", "ms", "rounds/s",
			"verified", "engines agree"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	cfg := core.LayeredConfig{Levels: 5, Width: 2000, ParentDeg: 4, TokenProb: 0.6, FreeBottom: true}
	if p.Quick {
		cfg.Width = 60
	}
	fi := core.FlatRandomLayered(cfg, rng)
	inst := fi.Instance()

	t0 := time.Now()
	seedSol, seedStats, err := core.SolveProposal(inst, core.SolveOptions{Tie: core.TieFirstPort, MaxRounds: 1 << 20})
	seedMS := time.Since(t0).Seconds() * 1000
	if err != nil {
		t.AddRow("seed", inst.N(), inst.Graph().M(), "error", err.Error(), "", "", "", mark(false), "")
		return t
	}
	t0 = time.Now()
	res, err := core.SolveProposalSharded(fi, core.ShardedSolveOptions{Tie: core.TieFirstPort, MaxRounds: 1 << 20, Shards: p.Shards})
	shardMS := time.Since(t0).Seconds() * 1000
	if err != nil {
		t.AddRow("sharded", fi.N(), fi.M(), "error", err.Error(), "", "", "", mark(false), "")
		return t
	}
	flatSol := res.Solution(inst)

	agree := seedStats.Rounds == res.Stats.Rounds &&
		len(seedSol.Moves) == len(res.Moves) &&
		core.SolutionPotential(seedSol) == core.SolutionPotential(flatSol) &&
		slices.Equal(seedSol.Final, flatSol.Final)
	rps := func(rounds int, ms float64) string {
		if ms <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", float64(rounds)/(ms/1000))
	}
	t.AddRow("seed", inst.N(), inst.Graph().M(), seedStats.Rounds, len(seedSol.Moves),
		core.SolutionPotential(seedSol), seedMS, rps(seedStats.Rounds, seedMS),
		mark(core.Verify(seedSol) == nil), mark(agree))
	t.AddRow("sharded", fi.N(), fi.M(), res.Stats.Rounds, len(res.Moves),
		core.SolutionPotential(flatSol), shardMS, rps(res.Stats.Rounds, shardMS),
		mark(core.Verify(flatSol) == nil), mark(agree))
	if shardMS > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("speedup %.1fx end-to-end at n=%d (10⁶-vertex numbers in CHANGES.md)",
			seedMS/shardMS, inst.N()))
	}
	return t
}
