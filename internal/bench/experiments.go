package bench

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/baseline"
	"tokendrop/internal/core"
	"tokendrop/internal/graph"
	"tokendrop/internal/lowerbound"
	"tokendrop/internal/matching"
	"tokendrop/internal/orient"
)

// E1 (Figure 1): stable orientations on small example graphs — every edge
// happy, loads balanced by the selfish criterion.
func E1StableOrientationExamples(p Profile) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Stable orientations on Figure 1-style examples",
		Claim:   "an orientation is stable iff every edge (u,v) has indegree(v) ≤ indegree(u)+1 (§1.1)",
		Columns: []string{"graph", "n", "m", "Δ", "phases", "rounds", "max load", "stable"},
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle C6", graph.Cycle(6)},
		{"path P7", graph.Path(7)},
		{"star K1,6", graph.Star(6)},
		{"grid 3x3", graph.Grid2D(3, 3)},
		{"complete K5", graph.Complete(5)},
		{"petersen-ish 3-reg", graph.RandomRegular(10, 3, rand.New(rand.NewSource(p.Seed+1)))},
	}
	for _, tc := range cases {
		res, err := orient.Solve(tc.g, orient.Options{Seed: p.Seed, CheckInvariants: true})
		if err != nil {
			t.AddRow(tc.name, tc.g.N(), tc.g.M(), tc.g.MaxDegree(), "-", "-", "-", "error: "+err.Error())
			continue
		}
		maxLoad := 0
		for v := 0; v < tc.g.N(); v++ {
			if l := res.Orientation.Load(v); l > maxLoad {
				maxLoad = l
			}
		}
		t.AddRow(tc.name, tc.g.N(), tc.g.M(), tc.g.MaxDegree(),
			res.Phases, res.Rounds, maxLoad, mark(res.Orientation.Stable()))
	}
	return t
}

// E2 (Figure 2): the token dropping game on the Figure 2 instance —
// feasible terminal configurations and the paths tokens followed.
func E2TokenDroppingFigure2(p Profile) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Token dropping on the Figure 2 instance (13 nodes, 5 layers)",
		Claim:   "the game reaches a stuck configuration with edge-disjoint, maximal traversals (§4)",
		Columns: []string{"solver", "rounds", "moves", "token paths (origin→…→destination)"},
	}
	inst := core.Figure2()
	runs := []struct {
		name string
		sol  *core.Solution
	}{
		{"sequential (first)", core.SolveSequential(inst, core.PolicyFirst, nil)},
		{"sequential (lowest-first)", core.SolveSequential(inst, core.PolicyLowestFirst, nil)},
	}
	dist, _, err := core.SolveProposal(inst, core.SolveOptions{Seed: p.Seed, MaxRounds: 1 << 16})
	if err == nil {
		runs = append(runs, struct {
			name string
			sol  *core.Solution
		}{"distributed proposal", dist})
	}
	for _, r := range runs {
		verified := core.Verify(r.sol) == nil
		paths := ""
		for i, tr := range r.sol.Traversals() {
			if i > 0 {
				paths += " "
			}
			paths += pathString(tr.Path)
		}
		if !verified {
			paths = "UNVERIFIED " + paths
		}
		t.AddRow(r.name, r.sol.Rounds, len(r.sol.Moves), paths)
	}
	return t
}

func pathString(path []int) string {
	s := ""
	for i, v := range path {
		if i > 0 {
			s += "→"
		}
		s += fmt.Sprint(v)
	}
	return s
}

// E3 (Figure 3 / Definition 4.3): traversals, tails, extended traversals.
func E3TraversalTails(p Profile) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Traversals and their tails (Definition 4.3, Figure 3)",
		Claim:   "the extended traversal p* = traversal + tail is well-defined and level-descending",
		Columns: []string{"instance", "token", "traversal", "tail", "extended"},
	}
	g := graph.Path(4)
	inst := core.MustInstance(g, []int{0, 1, 2, 3}, []bool{false, false, true, true})
	for name, sol := range map[string]*core.Solution{
		"cascade path": core.SolveSequential(inst, core.PolicyLowestFirst, nil),
	} {
		for _, tr := range sol.Traversals() {
			t.AddRow(name, tr.Origin(), pathString(tr.Path), pathString(sol.Tail(tr)), pathString(sol.ExtendedTraversal(tr)))
		}
	}
	fig := core.Figure2()
	sol := core.SolveSequential(fig, core.PolicyHighestFirst, nil)
	for _, tr := range sol.Traversals() {
		t.AddRow("figure 2", tr.Origin(), pathString(tr.Path), pathString(sol.Tail(tr)), pathString(sol.ExtendedTraversal(tr)))
	}
	return t
}

// E4a (Theorem 4.1): proposal-algorithm rounds as Δ grows at fixed L.
func E4ProposalDeltaSweep(p Profile) *Table {
	t := &Table{
		ID:      "E4a",
		Title:   "Token dropping rounds vs Δ at fixed height (proposal algorithm)",
		Claim:   "O(L·Δ²) rounds (Theorem 4.1); Lemma 4.4 caps active-unoccupied rounds at O(Δ²)",
		Columns: []string{"Δ", "L", "n", "rounds", "bound 8LΔ²", "maxActive", "Δ²"},
	}
	degrees := []int{2, 3, 4, 6, 8, 12}
	if p.Quick {
		degrees = []int{2, 4, 8}
	}
	const L = 4
	var xs, ys []float64
	for _, d := range degrees {
		rng := rand.New(rand.NewSource(p.Seed + int64(d)))
		cfg := core.LayeredConfig{Levels: L, Width: 3 * d, ParentDeg: d, TokenProb: 0.8, FreeBottom: true}
		inst := core.RandomLayered(cfg, rng)
		delta := inst.MaxDegree()
		_, stats, err := core.SolveProposal(inst, core.SolveOptions{Seed: p.Seed, MaxRounds: 1 << 20})
		if err != nil {
			t.AddRow(delta, L, inst.N(), "error", "-", "-", "-")
			continue
		}
		t.AddRow(delta, L, inst.N(), stats.Rounds, 8*(L+1)*delta*delta, stats.MaxActiveUnoccupied, delta*delta)
		xs = append(xs, float64(delta))
		ys = append(ys, float64(stats.Rounds))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("fitted rounds ~ Δ^%.2f (worst-case bound is Δ^2; random instances are easier)", FitPowerLaw(xs, ys)))
	return t
}

// E4b (Theorem 4.1): rounds as L grows at fixed Δ, on the adversarial
// single-slot chain (exactly Θ(L) forced sequential steps).
func E4ProposalLevelSweep(p Profile) *Table {
	t := &Table{
		ID:      "E4b",
		Title:   "Token dropping rounds vs height L at fixed Δ",
		Claim:   "rounds grow linearly in L on the cascade chain; O(L·Δ²) overall (Theorem 4.1)",
		Columns: []string{"workload", "L", "Δ", "rounds", "rounds/L"},
	}
	levels := []int{4, 8, 16, 32, 64}
	if p.Quick {
		levels = []int{4, 16, 64}
	}
	var xs, ys []float64
	for _, L := range levels {
		inst := core.Chain(L)
		_, stats, err := core.SolveProposal(inst, core.SolveOptions{MaxRounds: 1 << 20})
		if err != nil {
			continue
		}
		t.AddRow("chain", L, inst.MaxDegree(), stats.Rounds, float64(stats.Rounds)/float64(L))
		xs = append(xs, float64(L))
		ys = append(ys, float64(stats.Rounds))
	}
	for _, L := range levels {
		rng := rand.New(rand.NewSource(p.Seed + int64(L)))
		cfg := core.LayeredConfig{Levels: L, Width: 8, ParentDeg: 3, TokenProb: 0.8, FreeBottom: true}
		inst := core.RandomLayered(cfg, rng)
		_, stats, err := core.SolveProposal(inst, core.SolveOptions{Seed: p.Seed, MaxRounds: 1 << 20})
		if err != nil {
			continue
		}
		t.AddRow("random layered", L, inst.MaxDegree(), stats.Rounds, float64(stats.Rounds)/float64(L))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("chain: rounds ~ L^%.2f (expected exponent 1.0)", FitPowerLaw(xs, ys)))
	return t
}

// E5 (Theorem 4.6): height-2 token dropping is bipartite maximal matching.
func E5Height2Matching(p Profile) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Height-2 games solve bipartite maximal matching (the Theorem 4.6 reduction, forwards)",
		Claim:   "token dropping inherits the Ω(Δ + log n/log log n) maximal matching lower bound (Theorem 4.6)",
		Columns: []string{"n_left", "n_right", "Δ", "game rounds", "direct MM rounds", "matching maximal"},
	}
	sizes := []struct{ nl, nr, c int }{{10, 10, 3}, {20, 15, 4}, {40, 25, 6}, {80, 50, 8}}
	if p.Quick {
		sizes = sizes[:2]
	}
	for i, sz := range sizes {
		rng := rand.New(rand.NewSource(p.Seed + int64(i)))
		bg := graph.RandomBipartite(sz.nl, sz.nr, sz.c, rng)
		b := graph.MustBipartite(bg, sz.nl)
		inst := core.FromBipartite(bg, sz.nl)
		sol, stats, err := core.SolveProposal(inst, core.SolveOptions{Seed: p.Seed, MaxRounds: 1 << 20})
		if err != nil {
			continue
		}
		// Convert traversals to a matching and verify maximality.
		matchOf := make([]int, bg.N())
		for v := range matchOf {
			matchOf[v] = -1
		}
		for _, tr := range sol.Traversals() {
			if len(tr.Path) == 2 {
				matchOf[tr.Path[0]] = tr.Path[1]
				matchOf[tr.Path[1]] = tr.Path[0]
			}
		}
		maximal := matching.VerifyMaximal(b, matchOf) == nil
		mm, err := matching.Solve(b, 1<<20, 0)
		mmRounds := -1
		if err == nil {
			mmRounds = mm.Rounds
		}
		delta := bg.MaxDegree()
		t.AddRow(sz.nl, sz.nr, delta, stats.Rounds, mmRounds, mark(maximal))
	}
	return t
}

// E6 (Theorem 4.7): the 3-level specialized algorithm runs in O(Δ) rounds
// while the generic proposal algorithm may spend ~Δ² on the same games.
func E6ThreeLevelSweep(p Profile) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "3-level games: specialized O(Δ) vs generic O(Δ²) (Theorem 4.7)",
		Claim:   "the specialized algorithm's rounds grow linearly in Δ; the factor-Δ gap to the generic algorithm grows",
		Columns: []string{"Δ", "n", "3lvl rounds", "generic rounds", "3lvl/Δ", "generic/3lvl"},
	}
	degrees := []int{2, 4, 8, 12, 16}
	if p.Quick {
		degrees = []int{2, 4, 8}
	}
	var xs, ys []float64
	for _, d := range degrees {
		rng := rand.New(rand.NewSource(p.Seed + int64(d)))
		inst := core.ThreeLevelRandom(3*d, 3*d, d, 0.5, rng)
		delta := inst.MaxDegree()
		_, st3, err3 := core.SolveThreeLevel(inst, core.SolveOptions{Seed: p.Seed, MaxRounds: 1 << 20})
		_, stg, errg := core.SolveProposal(inst, core.SolveOptions{Seed: p.Seed, MaxRounds: 1 << 20})
		if err3 != nil || errg != nil {
			continue
		}
		t.AddRow(delta, inst.N(), st3.Rounds, stg.Rounds,
			float64(st3.Rounds)/float64(delta), float64(stg.Rounds)/float64(st3.Rounds))
		xs = append(xs, float64(delta))
		ys = append(ys, float64(st3.Rounds))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("specialized: rounds ~ Δ^%.2f (Theorem 4.7 predicts exponent ≤ 1)", FitPowerLaw(xs, ys)),
		"random instances keep both algorithms far below their worst cases; the bounds differ (Δ vs Δ²), the averages need not")
	return t
}

// E7 (Theorem 5.1 + Lemmas 5.4, 5.5): stable orientation sweep over Δ.
func E7OrientDeltaSweep(p Profile) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Stable orientation vs Δ (Theorem 5.1)",
		Claim:   "O(Δ) phases (Lemma 5.5), badness ≤ 1 at phase ends (Lemma 5.4), O(Δ⁴) worst-case rounds",
		Columns: []string{"Δ", "n", "phases", "2Δ+2", "rounds", "worst-case bound", "badness ≤ 1", "stable"},
	}
	degrees := []int{2, 3, 4, 6, 8, 10}
	if p.Quick {
		degrees = []int{2, 4, 6}
	}
	for _, d := range degrees {
		rng := rand.New(rand.NewSource(p.Seed + int64(d)))
		n := 6 * d
		if n*d%2 != 0 {
			n++
		}
		g := graph.RandomRegular(n, d, rng)
		res, err := orient.Solve(g, orient.Options{Seed: p.Seed, CheckInvariants: true})
		if err != nil {
			t.AddRow(d, n, "-", "-", "-", "-", "error", err.Error())
			continue
		}
		badOK := true
		for _, rec := range res.PhaseLog {
			if rec.MaxBadness > 1 {
				badOK = false
			}
		}
		t.AddRow(d, n, res.Phases, 2*d+2, res.Rounds, res.WorstCaseRounds,
			mark(badOK), mark(res.Orientation.Stable()))
	}
	return t
}

// E8 (§1.1, §2): the paper's algorithm vs the CHSW12-class selfish-flip
// dynamic and the sequential greedy, across Δ and across n.
func E8OrientVsBaseline(p Profile) []*Table {
	degree := &Table{
		ID:      "E8a",
		Title:   "Ours vs selfish-flip dynamic vs sequential greedy (degree sweep)",
		Claim:   "careful incremental orientation beats arbitrary-start repair (§1.2 'New ideas')",
		Columns: []string{"Δ", "n", "ours rounds", "selfish rounds", "selfish flips", "greedy flips"},
	}
	degrees := []int{3, 4, 6, 8}
	if p.Quick {
		degrees = []int{3, 6}
	}
	for _, d := range degrees {
		rng := rand.New(rand.NewSource(p.Seed + int64(d)))
		n := 8 * d
		if n*d%2 != 0 {
			n++
		}
		g := graph.RandomRegular(n, d, rng)
		ours, err := orient.Solve(g, orient.Options{Seed: p.Seed})
		if err != nil {
			continue
		}
		init := baseline.OrientAll(g, baseline.InitTowardHigherID, nil)
		selfish, err := baseline.SelfishFlips(init, p.Seed, 1<<20, 0)
		if err != nil {
			continue
		}
		greedy := baseline.SequentialGreedy(init.Clone(), baseline.FlipFirst, nil)
		degree.AddRow(d, n, ours.Rounds, selfish.Rounds, selfish.Flips, greedy.Flips)
	}

	size := &Table{
		ID:      "E8b",
		Title:   "Round counts as the graph grows at fixed Δ",
		Claim:   "the distributed round count is independent of n (§1.1); the baselines' total work grows with the graph",
		Columns: []string{"n", "Δ", "ours rounds", "selfish rounds", "selfish flips", "greedy flips"},
	}
	sizes := []int{16, 64, 256}
	if p.Quick {
		sizes = []int{16, 64}
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(p.Seed + int64(n)))
		g := graph.RandomRegular(n, 4, rng)
		ours, err := orient.Solve(g, orient.Options{Seed: p.Seed})
		if err != nil {
			continue
		}
		init := baseline.OrientAll(g, baseline.InitRandom, rng)
		selfish, err := baseline.SelfishFlips(init, p.Seed, 1<<20, 0)
		if err != nil {
			continue
		}
		greedy := baseline.SequentialGreedy(init.Clone(), baseline.FlipFirst, nil)
		size.AddRow(n, 4, ours.Rounds, selfish.Rounds, selfish.Flips, greedy.Flips)
	}
	return []*Table{degree, size}
}

// E9 (Theorem 6.3, Lemmas 6.1–6.2): the lower-bound constructions.
func E9LowerBound(p Profile) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Ω(Δ) lower bound constructions (Section 6)",
		Claim:   "isomorphic t-views force equal outputs, but stability demands indegree ≥ ⌈Δ/2⌉ in G1 and ≤ ⌈Δ/2⌉-1 in G2",
		Columns: []string{"Δ", "t", "girth", "balls iso", "views equal", "forced indeg", "tree cap", "contradiction"},
	}
	deltas := []int{8, 10, 12}
	if p.Quick {
		deltas = []int{8, 10}
	}
	for _, d := range deltas {
		reg := graph.CompleteBipartite(d, d) // d-regular, girth 4 ≥ 2t+2 for t=1
		rep, err := lowerbound.RunIndistinguishability(reg, d, 1)
		if err != nil {
			t.AddRow(d, 1, "-", "-", "-", "-", "-", "error: "+err.Error())
			continue
		}
		t.AddRow(d, rep.Radius, rep.Girth, mark(rep.BallsMatch), mark(rep.ViewsMatch),
			rep.RegularForce, rep.TreeCap, mark(rep.Contradicts()))
	}
	// Lemma verification on actual solver outputs.
	rng := rand.New(rand.NewSource(p.Seed))
	tree, _ := graph.PerfectDAry(4, 4)
	resTree, errTree := orient.Solve(tree, orient.Options{Seed: p.Seed})
	if errTree == nil {
		t.Notes = append(t.Notes, fmt.Sprintf("Lemma 6.1 on solver output (perfect 4-ary tree): %s",
			mark(lowerbound.CheckLemma61(resTree.Orientation) == nil)))
	}
	reg := graph.RandomRegular(24, 6, rng)
	resReg, errReg := orient.Solve(reg, orient.Options{Seed: p.Seed})
	if errReg == nil {
		_, err := lowerbound.CheckLemma62(resReg.Orientation, 6)
		t.Notes = append(t.Notes, fmt.Sprintf("Lemma 6.2 on solver output (6-regular): %s", mark(err == nil)))
	}
	return t
}
