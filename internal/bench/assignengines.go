package bench

import (
	"fmt"
	"math/rand"
	"time"

	"tokendrop/internal/assign"
	"tokendrop/internal/graph"
)

// E24: the sharded assignment runtime versus the seed engine. Both run the
// Theorem 7.3 phase algorithm under first-port ties on the same network
// with identical per-phase incidence port numbering, so beyond the timing
// the experiment certifies that the two runtimes produce the same run —
// same phases, rounds, phase log, and final assignment — and that the
// result is stable.
func E24AssignSharded(p Profile) *Table {
	t := &Table{
		ID:    "E24",
		Title: "Sharded assignment runtime vs seed engine (Thm 7.3)",
		Claim: "the flat phase loop reproduces the seed engine's assignment runs bit for bit, faster",
		Columns: []string{"engine", "customers", "servers", "phases", "rounds", "cost", "ms", "rounds/s",
			"stable", "engines agree"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	nl, nr, cdeg := 100_000, 25_000, 3
	if p.Quick {
		nl, nr = 4_000, 1_000
	}
	b := graph.MustBipartite(graph.RandomBipartite(nl, nr, cdeg, rng), nl)
	fb := graph.NewCSRBipartiteFromBipartite(b)

	t0 := time.Now()
	seedRes, err := assign.Solve(b, assign.Options{Seed: p.Seed})
	seedMS := time.Since(t0).Seconds() * 1000
	if err != nil {
		t.AddRow("seed", nl, nr, "error", err.Error(), "", "", "", mark(false), "")
		return t
	}
	t0 = time.Now()
	flatRes, err := assign.SolveSharded(fb, assign.ShardedOptions{Seed: p.Seed, Shards: p.Shards})
	shardMS := time.Since(t0).Seconds() * 1000
	if err != nil {
		t.AddRow("sharded", nl, nr, "error", err.Error(), "", "", "", mark(false), "")
		return t
	}

	agree := seedRes.Phases == flatRes.Phases && seedRes.Rounds == flatRes.Rounds &&
		len(seedRes.PhaseLog) == len(flatRes.PhaseLog)
	for i := range seedRes.PhaseLog {
		agree = agree && seedRes.PhaseLog[i] == flatRes.PhaseLog[i]
	}
	for c := 0; agree && c < nl; c++ {
		agree = seedRes.Assignment.ServerOf[c] == nl+int(flatRes.ServerOf[c])
	}
	rps := func(rounds int, ms float64) string {
		if ms <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", float64(rounds)/(ms/1000))
	}
	t.AddRow("seed", nl, nr, seedRes.Phases, seedRes.Rounds, seedRes.Assignment.SemimatchingCost(),
		seedMS, rps(seedRes.Rounds, seedMS), mark(seedRes.Assignment.Stable()), mark(agree))
	t.AddRow("sharded", nl, nr, flatRes.Phases, flatRes.Rounds, flatRes.SemimatchingCost(),
		shardMS, rps(flatRes.Rounds, shardMS), mark(flatRes.Stable()), mark(agree))
	if shardMS > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("speedup %.1fx end-to-end at %d customers (measured numbers in CHANGES.md)",
			seedMS/shardMS, nl))
	}
	return t
}
