package bench

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
	"tokendrop/internal/local"
)

// E29 — the multi-process transport's wire cost. The star-routed
// exchange (internal/mp) ships, per round, one upstream and one
// downstream frame per worker process, and exactly the buffer words
// whose sender and receiver live in different processes. Both numbers
// are pure functions of the graph and the engine's arc-balanced shard
// map (local.MPWireCost), so they are exactly reproducible: the
// regression gate compares them for equality, and any change is a real
// message-volume change in the transport or the partitioner — never
// timing noise. ProcTransport's live frame accounting matches these
// figures byte-for-byte (asserted by internal/mp's wire-accounting
// test), so gating the static numbers gates the real traffic.

// e29Procs is the worker-process sweep the wire-cost entries cover.
func e29Procs() []int { return []int{2, 4} }

// e29Workloads rebuilds the engine-benchmark workloads of E22–E24 (same
// sizes, same seed derivation) and returns one CSR per paper layer.
func e29Workloads(p Profile) []struct {
	layer    string
	workload string
	csr      *graph.CSR
} {
	rng := rand.New(rand.NewSource(p.Seed))
	gcfg := core.LayeredConfig{Levels: 5, Width: 20_000, ParentDeg: 4, TokenProb: 0.6, FreeBottom: true}
	if p.Quick {
		gcfg.Width = 60
	}
	fi := core.FlatRandomLayered(gcfg, rng)

	on, od := 60_000, 4
	if p.Quick {
		on = 2_000
	}
	ocsr := graph.NewCSRFromGraph(graph.RandomRegular(on, od, rng))

	nl, nr, cdeg := 100_000, 25_000, 3
	if p.Quick {
		nl, nr = 4_000, 1_000
	}
	ab := graph.MustBipartite(graph.RandomBipartite(nl, nr, cdeg, rng), nl)
	afb := graph.NewCSRBipartiteFromBipartite(ab)

	return []struct {
		layer    string
		workload string
		csr      *graph.CSR
	}{
		{"game", fmt.Sprintf("random layered L=%d w=%d d=%d", gcfg.Levels, gcfg.Width, gcfg.ParentDeg), fi.CSR()},
		{"orientation", fmt.Sprintf("random %d-regular", od), ocsr},
		{"assignment", fmt.Sprintf("random bipartite cdeg=%d", cdeg), afb.C},
	}
}

// E29WireCost renders the per-layer wire cost of the multi-process
// transport across the worker-process sweep.
func E29WireCost(p Profile) *Table {
	t := &Table{
		ID:    "E29",
		Title: "Multi-process transport wire cost (frames and bytes per round)",
		Claim: "round communication is O(boundary-crossing arcs): a pure function of graph and shard map, measured exactly",
		Columns: []string{"layer", "workload", "n", "m", "procs",
			"frames/round", "bytes/round", "cross words"},
		Notes: []string{
			"bytes/round = frames × 13-byte frame header + 2 bytes per boundary-crossing buffer word",
			"td-benchgate compares these entries for equality — they are deterministic, so any drift is a transport change",
		},
	}
	for _, wl := range e29Workloads(p) {
		for _, procs := range e29Procs() {
			frames, wireBytes, err := local.MPWireCost(wl.csr, procs, 1)
			if err != nil {
				t.AddRow(wl.layer, wl.workload, wl.csr.N(), wl.csr.M(), procs, "error", err.Error(), "")
				continue
			}
			pb, _ := local.ProcBoundsFromShards(local.ShardBounds(wl.csr, procs), procs, 1)
			cross := local.NewExchangePlan(wl.csr, pb).CrossWords()
			t.AddRow(wl.layer, wl.workload, wl.csr.N(), wl.csr.M(), procs, frames, wireBytes, cross)
		}
	}
	return t
}

// E29BenchEntries returns the machine-readable E29 entries for the
// engine benchmark report: one per layer × process count, engine "mp",
// with the deterministic wire cost in the wire_* fields and the process
// count in Shards (the gate's key). Timing fields stay zero — there is
// nothing to time, and the gate's rounds/s check skips zero baselines.
func E29BenchEntries(p Profile) ([]ShardedBenchEntry, error) {
	var out []ShardedBenchEntry
	for _, wl := range e29Workloads(p) {
		for _, procs := range e29Procs() {
			frames, wireBytes, err := local.MPWireCost(wl.csr, procs, 1)
			if err != nil {
				return nil, fmt.Errorf("E29 %s procs=%d: %w", wl.layer, procs, err)
			}
			out = append(out, ShardedBenchEntry{
				Experiment:         "E29",
				Layer:              wl.layer,
				Engine:             "mp",
				Workload:           wl.workload,
				N:                  wl.csr.N(),
				M:                  wl.csr.M(),
				Shards:             procs,
				WireFramesPerRound: frames,
				WireBytesPerRound:  wireBytes,
			})
		}
	}
	return out, nil
}
