package bench

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file is the bench-regression gate: CI regenerates the quick
// engine benchmark report (ShardedBench) on every run and diffs it
// against the committed quick-profile baseline, so a PR that slows a
// phase loop down or reintroduces steady-state allocation churn fails
// loudly instead of silently bending the perf trajectory. The committed
// baselines live at the repository root: BENCH_sharded.json (full
// profile, documentation) and BENCH_sharded_quick.json (quick profile,
// the CI gate's baseline — regenerate it with
// `td-experiments -quick -only E25,E26,E29 -shards 2 -shardedjson BENCH_sharded_quick.json`,
// the exact CI measurement command, whenever a PR intentionally shifts
// performance).

// RegressionOptions tune the gate's tolerances.
type RegressionOptions struct {
	// RoundsTolerance is the fractional rounds/s drop tolerated per
	// entry before the gate fails; 0 means the 0.15 default. The
	// documented run-to-run noise of the quick profile is ~10% (small
	// instances, sub-second runs), so the default leaves a margin above
	// it — a genuine serial-path regression lands well past 15%.
	RoundsTolerance float64
	// AllocSlack is the absolute allocs/round increase tolerated on
	// sharded and incremental (steady-state) entries; 0 means the 0.5
	// default. The contract is "no new allocation churn": warmed
	// steady-state entries sit at a few allocs/round or less, so half an
	// allocation of slack absorbs runtime background noise while any real
	// per-round allocation (one object per round = +1.0) still fails.
	AllocSlack float64
	// LatencyTolerance is the fractional p99-latency growth tolerated on
	// entries that record latency percentiles (the serve-mode entry); 0
	// means the 0.5 default. Tail latency is far noisier than throughput
	// on a shared runner — a single descheduling under the p99 sample
	// moves it — so the gate only catches gross regressions (a repair
	// cascade gone quadratic), not drift.
	LatencyTolerance float64
}

// CompareShardedReports diffs a freshly measured report against a
// committed baseline, entry by entry (keyed by experiment, layer,
// engine, and shard count). It returns hard violations — rounds/s
// regressions beyond the tolerance on any entry, allocs/round increases
// beyond the slack on sharded and incremental entries, and p99-latency
// growth beyond the latency tolerance on entries that record
// percentiles — separately from warnings (baseline entries the fresh
// report no longer measures, e.g. a wider scaling sweep on the baseline
// machine than on the runner). Comparing reports from different
// profiles (quick vs full) is itself a violation: their workload sizes
// differ, so their numbers are not comparable.
func CompareShardedReports(base, fresh *ShardedBenchReport, opt RegressionOptions) (violations, warnings []string) {
	tol := opt.RoundsTolerance
	if tol == 0 {
		tol = 0.15
	}
	slack := opt.AllocSlack
	if slack == 0 {
		slack = 0.5
	}
	latTol := opt.LatencyTolerance
	if latTol == 0 {
		latTol = 0.5
	}
	if base.Quick != fresh.Quick {
		return []string{fmt.Sprintf("profiles differ: baseline quick=%v, fresh quick=%v (regenerate the baseline)",
			base.Quick, fresh.Quick)}, nil
	}
	if base.Seed != fresh.Seed {
		warnings = append(warnings, fmt.Sprintf("seeds differ (baseline %d, fresh %d): workloads are not identical",
			base.Seed, fresh.Seed))
	}
	key := func(e *ShardedBenchEntry) string {
		// The workload joins the key for the arena entries, where one
		// strategy (engine) runs once per workload family; the engine
		// entries keep their historical keys (one workload per
		// experiment×layer×engine×shards).
		if e.Layer == "arena" {
			return fmt.Sprintf("%s/%s/%s/%s", e.Experiment, e.Layer, e.Engine, e.Workload)
		}
		return fmt.Sprintf("%s/%s/%s/shards=%d", e.Experiment, e.Layer, e.Engine, e.Shards)
	}
	freshByKey := make(map[string]*ShardedBenchEntry, len(fresh.Entries))
	for i := range fresh.Entries {
		freshByKey[key(&fresh.Entries[i])] = &fresh.Entries[i]
	}
	for i := range base.Entries {
		b := &base.Entries[i]
		k := key(b)
		f, ok := freshByKey[k]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("%s: in the baseline but not measured by the fresh report", k))
			continue
		}
		if b.RoundsPerSec > 0 && f.RoundsPerSec < b.RoundsPerSec*(1-tol) {
			violations = append(violations, fmt.Sprintf(
				"%s: rounds/s regressed %.1f%% (baseline %.0f, fresh %.0f; tolerance %.0f%%)",
				k, 100*(1-f.RoundsPerSec/b.RoundsPerSec), b.RoundsPerSec, f.RoundsPerSec, 100*tol))
		}
		if (b.Engine == "sharded" || b.Engine == "incremental") && f.AllocsPerRound > b.AllocsPerRound+slack {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/round grew from %.1f to %.1f (slack %.1f) — steady-state allocation churn",
				k, b.AllocsPerRound, f.AllocsPerRound, slack))
		}
		if b.P99Micros > 0 && f.P99Micros > b.P99Micros*(1+latTol) {
			violations = append(violations, fmt.Sprintf(
				"%s: p99 delta latency grew %.0f%% (baseline %.1fµs, fresh %.1fµs; tolerance %.0f%%)",
				k, 100*(f.P99Micros/b.P99Micros-1), b.P99Micros, f.P99Micros, 100*latTol))
		}
		// The multi-process transport's wire cost (E29) is deterministic —
		// a pure function of graph and shard map — so growth is gated
		// exactly: more frames or more bytes per round means the transport
		// or the partitioner now ships more, which is precisely the
		// message-volume regression the entries exist to catch. A shrink
		// is an improvement that still deserves a re-baseline, so it
		// surfaces as a warning rather than a violation.
		if b.WireBytesPerRound > 0 {
			if f.WireBytesPerRound > b.WireBytesPerRound || f.WireFramesPerRound > b.WireFramesPerRound {
				violations = append(violations, fmt.Sprintf(
					"%s: wire cost grew from %d frames/%d bytes per round to %d frames/%d bytes — the transport ships more",
					k, b.WireFramesPerRound, b.WireBytesPerRound, f.WireFramesPerRound, f.WireBytesPerRound))
			} else if f.WireBytesPerRound < b.WireBytesPerRound || f.WireFramesPerRound < b.WireFramesPerRound {
				warnings = append(warnings, fmt.Sprintf(
					"%s: wire cost shrank from %d frames/%d bytes per round to %d frames/%d bytes (regenerate the baseline)",
					k, b.WireFramesPerRound, b.WireBytesPerRound, f.WireFramesPerRound, f.WireBytesPerRound))
			}
		}
		// The arena's token-dropping rows are gated on the deterministic
		// Pareto axes: with the same seed and workload, max load and
		// rounds reproduce exactly, so any growth is a real behavior
		// change (regenerate the baseline if it is an intended one). The
		// competing baselines ride along report-only — their RoundsPerSec
		// is zero and their engine names match no steady-state check.
		if b.Layer == "arena" && b.Engine == "token-dropping" {
			if f.MaxLoad > b.MaxLoad {
				violations = append(violations, fmt.Sprintf(
					"%s: token-dropping max load grew from %d to %d — the Pareto point moved",
					k, b.MaxLoad, f.MaxLoad))
			}
			if f.Rounds > b.Rounds {
				violations = append(violations, fmt.Sprintf(
					"%s: token-dropping rounds grew from %d to %d",
					k, b.Rounds, f.Rounds))
			}
		}
	}
	return violations, warnings
}

// ReadShardedBenchJSON parses a report written by WriteShardedBenchJSON.
func ReadShardedBenchJSON(r io.Reader) (*ShardedBenchReport, error) {
	var rep ShardedBenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: parsing sharded report: %w", err)
	}
	return &rep, nil
}
