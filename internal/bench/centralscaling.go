package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"time"

	"tokendrop/internal/assign"
	"tokendrop/internal/graph"
	"tokendrop/internal/orient"
)

// E26: shard scaling of the whole phase loops. E25 isolates the subgame
// rounds; this experiment solves one orientation and one assignment
// instance end to end at increasing worker counts, so it also exercises
// the central per-phase passes (proposal/accept evaluation, game-assembly
// marks, result scatter, badness recounts) that run as Session.ParallelFor
// kernels on the same worker pool. By the kernels' owner-computes
// discipline every run must be bit-identical (same phases, rounds, and
// final orientation/assignment), which the "agrees with 1" column checks;
// on a single hardware thread the throughput curve is expected to be
// flat, on multi-core hardware rounds/s should climb until the shard
// count passes the core count.
func E26CentralStepScaling(p Profile) *Table {
	t := &Table{
		ID:    "E26",
		Title: "Phase-loop shard scaling (parallel central steps + subgames)",
		Claim: "whole solves are shard-count invariant; central passes scale on the session's workers",
		Columns: []string{"layer", "shards", "n", "m", "phases", "rounds", "ms", "rounds/s",
			"speedup vs 1", "agrees with 1"},
		Notes: []string{fmt.Sprintf("GOMAXPROCS = %d", runtime.GOMAXPROCS(0))},
	}
	rng := rand.New(rand.NewSource(p.Seed))

	on, od := 60_000, 4
	nl, nr, cdeg := 50_000, 12_500, 3
	if p.Quick {
		on = 2_000
		nl, nr = 4_000, 1_000
	}
	ocsr := graph.NewCSRFromGraph(graph.RandomRegular(on, od, rng))
	fb := graph.NewCSRBipartiteFromBipartite(
		graph.MustBipartite(graph.RandomBipartite(nl, nr, cdeg, rng), nl))

	var baseMS float64
	var baseRounds, basePhases int
	var baseHead []int32
	for _, shards := range e25ShardCounts() {
		t0 := time.Now()
		res, err := orient.SolveSharded(ocsr, orient.ShardedOptions{Seed: p.Seed, Shards: shards})
		ms := time.Since(t0).Seconds() * 1000
		if err != nil {
			t.AddRow("orientation", shards, on, ocsr.M(), "error", err.Error(), "", "", "", mark(false))
			return t
		}
		if shards == 1 {
			baseMS, baseRounds, basePhases = ms, res.Rounds, res.Phases
			baseHead = slices.Clone(res.Head)
		}
		agree := res.Rounds == baseRounds && res.Phases == basePhases && slices.Equal(res.Head, baseHead)
		t.AddRow("orientation", shards, on, ocsr.M(), res.Phases, res.Rounds, ms,
			scalingRate(res.Rounds, ms), scalingSpeedup(baseMS, ms), mark(agree))
	}

	var baseServerOf []int32
	for _, shards := range e25ShardCounts() {
		t0 := time.Now()
		res, err := assign.SolveSharded(fb, assign.ShardedOptions{Seed: p.Seed, Shards: shards})
		ms := time.Since(t0).Seconds() * 1000
		if err != nil {
			t.AddRow("assignment", shards, nl, fb.C.M(), "error", err.Error(), "", "", "", mark(false))
			return t
		}
		if shards == 1 {
			baseMS, baseRounds, basePhases = ms, res.Rounds, res.Phases
			baseServerOf = slices.Clone(res.ServerOf)
		}
		agree := res.Rounds == baseRounds && res.Phases == basePhases && slices.Equal(res.ServerOf, baseServerOf)
		t.AddRow("assignment", shards, nl, fb.C.M(), res.Phases, res.Rounds, ms,
			scalingRate(res.Rounds, ms), scalingSpeedup(baseMS, ms), mark(agree))
	}
	return t
}

// scalingRate formats rounds/s for a scaling row.
func scalingRate(rounds int, ms float64) string {
	if ms <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(rounds)/(ms/1000))
}

// scalingSpeedup formats throughput relative to the shards=1 row.
func scalingSpeedup(baseMS, ms float64) string {
	if ms <= 0 || baseMS <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", baseMS/ms)
}
