package bench

import (
	"fmt"

	"tokendrop/internal/arena"
)

// E28 — the baseline strategy arena. Every competing assigner (the
// paper's token-dropping layer, the selfish best-response dynamic, and
// the greedy baselines) runs on every workload family (uniform, zipf,
// hotspot, the Lemma 6.2 adversarial family, drain-and-replace churn)
// and reports the four Pareto axes: final max load, rounds, messages,
// wall-clock. The human-readable table below goes through All(); the
// machine-readable entries go through ShardedBench into
// BENCH_sharded.json, where td-benchgate gates the token-dropping rows
// (max load and rounds must not regress) and carries the competitors
// report-only.

// e28Workloads builds the family grid for the profile. The adversarial
// instance records its proven floor; the churn instance ships its trace.
func e28Workloads(p Profile) ([]*arena.Workload, error) {
	nl, nr, deg := 5_000, 1_000, 3
	churns := 2_000
	advServers := 60
	if p.Quick {
		nl, nr = 300, 60
		churns = 120
		advServers = 24
	}
	ws := []*arena.Workload{
		arena.Uniform(nl, nr, deg, p.Seed),
		arena.Zipf(nl, nr, deg, 1.2, p.Seed),
		arena.HotSpot(nl, nr, deg, 8, p.Seed),
		arena.Adversarial(advServers, 4, p.Seed),
	}
	cw, err := arena.Churn(nl/2, nr/2, deg, churns, p.Seed)
	if err != nil {
		return nil, err
	}
	return append(ws, cw), nil
}

// e28Strategies is the competitor list; the token-dropping adapter is
// passed in so the caller controls its session lifetime, and the
// resolver enters separately (churn workloads only).
func e28Strategies(td *arena.TokenDropping) []arena.Strategy {
	return []arena.Strategy{
		td,
		arena.Selfish{Workers: 8},
		arena.RobinHood{},
		arena.LeastLoaded{},
		arena.PowerOfK{},
		arena.Random{},
		arena.RoundRobin{},
		arena.Rotor{},
		arena.Threshold{},
	}
}

// E28ArenaPareto renders the strategy×workload Pareto surface as a
// table: one row per matchup, every row oracle-checked (validity column).
func E28ArenaPareto(p Profile) *Table {
	t := &Table{
		ID:      "E28",
		Title:   "Baseline strategy arena: competing assigners × workload families",
		Claim:   "token dropping holds the max-load axis of the Pareto surface against every greedy baseline",
		Columns: []string{"workload", "strategy", "max load", "floor", "rounds", "steps", "messages", "seconds", "valid"},
	}
	workloads, err := e28Workloads(p)
	if err != nil {
		t.Notes = append(t.Notes, "error: "+err.Error())
		return t
	}
	td := &arena.TokenDropping{Shards: p.Shards}
	defer td.Close()
	resolver := &arena.ResolverStrategy{Shards: p.Shards}
	for _, w := range workloads {
		strategies := e28Strategies(td)
		if w.Trace != nil {
			strategies = append(strategies, resolver)
		}
		tdMax, bestCompetitor := -1, -1
		for _, s := range strategies {
			res, err := arena.Run(s, w, p.Seed)
			if err != nil {
				t.AddRow(w.Family, s.Name(), "-", w.MinMaxLoad, "-", "-", "-", "-", "error: "+err.Error())
				continue
			}
			valid := arena.CheckResult(w, res) == nil
			t.AddRow(w.Family, s.Name(), res.MaxLoad, w.MinMaxLoad, res.Rounds,
				res.Steps, res.Messages, res.Seconds, mark(valid))
			if w.Family == "adversarial" {
				if s == arena.Strategy(td) {
					tdMax = res.MaxLoad
				} else if bestCompetitor < 0 || res.MaxLoad < bestCompetitor {
					bestCompetitor = res.MaxLoad
				}
			}
		}
		if w.Family == "adversarial" && tdMax >= 0 && bestCompetitor >= 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"adversarial (floor %d): token dropping max load %d, best competitor %d",
				w.MinMaxLoad, tdMax, bestCompetitor))
		}
	}
	return t
}

// arenaBenchEntries measures the E28 matchups for the machine-readable
// report. Wall-clock noise on sub-millisecond strategies would swamp a
// throughput gate, so RoundsPerSec stays zero here — the gated axes are
// the deterministic ones (max load and rounds on the token-dropping
// rows); competitors ride along report-only.
func arenaBenchEntries(p Profile) ([]ShardedBenchEntry, error) {
	workloads, err := e28Workloads(p)
	if err != nil {
		return nil, err
	}
	td := &arena.TokenDropping{Shards: p.Shards}
	defer td.Close()
	resolver := &arena.ResolverStrategy{Shards: p.Shards}
	var out []ShardedBenchEntry
	for _, w := range workloads {
		strategies := e28Strategies(td)
		if w.Trace != nil {
			strategies = append(strategies, resolver)
		}
		for _, s := range strategies {
			res, err := arena.Run(s, w, p.Seed)
			if err != nil {
				return nil, fmt.Errorf("E28 %s on %s: %w", s.Name(), w.Name, err)
			}
			if err := arena.CheckResult(w, res); err != nil {
				return nil, fmt.Errorf("E28 %s on %s: %w", s.Name(), w.Name, err)
			}
			out = append(out, ShardedBenchEntry{
				Experiment: "E28",
				Layer:      "arena",
				Engine:     s.Name(),
				Workload:   w.Name,
				N:          w.FB.NumCustomers(),
				M:          w.FB.C.M(),
				Rounds:     res.Rounds,
				Seconds:    res.Seconds,
				MaxLoad:    res.MaxLoad,
				MinMaxLoad: w.MinMaxLoad,
				Messages:   res.Messages,
			})
		}
	}
	return out, nil
}
