// Package bench is the experiment harness: it regenerates, for every
// theorem and figure of the paper, the table that certifies the claim on
// this implementation (experiment index E1–E29; see All). The
// cmd/td-experiments binary prints all tables; bench_test.go at the module
// root exposes one testing.B benchmark per experiment.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Profile scales experiments: Quick keeps every experiment below ~100ms
// for use inside benchmarks and CI; the full profile (Quick=false) runs
// the sizes reported in EXPERIMENTS.md.
type Profile struct {
	Quick bool
	Seed  int64
	// Shards is the sharded engine worker count used by the engine
	// experiments (E22–E24) and the machine-readable report; 0 means
	// runtime.GOMAXPROCS(0), i.e. one worker per core — the same
	// contract as the CLIs' -shards flag. The scaling sweeps (E25, E26)
	// choose their own worker counts and ignore it.
	Shards int
	// Repeat is how many times each entry of the machine-readable engine
	// report (ShardedBench) is measured, recording the best run; 0 means
	// once. Quick-profile runs finish in well under a millisecond, so
	// single-shot timings swing far beyond the regression gate's
	// tolerance — the gate's baseline and CI both measure best-of-5.
	// The experiment tables ignore it.
	Repeat int
}

// Table is one regenerated result table.
type Table struct {
	ID      string // experiment id, e.g. "E4a"
	Title   string
	Claim   string // the paper claim under test
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are rendered with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "── %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "   claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "   %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// FitPowerLaw fits y ≈ a·x^b by least squares on logarithms and returns
// the exponent b. It ignores non-positive samples; fewer than two valid
// points yield NaN.
func FitPowerLaw(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// mark renders a boolean as a check or cross for table cells.
func mark(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATED"
}
