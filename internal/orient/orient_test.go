package orient

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
)

func solve(t *testing.T, g *graph.Graph, opt Options) *Result {
	t.Helper()
	opt.CheckInvariants = true
	res, err := Solve(g, opt)
	if err != nil {
		t.Fatalf("orient.Solve: %v", err)
	}
	if !res.Orientation.Stable() {
		t.Fatal("result is not a stable orientation")
	}
	if err := res.Orientation.CheckLoads(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSolveTinyGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.New(4)},
		{"single edge", graph.Path(2)},
		{"path", graph.Path(6)},
		{"cycle", graph.Cycle(5)},
		{"star", graph.Star(6)},
		{"complete", graph.Complete(5)},
		{"grid", graph.Grid2D(4, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := solve(t, tc.g, Options{})
			if tc.g.M() > 0 && res.Phases == 0 {
				t.Fatal("no phases run on a non-empty graph")
			}
		})
	}
}

func TestStarLoadsBalanced(t *testing.T) {
	// On a star, a stable orientation puts at most ⌈(deg+1)/2⌉-ish load on
	// the hub: each leaf edge is happy iff hub load ≤ leaf load + 1, and a
	// leaf's load is 0 or 1. The hub load can therefore be at most 2 if
	// any edge points outward... concretely: all heads at the hub is
	// unstable for deg ≥ 3; verify the solver avoids it.
	res := solve(t, graph.Star(8), Options{})
	hub := res.Orientation.Load(0)
	if hub > 2 {
		t.Fatalf("hub load %d in a stable orientation", hub)
	}
}

func TestLemma55PhaseBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []int{2, 3, 4, 6} {
		g := graph.RandomRegular(6*d, d, rng)
		res := solve(t, g, Options{Seed: int64(d)})
		if res.Phases > 2*d+2 {
			t.Fatalf("Δ=%d: %d phases, above the Lemma 5.5 bound", d, res.Phases)
		}
	}
}

func TestBadnessInvariantOnPhaseLog(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomGNM(40, 120, rng)
	res := solve(t, g, Options{Seed: 1})
	for _, rec := range res.PhaseLog {
		if rec.MaxBadness > 1 {
			t.Fatalf("phase %d ended with badness %d", rec.Phase, rec.MaxBadness)
		}
	}
	// Phase progress: accepted ≥ 1 whenever proposals ≥ 1.
	for _, rec := range res.PhaseLog {
		if rec.Proposals > 0 && rec.Accepted == 0 {
			t.Fatalf("phase %d made no progress", rec.Phase)
		}
	}
}

func TestSolveRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		n := 10 + rng.Intn(40)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM/2 + 1)
		g := graph.RandomGNM(n, m, rng)
		for _, tie := range []core.TieBreak{core.TieFirstPort, core.TieRandom} {
			solve(t, g, Options{Tie: tie, Seed: int64(i)})
		}
	}
}

func TestSolveRegularAndTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	solve(t, graph.RandomRegular(24, 5, rng), Options{})
	tree, _ := graph.PerfectDAry(3, 4)
	res := solve(t, tree, Options{})
	// Lemma 6.1 on the output: indegree(v) ≤ h(v) + 1 in any stable
	// orientation of a perfect d-ary tree.
	h := graph.Height(tree)
	for v := 0; v < tree.N(); v++ {
		if res.Orientation.Load(v) > h[v]+1 {
			t.Fatalf("Lemma 6.1 violated: load(%d) = %d > h+1 = %d",
				v, res.Orientation.Load(v), h[v]+1)
		}
	}
}

func TestCaterpillarNoPropagationBlowup(t *testing.T) {
	// The propagation-chain motivation: the distributed algorithm's round
	// count must not grow with the spine length (it depends on Δ only).
	short := solve(t, graph.Caterpillar(10, 2), Options{})
	long := solve(t, graph.Caterpillar(200, 2), Options{})
	if long.Rounds > 4*short.Rounds+40 {
		t.Fatalf("rounds grew with graph size: %d (spine 10) vs %d (spine 200)",
			short.Rounds, long.Rounds)
	}
}

func TestAdaptiveRoundsBelowWorstCase(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.RandomRegular(30, 5, rng)
	res := solve(t, g, Options{})
	if res.Rounds >= res.WorstCaseRounds {
		t.Fatalf("adaptive rounds %d should be far below the fixed-schedule bound %d",
			res.Rounds, res.WorstCaseRounds)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := graph.RandomGNM(30, 90, rng)
	a := solve(t, g, Options{Seed: 42})
	b := solve(t, g, Options{Seed: 42})
	for id := range g.Edges() {
		if a.Orientation.Head(id) != b.Orientation.Head(id) {
			t.Fatal("same seed, different orientations")
		}
	}
	if a.Rounds != b.Rounds || a.Phases != b.Phases {
		t.Fatal("same seed, different run shape")
	}
}

func TestWorstCaseBoundMonotone(t *testing.T) {
	if WorstCaseBound(0) != 0 {
		t.Fatal("empty bound")
	}
	prev := 0
	for d := 1; d < 12; d++ {
		b := WorstCaseBound(d)
		if b <= prev {
			t.Fatalf("bound not increasing at Δ=%d", d)
		}
		prev = b
	}
	// Θ(Δ⁴) shape: doubling Δ multiplies the bound by ≈16.
	r := float64(WorstCaseBound(64)) / float64(WorstCaseBound(32))
	if r < 12 || r > 20 {
		t.Fatalf("bound growth ratio %.1f, want ≈16", r)
	}
}

// Property: Solve produces stable orientations with phase count within the
// Lemma 5.5 budget on random graphs of varying density.
func TestSolveProperty(t *testing.T) {
	check := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%25) + 3
		maxM := n * (n - 1) / 2
		m := int(mRaw) % (maxM + 1)
		g := graph.RandomGNM(n, m, rng)
		res, err := Solve(g, Options{Seed: seed, CheckInvariants: true})
		if err != nil {
			return false
		}
		if !res.Orientation.Stable() {
			return false
		}
		return res.Phases <= 2*g.MaxDegree()+2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
