package orient

import (
	"math/rand"
	"reflect"
	"testing"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
)

// orientFamilies enumerates the graph families of the orientation
// resume-equivalence suite: regular, heavy-tailed, grid, caterpillar.
var orientFamilies = []struct {
	name  string
	build func(i int, rng *rand.Rand) *graph.CSR
}{
	{"regular", func(i int, rng *rand.Rand) *graph.CSR {
		return graph.CSRRandomRegular(40+2*(i%5), 4+2*(i%2), rng)
	}},
	{"powerlaw", func(i int, rng *rand.Rand) *graph.CSR {
		return graph.CSRPowerLaw(60+5*i, 2.0+0.2*float64(i%3), 8+i, rng)
	}},
	{"grid", func(i int, rng *rand.Rand) *graph.CSR {
		return graph.NewCSRFromGraph(graph.Grid2D(4+i%4, 5+i%3))
	}},
	{"caterpillar", func(i int, rng *rand.Rand) *graph.CSR {
		return graph.NewCSRFromGraph(graph.Caterpillar(10+3*i, 2+i%3))
	}},
}

// checkOrientResumeMatch compares a resumed run against the
// uninterrupted baseline field by field.
func checkOrientResumeMatch(t *testing.T, label string, base, resumed *ShardedResult) {
	t.Helper()
	if !reflect.DeepEqual(base.Head, resumed.Head) {
		t.Fatalf("%s: resumed orientation diverged", label)
	}
	if !reflect.DeepEqual(base.Load, resumed.Load) {
		t.Fatalf("%s: resumed loads diverged", label)
	}
	if base.Phases != resumed.Phases || base.Rounds != resumed.Rounds {
		t.Fatalf("%s: phases/rounds %d/%d != %d/%d", label,
			base.Phases, base.Rounds, resumed.Phases, resumed.Rounds)
	}
	if !reflect.DeepEqual(base.PhaseLog, resumed.PhaseLog) {
		t.Fatalf("%s: resumed phase log diverged", label)
	}
}

// TestOrientResumeEquivalence: across graph families, tie rules, and
// shard counts, a run snapshotted at a random phase cursor and resumed
// from the snapshot bit-matches the uninterrupted run.
func TestOrientResumeEquivalence(t *testing.T) {
	shardChoices := []int{1, 2, 8}
	for fam := range orientFamilies {
		f := orientFamilies[fam]
		t.Run(f.name, func(t *testing.T) {
			for i := 0; i < 6; i++ {
				rng := rand.New(rand.NewSource(int64(200*fam + i)))
				c := f.build(i, rng)
				for _, tie := range []core.TieBreak{core.TieFirstPort, core.TieRandom} {
					opt := ShardedOptions{
						Tie: tie, Seed: int64(i), Shards: shardChoices[i%len(shardChoices)],
						CheckInvariants: true,
					}
					base, err := SolveSharded(c, opt)
					if err != nil {
						t.Fatal(err)
					}
					if base.Phases < 1 {
						continue
					}
					cursor := 1 + rng.Intn(base.Phases)

					var snap *Snapshot
					sopt := opt
					sopt.SnapshotAt = cursor
					sopt.OnSnapshot = func(s *Snapshot) error { snap = s; return nil }
					again, err := SolveSharded(c, sopt)
					if err != nil {
						t.Fatal(err)
					}
					checkOrientResumeMatch(t, "capture run", base, again)
					if snap == nil {
						t.Fatalf("no snapshot at phase %d of %d", cursor, base.Phases)
					}

					ropt := opt
					ropt.Shards = shardChoices[(i+1)%len(shardChoices)]
					ropt.ResumeFrom = snap
					resumed, err := SolveSharded(c, ropt)
					if err != nil {
						t.Fatalf("resume at phase %d: %v", cursor, err)
					}
					checkOrientResumeMatch(t, "resumed run", base, resumed)
				}
			}
		})
	}
}

// TestOrientResumeRejectsBadSnapshots checks restore validation: shape
// mismatches, inconsistent counters, and tie-rule mismatches fail loudly.
func TestOrientResumeRejectsBadSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := graph.CSRRandomRegular(40, 4, rng)
	opt := ShardedOptions{Tie: core.TieFirstPort, Seed: 1, Shards: 2}
	base, err := SolveSharded(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	var snap *Snapshot
	sopt := opt
	sopt.SnapshotAt = base.Phases / 2
	if sopt.SnapshotAt == 0 {
		sopt.SnapshotAt = 1
	}
	sopt.OnSnapshot = func(s *Snapshot) error { snap = s; return nil }
	if _, err := SolveSharded(c, sopt); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(s *Snapshot)
	}{
		{"truncated heads", func(s *Snapshot) { s.Head = s.Head[:len(s.Head)-1] }},
		{"negative phase", func(s *Snapshot) { s.Phase = -1 }},
		{"oriented count drift", func(s *Snapshot) { s.Oriented++ }},
		{"head out of range", func(s *Snapshot) { s.Head[0] = int32(c.N()) }},
		{"stray rng streams", func(s *Snapshot) { s.Rngs = make([]uint64, c.N()) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := &Snapshot{
				Phase:    snap.Phase,
				Oriented: snap.Oriented,
				Rounds:   snap.Rounds,
				Head:     append([]int32(nil), snap.Head...),
				Load:     append([]int32(nil), snap.Load...),
				PhaseLog: append([]PhaseRecord(nil), snap.PhaseLog...),
			}
			tc.mutate(bad)
			ropt := opt
			ropt.ResumeFrom = bad
			if _, err := SolveSharded(c, ropt); err == nil {
				t.Fatal("tampered snapshot resumed without error")
			}
		})
	}
}

// TestOrientSnapshotBufferReuse checks the caller-owned buffer
// discipline: with SnapshotInto set, every capture arrives in the same
// Snapshot value and its slices are reused once grown.
func TestOrientSnapshotBufferReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := graph.CSRRandomRegular(60, 6, rng)
	buf := new(Snapshot)
	var captures int
	var firstHead *int32
	opt := ShardedOptions{
		Tie: core.TieFirstPort, Seed: 1, Shards: 2,
		SnapshotEvery: 1,
		SnapshotInto:  buf,
		OnSnapshot: func(s *Snapshot) error {
			if s != buf {
				t.Fatal("capture bypassed the caller-owned buffer")
			}
			captures++
			if firstHead == nil {
				firstHead = &s.Head[0]
			} else if firstHead != &s.Head[0] {
				t.Fatal("snapshot buffer reallocated between captures")
			}
			return nil
		},
	}
	res, err := SolveSharded(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if captures != res.Phases {
		t.Fatalf("%d captures over %d phases", captures, res.Phases)
	}
}
