package orient

import (
	"fmt"
	"sort"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
	"tokendrop/internal/local"
)

// This file ports the Theorem 5.1 stable-orientation algorithm to the
// sharded flat runtime, closing the scale gap with the game layer: the
// seed-engine Solve above tops out near 10⁵ vertices (per-phase object
// graphs, goroutine-per-node games), while SolveSharded keeps the whole
// phase loop in flat arrays over a graph.CSR and plays each phase's token
// dropping subgame with core.SolveProposalSharded — the struct-of-arrays
// program with packed per-vertex state and the quiescent-outbox skip.
//
// Orientation state is two flat arrays: head[id] (the head vertex of edge
// id, -1 while unoriented) and load[v] (the indegree). Per phase:
//
//   - proposals/accepts are computed directly from the shared load array
//     (the same simulation shortcut Solve uses: the load broadcast and the
//     acceptance notification are charged as 2 communication rounds but
//     evaluated centrally, since both endpoints apply one deterministic
//     rule to the same broadcast values). The central passes themselves
//     run as flat kernels on the engine session's parked workers
//     (local.Session.ParallelFor) in owner-computes form, so they shard
//     exactly like the subgame rounds and the results stay independent
//     of the worker count;
//   - the phase's virtual token graph — the oriented edges of badness
//     exactly 1, with levels = loads and tokens at acceptors — is
//     assembled as a fresh CSR and solved on the sharded engine;
//   - traversed edges flip, accepted edges orient toward their acceptors.
//
// Bit-identical parity with Solve under TieFirstPort rests on one
// construction detail: Solve builds each phase's game with SortAdjacency,
// so its port numbering is neighbor-ascending. Inserting the game edges
// into a CSRBuilder in lexicographic endpoint order (u, v) reproduces
// exactly that: for any vertex x, edges (p, x) with p < x precede edges
// (x, q) in the global order and are sorted by p, and the (x, q) edges
// follow sorted by q — so x's ports run over its neighbors in ascending
// order. With identical port numbering, levels, and tokens, the sharded
// subgame run is bit-identical to the object-engine run (the internal/core
// differential suite's guarantee), and therefore so are the phase log, the
// round counts, and the final orientation — which the differential suite
// in this package asserts on ~100 instances.

// ShardedOptions configure a SolveSharded run.
type ShardedOptions struct {
	// Tie selects the tie-breaking rule, as in Options. TieFirstPort runs
	// are bit-identical to Solve; TieRandom draws engine-specific streams
	// (per-vertex splitmix64 instead of the seed engine's shared
	// math/rand), so those runs are independent samples of the protocol.
	Tie core.TieBreak
	// Seed drives all randomized tie-breaking.
	Seed int64
	// Shards is the worker count of the engine session that plays every
	// phase's subgame; 0 means runtime.GOMAXPROCS(0). The result does
	// not depend on it.
	Shards int
	// MaxPhases aborts if the phase count exceeds the Lemma 5.5 bound by a
	// wide margin; 0 means 4·Δ + 8.
	MaxPhases int
	// CheckInvariants replays the Lemma 5.3/5.4 checks, the subgame
	// potential identity, and a load recount after every phase. Linear per
	// phase; tests and experiments keep it on.
	CheckInvariants bool
	// VerifyGames additionally materializes every phase's subgame in
	// object form and runs core.Verify on its solution. Quadratic-ish in
	// allocations at scale — meant for tests, not million-node runs.
	VerifyGames bool
	// SnapshotEvery, when positive, captures a Snapshot after every
	// SnapshotEvery-th phase and hands it to OnSnapshot. Phase boundaries
	// are the crash-consistent capture points of the phase loop: the
	// engine session is quiescent there, so the orientation arrays are
	// the entire mid-solve state. Zero disables periodic capture.
	SnapshotEvery int
	// SnapshotAt, when positive, additionally captures a Snapshot after
	// exactly that phase (no capture if the solve finishes earlier).
	SnapshotAt int
	// OnSnapshot receives every capture. The pointed-to Snapshot is
	// reused across captures when SnapshotInto is set — encode or copy
	// it before returning. A non-nil error aborts the solve.
	OnSnapshot func(*Snapshot) error
	// SnapshotInto, if non-nil, is the caller-owned buffer captures are
	// written into; its slices are grown once and reused.
	SnapshotInto *Snapshot
	// ResumeFrom, when non-nil, restores the snapshot's orientation
	// state and continues from the phase after its cursor. The
	// continuation is bit-identical to the uninterrupted run (same phase
	// log, rounds, and final orientation) because every phase is a
	// deterministic function of the restored state and the options.
	ResumeFrom *Snapshot
}

// ShardedResult is the outcome of SolveSharded: the orientation in flat
// form plus the same accounting Result carries.
type ShardedResult struct {
	// Head holds the head vertex of every edge (-1 never occurs in a
	// completed run), indexed by CSR edge id.
	Head []int32
	// Load holds the final indegree of every vertex.
	Load   []int32
	Phases int
	// Rounds counts communication rounds on the adaptive schedule: two per
	// phase for the load broadcast and accept notification, plus the token
	// dropping rounds of each phase.
	Rounds int
	// WorstCaseRounds is the fixed-schedule (paper) bound; see
	// WorstCaseBound.
	WorstCaseRounds int
	PhaseLog        []PhaseRecord

	csr    *graph.CSR
	eu, ev []int32 // per edge: endpoints, eu < ev
}

// edgeTail returns the tail of oriented edge id.
func (r *ShardedResult) edgeTail(id int) int32 {
	if r.Head[id] == r.eu[id] {
		return r.ev[id]
	}
	return r.eu[id]
}

// MaxBadness returns the maximum badness over oriented edges (0 if there
// are none).
func (r *ShardedResult) MaxBadness() int {
	max := int32(0)
	for id, h := range r.Head {
		if h < 0 {
			continue
		}
		if b := r.Load[h] - r.Load[r.edgeTail(id)]; b > max {
			max = b
		}
	}
	return int(max)
}

// Stable reports the stable-orientation condition of Section 1.1: every
// edge is oriented and happy (badness at most 1).
func (r *ShardedResult) Stable() bool {
	for id := range r.Head {
		if r.Head[id] < 0 || r.Load[r.Head[id]]-r.Load[r.edgeTail(id)] > 1 {
			return false
		}
	}
	return true
}

// Potential returns Σ load², the objective of the load-balancing view.
func (r *ShardedResult) Potential() int64 {
	var p int64
	for _, l := range r.Load {
		p += int64(l) * int64(l)
	}
	return p
}

// SemimatchingCost returns Σ load·(load+1)/2, the semi-matching objective
// of Section 1.3.
func (r *ShardedResult) SemimatchingCost() int64 {
	var c int64
	for _, l := range r.Load {
		c += int64(l) * int64(l+1) / 2
	}
	return c
}

// Orientation materializes the pointer-based orientation (same vertex and
// edge identifiers), for cross-checks against the seed engine and the
// structural tooling. It is O(n + m) object construction — test-sized.
func (r *ShardedResult) Orientation() *graph.Orientation {
	o := graph.NewOrientation(r.csr.ToGraph())
	for id, h := range r.Head {
		if h >= 0 {
			o.Orient(id, int(h))
		}
	}
	return o
}

// SolveSharded runs the Theorem 5.1 algorithm on c using the sharded flat
// runtime for every phase's token dropping subgame. Under TieFirstPort the
// run is bit-identical to Solve on the same graph (same phase log, rounds,
// and final orientation).
func SolveSharded(c *graph.CSR, opt ShardedOptions) (*ShardedResult, error) {
	n, m := c.N(), c.M()
	delta := c.MaxDegree()
	maxPhases := opt.MaxPhases
	if maxPhases == 0 {
		maxPhases = 4*delta + 8
	}

	// Per-edge endpoints (eu < ev, matching graph.Edge normalization), and
	// the edge ids in lexicographic endpoint order — the insertion order
	// that makes every phase-game CSR neighbor-sorted (see the file
	// comment).
	eu := make([]int32, m)
	ev := make([]int32, m)
	for v := 0; v < n; v++ {
		lo, hi := c.ArcRange(v)
		for i := lo; i < hi; i++ {
			if w := c.Col[i]; int32(v) < w {
				eu[c.EID[i]] = int32(v)
				ev[c.EID[i]] = w
			}
		}
	}
	lex := make([]int32, m)
	for id := range lex {
		lex[id] = int32(id)
	}
	sort.Slice(lex, func(i, j int) bool {
		a, b := lex[i], lex[j]
		if eu[a] != eu[b] {
			return eu[a] < eu[b]
		}
		return ev[a] < ev[b]
	})

	head := make([]int32, m)
	for id := range head {
		head[id] = -1
	}
	load := make([]int32, n)
	res := &ShardedResult{
		Head: head, Load: load, WorstCaseRounds: WorstCaseBound(delta),
		csr: c, eu: eu, ev: ev,
	}

	var rngs []uint64 // per-vertex TieRandom accept streams (core.SplitMix64)
	if opt.Tie == core.TieRandom {
		rngs = make([]uint64, n)
		for v := range rngs {
			rngs[v] = core.SplitMix64(uint64(opt.Seed) ^ uint64(v)*0x9e3779b97f4a7c15)
		}
	}

	// Per-vertex incident edge ids in ascending id order. The central
	// proposal/accept pass runs owner-computes on the kernel executor —
	// each vertex derives its own accepted edge — and this index is what
	// keeps that bit-identical to the edge-id-major loop it replaces: a
	// vertex's accept decision (and, under TieRandom, its per-vertex
	// draw stream) depends only on the subsequence of its own proposing
	// edges in ascending id order, which is exactly the order the global
	// id loop visited them in.
	incPtr := make([]int32, n+1)
	for id := 0; id < m; id++ {
		incPtr[eu[id]+1]++
		incPtr[ev[id]+1]++
	}
	for v := 0; v < n; v++ {
		incPtr[v+1] += incPtr[v]
	}
	incEID := make([]int32, 2*m)
	incCursor := make([]int32, n)
	copy(incCursor, incPtr[:n])
	for id := 0; id < m; id++ {
		incEID[incCursor[eu[id]]] = int32(id)
		incCursor[eu[id]]++
		incEID[incCursor[ev[id]]] = int32(id)
		incCursor[ev[id]]++
	}

	// Reused per-phase scratch.
	acceptEdge := make([]int32, n) // vertex -> accepted proposing edge, -1
	token := make([]bool, n)
	gameLevel := make([]int32, n)
	tokOrigin := make([]int32, n) // traversal replay: vertex -> token origin
	for v := range tokOrigin {
		tokOrigin[v] = int32(v)
	}
	var loadsBefore []int32
	if opt.CheckInvariants {
		loadsBefore = make([]int32, n)
	}
	gameToOrig := make([]int32, 0, m)
	include := make([]byte, m) // game-assembly marks, indexed by lex position

	// The reusable execution layer: one engine session (persistent worker
	// pool and message buffers) plays every phase's subgame, one builder
	// and CSR hold each phase's token graph, and one solver workspace
	// keeps the flat program's state — all rebuilt in place per phase, so
	// the steady-state phase loop performs no engine or program
	// allocations.
	sess := local.NewSession(opt.Shards)
	defer sess.Close()
	sws := core.NewSolverWorkspace()
	builder := graph.NewCSRBuilder(n, 0)
	var game graph.CSR

	// The central per-phase passes run as flat kernels on the session's
	// parked workers (Session.ParallelFor), with per-shard partial
	// accumulators combined after each barrier. The kernels are hoisted
	// out of the phase loop — closure construction allocates — and
	// capture the loop's flat state by reference.
	shards := sess.Shards()
	partAccepted := make([]int32, shards)
	partOriented := make([]int32, shards)
	partMaxBad := make([]int32, shards)

	// Steps 1 and 2 of each phase, owner-computes per vertex: every
	// unoriented edge proposes to its smaller-load endpoint (ties toward
	// the smaller vertex id, which is eu), and each proposed-to vertex
	// accepts one proposing edge — the smallest id under TieFirstPort
	// (the ascending incident scan finds it first), a uniform draw over
	// its proposing edges in ascending id order under TieRandom (the
	// per-vertex stream the sequential loop drew).
	acceptKernel := func(sh, lo, hi int) {
		accepted := int32(0)
		for v := lo; v < hi; v++ {
			best := int32(-1)
			if opt.Tie == core.TieRandom {
				state := rngs[v]
				count := 0
				for j := incPtr[v]; j < incPtr[v+1]; j++ {
					id := incEID[j]
					if head[id] >= 0 {
						continue
					}
					target := eu[id]
					if load[ev[id]] < load[eu[id]] {
						target = ev[id]
					}
					if target != int32(v) {
						continue
					}
					count++
					var pick int
					state, pick = core.SplitMixIntn(state, count)
					if pick == 0 {
						best = id
					}
				}
				rngs[v] = state
			} else {
				for j := incPtr[v]; j < incPtr[v+1]; j++ {
					id := incEID[j]
					if head[id] >= 0 {
						continue
					}
					target := eu[id]
					if load[ev[id]] < load[eu[id]] {
						target = ev[id]
					}
					if target == int32(v) {
						best = id
						break
					}
				}
			}
			acceptEdge[v] = best
			token[v] = best >= 0
			if best >= 0 {
				accepted++
			}
		}
		partAccepted[sh] = accepted
	}

	// Step 3's filter over lex positions: the badness test performs the
	// random load lookups, so it runs on the kernels; the order-dependent
	// builder insertion that follows is a sequential scan of the marks.
	markKernel := func(sh, lo, hi int) {
		for j := lo; j < hi; j++ {
			id := lex[j]
			h := head[id]
			if h < 0 {
				include[j] = 0
				continue
			}
			tail := eu[id]
			if h == tail {
				tail = ev[id]
			}
			if load[h]-load[tail] == 1 {
				include[j] = 1
			} else {
				include[j] = 0
			}
		}
	}

	// Step 6's scatter: each acceptor orients its accepted edge toward
	// itself. Distinct vertices accept distinct edges (an edge proposes
	// to exactly one target), so the head writes never collide.
	scatterKernel := func(sh, lo, hi int) {
		count := int32(0)
		for v := lo; v < hi; v++ {
			if id := acceptEdge[v]; id >= 0 {
				head[id] = int32(v)
				load[v]++
				count++
			}
		}
		partOriented[sh] = count
	}

	// The per-phase max-badness recount of the phase log, as a
	// max-reduction over edges.
	badnessKernel := func(sh, lo, hi int) {
		max := int32(0)
		for id := lo; id < hi; id++ {
			h := head[id]
			if h < 0 {
				continue
			}
			tail := eu[id]
			if h == tail {
				tail = ev[id]
			}
			if b := load[h] - load[tail]; b > max {
				max = b
			}
		}
		partMaxBad[sh] = max
	}

	oriented := 0
	startPhase := 1
	if rs := opt.ResumeFrom; rs != nil {
		cursor, err := restoreSnapshot(rs, n, m, opt.Tie, head, load, rngs)
		if err != nil {
			return nil, err
		}
		oriented = rs.Oriented
		res.Rounds = rs.Rounds
		res.PhaseLog = append(res.PhaseLog, rs.PhaseLog...)
		res.Phases = cursor
		startPhase = cursor + 1
	}
	for phase := startPhase; oriented < m; phase++ {
		if phase > maxPhases {
			return nil, fmt.Errorf("orient: phase %d exceeds the Lemma 5.5 budget (Δ=%d)", phase, delta)
		}
		rec := PhaseRecord{Phase: phase}

		// Steps 1 and 2 — the proposal/accept pass (see acceptKernel).
		// Every unoriented edge proposes exactly once, so the proposal
		// count is the number of still-unoriented edges. 2 communication
		// rounds.
		rec.Proposals = m - oriented
		sess.ParallelFor(n, acceptKernel)
		for _, a := range partAccepted {
			rec.Accepted += int(a)
		}
		res.Rounds += 2

		// Step 3 — the virtual token graph: levels = loads, edges = the
		// oriented edges of badness exactly 1, tokens at acceptors
		// (Lemma 5.2 guarantees validity). The badness filter runs on the
		// kernels (markKernel); the insertion itself stays a sequential
		// scan of the marks, because lex insertion order is what makes
		// the builder's port numbering neighbor-ascending, as in Solve.
		sess.ParallelFor(m, markKernel)
		builder.Reset(n)
		gameToOrig = gameToOrig[:0]
		for j := 0; j < m; j++ {
			if include[j] == 0 {
				continue
			}
			id := lex[j]
			builder.AddEdge(int(eu[id]), int(ev[id]))
			gameToOrig = append(gameToOrig, id)
		}
		builder.BuildInto(&game)
		rec.GameEdges = game.M()
		copy(gameLevel, load)
		fi, err := core.NewFlatInstanceCSR(&game, gameLevel, token)
		if err != nil {
			return nil, fmt.Errorf("orient: phase %d produced an invalid game: %w", phase, err)
		}

		// Step 4 — play the game on the sharded engine.
		sol, err := core.SolveProposalSharded(fi, core.ShardedSolveOptions{
			Tie:       opt.Tie,
			Seed:      opt.Seed + int64(phase)*1_000_003,
			MaxRounds: 1 << 20,
			Session:   sess,
			Workspace: sws,
		})
		if err != nil {
			return nil, fmt.Errorf("orient: phase %d game failed: %w", phase, err)
		}
		if opt.VerifyGames {
			if err := core.Verify(sol.Solution(fi.Instance())); err != nil {
				return nil, fmt.Errorf("orient: phase %d game unverified: %w", phase, err)
			}
		}
		if opt.CheckInvariants {
			if got, want := fi.InitialPotential()-int64(len(sol.Moves)), solutionPotentialFlat(fi, sol); got != want {
				return nil, fmt.Errorf("orient: phase %d potential identity broken: %d != %d", phase, got, want)
			}
		}
		rec.GameRounds = sol.Stats.Rounds
		res.Rounds += sol.Stats.Rounds

		// Tokens that travelled at least one hop: a move out of a vertex
		// still holding its original token starts a fresh traversal; every
		// other move extends one. Moves are chronological (round-major), so
		// the replay is exact; the scratch map is restored afterwards.
		for _, mv := range sol.Moves {
			if tokOrigin[mv.From] == int32(mv.From) {
				rec.TokensMoved++
			}
			tokOrigin[mv.To] = tokOrigin[mv.From]
		}
		for _, mv := range sol.Moves {
			tokOrigin[mv.From] = int32(mv.From)
			tokOrigin[mv.To] = int32(mv.To)
		}

		if opt.CheckInvariants {
			copy(loadsBefore, load)
		}

		// Step 5 — flip every traversed edge (each consumed edge was
		// traversed exactly once, and every move consumes its edge).
		for _, mv := range sol.Moves {
			id := gameToOrig[mv.Edge]
			t := res.edgeTail(int(id))
			load[head[id]]--
			load[t]++
			head[id] = t
		}
		// Step 6 — orient the accepted edges toward their acceptors
		// (scatterKernel).
		sess.ParallelFor(n, scatterKernel)
		for _, c := range partOriented {
			oriented += int(c)
		}

		if opt.CheckInvariants {
			if err := checkFlatPhaseInvariants(res, loadsBefore, sol.Final, oriented); err != nil {
				return nil, fmt.Errorf("orient: phase %d: %w", phase, err)
			}
		}
		sess.ParallelFor(m, badnessKernel)
		rec.MaxBadness = 0
		for _, b := range partMaxBad {
			if int(b) > rec.MaxBadness {
				rec.MaxBadness = int(b)
			}
		}
		res.PhaseLog = append(res.PhaseLog, rec)
		res.Phases = phase

		if opt.OnSnapshot != nil &&
			((opt.SnapshotEvery > 0 && phase%opt.SnapshotEvery == 0) || phase == opt.SnapshotAt) {
			snap := opt.SnapshotInto
			if snap == nil {
				snap = new(Snapshot)
			}
			captureSnapshot(snap, phase, oriented, res.Rounds, head, load, rngs, res.PhaseLog)
			if err := opt.OnSnapshot(snap); err != nil {
				return nil, fmt.Errorf("orient: snapshot at phase %d: %w", phase, err)
			}
		}
	}
	return res, nil
}

// solutionPotentialFlat returns Σ level over a flat subgame's final token
// placement.
func solutionPotentialFlat(fi *core.FlatInstance, sol *core.FlatResult) int64 {
	var p int64
	for v, occ := range sol.Final {
		if occ {
			p += int64(fi.Level(v))
		}
	}
	return p
}

// checkFlatPhaseInvariants enforces Lemma 5.3 (the load of v grows by
// exactly 1 iff v is the destination of a token — equivalently, iff v
// holds a token when the game ends) and Lemma 5.4 (badness at most 1 after
// the phase), plus a from-scratch load recount.
func checkFlatPhaseInvariants(r *ShardedResult, before []int32, finalToken []bool, oriented int) error {
	for v, b := range before {
		want := b
		if finalToken[v] {
			want++
		}
		if r.Load[v] != want {
			return fmt.Errorf("lemma 5.3 violated at node %d: load %d -> %d, destination=%v",
				v, b, r.Load[v], finalToken[v])
		}
	}
	fresh := make([]int32, len(r.Load))
	count := 0
	for _, h := range r.Head {
		if h >= 0 {
			fresh[h]++
			count++
		}
	}
	if count != oriented {
		return fmt.Errorf("oriented-edge count drifted: counted %d, cached %d", count, oriented)
	}
	for v := range fresh {
		if fresh[v] != r.Load[v] {
			return fmt.Errorf("load of %d drifted: recomputed %d, cached %d", v, fresh[v], r.Load[v])
		}
	}
	for id, h := range r.Head {
		if h < 0 {
			continue
		}
		if b := r.Load[h] - r.Load[r.edgeTail(id)]; b > 1 {
			return fmt.Errorf("lemma 5.4 violated: edge %d has badness %d after phase", id, b)
		}
	}
	return nil
}
