// Package orient implements the paper's stable-orientation algorithm
// (Section 5, Theorem 5.1): starting from an unoriented graph, edges are
// oriented gradually over O(Δ) phases, and each phase repairs the one unit
// of fresh excess load per node by playing a token dropping game on the
// edges of badness exactly 1. The result is a complete orientation in
// which every edge is happy — indegree(head) ≤ indegree(tail) + 1 — in
// O(Δ⁴) communication rounds.
//
// Scheduling. The paper's algorithm pads every phase to the worst-case
// token-dropping bound (nodes know Δ, so they can agree on phase
// boundaries without communication). The implementation here runs the same
// per-phase communication on the LOCAL simulator but starts the next phase
// as soon as the game has quiesced ("adaptive schedule"): the computation,
// messages, and outputs are identical to the padded schedule — only idle
// rounds are skipped. Results report both the adaptive round count (rounds
// actually worked) and the analytic fixed-schedule bound.
package orient

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
)

// Options configure a Solve run.
type Options struct {
	// Tie selects the tie-breaking rule inside the token dropping
	// subroutine and for accepting proposals.
	Tie core.TieBreak
	// Seed drives all randomized tie-breaking.
	Seed int64
	// Workers is passed through to the LOCAL runtime (0 = GOMAXPROCS).
	Workers int
	// MaxPhases aborts if the phase count exceeds the Lemma 5.5 bound by
	// a wide margin; 0 means 4·Δ + 8.
	MaxPhases int
	// CheckInvariants replays the Lemma 5.3/5.4 checks after every phase
	// and returns an error on violation. Cheap (linear per phase); tests
	// and experiments keep it on.
	CheckInvariants bool
}

// PhaseRecord captures one phase for experiments and invariant reports.
type PhaseRecord struct {
	Phase       int // 1-based
	Proposals   int // unoriented edges at phase start
	Accepted    int // edges oriented this phase (= tokens in the game)
	GameEdges   int // badness-1 edges included in the game
	GameRounds  int // communication rounds of the token dropping run
	TokensMoved int // tokens that travelled at least one hop
	MaxBadness  int // max badness after the phase (Lemma 5.4: ≤ 1)
}

// Result is the outcome of Solve.
type Result struct {
	Orientation *graph.Orientation
	Phases      int
	// Rounds counts communication rounds on the adaptive schedule: two
	// rounds per phase for the load broadcast and accept notification,
	// plus the token dropping rounds of each phase.
	Rounds int
	// WorstCaseRounds is the fixed-schedule (paper) bound for this graph:
	// phase budget × the Lemma 5.5 phase bound; see WorstCaseBound.
	WorstCaseRounds int
	PhaseLog        []PhaseRecord
}

// WorstCaseBound returns the analytic fixed-schedule round bound for
// maximum degree delta: (2Δ phases) × (2 + proposal-algorithm budget for a
// game of height Δ and degree Δ). The proposal-algorithm budget uses the
// same constants the tests validate empirically (8·(L+1)·Δ² + 40).
func WorstCaseBound(delta int) int {
	if delta == 0 {
		return 0
	}
	phaseBudget := 2 + 8*(delta+1)*delta*delta + 40
	return 2 * delta * phaseBudget
}

// Solve runs the Theorem 5.1 algorithm on g.
func Solve(g *graph.Graph, opt Options) (*Result, error) {
	delta := g.MaxDegree()
	maxPhases := opt.MaxPhases
	if maxPhases == 0 {
		maxPhases = 4*delta + 8
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	o := graph.NewOrientation(g)
	res := &Result{Orientation: o, WorstCaseRounds: WorstCaseBound(delta)}

	for phase := 1; !o.Complete(); phase++ {
		if phase > maxPhases {
			return nil, fmt.Errorf("orient: phase %d exceeds the Lemma 5.5 budget (Δ=%d)", phase, delta)
		}
		rec := PhaseRecord{Phase: phase}

		// Step 1 — proposals. Every unoriented edge proposes to its
		// endpoint with the smaller load (Section 5); ties break toward
		// the smaller vertex id, a rule both endpoints can evaluate after
		// the single load-broadcast round. Costs 1 communication round.
		proposalsTo := make([][]int, g.N()) // node -> proposing edge ids
		for id, e := range g.Edges() {
			if o.Oriented(id) {
				continue
			}
			target := e.U
			if o.Load(e.V) < o.Load(e.U) || (o.Load(e.V) == o.Load(e.U) && e.V < e.U) {
				target = e.V
			}
			proposalsTo[target] = append(proposalsTo[target], id)
			rec.Proposals++
		}

		// Step 2 — accept exactly one proposal per node; announcing the
		// acceptance costs 1 communication round.
		accepted := make([]int, 0, g.N()) // edge ids, in acceptor order
		acceptor := make(map[int]int)     // edge id -> accepting node
		token := make([]bool, g.N())
		for v, props := range proposalsTo {
			if len(props) == 0 {
				continue
			}
			pick := props[0]
			if opt.Tie == core.TieRandom {
				pick = props[rng.Intn(len(props))]
			}
			accepted = append(accepted, pick)
			acceptor[pick] = v
			token[v] = true
		}
		rec.Accepted = len(accepted)
		res.Rounds += 2

		// Step 3 — build the token dropping instance: all nodes, levels =
		// loads, edges = oriented edges of badness exactly 1, tokens at
		// acceptors (Lemma 5.2 guarantees validity).
		game := graph.New(g.N())
		gameToOrig := make([]int, 0, g.M())
		for id := range g.Edges() {
			if !o.Oriented(id) || o.Badness(id) != 1 {
				continue
			}
			e := g.Edge(id)
			game.AddEdge(e.U, e.V)
			gameToOrig = append(gameToOrig, id)
		}
		game.SortAdjacency()
		// SortAdjacency permutes ports, not edge ids; gameToOrig stays
		// indexed by game edge id, which AddEdge assigned in order.
		levels := make([]int, g.N())
		for v := range levels {
			levels[v] = o.Load(v)
		}
		inst, err := core.NewInstance(game, levels, token)
		if err != nil {
			return nil, fmt.Errorf("orient: phase %d produced an invalid game: %w", phase, err)
		}
		rec.GameEdges = game.M()

		// Step 4 — play the game.
		sol, stats, err := core.SolveProposal(inst, core.SolveOptions{
			Tie:       opt.Tie,
			Seed:      opt.Seed + int64(phase)*1_000_003,
			Workers:   opt.Workers,
			MaxRounds: 1 << 20,
		})
		if err != nil {
			return nil, fmt.Errorf("orient: phase %d game failed: %w", phase, err)
		}
		if opt.CheckInvariants {
			if err := core.Verify(sol); err != nil {
				return nil, fmt.Errorf("orient: phase %d game unverified: %w", phase, err)
			}
		}
		rec.GameRounds = stats.Rounds
		res.Rounds += stats.Rounds
		for _, tr := range sol.Traversals() {
			if len(tr.Path) > 1 {
				rec.TokensMoved++
			}
		}

		var loadsBefore []int
		if opt.CheckInvariants {
			loadsBefore = o.Loads()
		}

		// Step 5 — flip every edge present in a traversal (each consumed
		// edge was traversed exactly once).
		for gameID, origID := range gameToOrig {
			if sol.Consumed[gameID] {
				o.Flip(origID)
			}
		}
		// Step 6 — orient the accepted edges toward their acceptors.
		for _, id := range accepted {
			o.Orient(id, acceptor[id])
		}

		if opt.CheckInvariants {
			if err := checkPhaseInvariants(o, loadsBefore, sol); err != nil {
				return nil, fmt.Errorf("orient: phase %d: %w", phase, err)
			}
		}
		rec.MaxBadness = o.MaxBadness()
		res.PhaseLog = append(res.PhaseLog, rec)
		res.Phases = phase
	}
	return res, nil
}

// checkPhaseInvariants enforces Lemma 5.3 (the load of v grows by exactly
// 1 if v is the destination of a token, and is unchanged otherwise) and
// Lemma 5.4 (no directed edge has badness above 1 at the end of a phase).
func checkPhaseInvariants(o *graph.Orientation, loadsBefore []int, sol *core.Solution) error {
	isDest := make([]bool, len(loadsBefore))
	for _, tr := range sol.Traversals() {
		isDest[tr.Destination()] = true
	}
	for v, before := range loadsBefore {
		want := before
		if isDest[v] {
			want++
		}
		if o.Load(v) != want {
			return fmt.Errorf("lemma 5.3 violated at node %d: load %d -> %d, destination=%v",
				v, before, o.Load(v), isDest[v])
		}
	}
	if b := o.MaxBadness(); b > 1 {
		return fmt.Errorf("lemma 5.4 violated: max badness %d after phase", b)
	}
	if err := o.CheckLoads(); err != nil {
		return err
	}
	return nil
}
