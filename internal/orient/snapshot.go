package orient

import (
	"fmt"

	"tokendrop/internal/core"
	"tokendrop/internal/reuse"
)

// Snapshot captures a SolveSharded run at a phase boundary — the one
// point of the phase loop where the engine's double buffer is quiescent
// (no subgame is in flight) and the whole mid-solve state is exactly the
// orientation arrays: per-edge heads, per-vertex loads, and (under
// TieRandom) the per-vertex accept streams. Resuming from a snapshot
// skips the completed phases entirely and continues bit-identically to
// the uninterrupted run: every later phase is a deterministic function of
// this state, the phase number, and the solve options. Serialize with
// encode.SnapshotJSON.
type Snapshot struct {
	// Phase is the cursor: the number of completed phases.
	Phase int
	// Oriented counts the edges oriented so far.
	Oriented int
	// Rounds is the accumulated communication-round count at the cursor.
	Rounds int
	// Head holds the head vertex per edge id, -1 while unoriented.
	Head []int32
	// Load holds the indegree per vertex.
	Load []int32
	// Rngs holds the per-vertex TieRandom accept streams at the cursor;
	// nil under TieFirstPort.
	Rngs []uint64
	// PhaseLog holds the records of the completed phases, so a resumed
	// run reports the full log.
	PhaseLog []PhaseRecord
}

// captureSnapshot fills snap (reusing its slices, grow-only) from the
// phase-loop state after the given phase completed.
func captureSnapshot(snap *Snapshot, phase, oriented, rounds int, head, load []int32, rngs []uint64, log []PhaseRecord) {
	snap.Phase = phase
	snap.Oriented = oriented
	snap.Rounds = rounds
	snap.Head = reuse.Grown(snap.Head, len(head))
	copy(snap.Head, head)
	snap.Load = reuse.Grown(snap.Load, len(load))
	copy(snap.Load, load)
	if rngs == nil {
		snap.Rngs = nil
	} else {
		snap.Rngs = reuse.Grown(snap.Rngs, len(rngs))
		copy(snap.Rngs, rngs)
	}
	snap.PhaseLog = append(snap.PhaseLog[:0], log...)
}

// restoreSnapshot validates rs against the solve's shape and installs its
// state into the phase-loop arrays. It returns the phase cursor.
func restoreSnapshot(rs *Snapshot, n, m int, tie core.TieBreak, head, load []int32, rngs []uint64) (int, error) {
	if len(rs.Head) != m || len(rs.Load) != n {
		return 0, fmt.Errorf("orient: resume snapshot shaped %d edges / %d vertices, graph has %d / %d",
			len(rs.Head), len(rs.Load), m, n)
	}
	if rs.Phase < 0 {
		return 0, fmt.Errorf("orient: resume snapshot at negative phase %d", rs.Phase)
	}
	if tie == core.TieRandom {
		if len(rs.Rngs) != n {
			return 0, fmt.Errorf("orient: resume snapshot carries %d TieRandom streams for %d vertices", len(rs.Rngs), n)
		}
	} else if rs.Rngs != nil {
		return 0, fmt.Errorf("orient: resume snapshot carries TieRandom streams but the solve uses TieFirstPort")
	}
	oriented := 0
	for id, h := range rs.Head {
		if h >= 0 {
			if int(h) >= n {
				return 0, fmt.Errorf("orient: resume snapshot orients edge %d toward vertex %d (out of range)", id, h)
			}
			oriented++
		}
	}
	if oriented != rs.Oriented {
		return 0, fmt.Errorf("orient: resume snapshot claims %d oriented edges, heads encode %d", rs.Oriented, oriented)
	}
	copy(head, rs.Head)
	copy(load, rs.Load)
	if tie == core.TieRandom {
		copy(rngs, rs.Rngs)
	}
	return rs.Phase, nil
}
