package orient

import (
	"math/rand"
	"testing"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
)

func solveFixed(t *testing.T, g *graph.Graph, opt FixedOptions) *FixedResult {
	t.Helper()
	res, err := SolveFixed(g, opt)
	if err != nil {
		t.Fatalf("SolveFixed: %v", err)
	}
	if g.M() > 0 && !res.Orientation.Stable() {
		t.Fatal("not stable")
	}
	if err := res.Orientation.CheckLoads(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFixedTinyGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.New(3)},
		{"edge", graph.Path(2)},
		{"path", graph.Path(5)},
		{"cycle", graph.Cycle(6)},
		{"star", graph.Star(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			solveFixed(t, tc.g, FixedOptions{Seed: 1})
		})
	}
}

func TestFixedScheduleLengthIsWorstCase(t *testing.T) {
	g := graph.Cycle(8) // Δ = 2
	res := solveFixed(t, g, FixedOptions{})
	want := 2 * 2 * (PhaseBudget(2) + 2) // 2Δ phases × phase length
	if res.Rounds != want {
		t.Fatalf("rounds = %d, want the full schedule %d", res.Rounds, want)
	}
	if res.Rounds != WorstCaseBound(2) {
		t.Fatalf("schedule %d disagrees with WorstCaseBound %d", res.Rounds, WorstCaseBound(2))
	}
	if res.LastActiveRound >= res.Rounds {
		t.Fatal("no idle tail — suspicious for a fixed schedule")
	}
}

func TestFixedMatchesAdaptiveOutcomeQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4; i++ {
		g := graph.RandomGNM(14, 28, rng)
		fixed := solveFixed(t, g, FixedOptions{Seed: int64(i)})
		adaptive, err := Solve(g, Options{Seed: int64(i), CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		// Both stable; potentials may differ (different tie-break
		// sequencing) but both are local optima.
		if !fixed.Orientation.Stable() || !adaptive.Orientation.Stable() {
			t.Fatal("stability mismatch")
		}
		// The adaptive driver's work is far below the fixed schedule.
		if adaptive.Rounds >= fixed.Rounds {
			t.Fatalf("adaptive %d rounds should be below fixed %d", adaptive.Rounds, fixed.Rounds)
		}
	}
}

func TestFixedDeterministicAcrossWorkers(t *testing.T) {
	g := graph.RandomRegular(12, 3, rand.New(rand.NewSource(5)))
	a := solveFixed(t, g, FixedOptions{Seed: 9, Workers: 1})
	b := solveFixed(t, g, FixedOptions{Seed: 9, Workers: 8})
	for id := range g.Edges() {
		if a.Orientation.Head(id) != b.Orientation.Head(id) {
			t.Fatal("worker count changed the orientation")
		}
	}
}

func TestFixedRandomTies(t *testing.T) {
	g := graph.RandomGNM(12, 30, rand.New(rand.NewSource(7)))
	solveFixed(t, g, FixedOptions{Seed: 11, Tie: core.TieRandom})
}

func TestFixedCustomBudgetTooSmallFailsLoudly(t *testing.T) {
	// A budget of 3 rounds cannot finish any nontrivial game; the run
	// must detect the problem (incomplete/unstable/disagreement or the
	// stray-grant panic) rather than return a bad orientation.
	defer func() { recover() }() // the stray-grant guard may panic; fine
	g := graph.Star(5)
	if res, err := SolveFixed(g, FixedOptions{PhaseBudget: 3, Phases: 2}); err == nil {
		if res.Orientation.Stable() && res.Orientation.Complete() {
			t.Skip("tiny budget happened to suffice on this instance")
		}
		t.Fatal("undersized budget went unnoticed")
	}
}

func TestFixedAgreesWithLemma61OnTrees(t *testing.T) {
	tree, _ := graph.PerfectDAry(3, 3)
	res := solveFixed(t, tree, FixedOptions{Seed: 2})
	h := graph.Height(tree)
	for v := 0; v < tree.N(); v++ {
		if res.Orientation.Load(v) > h[v]+1 {
			t.Fatalf("Lemma 6.1 violated at %d", v)
		}
	}
}
