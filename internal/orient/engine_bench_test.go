package orient

import (
	"math/rand"
	"sync"
	"testing"

	"tokendrop/internal/graph"
)

// Orientation engine benchmarks at the scales the load-balancing
// evaluations run at (10⁵–10⁶ vertices). Both engines execute the same
// deterministic phase algorithm (TieFirstPort) on the same random
// d-regular graph — the pointer graph is materialized from the very CSR
// the sharded engine consumes, so the runs are bit-identical — and solve
// the orientation to stability. The rounds/s metric counts adaptive
// communication rounds of the whole run per wall-clock second; CHANGES.md
// records measured numbers. Run with
//
//	go test ./internal/orient -bench Orient -benchtime 1x
const benchOrientDeg = 4

var (
	benchMu   sync.Mutex
	benchCSRs = map[int]*graph.CSR{}
	benchGs   = map[int]*graph.Graph{}
)

func benchGraph(n int) (*graph.CSR, *graph.Graph) {
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchCSRs[n] == nil {
		rng := rand.New(rand.NewSource(42))
		benchCSRs[n] = graph.CSRRandomRegular(n, benchOrientDeg, rng)
		benchGs[n] = benchCSRs[n].ToGraph()
	}
	return benchCSRs[n], benchGs[n]
}

func benchSharded(b *testing.B, n, shards int) {
	csr, _ := benchGraph(n)
	rounds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SolveSharded(csr, ShardedOptions{Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		rounds += res.Rounds
	}
	b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/s")
}

func benchSeed(b *testing.B, n int) {
	_, g := benchGraph(n)
	rounds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Solve(g, Options{})
		if err != nil {
			b.Fatal(err)
		}
		rounds += res.Rounds
	}
	b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/s")
}

func BenchmarkOrientSharded100k(b *testing.B) { benchSharded(b, 100_000, 0) }
func BenchmarkOrientSeed100k(b *testing.B)    { benchSeed(b, 100_000) }
func BenchmarkOrientSharded1M(b *testing.B)   { benchSharded(b, 1_000_000, 0) }
func BenchmarkOrientSeed1M(b *testing.B)      { benchSeed(b, 1_000_000) }

// Multi-shard scaling of the 10⁶-vertex run; the outcome is shard-count
// independent, only the wall clock changes (flat on a single hardware
// thread, faster with real cores).
func BenchmarkOrientShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "shards1", 2: "shards2", 4: "shards4", 8: "shards8"}[shards],
			func(b *testing.B) { benchSharded(b, 1_000_000, shards) })
	}
}
