package orient

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
)

// The differential suite pins the sharded orientation port to the seed
// engine: under TieFirstPort both run the same deterministic protocol over
// the same per-phase port numbering, so the phase logs, round counts, and
// final orientations must agree bit for bit on every instance. TieRandom
// draws engine-specific streams, so those runs are checked only against
// the solution-level oracles (core.Verify on every subgame, stability and
// load-recount at the end).

// diffGraph derives a seeded test graph from a case index, cycling through
// the families the orientation experiments run on.
func diffGraph(i int) (*graph.Graph, string) {
	rng := rand.New(rand.NewSource(int64(3000 + i)))
	switch i % 7 {
	case 0:
		d := 2 + i%4
		n := 4*d + (i/7)%5*2
		return graph.RandomRegular(n, d, rng), fmt.Sprintf("regular n=%d d=%d", n, d)
	case 1:
		n := 8 + (i/7)%6*4
		m := 2 * n
		return graph.RandomGNM(n, m, rng), fmt.Sprintf("gnm n=%d m=%d", n, m)
	case 2:
		s := 5 + (i/7)%5
		return graph.Caterpillar(s, 1+i%3), fmt.Sprintf("caterpillar %d", s)
	case 3:
		r := 3 + (i/7)%3
		return graph.Grid2D(r, r+1), fmt.Sprintf("grid %dx%d", r, r+1)
	case 4:
		return graph.Star(4 + (i/7)%8), "star"
	case 5:
		g, _ := graph.PerfectDAry(2+i%2, 3)
		return g, "tree"
	default:
		return graph.Cycle(5 + (i/7)%7), "cycle"
	}
}

func TestDifferentialOrientEngines(t *testing.T) {
	const cases = 105
	for i := 0; i < cases; i++ {
		g, name := diffGraph(i)
		seed := int64(100 + i)
		tag := fmt.Sprintf("case %d (%s)", i, name)

		seedRes, err := Solve(g, Options{Tie: core.TieFirstPort, Seed: seed, CheckInvariants: true})
		if err != nil {
			t.Fatalf("%s: seed engine: %v", tag, err)
		}
		csr := graph.NewCSRFromGraph(g)
		flatRes, err := SolveSharded(csr, ShardedOptions{
			Tie: core.TieFirstPort, Seed: seed, Shards: 1 + i%5,
			CheckInvariants: true, VerifyGames: true,
		})
		if err != nil {
			t.Fatalf("%s: sharded engine: %v", tag, err)
		}

		if flatRes.Phases != seedRes.Phases {
			t.Fatalf("%s: phases %d (sharded) != %d (seed)", tag, flatRes.Phases, seedRes.Phases)
		}
		if flatRes.Rounds != seedRes.Rounds {
			t.Fatalf("%s: rounds %d (sharded) != %d (seed)", tag, flatRes.Rounds, seedRes.Rounds)
		}
		if flatRes.WorstCaseRounds != seedRes.WorstCaseRounds {
			t.Fatalf("%s: worst-case bounds diverge", tag)
		}
		if !slices.Equal(flatRes.PhaseLog, seedRes.PhaseLog) {
			t.Fatalf("%s: phase logs diverge:\nsharded: %+v\nseed:    %+v", tag, flatRes.PhaseLog, seedRes.PhaseLog)
		}
		for id := 0; id < g.M(); id++ {
			if int(flatRes.Head[id]) != seedRes.Orientation.Head(id) {
				t.Fatalf("%s: edge %d head %d (sharded) != %d (seed)",
					tag, id, flatRes.Head[id], seedRes.Orientation.Head(id))
			}
		}
		for v := 0; v < g.N(); v++ {
			if int(flatRes.Load[v]) != seedRes.Orientation.Load(v) {
				t.Fatalf("%s: load of %d diverges", tag, v)
			}
		}
		if !flatRes.Stable() {
			t.Fatalf("%s: sharded result not stable", tag)
		}
	}
}

// TestDifferentialOrientTieRandom runs the sharded port under TieRandom.
// Its accept and tie-break streams legitimately differ from the seed
// engine's, so the runs are judged by the oracles alone: every phase
// subgame passes core.Verify (VerifyGames), every phase satisfies the
// Lemma 5.3/5.4 invariants and the potential identity (CheckInvariants),
// and the final orientation is stable with consistent loads.
func TestDifferentialOrientTieRandom(t *testing.T) {
	for i := 0; i < 40; i++ {
		g, name := diffGraph(i)
		tag := fmt.Sprintf("case %d (%s)", i, name)
		csr := graph.NewCSRFromGraph(g)
		flatRes, err := SolveSharded(csr, ShardedOptions{
			Tie: core.TieRandom, Seed: int64(900 + i), Shards: 1 + i%4,
			CheckInvariants: true, VerifyGames: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if !flatRes.Stable() {
			t.Fatalf("%s: not stable", tag)
		}
		o := flatRes.Orientation()
		if !o.Stable() {
			t.Fatalf("%s: materialized orientation not stable", tag)
		}
		if err := o.CheckLoads(); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
	}
}

// TestOrientShardCountInvariance pins schedule independence: the same
// graph solved with 1..8 shards produces the same run.
func TestOrientShardCountInvariance(t *testing.T) {
	g := graph.RandomGNM(40, 120, rand.New(rand.NewSource(11)))
	csr := graph.NewCSRFromGraph(g)
	base, err := SolveSharded(csr, ShardedOptions{Tie: core.TieFirstPort, Seed: 11, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for shards := 2; shards <= 8; shards++ {
		res, err := SolveSharded(csr, ShardedOptions{Tie: core.TieFirstPort, Seed: 11, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != base.Rounds || !slices.Equal(res.Head, base.Head) ||
			!slices.Equal(res.PhaseLog, base.PhaseLog) {
			t.Fatalf("shards=%d diverges from shards=1", shards)
		}
	}
}

// TestOrientCentralStepInvariance pins the parallel central passes: the
// proposal/accept evaluation, game-assembly marks, result scatter, and
// badness recounts run as Session.ParallelFor kernels, so the whole run
// — phase logs (proposal/accept counts included), rounds, final heads
// and loads — must be bit-identical at shard counts 1, 2, and 8 under
// both tie rules. TieRandom is the sharper check: the per-vertex draw
// streams of the owner-computes kernels must not depend on the split.
func TestOrientCentralStepInvariance(t *testing.T) {
	for i := 0; i < 12; i++ {
		g, name := diffGraph(3 * i)
		csr := graph.NewCSRFromGraph(g)
		for _, tie := range []core.TieBreak{core.TieFirstPort, core.TieRandom} {
			base, err := SolveSharded(csr, ShardedOptions{
				Tie: tie, Seed: int64(500 + i), Shards: 1, CheckInvariants: true,
			})
			if err != nil {
				t.Fatalf("case %d (%s) tie=%v shards=1: %v", i, name, tie, err)
			}
			for _, shards := range []int{2, 8} {
				res, err := SolveSharded(csr, ShardedOptions{
					Tie: tie, Seed: int64(500 + i), Shards: shards, CheckInvariants: true,
				})
				if err != nil {
					t.Fatalf("case %d (%s) tie=%v shards=%d: %v", i, name, tie, shards, err)
				}
				if res.Rounds != base.Rounds || res.Phases != base.Phases ||
					!slices.Equal(res.PhaseLog, base.PhaseLog) ||
					!slices.Equal(res.Head, base.Head) || !slices.Equal(res.Load, base.Load) {
					t.Fatalf("case %d (%s) tie=%v: shards=%d diverges from shards=1", i, name, tie, shards)
				}
			}
		}
	}
}

// TestSolveShardedCSRNative runs the sharded port on graphs built directly
// in CSR form (whose adjacency is not neighbor-sorted) — the port order of
// the input CSR must not matter, because the phase games build their own.
func TestSolveShardedCSRNative(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct {
		name string
		csr  *graph.CSR
	}{
		{"regular", graph.CSRRandomRegular(200, 4, rng)},
		{"powerlaw", graph.CSRPowerLaw(300, 2.2, 10, rng)},
		{"powerlaw bipartite", graph.CSRPowerLawBipartite(200, 40, 2.0, 8, rng)},
	} {
		res, err := SolveSharded(tc.csr, ShardedOptions{
			Tie: core.TieFirstPort, Seed: 5, CheckInvariants: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.Stable() {
			t.Fatalf("%s: not stable", tc.name)
		}
		// Cross-check against the seed engine on the materialized graph:
		// Solve ignores the input's port order, so the runs must agree.
		g := tc.csr.ToGraph()
		seedRes, err := Solve(g, Options{Tie: core.TieFirstPort, Seed: 5})
		if err != nil {
			t.Fatalf("%s: seed engine: %v", tc.name, err)
		}
		if seedRes.Rounds != res.Rounds || seedRes.Phases != res.Phases {
			t.Fatalf("%s: runs diverge: rounds %d/%d phases %d/%d",
				tc.name, res.Rounds, seedRes.Rounds, res.Phases, seedRes.Phases)
		}
		for id := 0; id < g.M(); id++ {
			if int(res.Head[id]) != seedRes.Orientation.Head(id) {
				t.Fatalf("%s: edge %d heads diverge", tc.name, id)
			}
		}
	}
}
