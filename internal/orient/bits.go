package orient

import "math/bits"

// Encoded message sizes (local.Sized) for the fixed-schedule protocol's
// phase messages. Loads are bounded by Δ ≤ n, so the load broadcast is the
// only Θ(log n)-bit message of the whole algorithm — it stays within
// CONGEST's O(log n) budget.

func (m msgLoad) Bits() int     { return 2 + bits.Len(uint(m.Load)) }
func (msgAcceptEdge) Bits() int { return 2 }
