package orient

import (
	"math/rand"
	"testing"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
	"tokendrop/internal/local"
)

// The LOCAL model lets algorithms read identifiers, so outputs may change
// under relabeling — but they must remain CORRECT. These tests run the
// fixed-schedule machine under adversarial identifier assignments and
// check stability every time; they also confirm that identifiers do
// change behaviour (the tie-break uses them), which documents that the
// algorithm genuinely lives in the LOCAL model rather than the weaker
// port-numbering model.

// fixedWithIDs runs the fixed-schedule protocol under a custom identifier
// assignment by wiring the machines directly to the runtime.
func fixedWithIDs(t *testing.T, g *graph.Graph, ids []int, seed int64) *graph.Orientation {
	t.Helper()
	delta := g.MaxDegree()
	budget := PhaseBudget(delta)
	phases := 2 * delta
	phaseLen := budget + 2
	machines := make([]*fixedMachine, g.N())
	nw := local.NewNetworkIDs(g, ids, func(v int) local.Machine {
		fm := &fixedMachine{
			vertex:   v,
			delta:    delta,
			phases:   phases,
			phaseLen: phaseLen,
			tie:      core.TieFirstPort,
			edgeID:   make([]int, g.Degree(v)),
			rng:      rand.New(rand.NewSource(seed)),
		}
		for p, a := range g.Adj(v) {
			fm.edgeID[p] = a.Edge
		}
		machines[v] = fm
		return fm
	})
	if _, err := nw.Run(local.Options{MaxRounds: phases*phaseLen + 2}); err != nil {
		t.Fatal(err)
	}
	o := graph.NewOrientation(g)
	for v, fm := range machines {
		for p, a := range g.Adj(v) {
			if fm.headSelf[p] && !o.Oriented(a.Edge) {
				o.Orient(a.Edge, v)
			}
		}
	}
	return o
}

func TestFixedStableUnderRelabelings(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomGNM(10, 20, rng)
	n := g.N()
	for trial := 0; trial < 4; trial++ {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = 1000 + i*7 // injective, non-contiguous
		}
		rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		o := fixedWithIDs(t, g, ids, int64(trial))
		if !o.Complete() {
			t.Fatalf("trial %d: incomplete orientation under relabeling", trial)
		}
		if !o.Stable() {
			t.Fatalf("trial %d: unstable orientation under relabeling", trial)
		}
	}
}

func TestIdentifiersInfluenceTieBreaks(t *testing.T) {
	// On a symmetric graph, swapping identifiers must be able to change
	// the output (the proposal-target rule ties on identifiers). Not a
	// correctness property — documentation that IDs are genuinely read.
	g := graph.Path(2)
	a := fixedWithIDs(t, g, []int{0, 1}, 1)
	b := fixedWithIDs(t, g, []int{1, 0}, 1)
	if a.Head(0) == b.Head(0) {
		t.Log("tie-break coincided; acceptable but unexpected on a single edge")
	}
	if !a.Stable() || !b.Stable() {
		t.Fatal("single-edge orientations must be stable either way")
	}
}
