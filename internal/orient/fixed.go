package orient

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/core"
	"tokendrop/internal/graph"
	"tokendrop/internal/local"
)

// This file implements the Theorem 5.1 algorithm as a genuine LOCAL-model
// protocol: one state machine per node, no simulator-side phase barriers.
// Nodes know Δ (the standard assumption the paper's fixed phase schedule
// rests on) and agree on the schedule up front:
//
//	2Δ phases × (2 + budget(Δ)) rounds,
//	budget(Δ) = 8·(Δ+1)·Δ² + 40   (the proposal-algorithm budget for a
//	                               game of height ≤ Δ on degree ≤ Δ),
//
// which multiplies out to WorstCaseBound(Δ) = Θ(Δ⁴) rounds — the
// theorem's complexity, spent unconditionally. Within each phase:
//
//	offset 1:     broadcast the current load,
//	offset 2:     each unoriented edge implicitly proposes to its
//	              lower-load endpoint (ties to the smaller identifier —
//	              both endpoints compute the same target from the same
//	              broadcast); the target accepts one proposing edge and
//	              answers on that port,
//	offset 3..:   an embedded token dropping machine plays the game on
//	              the badness-1 edges with tokens at acceptors; grants
//	              observed on a port flip that edge,
//	phase end:    accepted edges are oriented toward their acceptors and
//	              the load is recounted.
//
// Solve (the adaptive-schedule driver in orient.go) runs the same
// computation with simulator barriers and therefore measures the rounds
// actually needed; SolveFixed is the existence proof that the algorithm
// truly runs in the LOCAL model with the advertised worst-case schedule.

type msgLoad struct{ Load int }
type msgAcceptEdge struct{}

// FixedOptions configure SolveFixed.
type FixedOptions struct {
	// Tie and Seed control tie-breaking, as in Options.
	Tie  core.TieBreak
	Seed int64
	// Workers for the LOCAL runtime.
	Workers int
	// PhaseBudget overrides the per-phase game budget (0 = budget(Δ)).
	// Tests shrink it to exercise the budget-overflow detection.
	PhaseBudget int
	// Phases overrides the phase count (0 = 2Δ).
	Phases int
}

// FixedResult is the outcome of SolveFixed.
type FixedResult struct {
	Orientation *graph.Orientation
	// Rounds is the full fixed schedule: every node runs it to the end.
	Rounds int
	// LastActiveRound is the last round in which any message was
	// delivered — the "actual work" hidden inside the fixed schedule.
	LastActiveRound int
	Phases          int
	PhaseLen        int
}

// fixedMachine is the per-node protocol.
type fixedMachine struct {
	vertex   int
	delta    int
	phases   int
	phaseLen int
	tie      core.TieBreak
	rng      *rand.Rand

	id       int
	nbrID    []int
	edgeID   []int
	oriented []bool
	headSelf []bool
	nbrLoad  []int
	load     int

	inner        *core.ProposalMachine
	innerHalted  bool
	acceptedPort int    // edge I accepted this phase (head = me), -1
	tailAccepts  []bool // ports whose neighbor accepted this phase (head = neighbor)
}

func (m *fixedMachine) Init(info local.NodeInfo) {
	m.id = info.ID
	m.nbrID = append([]int(nil), info.Neighbor...)
	m.oriented = make([]bool, info.Degree)
	m.headSelf = make([]bool, info.Degree)
	m.nbrLoad = make([]int, info.Degree)
	m.tailAccepts = make([]bool, info.Degree)
	m.acceptedPort = -1
}

// proposalTarget reports whether the unoriented edge on port p proposes to
// this node: the edge prefers the endpoint with the smaller load, ties to
// the smaller identifier. Both endpoints evaluate the same rule on the
// same broadcast loads, so they agree.
func (m *fixedMachine) proposalTarget(p int) bool {
	if m.load != m.nbrLoad[p] {
		return m.load < m.nbrLoad[p]
	}
	return m.id < m.nbrID[p]
}

func (m *fixedMachine) Step(round int, in []local.Payload, out []local.Payload) bool {
	phase := (round - 1) / m.phaseLen // 0-based
	offset := (round-1)%m.phaseLen + 1

	switch offset {
	case 1:
		m.guardStray(in, round)
		for p := range out {
			out[p] = msgLoad{Load: m.load}
		}
	case 2:
		m.guardStray(in, round)
		for p, raw := range in {
			if msg, ok := raw.(msgLoad); ok {
				m.nbrLoad[p] = msg.Load
			}
		}
		// Accept one of the edges proposing to me, if any.
		eligible := make([]bool, len(in))
		any := false
		for p := range eligible {
			if !m.oriented[p] && m.proposalTarget(p) {
				eligible[p] = true
				any = true
			}
		}
		if any {
			m.acceptedPort = m.pick(eligible)
			out[m.acceptedPort] = msgAcceptEdge{}
		}
	case 3:
		for p, raw := range in {
			if _, ok := raw.(msgAcceptEdge); ok {
				m.tailAccepts[p] = true
			}
		}
		m.buildInner()
		m.stepInner(round, nil, out)
	default:
		gameIn := make([]local.Payload, len(in))
		for p, raw := range in {
			if raw != nil && core.IsGamePayload(raw) {
				gameIn[p] = raw
				if core.IsGameGrant(raw) {
					// A token arrived over port p: the edge flips toward
					// me (Section 5: flip every traversed edge).
					m.headSelf[p] = true
				}
			}
		}
		m.stepInner(round, gameIn, out)
	}

	if offset == m.phaseLen {
		m.endPhase()
		if phase == m.phases-1 {
			return true
		}
	}
	return false
}

// guardStray panics if game traffic leaks into the phase-bookkeeping
// rounds — that can only happen when a game overruns its budget, which
// voids the Lemma 5.4 invariant and must fail loudly.
func (m *fixedMachine) guardStray(in []local.Payload, round int) {
	for _, raw := range in {
		if raw != nil && core.IsGameGrant(raw) {
			panic(fmt.Sprintf("orient: vertex %d saw a grant in round %d outside the game window (phase budget too small)",
				m.vertex, round))
		}
	}
}

func (m *fixedMachine) pick(eligible []bool) int {
	if m.tie == core.TieRandom {
		count, choice := 0, -1
		for p, ok := range eligible {
			if !ok {
				continue
			}
			count++
			if m.rng.Intn(count) == 0 {
				choice = p
			}
		}
		return choice
	}
	for p, ok := range eligible {
		if ok {
			return p
		}
	}
	return -1
}

// buildInner assembles this phase's embedded game machine: alive ports are
// the oriented badness-1 edges, parents sit one load-level above, and the
// token marks an accepted proposal.
func (m *fixedMachine) buildInner() {
	n := len(m.oriented)
	isParent := make([]bool, n)
	alive := make([]bool, n)
	for p := 0; p < n; p++ {
		if !m.oriented[p] {
			continue
		}
		var badness int
		if m.headSelf[p] {
			badness = m.load - m.nbrLoad[p]
		} else {
			badness = m.nbrLoad[p] - m.load
		}
		if badness == 1 {
			alive[p] = true
			isParent[p] = !m.headSelf[p] // the head (higher load) is the parent
		}
	}
	m.inner = core.NewEmbeddedProposalMachine(m.vertex, isParent, alive, m.edgeID,
		m.acceptedPort >= 0, m.tie, m.rng)
	m.innerHalted = false
}

func (m *fixedMachine) stepInner(round int, gameIn []local.Payload, out []local.Payload) {
	if m.innerHalted {
		return
	}
	if gameIn == nil {
		gameIn = make([]local.Payload, len(out))
	}
	m.innerHalted = m.inner.Step(round, gameIn, out)
	for p, raw := range out {
		if raw != nil && core.IsGameGrant(raw) {
			// I passed my token down over port p: the edge flips away.
			m.headSelf[p] = false
		}
	}
}

// endPhase orients the edges accepted this phase and recounts the load.
func (m *fixedMachine) endPhase() {
	if m.acceptedPort >= 0 {
		m.oriented[m.acceptedPort] = true
		m.headSelf[m.acceptedPort] = true
		m.acceptedPort = -1
	}
	for p, acc := range m.tailAccepts {
		if acc {
			m.oriented[p] = true
			m.headSelf[p] = false
			m.tailAccepts[p] = false
		}
	}
	load := 0
	for p, o := range m.oriented {
		if o && m.headSelf[p] {
			load++
		}
	}
	m.load = load
	m.inner = nil
	m.innerHalted = true
}

var _ local.Machine = (*fixedMachine)(nil)

// PhaseBudget returns the default per-phase game budget for maximum
// degree delta.
func PhaseBudget(delta int) int { return 8*(delta+1)*delta*delta + 40 }

// SolveFixed runs the fixed-schedule LOCAL protocol on g and extracts the
// stable orientation from the nodes' final states. It returns an error if
// the endpoints disagree, the orientation is incomplete, or it is not
// stable — all of which indicate a bug or an undersized budget, never an
// input property.
func SolveFixed(g *graph.Graph, opt FixedOptions) (*FixedResult, error) {
	delta := g.MaxDegree()
	if delta == 0 {
		return &FixedResult{Orientation: graph.NewOrientation(g)}, nil
	}
	budget := opt.PhaseBudget
	if budget == 0 {
		budget = PhaseBudget(delta)
	}
	phases := opt.Phases
	if phases == 0 {
		phases = 2 * delta
	}
	phaseLen := budget + 2

	machines := make([]*fixedMachine, g.N())
	nw := local.NewNetwork(g, func(v int) local.Machine {
		fm := &fixedMachine{
			vertex:   v,
			delta:    delta,
			phases:   phases,
			phaseLen: phaseLen,
			tie:      opt.Tie,
			edgeID:   make([]int, g.Degree(v)),
		}
		for p, a := range g.Adj(v) {
			fm.edgeID[p] = a.Edge
		}
		if opt.Tie == core.TieRandom {
			fm.rng = rand.New(rand.NewSource(opt.Seed ^ int64(v)*0x9e3779b9))
		} else {
			fm.rng = rand.New(rand.NewSource(opt.Seed))
		}
		machines[v] = fm
		return fm
	})
	lastActive := 0
	stats, err := nw.Run(local.Options{
		MaxRounds: phases*phaseLen + 2,
		Workers:   opt.Workers,
		OnRound: func(round, delivered int) {
			if delivered > 0 {
				lastActive = round
			}
		},
	})
	if err != nil {
		return nil, err
	}

	// Extract and cross-check the orientation.
	o := graph.NewOrientation(g)
	for v, fm := range machines {
		for p, a := range g.Adj(v) {
			if !fm.oriented[p] {
				return nil, fmt.Errorf("orient: fixed schedule left edge %d unoriented at vertex %d", a.Edge, v)
			}
			if fm.headSelf[p] {
				if o.Oriented(a.Edge) {
					if o.Head(a.Edge) != v {
						return nil, fmt.Errorf("orient: endpoints disagree on edge %d", a.Edge)
					}
					continue
				}
				o.Orient(a.Edge, v)
			}
		}
	}
	if !o.Complete() {
		// Some edge had headSelf false on both sides.
		return nil, fmt.Errorf("orient: fixed schedule produced an incomplete orientation (%d of %d edges)",
			o.NumOriented(), g.M())
	}
	if !o.Stable() {
		return nil, fmt.Errorf("orient: fixed schedule produced an unstable orientation (max badness %d)", o.MaxBadness())
	}
	return &FixedResult{
		Orientation:     o,
		Rounds:          stats.Rounds,
		LastActiveRound: lastActive,
		Phases:          phases,
		PhaseLen:        phaseLen,
	}, nil
}
