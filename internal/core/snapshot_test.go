package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tokendrop/internal/local"
)

// snapshotFamilies enumerates the graph families the resume-equivalence
// property suite samples: four structurally distinct shapes (random
// layered DAG, dense grid, heavy-tailed bipartite, degenerate chain).
var snapshotFamilies = []struct {
	name  string
	build func(i int, rng *rand.Rand) *FlatInstance
}{
	{"layered", func(i int, rng *rand.Rand) *FlatInstance {
		return FlatRandomLayered(LayeredConfig{
			Levels: 3 + i%3, Width: 8 + i%7, ParentDeg: 2 + i%3,
			TokenProb: 0.4 + 0.1*float64(i%4), FreeBottom: true,
		}, rng)
	}},
	{"grid", func(i int, rng *rand.Rand) *FlatInstance {
		return FlatLayeredGrid(3+i%4, 6+i%5, 1+i%2)
	}},
	{"powerlaw", func(i int, rng *rand.Rand) *FlatInstance {
		return FlatPowerLawBipartite(12+i%9, 10+i%5, 2.0+0.2*float64(i%3), 4+i%3, rng)
	}},
	{"chain", func(i int, rng *rand.Rand) *FlatInstance {
		return NewFlatInstance(Chain(4 + i%6))
	}},
}

// runSharded dispatches on the solver kind the suite iterates over.
func runSharded(t *testing.T, three bool, fi *FlatInstance, opt ShardedSolveOptions) *FlatResult {
	t.Helper()
	var res *FlatResult
	var err error
	if three {
		res, err = SolveThreeLevelSharded(fi, opt)
	} else {
		res, err = SolveProposalSharded(fi, opt)
	}
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return res
}

// TestResumeEquivalence is the core resume-equivalence property suite:
// across graph families, tie rules, and shard counts, a run snapshotted
// at a random round cursor and resumed from that snapshot produces the
// bit-identical result of the uninterrupted run.
func TestResumeEquivalence(t *testing.T) {
	shardChoices := []int{1, 2, 8}
	for fam := range snapshotFamilies {
		f := snapshotFamilies[fam]
		t.Run(f.name, func(t *testing.T) {
			for i := 0; i < 8; i++ {
				rng := rand.New(rand.NewSource(int64(100*fam + i)))
				fi := f.build(i, rng)
				three := fi.Height() <= 2 && i%2 == 0
				for _, tie := range []TieBreak{TieFirstPort, TieRandom} {
					opt := ShardedSolveOptions{
						Tie: tie, Seed: int64(i), MaxRounds: 1 << 16,
						Shards: shardChoices[i%len(shardChoices)],
					}
					base := runSharded(t, three, fi, opt)
					if base.Stats.Rounds < 1 {
						continue
					}
					cursor := 1 + rng.Intn(base.Stats.Rounds)

					var snap *Snapshot
					sopt := opt
					sopt.SnapshotAt = cursor
					sopt.OnSnapshot = func(s *Snapshot) error { snap = s; return nil }
					again := runSharded(t, three, fi, sopt)
					if !reflect.DeepEqual(base, again) {
						t.Fatalf("%s[%d] tie=%v: snapshot capture perturbed the run", f.name, i, tie)
					}
					if snap == nil {
						t.Fatalf("%s[%d]: no snapshot at round %d of %d", f.name, i, cursor, base.Stats.Rounds)
					}

					// Resume under a different shard count: results are
					// shard-count invariant, so the resumed run must still
					// bit-match the uninterrupted one.
					ropt := opt
					ropt.Shards = shardChoices[(i+1)%len(shardChoices)]
					ropt.ResumeFrom = snap
					resumed := runSharded(t, three, fi, ropt)
					if !reflect.DeepEqual(base.Final, resumed.Final) {
						t.Fatalf("%s[%d] tie=%v cursor=%d: resumed final placement diverged", f.name, i, tie, cursor)
					}
					if !reflect.DeepEqual(base.Moves, resumed.Moves) {
						t.Fatalf("%s[%d] tie=%v cursor=%d: resumed move log diverged", f.name, i, tie, cursor)
					}
					if base.Stats.Rounds != resumed.Stats.Rounds {
						t.Fatalf("%s[%d] tie=%v cursor=%d: rounds %d != %d",
							f.name, i, tie, cursor, base.Stats.Rounds, resumed.Stats.Rounds)
					}
				}
			}
		})
	}
}

// TestResumeRejectsDivergence checks the validated fast-forward: a
// tampered snapshot (wrong placement, wrong move count, wrong shape, or
// a cursor past the end of the run) must fail loudly, never silently
// produce a different run.
func TestResumeRejectsDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fi := FlatRandomLayered(LayeredConfig{Levels: 4, Width: 12, ParentDeg: 3, TokenProb: 0.6, FreeBottom: true}, rng)
	opt := ShardedSolveOptions{Tie: TieFirstPort, MaxRounds: 1 << 16, Shards: 2}
	base, err := SolveProposalSharded(fi, opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Rounds < 2 {
		t.Fatalf("workload too small: %d rounds", base.Stats.Rounds)
	}
	capture := func(round int) *Snapshot {
		var snap *Snapshot
		sopt := opt
		sopt.SnapshotAt = round
		sopt.OnSnapshot = func(s *Snapshot) error { snap = s; return nil }
		if _, err := SolveProposalSharded(fi, sopt); err != nil {
			t.Fatal(err)
		}
		return snap
	}
	snap := capture(base.Stats.Rounds / 2)

	cases := []struct {
		name   string
		mutate func(s *Snapshot)
	}{
		{"flipped placement", func(s *Snapshot) { s.Occupied[0] = !s.Occupied[0] }},
		{"wrong move count", func(s *Snapshot) { s.Moves++ }},
		{"wrong shape", func(s *Snapshot) { s.Occupied = s.Occupied[:len(s.Occupied)-1] }},
		{"cursor past the end", func(s *Snapshot) { s.Round = base.Stats.Rounds + 10 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := &Snapshot{
				Round:    snap.Round,
				Occupied: append([]bool(nil), snap.Occupied...),
				Moves:    snap.Moves,
			}
			tc.mutate(bad)
			ropt := opt
			ropt.ResumeFrom = bad
			if _, err := SolveProposalSharded(fi, ropt); err == nil {
				t.Fatal("tampered snapshot resumed without error")
			}
		})
	}
}

// TestSnapshotEverySchedule checks the periodic capture schedule: with
// SnapshotEvery = k, snapshots arrive exactly at rounds k, 2k, ... up to
// the final round, each internally consistent with the cursor.
func TestSnapshotEverySchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fi := FlatRandomLayered(LayeredConfig{Levels: 5, Width: 10, ParentDeg: 3, TokenProb: 0.7, FreeBottom: true}, rng)
	opt := ShardedSolveOptions{Tie: TieFirstPort, MaxRounds: 1 << 16, Shards: 3}
	base, err := SolveProposalSharded(fi, opt)
	if err != nil {
		t.Fatal(err)
	}
	const every = 2
	var rounds []int
	sopt := opt
	sopt.SnapshotEvery = every
	sopt.SnapshotInto = new(Snapshot) // reused buffer: values must be read during the hook
	sopt.OnSnapshot = func(s *Snapshot) error {
		rounds = append(rounds, s.Round)
		if len(s.Occupied) != fi.N() {
			return fmt.Errorf("snapshot at round %d has %d vertices", s.Round, len(s.Occupied))
		}
		return nil
	}
	if _, err := SolveProposalSharded(fi, sopt); err != nil {
		t.Fatal(err)
	}
	want := 0
	for r := every; r <= base.Stats.Rounds; r += every {
		want++
	}
	if len(rounds) != want {
		t.Fatalf("got %d snapshots %v, want %d over %d rounds", len(rounds), rounds, want, base.Stats.Rounds)
	}
	for i, r := range rounds {
		if r != (i+1)*every {
			t.Fatalf("snapshot %d at round %d, want %d", i, r, (i+1)*every)
		}
	}
}

// TestSnapshotHookErrorAborts checks that a failing OnSnapshot stops the
// solve with that error instead of running to completion.
func TestSnapshotHookErrorAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	fi := FlatRandomLayered(LayeredConfig{Levels: 5, Width: 10, ParentDeg: 3, TokenProb: 0.7, FreeBottom: true}, rng)
	sentinel := fmt.Errorf("disk full")
	opt := ShardedSolveOptions{
		Tie: TieFirstPort, MaxRounds: 1 << 16, Shards: 2,
		SnapshotEvery: 1,
		OnSnapshot:    func(*Snapshot) error { return sentinel },
	}
	_, err := SolveProposalSharded(fi, opt)
	if err == nil {
		t.Fatal("solve succeeded despite failing snapshot hook")
	}
}

// TestSnapshotDisabledSolveAllocFree pins the hooks' disabled-path cost:
// runFlat with no snapshot options wires no OnRound closure, so a warmed
// session/workspace solve stays allocation-free exactly as before the
// snapshot subsystem existed.
func TestSnapshotDisabledSolveAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	fi := FlatRandomLayered(LayeredConfig{
		Levels: 4, Width: 60, ParentDeg: 3, TokenProb: 0.6, FreeBottom: true,
	}, rng)
	sess := local.NewSession(2)
	defer sess.Close()
	ws := NewSolverWorkspace()
	opt := ShardedSolveOptions{Tie: TieFirstPort, Session: sess}
	run := func() {
		ws.prop.reset(fi, TieFirstPort, 0, nil)
		if _, err := runFlat(fi.csr, &ws.prop, opt); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: grow every array and per-shard log once
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Errorf("snapshot-disabled solve allocated %.1f objects per run; want 0", allocs)
	}
}

// TestSnapshotCaptureAllocFree pins the capture path's allocation
// discipline: with a warmed caller-owned buffer, captureInto performs no
// allocations.
func TestSnapshotCaptureAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	fi := FlatRandomLayered(LayeredConfig{Levels: 4, Width: 16, ParentDeg: 3, TokenProb: 0.6, FreeBottom: true}, rng)
	ws := NewSolverWorkspace()
	ws.prop.reset(fi, TieFirstPort, 0, nil)
	snap := new(Snapshot)
	captureInto(snap, &ws.prop, fi.N(), 1) // warm the buffer
	if allocs := testing.AllocsPerRun(50, func() {
		captureInto(snap, &ws.prop, fi.N(), 2)
	}); allocs != 0 {
		t.Fatalf("warmed capture allocates %.1f times per run", allocs)
	}
}
