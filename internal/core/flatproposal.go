package core

import (
	"fmt"

	"tokendrop/internal/local"
	"tokendrop/internal/reuse"
)

// Per-arc state flags of the flat programs, packed into one byte so the
// hot loops read a single sequential stream.
const (
	aParent uint8 = 1 << iota // head is one level above the tail
	aDead                     // consumed, or neighbor left
	aPOcc                     // last announced occupancy (parent arcs)
)

// Packed per-vertex live-port counters of flatProposal: three 21-bit
// fields in one word, so the steady-state loop touches one cache line
// per vertex instead of three.
const (
	cntBits  = 21
	cntMask  = 1<<cntBits - 1
	cntChild = 1 << cntBits       // liveChild increment
	cntOcc   = 1 << (2 * cntBits) // occPar increment
)

// Packed per-vertex flags/small fields of flatProposal (vstate array):
// bit 0 occupied, bits 1-2 waiting (0..2), bits 3-4 unchanged+1 (0..3),
// bits 5-6 the event ring [had-event(r-1), had-event(r-2)].
const (
	vOcc       uint8 = 1
	vWaitShift       = 1
	vWaitMask  uint8 = 3 << vWaitShift
	vUnShift         = 3
	vUnMask    uint8 = 3 << vUnShift
	vEvShift         = 5
	vEvMask    uint8 = 3 << vEvShift
)

// flatProposal is the proposal algorithm of Theorem 4.1 (proposal.go) in
// struct-of-arrays form for the sharded engine. Per-node fields of
// ProposalMachine become per-vertex arrays; per-port fields become
// arc-indexed flag bytes; message structs become the f* words. The step
// logic mirrors ProposalMachine.Step case for case — any semantic
// divergence is caught by the differential suite, which demands
// bit-identical runs under TieFirstPort.
//
// Two representation-level optimizations (invisible in the protocol):
//
//   - live-port counts and the number of live occupied parents are
//     maintained incrementally in the packed counters array — a port
//     dies exactly once — instead of recounted every round;
//   - a vertex whose outgoing words provably equal what the double
//     buffer already holds (nothing outbox-relevant changed for two
//     consecutive rounds) skips its stores entirely. In steady state
//     most vertices are occupied nodes repeating the same announcement,
//     so this removes the bulk of the scattered stores.
type flatProposal struct {
	fi   *FlatInstance
	tie  TieBreak
	seed int64
	rngs []uint64 // per-vertex TieRandom state; nil under TieFirstPort

	// initKernel is the bound initVertices method, created once so that
	// warmed resets through a session dispatch without allocating.
	initKernel local.Kernel

	vstate   []uint8  // packed occupied/waiting/unchanged/event ring
	counters []uint64 // packed livePar/liveChild/occPar
	active   []int32  // rounds spent active & unoccupied (Lemma 4.4)
	aflags   []uint8  // per arc: aParent | aDead | aPOcc

	// childEnd[v] is the end of v's leading child-arc prefix when v's
	// child arcs form a prefix of its arc range (CSR-native generators
	// and layer-major sorted adjacencies have this shape), else -1.
	// Announcements only travel to child arcs and requests/leaves only
	// appear in event rounds, so an event-free round whose two
	// predecessors were also event-free (event ring clear) needs stores
	// to the child prefix only — and none at all on childless vertices.
	childEnd []int32

	// Per-shard grant logs, packed as arc<<32|round. Resolving a grant
	// to a Move needs two cold array reads (EID, Col) plus a 32-byte
	// store; deferring that to result() keeps the round loop lean.
	shardGrants [][]int64
	shardMsgs   []int64
}

func newFlatProposal(fi *FlatInstance, tie TieBreak, seed int64) *flatProposal {
	pr := &flatProposal{}
	pr.reset(fi, tie, seed, nil)
	return pr
}

// reset rebuilds the program state for a fresh solve of fi in place,
// growing the arrays only when fi outgrows them — a warmed program
// (same-sized or shrinking games) resets without allocating. Used by the
// per-solve workspaces of the phase loops. With a session, the
// per-vertex rebuild itself runs sharded on the parked workers.
func (pr *flatProposal) reset(fi *FlatInstance, tie TieBreak, seed int64, sess *local.Session) {
	n := fi.N()
	pr.fi = fi
	pr.tie = tie
	pr.seed = seed
	pr.vstate = reuse.Grown(pr.vstate, n)
	pr.counters = reuse.Grown(pr.counters, n)
	pr.active = reuse.Grown(pr.active, n)
	pr.aflags = reuse.Grown(pr.aflags, fi.csr.NumArcs())
	pr.childEnd = reuse.Grown(pr.childEnd, n)
	if tie == TieRandom {
		pr.rngs = reuse.Grown(pr.rngs, n)
	} else {
		pr.rngs = nil
	}
	if pr.initKernel == nil {
		pr.initKernel = pr.initVertices
	}
	runInitKernel(sess, n, pr.initKernel)
}

// initVertices is the reset kernel: it rederives all per-vertex state
// and the flag bytes of the vertices' own arcs for [lo, hi).
func (pr *flatProposal) initVertices(sh, lo, hi int) {
	fi := pr.fi
	csr := fi.csr
	for v := lo; v < hi; v++ {
		pr.active[v] = 0
		// unchanged = -1 (stored as un+1 = 0), waiting = 0, and the event
		// ring starts dirty (the pre-round buffers count as unknown).
		s := vEvMask
		if fi.token[v] {
			s |= vOcc
		}
		pr.vstate[v] = s
		alo, ahi := csr.ArcRange(v)
		var c uint64
		ce := int32(alo)
		grouped := true
		for i := alo; i < ahi; i++ {
			if fi.level[csr.Col[i]] > fi.level[v] {
				pr.aflags[i] = aParent
				c++
			} else {
				pr.aflags[i] = 0
				c += cntChild
				if int32(i) != ce {
					grouped = false // a parent arc precedes this child arc
				}
				ce++
			}
		}
		if !grouped {
			ce = -1
		}
		pr.childEnd[v] = ce
		pr.counters[v] = c
		if pr.rngs != nil {
			pr.rngs[v] = SplitMix64(uint64(pr.seed) ^ uint64(v)*0x9e3779b97f4a7c15)
		}
	}
}

// InitShards implements local.FlatProgram. The per-shard logs are grown
// in place, so repeat solves on a warmed program allocate nothing.
func (pr *flatProposal) InitShards(bounds []int) {
	shards := len(bounds) - 1
	if cap(pr.shardGrants) < shards {
		pr.shardGrants = make([][]int64, shards)
	} else {
		pr.shardGrants = pr.shardGrants[:shards]
	}
	pr.shardMsgs = reuse.Grown(pr.shardMsgs, shards)
	for s := 0; s < shards; s++ {
		pr.shardMsgs[s] = 0
		// Every move grants a token away, and each vertex holds at most
		// one token at a time, so tokens-in-shard is a good starting
		// capacity for the shard's grant log.
		tokens := 0
		for v := bounds[s]; v < bounds[s+1]; v++ {
			if pr.fi.token[v] {
				tokens++
			}
		}
		if g := pr.shardGrants[s]; cap(g) >= tokens {
			pr.shardGrants[s] = g[:0]
		} else {
			pr.shardGrants[s] = make([]int64, 0, tokens)
		}
	}
}

// StepShard implements local.FlatProgram; see ProposalMachine.Step for the
// protocol this mirrors.
func (pr *flatProposal) StepShard(round, shard int, verts []int32, recv, send []local.Word, halted []bool) {
	csr := pr.fi.csr
	row, rev := csr.Row, csr.Rev
	aflags := pr.aflags
	grants := pr.shardGrants[shard]
	var delivered int64
	for _, v32 := range verts {
		v := int(v32)
		a0, a1 := int(row[v]), int(row[v+1])
		vs := pr.vstate[v]
		ring := (vs & vEvMask) >> vEvShift
		w := (vs & vWaitMask) >> vWaitShift
		if w > 0 {
			w--
		}
		occ := vs&vOcc != 0
		prevOcc := occ
		cnt := pr.counters[v]
		gotGrant := false
		portDied := false
		reqFirst, reqSeen := -1, 0
		for i := a0; i < a1; i++ {
			msg := recv[i]
			if msg == 0 {
				continue
			}
			delivered++
			f := aflags[i]
			switch msg {
			case fAnnounceFree, fAnnounceOcc:
				if f&aParent == 0 {
					panic(fmt.Sprintf("core: vertex %d got an announcement from child arc %d", v, i))
				}
				if f&aDead != 0 {
					break // stale announcement on a consumed port; occupancy is moot
				}
				if msg == fAnnounceOcc {
					if f&aPOcc == 0 {
						aflags[i] = f | aPOcc
						cnt += cntOcc
					}
				} else if f&aPOcc != 0 {
					aflags[i] = f &^ aPOcc
					cnt -= cntOcc
				}
			case fLeaveFree, fLeaveOcc:
				if f&aDead == 0 {
					if f&aParent != 0 {
						cnt--
						if f&aPOcc != 0 {
							cnt -= cntOcc
						}
					} else {
						cnt -= cntChild
					}
					aflags[i] = (f | aDead) &^ aPOcc
					portDied = true
				}
			case fGrant:
				if occ {
					panic(fmt.Sprintf("core: vertex %d received a second token in round %d", v, round))
				}
				occ = true
				gotGrant = true
				w = 0
				if f&aDead == 0 {
					cnt--
					if f&aPOcc != 0 {
						cnt -= cntOcc
					}
					aflags[i] = (f | aDead) &^ aPOcc
					portDied = true
				}
			case fRequest:
				if reqFirst < 0 {
					reqFirst = i
				}
				reqSeen++
			default:
				panic(fmt.Sprintf("core: vertex %d got unexpected word %d", v, msg))
			}
		}

		// Grant: only a token held since the previous round can be granted
		// (a token that arrived this round was absent when the requests
		// were aimed); see ProposalMachine's heldSinceLastRound.
		grantArc := -1
		if reqSeen > 0 && occ && !gotGrant {
			if pr.tie == TieFirstPort || reqSeen == 1 {
				grantArc = reqFirst
			} else {
				state := pr.rngs[v]
				n := 0
				for i := reqFirst; i < a1; i++ {
					if recv[i] == fRequest {
						n++
						var pick int
						state, pick = SplitMixIntn(state, n)
						if pick == 0 {
							grantArc = i
						}
						if n == reqSeen {
							break
						}
					}
				}
				pr.rngs[v] = state
			}
		}
		if grantArc >= 0 {
			occ = false
			if aflags[grantArc]&aDead == 0 {
				cnt -= cntChild
				aflags[grantArc] |= aDead
			}
			grants = append(grants, int64(grantArc)<<32|int64(round))
		}

		// Request: unoccupied, nothing in flight, and some live parent
		// announced a token (the occPar counter tracks exactly the
		// eligible set).
		reqArc := -1
		occPar := cnt >> (2 * cntBits)
		if !occ && w == 0 && occPar > 0 {
			const eligibleMask = aParent | aDead | aPOcc
			const eligible = aParent | aPOcc
			if pr.tie == TieFirstPort {
				for i := a0; i < a1; i++ {
					if aflags[i]&eligibleMask == eligible {
						reqArc = i
						break
					}
				}
			} else {
				state := pr.rngs[v]
				n := 0
				for i := a0; i < a1; i++ {
					if aflags[i]&eligibleMask == eligible {
						n++
						var pick int
						state, pick = SplitMixIntn(state, n)
						if pick == 0 {
							reqArc = i
						}
						if uint64(n) == occPar {
							break
						}
					}
				}
				pr.rngs[v] = state
			}
			w = 2
			pr.active[v]++
		}

		// Termination condition of Section 4.1, then the outbox. The
		// outbox is a function of (occ, halt, grantArc, reqArc, dead
		// ports). A "special" round (any of those changed) resets the
		// unchanged counter to -1: the event's words appear this round and
		// disappear the next, so two writes must happen before skipping is
		// sound again. unchanged >= 2 means three consecutive event-free
		// rounds, hence outbox(r) == outbox(r-2) == what the double buffer
		// already holds, and the stores are skipped.
		livePar := cnt & cntMask
		liveChild := (cnt >> cntBits) & cntMask
		halt := (occ && liveChild == 0) || (!occ && livePar == 0 && w == 0)
		changed := grantArc >= 0 || reqArc >= 0 || halt || occ != prevOcc || portDied
		un := int8((vs&vUnMask)>>vUnShift) - 1
		if changed {
			un = -1
		} else if un < 2 {
			un++
		}
		if un < 2 {
			if grantArc < 0 && reqArc < 0 && !halt {
				// Common case: only announcements (to live child ports).
				// When the child arcs form a prefix and the buffer's parent
				// slots are known zero (no event two rounds ago), the store
				// range shrinks to that prefix.
				hi := a1
				if ring&2 == 0 {
					if ce := pr.childEnd[v]; ce >= 0 {
						hi = int(ce)
					}
				}
				ann := fAnnounceFree
				if occ {
					ann = fAnnounceOcc
				}
				for i := a0; i < hi; i++ {
					var word local.Word
					if aflags[i]&(aDead|aParent) == 0 {
						word = ann
					}
					send[rev[i]] = word
				}
			} else {
				for i := a0; i < a1; i++ {
					var word local.Word
					switch {
					case i == grantArc:
						word = fGrant
					case aflags[i]&aDead != 0:
						// consumed or departed: nothing
					case halt:
						if occ {
							word = fLeaveOcc
						} else {
							word = fLeaveFree
						}
					case i == reqArc:
						word = fRequest
					case aflags[i]&aParent == 0:
						if occ {
							word = fAnnounceOcc
						} else {
							word = fAnnounceFree
						}
					}
					send[rev[i]] = word
				}
			}
		}

		ring = ring << 1 & 3
		if changed {
			ring |= 1
		}
		vs = ring<<vEvShift | uint8(un+1)<<vUnShift | w<<vWaitShift
		if occ {
			vs |= vOcc
		}
		pr.vstate[v] = vs
		pr.counters[v] = cnt
		if halt {
			halted[v] = true
		}
	}
	pr.shardGrants[shard] = grants
	pr.shardMsgs[shard] += delivered
}

func (pr *flatProposal) result(stats local.ShardedStats) *FlatResult {
	maxActive := 0
	for _, a := range pr.active {
		if int(a) > maxActive {
			maxActive = int(a)
		}
	}
	final := make([]bool, len(pr.vstate))
	for v, s := range pr.vstate {
		final[v] = s&vOcc != 0
	}
	csr := pr.fi.csr
	shardMoves := make([][]Move, len(pr.shardGrants))
	for s, g := range pr.shardGrants {
		ms := make([]Move, len(g))
		for k, packed := range g {
			arc := int(packed >> 32)
			ms[k] = Move{
				Edge:  int(csr.EID[arc]),
				From:  csr.Tail(arc),
				To:    int(csr.Col[arc]),
				Round: int(int32(packed)),
			}
		}
		shardMoves[s] = ms
	}
	return assembleFlatResult(pr.fi, stats, final, shardMoves, pr.shardMsgs, maxActive)
}

var _ local.FlatProgram = (*flatProposal)(nil)

// SolveProposalSharded runs the distributed proposal algorithm of
// Theorem 4.1 on the sharded flat engine. Under TieFirstPort the run is
// bit-identical to SolveProposal on the same game (same rounds, messages,
// moves, and final placement); under TieRandom the tie-break streams are
// engine-specific. Use FlatResult.Solution to verify the outcome. With
// opt.Session and opt.Workspace set, the engine and the program state are
// rebuilt in place across solves (see SolverWorkspace).
func SolveProposalSharded(fi *FlatInstance, opt ShardedSolveOptions) (*FlatResult, error) {
	pr := &flatProposal{}
	if opt.Workspace != nil {
		pr = &opt.Workspace.prop
	}
	pr.reset(fi, opt.Tie, opt.Seed, opt.Session)
	var stats local.ShardedStats
	var err error
	if opt.AutoResume > 0 {
		stats, err = runFlatRecovering(fi.csr, pr, opt, func() {
			pr.reset(fi, opt.Tie, opt.Seed, opt.Session)
		})
	} else {
		stats, err = runFlat(fi.csr, pr, opt)
	}
	if err != nil {
		return nil, err
	}
	return pr.result(stats), nil
}
