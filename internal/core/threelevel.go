package core

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/local"
)

// This file implements the specialized algorithm of Section 4.3
// (Theorem 4.7) for games on levels {0, 1, 2}: the middle layer drives all
// movement, and the analysis shows that a level-1 node loses one neighbor
// per handshake, giving O(Δ) rounds instead of the generic O(L·Δ²).
//
// Protocol, at single-communication-round granularity:
//
//   - level-2 nodes announce their occupancy downwards every round; upon
//     receiving requests they grant their token to exactly one requester
//     and immediately terminate (they are unoccupied and level 2 nodes
//     never re-acquire tokens); an initially unoccupied or childless
//     level-2 node terminates right away,
//   - unoccupied level-1 nodes request a token from an occupied parent
//     (two-round handshake, at most one request in flight); occupied
//     level-1 nodes propose their token to one live child (two-round
//     handshake, at most one proposal in flight),
//   - level-0 nodes accept exactly one of the proposals that reach them,
//     become occupied and terminate; a level-0 node with no live parents
//     left also terminates. Live level-0 nodes are therefore always
//     unoccupied, which is why level-1 proposers need no occupancy view of
//     the bottom layer,
//   - every termination says goodbye on all live ports (msgLeave), which
//     removes the node and its edges from the game.

type msgPropose struct{}
type msgAccept struct{}

// ThreeLevelMaxLevel is the largest Height (max level) the specialized
// solver accepts: levels {0, 1, 2}, the paper's "3-level" game.
const ThreeLevelMaxLevel = 2

// ThreeLevelMachine is the per-node state machine of the Theorem 4.7
// algorithm. The role is fixed by the node's level, which is part of the
// local input for this algorithm (the generic proposal algorithm does not
// need it; the specialized one does, as in the paper).
type ThreeLevelMachine struct {
	vertex   int
	level    int
	isParent []bool
	edgeID   []int
	tie      TieBreak
	rng      *rand.Rand

	occupied    bool
	portDead    []bool
	parentOcc   []bool
	waitGrant   int // level-1: in-flight request window
	waitAccept  int // level-1: in-flight proposal window
	proposedTo  int // port of the in-flight proposal, -1 if none
	requestedTo int // port of the in-flight request, -1 if none

	moves  []Move
	active int
}

// NewThreeLevelMachine builds the machine for vertex v of inst.
func NewThreeLevelMachine(inst *Instance, v int, tie TieBreak, seed int64) *ThreeLevelMachine {
	adj := inst.Graph().Adj(v)
	m := &ThreeLevelMachine{
		vertex:      v,
		level:       inst.Level(v),
		isParent:    make([]bool, len(adj)),
		edgeID:      make([]int, len(adj)),
		tie:         tie,
		occupied:    inst.Token(v),
		proposedTo:  -1,
		requestedTo: -1,
	}
	for p, a := range adj {
		m.isParent[p] = inst.IsParentArc(v, a)
		m.edgeID[p] = a.Edge
	}
	if tie == TieRandom {
		m.rng = rand.New(rand.NewSource(seed ^ int64(v)*0x9e3779b9))
	}
	return m
}

// Init implements local.Machine.
func (m *ThreeLevelMachine) Init(info local.NodeInfo) {
	m.portDead = make([]bool, info.Degree)
	m.parentOcc = make([]bool, info.Degree)
}

func (m *ThreeLevelMachine) pick(eligible []bool) int {
	return pickPort(eligible, m.tie, m.rng)
}

func (m *ThreeLevelMachine) liveCounts() (parents, children int) {
	for p, dead := range m.portDead {
		if dead {
			continue
		}
		if m.isParent[p] {
			parents++
		} else {
			children++
		}
	}
	return
}

// Step implements local.Machine.
func (m *ThreeLevelMachine) Step(round int, in []local.Payload, out []local.Payload) bool {
	switch m.level {
	case 0:
		return m.stepBottom(round, in, out)
	case 1:
		return m.stepMiddle(round, in, out)
	case 2:
		return m.stepTop(round, in, out)
	}
	panic(fmt.Sprintf("core: three-level machine on level %d", m.level))
}

// stepTop: level-2 behaviour.
func (m *ThreeLevelMachine) stepTop(round int, in []local.Payload, out []local.Payload) bool {
	var requests []bool
	for p, raw := range in {
		if raw == nil {
			continue
		}
		switch raw.(type) {
		case msgLeave:
			m.portDead[p] = true
		case msgRequest:
			if requests == nil {
				requests = make([]bool, len(in))
			}
			requests[p] = !m.portDead[p]
		default:
			panic(fmt.Sprintf("core: level-2 vertex %d got unexpected payload %T", m.vertex, raw))
		}
	}
	grantPort := -1
	if m.occupied && requests != nil {
		grantPort = m.pick(requests)
	}
	if grantPort >= 0 {
		m.occupied = false
		m.portDead[grantPort] = true
		m.moves = append(m.moves, Move{Edge: m.edgeID[grantPort], From: m.vertex, Round: round})
	}
	_, liveChildren := m.liveCounts()
	halt := !m.occupied || liveChildren == 0
	for p := range out {
		if m.portDead[p] && p != grantPort {
			continue
		}
		switch {
		case p == grantPort:
			out[p] = msgGrant{}
		case halt:
			out[p] = msgLeave{Occupied: m.occupied}
		default:
			out[p] = msgAnnounce{Occupied: m.occupied}
		}
	}
	return halt
}

// stepBottom: level-0 behaviour.
func (m *ThreeLevelMachine) stepBottom(round int, in []local.Payload, out []local.Payload) bool {
	var proposals []bool
	for p, raw := range in {
		if raw == nil {
			continue
		}
		switch raw.(type) {
		case msgLeave:
			m.portDead[p] = true
		case msgPropose:
			if proposals == nil {
				proposals = make([]bool, len(in))
			}
			proposals[p] = !m.portDead[p]
		default:
			panic(fmt.Sprintf("core: level-0 vertex %d got unexpected payload %T", m.vertex, raw))
		}
	}
	acceptPort := -1
	if !m.occupied && proposals != nil {
		acceptPort = m.pick(proposals)
	}
	if acceptPort >= 0 {
		m.occupied = true
		m.portDead[acceptPort] = true
	}
	liveParents, _ := m.liveCounts()
	halt := m.occupied || liveParents == 0
	for p := range out {
		if m.portDead[p] && p != acceptPort {
			continue
		}
		switch {
		case p == acceptPort:
			out[p] = msgAccept{}
		case halt:
			out[p] = msgLeave{Occupied: m.occupied}
		}
	}
	return halt
}

// stepMiddle: level-1 behaviour, alternating between pulling a token from
// above and pushing it below.
func (m *ThreeLevelMachine) stepMiddle(round int, in []local.Payload, out []local.Payload) bool {
	if m.waitGrant > 0 {
		m.waitGrant--
	}
	if m.waitAccept > 0 {
		m.waitAccept--
	}
	for p, raw := range in {
		if raw == nil {
			continue
		}
		switch msg := raw.(type) {
		case msgLeave:
			m.portDead[p] = true
			m.parentOcc[p] = false
		case msgAnnounce:
			if !m.isParent[p] {
				panic(fmt.Sprintf("core: level-1 vertex %d got an announcement from below", m.vertex))
			}
			m.parentOcc[p] = msg.Occupied
		case msgGrant:
			if m.occupied {
				panic(fmt.Sprintf("core: level-1 vertex %d received a second token", m.vertex))
			}
			m.occupied = true
			m.portDead[p] = true
			m.parentOcc[p] = false
			m.waitGrant = 0
			m.requestedTo = -1
		case msgAccept:
			if p != m.proposedTo {
				panic(fmt.Sprintf("core: level-1 vertex %d got an accept it never asked for", m.vertex))
			}
			m.occupied = false
			m.portDead[p] = true
			m.moves = append(m.moves, Move{Edge: m.edgeID[p], From: m.vertex, Round: round})
			m.waitAccept = 0
			m.proposedTo = -1
		default:
			panic(fmt.Sprintf("core: level-1 vertex %d got unexpected payload %T", m.vertex, raw))
		}
	}
	// Expire resolved handshakes: a dead port or an elapsed window frees
	// the node for its next attempt.
	if m.requestedTo >= 0 && (m.portDead[m.requestedTo] || m.waitGrant == 0) {
		m.requestedTo = -1
	}
	if m.proposedTo >= 0 && (m.portDead[m.proposedTo] || m.waitAccept == 0) {
		m.proposedTo = -1
	}

	requestPort, proposePort := -1, -1
	if !m.occupied && m.requestedTo < 0 {
		eligible := make([]bool, len(in))
		any := false
		for p := range eligible {
			if m.isParent[p] && !m.portDead[p] && m.parentOcc[p] {
				eligible[p] = true
				any = true
			}
		}
		if any {
			requestPort = m.pick(eligible)
			m.requestedTo = requestPort
			m.waitGrant = 2
			m.active++
		}
	}
	if m.occupied && m.proposedTo < 0 {
		eligible := make([]bool, len(in))
		any := false
		for p := range eligible {
			if !m.isParent[p] && !m.portDead[p] {
				eligible[p] = true
				any = true
			}
		}
		if any {
			proposePort = m.pick(eligible)
			m.proposedTo = proposePort
			m.waitAccept = 2
		}
	}

	liveParents, liveChildren := m.liveCounts()
	halt := (m.occupied && liveChildren == 0) ||
		(!m.occupied && liveParents == 0 && m.requestedTo < 0)
	for p := range out {
		if m.portDead[p] {
			continue
		}
		switch {
		case halt:
			out[p] = msgLeave{Occupied: m.occupied}
		case p == requestPort:
			out[p] = msgRequest{}
		case p == proposePort:
			out[p] = msgPropose{}
		}
	}
	return halt
}

// Occupied reports whether the node holds a token (valid after the run).
func (m *ThreeLevelMachine) Occupied() bool { return m.occupied }

// Moves returns the passes this node performed (To filled in by the
// harness).
func (m *ThreeLevelMachine) Moves() []Move { return m.moves }

// ActiveRounds returns the number of pull attempts, the analogue of
// Lemma 4.4's quantity for the middle layer.
func (m *ThreeLevelMachine) ActiveRounds() int { return m.active }

// SolveThreeLevel runs the Theorem 4.7 algorithm. It returns an error if
// the instance has height greater than ThreeLevelMaxLevel.
func SolveThreeLevel(inst *Instance, opt SolveOptions) (*Solution, DistStats, error) {
	if h := inst.Height(); h > ThreeLevelMaxLevel {
		return nil, DistStats{}, fmt.Errorf("core: three-level solver got height %d > %d", h, ThreeLevelMaxLevel)
	}
	machines := make([]*ThreeLevelMachine, inst.N())
	nw := local.NewNetwork(inst.Graph(), func(v int) local.Machine {
		machines[v] = NewThreeLevelMachine(inst, v, opt.Tie, opt.Seed)
		return machines[v]
	})
	stats, err := nw.Run(local.Options{MaxRounds: opt.MaxRounds, Workers: opt.Workers, MeasureBits: opt.MeasureBits})
	if err != nil {
		return nil, DistStats{}, err
	}
	return assembleSolution(inst, stats, func(v int) ([]Move, bool, int) {
		m := machines[v]
		return m.Moves(), m.Occupied(), m.ActiveRounds()
	})
}

var _ local.Machine = (*ThreeLevelMachine)(nil)
