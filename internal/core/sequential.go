package core

import (
	"math/rand"
)

// SequentialPolicy selects which legal move a centralized sequential
// solver performs next. The paper's trivial algorithm ("repeatedly pick
// any token that can be moved downwards and move it by one step") leaves
// the choice open; policies model different adversaries/schedulers.
type SequentialPolicy int

const (
	// PolicyFirst always performs the first legal move in deterministic
	// (vertex, port) order.
	PolicyFirst SequentialPolicy = iota
	// PolicyRandom performs a uniformly random legal move.
	PolicyRandom
	// PolicyHighestFirst prefers tokens on the highest level, modelling a
	// top-down cascade.
	PolicyHighestFirst
	// PolicyLowestFirst prefers tokens on the lowest level that can still
	// move, which empties the bottom layers early and tends to maximize
	// the number of moves.
	PolicyLowestFirst
)

// SolveSequential plays the game to completion with a centralized
// sequential solver and returns a verified-shape Solution (Rounds = 0;
// Move.Round carries the step index). rng is only consulted by
// PolicyRandom and may be nil otherwise.
func SolveSequential(inst *Instance, policy SequentialPolicy, rng *rand.Rand) *Solution {
	st := NewState(inst)
	var log []Move
	for step := 0; ; step++ {
		moves := st.MovableTokens()
		if len(moves) == 0 {
			break
		}
		var m Move
		switch policy {
		case PolicyFirst:
			m = moves[0]
		case PolicyRandom:
			m = moves[rng.Intn(len(moves))]
		case PolicyHighestFirst:
			m = moves[0]
			for _, c := range moves[1:] {
				if inst.Level(c.From) > inst.Level(m.From) {
					m = c
				}
			}
		case PolicyLowestFirst:
			m = moves[0]
			for _, c := range moves[1:] {
				if inst.Level(c.From) < inst.Level(m.From) {
					m = c
				}
			}
		default:
			panic("core: unknown sequential policy")
		}
		m.Round = step
		if err := st.Apply(m.Edge, m.From, m.To); err != nil {
			panic("core: sequential solver chose an illegal move: " + err.Error())
		}
		log = append(log, m)
	}
	return &Solution{
		Inst:     inst,
		Moves:    log,
		Final:    st.TokenVector(),
		Consumed: st.ConsumedVector(),
		Rounds:   0,
	}
}

// SolveGreedyParallel plays the game with a centralized but maximally
// parallel scheduler: in every superstep it applies a maximal set of
// compatible moves (vertex-disjoint sources and destinations, chosen
// greedily in deterministic order, or in seeded random order when rng is
// non-nil). It gives a machine-checkable point of comparison between the
// paper's distributed round counts and an idealized parallel schedule.
func SolveGreedyParallel(inst *Instance, rng *rand.Rand) *Solution {
	st := NewState(inst)
	var log []Move
	for step := 1; ; step++ {
		moves := st.MovableTokens()
		if len(moves) == 0 {
			break
		}
		if rng != nil {
			moves = shuffledCopy(moves, rng)
		}
		usedSrc := make(map[int]bool)
		usedDst := make(map[int]bool)
		applied := 0
		for _, m := range moves {
			if usedSrc[m.From] || usedDst[m.To] || usedSrc[m.To] || usedDst[m.From] {
				continue
			}
			if st.CanMove(m.Edge, m.From, m.To) != nil {
				continue // invalidated by an earlier move this superstep
			}
			m.Round = step
			if err := st.Apply(m.Edge, m.From, m.To); err != nil {
				panic("core: parallel scheduler chose an illegal move: " + err.Error())
			}
			usedSrc[m.From] = true
			usedDst[m.To] = true
			log = append(log, m)
			applied++
		}
		if applied == 0 {
			panic("core: parallel scheduler made no progress with moves available")
		}
	}
	return &Solution{
		Inst:     inst,
		Moves:    log,
		Final:    st.TokenVector(),
		Consumed: st.ConsumedVector(),
		Rounds:   0,
	}
}
