package core

import (
	"fmt"
	"math/rand"
	"sort"

	"tokendrop/internal/local"
)

// This file implements the proposal algorithm of Section 4.1 (Theorem 4.1)
// as a LOCAL-model state machine. The paper's presentation merges two
// communication rounds into one game round; here the protocol is written
// out at single-communication-round granularity:
//
//   - every awake node tells its children each round whether it holds a
//     token (msgAnnounce),
//   - an unoccupied node with an occupied parent sends msgRequest to one
//     such parent and then waits out the two-round round trip,
//   - an occupied node that receives requests grants its token to exactly
//     one simultaneous requester (msgGrant), consuming that edge,
//   - a node that satisfies a termination condition of Section 4.1
//     (occupied with no live children, or unoccupied with no live parents)
//     says goodbye on every live port (msgLeave) and halts, which removes
//     it — and its edges — from the game.
//
// The handshake is race-free by construction: a request is only ever sent
// to a parent that announced "occupied" one round earlier, a parent grants
// at most one token per round, and a node has at most one request in
// flight, so no node can ever receive two tokens or pass a token it does
// not hold. These claims are enforced as panics (they are invariants, not
// input errors) and exercised heavily by the tests.

type msgAnnounce struct{ Occupied bool }
type msgRequest struct{}
type msgGrant struct{}
type msgLeave struct{ Occupied bool }

// TieBreak selects among several eligible ports (which parent to request
// from, which child to grant to). The paper allows arbitrary choices;
// varying the rule is how experiments probe robustness of the bounds.
type TieBreak int

const (
	// TieFirstPort deterministically picks the lowest eligible port.
	TieFirstPort TieBreak = iota
	// TieRandom picks uniformly at random with a per-node seeded RNG.
	TieRandom
)

// ProposalMachine is the per-node state machine of the proposal algorithm.
type ProposalMachine struct {
	// immutable after construction
	vertex   int    // vertex index in the instance (not the LOCAL ID)
	isParent []bool // per port: neighbor is one level above
	edgeID   []int  // per port: underlying edge identifier
	tie      TieBreak
	rng      *rand.Rand

	// live state
	occupied  bool
	portDead  []bool // consumed, or neighbor left
	parentOcc []bool // last announced occupancy per parent port
	waiting   int    // rounds until an in-flight request resolves

	// instrumentation and output
	moves            []Move // grants performed by this node (From = this vertex)
	receivedRound    []int  // rounds at which a token arrived (via port)
	activeUnoccupied int    // rounds spent active & unoccupied (Lemma 4.4)
}

// NewProposalMachine builds the machine for a vertex of inst. The local
// inputs — which incident edges lead to parents, and the initial token —
// are exactly what the problem definition hands each node. seed feeds the
// per-node RNG for TieRandom.
func NewProposalMachine(inst *Instance, v int, tie TieBreak, seed int64) *ProposalMachine {
	adj := inst.Graph().Adj(v)
	m := &ProposalMachine{
		vertex:   v,
		isParent: make([]bool, len(adj)),
		edgeID:   make([]int, len(adj)),
		tie:      tie,
		occupied: inst.Token(v),
	}
	for p, a := range adj {
		m.isParent[p] = inst.IsParentArc(v, a)
		m.edgeID[p] = a.Edge
	}
	if tie == TieRandom {
		m.rng = rand.New(rand.NewSource(seed ^ int64(v)*0x9e3779b9))
	}
	return m
}

// NewEmbeddedProposalMachine builds a proposal machine for use inside a
// composite protocol (the fixed-schedule stable-orientation machine runs
// one per phase): the caller supplies the per-port local inputs directly
// instead of a game instance. Ports with alive[p] == false take no part in
// the game (they correspond to edges outside the phase's badness-1
// subgraph) and are treated as already removed. The machine is initialized
// and ready to Step; the caller owns halting bookkeeping.
func NewEmbeddedProposalMachine(vertex int, isParent, alive []bool, edgeID []int, token bool, tie TieBreak, rng *rand.Rand) *ProposalMachine {
	if len(isParent) != len(alive) || len(alive) != len(edgeID) {
		panic("core: embedded machine port slices disagree")
	}
	m := &ProposalMachine{
		vertex:    vertex,
		isParent:  append([]bool(nil), isParent...),
		edgeID:    append([]int(nil), edgeID...),
		tie:       tie,
		rng:       rng,
		occupied:  token,
		portDead:  make([]bool, len(alive)),
		parentOcc: make([]bool, len(alive)),
	}
	for p, a := range alive {
		m.portDead[p] = !a
	}
	return m
}

// Init implements local.Machine.
func (m *ProposalMachine) Init(info local.NodeInfo) {
	m.portDead = make([]bool, info.Degree)
	m.parentOcc = make([]bool, info.Degree)
}

// pickPort returns one index of the true entries of eligible per the
// tie-breaking rule, or -1 if none is true. rng is consulted only for
// TieRandom.
func pickPort(eligible []bool, tie TieBreak, rng *rand.Rand) int {
	switch tie {
	case TieFirstPort:
		for p, ok := range eligible {
			if ok {
				return p
			}
		}
		return -1
	case TieRandom:
		count := 0
		choice := -1
		for p, ok := range eligible {
			if !ok {
				continue
			}
			count++
			// Reservoir sampling over eligible ports.
			if rng.Intn(count) == 0 {
				choice = p
			}
		}
		return choice
	}
	panic("core: unknown tie-break rule")
}

func (m *ProposalMachine) pick(eligible []bool) int {
	return pickPort(eligible, m.tie, m.rng)
}

// Step implements local.Machine; see the protocol description above.
func (m *ProposalMachine) Step(round int, in []local.Payload, out []local.Payload) bool {
	if m.waiting > 0 {
		m.waiting--
	}

	// Process the inbox: leaves first (they kill ports), then grants
	// (token arrivals), then requests; announcements just refresh state.
	var requests []bool
	for p, raw := range in {
		if raw == nil {
			continue
		}
		switch msg := raw.(type) {
		case msgLeave:
			m.portDead[p] = true
			m.parentOcc[p] = false
		case msgAnnounce:
			if !m.isParent[p] {
				panic(fmt.Sprintf("core: vertex %d got an announcement from child port %d", m.vertex, p))
			}
			m.parentOcc[p] = msg.Occupied
		case msgGrant:
			if m.occupied {
				panic(fmt.Sprintf("core: vertex %d received a second token on port %d in round %d", m.vertex, p, round))
			}
			m.occupied = true
			m.waiting = 0
			m.portDead[p] = true // the edge is consumed
			m.parentOcc[p] = false
			m.receivedRound = append(m.receivedRound, round)
		case msgRequest:
			if requests == nil {
				requests = make([]bool, len(in))
			}
			requests[p] = true
		default:
			panic(fmt.Sprintf("core: vertex %d got unexpected payload %T", m.vertex, raw))
		}
	}

	// Grant: only a token held since the previous round can be granted —
	// requests target nodes that announced "occupied" one round ago, and a
	// token that arrived this very round was necessarily absent then.
	// m.receivedRound's last entry detects that case.
	grantPort := -1
	heldSinceLastRound := m.occupied &&
		(len(m.receivedRound) == 0 || m.receivedRound[len(m.receivedRound)-1] < round)
	if requests != nil {
		if heldSinceLastRound {
			grantPort = m.pick(requests)
		}
		// Otherwise the requests are stale (the token left within the last
		// two rounds); the requesters observe our "unoccupied" announce.
	}
	if grantPort >= 0 {
		m.occupied = false
		m.portDead[grantPort] = true
		m.moves = append(m.moves, Move{Edge: m.edgeID[grantPort], From: m.vertex, Round: round})
	}

	// Request: unoccupied, nothing in flight, and some live parent
	// announced a token.
	requestPort := -1
	if !m.occupied && m.waiting == 0 {
		eligible := make([]bool, len(in))
		any := false
		for p := range eligible {
			if m.isParent[p] && !m.portDead[p] && m.parentOcc[p] {
				eligible[p] = true
				any = true
			}
		}
		if any {
			requestPort = m.pick(eligible)
			m.waiting = 2
			m.activeUnoccupied++
		}
	}

	// Termination check (Section 4.1): "If a node u is occupied and has no
	// children or is unoccupied and has no parents, then u terminates."
	// Live ports only; dead ports are removed from the game.
	liveParents, liveChildren := 0, 0
	for p, dead := range m.portDead {
		if dead {
			continue
		}
		if m.isParent[p] {
			liveParents++
		} else {
			liveChildren++
		}
	}
	halt := (m.occupied && liveChildren == 0) || (!m.occupied && liveParents == 0 && m.waiting == 0)

	// Outbox. Announcements go to children every round; the grant replaces
	// the announcement on its port (a grant implies "now unoccupied").
	for p := range out {
		if m.portDead[p] && p != grantPort {
			continue
		}
		switch {
		case halt:
			out[p] = msgLeave{Occupied: m.occupied}
		case p == grantPort:
			out[p] = msgGrant{}
		case p == requestPort:
			out[p] = msgRequest{}
		case !m.isParent[p]:
			out[p] = msgAnnounce{Occupied: m.occupied}
		}
	}
	if halt && grantPort >= 0 {
		// A node can grant its token away and simultaneously discover it
		// can leave; the grant must still be sent. Overwrite the leave on
		// that port with the grant — a grant implies the edge dies anyway.
		out[grantPort] = msgGrant{}
	}
	return halt
}

// Occupied reports whether the node holds a token (valid after the run).
func (m *ProposalMachine) Occupied() bool { return m.occupied }

// Moves returns the grants this node performed, with To filled in by the
// harness (the machine only knows ports; the harness knows the graph).
func (m *ProposalMachine) Moves() []Move { return m.moves }

// ActiveUnoccupiedRounds returns how many rounds the node spent requesting
// while active and unoccupied — the quantity Lemma 4.4 bounds by O(Δ²).
func (m *ProposalMachine) ActiveUnoccupiedRounds() int { return m.activeUnoccupied }

// SolveOptions configure the distributed solvers.
type SolveOptions struct {
	Tie       TieBreak
	Seed      int64
	MaxRounds int
	Workers   int
	// MeasureBits tracks the largest message size delivered (the CONGEST
	// compatibility check of experiment E21).
	MeasureBits bool
}

// DistStats reports distributed-run measurements beyond the Solution.
type DistStats struct {
	Rounds              int   // communication rounds until all nodes halted
	Messages            int64 // total messages delivered
	MaxActiveUnoccupied int   // max over nodes of Lemma 4.4's quantity
	MaxMessageBits      int   // largest delivered payload (with MeasureBits)
}

// SolveProposal runs the distributed proposal algorithm on inst and
// returns the verified-shape Solution together with run statistics.
func SolveProposal(inst *Instance, opt SolveOptions) (*Solution, DistStats, error) {
	machines := make([]*ProposalMachine, inst.N())
	nw := local.NewNetwork(inst.Graph(), func(v int) local.Machine {
		machines[v] = NewProposalMachine(inst, v, opt.Tie, opt.Seed)
		return machines[v]
	})
	stats, err := nw.Run(local.Options{MaxRounds: opt.MaxRounds, Workers: opt.Workers, MeasureBits: opt.MeasureBits})
	if err != nil {
		return nil, DistStats{}, err
	}
	return assembleSolution(inst, stats, func(v int) ([]Move, bool, int) {
		m := machines[v]
		return m.Moves(), m.Occupied(), m.ActiveUnoccupiedRounds()
	})
}

// assembleSolution collects per-node move logs into a Solution, resolving
// each grant's destination via the edge table, and computes DistStats.
func assembleSolution(inst *Instance, stats local.Stats, get func(v int) ([]Move, bool, int)) (*Solution, DistStats, error) {
	var all []Move
	final := make([]bool, inst.N())
	maxActive := 0
	for v := 0; v < inst.N(); v++ {
		moves, occ, active := get(v)
		final[v] = occ
		if active > maxActive {
			maxActive = active
		}
		for _, m := range moves {
			e := inst.Graph().Edge(m.Edge)
			m.To = e.Other(m.From)
			all = append(all, m)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Round < all[j].Round })
	consumed := make([]bool, inst.Graph().M())
	for _, m := range all {
		consumed[m.Edge] = true
	}
	sol := &Solution{
		Inst:     inst,
		Moves:    all,
		Final:    final,
		Consumed: consumed,
		Rounds:   stats.Rounds,
	}
	ds := DistStats{
		Rounds:              stats.Rounds,
		Messages:            stats.Messages,
		MaxActiveUnoccupied: maxActive,
		MaxMessageBits:      stats.MaxMessageBits,
	}
	return sol, ds, nil
}

var _ local.Machine = (*ProposalMachine)(nil)

// IsGameGrant reports whether a payload produced or consumed by a
// ProposalMachine is a token grant — composite protocols embedding the
// game use this to observe token transfers on their ports.
func IsGameGrant(p local.Payload) bool {
	_, ok := p.(msgGrant)
	return ok
}

// IsGamePayload reports whether a payload belongs to the game protocol's
// message set (announce, request, grant, leave); composite machines use it
// to route mixed inboxes.
func IsGamePayload(p local.Payload) bool {
	switch p.(type) {
	case msgAnnounce, msgRequest, msgGrant, msgLeave:
		return true
	}
	return false
}
