package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tokendrop/internal/graph"
)

func solveThreeLevelAndVerify(t *testing.T, inst *Instance, opt SolveOptions) (*Solution, DistStats) {
	t.Helper()
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 100000
	}
	sol, stats, err := SolveThreeLevel(inst, opt)
	if err != nil {
		t.Fatalf("three-level run failed: %v", err)
	}
	if err := Verify(sol); err != nil {
		t.Fatalf("three-level solution invalid: %v", err)
	}
	return sol, stats
}

func TestThreeLevelRejectsTallGames(t *testing.T) {
	if _, _, err := SolveThreeLevel(Chain(5), SolveOptions{}); err == nil {
		t.Fatal("height-5 game accepted")
	}
}

func TestThreeLevelOnSmallChain(t *testing.T) {
	sol, _ := solveThreeLevelAndVerify(t, Chain(2), SolveOptions{})
	if len(sol.Moves) != 2 {
		t.Fatalf("moves = %d, want 2", len(sol.Moves))
	}
}

func TestThreeLevelRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 20; i++ {
		outer := 3 + rng.Intn(10)
		mid := 3 + rng.Intn(10)
		deg := 1 + rng.Intn(min(outer, mid))
		inst := ThreeLevelRandom(outer, mid, deg, rng.Float64(), rng)
		for _, tie := range []TieBreak{TieFirstPort, TieRandom} {
			solveThreeLevelAndVerify(t, inst, SolveOptions{Tie: tie, Seed: int64(i)})
		}
	}
}

func TestThreeLevelAgreesWithGenericOnOutcomeQuality(t *testing.T) {
	// Both algorithms must reach stuck configurations of the same
	// instance; the final configurations may differ but both verify, and
	// the generic algorithm must also solve 3-level games.
	rng := rand.New(rand.NewSource(67))
	inst := ThreeLevelRandom(8, 8, 3, 0.3, rng)
	solveThreeLevelAndVerify(t, inst, SolveOptions{})
	solveAndVerify(t, inst, SolveOptions{})
}

func TestTheorem47LinearRounds(t *testing.T) {
	// Theorem 4.7: O(Δ) rounds for 3-level games. Check rounds ≤ c·Δ + c'
	// while the generic algorithm is allowed up to O(Δ²).
	rng := rand.New(rand.NewSource(71))
	for _, deg := range []int{2, 4, 8, 12} {
		inst := ThreeLevelRandom(3*deg, 3*deg, deg, 0.5, rng)
		delta := inst.MaxDegree()
		_, stats := solveThreeLevelAndVerify(t, inst, SolveOptions{})
		bound := 10*delta + 30
		if stats.Rounds > bound {
			t.Fatalf("Δ=%d: %d rounds > linear bound %d", delta, stats.Rounds, bound)
		}
	}
}

func TestThreeLevelHeight2Matching(t *testing.T) {
	// The matching reduction also runs through the specialized solver
	// (height-2 games are a special case of 3-level games with an empty
	// middle... here: levels {0,1} means level-1 nodes act as middle
	// nodes with no parents).
	rng := rand.New(rand.NewSource(73))
	bg := graph.RandomBipartite(8, 8, 3, rng)
	inst := FromBipartite(bg, 8)
	sol, _ := solveThreeLevelAndVerify(t, inst, SolveOptions{})
	if len(sol.Moves) == 0 {
		t.Fatal("no tokens moved")
	}
}

func TestThreeLevelDeterminismAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	inst := ThreeLevelRandom(10, 10, 4, 0.4, rng)
	run := func(workers int) *Solution {
		sol, _, err := SolveThreeLevel(inst, SolveOptions{MaxRounds: 100000, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	a, b := run(1), run(8)
	if len(a.Moves) != len(b.Moves) {
		t.Fatal("nondeterministic move count")
	}
	for i := range a.Moves {
		if a.Moves[i] != b.Moves[i] {
			t.Fatal("nondeterministic moves")
		}
	}
}

// Property: the specialized solver produces verifying solutions on random
// 3-level instances.
func TestThreeLevelProperty(t *testing.T) {
	check := func(seed int64, oRaw, mRaw, dRaw uint8, midProb float32) bool {
		rng := rand.New(rand.NewSource(seed))
		outer := int(oRaw%8) + 2
		mid := int(mRaw%8) + 2
		deg := int(dRaw)%min(outer, mid) + 1
		p := float64(midProb)
		if p < 0 || p > 1 {
			p = 0.25
		}
		inst := ThreeLevelRandom(outer, mid, deg, p, rng)
		sol, _, err := SolveThreeLevel(inst, SolveOptions{Tie: TieRandom, Seed: seed, MaxRounds: 100000})
		if err != nil {
			return false
		}
		return Verify(sol) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
