package core

import (
	"fmt"
	"sort"
)

// Move is one token movement: the token at From (a parent) drops to To
// (a child one level below) along Edge, consuming it. Round is the
// communication round (for distributed runs) or the step index (for
// sequential ones) in which the move happened; it orders the replay.
type Move struct {
	Edge     int
	From, To int
	Round    int
}

// Solution is the outcome of solving a token dropping instance: the
// chronological move log plus the final position it produces. Solutions
// are produced by the solvers and judged exclusively by Verify, which
// replays the log against the rules of Section 4.
type Solution struct {
	Inst     *Instance
	Moves    []Move
	Final    []bool // final token placement
	Consumed []bool // per-edge consumption
	Rounds   int    // communication rounds used (0 for sequential solvers)
}

// Traversal is the path ps = (v1, …, vd) a token followed from its origin
// v1 to its destination vd (Section 4). A token that never moved has a
// single-vertex traversal.
type Traversal struct {
	Path []int // vertices, strictly descending levels
}

// Origin returns the traversal's starting vertex.
func (t Traversal) Origin() int { return t.Path[0] }

// Destination returns the traversal's final vertex.
func (t Traversal) Destination() int { return t.Path[len(t.Path)-1] }

// Traversals reconstructs the per-token traversals from the move log, one
// per initial token in order of origin vertex, in O(moves·log + n). It
// replays the moves chronologically while tracking which token occupies
// each vertex — the only bookkeeping that stays correct when vertices are
// vacated and re-occupied by different tokens. It panics if the move log
// is not a legal play (run Verify when the log is untrusted; Verify
// replays through State first and reports errors instead).
func (s *Solution) Traversals() []Traversal {
	moves := append([]Move(nil), s.Moves...)
	sort.SliceStable(moves, func(i, j int) bool { return moves[i].Round < moves[j].Round })
	tokenAt := make([]int, s.Inst.N()) // vertex -> token index, -1 if empty
	for v := range tokenAt {
		tokenAt[v] = -1
	}
	var paths [][]int
	for v := 0; v < s.Inst.N(); v++ {
		if s.Inst.Token(v) {
			tokenAt[v] = len(paths)
			paths = append(paths, []int{v})
		}
	}
	for _, m := range moves {
		tk := tokenAt[m.From]
		if tk < 0 {
			panic(fmt.Sprintf("core: move %+v leaves an empty vertex", m))
		}
		if tokenAt[m.To] >= 0 {
			panic(fmt.Sprintf("core: move %+v lands on an occupied vertex", m))
		}
		tokenAt[m.From] = -1
		tokenAt[m.To] = tk
		paths[tk] = append(paths[tk], m.To)
	}
	out := make([]Traversal, len(paths))
	for i, p := range paths {
		out[i] = Traversal{Path: p}
	}
	return out
}

// Tail computes the tail of a traversal per Definition 4.3: the longest
// path (vd, …, vh) starting at the destination vd such that every vi with
// d ≤ i ≤ h-1 passed at least one token to a child during the game, and
// the last token vi passed went to vi+1. If the destination never passed a
// token, the tail is just (vd).
func (s *Solution) Tail(t Traversal) []int {
	// lastPass[v] = destination of the chronologically last move out of v,
	// or -1 if v never passed a token. A vertex passes at most one token
	// per round, so (Round, log order) breaks ties consistently.
	lastPass := make([]int, s.Inst.N())
	lastRound := make([]int, s.Inst.N())
	for i := range lastPass {
		lastPass[i] = -1
		lastRound[i] = -1
	}
	for _, m := range s.Moves {
		if m.Round >= lastRound[m.From] {
			lastRound[m.From] = m.Round
			lastPass[m.From] = m.To
		}
	}
	tail := []int{t.Destination()}
	cur := t.Destination()
	for lastPass[cur] >= 0 {
		cur = lastPass[cur]
		tail = append(tail, cur)
	}
	return tail
}

// ExtendedTraversal returns p*_s = (v1, …, vd, …, vh): the traversal
// followed by its tail (Definition 4.3), with the shared vertex vd not
// duplicated.
func (s *Solution) ExtendedTraversal(t Traversal) []int {
	tail := s.Tail(t)
	return append(append([]int(nil), t.Path...), tail[1:]...)
}

// String summarizes the solution.
func (s *Solution) String() string {
	return fmt.Sprintf("solution{tokens=%d moves=%d rounds=%d}",
		s.Inst.NumTokens(), len(s.Moves), s.Rounds)
}
