package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tokendrop/internal/graph"
)

func TestNewInstanceValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewInstance(g, []int{0, 1, 2}, []bool{false, true, true}); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	if _, err := NewInstance(g, []int{0, 2, 3}, make([]bool, 3)); err == nil {
		t.Fatal("non-adjacent levels accepted")
	}
	if _, err := NewInstance(g, []int{0, -1, 0}, make([]bool, 3)); err == nil {
		t.Fatal("negative level accepted")
	}
	if _, err := NewInstance(g, []int{0, 1}, make([]bool, 3)); err == nil {
		t.Fatal("short level slice accepted")
	}
	if _, err := NewInstance(g, []int{0, 1, 0}, make([]bool, 2)); err == nil {
		t.Fatal("short token slice accepted")
	}
}

func TestInstanceAccessors(t *testing.T) {
	inst := Chain(4)
	if inst.Height() != 4 {
		t.Fatalf("height = %d", inst.Height())
	}
	if inst.NumTokens() != 4 {
		t.Fatalf("tokens = %d", inst.NumTokens())
	}
	if inst.Level(2) != 2 || inst.Token(0) {
		t.Fatal("accessor values wrong")
	}
	if len(inst.Parents(0)) != 1 || len(inst.Children(0)) != 0 {
		t.Fatal("parent/children of bottom vertex")
	}
	if len(inst.Parents(4)) != 0 || len(inst.Children(4)) != 1 {
		t.Fatal("parent/children of top vertex")
	}
	if inst.MaxDegree() != 2 {
		t.Fatal("max degree of chain")
	}
}

func TestStateTransitions(t *testing.T) {
	inst := Chain(2) // 0 -1- 2, tokens at 1 and 2
	st := NewState(inst)
	e01, _ := inst.Graph().EdgeID(0, 1)
	e12, _ := inst.Graph().EdgeID(1, 2)

	if err := st.CanMove(e12, 2, 1); err == nil {
		t.Fatal("moving onto an occupied vertex allowed")
	}
	if err := st.Apply(e01, 1, 0); err != nil {
		t.Fatal(err)
	}
	if st.Token(1) || !st.Token(0) || !st.Consumed(e01) {
		t.Fatal("state after move")
	}
	if err := st.Apply(e01, 1, 0); err == nil {
		t.Fatal("reusing a consumed edge allowed")
	}
	if err := st.Apply(e12, 2, 1); err != nil {
		t.Fatal(err)
	}
	if !st.Stuck() {
		t.Fatal("fully cascaded chain should be stuck")
	}
	if st.Moves() != 2 {
		t.Fatalf("moves = %d", st.Moves())
	}
}

func TestStateRejectsUpwardAndDiagonalMoves(t *testing.T) {
	inst := Chain(2)
	st := NewState(inst)
	e12, _ := inst.Graph().EdgeID(1, 2)
	if err := st.CanMove(e12, 1, 2); err == nil {
		t.Fatal("upward move allowed")
	}
	e01, _ := inst.Graph().EdgeID(0, 1)
	if err := st.CanMove(e01, 2, 0); err == nil {
		t.Fatal("move with mismatched endpoints allowed")
	}
}

func TestSequentialPoliciesSolveAndVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	insts := []*Instance{
		Chain(6),
		Figure2(),
		RandomLayered(LayeredConfig{Levels: 4, Width: 6, ParentDeg: 2, TokenProb: 0.5, FreeBottom: true}, rng),
		Bottleneck(8, 2, rng),
	}
	for i, inst := range insts {
		for _, pol := range []SequentialPolicy{PolicyFirst, PolicyRandom, PolicyHighestFirst, PolicyLowestFirst} {
			sol := SolveSequential(inst, pol, rand.New(rand.NewSource(int64(i))))
			if err := Verify(sol); err != nil {
				t.Fatalf("instance %d policy %d: %v", i, pol, err)
			}
		}
	}
}

func TestGreedyParallelSolvesAndVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5; i++ {
		inst := RandomLayered(LayeredConfig{Levels: 5, Width: 8, ParentDeg: 3, TokenProb: 0.6, FreeBottom: true}, rng)
		sol := SolveGreedyParallel(inst, rand.New(rand.NewSource(int64(i))))
		if err := Verify(sol); err != nil {
			t.Fatal(err)
		}
		solDet := SolveGreedyParallel(inst, nil)
		if err := Verify(solDet); err != nil {
			t.Fatal(err)
		}
	}
}

func TestChainCascadeMoveCount(t *testing.T) {
	// In the chain, every token moves exactly one step down: L moves.
	const L = 9
	sol := SolveSequential(Chain(L), PolicyFirst, nil)
	if len(sol.Moves) != L {
		t.Fatalf("chain produced %d moves, want %d", len(sol.Moves), L)
	}
	if err := Verify(sol); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesBadSolutions(t *testing.T) {
	inst := Chain(2)
	good := SolveSequential(inst, PolicyFirst, nil)

	t.Run("truncated (not maximal)", func(t *testing.T) {
		bad := &Solution{Inst: inst, Moves: good.Moves[:1]}
		if err := Verify(bad); err == nil {
			t.Fatal("accepted a non-maximal solution")
		}
	})
	t.Run("duplicated edge", func(t *testing.T) {
		moves := append(append([]Move(nil), good.Moves...), good.Moves[0])
		bad := &Solution{Inst: inst, Moves: moves}
		if err := Verify(bad); err == nil {
			t.Fatal("accepted an edge reuse")
		}
	})
	t.Run("wrong final vector", func(t *testing.T) {
		final := append([]bool(nil), good.Final...)
		final[0] = !final[0]
		bad := &Solution{Inst: inst, Moves: good.Moves, Final: final}
		if err := Verify(bad); err == nil {
			t.Fatal("accepted a wrong final placement")
		}
	})
	t.Run("wrong consumed vector", func(t *testing.T) {
		consumed := append([]bool(nil), good.Consumed...)
		consumed[0] = !consumed[0]
		bad := &Solution{Inst: inst, Moves: good.Moves, Final: good.Final, Consumed: consumed}
		if err := Verify(bad); err == nil {
			t.Fatal("accepted a wrong consumption vector")
		}
	})
	t.Run("good is good", func(t *testing.T) {
		if err := Verify(good); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTraversalsOnChain(t *testing.T) {
	sol := SolveSequential(Chain(4), PolicyHighestFirst, nil)
	if err := Verify(sol); err != nil {
		t.Fatal(err)
	}
	trav := sol.Traversals()
	if len(trav) != 4 {
		t.Fatalf("%d traversals", len(trav))
	}
	for _, tr := range trav {
		if len(tr.Path) != 2 {
			t.Fatalf("chain traversal %v should have one hop", tr.Path)
		}
		if tr.Origin() != tr.Destination()+1 {
			t.Fatalf("chain traversal %v should drop one level", tr.Path)
		}
	}
}

func TestTraversalsReoccupiedVertex(t *testing.T) {
	// Token A moves 2->1->0; token B moves 3->2 into the vacated slot.
	// Requires a wide enough chain: use a path graph with levels 0..3,
	// tokens at 2 and 3.
	g := graph.Path(4)
	inst := MustInstance(g, []int{0, 1, 2, 3}, []bool{false, false, true, true})
	sol := SolveSequential(inst, PolicyLowestFirst, nil)
	if err := Verify(sol); err != nil {
		t.Fatal(err)
	}
	trav := sol.Traversals()
	if len(trav) != 2 {
		t.Fatal("two tokens, two traversals")
	}
	byOrigin := map[int]Traversal{}
	for _, tr := range trav {
		byOrigin[tr.Origin()] = tr
	}
	if d := byOrigin[2].Destination(); d != 0 {
		t.Fatalf("token from 2 ended at %d, want 0", d)
	}
	if d := byOrigin[3].Destination(); d != 2 {
		t.Fatalf("token from 3 ended at %d, want 2 (the vacated slot)", d)
	}
}

func TestTailsDefinition(t *testing.T) {
	// Same instance: the token from 3 stops at 2 because 2's edges below
	// were consumed by the first token. 2 passed its last (only) token to
	// 1, and 1 passed its last token to 0: the tail of the second
	// traversal is (2, 1, 0).
	g := graph.Path(4)
	inst := MustInstance(g, []int{0, 1, 2, 3}, []bool{false, false, true, true})
	sol := SolveSequential(inst, PolicyLowestFirst, nil)
	trav := sol.Traversals()
	byOrigin := map[int]Traversal{}
	for _, tr := range trav {
		byOrigin[tr.Origin()] = tr
	}
	tail := sol.Tail(byOrigin[3])
	want := []int{2, 1, 0}
	if len(tail) != len(want) {
		t.Fatalf("tail = %v, want %v", tail, want)
	}
	for i := range want {
		if tail[i] != want[i] {
			t.Fatalf("tail = %v, want %v", tail, want)
		}
	}
	ext := sol.ExtendedTraversal(byOrigin[3])
	wantExt := []int{3, 2, 1, 0}
	for i := range wantExt {
		if ext[i] != wantExt[i] {
			t.Fatalf("extended traversal = %v, want %v", ext, wantExt)
		}
	}
	// The first token's tail is just its destination (0 never passed).
	if tl := sol.Tail(byOrigin[2]); len(tl) != 1 || tl[0] != 0 {
		t.Fatalf("tail of settled token = %v", tl)
	}
}

func TestFigure2HasMultipleSolutions(t *testing.T) {
	inst := Figure2()
	a := SolveSequential(inst, PolicyFirst, nil)
	b := SolveSequential(inst, PolicyLowestFirst, nil)
	if err := Verify(a); err != nil {
		t.Fatal(err)
	}
	if err := Verify(b); err != nil {
		t.Fatal(err)
	}
	// The instance is interesting enough that policies disagree somewhere
	// (different final sets or different move logs).
	same := len(a.Moves) == len(b.Moves)
	if same {
		for i := range a.Moves {
			if a.Moves[i] != b.Moves[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("note: policies happened to coincide on Figure 2; instance still verified")
	}
}

// Property: every sequential policy on random instances produces a
// verifying solution, and the number of moves never exceeds the number of
// edges (each move consumes one).
func TestSequentialProperty(t *testing.T) {
	check := func(seed int64, lRaw, wRaw, dRaw uint8, density float32) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := LayeredConfig{
			Levels:     int(lRaw%5) + 1,
			Width:      int(wRaw%6) + 2,
			ParentDeg:  1,
			TokenProb:  float64(density),
			FreeBottom: seed%2 == 0,
		}
		if cfg.TokenProb < 0 || cfg.TokenProb > 1 {
			cfg.TokenProb = 0.5
		}
		cfg.ParentDeg = int(dRaw)%cfg.Width + 1
		inst := RandomLayered(cfg, rng)
		sol := SolveSequential(inst, PolicyRandom, rng)
		if len(sol.Moves) > inst.Graph().M() {
			return false
		}
		return Verify(sol) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
