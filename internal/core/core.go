// Package core implements the paper's primary contribution: the token
// dropping game (Section 4) and its distributed solutions.
//
// The input is a graph whose nodes are organized in layers 0..L; some nodes
// hold a token (at most one per node). A token may move from a node on
// layer ℓ to a neighbor on layer ℓ-1 that currently holds no token, and
// each edge may be used at most once during the whole game ("consumed").
// The single-player objective is to get stuck: to reach a configuration in
// which no token can move.
//
// The package provides
//
//   - the instance model with validation and workload generators,
//   - the distributed proposal algorithm of Theorem 4.1 (O(L·Δ²) rounds),
//   - the specialized 3-level algorithm of Theorem 4.7 (O(Δ) rounds),
//   - centralized sequential solvers used as baselines and test oracles,
//   - a verifier for the three solution rules of Section 4
//     (edge-disjoint traversals, unique destinations, maximality), and
//   - traversal/tail reconstruction (Definition 4.3, Figure 3).
package core

import (
	"fmt"
	"math/rand"

	"tokendrop/internal/graph"
)

// Instance is a token dropping game: a graph whose vertices carry levels
// such that every edge joins adjacent levels, plus an initial token
// placement with at most one token per vertex. The directed view of the
// paper (an edge (u, v) pointing from child u to parent v with
// ℓ(v) = ℓ(u)+1) is recovered from the levels.
type Instance struct {
	g     *graph.Graph
	level []int
	token []bool
}

// NewInstance validates and wraps a game instance. It returns an error if
// some edge does not join adjacent levels or a level is negative.
func NewInstance(g *graph.Graph, level []int, token []bool) (*Instance, error) {
	if len(level) != g.N() || len(token) != g.N() {
		return nil, fmt.Errorf("core: level/token slices sized %d/%d for %d vertices",
			len(level), len(token), g.N())
	}
	for v, l := range level {
		if l < 0 {
			return nil, fmt.Errorf("core: vertex %d has negative level %d", v, l)
		}
	}
	for id, e := range g.Edges() {
		d := level[e.U] - level[e.V]
		if d != 1 && d != -1 {
			return nil, fmt.Errorf("core: edge %d = %v joins levels %d and %d (must be adjacent)",
				id, e, level[e.U], level[e.V])
		}
	}
	return &Instance{
		g:     g,
		level: append([]int(nil), level...),
		token: append([]bool(nil), token...),
	}, nil
}

// MustInstance is NewInstance that panics on error; for generators whose
// construction guarantees validity.
func MustInstance(g *graph.Graph, level []int, token []bool) *Instance {
	inst, err := NewInstance(g, level, token)
	if err != nil {
		panic(err)
	}
	return inst
}

// Graph returns the underlying graph.
func (in *Instance) Graph() *graph.Graph { return in.g }

// N returns the number of vertices.
func (in *Instance) N() int { return in.g.N() }

// Level returns the level of vertex v.
func (in *Instance) Level(v int) int { return in.level[v] }

// Levels returns a copy of the level vector.
func (in *Instance) Levels() []int { return append([]int(nil), in.level...) }

// Height returns L, the maximum level (0 for an empty instance). The paper
// numbers layers 0..L and speaks of the game's "height"; a game using
// layers {0, 1, 2} has height 2 here (the paper's Theorem 4.7 calls this
// the "3-level" game, and ThreeLevelMaxLevel reflects that reading).
func (in *Instance) Height() int {
	h := 0
	for _, l := range in.level {
		if l > h {
			h = l
		}
	}
	return h
}

// Token reports whether vertex v initially holds a token.
func (in *Instance) Token(v int) bool { return in.token[v] }

// TokenVector returns a copy of the initial token placement.
func (in *Instance) TokenVector() []bool { return append([]bool(nil), in.token...) }

// NumTokens returns the number of tokens.
func (in *Instance) NumTokens() int {
	k := 0
	for _, t := range in.token {
		if t {
			k++
		}
	}
	return k
}

// IsParentArc reports whether the arc from v through the given adjacency
// entry leads to a parent of v (a neighbor one level above).
func (in *Instance) IsParentArc(v int, a graph.Arc) bool {
	return in.level[a.To] == in.level[v]+1
}

// Parents returns the arcs from v to its parents (neighbors one level up).
func (in *Instance) Parents(v int) []graph.Arc {
	var out []graph.Arc
	for _, a := range in.g.Adj(v) {
		if in.level[a.To] == in.level[v]+1 {
			out = append(out, a)
		}
	}
	return out
}

// Children returns the arcs from v to its children (one level down).
func (in *Instance) Children(v int) []graph.Arc {
	var out []graph.Arc
	for _, a := range in.g.Adj(v) {
		if in.level[a.To] == in.level[v]-1 {
			out = append(out, a)
		}
	}
	return out
}

// MaxDegree returns Δ of the underlying graph.
func (in *Instance) MaxDegree() int { return in.g.MaxDegree() }

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	return &Instance{
		g:     in.g.Clone(),
		level: append([]int(nil), in.level...),
		token: append([]bool(nil), in.token...),
	}
}

// State is a mutable game position: current token placement and per-edge
// consumption. It is the working structure of sequential solvers, the
// verifier's replay, and the maximality check.
type State struct {
	inst     *Instance
	token    []bool
	consumed []bool
	moves    int
}

// NewState returns the initial position of inst.
func NewState(inst *Instance) *State {
	return &State{
		inst:     inst,
		token:    inst.TokenVector(),
		consumed: make([]bool, inst.g.M()),
	}
}

// Token reports whether v currently holds a token.
func (s *State) Token(v int) bool { return s.token[v] }

// Consumed reports whether edge id has been consumed.
func (s *State) Consumed(id int) bool { return s.consumed[id] }

// Moves returns how many moves have been applied.
func (s *State) Moves() int { return s.moves }

// CanMove reports whether a token can currently move from parent u to
// child v along edge id, i.e. the move is legal in the current position.
func (s *State) CanMove(id, u, v int) error {
	e := s.inst.g.Edge(id)
	if (e.U != u || e.V != v) && (e.U != v || e.V != u) {
		return fmt.Errorf("core: edge %d = %v does not join %d and %d", id, e, u, v)
	}
	if s.inst.level[u] != s.inst.level[v]+1 {
		return fmt.Errorf("core: move %d->%d goes from level %d to %d (must drop one level)",
			u, v, s.inst.level[u], s.inst.level[v])
	}
	if s.consumed[id] {
		return fmt.Errorf("core: edge %d already consumed", id)
	}
	if !s.token[u] {
		return fmt.Errorf("core: vertex %d holds no token", u)
	}
	if s.token[v] {
		return fmt.Errorf("core: vertex %d already holds a token", v)
	}
	return nil
}

// Apply performs the move, consuming the edge.
func (s *State) Apply(id, u, v int) error {
	if err := s.CanMove(id, u, v); err != nil {
		return err
	}
	s.token[u] = false
	s.token[v] = true
	s.consumed[id] = true
	s.moves++
	return nil
}

// MovableTokens returns all currently legal moves as (edge, from, to)
// triples in deterministic order.
func (s *State) MovableTokens() []Move {
	var out []Move
	for u := 0; u < s.inst.N(); u++ {
		if !s.token[u] {
			continue
		}
		for _, a := range s.inst.Children(u) {
			if !s.consumed[a.Edge] && !s.token[a.To] {
				out = append(out, Move{Edge: a.Edge, From: u, To: a.To})
			}
		}
	}
	return out
}

// Stuck reports whether no token can move — the game's goal configuration.
func (s *State) Stuck() bool { return len(s.MovableTokens()) == 0 }

// TokenVector returns a copy of the current token placement.
func (s *State) TokenVector() []bool { return append([]bool(nil), s.token...) }

// ConsumedVector returns a copy of the per-edge consumption flags.
func (s *State) ConsumedVector() []bool { return append([]bool(nil), s.consumed...) }

// shuffledCopy returns a seeded random permutation of moves; helper for
// randomized sequential policies.
func shuffledCopy(moves []Move, rng *rand.Rand) []Move {
	out := append([]Move(nil), moves...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
